package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// coordProc is a running `spacebound -coordinator` child process.
type coordProc struct {
	cmd    *exec.Cmd
	url    string
	stderr *bytes.Buffer
}

var coordAddrRe = regexp.MustCompile(`coordinator on (http://\S+)`)

// startCoordinator launches the coordinator on an ephemeral port and waits
// for it to announce its bound address on stderr.
func startCoordinator(t *testing.T, ctx context.Context, bin string, args ...string) *coordProc {
	t.Helper()
	cmd := exec.CommandContext(ctx, bin, args...)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	cp := &coordProc{cmd: cmd, stderr: &bytes.Buffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(io.TeeReader(stderrPipe, cp.stderr))
		for sc.Scan() {
			if m := coordAddrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case cp.url = <-addrCh:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("coordinator never announced its address; stderr so far:\n%s", cp.stderr)
	}
	return cp
}

// TestShardKillByteIdenticalWitness is the distributed acceptance test:
// a coordinator with three shard workers explores DiskRace n=4; the worker
// that initially leases every slice is SIGKILLed mid-level (kill@level=3
// fires right after its first exchange-chunk post — a torn exchange). The
// survivors must take over its slices from checkpoints and retained
// chunks, the coordinator must record reassignments in /metrics, and the
// merged witness must be byte-identical to the single-process reference.
func TestShardKillByteIdenticalWitness(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	work := t.TempDir()
	bin := buildBinary(t, work)
	seqOut := filepath.Join(work, "seq.txt")
	distOut := filepath.Join(work, "dist.txt")

	// Single-process reference witness.
	runBinary(t, bin,
		"-dist-sequential", "-protocol", "diskrace", "-n", "4",
		"-dist-max-depth", "7", "-witness-out", seqOut)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	coord := startCoordinator(t, ctx, bin,
		"-coordinator", "127.0.0.1:0", "-protocol", "diskrace", "-n", "4",
		"-dist-slices", "3", "-dist-max-depth", "7", "-dist-lease", "500ms",
		"-dist-linger", "30s", "-witness-out", distOut)

	shard := func(id string, fault string) *exec.Cmd {
		args := []string{"-shard", coord.url, "-shard-id", id}
		if fault != "" {
			args = append(args, "-shard-fault", fault)
		}
		cmd := exec.CommandContext(ctx, bin, args...)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		return cmd
	}

	// The victim starts alone so it leases every slice before the
	// survivors join — its death at level 3 forces all three slices
	// through lease-expiry reassignment.
	victim := shard("victim", "kill@level=3")
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	survivors := []*exec.Cmd{shard("survivor-1", ""), shard("survivor-2", "")}
	for _, s := range survivors {
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	}

	// The victim must die by SIGKILL, not exit cleanly.
	err := victim.Wait()
	if err == nil {
		t.Fatal("victim shard exited cleanly; the scripted kill never fired")
	}
	if victim.ProcessState.ExitCode() != -1 {
		t.Fatalf("victim exited with code %d, want a signal death: %v", victim.ProcessState.ExitCode(), err)
	}

	for _, s := range survivors {
		if err := s.Wait(); err != nil {
			t.Fatalf("survivor %v failed: %v\ncoordinator stderr:\n%s", s.Args, err, coord.stderr)
		}
	}

	// Survivors exited, so the run is done and the coordinator is
	// lingering: scrape its metrics, shard health, and served witness
	// before telling it to shut down.
	metrics := httpGet(t, coord.url+"/metrics")
	m := regexp.MustCompile(`(?m)^dist_reassigns (\d+)`).FindStringSubmatch(metrics)
	if m == nil || m[1] == "0" {
		t.Fatalf("no reassignments in /metrics after killing the victim:\n%s", metrics)
	}
	progress := httpGet(t, coord.url+"/progress")
	if !strings.Contains(progress, `"shards"`) || !strings.Contains(progress, `"reassigns"`) {
		t.Fatalf("/progress has no shard health:\n%s", progress)
	}
	served := httpGet(t, coord.url+"/dist/witness")

	if err := coord.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	_ = coord.cmd.Wait()

	distBytes, err := os.ReadFile(distOut)
	if err != nil {
		t.Fatalf("distributed witness artifact: %v\ncoordinator stderr:\n%s", err, coord.stderr)
	}
	seqBytes, err := os.ReadFile(seqOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(distBytes, seqBytes) {
		t.Fatalf("distributed witness differs from sequential reference:\n--- distributed\n%s--- sequential\n%s", distBytes, seqBytes)
	}
	if served != string(seqBytes) {
		t.Fatalf("witness served over /dist/witness differs from the artifact")
	}
	// The sha256 sidecars must agree too: identical bytes, identical hash.
	distSum, err := os.ReadFile(distOut + ".sha256")
	if err != nil {
		t.Fatal(err)
	}
	seqSum, err := os.ReadFile(seqOut + ".sha256")
	if err != nil {
		t.Fatal(err)
	}
	if f1, f2 := strings.Fields(string(distSum)), strings.Fields(string(seqSum)); len(f1) == 0 || len(f2) == 0 || f1[0] != f2[0] {
		t.Fatalf("sha256 sidecars differ: %q vs %q", distSum, seqSum)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return string(body)
}

// TestCorruptChunkServesAreRetried: the coordinator is scripted to serve
// its first chunk GETs corrupted; the worker must reject each copy and
// re-request until a clean one arrives, and the witness must still match
// the reference.
func TestCorruptChunkServesAreRetried(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	work := t.TempDir()
	bin := buildBinary(t, work)
	seqOut := filepath.Join(work, "seq.txt")
	distOut := filepath.Join(work, "dist.txt")
	runBinary(t, bin,
		"-dist-sequential", "-protocol", "diskrace", "-n", "3",
		"-dist-max-depth", "5", "-witness-out", seqOut)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	coord := startCoordinator(t, ctx, bin,
		"-coordinator", "127.0.0.1:0", "-protocol", "diskrace", "-n", "3",
		"-dist-slices", "2", "-dist-max-depth", "5", "-dist-lease", "2s",
		"-dist-linger", "30s", "-dist-corrupt-gets", "2", "-witness-out", distOut)

	worker := exec.CommandContext(ctx, bin, "-shard", coord.url, "-shard-id", "w0")
	var workerErr bytes.Buffer
	worker.Stderr = &workerErr
	if err := worker.Run(); err != nil {
		t.Fatalf("worker: %v\n%s", err, &workerErr)
	}
	metrics := httpGet(t, coord.url+"/metrics")
	m := regexp.MustCompile(`(?m)^dist_chunks_served_corrupt (\d+)`).FindStringSubmatch(metrics)
	if m == nil || m[1] == "0" {
		t.Fatalf("injector never served a corrupt chunk:\n%s", metrics)
	}
	if err := coord.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	_ = coord.cmd.Wait()
	distBytes, err := os.ReadFile(distOut)
	if err != nil {
		t.Fatal(err)
	}
	seqBytes, err := os.ReadFile(seqOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(distBytes, seqBytes) {
		t.Fatalf("witness after corrupt serves differs:\n--- distributed\n%s--- sequential\n%s", distBytes, seqBytes)
	}
}
