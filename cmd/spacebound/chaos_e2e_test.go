package main

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestChaosCoordinatorCrashByteIdenticalWitness is the crash-recovery
// acceptance test: one chaos schedule SIGKILLs the coordinator mid-level AND
// kills the worker holding every lease, on DiskRace n=4. The driver itself
// asserts the hard conditions — the restarted coordinator resumes from the
// journal at the exact level and phase, no healthy worker exits during the
// outage, the victim dies by signal, and the merged witness is byte-identical
// to the sequential reference (sha256 sidecar included) — so the test runs
// the real binary and requires exit 0 plus the transcript's key lines.
func TestChaosCoordinatorCrashByteIdenticalWitness(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	work := t.TempDir()
	bin := buildBinary(t, work)
	journal := filepath.Join(work, "journal")
	witnessOut := filepath.Join(work, "witness.txt")

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin,
		"-chaos", "coord:kill@level=4:restart=500ms; worker:victim:kill@level=3; worker:steady-1; worker:steady-2; seed=7",
		"-protocol", "diskrace", "-n", "4",
		"-dist-slices", "3", "-dist-max-depth", "7",
		"-dist-lease", "500ms", "-dist-linger", "1s",
		"-dist-journal", journal, "-witness-out", witnessOut)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("chaos run failed: %v\nstdout:\n%s\nstderr:\n%s", err, &stdout, &stderr)
	}
	transcript := stderr.String()
	// The kill fires at the first status poll at or past the scripted
	// level, so the exact level may overshoot on a fast machine; the
	// driver itself asserts recovered-level >= killed-at-level.
	for _, want := range []string{
		"SIGKILL coordinator at level",
		"holds a prior run, recovering",
		"recovered to level",
		"generation 1",
		"worker victim: killed by signal, as scripted",
		"worker steady-1: ok",
		"worker steady-2: ok",
		"witness byte-identical to the sequential reference",
	} {
		if !strings.Contains(transcript, want) {
			t.Errorf("chaos transcript is missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("stderr:\n%s", transcript)
	}

	// The artifact must match an independently computed reference.
	seqOut := filepath.Join(work, "seq.txt")
	runBinary(t, bin,
		"-dist-sequential", "-protocol", "diskrace", "-n", "4",
		"-dist-max-depth", "7", "-witness-out", seqOut)
	got, err := os.ReadFile(witnessOut)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(seqOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("chaos witness differs from sequential reference:\n--- chaos\n%s--- sequential\n%s", got, ref)
	}

	// The journal survives the run: snapshots plus WAL segments on disk.
	entries, err := os.ReadDir(journal)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, wals int
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), "state-") && strings.HasSuffix(e.Name(), ".ckpt"):
			snaps++
		case strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg"):
			wals++
		}
	}
	if snaps == 0 || wals == 0 {
		t.Fatalf("journal directory has %d snapshots and %d WAL segments, want both > 0:\n%v", snaps, wals, entries)
	}
}

// TestChaosVacuousKillIsAnError: a schedule whose coordinator kill level is
// beyond the run's depth must fail loudly instead of silently testing
// nothing.
func TestChaosVacuousKillIsAnError(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	work := t.TempDir()
	bin := buildBinary(t, work)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin,
		"-chaos", "coord:kill@level=40; worker:w1",
		"-protocol", "diskrace", "-n", "3",
		"-dist-slices", "2", "-dist-max-depth", "4",
		"-dist-linger", "200ms",
		"-dist-journal", filepath.Join(work, "journal"))
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("vacuous chaos schedule exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "before the scripted coordinator kill") {
		t.Fatalf("unexpected failure mode: %v\n%s", err, out)
	}
}
