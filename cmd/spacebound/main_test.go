package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/server"
)

// buildBinary compiles the spacebound command once into dir.
func buildBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "spacebound")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runBinary(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var outBuf, errBuf bytes.Buffer
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", bin, args, err, &outBuf, &errBuf)
	}
	return outBuf.String(), errBuf.String()
}

// TestKillResumeByteIdenticalWitness is the tentpole acceptance test: a
// checkpointed n=4 run SIGKILLed as soon as it has persisted a snapshot,
// then resumed with -resume, must produce a witness artifact byte-identical
// to an uninterrupted run's — and both must pass the independent replay
// verifier and sha256 sidecar check.
func TestKillResumeByteIdenticalWitness(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	work := t.TempDir()
	bin := buildBinary(t, work)
	ckptDir := filepath.Join(work, "ckpt")
	cleanOut := filepath.Join(work, "clean.txt")
	resumedOut := filepath.Join(work, "resumed.txt")

	// Reference: uninterrupted run.
	_, cleanErr := runBinary(t, bin,
		"-protocol", "diskrace", "-n", "4", "-workers", "1", "-witness-out", cleanOut)
	if !strings.Contains(cleanErr, "witness verified by independent replay") {
		t.Fatalf("clean run did not self-verify:\n%s", cleanErr)
	}

	// Crash run: SIGKILL the process the moment a snapshot file exists.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	crash := exec.CommandContext(ctx, bin,
		"-protocol", "diskrace", "-n", "4", "-workers", "1",
		"-checkpoint-dir", ckptDir, "-checkpoint-every", "50ms")
	if err := crash.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	for deadline := time.Now().Add(time.Minute); time.Now().Before(deadline); {
		if snaps, _ := filepath.Glob(filepath.Join(ckptDir, "snap-*.ckpt")); len(snaps) > 0 {
			if err := crash.Process.Signal(syscall.SIGKILL); err == nil {
				killed = true
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	err := crash.Wait()
	if !killed {
		t.Fatalf("no snapshot appeared before the run ended (err=%v)", err)
	}
	if err == nil {
		t.Fatal("SIGKILLed run exited cleanly?")
	}
	snaps, _ := filepath.Glob(filepath.Join(ckptDir, "snap-*.ckpt"))
	if len(snaps) == 0 {
		t.Fatal("kill left no snapshot behind")
	}

	// Resume and compare artifacts byte for byte.
	_, resumeErr := runBinary(t, bin,
		"-protocol", "diskrace", "-n", "4", "-workers", "1",
		"-checkpoint-dir", ckptDir, "-resume", "-witness-out", resumedOut)
	if !strings.Contains(resumeErr, "resuming from snapshot") {
		t.Fatalf("resume run did not load the snapshot:\n%s", resumeErr)
	}
	if !strings.Contains(resumeErr, "witness verified by independent replay") {
		t.Fatalf("resumed run did not self-verify:\n%s", resumeErr)
	}
	clean, err := os.ReadFile(cleanOut)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(resumedOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) == 0 {
		t.Fatal("clean witness artifact is empty")
	}
	if !bytes.Equal(clean, resumed) {
		t.Fatalf("resumed witness differs from uninterrupted run\nclean %d bytes, resumed %d bytes", len(clean), len(resumed))
	}
	for _, p := range []string{cleanOut, resumedOut} {
		if err := checkpoint.VerifyArtifact(p); err != nil {
			t.Fatalf("artifact %s: %v", p, err)
		}
	}
}

// TestVerifierRejectsTamperedArtifact: flipping a byte of the witness
// artifact must be caught by the sha256 sidecar.
func TestVerifierRejectsTamperedArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	work := t.TempDir()
	bin := buildBinary(t, work)
	out := filepath.Join(work, "w.txt")
	runBinary(t, bin, "-protocol", "flood", "-n", "2", "-workers", "1", "-witness-out", out)
	if err := checkpoint.VerifyArtifact(out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 1
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.VerifyArtifact(out); err == nil {
		t.Fatal("tampered artifact passed verification")
	}
}

// TestServerSubmitMode drives -server against an in-process job server:
// the binary must submit, poll, print the served witness, and verify the
// ledger inclusion proof locally.
func TestServerSubmitMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	work := t.TempDir()
	bin := buildBinary(t, work)
	srv, err := server.New(server.Options{
		DataDir:   filepath.Join(work, "data"),
		Workers:   1,
		BatchWait: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()

	out, errOut := runBinary(t, bin,
		"-server", ts.URL, "-protocol", "diskrace", "-n", "3", "-witness-out",
		filepath.Join(work, "remote.txt"))
	if !strings.Contains(out, "distinct registers witnessed") {
		t.Fatalf("no witness in output:\n%s", out)
	}
	if !strings.Contains(errOut, "inclusion proof checked locally") {
		t.Fatalf("no proof verification confirmation:\n%s", errOut)
	}
	if err := checkpoint.VerifyArtifact(filepath.Join(work, "remote.txt")); err != nil {
		t.Fatalf("remote witness artifact: %v", err)
	}
}
