package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/obs"
)

// distFlags carries the distributed-exploration flag values from run()
// into the three dist modes.
type distFlags struct {
	coordinator  string // listen address; "" = not a coordinator
	shard        string // coordinator base URL; "" = not a shard
	sequential   bool   // run the single-process reference instead
	chaos        string // chaos schedule; "" = not the chaos driver
	shardID      string
	shardFault   string
	shardSeed    int64
	slices       int
	maxDepth     int
	lease        time.Duration
	linger       time.Duration
	corruptGets  int
	journalDir   string // coordinator journal directory; "" = memory-only
	journalFault string // fs fault injected into journal writes
}

// runCoordinator hosts the shard coordinator: /dist/* plus the obs surface
// (/metrics, /progress with shard health) on one listener. It exits once
// the run completes and -dist-linger has passed — the grace the shard
// workers and scrapers get to fetch the witness and final metrics — or on
// SIGTERM/SIGINT.
func runCoordinator(df distFlags, protocol string, n int, scope *obs.Scope, witnessOut string) error {
	if scope == nil {
		scope = obs.NewScope(nil)
	}
	run, err := dist.NewRun(protocol, n, df.slices, df.maxDepth, df.lease)
	if err != nil {
		return err
	}
	coord, err := run.Coordinator(scope)
	if err != nil {
		return err
	}
	scope.SetShardHealth(coord.ShardHealth)
	scope.SetReadyCheck(func() error {
		if coord.Recovering() {
			return errors.New("dist: coordinator recovering")
		}
		return nil
	})
	if df.journalDir != "" {
		fsFault, err := faults.ParseFSFault(df.journalFault)
		if err != nil {
			return err
		}
		if fsFault != nil {
			fmt.Fprintf(os.Stderr, "spacebound: journal writes faulted (%s)\n", df.journalFault)
		}
		j, err := dist.OpenJournal(df.journalDir, dist.JournalOptions{Opener: fsFault.Opener(), Scope: scope})
		if err != nil {
			return err
		}
		if err := coord.AttachJournal(j); err != nil {
			return err
		}
	}
	if df.corruptGets > 0 {
		inj := faults.NewOpInjector()
		inj.Fail("dist.chunk.get", df.corruptGets, nil)
		coord.SetFaults(inj)
		fmt.Fprintf(os.Stderr, "spacebound: serving the first %d chunk GETs corrupted\n", df.corruptGets)
	}
	mux := http.NewServeMux()
	mux.Handle("/dist/", coord.Handler())
	mux.Handle("/", obs.Handler(scope))
	ln, err := net.Listen("tcp", df.coordinator)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	// The bound address on its own stderr line so scripts (and the e2e
	// test) can find it when the flag uses port 0.
	fmt.Fprintf(os.Stderr, "spacebound: coordinator on http://%s (%s n=%d, %d slices, lease %v)\n",
		ln.Addr(), protocol, n, df.slices, df.lease)
	// The recovery sweep runs after the listener is up: workers that
	// survived the crash are already retrying, and the handler's recovery
	// gate answers them 503 + Retry-After until the sweep finishes.
	if coord.Recovering() {
		fmt.Fprintf(os.Stderr, "spacebound: journal %s holds a prior run, recovering\n", df.journalDir)
		if err := coord.Recover(); err != nil {
			return fmt.Errorf("journal recovery: %w", err)
		}
		st := coord.Status()
		fmt.Fprintf(os.Stderr, "spacebound: recovered to level %d (%s phase), generation %d\n",
			st.Level, st.Phase, st.Gen)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	case got := <-sig:
		return fmt.Errorf("%s before the run completed", got)
	case <-coord.Done():
	}
	witness, err := coord.Witness()
	if err != nil {
		return err
	}
	if witnessOut != "" {
		if err := checkpoint.WriteArtifact(witnessOut, witness); err != nil {
			return fmt.Errorf("witness artifact: %w", err)
		}
		fmt.Fprintf(os.Stderr, "spacebound: witness written to %s (+.sha256)\n", witnessOut)
	} else {
		fmt.Print(string(witness))
	}
	fmt.Fprintf(os.Stderr, "spacebound: run complete, lingering %v for stragglers\n", df.linger)
	select {
	case <-time.After(df.linger):
	case <-sig:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(ctx)
}

// runShard attaches one shard worker to a coordinator and drives it until
// the run completes. A scripted -shard-fault kills or stalls the worker at
// its level — the crash the rest of the fleet must survive.
func runShard(ctx context.Context, df distFlags, scope *obs.Scope) error {
	fault, err := faults.ParseShardFault(df.shardFault)
	if err != nil {
		return err
	}
	id := df.shardID
	if id == "" {
		id = fmt.Sprintf("shard-%d", os.Getpid())
	}
	spec, err := dist.FetchSpec(ctx, df.shard)
	if err != nil {
		return err
	}
	run, err := dist.RunFromSpec(spec)
	if err != nil {
		return err
	}
	seed := df.shardSeed
	if seed == 0 {
		seed = int64(os.Getpid())
	}
	w := &dist.Worker{
		ID:    id,
		URL:   df.shard,
		Root:  run.Root,
		Procs: run.Procs,
		Opts:  run.Opts,
		Fault: fault,
		Scope: scope,
		Seed:  seed,
	}
	fmt.Fprintf(os.Stderr, "spacebound: shard %s joining %s (%s n=%d, %d slices)\n",
		id, df.shard, spec.Protocol, spec.N, spec.Slices)
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spacebound: shard %s done\n", id)
	return nil
}

// runDistSequential runs the single-process reference exploration for a
// distributed run with the same protocol/n/depth flags and writes its
// witness — the byte-exact oracle a distributed witness is compared to.
func runDistSequential(ctx context.Context, df distFlags, protocol string, n int, witnessOut string) error {
	run, err := dist.NewRun(protocol, n, 1, df.maxDepth, time.Second)
	if err != nil {
		return err
	}
	witness, err := dist.SequentialWitness(ctx, run.Spec, run.Root, run.Procs, run.Opts)
	if err != nil {
		return err
	}
	if witnessOut != "" {
		if err := checkpoint.WriteArtifact(witnessOut, witness); err != nil {
			return fmt.Errorf("witness artifact: %w", err)
		}
		fmt.Fprintf(os.Stderr, "spacebound: witness written to %s (+.sha256)\n", witnessOut)
		return nil
	}
	fmt.Print(string(witness))
	return nil
}
