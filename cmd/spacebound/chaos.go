package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dist"
	"repro/internal/faults"
)

// runChaos executes a scripted failure schedule against a real distributed
// run: it computes the sequential reference witness in-process, then spawns
// a journalled coordinator and the schedule's workers as child processes,
// SIGKILLs the coordinator once the barrier reaches the scripted level,
// restarts it from the same journal directory, and asserts the outcome —
// every scripted victim died by signal, every healthy worker rode through
// the outage and exited 0, and the merged witness is byte-identical to the
// reference. The canonical schedule is logged up front so a failing run can
// be replayed verbatim.
func runChaos(ctx context.Context, df distFlags, protocol string, n int, witnessOut string) error {
	sched, err := faults.ParseChaosSchedule(df.chaos)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spacebound: chaos schedule: %s\n", sched.String())
	// A chaos run that wedges (a schedule that kills everything, say) must
	// not hang the harness forever.
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 10*time.Minute)
		defer cancel()
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}

	// Work directory: the journal must survive the coordinator's death, so
	// it lives here, not in the child's memory. Kept on failure for
	// post-mortems, removed on success unless the caller named it.
	journalDir := df.journalDir
	keepDir := journalDir != ""
	var workDir string
	if journalDir == "" {
		workDir, err = os.MkdirTemp("", "spacebound-chaos-")
		if err != nil {
			return err
		}
		journalDir = filepath.Join(workDir, "journal")
	} else {
		workDir = filepath.Dir(journalDir)
	}
	witnessPath := filepath.Join(workDir, "chaos-witness.txt")
	fmt.Fprintf(os.Stderr, "spacebound: chaos journal at %s (kept on failure)\n", journalDir)

	// Sequential reference first: the oracle the chaotic run must match.
	ref, err := chaosReference(ctx, df, protocol, n)
	if err != nil {
		return err
	}

	// Reserve a concrete address: the restarted coordinator must come back
	// on the SAME host:port or the workers' retries would never find it.
	// Closing the probe listener races other processes for the port, but
	// the window is microseconds and a collision fails loudly at bind.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := probe.Addr().String()
	_ = probe.Close()
	base := "http://" + addr

	coordArgs := []string{
		"-coordinator", addr, "-protocol", protocol, "-n", strconv.Itoa(n),
		"-dist-slices", strconv.Itoa(df.slices),
		"-dist-max-depth", strconv.Itoa(df.maxDepth),
		"-dist-lease", df.lease.String(),
		"-dist-linger", df.linger.String(),
		"-dist-journal", journalDir,
		"-witness-out", witnessPath,
	}
	if sched.CorruptGets > 0 {
		coordArgs = append(coordArgs, "-dist-corrupt-gets", strconv.Itoa(sched.CorruptGets))
	}
	if sched.FS != nil {
		coordArgs = append(coordArgs, "-dist-journal-fault", sched.FS.String())
	}

	startCoord := func(tag string) (*exec.Cmd, chan error, error) {
		cmd := exec.CommandContext(ctx, exe, coordArgs...)
		pw := &prefixWriter{prefix: tag + "| "}
		cmd.Stdout, cmd.Stderr = pw, pw
		if err := cmd.Start(); err != nil {
			return nil, nil, fmt.Errorf("starting coordinator: %w", err)
		}
		wait := make(chan error, 1)
		go func() { wait <- cmd.Wait() }()
		return cmd, wait, nil
	}
	coordCmd, coordWait, err := startCoord("coord#1")
	if err != nil {
		return err
	}
	if err := waitHTTPOK(ctx, base+"/dist/readyz", 30*time.Second); err != nil {
		return fmt.Errorf("coordinator never became ready: %w", err)
	}

	// Workers, first one alone: the grace lets it lease every slice, so a
	// scripted death forces full reassignment, like the dist e2e tests.
	exits := make(chan workerExit, len(sched.Workers))
	startWorker := func(i int, w faults.ChaosWorker) error {
		args := []string{"-shard", base, "-shard-id", w.ID,
			"-shard-seed", strconv.FormatInt(sched.Seed+int64(i), 10)}
		if spec := shardFaultSpec(w.Fault); spec != "" {
			args = append(args, "-shard-fault", spec)
		}
		cmd := exec.CommandContext(ctx, exe, args...)
		pw := &prefixWriter{prefix: w.ID + "| "}
		cmd.Stdout, cmd.Stderr = pw, pw
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("starting worker %s: %w", w.ID, err)
		}
		go func(w faults.ChaosWorker, cmd *exec.Cmd) {
			err := cmd.Wait()
			code := 0
			if cmd.ProcessState != nil {
				code = cmd.ProcessState.ExitCode()
			}
			exits <- workerExit{w: w, err: err, code: code, at: time.Now()}
		}(w, cmd)
		return nil
	}
	for i, w := range sched.Workers {
		if err := startWorker(i, w); err != nil {
			return err
		}
		if i == 0 && len(sched.Workers) > 1 {
			if err := chaosSleep(ctx, 400*time.Millisecond); err != nil {
				return err
			}
		}
	}

	// The scripted coordinator crash: poll the barrier position and SIGKILL
	// the process the moment it reaches the scripted level. A run that
	// finishes first is an error — the schedule would have tested nothing.
	var killedAt, readyAt time.Time
	killLevel := -1
	if sched.Coord != nil {
		client := &http.Client{Timeout: 2 * time.Second}
		for {
			select {
			case err := <-coordWait:
				return fmt.Errorf("coordinator exited before the scripted kill at level %d: %v", sched.Coord.Level, err)
			default:
			}
			st, stErr := chaosStatus(client, base+"/dist/status")
			if stErr == nil {
				if st.Done {
					return fmt.Errorf("run finished before the scripted coordinator kill at level %d fired", sched.Coord.Level)
				}
				if st.Level >= sched.Coord.Level {
					killLevel = st.Level
					fmt.Fprintf(os.Stderr, "spacebound: chaos: SIGKILL coordinator at level %d\n", st.Level)
					_ = coordCmd.Process.Kill()
					<-coordWait
					killedAt = time.Now()
					break
				}
			}
			if err := chaosSleep(ctx, 20*time.Millisecond); err != nil {
				return err
			}
		}
		if err := chaosSleep(ctx, sched.Coord.Restart); err != nil {
			return err
		}
		coordCmd, coordWait, err = startCoord("coord#2")
		if err != nil {
			return err
		}
		if err := waitHTTPOK(ctx, base+"/dist/readyz", 30*time.Second); err != nil {
			return fmt.Errorf("restarted coordinator never became ready: %w", err)
		}
		readyAt = time.Now()
		st, stErr := chaosStatus(&http.Client{Timeout: 2 * time.Second}, base+"/dist/status")
		if stErr != nil {
			return fmt.Errorf("restarted coordinator status: %w", stErr)
		}
		// Recovery must not lose barrier progress: the coordinator accepted
		// posts up to (at least) the level the kill monitor saw, so the
		// journal must bring it back no lower.
		if st.Level < killLevel {
			return fmt.Errorf("coordinator recovered to level %d, below the level %d it was killed at", st.Level, killLevel)
		}
		if st.Gen < 1 {
			return fmt.Errorf("restarted coordinator reports generation %d, want a post-recovery bump", st.Gen)
		}
		fmt.Fprintf(os.Stderr, "spacebound: chaos: coordinator back at level %d (%s phase), generation %d, outage %v\n",
			st.Level, st.Phase, st.Gen, readyAt.Sub(killedAt).Round(time.Millisecond))
	}

	// Collect every worker's verdict. Victims (scripted kills) must die by
	// signal; everyone else must exit 0, and never during the outage.
	var failures []string
	for range sched.Workers {
		var e workerExit
		select {
		case e = <-exits:
		case <-ctx.Done():
			return ctx.Err()
		}
		victim := e.w.Fault != nil && e.w.Fault.Kind == "kill"
		switch {
		case victim && e.err == nil:
			failures = append(failures, fmt.Sprintf("worker %s: scripted kill never fired (exited cleanly)", e.w.ID))
		case victim && e.code != -1:
			failures = append(failures, fmt.Sprintf("worker %s: exited %d, want signal death: %v", e.w.ID, e.code, e.err))
		case !victim && e.err != nil:
			failures = append(failures, fmt.Sprintf("healthy worker %s: %v", e.w.ID, e.err))
		case !victim && !killedAt.IsZero() && !e.at.Before(killedAt) && !e.at.After(readyAt):
			failures = append(failures, fmt.Sprintf("healthy worker %s exited during the coordinator outage", e.w.ID))
		default:
			verdict := "ok"
			if victim {
				verdict = "killed by signal, as scripted"
			}
			fmt.Fprintf(os.Stderr, "spacebound: chaos: worker %s: %s\n", e.w.ID, verdict)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("chaos run failed:\n  %s", strings.Join(failures, "\n  "))
	}
	if err := <-coordWait; err != nil {
		return fmt.Errorf("coordinator (final incarnation): %w", err)
	}

	// The verdict that matters: the witness the chaotic run produced,
	// byte for byte against the sequential reference, sidecar included.
	got, err := os.ReadFile(witnessPath)
	if err != nil {
		return fmt.Errorf("chaos witness artifact: %w", err)
	}
	if !bytes.Equal(got, ref) {
		return fmt.Errorf("chaos witness differs from the sequential reference:\n--- chaos\n%s--- sequential\n%s", got, ref)
	}
	sum := sha256.Sum256(got)
	sidecar, err := os.ReadFile(witnessPath + ".sha256")
	if err != nil {
		return fmt.Errorf("chaos witness sidecar: %w", err)
	}
	if f := strings.Fields(string(sidecar)); len(f) == 0 || f[0] != fmt.Sprintf("%x", sum) {
		return fmt.Errorf("chaos witness sidecar %q does not match sha256 %x", sidecar, sum)
	}

	if witnessOut != "" {
		if err := checkpoint.WriteArtifact(witnessOut, got); err != nil {
			return fmt.Errorf("witness artifact: %w", err)
		}
		fmt.Fprintf(os.Stderr, "spacebound: witness written to %s (+.sha256)\n", witnessOut)
	} else {
		fmt.Print(string(got))
	}
	fmt.Fprintf(os.Stderr, "spacebound: chaos run complete: witness byte-identical to the sequential reference (sha256 %x)\n", sum)
	if !keepDir {
		_ = os.RemoveAll(workDir)
	}
	return nil
}

// chaosReference computes the sequential reference witness in-process.
func chaosReference(ctx context.Context, df distFlags, protocol string, n int) ([]byte, error) {
	run, err := dist.NewRun(protocol, n, 1, df.maxDepth, time.Second)
	if err != nil {
		return nil, err
	}
	return dist.SequentialWitness(ctx, run.Spec, run.Root, run.Procs, run.Opts)
}

// workerExit is one child worker's terminal state.
type workerExit struct {
	w    faults.ChaosWorker
	err  error
	code int
	at   time.Time
}

// shardFaultSpec renders a worker fault back into -shard-fault syntax.
func shardFaultSpec(f *faults.ShardFault) string {
	switch {
	case f == nil:
		return ""
	case f.Kind == "kill":
		return fmt.Sprintf("kill@level=%d", f.Level)
	case f.Kind == "stall":
		return fmt.Sprintf("stall@level=%d:dur=%s", f.Level, f.Stall)
	}
	return ""
}

// chaosStatus fetches and decodes GET /dist/status.
func chaosStatus(client *http.Client, url string) (dist.Status, error) {
	resp, err := client.Get(url)
	if err != nil {
		return dist.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dist.Status{}, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var st dist.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return dist.Status{}, err
	}
	return st, nil
}

// waitHTTPOK polls url until it answers 200, for at most timeout.
func waitHTTPOK(ctx context.Context, url string, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("%s: %s", url, resp.Status)
		} else {
			lastErr = err
		}
		if err := chaosSleep(ctx, 50*time.Millisecond); err != nil {
			return err
		}
	}
	return fmt.Errorf("timed out after %v: %w", timeout, lastErr)
}

// chaosSleep waits for d or until ctx is cancelled.
func chaosSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// prefixWriter tags every line a child process writes with its name, so the
// interleaved stderr of a coordinator, its successor, and several workers
// stays attributable.
type prefixWriter struct {
	mu     sync.Mutex
	prefix string
	buf    bytes.Buffer
}

func (w *prefixWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for {
		line, err := w.buf.ReadString('\n')
		if err != nil {
			// Partial line: hold it until its newline arrives.
			w.buf.WriteString(line)
			break
		}
		fmt.Fprintf(os.Stderr, "%s%s", w.prefix, line)
	}
	return len(p), nil
}
