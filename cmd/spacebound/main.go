// Command spacebound runs the paper's Theorem 1 adversary against a
// consensus protocol and prints the witness: an execution after which n-1
// distinct registers are covered or written (experiment E1), optionally as
// a Graphviz figure in the style of the paper's Figure 4 (experiment E4).
//
// Usage:
//
//	spacebound [-protocol diskrace] [-n 3] [-max-configs 0] [-workers 0] [-timeout 0] [-figures] [-transcript]
//	           [-debug-addr host:port] [-trace-out trace.jsonl]
//	           [-checkpoint-dir dir] [-checkpoint-every 30s] [-resume] [-spill-budget bytes]
//	           [-witness-out witness.txt] [-server http://host:port]
//	spacebound -coordinator host:port [-protocol p] [-n n] [-dist-slices 3]
//	           [-dist-max-depth 0] [-dist-lease 2s] [-dist-linger 2s] [-witness-out w.txt]
//	           [-dist-journal dir] [-dist-journal-fault enospc@bytes=N]
//	spacebound -shard http://host:port [-shard-id id] [-shard-fault kill@level=3]
//	spacebound -dist-sequential [-protocol p] [-n n] [-dist-max-depth 0] [-witness-out w.txt]
//	spacebound -chaos "coord:kill@level=4; worker:victim:kill@level=3; worker:w1; worker:w2"
//	           [-protocol p] [-n n] [-dist-slices 3] [-dist-max-depth 0] [-dist-lease 2s]
//	           [-dist-journal dir] [-witness-out w.txt]
//
// The dist modes run the crash-tolerant sharded exploration
// (internal/dist): -coordinator hosts the lease/barrier coordinator (plus
// /metrics and /progress with per-shard health) and prints the merged
// witness when the run completes; -shard joins a coordinator as one shard
// worker, with -shard-fault scripting a mid-run crash or stall for chaos
// testing; -dist-sequential runs the single-process reference whose witness
// a distributed run must reproduce byte for byte.
//
// -dist-journal makes the coordinator crash-recoverable: barrier marks,
// slice checkpoints, and retained exchange chunks are persisted to a
// write-ahead journal plus periodic snapshots in that directory, and a
// coordinator restarted over the same directory resumes the barrier at the
// exact level and phase it died in (leases are not persisted — workers
// re-acquire under a fenced new generation). -dist-journal-fault injects
// filesystem faults into the journal's writes for testing; a faulted
// journal degrades to memory-only operation rather than failing the run.
//
// -chaos executes a whole scripted failure schedule in one invocation: it
// spawns a journalled coordinator and the scheduled workers as child
// processes, SIGKILLs the coordinator at the scripted level, restarts it
// from the journal, asserts every healthy worker rode through the outage,
// and compares the merged witness byte-for-byte against the sequential
// reference it computes first. See internal/faults.ParseChaosSchedule for
// the directive syntax.
//
// -server submits the construction to a running provesrv instance instead
// of executing it locally: the job is posted to the server's /jobs API,
// polled until it settles, and the served witness is printed along with
// its verified Merkle inclusion proof from the server's witness ledger.
// -protocol, -n, -max-configs, -workers and -timeout describe the job
// exactly as they would a local run ( -timeout becomes the job's
// per-attempt budget server-side and also bounds the client's wait).
//
// -debug-addr starts the live observability endpoint (/debug/pprof,
// /debug/vars, /progress) for watching or profiling a long construction;
// -trace-out streams the construction's phase spans and exploration levels
// as JSONL ("-" for stderr).
//
// -checkpoint-dir enables crash-safe snapshots of the construction (valency
// memo, proof stage, in-flight BFS frontier) every -checkpoint-every;
// -resume restarts from the newest intact snapshot in that directory, and
// with Workers:1 the resumed run's witness is byte-identical to an
// uninterrupted one. -spill-budget bounds the in-memory BFS frontier,
// spilling cold chunks to <checkpoint-dir>/spill beyond it. -witness-out
// writes the rendered witness atomically alongside a .sha256 sidecar.
//
// Every completed witness is re-verified by an independent replay
// (check.VerifyWitness) before the program exits 0.
//
// Exit codes: 0 on a complete, verified witness, 3 when a -timeout or
// -max-configs budget interrupted the construction (the partial progress is
// printed to stderr; with -server, also when the client's wait timed out),
// 4 if the finished witness fails independent verification (with -server:
// the inclusion proof or witness hash does not verify), 1 on any other
// failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/valency"
)

// errVerifyFailed tags a witness that completed but failed the independent
// replay audit; main maps it to exit code 4.
var errVerifyFailed = errors.New("witness failed independent verification")

// errInterrupted tags a remote wait stopped by the client's own budget;
// main maps it to exit code 3, like a local budget interruption.
var errInterrupted = errors.New("interrupted while waiting for the server")

func main() {
	if err := run(); err != nil {
		var partial *adversary.Partial
		if errors.As(err, &partial) {
			fmt.Fprintln(os.Stderr, "spacebound: search interrupted; progress so far:")
			fmt.Fprintln(os.Stderr, partial.String())
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "spacebound:", err)
		switch {
		case errors.Is(err, errInterrupted):
			os.Exit(3)
		case errors.Is(err, errVerifyFailed):
			os.Exit(4)
		}
		os.Exit(1)
	}
}

func run() error {
	protocol := flag.String("protocol", core.ProtocolDiskRace, "protocol to attack (diskrace, flood)")
	n := flag.Int("n", 3, "number of processes")
	maxConfigs := flag.Int("max-configs", 0, "cap per valency query (0 = default)")
	workers := flag.Int("workers", 0, "exploration workers per valency query (0 = GOMAXPROCS, 1 = sequential)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole construction (0 = none)")
	figures := flag.Bool("figures", false, "emit the witness as Graphviz DOT (paper Figure 4 style)")
	transcript := flag.Bool("transcript", false, "print the full step-by-step execution")
	debugAddr := flag.String("debug-addr", "", "listen address for /debug/pprof, /debug/vars, /metrics, /timeseries and /progress (empty = off)")
	traceOut := flag.String("trace-out", "", "JSONL trace output path (empty = off, - = stderr)")
	recordEvery := flag.Duration("record-every", 0, "flight-recorder sampling interval for /timeseries (0 = 1s default, negative = off)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for crash-safe snapshots (empty = off)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "minimum interval between snapshots")
	resume := flag.Bool("resume", false, "resume from the newest snapshot in -checkpoint-dir")
	spillBudget := flag.Int64("spill-budget", 0, "approximate in-memory frontier budget in bytes; beyond it cold chunks spill to <checkpoint-dir>/spill (0 = never spill)")
	witnessOut := flag.String("witness-out", "", "write the rendered witness here atomically, with a .sha256 sidecar (empty = off)")
	serverURL := flag.String("server", "", "submit to a provesrv instance at this base URL instead of running locally")
	df := distFlags{}
	flag.StringVar(&df.coordinator, "coordinator", "", "host a distributed-exploration coordinator on this address instead of running the adversary (uses -protocol, -n and the -dist-* flags)")
	flag.StringVar(&df.shard, "shard", "", "join the coordinator at this base URL as a shard worker instead of running the adversary")
	flag.BoolVar(&df.sequential, "dist-sequential", false, "run the single-process reference of a distributed exploration and print its witness")
	flag.StringVar(&df.shardID, "shard-id", "", "this shard worker's id (default shard-<pid>)")
	flag.StringVar(&df.shardFault, "shard-fault", "", "scripted worker fault: kill@level=L or stall@level=L:dur=D")
	flag.Int64Var(&df.shardSeed, "shard-seed", 0, "jitter seed for this shard worker's retry backoff (0 = pid)")
	flag.IntVar(&df.slices, "dist-slices", 3, "fingerprint slices of the coordinated run")
	flag.IntVar(&df.maxDepth, "dist-max-depth", 0, "depth cap of the coordinated run (0 = unbounded)")
	flag.DurationVar(&df.lease, "dist-lease", 2*time.Second, "shard lease; a worker silent for longer loses its slices")
	flag.DurationVar(&df.linger, "dist-linger", 2*time.Second, "how long the coordinator keeps serving after the run completes")
	flag.IntVar(&df.corruptGets, "dist-corrupt-gets", 0, "serve the first N chunk GETs corrupted (fault injection for tests)")
	flag.StringVar(&df.journalDir, "dist-journal", "", "coordinator journal directory; a restart over the same directory recovers the run (empty = memory-only)")
	flag.StringVar(&df.journalFault, "dist-journal-fault", "", "filesystem fault against journal writes: enospc@bytes=N, shortwrite@write=K or syncfail")
	flag.StringVar(&df.chaos, "chaos", "", "execute a chaos schedule (see internal/faults.ParseChaosSchedule) against a journalled coordinator and scripted workers")
	flag.Parse()

	if df.coordinator != "" || df.shard != "" || df.sequential || df.chaos != "" {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		switch {
		case df.chaos != "":
			return runChaos(ctx, df, *protocol, *n, *witnessOut)
		case df.coordinator != "":
			scope, stopObs, err := obs.Start(obs.Config{TraceOut: *traceOut, DebugAddr: *debugAddr, RecordEvery: *recordEvery})
			if err != nil {
				return err
			}
			defer func() {
				if err := stopObs(); err != nil {
					fmt.Fprintln(os.Stderr, "spacebound: observability shutdown:", err)
				}
			}()
			return runCoordinator(df, *protocol, *n, scope, *witnessOut)
		case df.shard != "":
			return runShard(ctx, df, nil)
		default:
			return runDistSequential(ctx, df, *protocol, *n, *witnessOut)
		}
	}

	if *serverURL != "" {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		return runRemote(ctx, *serverURL, server.JobSpec{
			Protocol:   *protocol,
			N:          *n,
			MaxConfigs: *maxConfigs,
			Workers:    *workers,
			TimeoutMS:  timeout.Milliseconds(),
		}, *witnessOut)
	}

	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if *spillBudget > 0 && *ckptDir == "" {
		return fmt.Errorf("-spill-budget requires -checkpoint-dir (spill files live under it)")
	}

	m, opts, err := core.Machine(*protocol)
	if err != nil {
		return err
	}
	if *maxConfigs > 0 {
		opts.MaxConfigs = *maxConfigs
	}
	opts.Workers = *workers
	scope, stopObs, err := obs.Start(obs.Config{TraceOut: *traceOut, DebugAddr: *debugAddr, RecordEvery: *recordEvery})
	if err != nil {
		return err
	}
	defer func() {
		if err := stopObs(); err != nil {
			fmt.Fprintln(os.Stderr, "spacebound: observability shutdown:", err)
		}
	}()
	opts.Obs = scope
	if *spillBudget > 0 {
		opts.SpillDir = filepath.Join(*ckptDir, "spill")
		opts.SpillBudget = *spillBudget
		if err := os.MkdirAll(opts.SpillDir, 0o755); err != nil {
			return fmt.Errorf("spill dir: %w", err)
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	engine, coord, err := buildEngine(opts, scope, *protocol, *n, *ckptDir, *ckptEvery, *resume)
	if err != nil {
		return err
	}
	w, err := engine.Theorem1(ctx, m, *n)
	if err != nil {
		return err
	}
	// Persist the completed run's memo so a later invocation over the same
	// directory replays the whole construction from memo alone.
	if err := coord.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "spacebound: final checkpoint:", err)
	}

	fmt.Println(w)
	fmt.Println()
	fmt.Print(trace.CoverTable(w))
	stats := engine.Oracle().Stats()
	fmt.Printf("\nvalency oracle: %d queries (%d memoised), %d solo searches (%d memoised), %d configurations searched\n",
		stats.Queries, stats.Hits, stats.SoloQueries, stats.SoloHits, stats.Configs)
	if writes, bytes := coord.Stats(); writes > 0 {
		fmt.Printf("checkpoints: %d written, %d bytes\n", writes, bytes)
	}

	if *transcript {
		initial := model.NewConfig(m, w.Inputs)
		fmt.Println("\nexecution transcript:")
		fmt.Print(trace.Transcript(initial, w.Execution))
	}
	if *figures {
		fmt.Println()
		fmt.Print(trace.Theorem1DOT(w))
	}

	if *witnessOut != "" {
		if err := checkpoint.WriteArtifact(*witnessOut, []byte(trace.RenderWitness(w))); err != nil {
			return fmt.Errorf("witness artifact: %w", err)
		}
		fmt.Fprintf(os.Stderr, "spacebound: witness written to %s (+.sha256)\n", *witnessOut)
	}

	// Independent audit: replay the witness against raw protocol semantics.
	if err := check.VerifyWitness(m, w); err != nil {
		return fmt.Errorf("%w: %v", errVerifyFailed, err)
	}
	fmt.Fprintln(os.Stderr, "spacebound: witness verified by independent replay")
	return nil
}

// buildEngine constructs a fresh or resumed adversary engine plus the
// coordinator that snapshots it. With no -checkpoint-dir both the
// coordinator and the returned engine's checkpointer are nil-safe no-ops.
func buildEngine(opts explore.Options, scope *obs.Scope, protocol string, n int, dir string, every time.Duration, resume bool) (*adversary.Engine, *checkpoint.Coordinator, error) {
	if dir == "" {
		return adversary.New(valency.New(opts)), nil, nil
	}
	store, err := checkpoint.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	meta := checkpoint.Meta{Protocol: protocol, N: n, MaxConfigs: opts.MaxConfigs, FPVersion: explore.FingerprintVersion}
	if !resume {
		engine := adversary.New(valency.New(opts))
		coord := checkpoint.NewCoordinator(store, every, meta, scope)
		engine.SetCheckpointer(coord)
		return engine, coord, nil
	}
	snap, err := store.Latest()
	if err != nil {
		return nil, nil, fmt.Errorf("resume: %w", err)
	}
	if snap.Meta.Protocol != protocol || snap.Meta.N != n || snap.Meta.MaxConfigs != opts.MaxConfigs {
		return nil, nil, fmt.Errorf("resume: snapshot is for %s n=%d max-configs=%d, flags say %s n=%d max-configs=%d",
			snap.Meta.Protocol, snap.Meta.N, snap.Meta.MaxConfigs, protocol, n, opts.MaxConfigs)
	}
	if snap.Meta.FPVersion != explore.FingerprintVersion {
		return nil, nil, fmt.Errorf("resume: snapshot fingerprints are hash v%d, this build uses v%d",
			snap.Meta.FPVersion, explore.FingerprintVersion)
	}
	engine, err := adversary.ResumeEngine(opts, snap)
	if err != nil {
		return nil, nil, err
	}
	coord := checkpoint.NewCoordinator(store, every, snap.Meta, scope)
	engine.SetCheckpointer(coord)
	queryDepth := -1
	if snap.Query != nil {
		queryDepth = snap.Query.Depth
	}
	verdicts := 0
	if snap.Memo != nil {
		verdicts = len(snap.Memo.Verdicts)
	}
	scope.Event("checkpoint_resume",
		slog.Uint64("seq", snap.Meta.Seq),
		slog.String("stage", snap.Meta.Stage),
		slog.Int("memo_verdicts", verdicts),
		slog.Int("query_depth", queryDepth))
	fmt.Fprintf(os.Stderr, "spacebound: resuming from snapshot %d, stage %q (%d memoised verdicts, in-flight query depth %d)\n",
		snap.Meta.Seq, snap.Meta.Stage, verdicts, queryDepth)
	return engine, coord, nil
}
