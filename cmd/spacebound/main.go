// Command spacebound runs the paper's Theorem 1 adversary against a
// consensus protocol and prints the witness: an execution after which n-1
// distinct registers are covered or written (experiment E1), optionally as
// a Graphviz figure in the style of the paper's Figure 4 (experiment E4).
//
// Usage:
//
//	spacebound [-protocol diskrace] [-n 3] [-max-configs 0] [-workers 0] [-timeout 0] [-figures] [-transcript]
//	           [-debug-addr host:port] [-trace-out trace.jsonl]
//
// -debug-addr starts the live observability endpoint (/debug/pprof,
// /debug/vars, /progress) for watching or profiling a long construction;
// -trace-out streams the construction's phase spans and exploration levels
// as JSONL ("-" for stderr).
//
// Exit codes: 0 on a complete witness, 3 when a -timeout or -max-configs
// budget interrupted the construction (the partial progress is printed to
// stderr), 1 on any other failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/valency"
)

func main() {
	if err := run(); err != nil {
		var partial *adversary.Partial
		if errors.As(err, &partial) {
			fmt.Fprintln(os.Stderr, "spacebound: search interrupted; progress so far:")
			fmt.Fprintln(os.Stderr, partial.String())
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "spacebound:", err)
		os.Exit(1)
	}
}

func run() error {
	protocol := flag.String("protocol", core.ProtocolDiskRace, "protocol to attack (diskrace, flood)")
	n := flag.Int("n", 3, "number of processes")
	maxConfigs := flag.Int("max-configs", 0, "cap per valency query (0 = default)")
	workers := flag.Int("workers", 0, "exploration workers per valency query (0 = GOMAXPROCS, 1 = sequential)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole construction (0 = none)")
	figures := flag.Bool("figures", false, "emit the witness as Graphviz DOT (paper Figure 4 style)")
	transcript := flag.Bool("transcript", false, "print the full step-by-step execution")
	debugAddr := flag.String("debug-addr", "", "listen address for /debug/pprof, /debug/vars and /progress (empty = off)")
	traceOut := flag.String("trace-out", "", "JSONL trace output path (empty = off, - = stderr)")
	flag.Parse()

	m, opts, err := core.Machine(*protocol)
	if err != nil {
		return err
	}
	if *maxConfigs > 0 {
		opts.MaxConfigs = *maxConfigs
	}
	opts.Workers = *workers
	scope, stopObs, err := obs.Start(obs.Config{TraceOut: *traceOut, DebugAddr: *debugAddr})
	if err != nil {
		return err
	}
	defer func() {
		if err := stopObs(); err != nil {
			fmt.Fprintln(os.Stderr, "spacebound: observability shutdown:", err)
		}
	}()
	opts.Obs = scope
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	engine := adversary.New(valency.New(opts))
	w, err := engine.Theorem1(ctx, m, *n)
	if err != nil {
		return err
	}

	fmt.Println(w)
	fmt.Println()
	fmt.Print(trace.CoverTable(w))
	stats := engine.Oracle().Stats()
	fmt.Printf("\nvalency oracle: %d queries (%d memoised), %d solo searches (%d memoised), %d configurations searched\n",
		stats.Queries, stats.Hits, stats.SoloQueries, stats.SoloHits, stats.Configs)

	if *transcript {
		initial := model.NewConfig(m, w.Inputs)
		fmt.Println("\nexecution transcript:")
		fmt.Print(trace.Transcript(initial, w.Execution))
	}
	if *figures {
		fmt.Println()
		fmt.Print(trace.Theorem1DOT(w))
	}
	return nil
}
