package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/ledger"
	"repro/internal/server"
)

// runRemote is the -server mode: submit the spec to a provesrv instance,
// wait for the job to settle, print the served witness, and verify the
// ledger's Merkle inclusion proof client-side so trust in the result does
// not depend on trusting the server's word.
func runRemote(ctx context.Context, base string, spec server.JobSpec, witnessOut string) error {
	st, err := submitRemote(ctx, base, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spacebound: job %s accepted by %s\n", st.ID, base)

	// Poll until the job settles AND its witness is ledgered (the proof
	// endpoint needs the batch flushed).
	for st.State != server.StateDone || st.Ledger == nil {
		if st.State == server.StateFailed {
			return fmt.Errorf("server job %s failed (%s): %s", st.ID, st.Reason, st.LastError)
		}
		if err := sleepCtx(ctx, 250*time.Millisecond); err != nil {
			return fmt.Errorf("%w: job %s still %s after %d attempt(s)", errInterrupted, st.ID, st.State, st.Attempts)
		}
		if err := getJSON(ctx, base+"/jobs/"+st.ID, &st); err != nil {
			return err
		}
	}

	body, err := getBody(ctx, base+"/jobs/"+st.ID+"/witness")
	if err != nil {
		return err
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != st.WitnessSHA256 {
		return fmt.Errorf("%w: served witness does not hash to the status's sha256", errVerifyFailed)
	}
	var proof ledger.Proof
	if err := getJSON(ctx, base+"/jobs/"+st.ID+"/proof", &proof); err != nil {
		return err
	}
	if err := proof.Verify(); err != nil {
		return fmt.Errorf("%w: inclusion proof: %v", errVerifyFailed, err)
	}
	if proof.Witness != sum {
		return fmt.Errorf("%w: inclusion proof commits to different witness bytes", errVerifyFailed)
	}

	os.Stdout.Write(body)
	fmt.Fprintf(os.Stderr,
		"spacebound: witness verified against ledger batch %d (root %s), inclusion proof checked locally\n",
		proof.BatchSeq, proof.Root)
	if witnessOut != "" {
		if err := checkpoint.WriteArtifact(witnessOut, body); err != nil {
			return fmt.Errorf("witness artifact: %w", err)
		}
		fmt.Fprintf(os.Stderr, "spacebound: witness written to %s (+.sha256)\n", witnessOut)
	}
	return nil
}

// submitRemote posts the spec, honouring 429 Retry-After backpressure.
func submitRemote(ctx context.Context, base string, spec server.JobSpec) (server.Status, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return server.Status{}, err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", bytes.NewReader(payload))
		if err != nil {
			return server.Status{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return server.Status{}, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st server.Status
			if err := json.Unmarshal(data, &st); err != nil {
				return server.Status{}, fmt.Errorf("submit response: %w", err)
			}
			return st, nil
		case http.StatusTooManyRequests:
			wait := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			fmt.Fprintf(os.Stderr, "spacebound: server saturated, retrying in %s\n", wait)
			if err := sleepCtx(ctx, wait); err != nil {
				return server.Status{}, fmt.Errorf("%w: while backing off a saturated server", errInterrupted)
			}
		default:
			return server.Status{}, fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(data))
		}
	}
}

// getJSON fetches and decodes one JSON resource.
func getJSON(ctx context.Context, url string, v any) error {
	data, err := getBody(ctx, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// Retry tuning for GETs against the server: a status poll must survive a
// flaky network or a briefly overloaded server instead of aborting the
// whole wait, so transient failures — connection errors, 5xx, 429 — are
// retried with capped exponential backoff and seeded jitter (the same
// shape the server's own job supervisor uses). Retry-After, when the
// server sends one, floors the wait. Anything 4xx is terminal: resending
// the same request cannot fix it.
const (
	getRetryBase     = 250 * time.Millisecond
	getRetryMax      = 4 * time.Second
	getRetryAttempts = 6
)

// getJitter is the seeded jitter source for GET retries.
var getJitter = rand.New(rand.NewSource(int64(os.Getpid())*1e9 + time.Now().UnixNano()%1e9))

// getRetryDelay computes the wait before retry attempt (1-based): doubling
// from getRetryBase, capped at getRetryMax, plus up to 25% jitter.
func getRetryDelay(attempt int) time.Duration {
	d := getRetryBase
	for i := 1; i < attempt && d < getRetryMax; i++ {
		d *= 2
	}
	if d > getRetryMax {
		d = getRetryMax
	}
	return d + time.Duration(getJitter.Int63n(int64(d/4)+1))
}

// getBody fetches one resource, retrying transient failures.
func getBody(ctx context.Context, url string) ([]byte, error) {
	var lastErr error
	for attempt := 1; attempt <= getRetryAttempts; attempt++ {
		if attempt > 1 {
			delay := getRetryDelay(attempt - 1)
			var ra retryAfterError
			if errors.As(lastErr, &ra) && ra.wait > delay {
				delay = ra.wait
			}
			if err := sleepCtx(ctx, delay); err != nil {
				return nil, fmt.Errorf("%w: retrying %s: %v", errInterrupted, url, lastErr)
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			lastErr = err
			continue
		}
		data, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			lastErr = fmt.Errorf("GET %s: %s", url, resp.Status)
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					lastErr = retryAfterError{err: lastErr, wait: time.Duration(secs) * time.Second}
				}
			}
			continue
		case resp.StatusCode != http.StatusOK:
			return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(data))
		case readErr != nil:
			lastErr = fmt.Errorf("GET %s: reading body: %w", url, readErr)
			continue
		}
		return data, nil
	}
	return nil, fmt.Errorf("GET %s: giving up after %d attempts: %w", url, getRetryAttempts, lastErr)
}

// retryAfterError carries a server-provided Retry-After floor through the
// retry loop.
type retryAfterError struct {
	err  error
	wait time.Duration
}

func (e retryAfterError) Error() string { return e.err.Error() }
func (e retryAfterError) Unwrap() error { return e.err }

// sleepCtx sleeps d or returns the context's error if it fires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
