// Command benchreport runs a fixed exploration benchmark suite and emits a
// machine-readable perf trajectory (BENCH_explore.json): configurations per
// second, allocations per configuration and peak frontier size for the
// sequential and parallel engines, plus end-to-end Theorem 1 wall-clock
// rows. CI uploads the file as an artifact on every run so regressions in
// the exploration hot path show up as a broken trend, not an anecdote.
//
// Usage:
//
//	benchreport [-out BENCH_explore.json] [-check] [-baseline old.json]
//	            [-debug-addr host:port] [-trace-out trace.jsonl] [-record-every 250ms]
//	            [-checkpoint-dir dir] [-checkpoint-every 5s] [-resume] [-spill-budget bytes]
//
// Every run records the final observability snapshot (memo hit rates, peak
// frontier, dedup hits) in the report's "metrics" object and the flight
// recorder's time-series ring (sampled at -record-every across every row,
// ticked at each BFS level boundary) in "timeseries", so the perf
// trajectory tracks cache behaviour over time alongside configs/sec;
// -debug-addr and -trace-out additionally expose the run live.
//
// The suite always ends with a checkpointed repeat of the Theorem 1 n=4
// row and embeds its snapshot counters plus the overhead fraction versus
// the unchecked row in the report's "checkpoint" object, so the cost of
// crash safety is part of the perf trajectory (target: < 5% at the default
// -checkpoint-every 5s). -checkpoint-dir persists those snapshots (and
// lets -resume fast-forward the row); without it they go to a temp
// directory that is deleted on exit.
//
// Each reach row is best-of-3 (configs/sec is a capability metric; runner
// noise only ever subtracts from it) and the DiskRace rows carry
// pack_ns_per_config / hash_ns_per_config columns decomposing the hot path
// into its packed-codec and fingerprint halves.
//
// With -check the command exits non-zero on perf-floor violations: the
// parallel engine's configs/sec on the DiskRace n=3 reference workload
// below half of the sequential engine's (a floor, not a target: on
// multi-core runners the expected ratio is well above 1, and on a
// single-core machine the parallel configuration degrades to the
// sequential inline path and the ratio sits near 1), or a sequential
// DiskRace row allocating more than 4 allocs per visited configuration.
//
// With -baseline the report is compared against a previous one and the
// command exits non-zero if any reach row present in both regressed more
// than 20% in configs/sec — the CI bench-compare job runs the merge-base's
// benchreport and gates the PR's report against it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/adversary"
	"repro/internal/checkpoint"
	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/valency"
)

// Run is one benchmark row.
type Run struct {
	Name          string  `json:"name"`
	Workers       int     `json:"workers"`
	Configs       int     `json:"configs"`
	Steps         int     `json:"steps"`
	PeakFrontier  int     `json:"peak_frontier"`
	Capped        bool    `json:"capped"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	ConfigsPerSec float64 `json:"configs_per_sec"`
	AllocsPerCfg  float64 `json:"allocs_per_config"`
	BytesPerCfg   float64 `json:"bytes_per_config"`
	// PackNsPerCfg and HashNsPerCfg decompose the hot path: nanoseconds to
	// pack one configuration of this workload into its codec record, and
	// to stream+hash its canonical key, measured steady-state over a
	// sample of the reachable space.
	PackNsPerCfg float64 `json:"pack_ns_per_config,omitempty"`
	HashNsPerCfg float64 `json:"hash_ns_per_config,omitempty"`
}

// TheoremRun is one end-to-end Theorem 1 row (experiment E15).
type TheoremRun struct {
	Protocol      string  `json:"protocol"`
	N             int     `json:"n"`
	Checkpointed  bool    `json:"checkpointed,omitempty"`
	Completed     bool    `json:"completed"`
	Registers     int     `json:"registers"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	OracleConfigs int     `json:"oracle_configs"`
	ConfigsPerSec float64 `json:"configs_per_sec"`
	Err           string  `json:"error,omitempty"`
}

// CheckpointStats summarises the checkpointed Theorem 1 n=4 row: how many
// snapshots it wrote, how big they were, how much frontier spilled to disk,
// and what crash safety cost relative to the unchecked row.
type CheckpointStats struct {
	Writes      int   `json:"writes"`
	Bytes       int64 `json:"bytes"`
	SpillChunks int64 `json:"spill_chunks"`
	SpillBytes  int64 `json:"spill_bytes"`
	// OverheadFrac is (checkpointed - plain) / plain elapsed time for the
	// DiskRace n=4 row; the roadmap target is < 0.05 at the default 5s
	// interval.
	OverheadFrac float64 `json:"overhead_frac"`
}

// Report is the whole BENCH_explore.json document.
type Report struct {
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Runs       []Run        `json:"runs"`
	Theorem1   []TheoremRun `json:"theorem1"`
	// SpeedupDiskRaceN3 is parallel/sequential configs-per-second on the
	// DiskRace n=3 reference workload — the ratio -check gates on.
	SpeedupDiskRaceN3 float64 `json:"speedup_diskrace_n3"`
	// Checkpoint reports the checkpointed n=4 row's snapshot counters and
	// overhead versus the unchecked row.
	Checkpoint *CheckpointStats `json:"checkpoint,omitempty"`
	// Metrics is the final observability-registry snapshot of the whole
	// suite: valency memo hit rates, explore peak frontier and dedup
	// hits, lemma 4 rounds — the cache-behaviour half of the perf
	// trajectory.
	Metrics map[string]any `json:"metrics"`
	// Timeseries is the flight recorder's ring at the end of the suite: the
	// per-level trajectory of the scalar metrics (frontier, fpSet load,
	// memo hits, arena occupancy) across every row, sampled no denser than
	// -record-every.
	Timeseries obs.TimeSeries `json:"timeseries"`
}

func diskOpts() explore.Options {
	return explore.Options{
		KeyFn: consensus.DiskRace{}.CanonicalKey,
		KeyTo: consensus.DiskRace{}.CanonicalKeyTo,
	}
}

// measureReach runs the workload reachAttempts times and reports the
// fastest attempt. Configs/sec is a capability metric — scheduler noise and
// neighbouring tenants only ever subtract from it — so best-of-N is the
// stable estimator, and it is what keeps the -baseline regression gate from
// tripping on a noisy runner.
const reachAttempts = 3

func measureReach(name string, c model.Config, pids []int, opts explore.Options) (Run, error) {
	var best Run
	for attempt := 0; attempt < reachAttempts; attempt++ {
		r, err := measureReachOnce(name, c, pids, opts)
		if err != nil {
			return Run{}, err
		}
		if attempt == 0 || r.ConfigsPerSec > best.ConfigsPerSec {
			best = r
		}
	}
	return best, nil
}

func measureReachOnce(name string, c model.Config, pids []int, opts explore.Options) (Run, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := explore.Reach(context.Background(), c, pids, opts, nil)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil && !res.Capped {
		return Run{}, fmt.Errorf("%s: %w", name, err)
	}
	r := Run{
		Name:         name,
		Workers:      opts.Workers,
		Configs:      res.Count,
		Steps:        res.Steps,
		PeakFrontier: res.PeakFrontier,
		Capped:       res.Capped,
		ElapsedSec:   elapsed.Seconds(),
	}
	if elapsed > 0 {
		r.ConfigsPerSec = float64(res.Count) / elapsed.Seconds()
	}
	if res.Count > 0 {
		r.AllocsPerCfg = float64(after.Mallocs-before.Mallocs) / float64(res.Count)
		r.BytesPerCfg = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Count)
	}
	return r, nil
}

// measurePackHash samples the workload's reachable space and times the two
// packed-path primitives steady-state: PackTo into a warm codec and a
// streamed canonical-key hash. Per-configuration nanoseconds for both feed
// the pack_ns_per_config / hash_ns_per_config columns.
func measurePackHash(c model.Config, pids []int, opts explore.Options, sample int) (packNs, hashNs float64, err error) {
	opts.Workers = 1
	opts.MaxConfigs = sample
	var cfgs []model.Config
	_, rerr := explore.Reach(context.Background(), c, pids, opts, func(v explore.Visit) bool {
		cfgs = append(cfgs, v.Config.Clone())
		return true
	})
	if rerr != nil && len(cfgs) < sample-1 {
		return 0, 0, rerr
	}
	if len(cfgs) == 0 {
		return 0, 0, fmt.Errorf("pack/hash sample is empty")
	}

	codec := model.NewPackedCodec(c)
	dst := make([]uint64, codec.Words())
	for _, cfg := range cfgs { // warm the dictionaries
		if err := codec.PackTo(dst, cfg); err != nil {
			return 0, 0, err
		}
	}
	timeIt := func(op func(model.Config)) float64 {
		const minWindow = 50 * time.Millisecond
		ops := 0
		start := time.Now()
		for time.Since(start) < minWindow {
			for _, cfg := range cfgs {
				op(cfg)
			}
			ops += len(cfgs)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(ops)
	}
	packNs = timeIt(func(cfg model.Config) { _ = codec.PackTo(dst, cfg) })
	fper := opts.NewFingerprinter()
	hashNs = timeIt(func(cfg model.Config) { _ = fper.Fingerprint(cfg) })
	return packNs, hashNs, nil
}

func measureTheorem1(protocol model.Machine, opts explore.Options, n int, budget time.Duration, scope *obs.Scope) TheoremRun {
	opts.Obs = scope
	return measureTheorem1Engine(adversary.New(valency.New(opts)), protocol, n, budget)
}

func measureTheorem1Engine(engine *adversary.Engine, protocol model.Machine, n int, budget time.Duration) TheoremRun {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	w, err := engine.Theorem1(ctx, protocol, n)
	elapsed := time.Since(start)
	tr := TheoremRun{
		Protocol:   protocol.Name(),
		N:          n,
		ElapsedSec: elapsed.Seconds(),
	}
	stats := engine.Oracle().Stats()
	tr.OracleConfigs = stats.Configs
	if elapsed > 0 {
		tr.ConfigsPerSec = float64(stats.Configs) / elapsed.Seconds()
	}
	if err != nil {
		tr.Err = err.Error()
		return tr
	}
	tr.Completed = true
	tr.Registers = w.Registers
	return tr
}

// checkpointedN4 reruns the DiskRace n=4 Theorem 1 row with crash-safe
// snapshots attached and reports the row plus its checkpoint counters.
// plain is the unchecked row it is compared against for overhead.
func checkpointedN4(plain TheoremRun, scope *obs.Scope, dir string, every time.Duration, resume bool, spillBudget int64) (TheoremRun, *CheckpointStats, error) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "benchreport-ckpt-")
		if err != nil {
			return TheoremRun{}, nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	store, err := checkpoint.Open(dir)
	if err != nil {
		return TheoremRun{}, nil, err
	}
	opts := diskOpts()
	opts.Obs = scope
	if spillBudget > 0 {
		opts.SpillDir = dir
		opts.SpillBudget = spillBudget
	}
	meta := checkpoint.Meta{Protocol: consensus.DiskRace{}.Name(), N: 4, MaxConfigs: opts.MaxConfigs, FPVersion: explore.FingerprintVersion}
	engine := adversary.New(valency.New(opts))
	if resume {
		snap, err := store.Latest()
		if err != nil {
			return TheoremRun{}, nil, fmt.Errorf("resume: %w", err)
		}
		if snap.Meta.Protocol != meta.Protocol || snap.Meta.N != meta.N || snap.Meta.MaxConfigs != meta.MaxConfigs || snap.Meta.FPVersion != meta.FPVersion {
			return TheoremRun{}, nil, fmt.Errorf("resume: snapshot is for %s n=%d, this row is %s n=%d",
				snap.Meta.Protocol, snap.Meta.N, meta.Protocol, meta.N)
		}
		if engine, err = adversary.ResumeEngine(opts, snap); err != nil {
			return TheoremRun{}, nil, err
		}
		meta = snap.Meta
	}
	coord := checkpoint.NewCoordinator(store, every, meta, scope)
	engine.SetCheckpointer(coord)
	spillChunks := scope.Counter("spill_chunks").Value()
	spillBytes := scope.Counter("spill_bytes").Value()
	tr := measureTheorem1Engine(engine, consensus.DiskRace{}, 4, 10*time.Minute)
	tr.Checkpointed = true
	// Persist the finished memo (outside the timed window) so a pinned
	// -checkpoint-dir can fast-forward the next -resume run.
	if err := coord.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport: final checkpoint:", err)
	}
	writes, bytes := coord.Stats()
	st := &CheckpointStats{
		Writes:      writes,
		Bytes:       bytes,
		SpillChunks: scope.Counter("spill_chunks").Value() - spillChunks,
		SpillBytes:  scope.Counter("spill_bytes").Value() - spillBytes,
	}
	if plain.Completed && tr.Completed && plain.ElapsedSec > 0 {
		st.OverheadFrac = (tr.ElapsedSec - plain.ElapsedSec) / plain.ElapsedSec
	}
	return tr, st, nil
}

func run() (int, error) {
	out := flag.String("out", "BENCH_explore.json", "output path for the JSON report")
	check := flag.Bool("check", false, "exit non-zero on perf-floor violations (speedup, allocs/config, n=4 completion)")
	baseline := flag.String("baseline", "", "previous BENCH_explore.json to compare against; exit non-zero if any shared reach row regresses >20% in configs/sec")
	debugAddr := flag.String("debug-addr", "", "listen address for /debug/pprof, /debug/vars and /progress (empty = off)")
	traceOut := flag.String("trace-out", "", "JSONL trace output path (empty = off, - = stderr)")
	recordEvery := flag.Duration("record-every", 250*time.Millisecond, "flight-recorder sampling interval for the report's timeseries (negative = off)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for the checkpointed n=4 row's snapshots (empty = temp dir, deleted on exit)")
	ckptEvery := flag.Duration("checkpoint-every", 5*time.Second, "minimum interval between snapshots in the checkpointed row")
	resume := flag.Bool("resume", false, "resume the checkpointed n=4 row from its newest snapshot in -checkpoint-dir")
	spillBudget := flag.Int64("spill-budget", 0, "in-memory frontier budget for the checkpointed row; beyond it chunks spill to disk (0 = never)")
	flag.Parse()
	if *resume && *ckptDir == "" {
		return 1, fmt.Errorf("-resume requires -checkpoint-dir")
	}

	// The scope observes every row, microbenchmarks included: the suite's
	// allocs/config and configs/sec numbers are measured with the flight
	// recorder fully enabled, so the -check gates hold for the instrumented
	// engine — the only configuration anyone runs in production. Its final
	// snapshot and time-series ring are embedded in the report whether or
	// not the live endpoints were requested.
	scope, stopObs, err := obs.Start(obs.Config{TraceOut: *traceOut, DebugAddr: *debugAddr, RecordEvery: *recordEvery})
	if err != nil {
		return 1, err
	}
	if scope == nil {
		scope = obs.NewScope(nil)
		stopObs = func() error { return nil }
	}
	if *recordEvery >= 0 && scope.Recorder() == nil {
		// No live endpoint requested, so obs.Start handed back a bare scope;
		// the report still wants the trajectory. Level-boundary ticks feed
		// the ring — no background goroutine needed for a batch run.
		scope.SetRecorder(obs.NewRecorder(scope.Registry(), *recordEvery, 2048))
	}
	defer func() {
		if err := stopObs(); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport: observability shutdown:", err)
		}
	}()

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Reference workloads: DiskRace n=3 and n=4, all processes, capped so
	// each run is a fixed amount of work (the full quotients are millions
	// of configurations; the cap keeps the suite in seconds).
	diskCfg := model.NewConfig(consensus.DiskRace{}, []model.Value{"0", "1", "1"})
	diskCfg4 := model.NewConfig(consensus.DiskRace{}, []model.Value{"0", "1", "1", "1"})
	const diskCap = 200_000

	packNs3, hashNs3, err := measurePackHash(diskCfg, []int{0, 1, 2}, diskOpts(), 20_000)
	if err != nil {
		return 1, err
	}
	var seqRate, parRate float64
	for _, workers := range []int{1, 0} {
		opts := diskOpts()
		opts.MaxConfigs = diskCap
		opts.Workers = workers
		opts.Obs = scope
		name := "diskrace_n3_seq"
		if workers == 0 {
			name = "diskrace_n3_par"
		}
		r, err := measureReach(name, diskCfg, []int{0, 1, 2}, opts)
		if err != nil {
			return 1, err
		}
		r.PackNsPerCfg, r.HashNsPerCfg = packNs3, hashNs3
		rep.Runs = append(rep.Runs, r)
		if workers == 1 {
			seqRate = r.ConfigsPerSec
		} else {
			parRate = r.ConfigsPerSec
		}
	}
	if seqRate > 0 {
		rep.SpeedupDiskRaceN3 = parRate / seqRate
	}

	{
		opts := diskOpts()
		opts.MaxConfigs = diskCap
		opts.Workers = 1
		opts.Obs = scope
		r, err := measureReach("diskrace_n4_seq", diskCfg4, []int{0, 1, 2, 3}, opts)
		if err != nil {
			return 1, err
		}
		packNs, hashNs, err := measurePackHash(diskCfg4, []int{0, 1, 2, 3}, diskOpts(), 20_000)
		if err != nil {
			return 1, err
		}
		r.PackNsPerCfg, r.HashNsPerCfg = packNs, hashNs
		rep.Runs = append(rep.Runs, r)
	}

	// Exhaustive small workload: Flood n=3 (finite space, no cap).
	floodCfg := model.NewConfig(consensus.Flood{}, []model.Value{"0", "1", "1"})
	for _, workers := range []int{1, 0} {
		name := "flood_n3_seq"
		if workers == 0 {
			name = "flood_n3_par"
		}
		r, err := measureReach(name, floodCfg, []int{0, 1, 2}, explore.Options{Workers: workers, Obs: scope})
		if err != nil {
			return 1, err
		}
		rep.Runs = append(rep.Runs, r)
	}

	// End-to-end Theorem 1 rows (experiment E15): n=3 as the historical
	// reference point, n=4 as the run this engine exists to make feasible.
	rep.Theorem1 = append(rep.Theorem1,
		measureTheorem1(consensus.DiskRace{}, diskOpts(), 3, 5*time.Minute, scope),
		measureTheorem1(consensus.DiskRace{}, diskOpts(), 4, 10*time.Minute, scope),
	)

	// Checkpointed repeat of the n=4 row: same construction, snapshots
	// every -checkpoint-every, counters and overhead embedded in the
	// report. Runs against a throwaway temp directory unless the operator
	// pins one with -checkpoint-dir.
	ckptRow, ckptStats, err := checkpointedN4(rep.Theorem1[len(rep.Theorem1)-1], scope,
		*ckptDir, *ckptEvery, *resume, *spillBudget)
	if err != nil {
		return 1, err
	}
	rep.Theorem1 = append(rep.Theorem1, ckptRow)
	rep.Checkpoint = ckptStats
	rep.Metrics = scope.Registry().Snapshot()
	rep.Timeseries = scope.Recorder().Snapshot()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return 1, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return 1, err
	}
	fmt.Printf("wrote %s: diskrace n=3 %0.f configs/s sequential, %0.f configs/s parallel (speedup %.2fx, %d cpu)\n",
		*out, seqRate, parRate, rep.SpeedupDiskRaceN3, rep.NumCPU)
	for _, tr := range rep.Theorem1 {
		status := "completed"
		if !tr.Completed {
			status = "INCOMPLETE: " + tr.Err
		}
		name := tr.Protocol
		if tr.Checkpointed {
			name += " (checkpointed)"
		}
		fmt.Printf("theorem1 %s n=%d: %.2fs, %d oracle configs, %s\n",
			name, tr.N, tr.ElapsedSec, tr.OracleConfigs, status)
	}
	if rep.Checkpoint != nil {
		fmt.Printf("checkpointing: %d snapshots, %d bytes, %d spill chunks, %.1f%% overhead vs unchecked n=4\n",
			rep.Checkpoint.Writes, rep.Checkpoint.Bytes, rep.Checkpoint.SpillChunks, 100*rep.Checkpoint.OverheadFrac)
	}

	if *check {
		if !rep.Theorem1[len(rep.Theorem1)-1].Completed {
			return 2, fmt.Errorf("theorem 1 n=4 did not complete within budget")
		}
		if rep.SpeedupDiskRaceN3 < 0.5 {
			return 2, fmt.Errorf("parallel engine is %.2fx sequential (< 0.5x floor) on diskrace n=3", rep.SpeedupDiskRaceN3)
		}
		for _, r := range rep.Runs {
			if r.Name == "diskrace_n3_seq" || r.Name == "diskrace_n4_seq" {
				if r.AllocsPerCfg > maxAllocsPerCfg {
					return 2, fmt.Errorf("%s allocates %.2f allocs/config (> %.0f ceiling)", r.Name, r.AllocsPerCfg, maxAllocsPerCfg)
				}
			}
		}
	}
	if *baseline != "" {
		if err := compareBaseline(rep, *baseline); err != nil {
			return 2, err
		}
	}
	return 0, nil
}

// maxAllocsPerCfg is the -check ceiling on steady-state allocations per
// visited configuration for the sequential DiskRace rows. The packed arena
// core runs well under 1; 4 leaves room for GC-cycle jitter without letting
// a per-configuration allocation sneak back into the hot loop.
const maxAllocsPerCfg = 4.0

// compareBaseline fails if any reach row shared with the baseline report
// lost more than 20% configs/sec. Rows present only on one side are ignored
// so the gate survives adding or renaming workloads.
func compareBaseline(rep Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseRate := make(map[string]float64, len(base.Runs))
	for _, r := range base.Runs {
		baseRate[r.Name] = r.ConfigsPerSec
	}
	const floor = 0.8
	var regressions []string
	for _, r := range rep.Runs {
		want, ok := baseRate[r.Name]
		if !ok || want <= 0 {
			continue
		}
		ratio := r.ConfigsPerSec / want
		fmt.Printf("baseline %s: %.0f -> %.0f configs/s (%.2fx)\n", r.Name, want, r.ConfigsPerSec, ratio)
		if ratio < floor {
			regressions = append(regressions, fmt.Sprintf("%s %.0f -> %.0f configs/s (%.2fx < %.2fx floor)",
				r.Name, want, r.ConfigsPerSec, ratio, floor))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("configs/sec regressed vs %s: %s", path, regressions[0])
	}
	return nil
}

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(code)
	}
}
