// Command consensusrace runs the native protocols under real goroutine
// concurrency and prints agreement outcomes and register audits
// (experiments E2 and E9). With -faults it runs DiskRace under
// deterministic, replayable fault plans instead of free-running goroutines:
// crashes land at exact per-process operation indices and every run is
// watchdog-guarded.
//
// Usage:
//
//	consensusrace [-n 8] [-trials 20] [-randomized]
//	              [-timeout 10s] [-seed 1] [-faults off|random|exhaustive]
//
// Exit codes: 0 on success, 2 on an agreement/audit violation, 1 on any
// other failure.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/native"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "consensusrace:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	n := flag.Int("n", 8, "number of processes")
	trials := flag.Int("trials", 20, "number of independent races")
	randomized := flag.Bool("randomized", false, "race the randomized protocol instead of DiskRace")
	timeout := flag.Duration("timeout", 10*time.Second, "watchdog per fault-injected run")
	seed := flag.Int64("seed", 1, "seed for fault-plan generation")
	faultMode := flag.String("faults", "off", "fault injection: off, random, exhaustive")
	flag.Parse()

	if *faultMode != "off" {
		if *randomized {
			return 1, fmt.Errorf("-faults applies to DiskRace only (drop -randomized)")
		}
		return runFaulty(*n, *trials, *seed, *faultMode, *timeout)
	}

	decidedOnes := 0
	var flips int
	for trial := 0; trial < *trials; trial++ {
		v, f, err := race(*n, trial, *randomized)
		if err != nil {
			return 2, err
		}
		decidedOnes += v
		flips += f
	}
	name := "diskrace"
	if *randomized {
		name = "randomized"
	}
	fmt.Printf("%s n=%d: %d trials, all agreed; decided 1 in %d trials", name, *n, *trials, decidedOnes)
	if *randomized {
		fmt.Printf("; %d total coin flips", flips)
	}
	fmt.Println()
	return 0, nil
}

// runFaulty races DiskRace under generated fault plans: every surviving
// decider must agree in every run, and no plan may wedge past the watchdog.
func runFaulty(n, trials int, seed int64, mode string, timeout time.Duration) (int, error) {
	var plans []faults.Plan
	switch mode {
	case "random":
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < trials; i++ {
			crashes := 1
			if n > 2 {
				crashes += rng.Intn(n - 1)
			}
			plans = append(plans, faults.Random(rng.Int63(), n, crashes, 1+rng.Intn(8*n)))
		}
	case "exhaustive":
		plans = faults.ExhaustiveSmall(n, 4*n)
	default:
		return 1, fmt.Errorf("unknown -faults mode %q (want off, random or exhaustive)", mode)
	}

	crashed, watchdogs := 0, 0
	for i, plan := range plans {
		inputs := make([]int, n)
		for pid := range inputs {
			inputs[pid] = (pid + i) % 2
		}
		rep, err := native.RunDiskRaceFaulty(inputs, plan, timeout)
		if err != nil {
			return 1, fmt.Errorf("plan %d (%v): %w", i, plan, err)
		}
		if rep.Watchdog {
			watchdogs++
			fmt.Fprintf(os.Stderr, "consensusrace: plan %d (%v) hit the %v watchdog\n", i, plan, timeout)
			continue
		}
		if !rep.Agreement() {
			return 2, fmt.Errorf("plan %d (%v): agreement violated: %v", i, plan, rep.Decided)
		}
		for pid, perr := range rep.Errors {
			return 2, fmt.Errorf("plan %d (%v): p%d failed: %w", i, plan, pid, perr)
		}
		crashed += len(rep.Crashed)
	}
	fmt.Printf("diskrace n=%d faults=%s: %d plans, all surviving deciders agreed; %d crashes injected, %d watchdog aborts\n",
		n, mode, len(plans), crashed, watchdogs)
	if watchdogs > 0 {
		return 3, nil
	}
	return 0, nil
}

func race(n, trial int, randomized bool) (int, int, error) {
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = (i + trial) % 2
	}
	decided := make([]int, n)
	flips := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	var d *native.DiskRace
	var r *native.Randomized
	if randomized {
		r = native.NewRandomized(n)
	} else {
		d = native.NewDiskRace(n)
	}
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			if randomized {
				res, err := r.Propose(pid, inputs[pid], rand.New(rand.NewSource(int64(trial*1000+pid))))
				decided[pid], flips[pid], errs[pid] = res.Value, res.Flips, err
				return
			}
			decided[pid], errs[pid] = d.Propose(pid, inputs[pid])
		}(pid)
	}
	wg.Wait()
	totalFlips := 0
	for pid := 0; pid < n; pid++ {
		if errs[pid] != nil {
			return 0, 0, errs[pid]
		}
		if decided[pid] != decided[0] {
			return 0, 0, fmt.Errorf("trial %d: agreement violated: %v", trial, decided)
		}
		totalFlips += flips[pid]
	}
	if !randomized {
		if got := d.Stats().Touched; got != n {
			return 0, 0, fmt.Errorf("trial %d: wrote %d registers, expected n=%d", trial, got, n)
		}
	}
	return decided[0], totalFlips, nil
}
