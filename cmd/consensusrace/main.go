// Command consensusrace runs the native protocols under real goroutine
// concurrency and prints agreement outcomes and register audits
// (experiments E2 and E9).
//
// Usage:
//
//	consensusrace [-n 8] [-trials 20] [-randomized]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"repro/internal/native"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consensusrace:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 8, "number of processes")
	trials := flag.Int("trials", 20, "number of independent races")
	randomized := flag.Bool("randomized", false, "race the randomized protocol instead of DiskRace")
	flag.Parse()

	decidedOnes := 0
	var flips int
	for trial := 0; trial < *trials; trial++ {
		v, f, err := race(*n, trial, *randomized)
		if err != nil {
			return err
		}
		decidedOnes += v
		flips += f
	}
	name := "diskrace"
	if *randomized {
		name = "randomized"
	}
	fmt.Printf("%s n=%d: %d trials, all agreed; decided 1 in %d trials", name, *n, *trials, decidedOnes)
	if *randomized {
		fmt.Printf("; %d total coin flips", flips)
	}
	fmt.Println()
	return nil
}

func race(n, trial int, randomized bool) (int, int, error) {
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = (i + trial) % 2
	}
	decided := make([]int, n)
	flips := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	var d *native.DiskRace
	var r *native.Randomized
	if randomized {
		r = native.NewRandomized(n)
	} else {
		d = native.NewDiskRace(n)
	}
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			if randomized {
				res, err := r.Propose(pid, inputs[pid], rand.New(rand.NewSource(int64(trial*1000+pid))))
				decided[pid], flips[pid], errs[pid] = res.Value, res.Flips, err
				return
			}
			decided[pid], errs[pid] = d.Propose(pid, inputs[pid])
		}(pid)
	}
	wg.Wait()
	totalFlips := 0
	for pid := 0; pid < n; pid++ {
		if errs[pid] != nil {
			return 0, 0, errs[pid]
		}
		if decided[pid] != decided[0] {
			return 0, 0, fmt.Errorf("trial %d: agreement violated: %v", trial, decided)
		}
		totalFlips += flips[pid]
	}
	if !randomized {
		if got := d.Stats().Touched; got != n {
			return 0, 0, fmt.Errorf("trial %d: wrote %d registers, expected n=%d", trial, got, n)
		}
	}
	return decided[0], totalFlips, nil
}
