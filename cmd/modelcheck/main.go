// Command modelcheck verifies a consensus protocol by bounded-exhaustive
// state-space exploration: Agreement, Validity and solo termination over
// every binary input vector (experiments E2/E3 support), plus an optional
// crash-tolerance phase driven by deterministic fault plans.
//
// Usage:
//
//	modelcheck [-protocol flood] [-n 2] [-max-configs 0] [-skip-solo]
//	           [-timeout 0] [-seed 1] [-faults off|random|covering|exhaustive] [-crash-trials 200]
//
// Exit codes: 0 on a clean pass, 2 when the checker finds a violation,
// 3 when a -timeout budget cut the exploration short (the report covers
// only what was explored), 1 on any other failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	protocol := flag.String("protocol", core.ProtocolFlood, "protocol to verify (diskrace, flood, eagerflood, greedyflood)")
	n := flag.Int("n", 2, "number of processes")
	maxConfigs := flag.Int("max-configs", 0, "cap per exploration (0 = default)")
	skipSolo := flag.Bool("skip-solo", false, "skip the solo-termination check")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole check (0 = none)")
	seed := flag.Int64("seed", 1, "seed for fault-plan generation and injected schedules")
	faultMode := flag.String("faults", "off", "crash-tolerance phase: off, random, covering, exhaustive")
	crashTrials := flag.Int("crash-trials", check.DefaultCrashTrials, "trials for -faults random")
	flag.Parse()

	switch *faultMode {
	case "off", "random", "covering", "exhaustive":
	default:
		return 1, fmt.Errorf("unknown -faults mode %q (want off, random, covering or exhaustive)", *faultMode)
	}
	m, opts, err := core.Machine(*protocol)
	if err != nil {
		return 1, err
	}
	if *maxConfigs > 0 {
		opts.MaxConfigs = *maxConfigs
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	report, err := check.Consensus(ctx, m, *n, check.Options{
		Explore:  opts,
		SkipSolo: *skipSolo,
	})
	if err != nil {
		return 1, err
	}
	fmt.Println(report)
	if !report.OK() {
		return 2, nil
	}
	if report.Capped && ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "modelcheck: timeout cut the exploration short; the verdict covers only the explored prefix")
		return 3, nil
	}

	if *faultMode != "off" {
		crashOpts := check.CrashOptions{Seed: *seed}
		switch *faultMode {
		case "random":
			crashOpts.Trials = *crashTrials
		case "covering":
			// One covering-targeted plan per binary input vector: crash each
			// victim the first time it is poised on a write.
			for i, inputs := range check.BinaryInputs(*n) {
				plan, err := faults.CoveringTargeted(m, inputs, *seed+int64(i), *n-1, 0)
				if err != nil {
					return 1, fmt.Errorf("covering plan for inputs %v: %w", inputs, err)
				}
				crashOpts.Plans = append(crashOpts.Plans, plan)
			}
		case "exhaustive":
			crashOpts.Plans = faults.ExhaustiveSmall(*n, 12*(*n))
		}
		crashReport, err := check.CrashTolerance(m, *n, crashOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "modelcheck: crash tolerance violated:", err)
			return 2, nil
		}
		fmt.Println(crashReport)
	}
	return 0, nil
}
