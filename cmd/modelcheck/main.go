// Command modelcheck verifies a consensus protocol by bounded-exhaustive
// state-space exploration: Agreement, Validity and solo termination over
// every binary input vector (experiments E2/E3 support).
//
// Usage:
//
//	modelcheck [-protocol flood] [-n 2] [-max-configs 0] [-skip-solo]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	protocol := flag.String("protocol", core.ProtocolFlood, "protocol to verify (diskrace, flood, eagerflood, greedyflood)")
	n := flag.Int("n", 2, "number of processes")
	maxConfigs := flag.Int("max-configs", 0, "cap per exploration (0 = default)")
	skipSolo := flag.Bool("skip-solo", false, "skip the solo-termination check")
	flag.Parse()

	m, opts, err := core.Machine(*protocol)
	if err != nil {
		return err
	}
	if *maxConfigs > 0 {
		opts.MaxConfigs = *maxConfigs
	}
	report, err := check.Consensus(m, *n, check.Options{
		Explore:  opts,
		SkipSolo: *skipSolo,
	})
	if err != nil {
		return err
	}
	fmt.Println(report)
	if !report.OK() {
		os.Exit(2)
	}
	return nil
}
