// Command experiments regenerates every experiment table of EXPERIMENTS.md
// from live runs, in Markdown, so the documented numbers are always
// reproducible with one command:
//
//	go run ./cmd/experiments [-heavy] [-debug-addr host:port] [-trace-out trace.jsonl]
//	                         [-checkpoint-dir dir] [-checkpoint-every 30s] [-resume]
//
// -heavy additionally runs the slow rows (larger n for the adversary and
// bounded model checking), which take minutes — exactly the runs worth
// watching via -debug-addr (live /progress and /debug/pprof) or recording
// via -trace-out (JSONL phase spans).
//
// -checkpoint-dir snapshots each E1 adversary row into its own
// subdirectory (<dir>/<protocol>-n<k>) every -checkpoint-every; -resume
// restarts each row from its newest snapshot, running rows with no
// snapshot from scratch, so a killed -heavy sweep loses at most one row's
// progress.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/checkpoint"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/encdec"
	"repro/internal/explore"
	"repro/internal/leader"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/native"
	"repro/internal/obs"
	"repro/internal/perturb"
	"repro/internal/valency"
)

// ckptConfig carries the checkpoint flags into each E1 adversary row.
type ckptConfig struct {
	dir    string
	every  time.Duration
	resume bool
}

// engineFor builds the adversary engine for one E1 row, checkpointing into
// a per-row subdirectory and resuming from its newest snapshot when asked.
// A -resume row with no (or an incompatible) snapshot starts fresh rather
// than failing: experiments is a batch sweep, and partial coverage of the
// checkpoint directory is the normal state after a mid-sweep kill.
func engineFor(opts explore.Options, scope *obs.Scope, protocol string, n int, cfg ckptConfig) (*adversary.Engine, *checkpoint.Coordinator, error) {
	if cfg.dir == "" {
		return adversary.New(valency.New(opts)), nil, nil
	}
	store, err := checkpoint.Open(filepath.Join(cfg.dir, fmt.Sprintf("%s-n%d", protocol, n)))
	if err != nil {
		return nil, nil, err
	}
	meta := checkpoint.Meta{Protocol: protocol, N: n, MaxConfigs: opts.MaxConfigs, FPVersion: explore.FingerprintVersion}
	if cfg.resume {
		snap, err := store.Latest()
		switch {
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// fall through to a fresh engine
		case err != nil:
			return nil, nil, fmt.Errorf("resume %s n=%d: %w", protocol, n, err)
		case snap.Meta.Protocol != protocol || snap.Meta.N != n || snap.Meta.MaxConfigs != opts.MaxConfigs ||
			snap.Meta.FPVersion != explore.FingerprintVersion:
			fmt.Fprintf(os.Stderr, "experiments: %s n=%d: snapshot is for %s n=%d, ignoring\n",
				protocol, n, snap.Meta.Protocol, snap.Meta.N)
		default:
			engine, err := adversary.ResumeEngine(opts, snap)
			if err != nil {
				return nil, nil, err
			}
			coord := checkpoint.NewCoordinator(store, cfg.every, snap.Meta, scope)
			engine.SetCheckpointer(coord)
			fmt.Fprintf(os.Stderr, "experiments: %s n=%d resuming from snapshot %d, stage %q\n",
				protocol, n, snap.Meta.Seq, snap.Meta.Stage)
			return engine, coord, nil
		}
	}
	engine := adversary.New(valency.New(opts))
	coord := checkpoint.NewCoordinator(store, cfg.every, meta, scope)
	engine.SetCheckpointer(coord)
	return engine, coord, nil
}

func main() {
	heavy := flag.Bool("heavy", false, "include slow rows (minutes)")
	debugAddr := flag.String("debug-addr", "", "listen address for /debug/pprof, /debug/vars, /metrics, /timeseries and /progress (empty = off)")
	traceOut := flag.String("trace-out", "", "JSONL trace output path (empty = off, - = stderr)")
	recordEvery := flag.Duration("record-every", 0, "flight-recorder sampling interval for /timeseries (0 = 1s default, negative = off)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for per-row crash-safe snapshots (empty = off)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "minimum interval between snapshots")
	resume := flag.Bool("resume", false, "resume each adversary row from its newest snapshot in -checkpoint-dir")
	flag.Parse()
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume requires -checkpoint-dir")
		os.Exit(1)
	}
	scope, stopObs, err := obs.Start(obs.Config{TraceOut: *traceOut, DebugAddr: *debugAddr, RecordEvery: *recordEvery})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	runErr := run(*heavy, scope, ckptConfig{dir: *ckptDir, every: *ckptEvery, resume: *resume})
	if err := stopObs(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: observability shutdown:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}

func run(heavy bool, scope *obs.Scope, ckpt ckptConfig) error {
	fmt.Println("## E1 — Theorem 1: the adversary forces n-1 distinct registers")
	fmt.Println()
	fmt.Println("| protocol | n | registers witnessed | bound n-1 | execution steps | covering rounds | oracle configs |")
	fmt.Println("|---|---|---|---|---|---|---|")
	type attack struct {
		machine model.Machine
		opts    explore.Options
		n       int
	}
	attacks := []attack{
		{consensus.Flood{}, explore.Options{}, 2},
		{consensus.DiskRace{}, explore.Options{KeyFn: consensus.DiskRace{}.CanonicalKey, KeyTo: consensus.DiskRace{}.CanonicalKeyTo}, 2},
		{consensus.DiskRace{}, explore.Options{KeyFn: consensus.DiskRace{}.CanonicalKey, KeyTo: consensus.DiskRace{}.CanonicalKeyTo}, 3},
	}
	for _, a := range attacks {
		a.opts.Obs = scope
		engine, coord, err := engineFor(a.opts, scope, a.machine.Name(), a.n, ckpt)
		if err != nil {
			return fmt.Errorf("E1 %s n=%d: %w", a.machine.Name(), a.n, err)
		}
		w, err := engine.Theorem1(context.Background(), a.machine, a.n)
		if err != nil {
			return fmt.Errorf("E1 %s n=%d: %w", a.machine.Name(), a.n, err)
		}
		if err := coord.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s n=%d final checkpoint: %v\n", a.machine.Name(), a.n, err)
		}
		st := engine.Oracle().Stats()
		fmt.Printf("| %s | %d | %d | %d | %d | %d | %d |\n",
			w.Protocol, w.N, w.Registers, w.N-1, len(w.Execution), w.Rounds, st.Configs)
	}
	fmt.Println()

	fmt.Println("## E2 — Upper bound: DiskRace writes exactly n registers (native, racing)")
	fmt.Println()
	fmt.Println("| n | registers written | reads | writes |")
	fmt.Println("|---|---|---|---|")
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		d := native.NewDiskRace(n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				_, errs[pid] = d.Propose(pid, pid%2)
			}(pid)
		}
		wg.Wait()
		for pid, err := range errs {
			if err != nil {
				return fmt.Errorf("E2 n=%d p%d: %w", n, pid, err)
			}
		}
		s := d.Stats()
		fmt.Printf("| %d | %d | %d | %d |\n", n, s.Touched, s.Reads, s.Writes)
	}
	fmt.Println()

	fmt.Println("## E3 — Proposition 2: initial bivalence (exact valency queries)")
	fmt.Println()
	fmt.Println("| protocol | n | {p0} decides | {p1} decides | {p0,p1} bivalent | configs searched |")
	fmt.Println("|---|---|---|---|---|---|")
	props := []attack{
		{consensus.Flood{}, explore.Options{}, 2},
		{consensus.Flood{}, explore.Options{}, 3},
		{consensus.DiskRace{}, explore.Options{KeyFn: consensus.DiskRace{}.CanonicalKey, KeyTo: consensus.DiskRace{}.CanonicalKeyTo}, 3},
	}
	for _, a := range props {
		a.opts.Obs = scope
		oracle := valency.New(a.opts)
		engine := adversary.New(oracle)
		if _, err := engine.InitialBivalent(context.Background(), a.machine, a.n); err != nil {
			return fmt.Errorf("E3: %w", err)
		}
		fmt.Printf("| %s | %d | {0} | {1} | yes | %d |\n", a.machine.Name(), a.n, oracle.Stats().Configs)
	}
	fmt.Println()

	fmt.Println("## E5 — Perturbation (JTT): counters need n-1 registers and n-1 solo steps")
	fmt.Println()
	fmt.Println("| n | registers covered | bound n-1 | reader solo steps |")
	fmt.Println("|---|---|---|---|")
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		w, err := perturb.NewAdversary(perturb.SWCounter{}).Run(n)
		if err != nil {
			return fmt.Errorf("E5 n=%d: %w", n, err)
		}
		fmt.Printf("| %d | %d | %d | %d |\n", n, w.Registers, n-1, w.ReaderSoloSteps)
	}
	fmt.Println()

	fmt.Println("## E6 — Mutex cost (Fan-Lynch): state-change model, round-robin canonical executions")
	fmt.Println()
	fmt.Println("| n | peterson | bakery | tournament | log2(n!) | peterson/(n·lg n) | tournament/(n·lg n) |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, n := range []int{4, 8, 16, 32, 64} {
		p, err := mutex.Run(mutex.Peterson{}, n, mutex.RoundRobin())
		if err != nil {
			return err
		}
		bk, err := mutex.Run(mutex.Bakery{}, n, mutex.RoundRobin())
		if err != nil {
			return err
		}
		tr, err := mutex.Run(mutex.Tournament{}, n, mutex.RoundRobin())
		if err != nil {
			return err
		}
		nlgn := float64(n) * math.Log2(float64(n))
		fmt.Printf("| %d | %d | %d | %d | %d | %.2f | %.2f |\n",
			n, p.Cost, bk.Cost, tr.Cost, encdec.FactorialBits(n),
			float64(p.Cost)/nlgn, float64(tr.Cost)/nlgn)
	}
	fmt.Println()

	fmt.Println("## E12 — Valency landscape of the verified n=2 protocol (FLP structure, quantified)")
	fmt.Println()
	fmt.Println("| inputs | configurations | bivalent | 0-univalent | 1-univalent | with decisions |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, inputs := range [][]model.Value{{"0", "1"}, {"1", "1"}, {"0", "0"}} {
		oracle := valency.New(explore.Options{Obs: scope})
		c := model.NewConfig(consensus.Flood{}, inputs)
		rep, err := oracle.Profile(context.Background(), "flood", c, []int{0, 1})
		if err != nil {
			return fmt.Errorf("E12: %w", err)
		}
		fmt.Printf("| (%s,%s) | %d | %d | %d | %d | %d |\n",
			string(inputs[0]), string(inputs[1]), rep.Total(), rep.Bivalent, rep.Zero, rep.One, rep.Decided)
	}
	fmt.Println()

	fmt.Println("## E7 — Encoder/decoder: CS order in ⌈log₂ n!⌉ bits, decoded by re-simulation")
	fmt.Println()
	fmt.Println("| n | bits | cost (tournament) | round trip |")
	fmt.Println("|---|---|---|---|")
	for _, n := range []int{4, 8, 16, 32, 64} {
		perm := rand.New(rand.NewSource(int64(n))).Perm(n)
		enc, err := encdec.EncodeExecution(mutex.Tournament{}, perm)
		if err != nil {
			return err
		}
		back, _, err := encdec.DecodeExecution(mutex.Tournament{}, enc)
		if err != nil {
			return err
		}
		ok := "ok"
		for i := range perm {
			if back[i] != perm[i] {
				ok = "FAILED"
			}
		}
		fmt.Printf("| %d | %d | %d | %s |\n", n, enc.BitLen, enc.Cost, ok)
	}
	fmt.Println()

	fmt.Println("## E8 — Weak leader election: registers used (contrast with consensus)")
	fmt.Println()
	fmt.Println("| n | registers (announce + bitwise consensus) | exactly one leader |")
	fmt.Println("|---|---|---|")
	for _, n := range []int{2, 4, 8, 16} {
		e := leader.NewElection(n)
		leaders := 0
		errs := make([]error, n)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				won, err := e.Run(pid)
				if err != nil {
					errs[pid] = err
					return
				}
				if won {
					mu.Lock()
					leaders++
					mu.Unlock()
				}
			}(pid)
		}
		wg.Wait()
		for pid, err := range errs {
			if err != nil {
				return fmt.Errorf("E8 n=%d p%d: %w", n, pid, err)
			}
		}
		fmt.Printf("| %d | %d | %t |\n", n, e.Registers(), leaders == 1)
	}
	fmt.Println()

	fmt.Println("## E9 — Randomized consensus: rounds and coin flips")
	fmt.Println()
	fmt.Println("| n | trials | max rounds | mean total flips |")
	fmt.Println("|---|---|---|---|")
	for _, n := range []int{2, 4, 8, 16} {
		const trials = 10
		maxRounds, totalFlips := 0, 0
		for trial := 0; trial < trials; trial++ {
			r := native.NewRandomized(n)
			results := make([]native.Result, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(trial*997 + pid)))
					results[pid], errs[pid] = r.Propose(pid, pid%2, rng)
				}(pid)
			}
			wg.Wait()
			for pid, err := range errs {
				if err != nil {
					return fmt.Errorf("E9 n=%d trial %d p%d: %w", n, trial, pid, err)
				}
			}
			for _, res := range results {
				totalFlips += res.Flips
				if res.Round+1 > maxRounds {
					maxRounds = res.Round + 1
				}
			}
		}
		fmt.Printf("| %d | %d | %d | %d |\n", n, trials, maxRounds, totalFlips/trials)
	}
	fmt.Println()

	if heavy {
		fmt.Println("## E2b — Model checking (heavy): verification substrate")
		fmt.Println()
		fmt.Println("| protocol | n | configs | verdict |")
		fmt.Println("|---|---|---|---|")
		rows := []struct {
			name string
			n    int
		}{
			{core.ProtocolFlood, 2},
			{core.ProtocolGreedyFlood, 2},
			{core.ProtocolEagerFlood, 3},
			{core.ProtocolFlood, 3},
			{core.ProtocolDiskRace, 2},
		}
		for _, row := range rows {
			m, opts, err := core.Machine(row.name)
			if err != nil {
				return err
			}
			opts.Obs = scope
			report, err := check.Consensus(context.Background(), m, row.n, check.Options{Explore: opts, SkipSolo: row.n > 2})
			if err != nil {
				return err
			}
			verdict := "ok"
			if !report.OK() {
				verdict = report.Violations[0].Kind.String() + " violation found (expected for broken variants)"
			}
			fmt.Printf("| %s | %d | %d | %s |\n", row.name, row.n, report.Configs, verdict)
		}
		fmt.Println()
	}
	return nil
}
