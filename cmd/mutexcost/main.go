// Command mutexcost regenerates experiment E6: the state-change cost of
// canonical mutual exclusion executions for Peterson's level algorithm and
// the tournament lock, against the Fan-Lynch Ω(n log n) floor.
//
// Usage:
//
//	mutexcost [-max-n 64]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/encdec"
	"repro/internal/mutex"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mutexcost:", err)
		os.Exit(1)
	}
}

func run() error {
	maxN := flag.Int("max-n", 64, "largest n (doubling from 4)")
	flag.Parse()

	fmt.Printf("%6s %12s %12s %12s %14s %14s\n",
		"n", "peterson", "tournament", "log2(n!)", "pet/(n lg n)", "tour/(n lg n)")
	for n := 4; n <= *maxN; n *= 2 {
		p, err := mutex.Run(mutex.Peterson{}, n, mutex.RoundRobin())
		if err != nil {
			return err
		}
		tr, err := mutex.Run(mutex.Tournament{}, n, mutex.RoundRobin())
		if err != nil {
			return err
		}
		nlogn := float64(n) * math.Log2(float64(n))
		fmt.Printf("%6d %12d %12d %12d %14.2f %14.2f\n",
			n, p.Cost, tr.Cost, encdec.FactorialBits(n),
			float64(p.Cost)/nlogn, float64(tr.Cost)/nlogn)
	}
	return nil
}
