// Command provesrv serves the Theorem 1 construction as a supervised job
// service: submit proof jobs over HTTP, poll their status, fetch the
// witness, its JSONL trace, and a Merkle inclusion proof from the
// tamper-evident witness ledger.
//
// Usage:
//
//	provesrv -addr :8080 -data-dir ./provesrv-data
//	         [-jobs 2] [-queue 8] [-max-attempts 5] [-retry-base 500ms] [-retry-max 30s]
//	         [-default-timeout 0] [-checkpoint-every 2s] [-batch-size 16] [-batch-wait 500ms]
//	         [-debug-addr host:port] [-trace-out trace.jsonl]
//	         [-coordinator -dist-protocol diskrace -dist-n 3 -dist-slices 3
//	          -dist-max-depth 0 -dist-lease 2s -dist-dir dir]
//	provesrv -verify-ledger path/to/ledger.seg
//
// With -coordinator the server additionally mounts a distributed shard
// coordinator under /dist/ (see internal/dist): `spacebound -shard` workers
// attach to it, lease fingerprint slices, and explore the configured run
// with crash-tolerant leases and checkpointed recovery. Shard health shows
// up on the obs endpoint's /progress. The coordinator's barrier state is
// journalled under -dist-dir (default <data-dir>/dist) and recovered on
// boot, so killing provesrv mid-run loses no coordinated progress either.
//
// Everything the server must not lose lives under -data-dir: one directory
// per job (spec, status, checkpoints, witness artifact, trace) plus the
// append-only witness ledger. Kill the process however you like — SIGKILL
// included — and the next start's recovery sweep re-enqueues interrupted
// jobs, resumes them from their checkpoints, and re-ledgers any finished
// witness the ledger missed. SIGTERM/SIGINT instead drain gracefully: stop
// admitting (submits get 503, /readyz flips to 503), checkpoint running
// jobs, flush the ledger, exit 0.
//
// HTTP status taxonomy: 202 job accepted, 200 OK, 400 invalid spec,
// 404 unknown job/proof, 409 witness requested before the job is done,
// 429 queue saturated (with Retry-After), 503 draining.
//
// Exit codes: 0 clean shutdown (or intact ledger with -verify-ledger),
// 4 when -verify-ledger finds corruption or a broken hash chain, 1 on any
// other failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/server"
)

// errLedgerCorrupt maps -verify-ledger failures to exit code 4, matching
// cmd/spacebound's "verification failed" code.
var errLedgerCorrupt = errors.New("ledger verification failed")

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "provesrv:", err)
		if errors.Is(err, errLedgerCorrupt) {
			os.Exit(4)
		}
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "job API listen address")
	dataDir := flag.String("data-dir", "./provesrv-data", "root of all persistent state (jobs, checkpoints, ledger)")
	jobs := flag.Int("jobs", 2, "concurrent proof jobs")
	queue := flag.Int("queue", 8, "admission queue depth; beyond it submits get 429")
	maxAttempts := flag.Int("max-attempts", 5, "attempts per job before retries-exhausted")
	retryBase := flag.Duration("retry-base", 500*time.Millisecond, "base retry backoff (doubles per attempt)")
	retryMax := flag.Duration("retry-max", 30*time.Second, "retry backoff cap")
	defaultTimeout := flag.Duration("default-timeout", 0, "per-attempt budget for specs that set none (0 = unbounded)")
	ckptEvery := flag.Duration("checkpoint-every", 2*time.Second, "minimum interval between job snapshots")
	batchSize := flag.Int("batch-size", 16, "witnesses per ledger Merkle batch")
	batchWait := flag.Duration("batch-wait", 500*time.Millisecond, "max time a witness waits for a full batch")
	debugAddr := flag.String("debug-addr", "", "observability endpoint (/debug/pprof, /metrics, /timeseries, /progress, /healthz, /readyz; empty = off)")
	traceOut := flag.String("trace-out", "", "server-level JSONL trace (empty = off, - = stderr); job spans are teed in, tagged by trace ID")
	recordEvery := flag.Duration("record-every", 0, "flight-recorder sampling interval for /timeseries (0 = 1s default, negative = off)")
	verifyLedger := flag.String("verify-ledger", "", "verify this ledger file and exit (no server)")
	coordinator := flag.Bool("coordinator", false, "also mount a distributed-exploration coordinator under /dist/ (see -dist-* flags)")
	distProtocol := flag.String("dist-protocol", "diskrace", "protocol the coordinated run explores")
	distN := flag.Int("dist-n", 3, "process count of the coordinated run")
	distSlices := flag.Int("dist-slices", 3, "fingerprint slices of the coordinated run")
	distMaxDepth := flag.Int("dist-max-depth", 0, "depth cap of the coordinated run (0 = unbounded)")
	distLease := flag.Duration("dist-lease", 2*time.Second, "shard lease; a worker silent for longer loses its slices")
	distDir := flag.String("dist-dir", "", "coordinator journal directory (default <data-dir>/dist); a restart recovers the coordinated run from it")
	flag.Parse()

	if *verifyLedger != "" {
		batches, items, err := ledger.VerifyLedger(*verifyLedger)
		if err != nil {
			return fmt.Errorf("%w: %v", errLedgerCorrupt, err)
		}
		fmt.Printf("ledger intact: %d batches, %d witnesses, chain verified\n", batches, items)
		return nil
	}

	scope, stopObs, err := obs.Start(obs.Config{TraceOut: *traceOut, DebugAddr: *debugAddr, RecordEvery: *recordEvery})
	if err != nil {
		return err
	}
	defer func() {
		if err := stopObs(); err != nil {
			fmt.Fprintln(os.Stderr, "provesrv: observability shutdown:", err)
		}
	}()
	if scope == nil {
		// The server still wants metrics/readiness even with no endpoint
		// configured; a scope without a tracer is nearly free.
		scope = obs.NewScope(nil)
	}

	srv, err := server.New(server.Options{
		DataDir:         *dataDir,
		Workers:         *jobs,
		QueueDepth:      *queue,
		MaxAttempts:     *maxAttempts,
		RetryBase:       *retryBase,
		RetryMax:        *retryMax,
		DefaultTimeout:  *defaultTimeout,
		CheckpointEvery: *ckptEvery,
		BatchSize:       *batchSize,
		BatchWait:       *batchWait,
		Scope:           scope,
	})
	if err != nil {
		return err
	}

	var mounts []server.Mount
	if *coordinator {
		run, err := dist.NewRun(*distProtocol, *distN, *distSlices, *distMaxDepth, *distLease)
		if err != nil {
			return err
		}
		coord, err := run.Coordinator(scope)
		if err != nil {
			return err
		}
		scope.SetShardHealth(coord.ShardHealth)
		// The coordinator's barrier state is as durable as the job state:
		// journalled under -data-dir, recovered synchronously before the
		// listener opens, so a restarted provesrv resumes the coordinated
		// run at the exact level and phase it died in.
		dir := *distDir
		if dir == "" {
			dir = filepath.Join(*dataDir, "dist")
		}
		j, err := dist.OpenJournal(dir, dist.JournalOptions{Scope: scope})
		if err != nil {
			return err
		}
		if err := coord.AttachJournal(j); err != nil {
			return err
		}
		if coord.Recovering() {
			fmt.Fprintf(os.Stderr, "provesrv: dist journal %s holds a prior run, recovering\n", dir)
			if err := coord.Recover(); err != nil {
				return fmt.Errorf("dist journal recovery: %w", err)
			}
			st := coord.Status()
			fmt.Fprintf(os.Stderr, "provesrv: coordinator recovered to level %d (%s phase), generation %d\n",
				st.Level, st.Phase, st.Gen)
		}
		mounts = append(mounts, server.Mount{Pattern: "/dist/", Handler: coord.Handler()})
		fmt.Fprintf(os.Stderr, "provesrv: coordinating %s n=%d over %d slices\n", *distProtocol, *distN, *distSlices)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(mounts...), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	// The bound address on its own stderr line so scripts (and the e2e
	// test) can find it when -addr uses port 0.
	fmt.Fprintf(os.Stderr, "provesrv: listening on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "provesrv: %s received, draining\n", got)
	}

	// Drain: finish in-flight HTTP exchanges, then checkpoint and park the
	// running jobs and flush the ledger. Everything is bounded so a stuck
	// disk cannot turn SIGTERM into a hang.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "provesrv: http shutdown:", err)
	}
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "provesrv: drained, state persisted")
	return nil
}
