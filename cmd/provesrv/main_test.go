package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/valency"
)

// buildServerBinary compiles provesrv with the race detector: the e2e
// crash test must exercise the real concurrent server, instrumented.
func buildServerBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "provesrv")
	cmd := exec.Command("go", "build", "-race", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	return bin
}

// startServer launches provesrv on a fresh port over dataDir and returns
// the process, its base URL, and a buffer accumulating its stderr.
func startServer(t *testing.T, bin, dataDir string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-jobs", "2",
		"-checkpoint-every", "50ms",
		"-batch-wait", "50ms",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The bound address is announced on stderr; read up to that line, then
	// keep draining in the background so the child never blocks on a full
	// pipe.
	var buf bytes.Buffer
	sc := bufio.NewScanner(stderr)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line + "\n")
		if rest, ok := strings.CutPrefix(line, "provesrv: listening on "); ok {
			base = rest
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		t.Fatalf("server never announced its address; stderr so far:\n%s", &buf)
	}
	go func() {
		for sc.Scan() {
			buf.WriteString(sc.Text() + "\n")
		}
	}()
	return cmd, base, &buf
}

func getStatus(t *testing.T, base, id string) server.Status {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServerKillRestartRecovers is the tentpole acceptance test: SIGKILL a
// provesrv with two in-flight n=4 jobs (both past their first checkpoint),
// restart it over the same data directory, and require every job to resume
// and complete with a witness byte-identical to an uninterrupted in-process
// construction — plus a verifying Merkle inclusion proof and an intact
// ledger chain.
func TestServerKillRestartRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)
	dataDir := filepath.Join(work, "data")

	// Reference witness, computed concurrently with the server phase: an
	// uninterrupted sequential n=4 construction in this process. Both jobs
	// use the same spec, so one reference serves both.
	refCh := make(chan []byte, 1)
	refErr := make(chan error, 1)
	go func() {
		m, opts, err := core.Machine(core.ProtocolDiskRace)
		if err != nil {
			refErr <- err
			return
		}
		opts.Workers = 1
		engine := adversary.New(valency.New(opts))
		w, err := engine.Theorem1(context.Background(), m, 4)
		if err != nil {
			refErr <- err
			return
		}
		refCh <- []byte(trace.RenderWitness(w))
	}()

	srv1, base1, _ := startServer(t, bin, dataDir)
	ids := make([]string, 2)
	for i := range ids {
		resp, err := http.Post(base1+"/jobs", "application/json",
			strings.NewReader(`{"protocol":"diskrace","n":4,"workers":1}`))
		if err != nil {
			t.Fatal(err)
		}
		var st server.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids[i] = st.ID
	}

	// Kill only once BOTH jobs are genuinely in flight with persisted
	// progress: a snapshot file in each job's checkpoint store.
	bothCheckpointed := func() bool {
		for _, id := range ids {
			snaps, _ := filepath.Glob(filepath.Join(dataDir, "jobs", id, "ckpt", "snap-*.ckpt"))
			if len(snaps) == 0 {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !bothCheckpointed() {
		if time.Now().After(deadline) {
			t.Fatal("jobs never reached their first checkpoint")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := srv1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Wait(); err == nil {
		t.Fatal("SIGKILLed server exited cleanly?")
	}

	// Restart over the same data directory: the recovery sweep must
	// re-enqueue both jobs and finish them.
	srv2, base2, stderr2 := startServer(t, bin, dataDir)
	defer srv2.Process.Kill()
	settled := func() bool {
		for _, id := range ids {
			st := getStatus(t, base2, id)
			if st.State == server.StateFailed {
				t.Fatalf("job %s failed after restart: %s (%s)", id, st.Reason, st.LastError)
			}
			if st.State != server.StateDone || st.Ledger == nil {
				return false
			}
		}
		return true
	}
	deadline = time.Now().Add(6 * time.Minute)
	for !settled() {
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not finish after restart; stderr:\n%s", stderr2)
		}
		time.Sleep(200 * time.Millisecond)
	}

	var reference []byte
	select {
	case reference = <-refCh:
	case err := <-refErr:
		t.Fatalf("reference construction: %v", err)
	case <-time.After(6 * time.Minute):
		t.Fatal("reference construction timed out")
	}

	for _, id := range ids {
		resp, err := http.Get(base2 + "/jobs/" + id + "/witness")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("witness %s: %d %v", id, resp.StatusCode, err)
		}
		if !bytes.Equal(body, reference) {
			t.Fatalf("job %s witness differs from the uninterrupted reference (%d vs %d bytes)",
				id, len(body), len(reference))
		}
		var proof ledger.Proof
		presp, err := http.Get(base2 + "/jobs/" + id + "/proof")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(presp.Body).Decode(&proof); err != nil {
			t.Fatal(err)
		}
		presp.Body.Close()
		if err := proof.Verify(); err != nil {
			t.Fatalf("job %s inclusion proof: %v", id, err)
		}
		if proof.Witness != sha256.Sum256(body) {
			t.Fatalf("job %s proof commits to different witness bytes", id)
		}
	}

	// Graceful exit this time: SIGTERM drains and exits 0.
	if err := srv2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Wait(); err != nil {
		t.Fatalf("SIGTERM drain exited non-zero: %v\nstderr:\n%s", err, stderr2)
	}
	if !strings.Contains(stderr2.String(), "drained, state persisted") {
		t.Fatalf("no drain confirmation in stderr:\n%s", stderr2)
	}

	// The ledger survived a SIGKILL and a drain: the full chain must verify
	// via the standalone mode, exit 0.
	verify := exec.Command(bin, "-verify-ledger", filepath.Join(dataDir, "ledger", "ledger.seg"))
	out, err := verify.CombinedOutput()
	if err != nil {
		t.Fatalf("-verify-ledger: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ledger intact") {
		t.Fatalf("unexpected -verify-ledger output: %s", out)
	}
}

// TestVerifyLedgerExitCode4: corruption in the ledger must exit 4, the
// repo-wide "verification failed" code.
func TestVerifyLedgerExitCode4(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)
	path := filepath.Join(work, "ledger.seg")
	l, err := ledger.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]ledger.Item{{JobID: "j-1"}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Intact first.
	if out, err := exec.Command(bin, "-verify-ledger", path).CombinedOutput(); err != nil {
		t.Fatalf("intact ledger rejected: %v\n%s", err, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-verify-ledger", path)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("corrupt ledger accepted:\n%s", out)
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 4 {
		t.Fatalf("exit = %v, want code 4\n%s", err, out)
	}
}
