package snapshot

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/linearize"
)

// TestSnapshotLinearizable drives concurrent updates and scans through the
// live object and checks the recorded history against the sequential
// snapshot specification with the Wing-Gong checker.
func TestSnapshotLinearizable(t *testing.T) {
	const n = 3
	for trial := 0; trial < 200; trial++ {
		s := New(n)
		var rec linearize.Recorder
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					v := int64(pid*10 + i + 1)
					p := rec.Invoke(pid, "update", fmt.Sprintf("%d=%d", pid, v))
					if err := s.Update(pid, v); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					p.Done("")
					q := rec.Invoke(pid, "scan", "")
					q.Done(viewString(s.Scan(pid)))
				}
			}(pid)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		ok, err := linearize.Check(linearize.SnapshotSpec(n), rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: history not linearizable:\n%v", trial, rec.History())
		}
	}
}

// TestCounterLinearizable does the same for the snapshot-based counter.
func TestCounterLinearizable(t *testing.T) {
	const n = 4
	for trial := 0; trial < 200; trial++ {
		c := NewCounter(n)
		var rec linearize.Recorder
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < 2; i++ {
					p := rec.Invoke(pid, "inc", "")
					if err := c.Inc(pid); err != nil {
						t.Errorf("inc: %v", err)
						return
					}
					p.Done("")
					q := rec.Invoke(pid, "read", "")
					q.Done(strconv.FormatInt(c.Read(pid), 10))
				}
			}(pid)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		ok, err := linearize.Check(linearize.CounterSpec(), rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: counter history not linearizable:\n%v", trial, rec.History())
		}
	}
}

// TestSnapshotSpaceAudit confirms the object uses exactly n registers — the
// matching upper bound for the JTT n-1 lower bound on snapshots.
func TestSnapshotSpaceAudit(t *testing.T) {
	for _, n := range []int{2, 5, 16} {
		s := New(n)
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if err := s.Update(pid, int64(i)); err != nil {
						t.Errorf("update: %v", err)
					}
					s.Scan(pid)
				}
			}(pid)
		}
		wg.Wait()
		if got := s.Stats().Touched; got != n {
			t.Fatalf("n=%d: %d registers written, want n", n, got)
		}
	}
}

// TestScanSeesOwnUpdate is the single-process sanity check.
func TestScanSeesOwnUpdate(t *testing.T) {
	s := New(2)
	if err := s.Update(0, 42); err != nil {
		t.Fatal(err)
	}
	v := s.Scan(0)
	if v[0] != 42 || v[1] != 0 {
		t.Fatalf("Scan = %v, want [42 0]", v)
	}
	if err := s.Update(1, -1); err != nil {
		t.Fatal(err)
	}
	if got := s.Scan(1); got[0] != 42 || got[1] != -1 {
		t.Fatalf("Scan = %v, want [42 -1]", got)
	}
}

// TestUpdateRejectsBadPid covers the error path.
func TestUpdateRejectsBadPid(t *testing.T) {
	s := New(2)
	if err := s.Update(2, 1); err == nil {
		t.Fatal("expected error for out-of-range pid")
	}
	if err := s.Update(-1, 1); err == nil {
		t.Fatal("expected error for negative pid")
	}
}

func viewString(v View) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatInt(x, 10)
	}
	return strings.Join(parts, ",")
}
