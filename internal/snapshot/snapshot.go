// Package snapshot implements a wait-free single-writer atomic snapshot
// object from registers (Afek, Attiya, Dolev, Gafni, Merritt, Shavit 1993).
// Atomic snapshot is one of the objects in set A of the Jayanti-Tan-Toueg
// theorem reproduced from the provided text (deck part I.1): any nonblocking
// implementation needs at least n-1 registers; this one uses exactly n.
//
// Each process owns one segment holding (value, sequence number, embedded
// view). Update writes the new value together with a fresh scan; Scan
// performs repeated collects and either returns a clean double collect or
// borrows the embedded view of a process observed to move twice (which must
// have completed a full scan within the observer's interval).
package snapshot

import (
	"fmt"

	"repro/internal/register"
)

// View is the result of a scan: one value per process.
type View []int64

// segment is one process's register contents.
type segment struct {
	value int64
	seq   uint64
	view  View // embedded scan, set by Update
}

// Snapshot is a wait-free n-process single-writer snapshot object.
// Create with New; the zero value is unusable.
type Snapshot struct {
	n    int
	segs *register.Array[segment]
}

// New returns a snapshot object for n processes with all values zero.
func New(n int) *Snapshot {
	return &Snapshot{n: n, segs: register.NewArray[segment](n)}
}

// Stats exposes register instrumentation for the space audits.
func (s *Snapshot) Stats() register.Stats { return s.segs.Stats() }

// N returns the number of segments.
func (s *Snapshot) N() int { return s.n }

// Update sets process pid's segment to value. It embeds a fresh scan so
// that concurrent scanners can linearize against it (the helping mechanism
// that makes Scan wait-free).
func (s *Snapshot) Update(pid int, value int64) error {
	if pid < 0 || pid >= s.n {
		return fmt.Errorf("snapshot: pid %d out of range [0,%d)", pid, s.n)
	}
	view := s.Scan(pid)
	old := s.segs.Read(pid)
	s.segs.Write(pid, segment{value: value, seq: old.seq + 1, view: view})
	return nil
}

// Scan returns an atomic view of all segments. pid identifies the scanner
// (only used to bound helping); the returned view is a fresh copy.
func (s *Snapshot) Scan(pid int) View {
	moved := make(map[int]int, s.n)
	prev := s.collect()
	for {
		cur := s.collect()
		if equalSeqs(prev, cur) {
			// Clean double collect: no segment changed between the
			// two collects, so the second one is an atomic view.
			return values(cur)
		}
		for i := range cur {
			if cur[i].seq != prev[i].seq {
				moved[i]++
				if moved[i] >= 2 && cur[i].view != nil {
					// Process i completed two updates during
					// our scan; its second embedded view was
					// taken entirely within our interval and
					// is therefore a valid result for us.
					out := make(View, len(cur[i].view))
					copy(out, cur[i].view)
					return out
				}
			}
		}
		prev = cur
	}
}

func (s *Snapshot) collect() []segment {
	out := make([]segment, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.segs.Read(i)
	}
	return out
}

func equalSeqs(a, b []segment) bool {
	for i := range a {
		if a[i].seq != b[i].seq {
			return false
		}
	}
	return true
}

func values(segs []segment) View {
	out := make(View, len(segs))
	for i := range segs {
		out[i] = segs[i].value
	}
	return out
}

// Counter is a fetch&increment counter built on the snapshot: each process
// increments its own segment and reads by summing a scan. It is the
// perturbable object driven by the JTT perturbation adversary in
// internal/perturb (there in model form; this native form backs the
// examples and benchmarks).
type Counter struct {
	snap *Snapshot
}

// NewCounter returns a counter for n processes.
func NewCounter(n int) *Counter { return &Counter{snap: New(n)} }

// Stats exposes register instrumentation.
func (c *Counter) Stats() register.Stats { return c.snap.Stats() }

// Inc adds one to process pid's share. The increment linearizes at the
// segment write (only pid writes its own segment, so no increment is ever
// lost). Note this is a counter, not a fetch&increment: the object's reads
// are linearizable, but no single returned value identifies the increment's
// serialisation point.
func (c *Counter) Inc(pid int) error {
	view := c.snap.Scan(pid)
	return c.snap.Update(pid, view[pid]+1)
}

// Read returns the current counter value.
func (c *Counter) Read(pid int) int64 {
	var sum int64
	for _, v := range c.snap.Scan(pid) {
		sum += v
	}
	return sum
}
