// Package linearize provides a Wing-Gong style linearizability checker for
// concurrent histories, plus a recorder for collecting them from live runs.
// It verifies the native substrate objects (registers, snapshots, counters)
// that the protocol implementations are built on: the abstract model takes
// register atomicity as an axiom, and this package is what entitles the
// native benchmarks to the same assumption.
package linearize

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Op is one completed operation in a concurrent history. Call and Return
// are timestamps from a single logical clock: Call < Return, and operations
// of one process do not overlap.
type Op struct {
	Proc   int
	Call   int64
	Return int64
	Method string
	Arg    string
	Res    string
}

// String renders the op compactly.
func (o Op) String() string {
	return fmt.Sprintf("p%d:[%d,%d] %s(%s)=%s", o.Proc, o.Call, o.Return, o.Method, o.Arg, o.Res)
}

// Spec is a sequential specification. Apply runs one operation against a
// sequential state: it returns the next state and whether the operation's
// recorded result matches what the sequential object would return. Key
// canonicalises states for memoisation.
type Spec[S any] struct {
	Init  S
	Apply func(S, Op) (S, bool)
	Key   func(S) string
}

// Check reports whether the history is linearizable with respect to the
// specification, i.e. whether there is a total order of the operations,
// consistent with the happens-before order induced by the timestamps, under
// which every operation returns its sequential result. Histories are capped
// at 64 operations (the search uses a bitmask); longer histories should be
// checked in windows.
func Check[S any](spec Spec[S], history []Op) (bool, error) {
	if len(history) > 64 {
		return false, fmt.Errorf("linearize: history has %d ops, cap is 64", len(history))
	}
	ops := append([]Op{}, history...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Call < ops[j].Call })
	memo := make(map[string]bool)
	return search(spec, ops, 0, spec.Init, memo), nil
}

// search tries to linearize the unchosen operations (bitmask done) from
// sequential state s. An operation is a candidate if no unchosen operation
// returned before it was called (otherwise that operation must come first).
func search[S any](spec Spec[S], ops []Op, done uint64, s S, memo map[string]bool) bool {
	if done == (uint64(1)<<len(ops))-1 {
		return true
	}
	key := strconv.FormatUint(done, 16) + "|" + spec.Key(s)
	if v, ok := memo[key]; ok {
		return v
	}
	// minReturn over unchosen ops: anything called after it cannot be next.
	minReturn := int64(1 << 62)
	for i, op := range ops {
		if done&(1<<i) == 0 && op.Return < minReturn {
			minReturn = op.Return
		}
	}
	ok := false
	for i, op := range ops {
		if done&(1<<i) != 0 || op.Call > minReturn {
			continue
		}
		next, match := spec.Apply(s, op)
		if !match {
			continue
		}
		if search(spec, ops, done|1<<i, next, memo) {
			ok = true
			break
		}
	}
	memo[key] = ok
	return ok
}

// Recorder collects a concurrent history with a global logical clock. It is
// safe for concurrent use.
type Recorder struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []Op
}

// Invoke starts an operation and returns a token to complete it with.
func (r *Recorder) Invoke(proc int, method, arg string) PendingOp {
	return PendingOp{r: r, op: Op{Proc: proc, Call: r.clock.Add(1), Method: method, Arg: arg}}
}

// PendingOp is an invoked-but-unfinished operation.
type PendingOp struct {
	r  *Recorder
	op Op
}

// Done completes the operation with its result.
func (p PendingOp) Done(res string) {
	p.op.Return = p.r.clock.Add(1)
	p.op.Res = res
	p.r.mu.Lock()
	defer p.r.mu.Unlock()
	p.r.ops = append(p.r.ops, p.op)
}

// History returns the completed operations recorded so far.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op{}, r.ops...)
}

// CounterSpec is the sequential specification of a counter with Inc (adds
// one, returns nothing) and Read (returns the count).
func CounterSpec() Spec[int64] {
	return Spec[int64]{
		Init: 0,
		Apply: func(s int64, op Op) (int64, bool) {
			switch op.Method {
			case "inc":
				return s + 1, true
			case "read":
				return s, op.Res == strconv.FormatInt(s, 10)
			default:
				return s, false
			}
		},
		Key: func(s int64) string { return strconv.FormatInt(s, 10) },
	}
}

// RegisterSpec is the sequential specification of a single int register.
func RegisterSpec() Spec[string] {
	return Spec[string]{
		Init: "0",
		Apply: func(s string, op Op) (string, bool) {
			switch op.Method {
			case "write":
				return op.Arg, true
			case "read":
				return s, op.Res == s
			default:
				return s, false
			}
		},
		Key: func(s string) string { return s },
	}
}

// SnapshotSpec is the sequential specification of an n-segment single-writer
// snapshot: update(i=v) sets segment i (Arg "i=v"), scan returns all
// segments joined by commas.
func SnapshotSpec(n int) Spec[string] {
	zero := strings.TrimSuffix(strings.Repeat("0,", n), ",")
	return Spec[string]{
		Init: zero,
		Apply: func(s string, op Op) (string, bool) {
			switch op.Method {
			case "update":
				parts := strings.SplitN(op.Arg, "=", 2)
				idx, err := strconv.Atoi(parts[0])
				if err != nil || idx < 0 || idx >= n {
					return s, false
				}
				segs := strings.Split(s, ",")
				segs[idx] = parts[1]
				return strings.Join(segs, ","), true
			case "scan":
				return s, op.Res == s
			default:
				return s, false
			}
		},
		Key: func(s string) string { return s },
	}
}
