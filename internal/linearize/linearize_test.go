package linearize

import (
	"strconv"
	"testing"
)

func op(proc int, call, ret int64, method, arg, res string) Op {
	return Op{Proc: proc, Call: call, Return: ret, Method: method, Arg: arg, Res: res}
}

// TestCheckRegisterBasics exercises the checker on hand-built register
// histories with known verdicts.
func TestCheckRegisterBasics(t *testing.T) {
	cases := []struct {
		name string
		hist []Op
		want bool
	}{
		{"empty", nil, true},
		{"sequential write then read", []Op{
			op(0, 1, 2, "write", "5", ""),
			op(1, 3, 4, "read", "", "5"),
		}, true},
		{"stale read after write", []Op{
			op(0, 1, 2, "write", "5", ""),
			op(1, 3, 4, "read", "", "0"),
		}, false},
		{"concurrent write/read may see either", []Op{
			op(0, 1, 4, "write", "5", ""),
			op(1, 2, 3, "read", "", "0"),
		}, true},
		{"read order violation", []Op{
			op(0, 1, 2, "write", "1", ""),
			op(0, 5, 6, "write", "2", ""),
			op(1, 7, 8, "read", "", "2"),
			op(2, 9, 10, "read", "", "1"),
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Check(RegisterSpec(), tc.hist)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("Check = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestCheckCounter verifies counter histories, including a lost update.
func TestCheckCounter(t *testing.T) {
	good := []Op{
		op(0, 1, 2, "inc", "", ""),
		op(1, 1, 3, "inc", "", ""),
		op(2, 4, 5, "read", "", "2"),
	}
	if ok, _ := Check(CounterSpec(), good); !ok {
		t.Fatal("valid counter history rejected")
	}
	lost := []Op{
		op(0, 1, 2, "inc", "", ""),
		op(1, 3, 4, "inc", "", ""),
		op(2, 5, 6, "read", "", "1"), // lost an increment
	}
	if ok, _ := Check(CounterSpec(), lost); ok {
		t.Fatal("lost-update history accepted")
	}
}

// TestCheckSnapshot verifies snapshot histories, including a forbidden
// "new-old inversion" between two scans.
func TestCheckSnapshot(t *testing.T) {
	good := []Op{
		op(0, 1, 2, "update", "0=7", ""),
		op(1, 3, 4, "scan", "", "7,0,0"),
	}
	if ok, _ := Check(SnapshotSpec(3), good); !ok {
		t.Fatal("valid snapshot history rejected")
	}
	inversion := []Op{
		op(0, 1, 2, "update", "0=7", ""),
		op(1, 3, 4, "scan", "", "7,0,0"),
		op(1, 5, 6, "scan", "", "0,0,0"), // older view after newer
	}
	if ok, _ := Check(SnapshotSpec(3), inversion); ok {
		t.Fatal("new-old inversion accepted")
	}
}

// TestCheckCap enforces the 64-op bitmask limit.
func TestCheckCap(t *testing.T) {
	hist := make([]Op, 65)
	for i := range hist {
		hist[i] = op(0, int64(2*i+1), int64(2*i+2), "inc", "", "")
	}
	if _, err := Check(CounterSpec(), hist); err == nil {
		t.Fatal("expected cap error for 65-op history")
	}
}

// TestRecorderClock checks that recorded timestamps are strictly ordered
// per operation and unique across the history.
func TestRecorderClock(t *testing.T) {
	var r Recorder
	for i := 0; i < 10; i++ {
		p := r.Invoke(i%3, "inc", "")
		p.Done(strconv.Itoa(i))
	}
	seen := map[int64]bool{}
	for _, o := range r.History() {
		if o.Call >= o.Return {
			t.Fatalf("bad timestamps: %v", o)
		}
		if seen[o.Call] || seen[o.Return] {
			t.Fatalf("duplicate timestamp: %v", o)
		}
		seen[o.Call], seen[o.Return] = true, true
	}
}
