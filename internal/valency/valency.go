// Package valency implements the refined notion of valency from Section 3.1
// of Zhu's "A Tight Space Bound for Consensus": for a reachable configuration
// C and a non-empty set of processes P, the set of values P can decide from C
// via P-only executions (Definition 1), together with bivalence/univalence
// tests and witness executions.
//
// The paper treats "P can decide v from C" as a mathematical quantifier. The
// Oracle decides it by exhaustive P-only exploration (internal/explore) with
// memoisation on canonical configuration keys. For the finite-state protocols
// this repository studies the answer is exact; if a protocol's reachable
// space exceeds the configured caps the oracle fails loudly rather than
// guessing.
package valency

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/explore"
	"repro/internal/model"
)

// Binary consensus values, as in the paper.
const (
	V0 = model.Value("0")
	V1 = model.Value("1")
)

// Opposite returns the other binary value (v̄ in the paper).
func Opposite(v model.Value) model.Value {
	if v == V0 {
		return V1
	}
	return V0
}

// Oracle answers valency queries for one protocol instance. It memoises
// decidable-value sets keyed by (configuration, process set), which the
// adversary constructions in internal/adversary query heavily along
// overlapping prefixes.
type Oracle struct {
	opts  explore.Options
	memo  map[string]*Verdict
	stats Stats
}

// Stats reports the work an oracle has done, for the experiment tables.
type Stats struct {
	// Queries counts Decidable calls, Hits the memoised ones.
	Queries, Hits int
	// Configs is the total number of distinct configurations visited
	// across all non-memoised queries.
	Configs int
}

// Verdict is the answer to one valency query.
type Verdict struct {
	// Decidable is the set of values decidable by P-only executions.
	Decidable map[model.Value]bool
	// Witness maps each decidable value to a P-only path from C to a
	// configuration in which that value has been decided.
	Witness map[model.Value]model.Path
}

// Bivalent reports whether both binary values are decidable.
func (v *Verdict) Bivalent() bool {
	return v.Decidable[V0] && v.Decidable[V1]
}

// Univalent returns the unique decidable value, if exactly one.
func (v *Verdict) Univalent() (model.Value, bool) {
	if len(v.Decidable) != 1 {
		return model.Bottom, false
	}
	for val := range v.Decidable {
		return val, true
	}
	return model.Bottom, false
}

// Any returns some decidable value (Proposition 1(i) guarantees one exists
// for correct protocols). The boolean is false for a protocol that can reach
// a decision-free sink, which would itself violate solo termination.
func (v *Verdict) Any() (model.Value, bool) {
	for val := range v.Decidable {
		return val, true
	}
	return model.Bottom, false
}

// New returns an oracle using the given exploration bounds.
func New(opts explore.Options) *Oracle {
	return &Oracle{
		opts: opts,
		memo: make(map[string]*Verdict),
	}
}

// Stats returns a copy of the oracle's work counters.
func (o *Oracle) Stats() Stats { return o.stats }

func (o *Oracle) queryKey(c model.Config, p []int) string {
	var b strings.Builder
	b.WriteString(o.opts.ConfigKey(c))
	b.WriteByte('#')
	for _, pid := range p {
		b.WriteString(strconv.Itoa(pid))
		b.WriteByte(',')
	}
	return b.String()
}

// Decidable computes the set of values the process set p can decide from c
// (Definition 1), with witness executions. p must be non-empty and sorted
// (use model.PidList / model.Without to build process sets).
func (o *Oracle) Decidable(ctx context.Context, c model.Config, p []int) (*Verdict, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("valency: empty process set")
	}
	o.stats.Queries++
	key := o.queryKey(c, p)
	if v, ok := o.memo[key]; ok {
		o.stats.Hits++
		return v, nil
	}
	verdict := &Verdict{
		Decidable: make(map[model.Value]bool),
		Witness:   make(map[model.Value]model.Path),
	}
	witnessIDs := make(map[model.Value]int)
	res, err := explore.Reach(ctx, c, p, o.opts, func(v explore.Visit) bool {
		for val := range v.Config.DecidedValues() {
			if !verdict.Decidable[val] {
				verdict.Decidable[val] = true
				witnessIDs[val] = v.ID
			}
		}
		// Both binary values found: executions witnessing them are
		// already recorded, so the query can stop here — for valency,
		// bivalence is maximal knowledge.
		return !(verdict.Decidable[V0] && verdict.Decidable[V1])
	})
	o.stats.Configs += res.Count
	// A capped search that already proved bivalence is still exact:
	// decidable sets only grow, and {0,1} is maximal.
	if err != nil && !verdict.Bivalent() {
		return nil, fmt.Errorf("valency query |P|=%d: %w", len(p), err)
	}
	for val, id := range witnessIDs {
		path, ok := res.PathTo(id)
		if !ok {
			return nil, fmt.Errorf("valency: lost witness for %q", string(val))
		}
		verdict.Witness[val] = path
	}
	o.memo[key] = verdict
	return verdict, nil
}

// Bivalent reports whether p is bivalent from c (Definition 1).
func (o *Oracle) Bivalent(ctx context.Context, c model.Config, p []int) (bool, error) {
	v, err := o.Decidable(ctx, c, p)
	if err != nil {
		return false, err
	}
	return v.Bivalent(), nil
}

// CanDecide reports whether p can decide val from c.
func (o *Oracle) CanDecide(ctx context.Context, c model.Config, p []int, val model.Value) (bool, error) {
	v, err := o.Decidable(ctx, c, p)
	if err != nil {
		return false, err
	}
	return v.Decidable[val], nil
}

// Univalent reports whether p is v-univalent from c for some v, returning v.
func (o *Oracle) Univalent(ctx context.Context, c model.Config, p []int) (model.Value, bool, error) {
	v, err := o.Decidable(ctx, c, p)
	if err != nil {
		return model.Bottom, false, err
	}
	val, ok := v.Univalent()
	return val, ok, nil
}

// SoloDeciding returns a {pid}-only execution from c in which pid decides,
// together with the decided value. Its existence for every reachable c and
// every pid is exactly the paper's "nondeterministic solo terminating"
// hypothesis; an error therefore means the protocol under test is not NST
// within the oracle's bounds.
func (o *Oracle) SoloDeciding(ctx context.Context, c model.Config, pid int) (model.Path, model.Value, error) {
	if v, ok := c.Decided(pid); ok {
		return nil, v, nil
	}
	var (
		decided model.Value
		foundID = -1
	)
	res, err := explore.Reach(ctx, c, []int{pid}, o.opts, func(v explore.Visit) bool {
		if val, ok := v.Config.Decided(pid); ok {
			decided = val
			foundID = v.ID
			return false // stop: witness located
		}
		return true
	})
	if foundID < 0 {
		if err != nil {
			return nil, model.Bottom, fmt.Errorf("solo termination search for p%d: %w", pid, err)
		}
		return nil, model.Bottom, fmt.Errorf(
			"protocol is not solo terminating: p%d cannot decide solo (%d configs searched)",
			pid, res.Count)
	}
	path, ok := res.PathTo(foundID)
	if !ok {
		return nil, model.Bottom, fmt.Errorf("valency: lost solo witness for p%d", pid)
	}
	return path, decided, nil
}
