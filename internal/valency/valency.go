// Package valency implements the refined notion of valency from Section 3.1
// of Zhu's "A Tight Space Bound for Consensus": for a reachable configuration
// C and a non-empty set of processes P, the set of values P can decide from C
// via P-only executions (Definition 1), together with bivalence/univalence
// tests and witness executions.
//
// The paper treats "P can decide v from C" as a mathematical quantifier. The
// Oracle decides it by exhaustive P-only exploration (internal/explore) with
// memoisation on canonical configuration fingerprints. For the finite-state
// protocols this repository studies the answer is exact; if a protocol's
// reachable space exceeds the configured caps the oracle fails loudly rather
// than guessing.
//
// Two asymmetries shape the oracle's fast paths. Bivalence has a short
// positive certificate — one P-only execution deciding each value — while
// univalence requires exhausting the whole P-only space. And the cheapest
// certificates are usually solo executions: under the paper's
// solo-termination hypothesis every process decides running alone, and a
// solo run explores a tiny branch of the space. Decidable therefore seeds
// every query with the (memoised) solo-deciding executions of the processes
// in P before falling back to exhaustive search, and ProbeBivalent exposes
// the certificate-seeking mode with an explicit budget for callers (the
// adversary's Lemma 1) that can exploit a positive answer without needing
// the negative one.
package valency

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"slices"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/obs"
)

// Binary consensus values, as in the paper.
const (
	V0 = model.Value("0")
	V1 = model.Value("1")
)

// Opposite returns the other binary value (v̄ in the paper).
func Opposite(v model.Value) model.Value {
	if v == V0 {
		return V1
	}
	return V0
}

// queryKey identifies a valency query: the 128-bit fingerprint of the
// configuration's canonical key plus the process set as a bitmask. As in
// the explore package, fingerprint equality is trusted as key equality: a
// false memo hit needs a 128-bit FNV collision, whose probability across
// any feasible number of queries is far below that of a hardware fault.
type queryKey struct {
	fp   explore.Fingerprint
	pids uint64
}

// soloKey identifies a solo-termination query.
type soloKey struct {
	fp  explore.Fingerprint
	pid int
}

// soloEntry is a memoised SoloDeciding answer: either a witness or a
// definite (in-bounds) refutation of solo termination.
type soloEntry struct {
	path model.Path
	val  model.Value
	err  string
}

// Memo is the shared memoisation state of one or more Oracles. The
// adversary's lemma stages construct their oracles with NewWithMemo over a
// common Memo so that, e.g., the valency queries Lemma 3 replays along
// prefixes already walked by Lemma 2 hit instead of re-exploring. Sharing
// is sound exactly when the oracles share exploration options (the
// fingerprints must mean the same canonical keys); NewWithMemo is the only
// way to opt in.
type Memo struct {
	verdicts map[queryKey]*Verdict
	solo     map[soloKey]*soloEntry
}

// NewMemo returns an empty memo table for NewWithMemo.
func NewMemo() *Memo {
	return &Memo{
		verdicts: make(map[queryKey]*Verdict),
		solo:     make(map[soloKey]*soloEntry),
	}
}

// Oracle answers valency queries for one protocol instance. It memoises
// decidable-value sets keyed by (configuration fingerprint, process set),
// which the adversary constructions in internal/adversary query heavily
// along overlapping prefixes.
type Oracle struct {
	opts  explore.Options
	memo  *Memo
	stats Stats
	// fper is the oracle's reusable fingerprint scratch: memo keys are
	// computed once per query on the oracle's own goroutine, so holding one
	// hasher beats a pool round-trip per key (TestQueryKeyAllocs pins the
	// allocation bound).
	fper *explore.Fingerprinter
	// metrics are the oracle's live counters, resolved once at
	// construction from opts.Obs; with observability disabled every
	// pointer is nil and each Add is a single nil-check (per query, never
	// per configuration).
	metrics oracleMetrics
	// ckpt, when set, receives save opportunities between queries and at
	// the BFS level boundaries of exhaustive searches (SetCheckpointer).
	ckpt *checkpoint.Coordinator
	// resume, when set, is a loaded in-flight query waiting for its
	// matching search (SetResume); consumed by the first match.
	resume *checkpoint.QueryData
}

// oracleMetrics mirrors Stats into the observability registry, live, so
// /debug/vars shows memo hit rates mid-run instead of a terminal snapshot.
type oracleMetrics struct {
	queries, hits         *obs.Counter
	soloQueries, soloHits *obs.Counter
	configs               *obs.Counter
	queryConfigs          *obs.Histogram
	queryUs               *obs.Histogram
}

// QueryLatencyBoundsMicros are the fixed buckets of the valency_query_us
// histogram: exhaustive queries span memo-adjacent microseconds to
// full-space searches of seconds.
var QueryLatencyBoundsMicros = []int64{100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1000000, 5000000, 30000000}

func newOracleMetrics(s *obs.Scope) oracleMetrics {
	if !s.Enabled() {
		return oracleMetrics{}
	}
	return oracleMetrics{
		queries:      s.Counter("valency_queries"),
		hits:         s.Counter("valency_memo_hits"),
		soloQueries:  s.Counter("valency_solo_queries"),
		soloHits:     s.Counter("valency_solo_hits"),
		configs:      s.Counter("valency_configs"),
		queryConfigs: s.Histogram("valency_query_configs", obs.LevelSizeBounds),
		queryUs:      s.Histogram("valency_query_us", QueryLatencyBoundsMicros),
	}
}

// Stats reports the work an oracle has done, for the experiment tables.
type Stats struct {
	// Queries counts Decidable/ProbeBivalent calls, Hits the memoised ones.
	Queries, Hits int
	// SoloQueries counts SoloDeciding searches, SoloHits the memoised ones
	// (already-decided fast paths are not counted).
	SoloQueries, SoloHits int
	// Configs is the total number of distinct configurations visited
	// across all non-memoised queries, solo searches included.
	Configs int
	// DeepestLevel is the deepest completed BFS level any search of this
	// oracle reached (partial-progress reporting keys on it).
	DeepestLevel int
}

// Verdict is the answer to one valency query.
type Verdict struct {
	// Decidable is the set of values decidable by P-only executions.
	Decidable map[model.Value]bool
	// Witness maps each decidable value to a P-only path from C to a
	// configuration in which that value has been decided.
	Witness map[model.Value]model.Path
}

// Bivalent reports whether both binary values are decidable.
func (v *Verdict) Bivalent() bool {
	return v.Decidable[V0] && v.Decidable[V1]
}

// Univalent returns the unique decidable value, if exactly one.
func (v *Verdict) Univalent() (model.Value, bool) {
	if len(v.Decidable) != 1 {
		return model.Bottom, false
	}
	for val := range v.Decidable {
		return val, true
	}
	return model.Bottom, false
}

// Any returns some decidable value (Proposition 1(i) guarantees one exists
// for correct protocols). The boolean is false for a protocol that can reach
// a decision-free sink, which would itself violate solo termination.
func (v *Verdict) Any() (model.Value, bool) {
	for val := range v.Decidable {
		return val, true
	}
	return model.Bottom, false
}

// New returns an oracle using the given exploration bounds, with a private
// memo table.
func New(opts explore.Options) *Oracle {
	return NewWithMemo(opts, NewMemo())
}

// NewWithMemo returns an oracle sharing the given memo table. All oracles
// sharing a memo must use identical exploration options.
func NewWithMemo(opts explore.Options, memo *Memo) *Oracle {
	return &Oracle{opts: opts, memo: memo, fper: opts.NewFingerprinter(), metrics: newOracleMetrics(opts.Obs)}
}

// Stats returns a copy of the oracle's work counters.
func (o *Oracle) Stats() Stats { return o.stats }

// Obs returns the observability scope the oracle's exploration options
// carry (nil when disabled); the adversary engine traces through it.
func (o *Oracle) Obs() *obs.Scope { return o.opts.Obs }

func (o *Oracle) queryKey(c model.Config, p []int) (queryKey, error) {
	var mask uint64
	for _, pid := range p {
		if pid < 0 || pid >= 64 {
			return queryKey{}, fmt.Errorf("valency: pid %d outside memo-key range [0,64)", pid)
		}
		mask |= 1 << uint(pid)
	}
	return queryKey{fp: o.fper.Fingerprint(c), pids: mask}, nil
}

func newVerdict() *Verdict {
	return &Verdict{
		Decidable: make(map[model.Value]bool),
		Witness:   make(map[model.Value]model.Path),
	}
}

// seedSolo seeds verdict with the (memoised) solo-deciding executions of
// the processes in p — each is a p-only execution, so every value it
// decides belongs in the decidable set. Processes that cannot decide solo
// within bounds contribute nothing and the error is swallowed (the
// exhaustive search still decides the query); only context cancellation
// propagates.
func (o *Oracle) seedSolo(ctx context.Context, c model.Config, p []int, verdict *Verdict) error {
	for _, pid := range p {
		path, val, err := o.SoloDeciding(ctx, c, pid)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("valency solo seed p%d: %w", pid, err)
			}
			continue
		}
		if !verdict.Decidable[val] {
			verdict.Decidable[val] = true
			verdict.Witness[val] = path
		}
		if verdict.Bivalent() {
			return nil
		}
	}
	return nil
}

// exploreDecidable runs the exhaustive p-only search, folding decided
// values into verdict. Values already seeded keep their witnesses; the
// search stops as soon as the verdict is bivalent.
//
// With a checkpointer attached, every BFS level boundary offers an
// in-flight snapshot keyed by (key, effective cap); and when a loaded
// snapshot with that exact key is pending, the search re-enters at its
// stored level, with the values it had already discovered pre-seeded.
func (o *Oracle) exploreDecidable(ctx context.Context, key queryKey, c model.Config, p []int, opts explore.Options, verdict *Verdict) error {
	witnessIDs := make(map[model.Value]int)
	if o.ckpt != nil {
		effMax := effectiveMax(opts)
		opts.Snapshot = func(sn *explore.Snapshotter) {
			o.ckpt.TickQuery(func() *checkpoint.QueryData {
				data, err := sn.Data()
				if err != nil {
					return nil
				}
				return buildQueryData(key, effMax, data, witnessIDs)
			})
		}
	}
	if q := o.resume; q != nil && explore.Fingerprint(q.FP) == key.fp && q.Pids == key.pids && q.MaxConfigs == effectiveMax(opts) {
		o.resume = nil
		opts.ResumeFrom = restoreQueryData(q)
		for _, f := range q.Found {
			val := model.Value(f.Value)
			if !verdict.Decidable[val] {
				verdict.Decidable[val] = true
				witnessIDs[val] = f.ID
			}
		}
	}
	numProcs := c.NumProcesses()
	searchStart := time.Now()
	res, err := explore.Reach(ctx, c, p, opts, func(v explore.Visit) bool {
		// Per-pid Decided probes instead of DecidedValues(): the latter
		// builds a map per visited configuration, which dominated the
		// query's allocations.
		for pid := 0; pid < numProcs; pid++ {
			val, ok := v.Config.Decided(pid)
			if !ok {
				continue
			}
			if !verdict.Decidable[val] {
				verdict.Decidable[val] = true
				witnessIDs[val] = v.ID
			}
		}
		// Both binary values found: executions witnessing them are
		// already recorded, so the query can stop here — for valency,
		// bivalence is maximal knowledge.
		return !(verdict.Decidable[V0] && verdict.Decidable[V1])
	})
	o.stats.Configs += res.Count
	o.stats.DeepestLevel = max(o.stats.DeepestLevel, res.Depth)
	o.metrics.configs.Add(int64(res.Count))
	o.metrics.queryConfigs.Observe(int64(res.Count))
	o.metrics.queryUs.Observe(time.Since(searchStart).Microseconds())
	for val, id := range witnessIDs {
		path, ok := res.PathTo(id)
		if !ok {
			return fmt.Errorf("valency: lost witness for %q", string(val))
		}
		verdict.Witness[val] = path
	}
	return err
}

// Decidable computes the set of values the process set p can decide from c
// (Definition 1), with witness executions. p must be non-empty and sorted
// (use model.PidList / model.Without to build process sets).
func (o *Oracle) Decidable(ctx context.Context, c model.Config, p []int) (*Verdict, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("valency: empty process set")
	}
	o.stats.Queries++
	o.metrics.queries.Add(1)
	key, err := o.queryKey(c, p)
	if err != nil {
		return nil, err
	}
	if v, ok := o.memo.verdicts[key]; ok {
		o.stats.Hits++
		o.metrics.hits.Add(1)
		return v, nil
	}
	verdict := newVerdict()
	if err := o.seedSolo(ctx, c, p, verdict); err != nil {
		return nil, err
	}
	if verdict.Bivalent() {
		// Two solo certificates already prove bivalence — maximal
		// knowledge, no exhaustive search needed.
		o.memo.verdicts[key] = verdict
		return verdict, nil
	}
	sp := o.opts.Obs.StartSpan("valency_decidable", slog.Int("procs", len(p)))
	before := o.stats.Configs
	err = o.exploreDecidable(ctx, key, c, p, o.opts, verdict)
	sp.End(slog.Int("configs", o.stats.Configs-before), slog.Bool("bivalent", verdict.Bivalent()))
	// A capped search that already proved bivalence is still exact:
	// decidable sets only grow, and {0,1} is maximal.
	if err != nil && !verdict.Bivalent() {
		return nil, fmt.Errorf("valency query |P|=%d: %w", len(p), err)
	}
	o.memo.verdicts[key] = verdict
	o.ckpt.Tick()
	return verdict, nil
}

// ProbeBivalent asks only whether p is bivalent from c, spending at most
// budget configurations (0 means the oracle's full MaxConfigs). Unlike
// Bivalent it can return without an answer: (false, nil) means "no
// bivalence certificate found within budget", NOT "univalent". Positive
// answers and exhausted (in-budget) searches are exact and memoised as full
// verdicts; budget-capped misses are not memoised, so a later exhaustive
// query is unimpeded.
//
// The probe is what makes bivalence's asymmetry exploitable: the
// adversary's Lemma 1 needs only *some* process whose removal leaves a
// bivalent set, and finding one costs two solo certificates instead of
// exhausting a |P|-1 space.
func (o *Oracle) ProbeBivalent(ctx context.Context, c model.Config, p []int, budget int) (bool, error) {
	if len(p) == 0 {
		return false, fmt.Errorf("valency: empty process set")
	}
	o.stats.Queries++
	o.metrics.queries.Add(1)
	key, err := o.queryKey(c, p)
	if err != nil {
		return false, err
	}
	if v, ok := o.memo.verdicts[key]; ok {
		o.stats.Hits++
		o.metrics.hits.Add(1)
		o.probeOutcome(p, "memo", v.Bivalent())
		return v.Bivalent(), nil
	}
	verdict := newVerdict()
	if err := o.seedSolo(ctx, c, p, verdict); err != nil {
		return false, err
	}
	if verdict.Bivalent() {
		o.memo.verdicts[key] = verdict
		o.probeOutcome(p, "solo-certificate", true)
		return true, nil
	}
	opts := o.opts
	if budget > 0 && budget < opts.MaxConfigs {
		opts.MaxConfigs = budget
	} else if budget > 0 && opts.MaxConfigs <= 0 && budget < explore.DefaultMaxConfigs {
		opts.MaxConfigs = budget
	}
	err = o.exploreDecidable(ctx, key, c, p, opts, verdict)
	switch {
	case verdict.Bivalent():
		o.memo.verdicts[key] = verdict
		o.probeOutcome(p, "search-certificate", true)
		o.ckpt.Tick()
		return true, nil
	case err == nil:
		// The p-only space was exhausted within budget: the verdict is
		// exact (and not bivalent), so memoise it like Decidable would.
		o.memo.verdicts[key] = verdict
		o.probeOutcome(p, "exhausted", false)
		o.ckpt.Tick()
		return false, nil
	case ctx.Err() != nil:
		return false, fmt.Errorf("valency probe |P|=%d: %w", len(p), err)
	default:
		// Budget exhausted without a certificate: inconclusive, leave
		// the memo empty for a future exhaustive query.
		o.probeOutcome(p, "inconclusive", false)
		return false, nil
	}
}

// probeOutcome records one ProbeBivalent resolution as a counter bump and a
// trace event; outcome names the evidence that settled (or failed to
// settle) the probe.
func (o *Oracle) probeOutcome(p []int, outcome string, bivalent bool) {
	s := o.opts.Obs
	if !s.Enabled() {
		return
	}
	s.Counter("valency_probe_" + outcome).Add(1)
	s.Event("valency_probe",
		slog.Int("procs", len(p)),
		slog.String("outcome", outcome),
		slog.Bool("bivalent", bivalent),
	)
}

// Bivalent reports whether p is bivalent from c (Definition 1).
func (o *Oracle) Bivalent(ctx context.Context, c model.Config, p []int) (bool, error) {
	v, err := o.Decidable(ctx, c, p)
	if err != nil {
		return false, err
	}
	return v.Bivalent(), nil
}

// CanDecide reports whether p can decide val from c.
func (o *Oracle) CanDecide(ctx context.Context, c model.Config, p []int, val model.Value) (bool, error) {
	v, err := o.Decidable(ctx, c, p)
	if err != nil {
		return false, err
	}
	return v.Decidable[val], nil
}

// Univalent reports whether p is v-univalent from c for some v, returning v.
func (o *Oracle) Univalent(ctx context.Context, c model.Config, p []int) (model.Value, bool, error) {
	v, err := o.Decidable(ctx, c, p)
	if err != nil {
		return model.Bottom, false, err
	}
	val, ok := v.Univalent()
	return val, ok, nil
}

// SoloDeciding returns a {pid}-only execution from c in which pid decides,
// together with the decided value. Its existence for every reachable c and
// every pid is exactly the paper's "nondeterministic solo terminating"
// hypothesis; an error therefore means the protocol under test is not NST
// within the oracle's bounds.
//
// Answers are memoised per (configuration fingerprint, pid): Lemmas 2 and 3
// re-ask along overlapping execution prefixes, and Decidable's solo seeding
// asks again for every superset query. Definite refutations are memoised
// too; bounded failures (context, caps) are not, since a retry with more
// budget could succeed.
func (o *Oracle) SoloDeciding(ctx context.Context, c model.Config, pid int) (model.Path, model.Value, error) {
	if v, ok := c.Decided(pid); ok {
		return nil, v, nil
	}
	o.stats.SoloQueries++
	o.metrics.soloQueries.Add(1)
	key := soloKey{fp: o.fper.Fingerprint(c), pid: pid}
	if e, ok := o.memo.solo[key]; ok {
		o.stats.SoloHits++
		o.metrics.soloHits.Add(1)
		if e.err != "" {
			return nil, model.Bottom, errors.New(e.err)
		}
		// Clone: callers splice witness paths into longer schedules.
		return slices.Clone(e.path), e.val, nil
	}
	var (
		decided model.Value
		foundID = -1
	)
	sp := o.opts.Obs.StartSpan("valency_solo", slog.Int("pid", pid))
	res, err := explore.Reach(ctx, c, []int{pid}, o.opts, func(v explore.Visit) bool {
		if val, ok := v.Config.Decided(pid); ok {
			decided = val
			foundID = v.ID
			return false // stop: witness located
		}
		return true
	})
	sp.End(slog.Int("configs", res.Count), slog.Bool("decided", foundID >= 0))
	o.stats.Configs += res.Count
	o.stats.DeepestLevel = max(o.stats.DeepestLevel, res.Depth)
	o.metrics.configs.Add(int64(res.Count))
	if foundID < 0 {
		if err != nil {
			return nil, model.Bottom, fmt.Errorf("solo termination search for p%d: %w", pid, err)
		}
		nstErr := fmt.Errorf(
			"protocol is not solo terminating: p%d cannot decide solo (%d configs searched)",
			pid, res.Count)
		o.memo.solo[key] = &soloEntry{err: nstErr.Error()}
		return nil, model.Bottom, nstErr
	}
	path, ok := res.PathTo(foundID)
	if !ok {
		return nil, model.Bottom, fmt.Errorf("valency: lost solo witness for p%d", pid)
	}
	o.memo.solo[key] = &soloEntry{path: path, val: decided}
	return slices.Clone(path), decided, nil
}
