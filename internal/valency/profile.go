package valency

import (
	"context"
	"fmt"

	"repro/internal/explore"
	"repro/internal/model"
)

// Profile classifies every configuration reachable by p-only executions
// from c according to the valency of p: the quantified version of the
// FLP/valency picture the paper's Section 3.1 builds on. For a correct
// binary consensus protocol the landscape obeys:
//
//   - configurations with a decided process are univalent for that value
//     (Proposition 1(iv)),
//   - univalent regions absorb: successors of a v-univalent configuration
//     are v-univalent,
//   - the initial mixed-input configuration is bivalent (Proposition 2).
//
// ProfileReport records the landscape; Oracle.Profile verifies the three
// laws while building it and errors on any violation, making the profile
// itself another protocol check.
type ProfileReport struct {
	Protocol string
	// Bivalent, Zero and One count configurations by valency of p.
	Bivalent, Zero, One int
	// Decided counts configurations where some process has decided.
	Decided int
	// Configs and Steps are the exploration totals of the p-only
	// reachable space the landscape was built over: distinct
	// configurations and state transitions examined.
	Configs, Steps int
	// Queries and SoloQueries are the oracle calls this profile issued
	// (memoised or not); SoloHits of those solo searches were answered
	// from the memo. Because the p-only space is closed under p-moves,
	// the absorption check reuses the classification pass's verdicts and
	// Queries stays at one per configuration — see TestProfileAbsorptionReusesVerdicts.
	Queries, SoloQueries, SoloHits int
}

// Total returns the number of configurations classified.
func (r ProfileReport) Total() int { return r.Bivalent + r.Zero + r.One }

// String renders the landscape in one line.
func (r ProfileReport) String() string {
	return fmt.Sprintf("%s: %d configurations: %d bivalent, %d 0-univalent, %d 1-univalent (%d with decisions); %d steps, %d valency queries (%d solo, %d memoised)",
		r.Protocol, r.Total(), r.Bivalent, r.Zero, r.One, r.Decided, r.Steps, r.Queries, r.SoloQueries, r.SoloHits)
}

// Profile explores the p-only reachable space of c and classifies every
// configuration, verifying the valency laws along the way.
//
// The absorption law is checked without re-querying the oracle: the p-only
// reachable space is closed under p-moves, so every successor of a kept
// configuration is itself a kept configuration, and its verdict is looked
// up in the classification pass's fingerprint-keyed table. Only when the
// exploration was capped (successors possibly outside the kept set) does
// the check fall back to a fresh oracle query.
func (o *Oracle) Profile(ctx context.Context, name string, c model.Config, p []int) (ProfileReport, error) {
	report := ProfileReport{Protocol: name}
	type entry struct {
		cfg model.Config
		fp  explore.Fingerprint
	}
	statsBefore := o.stats
	var kept []entry
	res, err := explore.Reach(ctx, c, p, o.opts, func(v explore.Visit) bool {
		// Clone: v.Config is arena-backed and only valid during the
		// callback; the profile keeps the whole space for pass 2.
		kept = append(kept, entry{cfg: v.Config.Clone(), fp: o.opts.Fingerprint(v.Config)})
		return true
	})
	if err != nil {
		return report, fmt.Errorf("valency profile: %w", err)
	}
	report.Configs = res.Count
	report.Steps = res.Steps

	// Pass 1: classify every reachable configuration, indexing verdicts by
	// the same fingerprint the visited set and the oracle's memo use.
	verdicts := make(map[explore.Fingerprint]*Verdict, len(kept))
	for _, e := range kept {
		v, err := o.Decidable(ctx, e.cfg, p)
		if err != nil {
			return report, fmt.Errorf("valency profile: %w", err)
		}
		verdicts[e.fp] = v
		decided := e.cfg.DecidedValues()
		if len(decided) > 0 {
			report.Decided++
		}
		switch {
		case v.Bivalent():
			if len(decided) > 0 {
				return report, fmt.Errorf(
					"valency law violated: bivalent configuration with a decision (protocol broken)")
			}
			report.Bivalent++
		case v.Decidable[V0]:
			report.Zero++
		case v.Decidable[V1]:
			report.One++
		default:
			return report, fmt.Errorf("valency law violated: configuration decides nothing")
		}
	}

	// Pass 2: absorption — every successor of a univalent configuration is
	// univalent for the same value. Successor verdicts come from the table
	// built above; the capped fallback is the only path that can query.
	for _, e := range kept {
		val, ok := verdicts[e.fp].Univalent()
		if !ok {
			continue
		}
		for _, mv := range explore.Moves(e.cfg, p) {
			succCfg := explore.Apply(e.cfg, mv)
			succ, found := verdicts[o.opts.Fingerprint(succCfg)]
			if !found {
				if !res.Capped {
					return report, fmt.Errorf(
						"valency profile: successor of a kept configuration missing from the p-only space (closure violated)")
				}
				succ, err = o.Decidable(ctx, succCfg, p)
				if err != nil {
					return report, fmt.Errorf("valency profile: %w", err)
				}
			}
			if got, uok := succ.Univalent(); !uok || got != val {
				return report, fmt.Errorf(
					"valency law violated: %s-univalent configuration has a non-%s-univalent successor",
					string(val), string(val))
			}
		}
	}
	report.Queries = o.stats.Queries - statsBefore.Queries
	report.SoloQueries = o.stats.SoloQueries - statsBefore.SoloQueries
	report.SoloHits = o.stats.SoloHits - statsBefore.SoloHits
	return report, nil
}
