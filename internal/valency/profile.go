package valency

import (
	"context"
	"fmt"

	"repro/internal/explore"
	"repro/internal/model"
)

// Profile classifies every configuration reachable by p-only executions
// from c according to the valency of p: the quantified version of the
// FLP/valency picture the paper's Section 3.1 builds on. For a correct
// binary consensus protocol the landscape obeys:
//
//   - configurations with a decided process are univalent for that value
//     (Proposition 1(iv)),
//   - univalent regions absorb: successors of a v-univalent configuration
//     are v-univalent,
//   - the initial mixed-input configuration is bivalent (Proposition 2).
//
// ProfileReport records the landscape; Oracle.Profile verifies the three
// laws while building it and errors on any violation, making the profile
// itself another protocol check.
type ProfileReport struct {
	Protocol string
	// Bivalent, Zero and One count configurations by valency of p.
	Bivalent, Zero, One int
	// Decided counts configurations where some process has decided.
	Decided int
}

// Total returns the number of configurations classified.
func (r ProfileReport) Total() int { return r.Bivalent + r.Zero + r.One }

// String renders the landscape in one line.
func (r ProfileReport) String() string {
	return fmt.Sprintf("%s: %d configurations: %d bivalent, %d 0-univalent, %d 1-univalent (%d with decisions)",
		r.Protocol, r.Total(), r.Bivalent, r.Zero, r.One, r.Decided)
}

// Profile explores the p-only reachable space of c and classifies every
// configuration, verifying the valency laws along the way.
func (o *Oracle) Profile(ctx context.Context, name string, c model.Config, p []int) (ProfileReport, error) {
	report := ProfileReport{Protocol: name}
	type entry struct {
		cfg model.Config
		id  int
	}
	var kept []entry
	res, err := explore.Reach(ctx, c, p, o.opts, func(v explore.Visit) bool {
		kept = append(kept, entry{cfg: v.Config, id: v.ID})
		return true
	})
	if err != nil {
		return report, fmt.Errorf("valency profile: %w", err)
	}
	_ = res
	verdicts := make(map[int]*Verdict, len(kept))
	for _, e := range kept {
		v, err := o.Decidable(ctx, e.cfg, p)
		if err != nil {
			return report, fmt.Errorf("valency profile: %w", err)
		}
		verdicts[e.id] = v
		decided := e.cfg.DecidedValues()
		if len(decided) > 0 {
			report.Decided++
		}
		switch {
		case v.Bivalent():
			if len(decided) > 0 {
				return report, fmt.Errorf(
					"valency law violated: bivalent configuration with a decision (protocol broken)")
			}
			report.Bivalent++
		case v.Decidable[V0]:
			report.Zero++
		case v.Decidable[V1]:
			report.One++
		default:
			return report, fmt.Errorf("valency law violated: configuration decides nothing")
		}
		// Absorption: every successor of a univalent configuration is
		// univalent for the same value.
		if val, ok := v.Univalent(); ok {
			for _, mv := range explore.Moves(e.cfg, p) {
				succ, err := o.Decidable(ctx, explore.Apply(e.cfg, mv), p)
				if err != nil {
					return report, fmt.Errorf("valency profile: %w", err)
				}
				if got, uok := succ.Univalent(); !uok || got != val {
					return report, fmt.Errorf(
						"valency law violated: %s-univalent configuration has a non-%s-univalent successor",
						string(val), string(val))
				}
			}
		}
	}
	return report, nil
}
