package valency

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/explore"
	"repro/internal/model"
)

// Memo export/import and in-flight query resume: the bridge between the
// oracle's typed state and the checkpoint package's plain-schema snapshots.
//
// The memo is the payload that makes resume fast-forward deterministic: a
// resumed Theorem 1 construction re-runs from the top, every query answered
// before the crash hits the restored memo — returning the exact witness
// paths the original search found — and the construction replays to where
// it died without re-exploring anything. The optional in-flight QueryData
// additionally re-enters the one search the crash interrupted at its last
// completed BFS level instead of level 0.

func pathToMoves(p model.Path) []checkpoint.Move {
	if p == nil {
		return nil
	}
	out := make([]checkpoint.Move, len(p))
	for i, m := range p {
		out[i] = checkpoint.Move{Pid: m.Pid, Coin: string(m.Coin)}
	}
	return out
}

func movesToPath(ms []checkpoint.Move) model.Path {
	if ms == nil {
		return nil
	}
	out := make(model.Path, len(ms))
	for i, m := range ms {
		out[i] = model.Move{Pid: m.Pid, Coin: model.Value(m.Coin)}
	}
	return out
}

// ExportMemo converts the memo tables to the checkpoint schema. Records
// are emitted in sorted key order so identical memos serialise identically.
func ExportMemo(m *Memo) *checkpoint.MemoData {
	d := &checkpoint.MemoData{}
	for key, v := range m.verdicts {
		rec := checkpoint.VerdictRec{FP: [2]uint64(key.fp), Pids: key.pids}
		for val := range v.Decidable {
			rec.Values = append(rec.Values, string(val))
		}
		sort.Strings(rec.Values)
		rec.Witness = make([][]checkpoint.Move, len(rec.Values))
		for i, val := range rec.Values {
			rec.Witness[i] = pathToMoves(v.Witness[model.Value(val)])
		}
		d.Verdicts = append(d.Verdicts, rec)
	}
	sort.Slice(d.Verdicts, func(i, j int) bool {
		a, b := d.Verdicts[i], d.Verdicts[j]
		if a.FP != b.FP {
			return a.FP[0] < b.FP[0] || (a.FP[0] == b.FP[0] && a.FP[1] < b.FP[1])
		}
		return a.Pids < b.Pids
	})
	for key, e := range m.solo {
		d.Solo = append(d.Solo, checkpoint.SoloRec{
			FP:   [2]uint64(key.fp),
			Pid:  key.pid,
			Err:  e.err,
			Val:  string(e.val),
			Path: pathToMoves(e.path),
		})
	}
	sort.Slice(d.Solo, func(i, j int) bool {
		a, b := d.Solo[i], d.Solo[j]
		if a.FP != b.FP {
			return a.FP[0] < b.FP[0] || (a.FP[0] == b.FP[0] && a.FP[1] < b.FP[1])
		}
		return a.Pid < b.Pid
	})
	return d
}

// ImportMemo rebuilds memo tables from a snapshot. The caller owns the
// guarantee that the snapshot's exploration options match the live run's
// (checkpoint.Meta records them for that comparison).
func ImportMemo(d *checkpoint.MemoData) (*Memo, error) {
	m := NewMemo()
	if d == nil {
		return m, nil
	}
	for _, rec := range d.Verdicts {
		if len(rec.Witness) != len(rec.Values) {
			return nil, fmt.Errorf("valency: memo verdict has %d witnesses for %d values", len(rec.Witness), len(rec.Values))
		}
		v := newVerdict()
		for i, val := range rec.Values {
			v.Decidable[model.Value(val)] = true
			v.Witness[model.Value(val)] = movesToPath(rec.Witness[i])
		}
		m.verdicts[queryKey{fp: explore.Fingerprint(rec.FP), pids: rec.Pids}] = v
	}
	for _, rec := range d.Solo {
		m.solo[soloKey{fp: explore.Fingerprint(rec.FP), pid: rec.Pid}] = &soloEntry{
			path: movesToPath(rec.Path),
			val:  model.Value(rec.Val),
			err:  rec.Err,
		}
	}
	return m, nil
}

// SetCheckpointer attaches a coordinator: the oracle registers its memo as
// the coordinator's memo source and offers in-flight snapshots at the BFS
// level boundaries of every exhaustive query. A nil coordinator detaches.
func (o *Oracle) SetCheckpointer(c *checkpoint.Coordinator) {
	o.ckpt = c
	c.SetMemoSource(func() *checkpoint.MemoData { return ExportMemo(o.memo) })
}

// SetResume hands the oracle the in-flight query state of a loaded
// snapshot. The first exhaustive query matching its (fingerprint, process
// set, effective cap) re-enters the search at the stored BFS level; in a
// deterministic replay that is exactly the query the crash interrupted,
// since every earlier query hits the restored memo.
func (o *Oracle) SetResume(q *checkpoint.QueryData) {
	o.resume = q
}

// effectiveMax is the cap Reach will actually apply under opts, the value
// in-flight snapshots are keyed by.
func effectiveMax(opts explore.Options) int {
	if opts.MaxConfigs <= 0 {
		return explore.DefaultMaxConfigs
	}
	return opts.MaxConfigs
}

// buildQueryData freezes one exhaustive query for a snapshot.
func buildQueryData(key queryKey, maxConfigs int, data *explore.LevelCheckpoint, witnessIDs map[model.Value]int) *checkpoint.QueryData {
	q := &checkpoint.QueryData{
		FP:           [2]uint64(key.fp),
		Pids:         key.pids,
		MaxConfigs:   maxConfigs,
		Depth:        data.Depth,
		Count:        data.Count,
		Steps:        data.Steps,
		PeakFrontier: data.PeakFrontier,
		Nodes:        make([]checkpoint.Node, len(data.Nodes)),
		Frontier:     make([]int, len(data.Frontier)),
		Fingerprints: make([][2]uint64, len(data.Fingerprints)),
	}
	for i, n := range data.Nodes {
		q.Nodes[i] = checkpoint.Node{
			Parent: int(n.Parent),
			Depth:  int(n.Depth),
			Move:   checkpoint.Move{Pid: n.Via.Pid, Coin: string(n.Via.Coin)},
		}
	}
	for i, id := range data.Frontier {
		q.Frontier[i] = int(id)
	}
	for i, fp := range data.Fingerprints {
		q.Fingerprints[i] = fp
	}
	for val, id := range witnessIDs {
		q.Found = append(q.Found, checkpoint.Found{Value: string(val), ID: id})
	}
	sort.Slice(q.Found, func(i, j int) bool { return q.Found[i].Value < q.Found[j].Value })
	return q
}

// restoreQueryData converts a loaded in-flight query back into the explore
// checkpoint form.
func restoreQueryData(q *checkpoint.QueryData) *explore.LevelCheckpoint {
	cp := &explore.LevelCheckpoint{
		Depth:        q.Depth,
		Count:        q.Count,
		Steps:        q.Steps,
		PeakFrontier: q.PeakFrontier,
		Nodes:        make([]explore.CheckpointNode, len(q.Nodes)),
		Frontier:     make([]int32, len(q.Frontier)),
		Fingerprints: make([]explore.Fingerprint, len(q.Fingerprints)),
	}
	for i, n := range q.Nodes {
		cp.Nodes[i] = explore.CheckpointNode{
			Parent: int32(n.Parent),
			Depth:  int32(n.Depth),
			Via:    model.Move{Pid: n.Move.Pid, Coin: model.Value(n.Move.Coin)},
		}
	}
	for i, id := range q.Frontier {
		cp.Frontier[i] = int32(id)
	}
	for i, fp := range q.Fingerprints {
		cp.Fingerprints[i] = explore.Fingerprint(fp)
	}
	return cp
}
