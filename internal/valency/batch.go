package valency

import (
	"context"
	"fmt"
	"log/slog"
	"math/bits"
	"slices"

	"repro/internal/explore"
	"repro/internal/model"
)

// Batched valency probes: many candidate process sets, one search.
//
// The adversary's Lemma 1 asks, for each z in a bivalent set P, whether
// P-{z} is still bivalent — n candidate sets whose p-only spaces overlap
// almost entirely (every configuration reachable without touching two of
// the processes is shared by n-2 of the candidates). Probing them one at a
// time re-explores that shared space once per candidate. The batch probe
// explores it once: a single BFS over the union space where every
// configuration carries a bitmask of the candidates for which the path
// that reached it is candidate-only. A step by process q propagates the
// parent's mask minus the candidates excluding q, so a set bit k on a node
// is a proof that the node's witness path is a candidates[k]-only
// execution — which makes decided values found under bit k certificates
// for candidate k, with the same replayable witness paths Decidable
// produces.
//
// Exactness mirrors ProbeBivalent: a candidate resolved bivalent within
// budget is exact; when the search drains the union frontier within budget
// every remaining candidate's space was exhausted and its (non-bivalent)
// verdict is exact too. Both are memoised as full verdicts. A
// budget-capped miss is inconclusive and leaves the memo untouched.
//
// Batch searches never snapshot mid-search (they are budget-bounded and
// cheap to redo); a crash-resumed run replays the whole batch and lands on
// the same memoised verdicts.

// maxBatchCandidates bounds one batch (the mask is a uint64).
const maxBatchCandidates = 64

// batchOutcome is one candidate's resolution within a batch.
type batchOutcome struct {
	verdict *Verdict
	exact   bool
}

// DecideBatch computes Decidable for every candidate process set in one
// shared search over the union of their p-only spaces. It is exact: if the
// oracle's configuration cap binds before the union space is exhausted and
// some candidate is still unresolved, it errors like Decidable would.
func (o *Oracle) DecideBatch(ctx context.Context, c model.Config, cands [][]int) ([]*Verdict, error) {
	outs, err := o.decideBatch(ctx, c, cands, 0)
	if err != nil {
		return nil, err
	}
	verdicts := make([]*Verdict, len(outs))
	for i, out := range outs {
		if !out.exact {
			return nil, fmt.Errorf("valency batch query |P|=%d: %w", len(cands[i]), explore.ErrCapped)
		}
		verdicts[i] = out.verdict
	}
	return verdicts, nil
}

// ProbeBivalentBatch is ProbeBivalent over many candidate sets at once,
// sharing one search (and one budget) across all of them. results[i] is
// true iff candidates[i] was certified bivalent; false means either an
// exact refutation (memoised) or an inconclusive budget miss (not
// memoised), exactly as for ProbeBivalent.
func (o *Oracle) ProbeBivalentBatch(ctx context.Context, c model.Config, cands [][]int, budget int) ([]bool, error) {
	outs, err := o.decideBatch(ctx, c, cands, budget)
	if err != nil {
		return nil, err
	}
	results := make([]bool, len(outs))
	for i, out := range outs {
		results[i] = out.verdict != nil && out.verdict.Bivalent()
	}
	return results, nil
}

// decideBatch is the shared worker: memo and solo fast paths per
// candidate, then one mask-annotated BFS for whatever remains. budget <= 0
// means the oracle's full cap.
func (o *Oracle) decideBatch(ctx context.Context, c model.Config, cands [][]int, budget int) ([]batchOutcome, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("valency: empty candidate batch")
	}
	if len(cands) > maxBatchCandidates {
		return nil, fmt.Errorf("valency: batch of %d candidates exceeds %d", len(cands), maxBatchCandidates)
	}
	outs := make([]batchOutcome, len(cands))
	keys := make([]queryKey, len(cands))
	active := make([]int, 0, len(cands))
	for i, p := range cands {
		if len(p) == 0 {
			return nil, fmt.Errorf("valency: empty process set in batch")
		}
		o.stats.Queries++
		o.metrics.queries.Add(1)
		key, err := o.queryKey(c, p)
		if err != nil {
			return nil, err
		}
		keys[i] = key
		if v, ok := o.memo.verdicts[key]; ok {
			o.stats.Hits++
			o.metrics.hits.Add(1)
			o.probeOutcome(p, "memo", v.Bivalent())
			outs[i] = batchOutcome{verdict: v, exact: true}
			continue
		}
		active = append(active, i)
	}

	// Solo certificates first: SoloDeciding is memoised per (config, pid)
	// and every pid recurs in most candidates, so the whole pass costs at
	// most one tiny solo search per process.
	still := active[:0]
	for _, i := range active {
		verdict := newVerdict()
		if err := o.seedSolo(ctx, c, cands[i], verdict); err != nil {
			return nil, err
		}
		if verdict.Bivalent() {
			o.memo.verdicts[keys[i]] = verdict
			o.probeOutcome(cands[i], "solo-certificate", true)
			outs[i] = batchOutcome{verdict: verdict, exact: true}
			continue
		}
		outs[i] = batchOutcome{verdict: verdict}
		still = append(still, i)
	}
	active = still
	if len(active) == 0 {
		o.ckpt.Tick()
		return outs, nil
	}

	exhausted, err := o.batchSearch(ctx, c, cands, keys, active, outs, budget)
	if err != nil {
		return nil, err
	}
	for _, i := range active {
		out := &outs[i]
		switch {
		case out.exact:
			// Certified bivalent during the search (memoised there).
		case exhausted:
			o.memo.verdicts[keys[i]] = out.verdict
			o.probeOutcome(cands[i], "exhausted", false)
			out.exact = true
		default:
			o.probeOutcome(cands[i], "inconclusive", false)
		}
	}
	o.ckpt.Tick()
	return outs, nil
}

// batchNode is one entry of the batch forest: enough to replay the witness
// path, plus the candidate mask its path is valid for.
type batchNode struct {
	parent int32
	depth  int32
	via    model.Move
	mask   uint64
}

// batchSearch runs the mask BFS for the active candidates, folding decided
// values into outs[i].verdict as they are found and memoising candidates
// that reach bivalence mid-search. It reports whether the union space was
// exhausted within budget.
func (o *Oracle) batchSearch(ctx context.Context, c model.Config, cands [][]int, keys []queryKey, active []int, outs []batchOutcome, budget int) (bool, error) {
	opts := o.opts
	maxConfigs := effectiveMax(opts)
	if budget > 0 && budget < maxConfigs {
		maxConfigs = budget
	}

	// union is the sorted union of the candidates' processes; allowed[pid]
	// is the set of active candidates whose process set contains pid.
	inUnion := make(map[int]uint64)
	for bit, i := range active {
		for _, pid := range cands[i] {
			inUnion[pid] |= 1 << uint(bit)
		}
	}
	union := make([]int, 0, len(inUnion))
	for pid := range inUnion {
		union = append(union, pid)
	}
	slices.Sort(union)

	allBits := uint64(1)<<uint(len(active)) - 1
	liveBits := allBits // candidates still seeking an answer
	fper := opts.NewFingerprinter()
	seen := map[explore.Fingerprint]uint64{fper.Fingerprint(c): allBits}
	nodes := []batchNode{{parent: -1, mask: allBits}}
	cfgs := []model.Config{c}
	// witnessIDs[bit] maps a decided value to the node certifying it for
	// that candidate.
	witnessIDs := make([]map[model.Value]int32, len(active))
	for bit := range witnessIDs {
		witnessIDs[bit] = make(map[model.Value]int32)
	}

	count := 0
	capped := false
	sp := opts.Obs.StartSpan("valency_batch", slog.Int("candidates", len(active)))
	defer func() {
		o.stats.Configs += count
		o.metrics.configs.Add(int64(count))
		o.metrics.queryConfigs.Observe(int64(count))
		sp.End(slog.Int("configs", count), slog.Bool("exhausted", !capped))
	}()

	note := func(id int32) error {
		n := &nodes[id]
		mask := n.mask & liveBits
		if mask == 0 {
			return nil
		}
		cfg := cfgs[id]
		for _, pid := range union {
			val, ok := cfg.Decided(pid)
			if !ok {
				continue
			}
			for m := mask & liveBits; m != 0; m &= m - 1 {
				bit := bits.TrailingZeros64(m)
				i := active[bit]
				verdict := outs[i].verdict
				if verdict.Decidable[val] {
					continue
				}
				verdict.Decidable[val] = true
				witnessIDs[bit][val] = id
				if verdict.Bivalent() && !outs[i].exact {
					if err := o.finishBatchCandidate(c, cands[i], keys[i], &outs[i], nodes, witnessIDs[bit]); err != nil {
						return err
					}
					liveBits &^= 1 << uint(bit)
				}
			}
		}
		return nil
	}
	count++
	if err := note(0); err != nil {
		return false, err
	}

	for lo := 0; lo < len(nodes) && liveBits != 0; lo++ {
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("valency batch: %w", err)
		}
		if count >= maxConfigs {
			capped = true
			break
		}
		n := nodes[lo]
		mask := n.mask & liveBits
		if mask == 0 {
			continue
		}
		cfg := cfgs[lo]
		for _, mv := range explore.Moves(cfg, union) {
			childMask := mask & inUnion[mv.Pid]
			if childMask == 0 {
				continue
			}
			child := explore.Apply(cfg, mv)
			fp := fper.Fingerprint(child)
			prev, ok := seen[fp]
			if ok && childMask&^prev == 0 {
				continue
			}
			if !ok {
				count++
			}
			seen[fp] = prev | childMask
			id := int32(len(nodes))
			nodes = append(nodes, batchNode{parent: int32(lo), depth: n.depth + 1, via: mv, mask: childMask})
			cfgs = append(cfgs, child)
			o.stats.DeepestLevel = max(o.stats.DeepestLevel, int(n.depth)+1)
			if err := note(id); err != nil {
				return false, err
			}
			if liveBits == 0 {
				break
			}
			if count >= maxConfigs {
				capped = true
				break
			}
		}
	}
	if !capped {
		// The union frontier drained: every unresolved candidate's space was
		// exhausted, so its found values are its whole decidable set —
		// materialise their witness paths for the memo.
		for bit, i := range active {
			if outs[i].exact {
				continue
			}
			for val, id := range witnessIDs[bit] {
				outs[i].verdict.Witness[val] = batchPathTo(nodes, id)
			}
		}
	}
	return !capped, nil
}

// finishBatchCandidate materialises witness paths for a candidate that
// reached bivalence mid-search and memoises its verdict.
func (o *Oracle) finishBatchCandidate(c model.Config, p []int, key queryKey, out *batchOutcome, nodes []batchNode, ids map[model.Value]int32) error {
	for val, id := range ids {
		out.verdict.Witness[val] = batchPathTo(nodes, id)
	}
	for val, path := range out.verdict.Witness {
		if !model.RunPath(c, path).DecidedValues()[val] {
			return fmt.Errorf("valency batch: witness for %q does not replay", string(val))
		}
	}
	o.memo.verdicts[key] = out.verdict
	o.probeOutcome(p, "search-certificate", true)
	out.exact = true
	return nil
}

// batchPathTo replays the forest from node id back to the root.
func batchPathTo(nodes []batchNode, id int32) model.Path {
	var rev model.Path
	for id > 0 {
		rev = append(rev, nodes[id].via)
		id = nodes[id].parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

