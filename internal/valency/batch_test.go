package valency

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
)

// TestDecideBatchMatchesDecidable: the batched verdicts must coincide with
// a fresh sequential oracle's Decidable on every candidate — same decidable
// sets, replayable witnesses — across random reachable flood configurations.
func TestDecideBatchMatchesDecidable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cands := [][]int{{0}, {1}, {0, 1}}
	for trial := 0; trial < 60; trial++ {
		c := floodConfig("0", "1")
		for s := 0; s < rng.Intn(12); s++ {
			c = c.StepDet(rng.Intn(2))
		}
		batched := New(explore.Options{})
		verdicts, err := batched.DecideBatch(context.Background(), c, cands)
		if err != nil {
			t.Fatal(err)
		}
		sequential := New(explore.Options{})
		for i, p := range cands {
			want, err := sequential.Decidable(context.Background(), c, p)
			if err != nil {
				t.Fatal(err)
			}
			got := verdicts[i]
			for _, val := range []model.Value{V0, V1} {
				if got.Decidable[val] != want.Decidable[val] {
					t.Fatalf("trial %d set %v: batch decidable[%s]=%v, sequential=%v",
						trial, p, string(val), got.Decidable[val], want.Decidable[val])
				}
			}
			for val := range got.Decidable {
				if !model.RunPath(c, got.Witness[val]).DecidedValues()[val] {
					t.Fatalf("trial %d set %v: batch witness for %s does not replay", trial, p, string(val))
				}
			}
		}
	}
}

// TestProbeBivalentBatchMatchesSequential: with an unbounded budget both the
// batch and the per-candidate probe are exact, so their answers must agree
// on DiskRace Lemma 1 candidate sets.
func TestProbeBivalentBatchMatchesSequential(t *testing.T) {
	disk := consensus.DiskRace{}
	opts := explore.Options{KeyFn: disk.CanonicalKey, KeyTo: disk.CanonicalKeyTo}
	c := model.NewConfig(disk, []model.Value{"0", "1", "1"})
	p := []int{0, 1, 2}
	cands := make([][]int, len(p))
	for i, z := range p {
		cands[i] = model.Without(p, z)
	}
	batched := New(opts)
	got, err := batched.ProbeBivalentBatch(context.Background(), c, cands, 0)
	if err != nil {
		t.Fatal(err)
	}
	sequential := New(opts)
	for i, cand := range cands {
		want, err := sequential.ProbeBivalent(context.Background(), c, cand, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("candidate %v: batch=%v sequential=%v", cand, got[i], want)
		}
	}
}

// TestBatchMemoProtocol pins the batch's memoisation contract to the
// sequential probe's: memoised answers hit, positive and exhausted verdicts
// are exact and memoised, budget-capped misses leave the memo untouched.
func TestBatchMemoProtocol(t *testing.T) {
	t.Run("positive and exhausted memoised", func(t *testing.T) {
		o := New(explore.Options{})
		c := floodConfig("0", "1")
		// {0,1} is bivalent (solo certificates), {0} and {1} are univalent
		// (exhausted in budget): all three verdicts become exact memo rows.
		if _, err := o.ProbeBivalentBatch(context.Background(), c, [][]int{{0, 1}, {0}, {1}}, 0); err != nil {
			t.Fatal(err)
		}
		before := o.Stats()
		for _, p := range [][]int{{0, 1}, {0}, {1}} {
			if _, err := o.Decidable(context.Background(), c, p); err != nil {
				t.Fatal(err)
			}
		}
		if s := o.Stats(); s.Hits != before.Hits+3 {
			t.Fatalf("stats %+v -> %+v, want 3 memo hits", before, s)
		}
	})
	t.Run("inconclusive not memoised", func(t *testing.T) {
		disk := consensus.DiskRace{}
		o := New(explore.Options{KeyFn: disk.CanonicalKey, KeyTo: disk.CanonicalKeyTo})
		// Unanimous inputs: no bivalence certificate exists and the
		// 2-process spaces are too big for the budget, so every candidate
		// is inconclusive.
		c := model.NewConfig(disk, []model.Value{"1", "1", "1"})
		cands := [][]int{{0, 1}, {0, 2}, {1, 2}}
		got, err := o.ProbeBivalentBatch(context.Background(), c, cands, 48)
		if err != nil {
			t.Fatal(err)
		}
		for i, biv := range got {
			if biv {
				t.Fatalf("budget-capped candidate %v claimed bivalence", cands[i])
			}
		}
		before := o.Stats()
		v, err := o.Decidable(context.Background(), c, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if o.Stats().Hits != before.Hits {
			t.Fatal("inconclusive batch outcome was memoised")
		}
		if got, ok := v.Univalent(); !ok || got != V1 {
			t.Fatalf("unanimous pair decidable = %v, want 1-univalent", v.Decidable)
		}
	})
	t.Run("DecideBatch errors when capped", func(t *testing.T) {
		o := New(explore.Options{MaxConfigs: 4, KeyFn: consensus.DiskRace{}.CanonicalKey, KeyTo: consensus.DiskRace{}.CanonicalKeyTo})
		c := model.NewConfig(consensus.DiskRace{}, []model.Value{"1", "1", "1"})
		if _, err := o.DecideBatch(context.Background(), c, [][]int{{0, 1}}); err == nil {
			t.Fatal("capped DecideBatch returned verdicts")
		}
	})
}

// TestQueryKeyAllocs pins the memo-hit fast path's allocation budget: with
// the oracle's reusable fingerprint scratch, a memoised Decidable query
// must not allocate per call.
func TestQueryKeyAllocs(t *testing.T) {
	o := New(explore.Options{})
	c := floodConfig("0", "1")
	p := []int{0, 1}
	ctx := context.Background()
	if _, err := o.Decidable(ctx, c, p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := o.Decidable(ctx, c, p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("memo-hit Decidable allocates %.1f per query, want <= 2", allocs)
	}
}
