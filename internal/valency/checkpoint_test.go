package valency

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/explore"
	"repro/internal/model"
)

// TestMemoExportImportRoundtrip: exporting, importing and re-exporting a
// memo is the identity, and an oracle over the imported memo answers the
// original queries without exploring a single configuration — with the
// exact same verdicts and witness paths.
func TestMemoExportImportRoundtrip(t *testing.T) {
	o := New(explore.Options{Workers: 1})
	ctx := context.Background()
	c := floodConfig("0", "1", "1")
	sets := [][]int{{0}, {1, 2}, {0, 1, 2}}
	want := make([]*Verdict, len(sets))
	for i, set := range sets {
		v, err := o.Decidable(ctx, c, set)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	if _, _, err := o.SoloDeciding(ctx, c, 2); err != nil {
		t.Fatal(err)
	}

	exported := ExportMemo(o.memo)
	imported, err := ImportMemo(exported)
	if err != nil {
		t.Fatal(err)
	}
	if again := ExportMemo(imported); !reflect.DeepEqual(again, exported) {
		t.Fatalf("export/import/export drifted:\n got %+v\nwant %+v", again, exported)
	}

	replay := NewWithMemo(explore.Options{Workers: 1}, imported)
	for i, set := range sets {
		v, err := replay.Decidable(ctx, c, set)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v.Decidable, want[i].Decidable) {
			t.Fatalf("set %v: imported verdict %v, want %v", set, v.Decidable, want[i].Decidable)
		}
		if !reflect.DeepEqual(v.Witness, want[i].Witness) {
			t.Fatalf("set %v: imported witness paths differ", set)
		}
	}
	if st := replay.Stats(); st.Configs != 0 {
		t.Fatalf("replay explored %d configs, want 0", st.Configs)
	}

	// Importing inconsistent data must fail, not mis-load.
	bad := &checkpoint.MemoData{Verdicts: []checkpoint.VerdictRec{{Values: []string{"0"}}}}
	if _, err := ImportMemo(bad); err == nil {
		t.Fatal("verdict with values but no witness imported cleanly")
	}
}

// TestInFlightQueryResume is the not-from-level-0 guarantee: a Decidable
// query cancelled mid-BFS leaves a snapshot whose QueryData re-enters the
// search at its stored depth, and the resumed query returns the identical
// verdict while exploring strictly fewer configurations than a full run.
func TestInFlightQueryResume(t *testing.T) {
	ctx := context.Background()
	// Unanimous inputs: solo seeding only proves 1 is decidable, so ruling
	// out 0 forces the exhaustive BFS the crash interrupts.
	c := floodConfig("1", "1", "1")
	pids := []int{0, 1, 2}

	ref := New(explore.Options{Workers: 1})
	wantVerdict, err := ref.Decidable(ctx, c, pids)
	if err != nil {
		t.Fatal(err)
	}
	fullConfigs := ref.Stats().Configs

	// Crash run: cancel as soon as a snapshot carries in-flight state at
	// depth >= 2 — deep enough that resuming from level 0 would be
	// distinguishable.
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	coord := checkpoint.NewCoordinator(store, 0, checkpoint.Meta{Protocol: "flood", N: 3}, nil)
	coord.AfterSave = func(s *checkpoint.Snapshot) {
		if s.Query != nil && s.Query.Depth >= 2 {
			cancel()
		}
	}
	crashed := New(explore.Options{Workers: 1})
	crashed.SetCheckpointer(coord)
	if _, err := crashed.Decidable(runCtx, c, pids); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v, want context.Canceled", err)
	}

	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Query == nil {
		t.Fatal("snapshot carries no in-flight query")
	}
	if snap.Query.Depth < 2 {
		t.Fatalf("in-flight query frozen at depth %d, want >= 2", snap.Query.Depth)
	}
	if snap.Query.Count <= 0 || len(snap.Query.Frontier) == 0 {
		t.Fatalf("in-flight query state empty: %d visited, %d frontier", snap.Query.Count, len(snap.Query.Frontier))
	}

	// Resume: memo + armed query; the verdict must match and the search
	// must not restart from the root.
	memo, err := ImportMemo(snap.Memo)
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewWithMemo(explore.Options{Workers: 1}, memo)
	resumed.SetResume(snap.Query)
	v, err := resumed.Decidable(ctx, c, pids)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Decidable, wantVerdict.Decidable) {
		t.Fatalf("resumed verdict %v, want %v", v.Decidable, wantVerdict.Decidable)
	}
	for val, path := range v.Witness {
		end := model.RunPath(c, path)
		if !end.DecidedValues()[val] {
			t.Fatalf("resumed witness for %s does not decide it", string(val))
		}
	}
	got := resumed.Stats().Configs
	if got >= fullConfigs {
		t.Fatalf("resumed query explored %d configs, full run %d — it restarted from level 0", got, fullConfigs)
	}
	if got == 0 {
		t.Fatal("resumed query explored nothing — memo answered it, in-flight path untested")
	}
	if dl := resumed.Stats().DeepestLevel; dl < snap.Query.Depth {
		t.Fatalf("resumed DeepestLevel %d below the resume depth %d", dl, snap.Query.Depth)
	}
}

// TestResumeIgnoredOnKeyMismatch: an armed in-flight query must only match
// the exact (fingerprint, pids, cap) it froze; any other query runs fresh
// and the armed state survives for the real match.
func TestResumeIgnoredOnKeyMismatch(t *testing.T) {
	ctx := context.Background()
	c := floodConfig("1", "1", "1")

	// Freeze an in-flight query for {0,1,2}.
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	coord := checkpoint.NewCoordinator(store, 0, checkpoint.Meta{}, nil)
	coord.AfterSave = func(s *checkpoint.Snapshot) {
		if s.Query != nil && s.Query.Depth >= 2 {
			cancel()
		}
	}
	crashed := New(explore.Options{Workers: 1})
	crashed.SetCheckpointer(coord)
	crashed.Decidable(runCtx, c, []int{0, 1, 2})
	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Query == nil {
		t.Fatal("no in-flight query frozen")
	}

	resumed := New(explore.Options{Workers: 1})
	resumed.SetResume(snap.Query)
	// A different process set must not consume the armed query.
	if _, err := resumed.Decidable(ctx, c, []int{0}); err != nil {
		t.Fatal(err)
	}
	if resumed.resume == nil {
		t.Fatal("mismatched query consumed the armed in-flight state")
	}
	// The matching query does consume it.
	if _, err := resumed.Decidable(ctx, c, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if resumed.resume != nil {
		t.Fatal("matching query left the in-flight state armed")
	}
}
