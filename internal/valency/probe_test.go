package valency

import (
	"context"
	"testing"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
)

// TestSoloDecidingMemoised pins the solo memo: identical (configuration,
// pid) queries hit the cache, and the cached path replays to a decision
// just like the original.
func TestSoloDecidingMemoised(t *testing.T) {
	o := New(explore.Options{})
	c := floodConfig("0", "1")
	p1, v1, err := o.SoloDeciding(context.Background(), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, v2, err := o.SoloDeciding(context.Background(), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || len(p1) != len(p2) {
		t.Fatalf("memoised answer differs: (%s,%d) vs (%s,%d)", string(v1), len(p1), string(v2), len(p2))
	}
	s := o.Stats()
	if s.SoloQueries != 2 || s.SoloHits != 1 {
		t.Fatalf("stats = %+v, want 2 solo queries with 1 hit", s)
	}
	end := model.RunPath(c, p2)
	if got, ok := end.Decided(1); !ok || got != v2 {
		t.Fatal("memoised solo witness does not replay to a decision")
	}
	// The returned paths must be independent copies: mutating one caller's
	// path must not corrupt the memo.
	if len(p1) > 0 {
		p1[0] = model.Move{Pid: 99}
		p3, _, err := o.SoloDeciding(context.Background(), c, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p3[0].Pid == 99 {
			t.Fatal("caller mutation leaked into the solo memo")
		}
	}
}

// TestProbeBivalentPositive: a mixed-input pair is bivalent, and the probe
// should certify it from solo executions alone — no exhaustive search, so
// a tiny budget suffices.
func TestProbeBivalentPositive(t *testing.T) {
	o := New(explore.Options{})
	c := floodConfig("0", "1")
	biv, err := o.ProbeBivalent(context.Background(), c, []int{0, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !biv {
		t.Fatal("probe failed to certify bivalence of the mixed-input pair")
	}
	// The certificate was memoised as a full verdict: Decidable must hit.
	before := o.Stats()
	v, err := o.Decidable(context.Background(), c, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bivalent() {
		t.Fatal("memoised probe verdict is not bivalent")
	}
	if o.Stats().Hits != before.Hits+1 {
		t.Fatalf("Decidable after probe did not hit the memo: %+v -> %+v", before, o.Stats())
	}
	for val, path := range v.Witness {
		if !model.RunPath(c, path).DecidedValues()[val] {
			t.Fatalf("probe witness for %s does not decide it", string(val))
		}
	}
}

// TestProbeBivalentExhaustedIsExact: a singleton set is univalent; its solo
// space is tiny, so the probe exhausts it in budget and the negative answer
// is exact and memoised.
func TestProbeBivalentExhaustedIsExact(t *testing.T) {
	o := New(explore.Options{})
	c := floodConfig("0", "1")
	biv, err := o.ProbeBivalent(context.Background(), c, []int{0}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if biv {
		t.Fatal("singleton set reported bivalent")
	}
	before := o.Stats()
	if v, err := o.Decidable(context.Background(), c, []int{0}); err != nil {
		t.Fatal(err)
	} else if got, ok := v.Univalent(); !ok || got != V0 {
		t.Fatalf("{p0} decidable = %v, want 0-univalent", v.Decidable)
	}
	if o.Stats().Hits != before.Hits+1 {
		t.Fatal("exhausted probe verdict was not memoised")
	}
}

// TestProbeBivalentInconclusiveNotMemoised: with a budget too small to find
// any certificate on a univalent query, the probe must answer (false, nil)
// and leave the memo empty so a later exhaustive Decidable is unimpeded.
func TestProbeBivalentInconclusiveNotMemoised(t *testing.T) {
	disk := consensus.DiskRace{}
	o := New(explore.Options{KeyFn: disk.CanonicalKey, KeyTo: disk.CanonicalKeyTo})
	// Unanimous inputs: {p0,p1} is 1-univalent, so no bivalence
	// certificate exists; the budget caps the refutation.
	inputs := []model.Value{"1", "1", "1"}
	c := model.NewConfig(disk, inputs)
	biv, err := o.ProbeBivalent(context.Background(), c, []int{0, 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if biv {
		t.Fatal("budget-capped probe claimed bivalence")
	}
	before := o.Stats()
	v, err := o.Decidable(context.Background(), c, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if o.Stats().Hits != before.Hits {
		t.Fatal("inconclusive probe was memoised; exhaustive query hit a possibly-wrong verdict")
	}
	if got, ok := v.Univalent(); !ok || got != V1 {
		t.Fatalf("unanimous diskrace pair decidable = %v, want 1-univalent", v.Decidable)
	}
}

// TestSharedMemoAcrossOracles: two oracles constructed over one Memo with
// identical options share answers — the second oracle's identical query is
// a pure hit.
func TestSharedMemoAcrossOracles(t *testing.T) {
	memo := NewMemo()
	opts := explore.Options{}
	a := NewWithMemo(opts, memo)
	b := NewWithMemo(opts, memo)
	c := floodConfig("0", "1")
	if _, err := a.Decidable(context.Background(), c, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Decidable(context.Background(), c, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if s := b.Stats(); s.Queries != 1 || s.Hits != 1 {
		t.Fatalf("second oracle stats = %+v, want a pure memo hit", s)
	}
	// Solo answers are shared through the same memo.
	if _, _, err := a.SoloDeciding(context.Background(), c, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.SoloDeciding(context.Background(), c, 0); err != nil {
		t.Fatal(err)
	}
	if s := b.Stats(); s.SoloHits == 0 {
		t.Fatalf("second oracle solo stats = %+v, want a solo memo hit", s)
	}
}
