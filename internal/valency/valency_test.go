package valency

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
)

func floodConfig(inputs ...model.Value) model.Config {
	return model.NewConfig(consensus.Flood{}, inputs)
}

func TestOppositeValues(t *testing.T) {
	if Opposite(V0) != V1 || Opposite(V1) != V0 {
		t.Fatal("Opposite is wrong")
	}
}

// TestDefinition1OnFlood pins the textbook facts at n=2: mixed inputs are
// bivalent for the pair, each singleton is univalent for its own input
// (Proposition 2), and unanimous inputs are univalent for everyone.
func TestDefinition1OnFlood(t *testing.T) {
	o := New(explore.Options{})
	mixed := floodConfig("0", "1")

	v, err := o.Decidable(context.Background(), mixed, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bivalent() {
		t.Fatalf("pair not bivalent from mixed inputs: %v", v.Decidable)
	}
	for pid, want := range map[int]model.Value{0: V0, 1: V1} {
		v, err := o.Decidable(context.Background(), mixed, []int{pid})
		if err != nil {
			t.Fatal(err)
		}
		got, ok := v.Univalent()
		if !ok || got != want {
			t.Fatalf("{p%d} decidable = %v, want univalent %s", pid, v.Decidable, string(want))
		}
	}

	same := floodConfig("1", "1")
	v, err = o.Decidable(context.Background(), same, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := v.Univalent(); !ok || got != V1 {
		t.Fatalf("unanimous inputs decidable = %v", v.Decidable)
	}
}

// TestProposition1Properties property-checks Proposition 1 (i)-(iii) on
// random reachable flood configurations at n=2: (i) non-empty sets decide
// something; (ii) supersets inherit decidable values; (iii) subsets of
// univalent sets stay univalent with the same value.
func TestProposition1Properties(t *testing.T) {
	o := New(explore.Options{})
	rng := rand.New(rand.NewSource(3))
	sets := [][]int{{0}, {1}, {0, 1}}
	for trial := 0; trial < 150; trial++ {
		c := floodConfig("0", "1")
		for s := 0; s < rng.Intn(14); s++ {
			c = c.StepDet(rng.Intn(2))
		}
		verdicts := make(map[int]*Verdict, 3)
		for i, set := range sets {
			v, err := o.Decidable(context.Background(), c, set)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := v.Any(); !ok {
				t.Fatalf("trial %d: set %v decides nothing (Prop 1(i))", trial, set)
			}
			verdicts[i] = v
		}
		pair := verdicts[2]
		for i := 0; i <= 1; i++ {
			for val := range verdicts[i].Decidable {
				if !pair.Decidable[val] {
					t.Fatalf("trial %d: {p%d} decides %s but the pair does not (Prop 1(ii))",
						trial, i, string(val))
				}
			}
		}
		if val, ok := pair.Univalent(); ok {
			for i := 0; i <= 1; i++ {
				got, uok := verdicts[i].Univalent()
				if !uok || got != val {
					t.Fatalf("trial %d: pair %s-univalent but {p%d} decidable = %v (Prop 1(iii))",
						trial, string(val), i, verdicts[i].Decidable)
				}
			}
		}
	}
}

// TestWitnessesReplay checks that every witness path actually decides the
// claimed value when replayed.
func TestWitnessesReplay(t *testing.T) {
	o := New(explore.Options{})
	c := floodConfig("0", "1")
	v, err := o.Decidable(context.Background(), c, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for val, path := range v.Witness {
		end := model.RunPath(c, path)
		if !end.DecidedValues()[val] {
			t.Fatalf("witness for %s does not decide it", string(val))
		}
	}
}

// TestMemoisation verifies queries are cached by configuration and set.
func TestMemoisation(t *testing.T) {
	o := New(explore.Options{})
	c := floodConfig("0", "1")
	if _, err := o.Decidable(context.Background(), c, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Decidable(context.Background(), c, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	s := o.Stats()
	if s.Queries != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want one memo hit", s)
	}
}

// TestSoloDeciding exercises the NST witness search.
func TestSoloDeciding(t *testing.T) {
	o := New(explore.Options{})
	c := floodConfig("0", "1")
	path, val, err := o.SoloDeciding(context.Background(), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if val != V1 {
		t.Fatalf("p1 solo decides %s, want its input 1", string(val))
	}
	end := model.RunPath(c, path)
	if got, ok := end.Decided(1); !ok || got != V1 {
		t.Fatal("solo witness path does not decide")
	}
	// Already-decided processes return immediately.
	if _, val, err := o.SoloDeciding(context.Background(), end, 1); err != nil || val != V1 {
		t.Fatalf("decided process: (%s, %v)", string(val), err)
	}
}

// TestEmptySetRejected covers the error path.
func TestEmptySetRejected(t *testing.T) {
	o := New(explore.Options{})
	if _, err := o.Decidable(context.Background(), floodConfig("0", "1"), nil); err == nil {
		t.Fatal("expected error for empty process set")
	}
}

// TestProfileFloodN2 builds the full valency landscape of the verified n=2
// protocol and checks the FLP/valency laws at every configuration.
func TestProfileFloodN2(t *testing.T) {
	o := New(explore.Options{})
	c := floodConfig("0", "1")
	report, err := o.Profile(context.Background(), "flood(0,1)", c, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if report.Bivalent == 0 {
		t.Fatal("no bivalent configurations: Proposition 2 should give at least the initial one")
	}
	if report.Zero == 0 || report.One == 0 {
		t.Fatalf("one-sided landscape: %v", report)
	}
	t.Logf("%v", report)

	// Unanimous inputs: the whole landscape must be univalent.
	same, err := o.Profile(context.Background(), "flood(1,1)", floodConfig("1", "1"), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if same.Bivalent != 0 || same.Zero != 0 {
		t.Fatalf("unanimous-input landscape not all 1-univalent: %v", same)
	}
	t.Logf("%v", same)
}

// TestProfileAbsorptionReusesVerdicts pins the profile's oracle-query
// budget on DiskRace n=3: the p-only reachable space is closed under
// p-moves, so the absorption check must answer every successor lookup from
// the classification pass's fingerprint-keyed verdict table — exactly one
// Decidable call per configuration, none for absorption.
func TestProfileAbsorptionReusesVerdicts(t *testing.T) {
	disk := consensus.DiskRace{}
	o := New(explore.Options{KeyFn: disk.CanonicalKey, KeyTo: disk.CanonicalKeyTo})
	c := model.NewConfig(disk, []model.Value{"0", "1", "1"})
	// Advance the pair deterministically before profiling: the landscape
	// from the initial configuration is ~12k configurations (a minute of
	// exhaustive classification); from here it is ~2k, entirely univalent
	// — so the absorption check runs its successor lookups at every single
	// configuration, the maximal workload for the verdict-reuse path.
	for i := 0; i < 14; i++ {
		c = c.StepDet(0)
		c = c.StepDet(1)
	}
	report, err := o.Profile(context.Background(), "diskrace(0,1,1)", c, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if report.Total() == 0 || report.Configs != report.Total() {
		t.Fatalf("exploration totals not surfaced: Configs=%d, classified %d", report.Configs, report.Total())
	}
	if report.Steps <= report.Configs {
		t.Fatalf("Steps=%d not surfaced (want > Configs=%d for a branching space)", report.Steps, report.Configs)
	}
	if report.Queries != report.Total() {
		t.Fatalf("absorption re-queried the oracle: %d queries for %d configurations (want equal)",
			report.Queries, report.Total())
	}
	if report.SoloQueries == 0 {
		t.Fatal("SoloQueries not surfaced: exhaustive classification must run solo searches")
	}
	t.Logf("%v", report)
}
