package dist

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/explore"
	"repro/internal/faults"
)

// sampleJournalRecords returns one well-formed encoded payload per record
// tag — the corpus the decoder robustness tests mutate.
func sampleJournalRecords() map[string][]byte {
	return map[string][]byte{
		"ckpt":     (&journalRec{Tag: jrecCkpt, Slice: 2, Level: 5, Body: []byte("ckpt-bytes")}).encode(),
		"chunk":    (&journalRec{Tag: jrecChunk, Level: 3, From: 1, To: 2, Body: []byte("chunk-bytes")}).encode(),
		"expanded": (&journalRec{Tag: jrecExpanded, Slice: 1, Level: 4, Steps: 777}).encode(),
		"ingested": (&journalRec{Tag: jrecIngested, Slice: 0, Level: 2, Fresh: 31, Digest: explore.Fingerprint{0xdead, 0xbeef}}).encode(),
		"gen":      (&journalRec{Tag: jrecGen, Gen: 9}).encode(),
		"meta":     (&journalRec{Tag: jrecMeta, Body: []byte(`{"seq":1}`)}).encode(),
		"level":    (&journalRec{Tag: jrecLevel, Fresh: 12, Digest: explore.Fingerprint{1, 2}}).encode(),
		"slice": (&journalRec{Tag: jrecSlice, Slice: 3, Flags: sflagHasCkpt | sflagExpanded,
			CkptLevel: 6, Steps: 100, Fresh: 7, Digest: explore.Fingerprint{3, 4}, Reassigns: 2, Body: []byte("ckpt")}).encode(),
		"retained": (&journalRec{Tag: jrecRetained, Level: 2, From: 0, To: 1, Body: []byte("retained")}).encode(),
	}
}

// TestJournalRecordRoundTrip: every record tag encodes and decodes back to
// the same fields.
func TestJournalRecordRoundTrip(t *testing.T) {
	recs := []journalRec{
		{Tag: jrecCkpt, Slice: 2, Level: 5, Body: []byte("ckpt-bytes")},
		{Tag: jrecChunk, Level: 3, From: 1, To: 2, Body: []byte("chunk-bytes")},
		{Tag: jrecExpanded, Slice: 1, Level: 4, Steps: 777},
		{Tag: jrecIngested, Slice: 0, Level: 2, Fresh: 31, Digest: explore.Fingerprint{0xdead, 0xbeef}},
		{Tag: jrecGen, Gen: 9},
		{Tag: jrecMeta, Body: []byte(`{"seq":1}`)},
		{Tag: jrecLevel, Fresh: 12, Digest: explore.Fingerprint{1, 2}},
		{Tag: jrecSlice, Slice: 3, Flags: sflagHasCkpt | sflagIngested, CkptLevel: 6, Steps: 100,
			Fresh: 7, Digest: explore.Fingerprint{3, 4}, Reassigns: 2, Body: []byte("ckpt")},
		{Tag: jrecRetained, Level: 2, From: 0, To: 1, Body: []byte("retained")},
	}
	for _, want := range recs {
		got, err := decodeJournalRecord(want.encode())
		if err != nil {
			t.Fatalf("tag %d: %v", want.Tag, err)
		}
		if got.Tag != want.Tag || got.Slice != want.Slice || got.Level != want.Level ||
			got.From != want.From || got.To != want.To || got.Steps != want.Steps ||
			got.Fresh != want.Fresh || got.Digest != want.Digest || got.Gen != want.Gen ||
			got.Flags != want.Flags || got.CkptLevel != want.CkptLevel || got.Reassigns != want.Reassigns ||
			!bytes.Equal(got.Body, want.Body) {
			t.Fatalf("tag %d round trip:\nwant %+v\ngot  %+v", want.Tag, want, got)
		}
	}
}

// TestJournalRecordSingleBitFlips: every single-bit corruption of every
// record type either fails with the typed corrupt error or decodes to
// *something* without panicking — never a crash, never an untyped error.
// This is the exhaustive version of the fuzz target's promise.
func TestJournalRecordSingleBitFlips(t *testing.T) {
	for name, good := range sampleJournalRecords() {
		for i := range good {
			for bit := 0; bit < 8; bit++ {
				mut := bytes.Clone(good)
				mut[i] ^= 1 << bit
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s: bit %d of byte %d: decode panicked: %v", name, bit, i, r)
						}
					}()
					if _, err := decodeJournalRecord(mut); err != nil && !IsJournalCorrupt(err) {
						t.Fatalf("%s: bit %d of byte %d: untyped error %v", name, bit, i, err)
					}
				}()
			}
		}
	}
}

// TestJournalRecordTruncations: every prefix of every record type decodes
// without panicking; a truncated fixed-size record is a typed error.
func TestJournalRecordTruncations(t *testing.T) {
	for name, good := range sampleJournalRecords() {
		for n := 0; n < len(good); n++ {
			if _, err := decodeJournalRecord(good[:n]); err != nil && !IsJournalCorrupt(err) {
				t.Fatalf("%s truncated to %d bytes: untyped error %v", name, n, err)
			}
		}
	}
	if _, err := decodeJournalRecord(nil); !IsJournalCorrupt(err) {
		t.Fatalf("empty record: %v", err)
	}
	if _, err := decodeJournalRecord([]byte{0xfe}); !IsJournalCorrupt(err) {
		t.Fatalf("unknown tag: %v", err)
	}
}

// FuzzDecodeJournalRecord: arbitrary bytes never panic the decoder, and
// every failure is the typed corrupt error.
func FuzzDecodeJournalRecord(f *testing.F) {
	for _, good := range sampleJournalRecords() {
		f.Add(good)
	}
	f.Add([]byte{})
	f.Add([]byte{jrecExpanded, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeJournalRecord(data)
		if err != nil {
			if !IsJournalCorrupt(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A successful decode must round-trip at the value level (the byte
		// level is not canonical: uvarints tolerate redundant encodings).
		again, err := decodeJournalRecord(rec.encode())
		if err != nil {
			t.Fatalf("re-encoding a decoded record does not decode: %v", err)
		}
		if again.Tag != rec.Tag || again.Slice != rec.Slice || again.Level != rec.Level ||
			again.From != rec.From || again.To != rec.To || again.Steps != rec.Steps ||
			again.Fresh != rec.Fresh || again.Digest != rec.Digest || again.Gen != rec.Gen ||
			again.Flags != rec.Flags || again.CkptLevel != rec.CkptLevel ||
			again.Reassigns != rec.Reassigns || !bytes.Equal(again.Body, rec.Body) {
			t.Fatalf("value round trip changed the record:\nfirst  %+v\nsecond %+v", rec, again)
		}
	})
}

// journalScope-free open helper for tests.
func openTestJournal(t *testing.T, dir string, opener FileOpener) *Journal {
	t.Helper()
	j, err := OpenJournal(dir, JournalOptions{Opener: opener})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestJournalTornTailTruncated: garbage appended to the active WAL — a
// crash mid-append — is detected and truncated on the next open; the
// intact prefix survives.
func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, nil)
	if err := j.attachFresh([][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 0, 1)}).encode()}); err != nil {
		t.Fatal(err)
	}
	j.append(journalRec{Tag: jrecGen, Gen: 1})
	j.append(journalRec{Tag: jrecGen, Gen: 2})
	if j.Degraded() {
		t.Fatal("healthy appends degraded the journal")
	}
	j.wal.Close()
	// Tear the tail: half an append.
	f, err := os.OpenFile(walPath(dir, 0), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x22, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(walPath(dir, 0))

	j2 := openTestJournal(t, dir, nil)
	if !j2.Recovered() {
		t.Fatal("journal with state did not recover")
	}
	recs := j2.recovered.walRecs
	if len(recs) != 2 || recs[0].Gen != 1 || recs[1].Gen != 2 {
		t.Fatalf("recovered WAL records: %+v", recs)
	}
	after, err := os.Stat(walPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
}

// TestJournalUndecodableRecordTruncated: a record whose checksum holds but
// whose content is garbage (an unknown tag) ends the intact prefix — the
// WAL is truncated just before it, not at the checksum layer's longer
// valid offset.
func TestJournalUndecodableRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, nil)
	if err := j.attachFresh([][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 0, 1)}).encode()}); err != nil {
		t.Fatal(err)
	}
	j.append(journalRec{Tag: jrecGen, Gen: 1})
	// A checksum-valid record with an unknown tag: append through the
	// segment writer directly.
	if err := j.walW.Append([]byte{0xfe, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	j.append(journalRec{Tag: jrecGen, Gen: 2}) // after the garbage; must be dropped too
	j.wal.Close()

	j2 := openTestJournal(t, dir, nil)
	recs := j2.recovered.walRecs
	if len(recs) != 1 || recs[0].Gen != 1 {
		t.Fatalf("recovered WAL records: %+v", recs)
	}
	// The truncation must leave a WAL the next open reads cleanly.
	j3 := openTestJournal(t, dir, nil)
	if got := j3.recovered.walRecs; len(got) != 1 || got[0].Gen != 1 {
		t.Fatalf("re-opened WAL records: %+v", got)
	}
}

// TestJournalCorruptSnapshotFallsBack: flipping a byte in the newest
// snapshot sends recovery to the previous snapshot plus both WALs — the
// gapless chain.
func TestJournalCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, nil)
	meta0 := [][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 0, 1)}).encode()}
	if err := j.attachFresh(meta0); err != nil {
		t.Fatal(err)
	}
	j.append(journalRec{Tag: jrecGen, Gen: 1})
	meta1 := [][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 1, 1)}).encode()}
	if err := j.snapshot(meta1); err != nil {
		t.Fatal(err)
	}
	j.append(journalRec{Tag: jrecGen, Gen: 2})
	j.wal.Close()

	// Corrupt the newest snapshot.
	path := snapPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, dir, nil)
	if !j2.Recovered() {
		t.Fatal("fallback did not recover")
	}
	if j2.recovered.meta.Seq != 0 {
		t.Fatalf("recovered from snapshot %d, want the fallback 0", j2.recovered.meta.Seq)
	}
	// Both WALs replay: gen 1 (wal-0) then gen 2 (wal-1).
	recs := j2.recovered.walRecs
	if len(recs) != 2 || recs[0].Gen != 1 || recs[1].Gen != 2 {
		t.Fatalf("fallback WAL chain: %+v", recs)
	}
}

// TestJournalSnapshotGC: after the third snapshot only the last two
// snapshot/WAL pairs remain on disk.
func TestJournalSnapshotGC(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, nil)
	if err := j.attachFresh([][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 0, 1)}).encode()}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := j.snapshot([][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, seq, 1)}).encode()}); err != nil {
			t.Fatal(err)
		}
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "state-*.ckpt"))
	wals, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(snaps) != 2 || len(wals) != 2 {
		t.Fatalf("keep-2 GC left %d snapshots, %d WALs", len(snaps), len(wals))
	}
	if _, err := os.Stat(snapPath(dir, 3)); err != nil {
		t.Fatalf("newest snapshot missing: %v", err)
	}
	if _, err := os.Stat(snapPath(dir, 2)); err != nil {
		t.Fatalf("previous snapshot missing: %v", err)
	}
}

// TestJournalAppendDegradesOnDiskFault: an ENOSPC mid-append flips the
// journal to memory-only (degraded, typed, no panic) instead of surfacing
// an error to the barrier; a later successful snapshot restores
// durability.
func TestJournalAppendDegradesOnDiskFault(t *testing.T) {
	dir := t.TempDir()
	// Budget enough for the magic + one record, not two.
	budget := &faults.FSFault{Budget: 64}
	calls := 0
	opener := func(path string, flag int) (faults.File, error) {
		calls++
		if calls == 1 {
			// Let the seed snapshot through untouched; fault only the WAL.
			return faults.OpenOS(path, flag)
		}
		return budget.Opener()(path, flag)
	}
	j := openTestJournal(t, dir, opener)
	if err := j.attachFresh([][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 0, 1)}).encode()}); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 256)
	j.append(journalRec{Tag: jrecCkpt, Slice: 0, Level: 1, Body: big})
	if !j.Degraded() {
		t.Fatal("append past the byte budget did not degrade the journal")
	}
	j.append(journalRec{Tag: jrecGen, Gen: 1}) // must be a silent no-op
	// A successful snapshot rotation clears the degradation. Use a healthy
	// opener from here on (the "volume" freed up).
	j.open = faults.OpenOS
	if err := j.snapshot([][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 1, 1)}).encode()}); err != nil {
		t.Fatal(err)
	}
	if j.Degraded() {
		t.Fatal("successful snapshot did not restore durability")
	}
	j.append(journalRec{Tag: jrecGen, Gen: 2})
	if j.Degraded() {
		t.Fatal("post-recovery append degraded again")
	}
}

// TestJournalSnapshotFailureKeepsWAL: a failing snapshot write leaves the
// current WAL growing — the journal is NOT degraded, and the mutations
// since the last good snapshot stay durable in the longer WAL.
func TestJournalSnapshotFailureKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	failSnapshots := false
	opener := func(path string, flag int) (faults.File, error) {
		if failSnapshots && filepath.Ext(path) == ".tmp" {
			return (&faults.FSFault{Budget: 4}).Opener()(path, flag)
		}
		return faults.OpenOS(path, flag)
	}
	j := openTestJournal(t, dir, opener)
	if err := j.attachFresh([][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 0, 1)}).encode()}); err != nil {
		t.Fatal(err)
	}
	j.append(journalRec{Tag: jrecGen, Gen: 1})
	failSnapshots = true
	if err := j.snapshot([][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 1, 1)}).encode()}); err == nil {
		t.Fatal("snapshot with a full disk succeeded")
	}
	if j.Degraded() {
		t.Fatal("failed snapshot degraded the WAL — the WAL is still healthy")
	}
	j.append(journalRec{Tag: jrecGen, Gen: 2})
	j.wal.Close()

	j2 := openTestJournal(t, dir, nil)
	recs := j2.recovered.walRecs
	if len(recs) != 2 || recs[0].Gen != 1 || recs[1].Gen != 2 {
		t.Fatalf("WAL after failed snapshot: %+v", recs)
	}
}

// TestJournalSyncFailDegradesSnapshot: a failing fsync fails the snapshot
// (never publishes a maybe-unsynced file) but keeps the WAL healthy.
func TestJournalSyncFailDegradesSnapshot(t *testing.T) {
	dir := t.TempDir()
	failSync := false
	opener := func(path string, flag int) (faults.File, error) {
		if failSync && filepath.Ext(path) == ".tmp" {
			return (&faults.FSFault{FailSync: true}).Opener()(path, flag)
		}
		return faults.OpenOS(path, flag)
	}
	j := openTestJournal(t, dir, opener)
	if err := j.attachFresh([][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 0, 1)}).encode()}); err != nil {
		t.Fatal(err)
	}
	failSync = true
	if err := j.snapshot([][]byte{(&journalRec{Tag: jrecMeta, Body: metaJSON(t, 1, 1)}).encode()}); err == nil {
		t.Fatal("snapshot with failing fsync succeeded")
	}
	if _, err := os.Stat(snapPath(dir, 1)); err == nil {
		t.Fatal("unsynced snapshot was published")
	}
	if j.Degraded() {
		t.Fatal("failed snapshot fsync degraded the WAL")
	}
}

// metaJSON builds a minimal valid snapshot meta body for journal-layer
// tests (the coordinator-level tests use real state).
func metaJSON(t *testing.T, seq uint64, slices int) []byte {
	t.Helper()
	m := journalMeta{Seq: seq, Slices: slices, Spec: Spec{Slices: slices, LeaseMS: 1000, N: 2}}
	body, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
