package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/checkpoint"
	"repro/internal/explore"
)

// maxChunkBody bounds a single uploaded chunk or checkpoint. Frontier
// levels on the protocols this repo explores are far below this; the limit
// exists so a confused client cannot balloon coordinator memory.
const maxChunkBody = 64 << 20

// Handler serves the coordinator's HTTP surface under /dist/. The patterns
// are registered with the /dist/ prefix built in, so the same handler
// works standalone (spacebound -coordinator) and mounted into provesrv's
// mux (provesrv -coordinator).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /dist/spec", c.handleSpec)
	mux.HandleFunc("POST /dist/poll", c.gated(c.handlePoll))
	mux.HandleFunc("POST /dist/heartbeat", c.gated(c.handleHeartbeat))
	mux.HandleFunc("POST /dist/checkpoint", c.gated(c.handlePutCheckpoint))
	mux.HandleFunc("GET /dist/checkpoint", c.gated(c.handleGetCheckpoint))
	mux.HandleFunc("POST /dist/chunk", c.handlePutChunk)
	mux.HandleFunc("GET /dist/chunkset", c.gated(c.handleChunkSet))
	mux.HandleFunc("GET /dist/chunk", c.gated(c.handleGetChunk))
	mux.HandleFunc("POST /dist/expanded", c.gated(c.handleExpanded))
	mux.HandleFunc("POST /dist/ingested", c.gated(c.handleIngested))
	mux.HandleFunc("GET /dist/witness", c.gated(c.handleWitness))
	mux.HandleFunc("GET /dist/status", c.handleStatus)
	mux.HandleFunc("GET /dist/healthz", c.handleHealthz)
	mux.HandleFunc("GET /dist/readyz", c.handleReadyz)
	return mux
}

// gated wraps a worker-facing handler with the recovery gate: while the
// startup sweep rebuilds state, answers are 503 + Retry-After so clients
// back off and retry instead of acting on half-recovered state. Chunk
// POSTs are deliberately NOT gated — their bytes are self-validating and
// the recovery window stashes them idempotently (first write wins against
// the journal's copy) rather than making the poster re-upload.
func (c *Coordinator) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c.Recovering() {
			w.Header().Set("Retry-After", "1")
			distWriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "dist: coordinator recovering"})
			return
		}
		h(w, r)
	}
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	distWriteJSON(w, http.StatusOK, c.Status())
}

// handleHealthz answers 200 whenever the process serves at all — liveness,
// for supervisors deciding between "recovering" and "dead".
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: 503 while the recovery sweep runs (mirroring
// provesrv's drain discipline), 200 once the worker surface is open.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.Recovering() {
		w.Header().Set("Retry-After", "1")
		distWriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "dist: coordinator recovering"})
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func distWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// distError maps coordinator errors onto status codes: lost leases and
// stale posts are 409 (the worker must drop the slice and rebuild, not
// retry verbatim — and never exit), corruption is 400 (the payload is bad
// however often it is resent), everything else is also 400 — the
// coordinator's in-memory handling has no transient 5xx failures.
func distError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var notOwner errNotOwner
	var stale errStale
	if errors.As(err, &notOwner) || errors.As(err, &stale) {
		status = http.StatusConflict
	}
	distWriteJSON(w, status, map[string]string{"error": err.Error()})
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, fmt.Errorf("dist: missing %q parameter", name)
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("dist: bad %q parameter: %w", name, err)
	}
	return v, nil
}

// workerParam extracts the mandatory worker id.
func workerParam(r *http.Request) (string, error) {
	w := r.URL.Query().Get("worker")
	if w == "" {
		return "", fmt.Errorf("dist: missing %q parameter", "worker")
	}
	return w, nil
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	distWriteJSON(w, http.StatusOK, c.spec)
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	worker, err := workerParam(r)
	if err != nil {
		distError(w, err)
		return
	}
	distWriteJSON(w, http.StatusOK, c.poll(worker))
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	worker, err := workerParam(r)
	if err != nil {
		distError(w, err)
		return
	}
	c.heartbeat(worker)
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handlePutCheckpoint(w http.ResponseWriter, r *http.Request) {
	worker, err := workerParam(r)
	if err != nil {
		distError(w, err)
		return
	}
	slice, err := intParam(r, "slice")
	if err != nil {
		distError(w, err)
		return
	}
	level, err := intParam(r, "level")
	if err != nil {
		distError(w, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxChunkBody))
	if err != nil {
		distError(w, fmt.Errorf("dist: reading checkpoint body: %w", err))
		return
	}
	if err := c.putCheckpoint(worker, slice, level, body); err != nil {
		distError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleGetCheckpoint(w http.ResponseWriter, r *http.Request) {
	slice, err := intParam(r, "slice")
	if err != nil {
		distError(w, err)
		return
	}
	body, level, err := c.getCheckpoint(slice)
	if err != nil {
		distWriteJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ckpt-Level", strconv.Itoa(level))
	_, _ = w.Write(body)
}

func (c *Coordinator) handlePutChunk(w http.ResponseWriter, r *http.Request) {
	worker, err := workerParam(r)
	if err != nil {
		distError(w, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxChunkBody))
	if err != nil {
		distError(w, fmt.Errorf("dist: reading chunk body: %w", err))
		return
	}
	if err := c.putChunk(worker, body); err != nil {
		distError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleChunkSet(w http.ResponseWriter, r *http.Request) {
	level, err := intParam(r, "level")
	if err != nil {
		distError(w, err)
		return
	}
	to, err := intParam(r, "to")
	if err != nil {
		distError(w, err)
		return
	}
	froms := c.chunkSources(level, to)
	if froms == nil {
		froms = []int{}
	}
	distWriteJSON(w, http.StatusOK, map[string][]int{"froms": froms})
}

func (c *Coordinator) handleGetChunk(w http.ResponseWriter, r *http.Request) {
	level, err := intParam(r, "level")
	if err != nil {
		distError(w, err)
		return
	}
	from, err := intParam(r, "from")
	if err != nil {
		distError(w, err)
		return
	}
	to, err := intParam(r, "to")
	if err != nil {
		distError(w, err)
		return
	}
	body, err := c.getChunk(level, from, to)
	if err != nil {
		distWriteJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(body)
}

func (c *Coordinator) handleExpanded(w http.ResponseWriter, r *http.Request) {
	worker, err := workerParam(r)
	if err != nil {
		distError(w, err)
		return
	}
	slice, err := intParam(r, "slice")
	if err != nil {
		distError(w, err)
		return
	}
	level, err := intParam(r, "level")
	if err != nil {
		distError(w, err)
		return
	}
	steps, err := intParam(r, "steps")
	if err != nil {
		distError(w, err)
		return
	}
	if err := c.expanded(worker, slice, level, int64(steps)); err != nil {
		distError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleIngested(w http.ResponseWriter, r *http.Request) {
	worker, err := workerParam(r)
	if err != nil {
		distError(w, err)
		return
	}
	slice, err := intParam(r, "slice")
	if err != nil {
		distError(w, err)
		return
	}
	level, err := intParam(r, "level")
	if err != nil {
		distError(w, err)
		return
	}
	fresh, err := intParam(r, "fresh")
	if err != nil {
		distError(w, err)
		return
	}
	var digest explore.Fingerprint
	for i, name := range []string{"digest0", "digest1"} {
		s := r.URL.Query().Get(name)
		if s == "" {
			distError(w, fmt.Errorf("dist: missing %q parameter", name))
			return
		}
		v, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			distError(w, fmt.Errorf("dist: bad %q parameter: %w", name, err))
			return
		}
		digest[i] = v
	}
	if err := c.ingested(worker, slice, level, int64(fresh), digest); err != nil {
		distError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleWitness(w http.ResponseWriter, r *http.Request) {
	body, err := c.Witness()
	if err != nil {
		distWriteJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(body)
}

// IsCorrupt reports whether err (or any error in its chain) marks a torn
// or corrupted chunk/checkpoint — the condition workers retry with a fresh
// request rather than give up on.
func IsCorrupt(err error) bool {
	return errors.Is(err, checkpoint.ErrCorrupt)
}
