package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/obs"
)

// The coordinator's durability layer: a write-ahead journal plus per-level
// snapshots, both in the S20 checksummed-segment format.
//
// Layout of the journal directory:
//
//	state-<seq>.ckpt   atomic snapshot of the whole coordinator state,
//	                   written at every level close (and at attach/recover)
//	wal-<seq>.seg      append-only log of every accepted mutation since
//	                   snapshot <seq>
//
// A snapshot and its WAL pair up: replaying wal-<seq> over state-<seq>
// reproduces the coordinator's in-memory state at the moment of the last
// durable append. The last two pairs are kept (keep-2, matching the
// checkpoint store); if the newest snapshot is corrupt, recovery falls back
// to the previous one and replays *both* WALs — wal-<seq-1> ends with
// exactly the ingest record whose level close produced snapshot <seq>, so
// the chain is gapless.
//
// Appends are not fsynced per record: SIGKILL (the chaos harness's crash)
// loses nothing the OS already buffered, so crash-recovery is exact;
// a power loss can tear the tail, which ScanSegment detects and truncates
// to the last intact record — an older but consistent state the workers
// redo forward from deterministically.
//
// Disk faults degrade, never abort: a failed append or snapshot marks the
// journal degraded (memory-only, loud metrics) and the barrier keeps
// running; the next successful snapshot re-establishes durability with a
// fresh WAL.

// Journal record tags. 1–5 are WAL mutations, 10–13 snapshot records.
const (
	jrecCkpt     = 1  // slice checkpoint accepted: slice, level, body
	jrecChunk    = 2  // exchange chunk stored: level, from, to, body
	jrecExpanded = 3  // expand barrier mark: slice, level, steps
	jrecIngested = 4  // ingest barrier mark: slice, level, fresh, digest
	jrecGen      = 5  // generation bump written at the start of a recovery
	jrecMeta     = 10 // snapshot meta (JSON)
	jrecLevel    = 11 // one closed level's stats: fresh, digest
	jrecSlice    = 12 // one slice's full state
	jrecRetained = 13 // one retained exchange chunk: level, from, to, body
)

// errJournalCorrupt tags a journal record whose checksum held but whose
// content does not decode — the condition recovery skips past (keeping the
// intact prefix) and the fuzz target proves is never a panic.
var errJournalCorrupt = errors.New("dist: journal record corrupt")

// journalRec is a decoded journal record; which fields are meaningful
// depends on Tag.
type journalRec struct {
	Tag       byte
	Slice     int
	Level     int
	From, To  int
	Steps     int64
	Fresh     int64
	Digest    explore.Fingerprint
	Gen       int
	Flags     byte
	CkptLevel int
	Reassigns int
	Body      []byte
}

// Slice-state flag bits of a jrecSlice record.
const (
	sflagHasCkpt   = 1 << 0
	sflagExpanded  = 1 << 1
	sflagIngested  = 1 << 2
	sflagEverOwned = 1 << 3
)

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// encode renders the record's payload (the bytes that go inside one
// checksummed segment record).
func (r *journalRec) encode() []byte {
	b := []byte{r.Tag}
	switch r.Tag {
	case jrecCkpt:
		b = appendUvarint(b, uint64(r.Slice))
		b = appendUvarint(b, uint64(r.Level))
		b = append(b, r.Body...)
	case jrecChunk, jrecRetained:
		b = appendUvarint(b, uint64(r.Level))
		b = appendUvarint(b, uint64(r.From))
		b = appendUvarint(b, uint64(r.To))
		b = append(b, r.Body...)
	case jrecExpanded:
		b = appendUvarint(b, uint64(r.Slice))
		b = appendUvarint(b, uint64(r.Level))
		b = appendUvarint(b, uint64(r.Steps))
	case jrecIngested:
		b = appendUvarint(b, uint64(r.Slice))
		b = appendUvarint(b, uint64(r.Level))
		b = appendUvarint(b, uint64(r.Fresh))
		b = appendUvarint(b, r.Digest[0])
		b = appendUvarint(b, r.Digest[1])
	case jrecGen:
		b = appendUvarint(b, uint64(r.Gen))
	case jrecMeta:
		b = append(b, r.Body...)
	case jrecLevel:
		b = appendUvarint(b, uint64(r.Fresh))
		b = appendUvarint(b, r.Digest[0])
		b = appendUvarint(b, r.Digest[1])
	case jrecSlice:
		b = appendUvarint(b, uint64(r.Slice))
		b = append(b, r.Flags)
		b = appendUvarint(b, uint64(r.CkptLevel))
		b = appendUvarint(b, uint64(r.Steps))
		b = appendUvarint(b, uint64(r.Fresh))
		b = appendUvarint(b, r.Digest[0])
		b = appendUvarint(b, r.Digest[1])
		b = appendUvarint(b, uint64(r.Reassigns))
		b = append(b, r.Body...)
	}
	return b
}

// maxJournalInt bounds every decoded integer field: slice indexes, levels
// and counts all stay far below it, so a larger value is corruption, not
// data — and rejecting it here keeps a flipped bit from turning into an
// absurd index downstream.
const maxJournalInt = 1 << 30

// uvarintField decodes one bounded non-negative integer field.
func uvarintField(b []byte, what string) (int, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 || v > maxJournalInt {
		return 0, nil, fmt.Errorf("%w: %s", errJournalCorrupt, what)
	}
	return int(v), b[n:], nil
}

// uvarint64Field decodes one unbounded uint64 field (digest halves).
func uvarint64Field(b []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: %s", errJournalCorrupt, what)
	}
	return v, b[n:], nil
}

// decodeJournalRecord decodes one record payload. Corruption anywhere — an
// unknown tag, a truncated or oversized field, trailing bytes after a
// fixed-size record — fails with an error wrapping errJournalCorrupt and
// never panics; recovery treats the first undecodable record as the end of
// the intact prefix.
func decodeJournalRecord(payload []byte) (journalRec, error) {
	var r journalRec
	if len(payload) == 0 {
		return r, fmt.Errorf("%w: empty record", errJournalCorrupt)
	}
	r.Tag = payload[0]
	b := payload[1:]
	var err error
	switch r.Tag {
	case jrecCkpt:
		if r.Slice, b, err = uvarintField(b, "ckpt slice"); err != nil {
			return r, err
		}
		if r.Level, b, err = uvarintField(b, "ckpt level"); err != nil {
			return r, err
		}
		r.Body = b
	case jrecChunk, jrecRetained:
		if r.Level, b, err = uvarintField(b, "chunk level"); err != nil {
			return r, err
		}
		if r.From, b, err = uvarintField(b, "chunk from"); err != nil {
			return r, err
		}
		if r.To, b, err = uvarintField(b, "chunk to"); err != nil {
			return r, err
		}
		r.Body = b
	case jrecExpanded:
		if r.Slice, b, err = uvarintField(b, "expanded slice"); err != nil {
			return r, err
		}
		if r.Level, b, err = uvarintField(b, "expanded level"); err != nil {
			return r, err
		}
		var steps int
		if steps, b, err = uvarintField(b, "expanded steps"); err != nil {
			return r, err
		}
		r.Steps = int64(steps)
		if len(b) != 0 {
			return r, fmt.Errorf("%w: %d trailing bytes after expanded record", errJournalCorrupt, len(b))
		}
	case jrecIngested:
		if r.Slice, b, err = uvarintField(b, "ingested slice"); err != nil {
			return r, err
		}
		if r.Level, b, err = uvarintField(b, "ingested level"); err != nil {
			return r, err
		}
		var fresh int
		if fresh, b, err = uvarintField(b, "ingested fresh"); err != nil {
			return r, err
		}
		r.Fresh = int64(fresh)
		if r.Digest[0], b, err = uvarint64Field(b, "ingested digest0"); err != nil {
			return r, err
		}
		if r.Digest[1], b, err = uvarint64Field(b, "ingested digest1"); err != nil {
			return r, err
		}
		if len(b) != 0 {
			return r, fmt.Errorf("%w: %d trailing bytes after ingested record", errJournalCorrupt, len(b))
		}
	case jrecGen:
		if r.Gen, b, err = uvarintField(b, "generation"); err != nil {
			return r, err
		}
		if len(b) != 0 {
			return r, fmt.Errorf("%w: %d trailing bytes after generation record", errJournalCorrupt, len(b))
		}
	case jrecMeta:
		r.Body = b
	case jrecLevel:
		var fresh int
		if fresh, b, err = uvarintField(b, "level fresh"); err != nil {
			return r, err
		}
		r.Fresh = int64(fresh)
		if r.Digest[0], b, err = uvarint64Field(b, "level digest0"); err != nil {
			return r, err
		}
		if r.Digest[1], b, err = uvarint64Field(b, "level digest1"); err != nil {
			return r, err
		}
		if len(b) != 0 {
			return r, fmt.Errorf("%w: %d trailing bytes after level record", errJournalCorrupt, len(b))
		}
	case jrecSlice:
		if r.Slice, b, err = uvarintField(b, "slice index"); err != nil {
			return r, err
		}
		if len(b) == 0 {
			return r, fmt.Errorf("%w: slice record missing flags", errJournalCorrupt)
		}
		r.Flags = b[0]
		if r.Flags&^(sflagHasCkpt|sflagExpanded|sflagIngested|sflagEverOwned) != 0 {
			return r, fmt.Errorf("%w: slice record has unknown flags %#x", errJournalCorrupt, r.Flags)
		}
		b = b[1:]
		if r.CkptLevel, b, err = uvarintField(b, "slice ckpt level"); err != nil {
			return r, err
		}
		var steps, fresh int
		if steps, b, err = uvarintField(b, "slice steps"); err != nil {
			return r, err
		}
		r.Steps = int64(steps)
		if fresh, b, err = uvarintField(b, "slice fresh"); err != nil {
			return r, err
		}
		r.Fresh = int64(fresh)
		if r.Digest[0], b, err = uvarint64Field(b, "slice digest0"); err != nil {
			return r, err
		}
		if r.Digest[1], b, err = uvarint64Field(b, "slice digest1"); err != nil {
			return r, err
		}
		if r.Reassigns, b, err = uvarintField(b, "slice reassigns"); err != nil {
			return r, err
		}
		r.Body = b
	default:
		return r, fmt.Errorf("%w: unknown tag %d", errJournalCorrupt, r.Tag)
	}
	return r, nil
}

// journalMeta is the JSON body of a snapshot's jrecMeta record.
type journalMeta struct {
	Seq    uint64    `json:"seq"`
	Gen    int       `json:"gen"`
	Level  int       `json:"level"`
	Steps  int64     `json:"steps"`
	Done   bool      `json:"done"`
	Spec   Spec      `json:"spec"`
	RootFP [2]uint64 `json:"root_fp"`
	Levels int       `json:"levels"`
	Slices int       `json:"slices"`
	Chunks int       `json:"chunks"`
}

// snapSlice is one slice's recovered state.
type snapSlice struct {
	hasCkpt   bool
	expanded  bool
	ingested  bool
	everOwned bool
	ckptLevel int
	steps     int64
	fresh     int64
	digest    explore.Fingerprint
	reassigns int
	ckpt      []byte
}

// journalState is everything recovery rebuilds the coordinator from: the
// newest intact snapshot plus the decoded WAL records to replay over it.
type journalState struct {
	meta    journalMeta
	levels  []LevelStat
	slices  []snapSlice
	chunks  map[chunkKey][]byte
	walRecs []journalRec
}

// FileOpener is the journal's file-creation hook: the production opener is
// faults.OpenOS, the disk-fault tests and -dist-journal-fault substitute
// one that wraps every file in a faults.FaultyFile.
type FileOpener func(path string, flag int) (faults.File, error)

// JournalOptions configures OpenJournal.
type JournalOptions struct {
	// Opener is the write-side file hook (nil = real os files). The read
	// side always uses plain os files: recovery reads what the disk truly
	// holds.
	Opener FileOpener
	Scope  *obs.Scope
}

// Journal is the coordinator's durability backend. All methods are called
// with the coordinator's mutex held (the coordinator serializes every
// mutation), so the journal itself needs no lock of its own; it still
// never calls back into the coordinator.
type Journal struct {
	dir   string
	open  FileOpener
	scope *obs.Scope

	seq      uint64      // snapshot seq the active WAL extends
	wal      faults.File // nil while degraded or before attach
	walW     *checkpoint.Writer
	degraded bool

	recovered *journalState // non-nil until Recover consumes it
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("state-%08d.ckpt", seq))
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", seq))
}

// OpenJournal opens (or creates) the journal directory and, when prior
// state exists, loads the newest intact snapshot chain: snapshot N plus
// wal-N, falling back to snapshot N-1 plus both WALs when N is corrupt.
// The torn tail of the newest WAL — a crash mid-append — is truncated to
// the last intact, decodable record. A directory with snapshot files none
// of which load is an error: silently starting a finished run over would
// be worse than failing loudly.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: journal dir: %w", err)
	}
	opener := opts.Opener
	if opener == nil {
		opener = faults.OpenOS
	}
	j := &Journal{dir: dir, open: opener, scope: opts.Scope}
	seqs, err := j.snapshotSeqs()
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return j, nil // fresh directory; AttachJournal seeds snapshot 0
	}
	newest := seqs[len(seqs)-1]
	st, err := j.loadSnapshot(newest)
	if err == nil {
		st.walRecs, err = j.scanWAL(newest)
		if err != nil {
			return nil, err
		}
	} else if errors.Is(err, checkpoint.ErrCorrupt) || errors.Is(err, errJournalCorrupt) {
		// Corrupt-skip fallback: the previous snapshot plus both WALs is
		// the same state — wal-(N-1)'s replay ends exactly where snapshot N
		// begins.
		j.scope.Counter("dist_journal_snapshot_corrupt").Add(1)
		j.scope.Event("dist_journal_snapshot_corrupt")
		if len(seqs) < 2 {
			return nil, fmt.Errorf("dist: journal snapshot %d corrupt with no fallback: %w", newest, err)
		}
		prev := seqs[len(seqs)-2]
		st, err = j.loadSnapshot(prev)
		if err != nil {
			return nil, fmt.Errorf("dist: journal fallback snapshot %d: %w", prev, err)
		}
		prevRecs, err := j.scanWAL(prev)
		if err != nil {
			return nil, err
		}
		newRecs, err := j.scanWAL(newest)
		if err != nil {
			return nil, err
		}
		st.walRecs = append(prevRecs, newRecs...)
	} else {
		return nil, fmt.Errorf("dist: journal snapshot %d: %w", newest, err)
	}
	j.seq = newest
	j.recovered = st
	return j, nil
}

// attachFresh seeds a brand-new journal directory: snapshot 0 of the empty
// run plus an empty active WAL, so a crash before the first level close
// still recovers (to the start).
func (j *Journal) attachFresh(records [][]byte) error {
	if j.recovered != nil {
		return fmt.Errorf("dist: journal holds recovered state, not fresh")
	}
	if err := j.writeAtomicSegment(snapPath(j.dir, 0), records); err != nil {
		return err
	}
	return j.openWAL()
}

// Recovered reports whether the journal loaded prior state at open.
func (j *Journal) Recovered() bool { return j != nil && j.recovered != nil }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// snapshotSeqs lists the snapshot sequence numbers present, ascending.
func (j *Journal) snapshotSeqs() ([]uint64, error) {
	names, err := filepath.Glob(filepath.Join(j.dir, "state-*.ckpt"))
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, name := range names {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "state-%d.ckpt", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	return seqs, nil
}

// loadSnapshot reads and decodes one snapshot file into a journalState.
func (j *Journal) loadSnapshot(seq uint64) (*journalState, error) {
	recs, err := checkpoint.ReadSegmentFile(snapPath(j.dir, seq))
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%w: empty snapshot", errJournalCorrupt)
	}
	first, err := decodeJournalRecord(recs[0])
	if err != nil {
		return nil, err
	}
	if first.Tag != jrecMeta {
		return nil, fmt.Errorf("%w: snapshot starts with tag %d, want meta", errJournalCorrupt, first.Tag)
	}
	st := &journalState{chunks: make(map[chunkKey][]byte)}
	if err := json.Unmarshal(first.Body, &st.meta); err != nil {
		return nil, fmt.Errorf("%w: snapshot meta: %v", errJournalCorrupt, err)
	}
	if st.meta.Slices <= 0 || st.meta.Slices > maxJournalInt {
		return nil, fmt.Errorf("%w: snapshot declares %d slices", errJournalCorrupt, st.meta.Slices)
	}
	st.slices = make([]snapSlice, st.meta.Slices)
	for _, raw := range recs[1:] {
		r, err := decodeJournalRecord(raw)
		if err != nil {
			return nil, err
		}
		switch r.Tag {
		case jrecLevel:
			st.levels = append(st.levels, LevelStat{Fresh: r.Fresh, Digest: r.Digest})
		case jrecSlice:
			if r.Slice >= len(st.slices) {
				return nil, fmt.Errorf("%w: snapshot slice %d of %d", errJournalCorrupt, r.Slice, len(st.slices))
			}
			s := &st.slices[r.Slice]
			s.hasCkpt = r.Flags&sflagHasCkpt != 0
			s.expanded = r.Flags&sflagExpanded != 0
			s.ingested = r.Flags&sflagIngested != 0
			s.everOwned = r.Flags&sflagEverOwned != 0
			s.ckptLevel = r.CkptLevel
			s.steps = r.Steps
			s.fresh = r.Fresh
			s.digest = r.Digest
			s.reassigns = r.Reassigns
			s.ckpt = slices.Clone(r.Body)
		case jrecRetained:
			st.chunks[chunkKey{level: r.Level, from: r.From, to: r.To}] = slices.Clone(r.Body)
		default:
			return nil, fmt.Errorf("%w: tag %d inside a snapshot", errJournalCorrupt, r.Tag)
		}
	}
	if len(st.levels) != st.meta.Levels || len(st.chunks) != st.meta.Chunks {
		return nil, fmt.Errorf("%w: snapshot declares %d levels/%d chunks, holds %d/%d",
			errJournalCorrupt, st.meta.Levels, st.meta.Chunks, len(st.levels), len(st.chunks))
	}
	return st, nil
}

// scanWAL reads wal-<seq>, tolerating (and truncating) a torn or
// undecodable tail: the returned records are the longest prefix that is
// both checksum-intact and content-decodable. A missing WAL file is an
// empty one — the crash may have hit between snapshot and WAL creation.
func (j *Journal) scanWAL(seq uint64) ([]journalRec, error) {
	path := walPath(j.dir, seq)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	raws, validOff, tailErr := checkpoint.ScanSegment(f)
	f.Close()
	recs := make([]journalRec, 0, len(raws))
	goodOff := validOff
	if tailErr == nil {
		// Recompute the prefix offset only if a record fails to decode.
		goodOff = -1
	}
	for i, raw := range raws {
		r, err := decodeJournalRecord(raw)
		if err != nil {
			// Checksum held but content is garbage — keep the prefix and
			// truncate here, like a torn tail.
			tailErr = err
			goodOff = walPrefixLen(raws[:i])
			break
		}
		recs = append(recs, r)
	}
	if tailErr != nil {
		if goodOff < 0 {
			goodOff = validOff
		}
		j.scope.Counter("dist_journal_tail_truncated").Add(1)
		j.scope.Event("dist_journal_tail_truncated")
		if err := os.Truncate(path, goodOff); err != nil {
			return nil, fmt.Errorf("dist: truncating torn journal tail: %w", err)
		}
	}
	return recs, nil
}

// walPrefixLen computes the on-disk length of a WAL holding exactly these
// record payloads: magic header plus, per record, the uvarint length, the
// payload and the 32-byte checksum.
func walPrefixLen(raws [][]byte) int64 {
	n := int64(8) // len(segmentMagic)
	var lenBuf [binary.MaxVarintLen64]byte
	for _, raw := range raws {
		n += int64(binary.PutUvarint(lenBuf[:], uint64(len(raw)))) + int64(len(raw)) + 32
	}
	return n
}

// openWAL (re)opens the active WAL for appending. A fresh file gets the
// segment magic; an existing one (recovery continuing a truncated WAL) is
// appended to past its intact prefix.
func (j *Journal) openWAL() error {
	path := walPath(j.dir, j.seq)
	info, err := os.Stat(path)
	fresh := errors.Is(err, os.ErrNotExist) || (err == nil && info.Size() == 0)
	f, err := j.open(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND)
	if err != nil {
		return err
	}
	j.wal = f
	if fresh {
		w, err := checkpoint.NewWriter(f)
		if err != nil {
			f.Close()
			j.wal = nil
			return err
		}
		j.walW = w
	} else {
		j.walW = checkpoint.NewAppendWriter(f)
	}
	return nil
}

// append logs one mutation. A write failure degrades the journal to
// memory-only — counted and evented loudly, never surfaced to the barrier:
// the run keeps going, it just stops being crash-recoverable until the
// next successful snapshot re-establishes durability.
func (j *Journal) append(rec journalRec) {
	if j == nil || j.degraded || j.walW == nil {
		return
	}
	payload := rec.encode()
	if err := j.walW.Append(payload); err != nil {
		j.degrade("append", err)
		return
	}
	j.scope.Counter("dist_journal_appends").Add(1)
	j.scope.Counter("dist_journal_bytes").Add(int64(len(payload)) + 32)
}

// degrade marks the journal memory-only after a disk fault.
func (j *Journal) degrade(what string, err error) {
	j.degraded = true
	if j.wal != nil {
		j.wal.Close()
		j.wal = nil
		j.walW = nil
	}
	j.scope.Counter("dist_journal_errors").Add(1)
	j.scope.Gauge("dist_journal_degraded").Set(1)
	j.scope.Event("dist_journal_degraded")
}

// Degraded reports whether the journal has fallen back to memory-only.
func (j *Journal) Degraded() bool { return j != nil && j.degraded }

// snapshot atomically publishes the next snapshot from the given records
// and rotates the WAL. On success old snapshot/WAL pairs beyond keep-2 are
// garbage-collected and a degraded journal is re-established (the snapshot
// captured everything the dead WAL missed). On failure the journal keeps
// appending to the current WAL — replay then spans multiple levels, which
// recovery handles — unless that WAL is dead too, in which case it stays
// degraded.
func (j *Journal) snapshot(records [][]byte) error {
	if j == nil {
		return nil
	}
	next := j.seq + 1
	if err := j.writeAtomicSegment(snapPath(j.dir, next), records); err != nil {
		j.scope.Counter("dist_journal_errors").Add(1)
		j.scope.Event("dist_journal_snapshot_failed")
		if j.walW == nil && !j.degraded {
			// Recovery's own snapshot failed before any WAL was open for
			// this incarnation: keep appending to the WAL we recovered
			// from. Its replay is idempotent over the records a future
			// recovery re-applies, so extending it stays sound.
			if oerr := j.openWAL(); oerr != nil {
				j.degrade("reopen", oerr)
			}
		}
		return err
	}
	if j.wal != nil {
		j.wal.Close()
		j.wal = nil
		j.walW = nil
	}
	j.seq = next
	if err := j.openWAL(); err != nil {
		j.degrade("rotate", err)
	} else if j.degraded {
		j.degraded = false
		j.scope.Gauge("dist_journal_degraded").Set(0)
		j.scope.Event("dist_journal_recovered_durability")
	}
	j.scope.Counter("dist_journal_snapshots").Add(1)
	j.gc()
	return nil
}

// nextSeq is the sequence number the next snapshot will get.
func (j *Journal) nextSeq() uint64 {
	if j == nil {
		return 0
	}
	return j.seq + 1
}

// gc removes snapshot/WAL pairs older than keep-2.
func (j *Journal) gc() {
	if j.seq < 2 {
		return
	}
	floor := j.seq - 1
	seqs, err := j.snapshotSeqs()
	if err != nil {
		return
	}
	for _, s := range seqs {
		if s < floor {
			os.Remove(snapPath(j.dir, s))
			os.Remove(walPath(j.dir, s))
		}
	}
	// WALs can outlive their snapshot when a snapshot write failed; sweep
	// them by the same floor.
	if names, err := filepath.Glob(filepath.Join(j.dir, "wal-*.seg")); err == nil {
		for _, name := range names {
			var s uint64
			if _, err := fmt.Sscanf(filepath.Base(name), "wal-%d.seg", &s); err == nil && s < floor {
				os.Remove(name)
			}
		}
	}
}

// writeAtomicSegment publishes a segment file of the given records
// crash-safely through the journal's file hook: temp file, fsync, rename,
// directory fsync — the same discipline as checkpoint.WriteFileAtomic,
// reimplemented here because the hook must see every write (the disk-fault
// tests inject ENOSPC into exactly this path).
func (j *Journal) writeAtomicSegment(path string, records [][]byte) error {
	tmpName := path + ".tmp"
	tmp, err := j.open(tmpName, os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
	if err != nil {
		return fmt.Errorf("dist: journal temp file: %w", err)
	}
	w, err := checkpoint.NewWriter(tmp)
	if err == nil {
		for _, rec := range records {
			if err = w.Append(rec); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("dist: journal rename: %w", err)
	}
	return syncJournalDir(j.dir)
}

// syncJournalDir fsyncs the journal directory so a completed rename
// survives power loss; filesystems that cannot sync directories degrade to
// rename-only atomicity.
func syncJournalDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("dist: open journal dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("dist: fsync journal dir: %w", err)
	}
	return nil
}

// IsJournalCorrupt reports whether err marks a corrupt journal record.
func IsJournalCorrupt(err error) bool {
	return errors.Is(err, errJournalCorrupt) || errors.Is(err, checkpoint.ErrCorrupt)
}
