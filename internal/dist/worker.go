package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/obs"
)

// Worker is one shard-worker process (or goroutine, in tests). It polls
// the coordinator for slice leases and drives every slice it holds through
// the per-level expand/ingest protocol. All state is private to the single
// Run goroutine; crash tolerance comes from the coordinator's checkpoints
// and retained chunks, not from anything the worker persists locally.
type Worker struct {
	ID    string
	URL   string // coordinator base URL, e.g. http://127.0.0.1:9131
	Root  model.Config
	Procs []int
	Opts  explore.Options
	// Fault, when non-nil, is a scripted crash or stall (internal/faults)
	// fired at its level during expansion — the chaos the e2e tests use.
	Fault *faults.ShardFault
	Scope *obs.Scope
	Seed  int64
	// PollInterval overrides the idle wait between polls (default: a
	// fifth of the lease).
	PollInterval time.Duration
}

// sliceState is the worker's in-memory state for one leased slice.
type sliceState struct {
	epoch    int
	level    int // the level st.frontier sits at
	lastCkpt int // newest level this worker posted/loaded a checkpoint for
	visited  map[explore.Fingerprint]struct{}
	frontier []Entry

	// Cached per-level results, so a repost after the coordinator cleared
	// our barrier marks (revoke + regrant back to us) does not recompute.
	expandLevel int // level outgoing/steps are valid for, -1 none
	outgoing    map[int][]Entry
	steps       int64
	ingestLevel int // level next/fresh/digest are valid for, -1 none
	next        []Entry
	fresh       int64
	digest      explore.Fingerprint
}

// Run drives the worker until the run completes, the context is
// cancelled, or an unrecoverable error occurs. Losing a lease is not an
// error — the slice is dropped and whatever the coordinator still trusts
// this worker with continues.
func (w *Worker) Run(ctx context.Context) error {
	cl := newClient(w.URL, w.ID, w.Seed)
	spec, err := cl.getSpec(ctx)
	if err != nil {
		return err
	}
	if spec.FPVersion != explore.FingerprintVersion {
		return fmt.Errorf("dist: coordinator run uses fingerprint v%d, this binary has v%d", spec.FPVersion, explore.FingerprintVersion)
	}
	if spec.Slices < 1 {
		return fmt.Errorf("dist: spec has %d slices", spec.Slices)
	}
	fpr := w.Opts.NewFingerprinter()
	rootFP := fpr.Fingerprint(w.Root)
	idle := w.PollInterval
	if idle <= 0 {
		idle = time.Duration(spec.LeaseMS) * time.Millisecond / 5
		if idle < 5*time.Millisecond {
			idle = 5 * time.Millisecond
		}
	}
	states := make(map[int]*sliceState)
	var faultFired bool
	for {
		resp, err := cl.poll(ctx)
		if err != nil {
			return err
		}
		if resp.Done {
			return nil
		}
		// Reconcile leases against the poll's authoritative list: drop
		// slices we no longer hold, adopt new grants (and regrants whose
		// epoch moved — our memory of those is untrustworthy).
		owned := make(map[int]pollSlice, len(resp.Slices))
		ids := make([]int, 0, len(resp.Slices))
		for _, ps := range resp.Slices {
			owned[ps.Slice] = ps
			ids = append(ids, ps.Slice)
		}
		sort.Ints(ids)
		for s := range states {
			if _, ok := owned[s]; !ok {
				delete(states, s)
			}
		}
		drop := func(s int, err error) error {
			if errors.Is(err, ErrLeaseLost) {
				delete(states, s)
				w.Scope.Event("dist_worker_lease_lost")
				return nil
			}
			return err
		}
		for _, s := range ids {
			ps := owned[s]
			st, ok := states[s]
			if !ok || st.epoch != ps.Epoch {
				st, err = w.adopt(ctx, cl, spec, rootFP, s, ps, resp.Level)
				if err != nil {
					if err := drop(s, err); err != nil {
						return err
					}
					continue
				}
				states[s] = st
			}
			// Promote a slice whose ingest closed the previous level.
			if st.level == resp.Level-1 {
				if st.ingestLevel != st.level {
					return fmt.Errorf("dist: slice %d at level %d with no ingest result while run is at %d", s, st.level, resp.Level)
				}
				st.frontier = st.next
				st.level = resp.Level
				st.next = nil
				st.expandLevel, st.ingestLevel = -1, -1
			} else if st.level != resp.Level {
				return fmt.Errorf("dist: slice %d at level %d while run is at %d", s, st.level, resp.Level)
			}
		}
		progress := false
		for _, s := range ids {
			st, ok := states[s]
			if !ok {
				continue
			}
			ps := owned[s]
			var err error
			switch {
			case resp.Phase == phaseExpand && !ps.Expanded:
				err = w.expand(ctx, cl, spec, fpr, s, st, resp.Level, &faultFired)
			case resp.Phase == phaseIngest && !ps.Ingested:
				err = w.ingest(ctx, cl, s, st, resp.Level)
			default:
				continue
			}
			if err != nil {
				if err := drop(s, err); err != nil {
					return err
				}
				continue
			}
			progress = true
		}
		if !progress {
			if err := sleep(ctx, idle); err != nil {
				return err
			}
		}
	}
}

// adopt builds the local state for a freshly granted (or epoch-bumped)
// slice: load its last checkpoint — or seed from the root at level 0 —
// then catch up to the run's level by replaying the retained exchange
// chunks, and post the start-of-level checkpoint so the next owner after
// us starts no further back than we did.
func (w *Worker) adopt(ctx context.Context, cl *client, spec Spec, rootFP explore.Fingerprint, s int, ps pollSlice, level int) (*sliceState, error) {
	st := &sliceState{epoch: ps.Epoch, lastCkpt: -1, expandLevel: -1, ingestLevel: -1}
	st.visited = make(map[explore.Fingerprint]struct{})
	if ps.HasCkpt {
		ck, err := cl.getCheckpoint(ctx, s)
		if err != nil {
			return nil, err
		}
		if ck.Slice != s || ck.FPVersion != spec.FPVersion {
			return nil, fmt.Errorf("dist: checkpoint for slice %d is slice %d v%d", s, ck.Slice, ck.FPVersion)
		}
		for _, fp := range ck.Visited {
			st.visited[fp] = struct{}{}
		}
		st.frontier = ck.Frontier
		st.level = ck.Level
		st.lastCkpt = ck.Level
	} else {
		if level != 0 {
			return nil, fmt.Errorf("dist: slice %d granted at level %d with no checkpoint", s, level)
		}
		if explore.ShardOf(rootFP, spec.Slices) == s {
			st.visited[rootFP] = struct{}{}
			st.frontier = []Entry{{FP: rootFP}}
		}
	}
	if st.level < level {
		if st.level != level-1 {
			return nil, fmt.Errorf("dist: slice %d checkpoint at level %d is too old for level %d", s, st.level, level)
		}
		// Catch-up: the previous level's chunk set is complete and
		// retained, so ingesting it reproduces — byte for byte — the
		// frontier the dead owner would have carried into this level.
		next, _, _, err := w.ingestChunks(ctx, cl, s, st, st.level)
		if err != nil {
			return nil, err
		}
		st.frontier = next
		st.level = level
	}
	if st.lastCkpt < st.level {
		if err := w.postCheckpoint(ctx, cl, spec, s, st); err != nil {
			return nil, err
		}
	}
	w.Scope.Event("dist_worker_adopted")
	return st, nil
}

// postCheckpoint posts the slice's start-of-level state.
func (w *Worker) postCheckpoint(ctx context.Context, cl *client, spec Spec, s int, st *sliceState) error {
	ck := SliceCheckpoint{Slice: s, Level: st.level, FPVersion: spec.FPVersion}
	ck.Visited = make([]explore.Fingerprint, 0, len(st.visited))
	for fp := range st.visited {
		ck.Visited = append(ck.Visited, fp)
	}
	ck.Frontier = st.frontier
	body, err := ck.Encode()
	if err != nil {
		return err
	}
	if err := cl.putCheckpoint(ctx, s, st.level, body); err != nil {
		return err
	}
	st.lastCkpt = st.level
	return nil
}

// expand runs the slice's expand phase at level: replay each frontier
// entry to a configuration, apply every enabled move, and bucket the
// children by destination slice; then ship the buckets as verified chunks
// and post the expand barrier mark with the transition count.
func (w *Worker) expand(ctx context.Context, cl *client, spec Spec, fpr *explore.Fingerprinter, s int, st *sliceState, level int, faultFired *bool) error {
	if st.lastCkpt < level {
		if err := w.postCheckpoint(ctx, cl, spec, s, st); err != nil {
			return err
		}
	}
	if w.Fault != nil && w.Fault.Kind == "stall" && w.Fault.At(level) && !*faultFired {
		*faultFired = true
		w.Fault.Trigger()
	}
	if st.expandLevel != level {
		heartbeatEvery := time.Duration(spec.LeaseMS) * time.Millisecond / 5
		lastBeat := time.Now()
		outgoing := make(map[int][]Entry)
		var steps int64
		var moves []model.Move
		for i := range st.frontier {
			e := &st.frontier[i]
			cfg := e.Replay(w.Root)
			moves = explore.AppendMoves(moves[:0], cfg, w.Procs)
			for _, mv := range moves {
				child := explore.Apply(cfg, mv)
				steps++
				fp := fpr.Fingerprint(child)
				packed, err := model.PackMove(mv)
				if err != nil {
					return err
				}
				path := make([]uint32, len(e.Path)+1)
				copy(path, e.Path)
				path[len(e.Path)] = packed
				dest := explore.ShardOf(fp, spec.Slices)
				outgoing[dest] = append(outgoing[dest], Entry{FP: fp, Path: path})
			}
			// A big level must not cost us the lease mid-expansion.
			if time.Since(lastBeat) > heartbeatEvery {
				if err := cl.heartbeat(ctx); err != nil {
					return err
				}
				lastBeat = time.Now()
			}
		}
		st.outgoing = outgoing
		st.steps = steps
		st.expandLevel = level
	}
	dests := make([]int, 0, len(st.outgoing))
	for d := range st.outgoing {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for i, d := range dests {
		body, err := EncodeFrontierChunk(level, s, d, st.outgoing[d])
		if err != nil {
			return err
		}
		if err := cl.putChunk(ctx, body); err != nil {
			return err
		}
		// A scripted kill fires after the first chunk lands: the torn
		// middle of an exchange, the worst moment to die.
		if i == 0 && w.Fault != nil && w.Fault.Kind == "kill" && w.Fault.At(level) && !*faultFired {
			*faultFired = true
			w.Fault.Trigger()
		}
	}
	return cl.postExpanded(ctx, s, level, st.steps)
}

// ingestChunks fetches and ingests every retained chunk addressed to slice
// s at the level, in from-slice order (ascending — the order is part of
// the frontier's byte determinism), deduplicating against the slice's
// visited set. Returns the fresh entries in ingest order with their count
// and XOR digest.
func (w *Worker) ingestChunks(ctx context.Context, cl *client, s int, st *sliceState, level int) ([]Entry, int64, explore.Fingerprint, error) {
	froms, err := cl.chunkSources(ctx, level, s)
	if err != nil {
		return nil, 0, explore.Fingerprint{}, err
	}
	sort.Ints(froms)
	retries := w.Scope.Counter("dist_chunk_retries")
	var next []Entry
	var fresh int64
	var digest explore.Fingerprint
	for _, from := range froms {
		entries, err := cl.getChunk(ctx, level, from, s, func() { retries.Add(1) })
		if err != nil {
			return nil, 0, explore.Fingerprint{}, err
		}
		for _, e := range entries {
			if _, seen := st.visited[e.FP]; seen {
				continue
			}
			st.visited[e.FP] = struct{}{}
			next = append(next, e)
			fresh++
			digest[0] ^= e.FP[0]
			digest[1] ^= e.FP[1]
		}
	}
	return next, fresh, digest, nil
}

// ingest runs the slice's ingest phase at level and posts the barrier mark
// with the fresh count and digest the coordinator folds into the witness.
func (w *Worker) ingest(ctx context.Context, cl *client, s int, st *sliceState, level int) error {
	if st.ingestLevel != level {
		next, fresh, digest, err := w.ingestChunks(ctx, cl, s, st, level)
		if err != nil {
			return err
		}
		st.next, st.fresh, st.digest = next, fresh, digest
		st.ingestLevel = level
	}
	return cl.postIngested(ctx, s, level, st.fresh, st.digest)
}
