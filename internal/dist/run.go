package dist

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/obs"
)

// Run bundles everything a coordinator or worker needs about the explored
// space: the spec plus the concrete root configuration, scheduler pids and
// exploration options it denotes. Both sides resolve the same spec through
// the same registry (internal/core), so a worker joining a coordinator is
// guaranteed to expand the very space the coordinator aggregates.
type Run struct {
	Spec  Spec
	Root  model.Config
	Procs []int
	Opts  explore.Options
}

// NewRun resolves a run description into a Run. The root configuration
// uses the Theorem 1 mixed inputs — process 0 proposes "0", everyone else
// "1" — the bivalent start every exploration in this repo reasons from.
func NewRun(protocol string, n, slices, maxDepth int, lease time.Duration) (*Run, error) {
	if n < 2 {
		return nil, fmt.Errorf("dist: n=%d, need at least 2 processes", n)
	}
	if slices < 1 {
		return nil, fmt.Errorf("dist: %d slices", slices)
	}
	if maxDepth < 0 {
		return nil, fmt.Errorf("dist: negative max depth")
	}
	if lease <= 0 {
		return nil, fmt.Errorf("dist: non-positive lease %v", lease)
	}
	m, opts, err := core.Machine(protocol)
	if err != nil {
		return nil, err
	}
	inputs := make([]model.Value, n)
	inputs[0] = model.Value("0")
	for i := 1; i < n; i++ {
		inputs[i] = model.Value("1")
	}
	procs := make([]int, n)
	for i := range procs {
		procs[i] = i
	}
	return &Run{
		Spec: Spec{
			Protocol:  protocol,
			N:         n,
			Slices:    slices,
			MaxDepth:  maxDepth,
			LeaseMS:   lease.Milliseconds(),
			FPVersion: explore.FingerprintVersion,
		},
		Root:  model.NewConfig(m, inputs),
		Procs: procs,
		Opts:  opts,
	}, nil
}

// RunFromSpec rebuilds a Run from a coordinator-served spec — the worker
// side of the same resolution.
func RunFromSpec(spec Spec) (*Run, error) {
	if spec.FPVersion != explore.FingerprintVersion {
		return nil, fmt.Errorf("dist: spec wants fingerprint v%d, this binary has v%d", spec.FPVersion, explore.FingerprintVersion)
	}
	return NewRun(spec.Protocol, spec.N, spec.Slices, spec.MaxDepth, time.Duration(spec.LeaseMS)*time.Millisecond)
}

// Coordinator builds the run's coordinator.
func (r *Run) Coordinator(scope *obs.Scope) (*Coordinator, error) {
	return NewCoordinator(r.Spec, r.Opts.Fingerprint(r.Root), scope)
}
