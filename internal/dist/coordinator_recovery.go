package dist

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/explore"
)

// Crash recovery (S25). The coordinator's durable state is everything a
// restart needs to resume the barrier at the exact level and phase:
// closed-level stats, per-slice checkpoints and expand marks, retained
// exchange chunks, and the step total. Leases are deliberately NOT
// persisted — a restart is a mass revocation: every slice comes back
// unowned, workers re-acquire under a bumped generation's epochs, and PR
// 9's fencing rejects anything a pre-crash zombie still posts. Ingest
// marks are cleared too, even when journaled: a new owner granted a slice
// that "already ingested" would have no frontier to promote when the level
// closes, while redoing the ingest from the retained chunk set is
// deterministic and cheap. Expand marks survive because their invariant is
// adoptable: a slice only marks expanded after posting a checkpoint at the
// current level and every outgoing chunk, so any new owner can pick it up
// in the ingest phase directly.

// Status is the coordinator's externally visible barrier position, served
// at GET /dist/status for supervisors and the chaos harness.
type Status struct {
	Level      int    `json:"level"`
	Phase      string `json:"phase"`
	Done       bool   `json:"done"`
	Recovering bool   `json:"recovering"`
	Gen        int    `json:"gen"`
}

// Status reports the barrier position.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		Level:      c.level,
		Phase:      c.phaseLocked(),
		Done:       c.done,
		Recovering: c.recovering,
		Gen:        c.gen,
	}
}

// Recovering reports whether the coordinator is between AttachJournal
// finding prior state and Recover finishing the sweep — the window in
// which the worker surface answers 503 and readiness is down.
func (c *Coordinator) Recovering() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovering
}

// AttachJournal wires a journal to the coordinator. A journal that holds
// prior state (its directory survived a crash) must describe this exact
// run — same spec, same root fingerprint — and puts the coordinator into
// the recovering state until Recover is called; a fresh journal is seeded
// with a snapshot of the empty run immediately, so even a crash before the
// first level close restarts cleanly.
func (c *Coordinator) AttachJournal(j *Journal) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil {
		return fmt.Errorf("dist: journal already attached")
	}
	if j.Recovered() {
		meta := j.recovered.meta
		if meta.Spec != c.spec {
			return fmt.Errorf("dist: journal %s belongs to a different run: spec %+v, this run is %+v", j.Dir(), meta.Spec, c.spec)
		}
		if meta.RootFP != [2]uint64(c.rootFP) {
			return fmt.Errorf("dist: journal %s belongs to a different run: root fingerprint mismatch", j.Dir())
		}
		c.journal = j
		c.recovering = true
		c.pending = make(map[chunkKey][]byte)
		c.scope.Gauge("dist_recovering").Set(1)
		return nil
	}
	c.journal = j
	if err := j.attachFresh(c.snapshotRecordsLocked(0)); err != nil {
		c.journal = nil
		return fmt.Errorf("dist: seeding journal: %w", err)
	}
	return nil
}

// Recover runs the startup recovery sweep: rebuild the in-memory state
// from the journal's newest intact snapshot, replay the WAL through the
// same apply paths the live handlers use, drop every lease, fence the new
// generation's epochs, persist a fresh snapshot, and only then open the
// worker surface. Chunk posts stashed while the sweep ran are installed
// last, first-write-wins, with journaled bytes taking precedence. A no-op
// (and nil) when the attached journal had no prior state.
func (c *Coordinator) Recover() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.journal
	if j == nil || !j.Recovered() {
		c.recovering = false
		return nil
	}
	st := j.recovered
	j.recovered = nil

	// Snapshot state first.
	c.level = st.meta.Level
	c.steps = st.meta.Steps
	c.gen = st.meta.Gen
	c.done = st.meta.Done
	c.levels = append([]LevelStat(nil), st.levels...)
	c.chunks = st.chunks
	for s := range c.slices {
		ss := &st.slices[s]
		sl := &c.slices[s]
		sl.owner = ""
		sl.ckpt = ss.ckpt
		sl.ckptLevel = ss.ckptLevel
		sl.hasCkpt = ss.hasCkpt
		sl.everOwned = ss.everOwned
		sl.expanded = ss.expanded
		sl.ingested = ss.ingested
		sl.steps = ss.steps
		sl.fresh = ss.fresh
		sl.digest = ss.digest
		sl.reassigns = ss.reassigns
	}

	// Replay the WAL through the live apply paths; journal appends and
	// wall-clock observations are suppressed, level closes (and their
	// pruning) happen exactly as they did the first time.
	c.replaying = true
	for _, rec := range st.walRecs {
		c.replayLocked(rec)
	}
	c.replaying = false

	if c.done && c.witness == nil {
		// The witness is a pure function of the recovered stats; rendering
		// beats persisting a second copy that could disagree.
		c.witness = RenderWitness(c.spec, c.levels, c.steps)
		select {
		case <-c.doneCh:
		default:
			close(c.doneCh)
		}
		c.scope.Gauge("dist_done").Set(1)
	}

	// Lease amnesia: every slice unowned, every worker forgotten, ingest
	// marks redone by the next owners (see the package comment above).
	c.workers = make(map[string]time.Time)
	for s := range c.slices {
		sl := &c.slices[s]
		sl.owner = ""
		sl.ingested = false
		sl.fresh = 0
		sl.digest = explore.Fingerprint{}
	}

	// New generation: rebase every epoch above anything the dead
	// incarnation ever granted, and make the bump durable both in the
	// post-recovery snapshot and as the new WAL's first record — the
	// latter keeps it visible even to a future recovery that has to fall
	// back past this snapshot.
	c.gen++
	for s := range c.slices {
		c.slices[s].epoch = c.gen << epochGenShift
	}
	if err := j.snapshot(c.snapshotRecordsLocked(j.nextSeq())); err != nil {
		c.scope.Event("dist_recovery_snapshot_failed")
	}
	j.append(journalRec{Tag: jrecGen, Gen: c.gen})

	// Install chunk posts that raced the sweep. The journal's copy wins;
	// a pending chunk lands only if the journal held nothing for its key
	// and its level is still open.
	for key, body := range c.pending {
		if c.done || key.level != c.level {
			continue
		}
		if _, ok := c.chunks[key]; ok {
			continue
		}
		c.journal.append(journalRec{Tag: jrecChunk, Level: key.level, From: key.from, To: key.to, Body: body})
		c.applyChunkLocked(key, body, time.Now())
	}
	c.pending = nil

	c.recovering = false
	c.levelStart = time.Now()
	c.scope.Gauge("dist_recovering").Set(0)
	c.scope.Gauge("dist_level").Set(int64(c.level))
	c.scope.Gauge("dist_gen").Set(int64(c.gen))
	c.scope.Event("dist_recovered")
	return nil
}

// epochGenShift positions the generation number inside slice epochs:
// epochs restart at gen<<20 after every recovery, so as long as one
// incarnation grants a slice fewer than 2^20 times, a zombie's fenced
// epoch can never equal a post-restart one.
const epochGenShift = 20

// replayLocked applies one WAL record. Records that no longer make sense —
// a chunk or mark for a level the replayed advances already closed — are
// skipped silently: the WAL may span several levels when snapshots were
// failing, and each close prunes what the next records legitimately
// re-post.
func (c *Coordinator) replayLocked(rec journalRec) {
	switch rec.Tag {
	case jrecCkpt:
		if rec.Slice < len(c.slices) {
			c.applyCheckpointLocked(rec.Slice, rec.Level, rec.Body)
		}
	case jrecChunk:
		if rec.Level == c.level && !c.done {
			c.applyChunkLocked(chunkKey{level: rec.Level, from: rec.From, to: rec.To}, rec.Body, time.Time{})
		}
	case jrecExpanded:
		if rec.Slice < len(c.slices) && rec.Level == c.level && !c.done {
			c.applyExpandedLocked(rec.Slice, rec.Steps)
		}
	case jrecIngested:
		if rec.Slice < len(c.slices) && rec.Level == c.level && !c.done {
			c.applyIngestedLocked(rec.Slice, rec.Fresh, rec.Digest)
		}
	case jrecGen:
		if rec.Gen > c.gen {
			c.gen = rec.Gen
		}
	}
}

// snapshotLocked persists the full current state and rotates the WAL; a
// failure is already counted by the journal and leaves the current WAL
// growing, which replay handles (it spans however many levels the WAL
// accumulated).
func (c *Coordinator) snapshotLocked() {
	if c.journal == nil || c.replaying {
		return
	}
	_ = c.journal.snapshot(c.snapshotRecordsLocked(c.journal.nextSeq()))
}

// snapshotRecordsLocked encodes the coordinator's durable state as the
// record sequence of one snapshot segment.
func (c *Coordinator) snapshotRecordsLocked(seq uint64) [][]byte {
	meta := journalMeta{
		Seq:    seq,
		Gen:    c.gen,
		Level:  c.level,
		Steps:  c.steps,
		Done:   c.done,
		Spec:   c.spec,
		RootFP: [2]uint64(c.rootFP),
		Levels: len(c.levels),
		Slices: len(c.slices),
		Chunks: len(c.chunks),
	}
	metaBody, err := json.Marshal(meta)
	if err != nil {
		// journalMeta is a fixed struct of marshalable fields; this cannot
		// fail, and a panic here beats silently writing a broken snapshot.
		panic(fmt.Sprintf("dist: encoding journal meta: %v", err))
	}
	records := make([][]byte, 0, 1+len(c.levels)+len(c.slices)+len(c.chunks))
	records = append(records, (&journalRec{Tag: jrecMeta, Body: metaBody}).encode())
	for _, lv := range c.levels {
		records = append(records, (&journalRec{Tag: jrecLevel, Fresh: lv.Fresh, Digest: lv.Digest}).encode())
	}
	for s := range c.slices {
		sl := &c.slices[s]
		var flags byte
		if sl.hasCkpt {
			flags |= sflagHasCkpt
		}
		if sl.expanded {
			flags |= sflagExpanded
		}
		if sl.ingested {
			flags |= sflagIngested
		}
		if sl.everOwned {
			flags |= sflagEverOwned
		}
		records = append(records, (&journalRec{
			Tag:       jrecSlice,
			Slice:     s,
			Flags:     flags,
			CkptLevel: sl.ckptLevel,
			Steps:     sl.steps,
			Fresh:     sl.fresh,
			Digest:    sl.digest,
			Reassigns: sl.reassigns,
			Body:      sl.ckpt,
		}).encode())
	}
	for key, body := range c.chunks {
		records = append(records, (&journalRec{
			Tag:   jrecRetained,
			Level: key.level,
			From:  key.from,
			To:    key.to,
			Body:  body,
		}).encode())
	}
	return records
}
