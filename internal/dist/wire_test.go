package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/explore"
)

func sampleEntries() []Entry {
	return []Entry{
		{FP: explore.Fingerprint{0x0102030405060708, 0x1112131415161718}},
		{FP: explore.Fingerprint{0xdeadbeef, 0xcafe}, Path: []uint32{1, 2, 300000}},
		{FP: explore.Fingerprint{^uint64(0), 0}, Path: []uint32{0}},
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	want := sampleEntries()
	got, err := DecodeEntries(AppendEntries(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].FP != want[i].FP || len(got[i].Path) != len(want[i].Path) {
			t.Fatalf("entry %d: %+v, want %+v", i, got[i], want[i])
		}
		for j := range want[i].Path {
			if got[i].Path[j] != want[i].Path[j] {
				t.Fatalf("entry %d move %d: %d, want %d", i, j, got[i].Path[j], want[i].Path[j])
			}
		}
	}
}

// TestDecodeEntriesHugeCountRejected: a crafted body declaring far more
// entries than its bytes can hold must be rejected before the entry slice
// is sized from the count — the declared count must never amplify a small
// body into a multi-gigabyte allocation.
func TestDecodeEntriesHugeCountRejected(t *testing.T) {
	for _, count := range []uint64{1 << 26, 1 << 40} {
		body := binary.AppendUvarint(nil, count)
		body = append(body, make([]byte, 64)...)
		if _, err := DecodeEntries(body); err == nil {
			t.Fatalf("declared count %d over a %d-byte payload decoded without error", count, len(body))
		}
	}
	// The bound must also catch counts that fit in the old len(body)+1
	// check but not in the per-entry minimum of fingerprint + path length.
	body := binary.AppendUvarint(nil, 10)
	body = append(body, make([]byte, 64)...)
	if _, err := DecodeEntries(body); err == nil {
		t.Fatal("count 10 over a 64-byte payload decoded without error")
	}
}

// TestFrontierChunkBitFlip flips every bit of an encoded exchange chunk:
// every flip must be rejected with an error wrapping checkpoint.ErrCorrupt
// (the satellite guarantee — a torn or corrupted exchange is never
// partially ingested).
func TestFrontierChunkBitFlip(t *testing.T) {
	data, err := EncodeFrontierChunk(2, 1, 0, sampleEntries())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrontierChunk(data, 2, 1, 0); err != nil {
		t.Fatalf("pristine chunk rejected: %v", err)
	}
	for byteIdx := range data {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(data)
			mut[byteIdx] ^= 1 << bit
			if _, err := DecodeFrontierChunk(mut, 2, 1, 0); !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("flip byte %d bit %d: err = %v, want ErrCorrupt", byteIdx, bit, err)
			}
		}
	}
}

// TestFrontierChunkIdentityMismatch: an intact chunk claimed for a
// different (level, from, to) is rejected too — a stale chunk must not be
// ingested as the current level's.
func TestFrontierChunkIdentityMismatch(t *testing.T) {
	data, err := EncodeFrontierChunk(2, 1, 0, sampleEntries())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range [][3]int{{3, 1, 0}, {2, 0, 0}, {2, 1, 2}} {
		if _, err := DecodeFrontierChunk(data, want[0], want[1], want[2]); err == nil {
			t.Fatalf("chunk accepted as level %d %d->%d", want[0], want[1], want[2])
		}
	}
}

func TestSliceCheckpointRoundTrip(t *testing.T) {
	ck := &SliceCheckpoint{
		Slice:     1,
		Level:     4,
		FPVersion: explore.FingerprintVersion,
		Visited:   []explore.Fingerprint{{9, 9}, {1, 2}, {1, 1}},
		Frontier:  sampleEntries(),
	}
	data, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSliceCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slice != ck.Slice || got.Level != ck.Level || got.FPVersion != ck.FPVersion {
		t.Fatalf("meta %+v, want %+v", got, ck)
	}
	if len(got.Visited) != len(ck.Visited) || len(got.Frontier) != len(ck.Frontier) {
		t.Fatalf("decoded %d visited / %d frontier, want %d / %d",
			len(got.Visited), len(got.Frontier), len(ck.Visited), len(ck.Frontier))
	}
	// Encoding sorts the visited set, so a checkpoint's bytes are a pure
	// function of the state, whatever map-iteration order produced it.
	data2, err := (&SliceCheckpoint{
		Slice: 1, Level: 4, FPVersion: ck.FPVersion,
		Visited:  []explore.Fingerprint{{1, 1}, {1, 2}, {9, 9}},
		Frontier: sampleEntries(),
	}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("checkpoint bytes depend on visited order")
	}
	// Corruption anywhere fails typed.
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeSliceCheckpoint(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestRenderWitnessShape(t *testing.T) {
	spec := Spec{Protocol: "diskrace", N: 3, MaxDepth: 4, FPVersion: 2}
	levels := []LevelStat{
		{Fresh: 1, Digest: explore.Fingerprint{0xa, 0xb}},
		{Fresh: 7, Digest: explore.Fingerprint{0x1, 0x2}},
	}
	got := string(RenderWitness(spec, levels, 21))
	want := "distributed reachability witness\n" +
		"protocol: diskrace\n" +
		"n: 3\n" +
		"fingerprint: v2\n" +
		"max depth: 4\n" +
		"level 0: configs=1 digest=000000000000000a000000000000000b\n" +
		"level 1: configs=7 digest=00000000000000010000000000000002\n" +
		"total configs: 8\n" +
		"total steps: 21\n" +
		"depth: 1\n"
	if got != want {
		t.Fatalf("witness:\n%s\nwant:\n%s", got, want)
	}
}
