// Package dist shards the level-synchronous reachability exploration
// across worker OS processes and makes the partition crash-tolerant.
//
// The fingerprint space is split into Spec.Slices slices by
// explore.ShardOf; every configuration belongs to exactly one slice, and
// the worker holding that slice's lease owns its visited set and frontier.
// A coordinator (embedded in provesrv or `spacebound -coordinator`) grants
// lease-based slice ownership, renews it on every worker request, runs a
// two-phase barrier per BFS level, and aggregates per-level counts and
// XOR-of-fingerprint digests into the run's witness. Workers expand their
// frontier by witness-path replay, ship cross-slice children to the
// coordinator as exchange chunks framed in the checksummed
// checkpoint-segment format (internal/checkpoint.EncodeChunk — a torn or
// corrupted chunk fails typed and is re-requested, never partially
// ingested), and post per-slice checkpoints at level boundaries. When a
// lease expires — crash, SIGKILL, or a stall injected via internal/faults
// — the slice is regranted to a surviving worker, which rebuilds the
// visited set and frontier from the slice's last checkpoint plus the
// retained exchange chunks; every redo is deterministic, so the merged run
// produces a witness byte-identical to an uninterrupted single-process
// run's (SequentialWitness is that reference).
package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"slices"

	"repro/internal/checkpoint"
	"repro/internal/explore"
	"repro/internal/model"
)

// Spec describes a distributed run. The coordinator serves it at
// /dist/spec and every worker validates its own flags against it before
// taking a lease: a worker exploring a different protocol, process count
// or fingerprint version would silently corrupt the partition.
type Spec struct {
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	Slices   int    `json:"slices"`
	// MaxDepth, when > 0, stops the run after the frontier at that depth
	// is recorded (it is never expanded) — the same cap semantics as
	// explore.Options.MaxDepth, so the sequential reference matches.
	MaxDepth int `json:"max_depth"`
	// LeaseMS is the shard lease: a worker silent for longer loses its
	// slices to the survivors.
	LeaseMS   int64 `json:"lease_ms"`
	FPVersion int   `json:"fp_version"`
}

// Entry is one frontier configuration in flight between processes: its
// canonical fingerprint plus its witness path from the root as packed
// moves (model.PackMove). Configurations themselves are never serialised —
// model.Config holds State interface values — so a receiver rebuilds the
// configuration by replaying the path from the root, the same philosophy
// the checkpoint layer uses for frontier snapshots.
type Entry struct {
	FP   explore.Fingerprint
	Path []uint32
}

// AppendEntries appends the wire encoding of entries to dst:
//
//	[uvarint count] then per entry [16-byte fp][uvarint pathlen][uvarint moves...]
func AppendEntries(dst []byte, entries []Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		dst = e.FP.AppendBinary(dst)
		dst = binary.AppendUvarint(dst, uint64(len(e.Path)))
		for _, mv := range e.Path {
			dst = binary.AppendUvarint(dst, uint64(mv))
		}
	}
	return dst
}

// DecodeEntries decodes an AppendEntries body. Entry bodies always travel
// inside checksummed frames (exchange chunks, checkpoint segments), so a
// decode failure here means a framing bug, not line noise — it is still a
// typed error, never a panic or a wrong entry.
func DecodeEntries(body []byte) ([]Entry, error) {
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("dist: entries count: truncated")
	}
	body = body[n:]
	// Every entry costs at least a fingerprint plus a one-byte path length,
	// so bound the declared count by that before sizing the allocation — a
	// crafted count must not amplify a small body into gigabytes of slice
	// (the sha256 framing around entry bodies is a checksum, not a MAC).
	if count > uint64(len(body)/(explore.FingerprintBytes+1)) {
		return nil, fmt.Errorf("dist: entries count %d exceeds payload", count)
	}
	out := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(body) < explore.FingerprintBytes {
			return nil, fmt.Errorf("dist: entry %d fingerprint: truncated", i)
		}
		fp, err := explore.FingerprintFromBytes(body[:explore.FingerprintBytes])
		if err != nil {
			return nil, err
		}
		body = body[explore.FingerprintBytes:]
		plen, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("dist: entry %d path length: truncated", i)
		}
		body = body[n:]
		if plen > uint64(len(body)) {
			return nil, fmt.Errorf("dist: entry %d path length %d exceeds payload", i, plen)
		}
		path := make([]uint32, plen)
		for j := uint64(0); j < plen; j++ {
			mv, n := binary.Uvarint(body)
			if n <= 0 {
				return nil, fmt.Errorf("dist: entry %d move %d: truncated", i, j)
			}
			if mv > 1<<32-1 {
				return nil, fmt.Errorf("dist: entry %d move %d overflows 32 bits", i, j)
			}
			body = body[n:]
			path[j] = uint32(mv)
		}
		out = append(out, Entry{FP: fp, Path: path})
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("dist: %d trailing bytes after entries", len(body))
	}
	return out, nil
}

// Replay rebuilds the entry's configuration by applying its path to root.
func (e *Entry) Replay(root model.Config) model.Config {
	c := root
	for _, mv := range e.Path {
		c = explore.Apply(c, model.UnpackMove(mv))
	}
	return c
}

// chunkKind is the Kind of every frontier exchange chunk.
const chunkKind = "frontier"

// EncodeFrontierChunk frames the entries of one (level, from, to) exchange
// as a self-verifying chunk.
func EncodeFrontierChunk(level, from, to int, entries []Entry) ([]byte, error) {
	return checkpoint.EncodeChunk(
		checkpoint.ChunkHeader{Kind: chunkKind, Level: level, From: from, To: to, Count: len(entries)},
		AppendEntries(nil, entries),
	)
}

// DecodeFrontierChunk verifies and unpacks an exchange chunk, checking the
// header's declared identity and count against what the caller expected.
// Corruption anywhere fails with an error wrapping checkpoint.ErrCorrupt.
func DecodeFrontierChunk(data []byte, level, from, to int) ([]Entry, error) {
	h, body, err := checkpoint.DecodeChunk(data)
	if err != nil {
		return nil, err
	}
	if h.Kind != chunkKind || h.Level != level || h.From != from || h.To != to {
		return nil, fmt.Errorf("dist: chunk is %s l%d %d->%d, want %s l%d %d->%d",
			h.Kind, h.Level, h.From, h.To, chunkKind, level, from, to)
	}
	entries, err := DecodeEntries(body)
	if err != nil {
		return nil, err
	}
	if len(entries) != h.Count {
		return nil, fmt.Errorf("dist: chunk declares %d entries, holds %d", h.Count, len(entries))
	}
	return entries, nil
}

// SliceCheckpoint is a slice's state at the start of a level: every
// fingerprint the slice has visited (depths <= Level) and the frontier
// entries at exactly Level. A reassigned slice restarts from here.
type SliceCheckpoint struct {
	Slice     int
	Level     int
	FPVersion int
	Visited   []explore.Fingerprint
	Frontier  []Entry
}

// sliceCkptMeta is record 0 of an encoded slice checkpoint.
type sliceCkptMeta struct {
	Slice     int `json:"slice"`
	Level     int `json:"level"`
	FPVersion int `json:"fp_version"`
	Visited   int `json:"visited"`
}

// Encode frames the checkpoint in the checksummed segment format: meta
// JSON, then the visited fingerprints (sorted, so the bytes are
// deterministic), then the frontier entries.
func (ck *SliceCheckpoint) Encode() ([]byte, error) {
	meta, err := json.Marshal(sliceCkptMeta{Slice: ck.Slice, Level: ck.Level, FPVersion: ck.FPVersion, Visited: len(ck.Visited)})
	if err != nil {
		return nil, err
	}
	sorted := slices.Clone(ck.Visited)
	slices.SortFunc(sorted, func(a, b explore.Fingerprint) int {
		if a[0] != b[0] {
			if a[0] < b[0] {
				return -1
			}
			return 1
		}
		if a[1] != b[1] {
			if a[1] < b[1] {
				return -1
			}
			return 1
		}
		return 0
	})
	visited := make([]byte, 0, len(sorted)*explore.FingerprintBytes)
	for _, fp := range sorted {
		visited = fp.AppendBinary(visited)
	}
	var buf bytes.Buffer
	sw, err := checkpoint.NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	for _, rec := range [][]byte{meta, visited, AppendEntries(nil, ck.Frontier)} {
		if err := sw.Append(rec); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// DecodeSliceCheckpoint verifies and unpacks an encoded slice checkpoint.
func DecodeSliceCheckpoint(data []byte) (*SliceCheckpoint, error) {
	recs, err := checkpoint.ReadSegment(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if len(recs) != 3 {
		return nil, fmt.Errorf("dist: slice checkpoint has %d records, want 3", len(recs))
	}
	var meta sliceCkptMeta
	if err := json.Unmarshal(recs[0], &meta); err != nil {
		return nil, fmt.Errorf("dist: slice checkpoint meta: %w", err)
	}
	if len(recs[1])%explore.FingerprintBytes != 0 || len(recs[1])/explore.FingerprintBytes != meta.Visited {
		return nil, fmt.Errorf("dist: slice checkpoint declares %d visited fingerprints, holds %d bytes", meta.Visited, len(recs[1]))
	}
	ck := &SliceCheckpoint{Slice: meta.Slice, Level: meta.Level, FPVersion: meta.FPVersion}
	ck.Visited = make([]explore.Fingerprint, 0, meta.Visited)
	for b := recs[1]; len(b) > 0; b = b[explore.FingerprintBytes:] {
		fp, err := explore.FingerprintFromBytes(b[:explore.FingerprintBytes])
		if err != nil {
			return nil, err
		}
		ck.Visited = append(ck.Visited, fp)
	}
	if ck.Frontier, err = DecodeEntries(recs[2]); err != nil {
		return nil, err
	}
	return ck, nil
}
