package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/explore"
	"repro/internal/model"
)

// LevelStat summarises one BFS level of the merged run: how many distinct
// configurations were discovered at that depth and the XOR of their
// canonical fingerprints. XOR is order-independent, so the digest is
// identical however the level's configurations were split across slices,
// workers, or retries — and identical to the sequential run's.
type LevelStat struct {
	Fresh  int64
	Digest explore.Fingerprint
}

// RenderWitness renders the run's witness artifact. The text is a pure
// function of the explored space — protocol, process count, fingerprint
// version, cap, per-level counts and digests, totals — and deliberately
// mentions nothing about slices, workers, or recoveries: a distributed run
// that crashed and reassigned mid-flight must render byte-identically to
// an uninterrupted single-process run.
func RenderWitness(spec Spec, levels []LevelStat, totalSteps int64) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "distributed reachability witness\n")
	fmt.Fprintf(&b, "protocol: %s\n", spec.Protocol)
	fmt.Fprintf(&b, "n: %d\n", spec.N)
	fmt.Fprintf(&b, "fingerprint: v%d\n", spec.FPVersion)
	fmt.Fprintf(&b, "max depth: %d\n", spec.MaxDepth)
	var total int64
	depth := 0
	for d, ls := range levels {
		fmt.Fprintf(&b, "level %d: configs=%d digest=%016x%016x\n", d, ls.Fresh, ls.Digest[0], ls.Digest[1])
		total += ls.Fresh
		if ls.Fresh > 0 {
			depth = d
		}
	}
	fmt.Fprintf(&b, "total configs: %d\n", total)
	fmt.Fprintf(&b, "total steps: %d\n", totalSteps)
	fmt.Fprintf(&b, "depth: %d\n", depth)
	return []byte(b.String())
}

// SequentialWitness runs the same reachability exploration as a
// distributed run described by spec — P-only BFS from root under opts,
// depth-capped by spec.MaxDepth — in this process, with explore.Reach, and
// renders its witness. It is the single-process reference a distributed
// run's witness must match byte for byte, and the oracle the e2e crash
// tests compare against.
func SequentialWitness(ctx context.Context, spec Spec, root model.Config, procs []int, opts explore.Options) ([]byte, error) {
	opts.MaxDepth = spec.MaxDepth
	fpr := opts.NewFingerprinter()
	var levels []LevelStat
	res, err := explore.Reach(ctx, root, procs, opts, func(v explore.Visit) bool {
		for len(levels) <= v.Depth {
			levels = append(levels, LevelStat{})
		}
		fp := fpr.Fingerprint(v.Config)
		levels[v.Depth].Fresh++
		levels[v.Depth].Digest[0] ^= fp[0]
		levels[v.Depth].Digest[1] ^= fp[1]
		return true
	})
	if err != nil {
		// A depth cap is the run completing as specified, not a failure;
		// any other cap (configs, cancellation) is real.
		if !(spec.MaxDepth > 0 && errors.Is(err, explore.ErrCapped) && ctx.Err() == nil && res != nil && res.Depth <= spec.MaxDepth && !capIsConfigs(res, opts)) {
			return nil, err
		}
	}
	return RenderWitness(spec, levels, int64(res.Steps)), nil
}

// capIsConfigs reports whether the result stopped on the visited-configs
// budget rather than the depth cap.
func capIsConfigs(res *explore.Result, opts explore.Options) bool {
	max := opts.MaxConfigs
	if max <= 0 {
		max = explore.DefaultMaxConfigs
	}
	return res.Count >= max
}
