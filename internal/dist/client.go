package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Backoff tuning for the worker-side client, mirroring the job
// supervisor's retry shape in internal/server: the delay doubles from
// Base, caps at Max, and carries up to 25% seeded jitter so a fleet of
// workers retrying the same coordinator does not retry in lockstep.
// The attempt budget is sized for a coordinator outage: with the doubling
// capped at 2s, 14 attempts ride through well over ten seconds of dead or
// recovering coordinator — kill detection, restart delay, and the journal
// recovery sweep together stay an order of magnitude below that — so a
// healthy worker never exits during the window, it just keeps retrying
// until the recovered coordinator either answers or fences it with 409.
const (
	clientRetryBase = 50 * time.Millisecond
	clientRetryMax  = 2 * time.Second
	clientAttempts  = 14
)

// errTerminal wraps a response that retrying cannot fix — a 4xx other
// than 409/429. The worker surfaces it instead of burning attempts.
type errTerminal struct{ err error }

func (e errTerminal) Error() string { return e.err.Error() }
func (e errTerminal) Unwrap() error { return e.err }

// ErrLeaseLost is returned when the coordinator answers 409: this worker's
// lease on the slice is gone. The caller must drop the slice and let the
// next poll hand out whatever the coordinator still trusts it with —
// retrying would be a zombie fighting the rightful owner.
var ErrLeaseLost = errors.New("dist: lease lost")

// client is the worker's HTTP client for the coordinator's /dist surface:
// every call retries transient failures (network errors, 5xx, 429) with
// capped exponential backoff and seeded jitter, honours Retry-After when
// the coordinator sends one, and never retries 409 or other 4xx.
type client struct {
	base   string
	worker string
	http   *http.Client
	rng    *rand.Rand
}

func newClient(base, worker string, seed int64) *client {
	return &client{
		base:   base,
		worker: worker,
		http:   &http.Client{Timeout: 30 * time.Second},
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// backoff computes the delay before retry attempt (1-based), doubling from
// clientRetryBase, capped, plus up to 25% jitter.
func (cl *client) backoff(attempt int) time.Duration {
	d := clientRetryBase
	for i := 1; i < attempt && d < clientRetryMax; i++ {
		d *= 2
	}
	if d > clientRetryMax {
		d = clientRetryMax
	}
	return d + time.Duration(cl.rng.Int63n(int64(d/4)+1))
}

// sleep waits for d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do performs one request with retries. body may be nil; the response body
// is returned along with the response header.
func (cl *client) do(ctx context.Context, method, path string, query url.Values, body []byte) ([]byte, http.Header, error) {
	u := cl.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var lastErr error
	for attempt := 1; attempt <= clientAttempts; attempt++ {
		if attempt > 1 {
			if err := sleep(ctx, cl.backoff(attempt-1)); err != nil {
				return nil, nil, err
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		resp, err := cl.http.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		respBody, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusConflict:
			return nil, nil, fmt.Errorf("%w: %s %s: %s", ErrLeaseLost, method, path, bytes.TrimSpace(respBody))
		case resp.StatusCode == http.StatusTooManyRequests:
			lastErr = fmt.Errorf("dist: %s %s: 429", method, path)
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				if err := sleep(ctx, time.Duration(ra)*time.Second); err != nil {
					return nil, nil, err
				}
			}
			continue
		case resp.StatusCode >= 500:
			// A recovering coordinator answers 503 + Retry-After; honouring
			// it (in place of one backoff step) keeps the retry cadence
			// aligned with the recovery sweep instead of hammering it.
			lastErr = fmt.Errorf("dist: %s %s: %s", method, path, resp.Status)
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				if err := sleep(ctx, time.Duration(ra)*time.Second); err != nil {
					return nil, nil, err
				}
			}
			continue
		case resp.StatusCode >= 400:
			return nil, nil, errTerminal{fmt.Errorf("dist: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(respBody))}
		case readErr != nil:
			lastErr = fmt.Errorf("dist: %s %s: reading body: %w", method, path, readErr)
			continue
		}
		return respBody, resp.Header, nil
	}
	return nil, nil, fmt.Errorf("dist: %s %s: giving up after %d attempts: %w", method, path, clientAttempts, lastErr)
}

func (cl *client) workerQuery() url.Values {
	return url.Values{"worker": {cl.worker}}
}

func (cl *client) getSpec(ctx context.Context) (Spec, error) {
	body, _, err := cl.do(ctx, http.MethodGet, "/dist/spec", nil, nil)
	if err != nil {
		return Spec{}, err
	}
	var spec Spec
	if err := json.Unmarshal(body, &spec); err != nil {
		return Spec{}, fmt.Errorf("dist: decoding spec: %w", err)
	}
	return spec, nil
}

func (cl *client) poll(ctx context.Context) (pollResponse, error) {
	body, _, err := cl.do(ctx, http.MethodPost, "/dist/poll", cl.workerQuery(), nil)
	if err != nil {
		return pollResponse{}, err
	}
	var resp pollResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return pollResponse{}, fmt.Errorf("dist: decoding poll response: %w", err)
	}
	return resp, nil
}

func (cl *client) heartbeat(ctx context.Context) error {
	_, _, err := cl.do(ctx, http.MethodPost, "/dist/heartbeat", cl.workerQuery(), nil)
	return err
}

func (cl *client) putCheckpoint(ctx context.Context, slice, level int, body []byte) error {
	q := cl.workerQuery()
	q.Set("slice", strconv.Itoa(slice))
	q.Set("level", strconv.Itoa(level))
	_, _, err := cl.do(ctx, http.MethodPost, "/dist/checkpoint", q, body)
	return err
}

func (cl *client) getCheckpoint(ctx context.Context, slice int) (*SliceCheckpoint, error) {
	q := url.Values{"slice": {strconv.Itoa(slice)}}
	body, _, err := cl.do(ctx, http.MethodGet, "/dist/checkpoint", q, nil)
	if err != nil {
		return nil, err
	}
	return DecodeSliceCheckpoint(body)
}

func (cl *client) putChunk(ctx context.Context, body []byte) error {
	_, _, err := cl.do(ctx, http.MethodPost, "/dist/chunk", cl.workerQuery(), body)
	return err
}

func (cl *client) chunkSources(ctx context.Context, level, to int) ([]int, error) {
	q := url.Values{"level": {strconv.Itoa(level)}, "to": {strconv.Itoa(to)}}
	body, _, err := cl.do(ctx, http.MethodGet, "/dist/chunkset", q, nil)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Froms []int `json:"froms"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("dist: decoding chunkset: %w", err)
	}
	return resp.Froms, nil
}

// getChunk fetches and verifies one exchange chunk. A chunk that arrives
// torn or corrupted — DecodeFrontierChunk fails typed — is re-requested
// with the same capped backoff as a network failure: corruption on the
// wire is transient, the coordinator's stored copy was verified on upload.
func (cl *client) getChunk(ctx context.Context, level, from, to int, retried func()) ([]Entry, error) {
	q := url.Values{
		"level": {strconv.Itoa(level)},
		"from":  {strconv.Itoa(from)},
		"to":    {strconv.Itoa(to)},
	}
	var lastErr error
	for attempt := 1; attempt <= clientAttempts; attempt++ {
		if attempt > 1 {
			if retried != nil {
				retried()
			}
			if err := sleep(ctx, cl.backoff(attempt-1)); err != nil {
				return nil, err
			}
		}
		body, _, err := cl.do(ctx, http.MethodGet, "/dist/chunk", q, nil)
		if err != nil {
			return nil, err
		}
		entries, err := DecodeFrontierChunk(body, level, from, to)
		if err == nil {
			return entries, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dist: chunk level %d %d->%d still corrupt after %d fetches: %w",
		level, from, to, clientAttempts, lastErr)
}

func (cl *client) postExpanded(ctx context.Context, slice, level int, steps int64) error {
	q := cl.workerQuery()
	q.Set("slice", strconv.Itoa(slice))
	q.Set("level", strconv.Itoa(level))
	q.Set("steps", strconv.FormatInt(steps, 10))
	_, _, err := cl.do(ctx, http.MethodPost, "/dist/expanded", q, nil)
	return err
}

func (cl *client) postIngested(ctx context.Context, slice, level int, fresh int64, digest [2]uint64) error {
	q := cl.workerQuery()
	q.Set("slice", strconv.Itoa(slice))
	q.Set("level", strconv.Itoa(level))
	q.Set("fresh", strconv.FormatInt(fresh, 10))
	q.Set("digest0", strconv.FormatUint(digest[0], 16))
	q.Set("digest1", strconv.FormatUint(digest[1], 16))
	_, _, err := cl.do(ctx, http.MethodPost, "/dist/ingested", q, nil)
	return err
}

func (cl *client) getWitness(ctx context.Context) ([]byte, error) {
	body, _, err := cl.do(ctx, http.MethodGet, "/dist/witness", nil, nil)
	return body, err
}

// FetchSpec retrieves a coordinator's run description — what a shard
// worker needs before it can build the machine it will explore.
func FetchSpec(ctx context.Context, url string) (Spec, error) {
	return newClient(url, "spec-probe", 1).getSpec(ctx)
}
