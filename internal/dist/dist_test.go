package dist

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/model"
)

// testRun wires a coordinator behind a real HTTP server plus the machine
// and options every worker shares.
type testRun struct {
	spec  Spec
	coord *Coordinator
	srv   *httptest.Server
	root  model.Config
	procs []int
	opts  explore.Options
}

func newTestRun(t *testing.T, n, slices, maxDepth int, leaseMS int64) *testRun {
	t.Helper()
	m, opts, err := core.Machine(core.ProtocolDiskRace)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]model.Value, n)
	inputs[0] = model.Value("0")
	for i := 1; i < n; i++ {
		inputs[i] = model.Value("1")
	}
	root := model.NewConfig(m, inputs)
	procs := make([]int, n)
	for i := range procs {
		procs[i] = i
	}
	spec := Spec{
		Protocol:  core.ProtocolDiskRace,
		N:         n,
		Slices:    slices,
		MaxDepth:  maxDepth,
		LeaseMS:   leaseMS,
		FPVersion: explore.FingerprintVersion,
	}
	coord, err := NewCoordinator(spec, opts.Fingerprint(root), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return &testRun{spec: spec, coord: coord, srv: srv, root: root, procs: procs, opts: opts}
}

func (tr *testRun) worker(id string, seed int64, fault *faults.ShardFault) *Worker {
	return &Worker{
		ID:    id,
		URL:   tr.srv.URL,
		Root:  tr.root,
		Procs: tr.procs,
		Opts:  tr.opts,
		Fault: fault,
		Seed:  seed,
	}
}

// runWorkers runs the workers concurrently until the coordinator finishes
// and returns the distributed witness.
func (tr *testRun) runWorkers(t *testing.T, workers ...*Worker) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for i, w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %s: %v", workers[i].ID, err)
		}
	}
	select {
	case <-tr.coord.Done():
	default:
		t.Fatal("every worker returned but the run is not done")
	}
	witness, err := tr.coord.Witness()
	if err != nil {
		t.Fatal(err)
	}
	return witness
}

func (tr *testRun) sequential(t *testing.T) []byte {
	t.Helper()
	want, err := SequentialWitness(context.Background(), tr.spec, tr.root, tr.procs, tr.opts)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestDistributedMatchesSequential: three workers over three slices
// produce a witness byte-identical to the single-process explore.Reach
// reference.
func TestDistributedMatchesSequential(t *testing.T) {
	tr := newTestRun(t, 3, 3, 6, 5000)
	got := tr.runWorkers(t,
		tr.worker("w0", 1, nil), tr.worker("w1", 2, nil), tr.worker("w2", 3, nil))
	if want := tr.sequential(t); !bytes.Equal(got, want) {
		t.Fatalf("distributed witness differs from sequential:\n--- distributed\n%s--- sequential\n%s", got, want)
	}
}

// TestSingleWorkerOwnsAllSlices: one worker accumulates every slice over
// successive polls and still matches the reference.
func TestSingleWorkerOwnsAllSlices(t *testing.T) {
	tr := newTestRun(t, 3, 4, 5, 5000)
	got := tr.runWorkers(t, tr.worker("solo", 7, nil))
	if want := tr.sequential(t); !bytes.Equal(got, want) {
		t.Fatalf("distributed witness differs from sequential:\n--- distributed\n%s--- sequential\n%s", got, want)
	}
	for _, h := range tr.coord.ShardHealth() {
		if h.Worker != "solo" {
			t.Fatalf("slice %d owned by %q at the end", h.Slice, h.Worker)
		}
	}
}

// TestStallRecovery: a worker stalls past its lease mid-run; the survivor
// takes over its slices, rebuilds them from checkpoint + retained chunks,
// and the merged witness is still byte-identical to the reference. The
// reassignment must be visible in shard health.
func TestStallRecovery(t *testing.T) {
	tr := newTestRun(t, 3, 3, 6, 200)
	stall := &faults.ShardFault{Kind: "stall", Level: 2, Stall: 1200 * time.Millisecond}
	got := tr.runWorkers(t, tr.worker("steady", 11, nil), tr.worker("sleepy", 12, stall))
	if want := tr.sequential(t); !bytes.Equal(got, want) {
		t.Fatalf("witness after stall recovery differs:\n--- distributed\n%s--- sequential\n%s", got, want)
	}
	reassigns := 0
	for _, h := range tr.coord.ShardHealth() {
		reassigns += h.Reassigns
	}
	if reassigns == 0 {
		t.Fatal("stall past the lease caused no reassignment")
	}
}

// TestCorruptChunkRetry: the coordinator is scripted to serve corrupted
// bytes for the first chunk GETs. Workers must reject every corrupted copy
// (typed, never ingested) and re-request until a clean copy arrives; the
// witness still matches the reference.
func TestCorruptChunkRetry(t *testing.T) {
	tr := newTestRun(t, 3, 2, 5, 5000)
	inj := faults.NewOpInjector()
	inj.Fail("dist.chunk.get", 3, nil)
	tr.coord.SetFaults(inj)
	got := tr.runWorkers(t, tr.worker("w0", 21, nil), tr.worker("w1", 22, nil))
	if want := tr.sequential(t); !bytes.Equal(got, want) {
		t.Fatalf("witness after corrupt chunks differs:\n--- distributed\n%s--- sequential\n%s", got, want)
	}
	if inj.Hits("dist.chunk.get") < 3 {
		t.Fatalf("only %d chunk GETs hit the injector", inj.Hits("dist.chunk.get"))
	}
}

// TestIngestDoneSurvivesPhaseRegression: a healthy worker's ingest-done
// whose own embedded heartbeat lazily expires a dead peer — revoking the
// peer's slice, clearing its expand mark, and regressing the phase from
// ingest back to expand — must be accepted, not rejected as a terminal
// 400. The poster's result was computed from the level's complete retained
// chunk set and a redo reproduces it byte for byte; killing the survivor
// here would cascade the exact failure the leases exist to survive.
func TestIngestDoneSurvivesPhaseRegression(t *testing.T) {
	tr := newTestRun(t, 3, 2, 3, 60)
	c := tr.coord
	c.poll("live") // grants slice 0
	c.poll("dead") // grants slice 1
	if err := c.expanded("live", 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.expanded("dead", 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Let dead's lease lapse, then post live's ingest-done: the heartbeat
	// inside ingested() expires dead and regresses the phase to expand
	// before the phase check runs.
	time.Sleep(100 * time.Millisecond)
	if err := c.ingested("live", 0, 0, 2, explore.Fingerprint{1, 2}); err != nil {
		t.Fatalf("healthy worker's ingest-done rejected after phase regression: %v", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.slices[1].owner != "" || c.slices[1].expanded {
		t.Fatal("dead worker's slice was not revoked — the regression never happened")
	}
	if !c.slices[0].ingested {
		t.Fatal("accepted ingest-done did not mark the slice")
	}
}

// TestStaleIngestDoneAfterRegrant: an ingest-done whose slice was revoked
// and regranted (epoch bumped, marks cleared) since the result was
// computed gets 409 — the client maps it to ErrLeaseLost, so the worker
// drops the slice and rebuilds from the checkpoint instead of exiting.
func TestStaleIngestDoneAfterRegrant(t *testing.T) {
	tr := newTestRun(t, 3, 1, 3, 5000)
	ctx := context.Background()
	cl := newClient(tr.srv.URL, "w", 1)
	if _, err := cl.poll(ctx); err != nil {
		t.Fatal(err)
	}
	tr.coord.mu.Lock()
	tr.coord.revokeLocked(0)
	tr.coord.mu.Unlock()
	// Regrant to the same worker: same owner, new epoch, cleared marks.
	if _, err := cl.poll(ctx); err != nil {
		t.Fatal(err)
	}
	err := cl.postIngested(ctx, 0, 0, 1, explore.Fingerprint{})
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale ingest-done after regrant returned %v, want ErrLeaseLost", err)
	}
}

// TestCheckpointLevelMonotonic: a delayed duplicate checkpoint upload for
// an older level must not regress the stored recovery point — the newest
// checkpoint wins, and the stale post is acknowledged as a no-op.
func TestCheckpointLevelMonotonic(t *testing.T) {
	tr := newTestRun(t, 3, 1, 3, 5000)
	c := tr.coord
	c.poll("w")
	enc := func(level int) []byte {
		ck := SliceCheckpoint{Slice: 0, Level: level, FPVersion: explore.FingerprintVersion}
		body, err := ck.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	if err := c.putCheckpoint("w", 0, 1, enc(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.putCheckpoint("w", 0, 0, enc(0)); err != nil {
		t.Fatalf("delayed duplicate checkpoint rejected instead of ignored: %v", err)
	}
	body, level, err := c.getCheckpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if level != 1 || !bytes.Equal(body, enc(1)) {
		t.Fatalf("stored checkpoint regressed to level %d", level)
	}
}

// TestPostFromNonOwnerRejected: a zombie worker whose lease was revoked
// gets 409 on its posts and ErrLeaseLost from the client.
func TestPostFromNonOwnerRejected(t *testing.T) {
	tr := newTestRun(t, 3, 1, 3, 50)
	ctx := context.Background()
	zombie := newClient(tr.srv.URL, "zombie", 1)
	if _, err := zombie.poll(ctx); err != nil {
		t.Fatal(err)
	}
	// Let the lease lapse, then have another worker steal the slice.
	time.Sleep(120 * time.Millisecond)
	thief := newClient(tr.srv.URL, "thief", 2)
	if _, err := thief.poll(ctx); err != nil {
		t.Fatal(err)
	}
	err := zombie.postExpanded(ctx, 0, 0, 1)
	if err == nil {
		t.Fatal("zombie post accepted")
	}
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie post failed with %v, want ErrLeaseLost", err)
	}
}
