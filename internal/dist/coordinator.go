package dist

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Phase names of the per-level two-phase barrier.
const (
	phaseExpand = "expand"
	phaseIngest = "ingest"
	phaseDone   = "done"
)

// sliceInfo is the coordinator's book-keeping for one fingerprint slice.
type sliceInfo struct {
	owner     string // worker id, "" while unowned
	grantedAt time.Time

	// ckpt is the slice's newest checkpoint (segment bytes) and the level
	// it was taken at. Reassignment hands these to the new owner.
	ckpt      []byte
	ckptLevel int
	hasCkpt   bool
	everOwned bool
	epoch     int

	// Per-current-level barrier marks and stats. Posts are idempotent
	// overwrites: a redone expansion or ingest produces the same
	// deterministic values, so the last write is as good as the first.
	expanded bool
	ingested bool
	steps    int64
	fresh    int64
	digest   explore.Fingerprint

	reassigns int
}

// chunkKey addresses one exchange chunk.
type chunkKey struct{ level, from, to int }

// Coordinator owns the authoritative state of a distributed run: slice
// leases, the level barrier, retained exchange chunks and checkpoints, and
// the aggregated per-level witness stats. It runs no goroutines of its
// own — leases are expired lazily on every worker request — and its whole
// state sits behind one mutex, which the modest request rate (a handful of
// polls and posts per worker per level) never contends.
type Coordinator struct {
	spec   Spec
	rootFP explore.Fingerprint
	scope  *obs.Scope
	faults *faults.OpInjector

	mu      sync.Mutex
	workers map[string]time.Time // worker id -> last heard from
	slices  []sliceInfo
	level   int
	levels  []LevelStat
	steps   int64
	chunks  map[chunkKey][]byte
	done    bool
	witness []byte
	doneCh  chan struct{}

	// levelStart anchors the exchange-latency histogram: each chunk post
	// is observed as time-since-level-start, so the distribution shows how
	// long a level's frontier exchange actually takes (and a reassignment
	// mid-level shows up as a fat tail, not a lost sample).
	levelStart time.Time

	reassignTotal int64

	// Durability (S25). journal, when attached, records every accepted
	// mutation; replaying makes the apply paths journal-silent while
	// Recover feeds the WAL back through them. recovering gates the worker
	// surface 503 between AttachJournal finding prior state and Recover
	// finishing the sweep; chunk posts that land in that window are stashed
	// in pending (first write wins) and installed after the journal's own
	// copies. gen counts coordinator incarnations: each recovery bumps it
	// and rebases every slice epoch to gen<<20, so grants fenced before the
	// crash can never collide with post-restart epochs.
	journal    *Journal
	recovering bool
	replaying  bool
	pending    map[chunkKey][]byte
	gen        int
}

// ExchangeLatencyBoundsMicros buckets dist_exchange_us, the time from a
// level's start to each exchange-chunk arrival: sub-millisecond for
// in-memory test runs up to minutes for reassignment-delayed levels.
var ExchangeLatencyBoundsMicros = []int64{1000, 5000, 10000, 50000, 100000, 500000, 1000000, 5000000, 30000000, 120000000}

// NewCoordinator builds a coordinator for the run described by spec. root
// and opts must describe the same exploration every worker will run; the
// coordinator itself only ever fingerprints the root (level 0 is seeded
// here, before any worker exists).
func NewCoordinator(spec Spec, rootFP explore.Fingerprint, scope *obs.Scope) (*Coordinator, error) {
	if spec.Slices < 1 {
		return nil, fmt.Errorf("dist: %d slices", spec.Slices)
	}
	if spec.LeaseMS <= 0 {
		return nil, fmt.Errorf("dist: lease %dms", spec.LeaseMS)
	}
	if spec.FPVersion == 0 {
		spec.FPVersion = explore.FingerprintVersion
	}
	c := &Coordinator{
		spec:    spec,
		rootFP:  rootFP,
		scope:   scope,
		workers: make(map[string]time.Time),
		slices:  make([]sliceInfo, spec.Slices),
		levels:  []LevelStat{{Fresh: 1, Digest: rootFP}},
		chunks:  make(map[chunkKey][]byte),
		doneCh:  make(chan struct{}),

		levelStart: time.Now(),
	}
	scope.Gauge("dist_slices").Set(int64(spec.Slices))
	// An empty space (MaxDepth 0 is unbounded, so only a pathological
	// spec hits this) still needs a consistent start.
	if spec.MaxDepth < 0 {
		return nil, fmt.Errorf("dist: negative max depth")
	}
	return c, nil
}

// SetFaults attaches an operation-fault injector; the tests use it to
// corrupt served chunks ("dist.chunk.get") and prove the workers reject
// and re-request them.
func (c *Coordinator) SetFaults(inj *faults.OpInjector) { c.faults = inj }

// Spec returns the run description.
func (c *Coordinator) Spec() Spec { return c.spec }

// Done is closed when the run completes.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Witness returns the rendered witness, or an error while the run is still
// in flight.
func (c *Coordinator) Witness() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.done {
		return nil, fmt.Errorf("dist: run still at level %d (%s)", c.level, c.phaseLocked())
	}
	return c.witness, nil
}

// lease returns the lease duration.
func (c *Coordinator) lease() time.Duration {
	return time.Duration(c.spec.LeaseMS) * time.Millisecond
}

// phaseLocked derives the current phase from the barrier marks, so a
// reassignment that clears a slice's expand mark regresses the phase
// automatically and the redo is awaited like the original work.
func (c *Coordinator) phaseLocked() string {
	if c.done {
		return phaseDone
	}
	for i := range c.slices {
		if !c.slices[i].expanded {
			return phaseExpand
		}
	}
	return phaseIngest
}

// heartbeatLocked renews w's lease and expires everyone else's.
func (c *Coordinator) heartbeatLocked(w string, now time.Time) {
	c.workers[w] = now
	lease := c.lease()
	for id, seen := range c.workers {
		if id == w || now.Sub(seen) <= lease {
			continue
		}
		delete(c.workers, id)
		c.scope.Event("dist_lease_expired")
		for s := range c.slices {
			if c.slices[s].owner == id {
				c.revokeLocked(s)
			}
		}
	}
	c.scope.Gauge("dist_workers_live").Set(int64(len(c.workers)))
}

// revokeLocked returns a slice to the pool and clears its current-level
// barrier marks so the next owner redoes the level's work. Chunks the dead
// owner posted are kept: reposts overwrite them with identical bytes.
func (c *Coordinator) revokeLocked(s int) {
	sl := &c.slices[s]
	sl.owner = ""
	sl.expanded = false
	sl.ingested = false
	sl.steps = 0
	sl.fresh = 0
	sl.digest = explore.Fingerprint{}
}

// grantLocked hands at most one unowned slice to w. One per poll keeps the
// initial distribution spread across however many workers attach, while a
// lone worker still accumulates every slice over successive polls. A
// regrant of a slice that ever had an owner counts as a reassignment.
func (c *Coordinator) grantLocked(w string, now time.Time) {
	for s := range c.slices {
		sl := &c.slices[s]
		if sl.owner != "" {
			continue
		}
		if sl.everOwned {
			sl.reassigns++
			c.reassignTotal++
			c.scope.Counter("dist_reassigns").Add(1)
		}
		sl.owner = w
		sl.grantedAt = now
		sl.everOwned = true
		sl.epoch++
		c.scope.Event("dist_grant")
		return
	}
}

// pollSlice is one slice's entry in a poll response. Epoch fences grants:
// it bumps on every grant, so a worker that was silently revoked and later
// regranted the same slice (its local state possibly stale by then) sees
// the epoch change and rebuilds from the checkpoint instead of trusting
// memory. Expanded/Ingested are the coordinator's authoritative barrier
// marks — cleared on revocation, so the worker knows exactly what the
// current level still needs from it.
type pollSlice struct {
	Slice     int  `json:"slice"`
	Epoch     int  `json:"epoch"`
	CkptLevel int  `json:"ckpt_level"`
	HasCkpt   bool `json:"has_ckpt"`
	Expanded  bool `json:"expanded"`
	Ingested  bool `json:"ingested"`
}

// pollResponse is the authoritative answer to a worker poll: the barrier
// position and the full set of slices the worker currently leases.
type pollResponse struct {
	Level  int         `json:"level"`
	Phase  string      `json:"phase"`
	Done   bool        `json:"done"`
	Slices []pollSlice `json:"slices"`
}

// poll is a worker's heartbeat + work request.
func (c *Coordinator) poll(w string) pollResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heartbeatLocked(w, now)
	if !c.done {
		c.grantLocked(w, now)
	}
	resp := pollResponse{Level: c.level, Phase: c.phaseLocked(), Done: c.done}
	for s := range c.slices {
		if sl := &c.slices[s]; sl.owner == w {
			resp.Slices = append(resp.Slices, pollSlice{
				Slice:     s,
				Epoch:     sl.epoch,
				CkptLevel: sl.ckptLevel,
				HasCkpt:   sl.hasCkpt,
				Expanded:  sl.expanded,
				Ingested:  sl.ingested,
			})
		}
	}
	return resp
}

// heartbeat renews the worker's lease without granting work; workers call
// it from inside long expansions so a big level does not cost them their
// slices.
func (c *Coordinator) heartbeat(w string) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heartbeatLocked(w, now)
}

// errNotOwner is mapped to HTTP 409 by the handler: the poster's lease on
// the slice is gone (a zombie past its stall, or a worker racing a
// revocation). The worker drops the slice; the rightful owner's posts are
// the ones that count.
type errNotOwner struct{ slice int }

func (e errNotOwner) Error() string { return fmt.Sprintf("dist: not the owner of slice %d", e.slice) }

// errStale is also mapped to HTTP 409: the post comes from the slice's
// current owner but describes work from before a revoke+regrant cleared the
// slice's marks, so the poster's local state may predate its own regrant.
// Retrying verbatim cannot help, but the worker is healthy — it must drop
// the slice and rebuild from the checkpoint on its next poll, exactly the
// ErrLeaseLost path, never exit.
type errStale struct {
	slice int
	what  string
}

func (e errStale) Error() string {
	return fmt.Sprintf("dist: stale %s for slice %d, rebuild from checkpoint", e.what, e.slice)
}

// checkOwnerLocked validates w's lease on slice s.
func (c *Coordinator) checkOwnerLocked(w string, s int) error {
	if s < 0 || s >= len(c.slices) {
		return fmt.Errorf("dist: no slice %d", s)
	}
	if c.slices[s].owner != w {
		return errNotOwner{slice: s}
	}
	return nil
}

// putCheckpoint stores a slice's level checkpoint.
func (c *Coordinator) putCheckpoint(w string, s, level int, body []byte) error {
	// Validate before locking: a torn upload must never become the
	// recovery point.
	ck, err := DecodeSliceCheckpoint(body)
	if err != nil {
		return err
	}
	if ck.Slice != s || ck.Level != level {
		return fmt.Errorf("dist: checkpoint body is slice %d level %d, request says %d/%d", ck.Slice, ck.Level, s, level)
	}
	if ck.FPVersion != c.spec.FPVersion {
		return fmt.Errorf("dist: checkpoint fingerprints are v%d, run uses v%d", ck.FPVersion, c.spec.FPVersion)
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heartbeatLocked(w, now)
	if err := c.checkOwnerLocked(w, s); err != nil {
		return err
	}
	if !c.applyCheckpointLocked(s, level, body) {
		return nil
	}
	c.journal.append(journalRec{Tag: jrecCkpt, Slice: s, Level: level, Body: body})
	return nil
}

// applyCheckpointLocked stores a slice checkpoint if it advances the
// slice's recovery point, reporting whether it did. The stored checkpoint
// stays monotonic in level: the client retries on its request timeout
// while the original upload may still be applied afterwards, so a delayed
// duplicate can arrive after a newer level's checkpoint landed — storing
// it would regress the recovery point, and a reassignment while it is
// >= 2 levels behind the run would then be fatally unadoptable. Same-level
// posts carry identical bytes (the encoding is deterministic), so dropping
// them loses nothing either.
func (c *Coordinator) applyCheckpointLocked(s, level int, body []byte) bool {
	sl := &c.slices[s]
	if sl.hasCkpt && level <= sl.ckptLevel {
		return false
	}
	sl.ckpt = body
	sl.ckptLevel = level
	sl.hasCkpt = true
	c.scope.Counter("dist_ckpt_bytes").Add(int64(len(body)))
	return true
}

// getCheckpoint serves a slice's newest checkpoint to its (new) owner.
func (c *Coordinator) getCheckpoint(s int) ([]byte, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s < 0 || s >= len(c.slices) || !c.slices[s].hasCkpt {
		return nil, 0, fmt.Errorf("dist: no checkpoint for slice %d", s)
	}
	return c.slices[s].ckpt, c.slices[s].ckptLevel, nil
}

// putChunk verifies and stores one exchange chunk. The bytes are decoded
// on receipt — a torn or corrupted upload is rejected with a typed error
// and never stored, so readers can trust every stored chunk.
func (c *Coordinator) putChunk(w string, body []byte) error {
	h, raw, err := checkpoint.DecodeChunk(body)
	if err != nil {
		c.scope.Counter("dist_chunks_rejected").Add(1)
		return err
	}
	entries, err := DecodeEntries(raw)
	if err != nil {
		c.scope.Counter("dist_chunks_rejected").Add(1)
		return err
	}
	if h.Kind != chunkKind || len(entries) != h.Count {
		c.scope.Counter("dist_chunks_rejected").Add(1)
		return fmt.Errorf("dist: chunk kind %q count %d does not match %d entries", h.Kind, h.Count, len(entries))
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	key := chunkKey{level: h.Level, from: h.From, to: h.To}
	if c.recovering {
		// Recovery window: the bytes are already verified, but ownership
		// and the barrier position are unknown until the sweep finishes.
		// Stash the first copy of each chunk and answer idempotently —
		// Recover installs it only if the journal holds no copy (journaled
		// bytes win) and the chunk's level is still open.
		if _, ok := c.pending[key]; !ok {
			c.pending[key] = body
			c.scope.Counter("dist_chunks_pending").Add(1)
		}
		return nil
	}
	c.heartbeatLocked(w, now)
	if h.Level < c.level {
		// Delayed duplicate of a chunk for a closed level; the stored copy
		// (identical bytes) was already ingested. Idempotent — whoever owns
		// the slice now, the level's answer is already folded in.
		return nil
	}
	if h.Level != c.level {
		return fmt.Errorf("dist: chunk for level %d, run is at %d", h.Level, c.level)
	}
	if stored, ok := c.chunks[key]; ok && bytes.Equal(stored, body) {
		// Identical repost — a retry whose original landed, or a redo after
		// reassignment. First write won; idempotent regardless of who owns
		// the slice by now.
		return nil
	}
	if err := c.checkOwnerLocked(w, h.From); err != nil {
		return err
	}
	c.journal.append(journalRec{Tag: jrecChunk, Level: h.Level, From: h.From, To: h.To, Body: body})
	c.applyChunkLocked(key, body, now)
	return nil
}

// applyChunkLocked stores one verified exchange chunk.
func (c *Coordinator) applyChunkLocked(key chunkKey, body []byte, now time.Time) {
	c.chunks[key] = body
	c.scope.Counter("dist_chunks_posted").Add(1)
	c.scope.Counter("dist_chunk_bytes").Add(int64(len(body)))
	if !c.replaying {
		c.scope.Histogram("dist_exchange_us", ExchangeLatencyBoundsMicros).Observe(now.Sub(c.levelStart).Microseconds())
	}
}

// chunkSources lists the from-slices with a stored chunk addressed to
// slice `to` at the level.
func (c *Coordinator) chunkSources(level, to int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var froms []int
	for from := 0; from < len(c.slices); from++ {
		if _, ok := c.chunks[chunkKey{level: level, from: from, to: to}]; ok {
			froms = append(froms, from)
		}
	}
	return froms
}

// getChunk serves one stored chunk. The "dist.chunk.get" fault op, when
// scripted, serves a copy with one byte flipped — the wire-corruption the
// workers' verified decode must catch and retry past.
func (c *Coordinator) getChunk(level, from, to int) ([]byte, error) {
	c.mu.Lock()
	body, ok := c.chunks[chunkKey{level: level, from: from, to: to}]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dist: no chunk level %d %d->%d", level, from, to)
	}
	if err := c.faults.Hit("dist.chunk.get"); err != nil {
		mut := make([]byte, len(body))
		copy(mut, body)
		if len(mut) > 0 {
			mut[len(mut)/2] ^= 0x40
		}
		c.scope.Counter("dist_chunks_served_corrupt").Add(1)
		return mut, nil
	}
	return body, nil
}

// expanded records a slice's expand-done for the level, with the steps its
// expansion examined.
func (c *Coordinator) expanded(w string, s, level int, steps int64) error {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heartbeatLocked(w, now)
	if err := c.checkOwnerLocked(w, s); err != nil {
		return err
	}
	if level < c.level {
		// Delayed duplicate for a closed level; already counted. Idempotent.
		return nil
	}
	if level != c.level {
		return fmt.Errorf("dist: expand-done for level %d, run is at %d", level, c.level)
	}
	if sl := &c.slices[s]; sl.expanded && sl.steps == steps {
		return nil // duplicate — already applied and journaled
	}
	c.journal.append(journalRec{Tag: jrecExpanded, Slice: s, Level: level, Steps: steps})
	c.applyExpandedLocked(s, steps)
	return nil
}

// applyExpandedLocked marks a slice's expand-done for the current level.
func (c *Coordinator) applyExpandedLocked(s int, steps int64) {
	sl := &c.slices[s]
	sl.expanded = true
	sl.steps = steps
}

// ingested records a slice's ingest-done for the level: how many fresh
// configurations it accepted at depth level+1 and their XOR digest. When
// the last slice posts, the level advances.
func (c *Coordinator) ingested(w string, s, level int, fresh int64, digest explore.Fingerprint) error {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heartbeatLocked(w, now)
	if err := c.checkOwnerLocked(w, s); err != nil {
		return err
	}
	if level < c.level {
		// A delayed duplicate for a level that already closed; its original
		// was applied, or the slice was redone by a successor. Idempotent.
		return nil
	}
	if level != c.level {
		return fmt.Errorf("dist: ingest-done for level %d, run is at %d", level, c.level)
	}
	sl := &c.slices[s]
	if c.phaseLocked() != phaseIngest {
		// The heartbeat above may have just lazily expired a dead worker,
		// revoking its slices and clearing their expand marks — regressing
		// the phase from ingest back to expand while this post was in
		// flight. The post is still exactly right: the phase only reaches
		// ingest after every slice shipped its chunks, revocation retains
		// them, and a redone expansion reposts identical bytes, so the
		// result computed from that chunk set is the level's deterministic
		// answer. Accept it as long as the poster's own expand mark
		// survived; if the poster's own slice was revoked and regranted,
		// its cached result predates the regrant — 409 sends the worker
		// back to rebuild from the checkpoint instead of killing it.
		if !sl.expanded {
			return errStale{slice: s, what: "ingest-done"}
		}
	}
	if sl.ingested && sl.fresh == fresh && sl.digest == digest {
		return nil // duplicate — already applied and journaled
	}
	// Journal before applying: if this is the post that closes the level,
	// the apply snapshots and rotates the WAL, and the fallback-chain
	// invariant needs the closing record to be the old WAL's last entry.
	c.journal.append(journalRec{Tag: jrecIngested, Slice: s, Level: level, Fresh: fresh, Digest: digest})
	c.applyIngestedLocked(s, fresh, digest)
	return nil
}

// applyIngestedLocked marks a slice's ingest-done and closes the level if
// it was the last one outstanding.
func (c *Coordinator) applyIngestedLocked(s int, fresh int64, digest explore.Fingerprint) {
	sl := &c.slices[s]
	sl.ingested = true
	sl.fresh = fresh
	sl.digest = digest
	c.maybeAdvanceLocked()
}

// maybeAdvanceLocked closes the level once every slice has expanded and
// ingested: aggregate the stats, prune chunks older than the retention
// window (the previous level — a reassigned slice's checkpoint is never
// older than that), and either start the next level or finish the run.
func (c *Coordinator) maybeAdvanceLocked() {
	if c.done || c.phaseLocked() != phaseIngest {
		return
	}
	var fresh, steps int64
	var digest explore.Fingerprint
	for i := range c.slices {
		sl := &c.slices[i]
		if !sl.ingested {
			return
		}
		fresh += sl.fresh
		steps += sl.steps
		digest[0] ^= sl.digest[0]
		digest[1] ^= sl.digest[1]
	}
	c.steps += steps
	// A level that ingested nothing fresh is the run ending, not a level:
	// the sequential reference records no empty depth, and the witnesses
	// must match byte for byte.
	if fresh > 0 {
		c.levels = append(c.levels, LevelStat{Fresh: fresh, Digest: digest})
	}
	for i := range c.slices {
		sl := &c.slices[i]
		sl.expanded = false
		sl.ingested = false
		sl.steps = 0
		sl.fresh = 0
		sl.digest = explore.Fingerprint{}
	}
	next := c.level + 1
	c.pruneChunksLocked(next - 1)
	c.scope.Event("dist_level_done")
	if fresh == 0 || (c.spec.MaxDepth > 0 && next >= c.spec.MaxDepth) {
		c.done = true
		c.witness = RenderWitness(c.spec, c.levels, c.steps)
		// No reassignment can need a chunk now: workers see Done on their
		// next poll and exit without fetching. Free the lot — and keep the
		// final journal snapshot from carrying it.
		c.pruneChunksLocked(maxJournalInt)
		c.scope.Gauge("dist_done").Set(1)
		close(c.doneCh)
		c.snapshotLocked()
		return
	}
	c.level = next
	c.levelStart = time.Now()
	c.scope.Gauge("dist_level").Set(int64(next))
	c.snapshotLocked()
}

// pruneChunksLocked drops retained exchange chunks for levels below floor.
// The retention window {level-1, level} (floor = level-1) is exactly what
// a reassignment can still need: an adopted checkpoint is never older than
// the previous level, and its catch-up ingests that level's chunk set.
// Without the prune, chunk memory — and the journal snapshots carrying
// it — would grow with the full explored space instead of the frontier.
func (c *Coordinator) pruneChunksLocked(floor int) {
	pruned := 0
	for key := range c.chunks {
		if key.level < floor {
			delete(c.chunks, key)
			pruned++
		}
	}
	if pruned > 0 {
		c.scope.Counter("dist_chunks_pruned").Add(int64(pruned))
	}
}

// ShardHealth reports per-slice liveness for /progress: the owning worker,
// the slice's checkpoint level, its lease age, and how many times the
// slice has been reassigned. One endpoint diagnoses a stalled distributed
// run.
func (c *Coordinator) ShardHealth() []obs.ShardHealth {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	phase := c.phaseLocked()
	out := make([]obs.ShardHealth, len(c.slices))
	for s := range c.slices {
		sl := &c.slices[s]
		h := obs.ShardHealth{
			Slice:     s,
			Worker:    sl.owner,
			Level:     c.level,
			Phase:     phase,
			Reassigns: sl.reassigns,
		}
		if sl.owner != "" {
			if seen, ok := c.workers[sl.owner]; ok {
				h.LeaseAgeSec = now.Sub(seen).Seconds()
			}
		} else {
			h.LeaseAgeSec = -1
		}
		out[s] = h
	}
	return out
}
