package dist

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/faults"
)

// corruptNewestSnapshot flips a byte in the middle of the newest snapshot
// file, simulating at-rest corruption of the primary recovery source.
func corruptNewestSnapshot(t *testing.T, dir string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "state-*.ckpt"))
	if err != nil || len(names) < 2 {
		t.Fatalf("want >= 2 snapshots to corrupt one, have %v (%v)", names, err)
	}
	sort.Strings(names)
	path := names[len(names)-1]
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// attachJournal opens the journal at dir and wires it to tr's coordinator,
// running the recovery sweep to completion.
func (tr *testRun) attachJournal(t *testing.T, dir string, opener FileOpener) *Journal {
	t.Helper()
	j, err := OpenJournal(dir, JournalOptions{Opener: opener})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.coord.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	if err := tr.coord.Recover(); err != nil {
		t.Fatal(err)
	}
	return j
}

// runWorkersUntilLevel runs workers until the coordinator's barrier
// reaches the level, then cancels them — the in-process stand-in for a
// coordinator crash mid-run (the journal stops receiving appends at an
// arbitrary point inside a level).
func (tr *testRun) runWorkersUntilLevel(t *testing.T, level int, workers ...*Worker) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	go func() {
		for {
			if tr.coord.Status().Level >= level {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx) // ctx.Err() is the expected way out
		}()
	}
	wg.Wait()
	if st := tr.coord.Status(); st.Level < level {
		t.Fatalf("run stopped at level %d before reaching %d", st.Level, level)
	}
}

// TestRecoverMidRunWitnessIdentical is the tentpole's in-process proof: a
// journaled run is abandoned mid-level, a brand-new coordinator recovers
// from the journal directory at the exact level, fresh workers finish the
// run, and the merged witness is byte-identical to the sequential
// reference.
func TestRecoverMidRunWitnessIdentical(t *testing.T) {
	dir := t.TempDir()
	tr1 := newTestRun(t, 3, 3, 6, 5000)
	tr1.attachJournal(t, dir, nil)
	tr1.runWorkersUntilLevel(t, 2, tr1.worker("pre-a", 1, nil), tr1.worker("pre-b", 2, nil))
	st1 := tr1.coord.Status()
	tr1.srv.Close()

	tr2 := newTestRun(t, 3, 3, 6, 5000)
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Recovered() {
		t.Fatal("journal directory with a run in it recovered nothing")
	}
	if err := tr2.coord.AttachJournal(j2); err != nil {
		t.Fatal(err)
	}
	if !tr2.coord.Recovering() {
		t.Fatal("coordinator not in the recovery window after attaching recovered state")
	}
	if err := tr2.coord.Recover(); err != nil {
		t.Fatal(err)
	}
	st2 := tr2.coord.Status()
	if st2.Recovering {
		t.Fatal("still recovering after the sweep")
	}
	if st2.Level != st1.Level {
		t.Fatalf("recovered at level %d, crashed at %d", st2.Level, st1.Level)
	}
	if st2.Gen < 1 {
		t.Fatalf("recovery did not bump the generation: %+v", st2)
	}

	got := tr2.runWorkers(t, tr2.worker("post-a", 11, nil), tr2.worker("post-b", 12, nil))
	if want := tr2.sequential(t); !bytes.Equal(got, want) {
		t.Fatalf("witness after recovery differs:\n--- recovered\n%s--- sequential\n%s", got, want)
	}
}

// TestRecoverSurvivesSecondCrash: crash, recover, crash again mid-level,
// recover again — generations strictly increase and the final witness
// still matches. Exercises the snapshot chain across incarnations.
func TestRecoverSurvivesSecondCrash(t *testing.T) {
	dir := t.TempDir()
	tr1 := newTestRun(t, 3, 2, 6, 5000)
	tr1.attachJournal(t, dir, nil)
	tr1.runWorkersUntilLevel(t, 1, tr1.worker("a1", 1, nil))
	tr1.srv.Close()

	tr2 := newTestRun(t, 3, 2, 6, 5000)
	tr2.attachJournal(t, dir, nil)
	gen2 := tr2.coord.Status().Gen
	tr2.runWorkersUntilLevel(t, 2, tr2.worker("a2", 2, nil), tr2.worker("b2", 3, nil))
	tr2.srv.Close()

	tr3 := newTestRun(t, 3, 2, 6, 5000)
	tr3.attachJournal(t, dir, nil)
	if gen3 := tr3.coord.Status().Gen; gen3 <= gen2 {
		t.Fatalf("generation did not advance across crashes: %d then %d", gen2, gen3)
	}
	got := tr3.runWorkers(t, tr3.worker("a3", 4, nil))
	if want := tr3.sequential(t); !bytes.Equal(got, want) {
		t.Fatalf("witness after two recoveries differs:\n--- recovered\n%s--- sequential\n%s", got, want)
	}
}

// TestRecoverFinishedRun: restarting over the journal of a completed run
// comes back done immediately, with the identical witness re-rendered from
// the recovered stats.
func TestRecoverFinishedRun(t *testing.T) {
	dir := t.TempDir()
	tr1 := newTestRun(t, 3, 2, 5, 5000)
	tr1.attachJournal(t, dir, nil)
	want := tr1.runWorkers(t, tr1.worker("w", 5, nil))
	tr1.srv.Close()

	tr2 := newTestRun(t, 3, 2, 5, 5000)
	tr2.attachJournal(t, dir, nil)
	st := tr2.coord.Status()
	if !st.Done {
		t.Fatalf("recovered finished run not done: %+v", st)
	}
	select {
	case <-tr2.coord.Done():
	default:
		t.Fatal("done channel not closed after recovering a finished run")
	}
	got, err := tr2.coord.Witness()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("witness changed across restart:\n--- before\n%s--- after\n%s", want, got)
	}
}

// TestRecoveryWindowGatesAndStashes covers the recovery window's HTTP
// contract: worker endpoints answer 503 + Retry-After, liveness stays 200,
// readiness is 503, and chunk POSTs are stashed idempotently with the
// journaled copy winning over late reposts (the satellite-6 fix).
func TestRecoveryWindowGatesAndStashes(t *testing.T) {
	dir := t.TempDir()
	tr1 := newTestRun(t, 3, 2, 4, 5000)
	tr1.attachJournal(t, dir, nil)
	c1 := tr1.coord
	c1.poll("w")
	c1.poll("w") // w owns both slices at level 0
	entries := []Entry{{FP: explore.Fingerprint{7, 8}, Path: []uint32{1}}}
	journaled, err := EncodeFrontierChunk(0, 0, 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.putChunk("w", journaled); err != nil {
		t.Fatal(err)
	}
	tr1.srv.Close()

	// Restart into the recovery window: attach but do not recover yet.
	tr2 := newTestRun(t, 3, 2, 4, 5000)
	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.coord.AttachJournal(j2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tr2.coord.Handler())
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := get("/dist/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during recovery: %s", resp.Status)
	}
	if resp := get("/dist/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during recovery: %s", resp.Status)
	}
	pollResp, err := http.Post(srv.URL+"/dist/poll?worker=w", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	pollResp.Body.Close()
	if pollResp.StatusCode != http.StatusServiceUnavailable || pollResp.Header.Get("Retry-After") == "" {
		t.Fatalf("poll during recovery: %s, Retry-After %q", pollResp.Status, pollResp.Header.Get("Retry-After"))
	}

	// A delayed duplicate of the journaled chunk with different bytes (a
	// zombie's divergent repost) and a genuinely new chunk, both during
	// the window. Neither may 409; the first must lose to the journal.
	divergent, err := EncodeFrontierChunk(0, 0, 1, []Entry{{FP: explore.Fingerprint{9, 9}, Path: []uint32{2}}})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := EncodeFrontierChunk(0, 1, 0, []Entry{{FP: explore.Fingerprint{5, 6}, Path: []uint32{3}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range [][]byte{divergent, fresh, fresh} { // repeat: idempotent
		resp, err := http.Post(srv.URL+"/dist/chunk?worker=zombie", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("chunk POST during recovery window: %s", resp.Status)
		}
	}

	if err := tr2.coord.Recover(); err != nil {
		t.Fatal(err)
	}
	if resp := get("/dist/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery: %s", resp.Status)
	}
	got, err := tr2.coord.getChunk(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, journaled) {
		t.Fatal("divergent repost during the recovery window overwrote the journaled chunk")
	}
	stashed, err := tr2.coord.getChunk(0, 1, 0)
	if err != nil {
		t.Fatalf("chunk stashed during the recovery window was not installed: %v", err)
	}
	if !bytes.Equal(stashed, fresh) {
		t.Fatal("stashed chunk bytes mangled")
	}
}

// TestRecoverEpochsFenceZombies: epochs granted after a restart sit above
// the new generation's base, so nothing a pre-crash grant issued can ever
// collide with them.
func TestRecoverEpochsFenceZombies(t *testing.T) {
	dir := t.TempDir()
	tr1 := newTestRun(t, 3, 1, 4, 5000)
	tr1.attachJournal(t, dir, nil)
	pre := tr1.coord.poll("w")
	if len(pre.Slices) != 1 {
		t.Fatalf("no grant: %+v", pre)
	}
	tr1.srv.Close()

	tr2 := newTestRun(t, 3, 1, 4, 5000)
	tr2.attachJournal(t, dir, nil)
	post := tr2.coord.poll("w")
	if len(post.Slices) != 1 {
		t.Fatalf("no grant after recovery: %+v", post)
	}
	gen := tr2.coord.Status().Gen
	if base := gen << epochGenShift; post.Slices[0].Epoch <= base || post.Slices[0].Epoch <= pre.Slices[0].Epoch {
		t.Fatalf("post-recovery epoch %d (gen %d, base %d) does not fence pre-crash epoch %d",
			post.Slices[0].Epoch, gen, base, pre.Slices[0].Epoch)
	}
}

// TestAttachJournalSpecMismatch: a journal directory from a different run
// is refused loudly — silently exploring the wrong space under a recovered
// level would corrupt the witness.
func TestAttachJournalSpecMismatch(t *testing.T) {
	dir := t.TempDir()
	tr1 := newTestRun(t, 3, 2, 4, 5000)
	tr1.attachJournal(t, dir, nil)
	tr1.srv.Close()

	tr2 := newTestRun(t, 3, 3, 4, 5000) // different slice count
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.coord.AttachJournal(j); err == nil {
		t.Fatal("journal for a different spec attached without error")
	}
}

// TestRecoverWithDegradedJournal: a journal on a "failing disk" (every WAL
// file hits ENOSPC almost immediately) degrades to memory-only without
// disturbing the barrier — the run completes and the witness matches. The
// snapshots are left healthy so rotation keeps re-arming the WAL; the test
// proves the degradation path is invisible to correctness either way.
func TestRecoverWithDegradedJournal(t *testing.T) {
	dir := t.TempDir()
	tr := newTestRun(t, 3, 2, 5, 5000)
	opener := func(path string, flag int) (faults.File, error) {
		if len(path) > 4 && path[len(path)-4:] == ".seg" {
			return (&faults.FSFault{Budget: 16}).Opener()(path, flag)
		}
		return faults.OpenOS(path, flag)
	}
	tr.attachJournal(t, dir, opener)
	got := tr.runWorkers(t, tr.worker("w", 9, nil))
	if want := tr.sequential(t); !bytes.Equal(got, want) {
		t.Fatalf("witness with degraded journal differs:\n--- distributed\n%s--- sequential\n%s", got, want)
	}
}

// TestRecoverFromSnapshotCorruption: corrupt the newest snapshot after a
// mid-run crash; the coordinator falls back to the previous snapshot plus
// both WALs and still finishes with the identical witness.
func TestRecoverFromSnapshotCorruption(t *testing.T) {
	dir := t.TempDir()
	tr1 := newTestRun(t, 3, 2, 6, 5000)
	tr1.attachJournal(t, dir, nil)
	tr1.runWorkersUntilLevel(t, 2, tr1.worker("a", 1, nil), tr1.worker("b", 2, nil))
	tr1.srv.Close()

	corruptNewestSnapshot(t, dir)

	tr2 := newTestRun(t, 3, 2, 6, 5000)
	tr2.attachJournal(t, dir, nil)
	got := tr2.runWorkers(t, tr2.worker("c", 3, nil))
	if want := tr2.sequential(t); !bytes.Equal(got, want) {
		t.Fatalf("witness after snapshot-corruption fallback differs:\n--- recovered\n%s--- sequential\n%s", got, want)
	}
}
