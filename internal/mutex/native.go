package mutex

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// TournamentLock is the tournament of two-process Peterson locks as a real
// goroutine lock: the same algorithm the simulator measures in the
// state-change cost model (Tournament), built on sync/atomic with
// runtime.Gosched busy-waiting. Unlike the simulated twin it is meant to be
// *used* — each of n registered processes may Lock/Unlock with its own pid.
//
// Peterson's algorithm requires sequential consistency; Go's atomic
// operations provide it (all atomic ops observe a single total order), so
// flag/turn reads and writes below are all atomic.
type TournamentLock struct {
	n, height int
	// nodes[i] is heap node i+1 (root = node 1); each node holds
	// flag[0], flag[1] and turn for its two-process Peterson instance.
	nodes []lockNode
}

type lockNode struct {
	flag [2]atomic.Int32
	turn atomic.Int32
}

// NewTournamentLock returns a lock for n processes with ids 0..n-1.
func NewTournamentLock(n int) *TournamentLock {
	if n < 1 {
		panic(fmt.Sprintf("mutex: need n >= 1, got %d", n))
	}
	h := levels(n)
	return &TournamentLock{
		n:      n,
		height: h,
		nodes:  make([]lockNode, (1<<h)-1+1), // 1-based heap, root at 1
	}
}

// Lock acquires the critical section for process pid.
func (l *TournamentLock) Lock(pid int) {
	if pid < 0 || pid >= l.n {
		panic(fmt.Sprintf("mutex: pid %d out of range [0,%d)", pid, l.n))
	}
	pos := (1 << l.height) + pid
	for level := 0; level < l.height; level++ {
		side := int32(pos & 1)
		node := &l.nodes[pos>>1]
		node.flag[side].Store(1)
		node.turn.Store(side)
		for node.flag[1-side].Load() == 1 && node.turn.Load() == side {
			runtime.Gosched()
		}
		pos >>= 1
	}
}

// Unlock releases the critical section for process pid. It must be called
// by the pid that holds the lock.
func (l *TournamentLock) Unlock(pid int) {
	if pid < 0 || pid >= l.n {
		panic(fmt.Sprintf("mutex: pid %d out of range [0,%d)", pid, l.n))
	}
	// Release the nodes in root-to-leaf order (the reverse of acquire
	// works too; releases are independent flag clears).
	pos := (1 << l.height) + pid
	path := make([]int, 0, l.height)
	for level := 0; level < l.height; level++ {
		path = append(path, pos)
		pos >>= 1
	}
	for i := len(path) - 1; i >= 0; i-- {
		p := path[i]
		side := int32(p & 1)
		l.nodes[p>>1].flag[side].Store(0)
	}
}
