package mutex

import (
	"sync"
	"testing"
)

// TestTournamentLockMutualExclusion increments an unprotected counter under
// the lock from many goroutines; any exclusion failure loses updates.
func TestTournamentLockMutualExclusion(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 13} {
		l := NewTournamentLock(n)
		const rounds = 400
		counter := 0
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					l.Lock(pid)
					counter++
					l.Unlock(pid)
				}
			}(pid)
		}
		wg.Wait()
		if counter != n*rounds {
			t.Fatalf("n=%d: counter = %d, want %d (lost updates => exclusion violated)",
				n, counter, n*rounds)
		}
	}
}

// TestTournamentLockHandoff checks strict alternation is possible: two
// processes can pass the lock back and forth without deadlock.
func TestTournamentLockHandoff(t *testing.T) {
	l := NewTournamentLock(2)
	turns := make(chan int, 64)
	var wg sync.WaitGroup
	for pid := 0; pid < 2; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				l.Lock(pid)
				turns <- pid
				l.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	close(turns)
	count := 0
	for range turns {
		count++
	}
	if count != 64 {
		t.Fatalf("%d critical sections, want 64", count)
	}
}

// TestTournamentLockBadPid covers the guard rails.
func TestTournamentLockBadPid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range pid")
		}
	}()
	NewTournamentLock(2).Lock(2)
}

// BenchmarkTournamentLock measures native lock throughput under full
// contention (supplementary to the E6 cost tables).
func BenchmarkTournamentLock(b *testing.B) {
	const n = 4
	l := NewTournamentLock(n)
	var wg sync.WaitGroup
	per := b.N/n + 1
	b.ResetTimer()
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Lock(pid)
				l.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
}
