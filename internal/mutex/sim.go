// Package mutex reproduces part II of the provided text (Fan and Lynch,
// "An Ω(n log n) Lower Bound on the Cost of Mutual Exclusion"): mutual
// exclusion algorithms from registers, executed under a deterministic
// lockstep scheduler that accounts cost in the state-change model — a
// memory access is charged only if it changes the process's state, i.e.
// re-reading an unchanged register (busy-waiting) is free, which is the
// deck's simplification of the cache-coherent model.
//
// Two algorithms are provided: Peterson's n-process level algorithm (the
// deck's example, Θ(n³) total work in canonical executions under this cost
// measure is its upper bound; we measure its actual growth) and a
// tournament of two-process Peterson locks, whose canonical-execution cost
// is O(n log n) — matching the Fan-Lynch lower bound's order, like the
// Yang-Anderson algorithm the paper cites as tight.
package mutex

import (
	"fmt"
)

// Algorithm is a mutual exclusion algorithm: Run drives one process through
// a single acquire / critical-section / release cycle using the memory m.
// Implementations busy-wait by re-issuing reads; the simulator charges
// accesses per the state-change cost model.
type Algorithm interface {
	Name() string
	// Registers returns how many shared registers the algorithm needs
	// for n processes.
	Registers(n int) int
	// Run performs one entry of process pid. It must call m.CS(pid)
	// exactly once between its trying and exit sections.
	Run(m *Memory, pid int)
}

// Memory is the shared memory handed to algorithm processes. Its methods
// must only be called by the goroutine currently holding the scheduler's
// grant — the Sim enforces this by construction.
type Memory struct {
	sim *Sim
	n   int
}

// N returns the number of processes in the run.
func (m *Memory) N() int { return m.n }

// Read returns the contents of register reg, charging pid per the cost
// model. Each call consumes one scheduler step, so busy-wait loops yield.
func (m *Memory) Read(pid, reg int) int64 {
	m.sim.await(pid)
	v := m.sim.regs[reg]
	if last, seen := m.sim.lastSeen[pid][reg]; !seen || last != v {
		m.sim.cost[pid]++
		m.sim.lastSeen[pid][reg] = v
	}
	m.sim.reads++
	m.sim.release(pid)
	return v
}

// Write stores v into register reg. Writes are always charged (they
// invalidate remote caches in the underlying cache-coherent intuition).
func (m *Memory) Write(pid, reg int, v int64) {
	m.sim.await(pid)
	m.sim.regs[reg] = v
	m.sim.cost[pid]++
	m.sim.lastSeen[pid][reg] = v
	m.sim.writes++
	m.sim.release(pid)
}

// CS marks the critical section of pid: the simulator verifies mutual
// exclusion and records the entry order.
func (m *Memory) CS(pid int) {
	m.sim.await(pid)
	m.sim.inCS++
	if m.sim.inCS != 1 {
		m.sim.violation = fmt.Errorf("mutual exclusion violated: %d processes in CS (p%d entering)",
			m.sim.inCS, pid)
	}
	m.sim.order = append(m.sim.order, pid)
	m.sim.release(pid)

	m.sim.await(pid)
	m.sim.inCS--
	m.sim.release(pid)
}

// Sim executes a canonical run (each of n processes enters the critical
// section exactly once) under a deterministic schedule.
type Sim struct {
	n        int
	regs     []int64
	lastSeen []map[int]int64
	cost     []int64
	reads    int64
	writes   int64
	inCS     int
	order    []int
	// violation records a mutual exclusion failure observed mid-run.
	violation error

	grant []chan struct{}
	done  chan int
}

// Result reports a canonical execution's outcome.
type Result struct {
	Algorithm string
	N         int
	// Cost is the state-change cost summed over all processes.
	Cost int64
	// Reads and Writes count all memory accesses (the uncharged,
	// busy-waiting ones included).
	Reads, Writes int64
	// Order is the critical-section entry order.
	Order []int
}

// String renders one row of the experiment table.
func (r Result) String() string {
	return fmt.Sprintf("%s n=%d: state-change cost=%d (accesses: %d reads, %d writes)",
		r.Algorithm, r.N, r.Cost, r.Reads, r.Writes)
}

// Schedule chooses the next process to grant a step to. It receives the set
// of currently runnable processes (true = still running) and the step
// number, and returns a pid. The round-robin schedule is the canonical
// adversary of the deck's experiments.
type Schedule func(runnable []bool, step int) int

// RoundRobin grants steps to runnable processes in cyclic order.
func RoundRobin() Schedule {
	next := 0
	return func(runnable []bool, _ int) int {
		for {
			pid := next % len(runnable)
			next++
			if runnable[pid] {
				return pid
			}
		}
	}
}

// Sequential runs each process to completion in pid order: the contention-
// free baseline.
func Sequential() Schedule {
	return func(runnable []bool, _ int) int {
		for pid, ok := range runnable {
			if ok {
				return pid
			}
		}
		return 0
	}
}

// Run executes one canonical execution of the algorithm under the schedule.
func Run(alg Algorithm, n int, sched Schedule) (Result, error) {
	s := &Sim{
		n:        n,
		regs:     make([]int64, alg.Registers(n)),
		lastSeen: make([]map[int]int64, n),
		cost:     make([]int64, n),
		grant:    make([]chan struct{}, n),
		done:     make(chan int),
	}
	for i := range s.lastSeen {
		s.lastSeen[i] = make(map[int]int64)
		s.grant[i] = make(chan struct{})
	}
	mem := &Memory{sim: s, n: n}

	for pid := 0; pid < n; pid++ {
		go func(pid int) {
			alg.Run(mem, pid)
			s.await(pid)
			// Signal completion by reporting pid through done with
			// a closed grant channel dance: mark via negative pid.
			s.doneFor(pid)
		}(pid)
	}

	runnable := make([]bool, n)
	for i := range runnable {
		runnable[i] = true
	}
	remaining := n
	const maxSteps = 50_000_000 // deadlock guard far above any measured run
	for step := 0; remaining > 0; step++ {
		if step >= maxSteps {
			return Result{}, fmt.Errorf("%s n=%d: no completion within %d steps (deadlock or starvation)",
				alg.Name(), n, maxSteps)
		}
		pid := sched(runnable, step)
		s.grant[pid] <- struct{}{}
		res := <-s.done
		if res < 0 {
			runnable[-res-1] = false
			remaining--
		}
	}

	if s.violation != nil {
		return Result{}, s.violation
	}
	if len(s.order) != n {
		return Result{}, fmt.Errorf("canonical execution: %d CS entries, want %d", len(s.order), n)
	}
	var total int64
	for _, c := range s.cost {
		total += c
	}
	return Result{
		Algorithm: alg.Name(),
		N:         n,
		Cost:      total,
		Reads:     s.reads,
		Writes:    s.writes,
		Order:     s.order,
	}, nil
}

func (s *Sim) await(pid int)   { <-s.grant[pid] }
func (s *Sim) release(pid int) { s.done <- pid }
func (s *Sim) doneFor(pid int) { s.done <- -pid - 1 }

// InOrder runs each process to completion following the given permutation:
// the canonical execution whose critical-section order is exactly perm.
func InOrder(perm []int) Schedule {
	at := 0
	return func(runnable []bool, _ int) int {
		for at < len(perm) && !runnable[perm[at]] {
			at++
		}
		if at < len(perm) {
			return perm[at]
		}
		// All permutation entries finished; fall back (unreachable for
		// well-formed runs).
		for pid, ok := range runnable {
			if ok {
				return pid
			}
		}
		return 0
	}
}
