package mutex

// Peterson is Peterson's n-process level-based mutual exclusion algorithm,
// exactly as listed in the provided text (deck part II): a process climbs
// n-1 levels, at each level publishing its level, registering as the
// level's waiter, and busy-waiting until either another process displaces
// it as waiter or no other process is at its level or higher. Total work in
// canonical executions is O(n³) — the deck's motivating gap against the
// Ω(n log n) lower bound.
//
// Register layout: level[0..n-1] (holding current level + 1, so the zero
// value means "not trying", i.e. the deck's -1 shifted by one) followed by
// waiting[0..n-2].
type Peterson struct{}

// Name implements Algorithm.
func (Peterson) Name() string { return "peterson" }

// Registers implements Algorithm: n level slots + n-1 waiting slots.
func (Peterson) Registers(n int) int { return 2*n - 1 }

// Run implements Algorithm.
func (Peterson) Run(m *Memory, pid int) {
	n := m.N()
	level := func(i int) int { return i }
	waiting := func(l int) int { return n + l }

	for l := 0; l < n-1; l++ {
		m.Write(pid, level(pid), int64(l)+1)
		m.Write(pid, waiting(l), int64(pid))
		for {
			if m.Read(pid, waiting(l)) != int64(pid) {
				break
			}
			higher := false
			for k := 0; k < n; k++ {
				if k == pid {
					continue
				}
				if m.Read(pid, level(k)) >= int64(l)+1 {
					higher = true
					break
				}
			}
			if !higher {
				break
			}
		}
	}
	m.CS(pid)
	m.Write(pid, level(pid), 0)
}
