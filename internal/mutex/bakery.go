package mutex

// Bakery is Lamport's bakery algorithm: the classic first-come-first-served
// mutual exclusion from single-writer registers. A process picks a ticket
// one above every ticket it sees, then waits out every process that is
// still choosing or holds a smaller (ticket, id) pair. It completes the
// deck's part II line-up: Peterson (the listed example), the tournament
// (the n log n shape) and bakery (the FCFS classic) measured side by side
// in the state-change cost model.
//
// Register layout: choosing[0..n-1] then number[0..n-1].
type Bakery struct{}

// Name implements Algorithm.
func (Bakery) Name() string { return "bakery" }

// Registers implements Algorithm.
func (Bakery) Registers(n int) int { return 2 * n }

// Run implements Algorithm.
func (Bakery) Run(m *Memory, pid int) {
	n := m.N()
	choosing := func(i int) int { return i }
	number := func(i int) int { return n + i }

	// Doorway: pick a ticket greater than everything visible.
	m.Write(pid, choosing(pid), 1)
	var maxTicket int64
	for j := 0; j < n; j++ {
		if t := m.Read(pid, number(j)); t > maxTicket {
			maxTicket = t
		}
	}
	m.Write(pid, number(pid), maxTicket+1)
	m.Write(pid, choosing(pid), 0)

	// Wait out everyone with priority.
	for j := 0; j < n; j++ {
		if j == pid {
			continue
		}
		for m.Read(pid, choosing(j)) == 1 {
		}
		for {
			t := m.Read(pid, number(j))
			if t == 0 {
				break
			}
			mine := m.Read(pid, number(pid))
			if t > mine || (t == mine && j > pid) {
				break
			}
		}
	}

	m.CS(pid)
	m.Write(pid, number(pid), 0)
}
