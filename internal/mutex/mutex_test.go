package mutex

import (
	"math/rand"
	"testing"
)

// Random returns a seeded random schedule (for safety fuzzing).
func Random(seed int64) Schedule {
	rng := rand.New(rand.NewSource(seed))
	return func(runnable []bool, _ int) int {
		for {
			pid := rng.Intn(len(runnable))
			if runnable[pid] {
				return pid
			}
		}
	}
}

// TestMutualExclusionSafety drives both algorithms under round-robin,
// sequential and many random schedules; the simulator flags any two
// processes in the critical section simultaneously.
func TestMutualExclusionSafety(t *testing.T) {
	algs := []Algorithm{Peterson{}, Tournament{}}
	for _, alg := range algs {
		for _, n := range []int{2, 3, 4, 7, 8} {
			if _, err := Run(alg, n, RoundRobin()); err != nil {
				t.Fatalf("%s n=%d round-robin: %v", alg.Name(), n, err)
			}
			if _, err := Run(alg, n, Sequential()); err != nil {
				t.Fatalf("%s n=%d sequential: %v", alg.Name(), n, err)
			}
			for seed := int64(0); seed < 25; seed++ {
				if _, err := Run(alg, n, Random(seed)); err != nil {
					t.Fatalf("%s n=%d random(%d): %v", alg.Name(), n, seed, err)
				}
			}
		}
	}
}

// TestCanonicalEntryCount checks every process enters exactly once.
func TestCanonicalEntryCount(t *testing.T) {
	res, err := Run(Tournament{}, 8, RoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, pid := range res.Order {
		if seen[pid] {
			t.Fatalf("p%d entered the CS twice: %v", pid, res.Order)
		}
		seen[pid] = true
	}
	if len(seen) != 8 {
		t.Fatalf("%d distinct entrants, want 8", len(seen))
	}
}

// TestCostGrowthShape is experiment E6's assertion: under the canonical
// round-robin schedule the tournament's state-change cost grows like
// n log n while Peterson's grows strictly faster (superquadratic in n at
// these sizes). We check the ratio tournament/(n log n) stays bounded while
// peterson/(n log n) keeps growing.
func TestCostGrowthShape(t *testing.T) {
	type row struct {
		n                    int
		peterson, tournament int64
	}
	var rows []row
	for _, n := range []int{4, 8, 16, 32} {
		p, err := Run(Peterson{}, n, RoundRobin())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Run(Tournament{}, n, RoundRobin())
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row{n: n, peterson: p.Cost, tournament: tr.Cost})
		t.Logf("n=%2d: peterson=%6d tournament=%5d", n, p.Cost, tr.Cost)
	}
	// Tournament: cost / (n log2 n) bounded (allow a generous constant).
	for _, r := range rows {
		nlogn := float64(r.n) * log2(float64(r.n))
		if ratio := float64(r.tournament) / nlogn; ratio > 12 {
			t.Fatalf("tournament cost %d at n=%d: ratio %.1f exceeds O(n log n) budget",
				r.tournament, r.n, ratio)
		}
	}
	// Peterson grows superlinearly relative to n log n: the normalized
	// cost at n=32 must exceed the one at n=4 by a clear factor.
	first := float64(rows[0].peterson) / (float64(rows[0].n) * log2(float64(rows[0].n)))
	last := float64(rows[len(rows)-1].peterson) / (float64(rows[len(rows)-1].n) * log2(float64(rows[len(rows)-1].n)))
	if last < 3*first {
		t.Fatalf("peterson normalized cost did not grow (first %.1f, last %.1f): expected superlinear gap",
			first, last)
	}
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}

// TestFanLynchLowerBoundShape checks the lower-bound side: no run of either
// algorithm beats log2(n!) state changes, the information-theoretic floor
// of the Fan-Lynch argument (processes must collectively learn the CS
// order).
func TestFanLynchLowerBoundShape(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		floor := int64(log2Factorial(n))
		for _, alg := range []Algorithm{Peterson{}, Tournament{}} {
			res, err := Run(alg, n, RoundRobin())
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost < floor {
				t.Fatalf("%s n=%d: cost %d below the information floor log2(n!)=%d",
					alg.Name(), n, res.Cost, floor)
			}
		}
	}
}

func log2Factorial(n int) float64 {
	sum := 0.0
	for i := 2; i <= n; i++ {
		sum += log2(float64(i))
	}
	return sum
}

// TestBakerySafety drives the bakery algorithm through the same schedule
// battery as the other algorithms.
func TestBakerySafety(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		if _, err := Run(Bakery{}, n, RoundRobin()); err != nil {
			t.Fatalf("n=%d round-robin: %v", n, err)
		}
		if _, err := Run(Bakery{}, n, Sequential()); err != nil {
			t.Fatalf("n=%d sequential: %v", n, err)
		}
		for seed := int64(0); seed < 25; seed++ {
			if _, err := Run(Bakery{}, n, Random(seed)); err != nil {
				t.Fatalf("n=%d random(%d): %v", n, seed, err)
			}
		}
	}
}

// TestBakeryFCFS: under the sequential schedule, CS order follows pid order
// (tickets are handed out first-come-first-served).
func TestBakeryFCFS(t *testing.T) {
	res, err := Run(Bakery{}, 5, Sequential())
	if err != nil {
		t.Fatal(err)
	}
	for i, pid := range res.Order {
		if pid != i {
			t.Fatalf("sequential CS order %v not FCFS", res.Order)
		}
	}
}

// TestBakeryCostShape: bakery's state-change cost under round-robin sits
// between the tournament's n log n and Peterson's superquadratic growth
// (its doorway alone reads n registers per entry, so Ω(n²) total).
func TestBakeryCostShape(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		b, err := Run(Bakery{}, n, RoundRobin())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Run(Tournament{}, n, RoundRobin())
		if err != nil {
			t.Fatal(err)
		}
		if n >= 16 && b.Cost <= tr.Cost {
			t.Fatalf("n=%d: bakery cost %d not above tournament %d", n, b.Cost, tr.Cost)
		}
		floor := int64(n) * int64(n) / 2 // doorway scans alone
		if b.Cost < floor {
			t.Fatalf("n=%d: bakery cost %d below its doorway floor %d", n, b.Cost, floor)
		}
		t.Logf("n=%2d: bakery=%6d tournament=%5d", n, b.Cost, tr.Cost)
	}
}

// TestInOrderRealisesEveryPermutation: the permutation scheduler actually
// realises arbitrary CS orders for every algorithm.
func TestInOrderRealisesEveryPermutation(t *testing.T) {
	perms := [][]int{{2, 0, 1}, {1, 2, 0}, {0, 1, 2}}
	for _, alg := range []Algorithm{Peterson{}, Tournament{}, Bakery{}} {
		for _, perm := range perms {
			res, err := Run(alg, 3, InOrder(perm))
			if err != nil {
				t.Fatalf("%s %v: %v", alg.Name(), perm, err)
			}
			for i := range perm {
				if res.Order[i] != perm[i] {
					t.Fatalf("%s: order %v, want %v", alg.Name(), res.Order, perm)
				}
			}
		}
	}
}

// TestRegisterCounts pins the declared register footprints.
func TestRegisterCounts(t *testing.T) {
	cases := []struct {
		alg  Algorithm
		n    int
		want int
	}{
		{Peterson{}, 4, 7},    // n levels + n-1 waiting
		{Bakery{}, 4, 8},      // choosing + number
		{Tournament{}, 4, 9},  // 3 per internal node, 3 nodes
		{Tournament{}, 5, 21}, // next power of two: 7 nodes
	}
	for _, tc := range cases {
		if got := tc.alg.Registers(tc.n); got != tc.want {
			t.Fatalf("%s.Registers(%d) = %d, want %d", tc.alg.Name(), tc.n, got, tc.want)
		}
	}
}
