package mutex

// Tournament is a binary tree of two-process Peterson locks: process pid
// enters at a leaf and climbs log₂(n) internal nodes to the root, playing
// the classic two-process algorithm at each node against whoever arrives
// from the sibling subtree. In the state-change cost model a canonical
// execution costs O(n log n) — the order of the Fan-Lynch lower bound, for
// which the deck cites Yang and Anderson's algorithm as tight; the
// tournament exhibits the same asymptotics because busy-wait re-reads of
// unchanged registers are free in this model.
//
// Register layout per internal node: flag[0], flag[1], turn.
type Tournament struct{}

// Name implements Algorithm.
func (Tournament) Name() string { return "tournament" }

// Registers implements Algorithm: 3 registers per internal node of a
// binary tree with levels(n) levels.
func (Tournament) Registers(n int) int {
	return 3 * ((1 << levels(n)) - 1)
}

// levels returns ⌈log₂ n⌉, the number of rounds a process plays.
func levels(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// Run implements Algorithm.
func (Tournament) Run(m *Memory, pid int) {
	n := m.N()
	h := levels(n)
	// Nodes are heap-indexed: root 1, children 2i and 2i+1. A process
	// starts at leaf position (1<<h)+pid and at each step plays at the
	// parent node, as the left (0) or right (1) contender by parity.
	pos := (1 << h) + pid
	type played struct{ node, side int }
	path := make([]played, 0, h)
	for level := 0; level < h; level++ {
		side := pos & 1
		node := pos >> 1
		lockAcquire(m, pid, node, side)
		path = append(path, played{node: node, side: side})
		pos = node
	}
	m.CS(pid)
	for i := len(path) - 1; i >= 0; i-- {
		lockRelease(m, pid, path[i].node, path[i].side)
	}
}

// reg computes the register index for a node's slot (0,1 = flags, 2 = turn).
// Node indices are 1-based heap positions; internal nodes occupy 1..2^h-1.
func reg(node, slot int) int { return 3*(node-1) + slot }

// lockAcquire plays two-process Peterson at a node as contender side.
func lockAcquire(m *Memory, pid, node, side int) {
	m.Write(pid, reg(node, side), 1)
	m.Write(pid, reg(node, 2), int64(side))
	for m.Read(pid, reg(node, 1-side)) == 1 && m.Read(pid, reg(node, 2)) == int64(side) {
	}
}

// lockRelease exits the node's lock.
func lockRelease(m *Memory, pid, node, side int) {
	m.Write(pid, reg(node, side), 0)
}
