package checkpoint

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// segmentMagic opens every segment file: a human-greppable tag plus a
// format version byte and a newline so `head -c8` identifies the file.
const segmentMagic = "SBCKPT\x01\n"

// maxRecordLen bounds a single record's payload. It exists purely so a
// corrupt length prefix fails fast as ErrCorrupt instead of attempting a
// multi-exabyte allocation; real snapshots stay far below it.
const maxRecordLen = 1 << 32

// Writer appends checksummed records to a segment stream:
//
//	[uvarint payload length][payload][sha256(payload), 32 bytes]
//
// The stream itself carries no trailer; a cleanly terminated file simply
// ends after a record's checksum. Torn tails (crash mid-record) surface as
// ErrCorrupt on read, which is why whole files are published only via
// WriteFileAtomic.
type Writer struct {
	w     io.Writer
	bytes int64
}

// NewWriter starts a segment stream on w by emitting the magic header.
func NewWriter(w io.Writer) (*Writer, error) {
	sw := &Writer{w: w}
	if err := sw.write([]byte(segmentMagic)); err != nil {
		return nil, err
	}
	return sw, nil
}

// NewAppendWriter continues an existing segment stream on w without
// re-emitting the magic header. The caller is expected to have validated
// the stream's header and intact prefix via ScanSegment and positioned w
// at the end of that prefix — the append-only ledger's reopen path.
func NewAppendWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

func (sw *Writer) write(p []byte) error {
	n, err := sw.w.Write(p)
	sw.bytes += int64(n)
	if err != nil {
		return fmt.Errorf("checkpoint: segment write: %w", err)
	}
	return nil
}

// Append writes one record.
func (sw *Writer) Append(payload []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if err := sw.write(lenBuf[:n]); err != nil {
		return err
	}
	if err := sw.write(payload); err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	return sw.write(sum[:])
}

// Bytes returns the total bytes written so far, header included.
func (sw *Writer) Bytes() int64 { return sw.bytes }

// segReader buffers a segment stream while tracking the byte offset of
// everything consumed so far, which is what lets ScanSegment report where
// the intact prefix of a torn file ends.
type segReader struct {
	br  *bufio.Reader
	off int64
}

func (s *segReader) Read(p []byte) (int, error) {
	n, err := s.br.Read(p)
	s.off += int64(n)
	return n, err
}

func (s *segReader) ReadByte() (byte, error) {
	b, err := s.br.ReadByte()
	if err == nil {
		s.off++
	}
	return b, err
}

// readRecords decodes a segment stream record by record. It returns the
// records of the longest intact prefix plus the stream offset where that
// prefix ends; err is nil only when the stream terminated cleanly at a
// record boundary. A header failure returns offset 0.
func readRecords(r io.Reader) (records [][]byte, validOff int64, err error) {
	sr := &segReader{br: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(sr, magic); err != nil {
		return nil, 0, corruptf("segment header (%v)", err)
	}
	if string(magic) != segmentMagic {
		return nil, 0, corruptf("segment magic %q", magic)
	}
	validOff = sr.off
	for {
		length, err := binary.ReadUvarint(sr)
		if err == io.EOF {
			return records, validOff, nil
		}
		if err != nil {
			return records, validOff, corruptf("record %d length (%v)", len(records), err)
		}
		if length > maxRecordLen {
			return records, validOff, corruptf("record %d length %d exceeds limit", len(records), length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(sr, payload); err != nil {
			return records, validOff, corruptf("record %d payload (%v)", len(records), err)
		}
		var sum [sha256.Size]byte
		if _, err := io.ReadFull(sr, sum[:]); err != nil {
			return records, validOff, corruptf("record %d checksum (%v)", len(records), err)
		}
		if sha256.Sum256(payload) != sum {
			return records, validOff, corruptf("record %d checksum mismatch", len(records))
		}
		records = append(records, payload)
		validOff = sr.off
	}
}

// ReadSegment reads a whole segment stream, validating the magic and every
// record checksum. Any malformation — zero-length file, bad magic,
// truncated length/payload/checksum, checksum mismatch — is reported as an
// error wrapping ErrCorrupt; a partial prefix of records is never returned.
func ReadSegment(r io.Reader) ([][]byte, error) {
	records, _, err := readRecords(r)
	if err != nil {
		return nil, err
	}
	return records, nil
}

// ScanSegment reads a segment stream like ReadSegment but tolerates a torn
// tail (a crash mid-append): it returns every record of the longest intact
// prefix plus the byte offset where that prefix ends, so an append-mode
// caller can truncate the file there and keep going. tailErr is nil when
// the stream ended cleanly at a record boundary and otherwise wraps
// ErrCorrupt describing the first malformation; the returned records and
// offset are valid either way. A missing or bad magic header yields no
// records and offset 0 — such a file has no intact prefix to keep.
func ScanSegment(r io.Reader) (records [][]byte, validOff int64, tailErr error) {
	return readRecords(r)
}

// ReadSegmentFile reads and validates the segment file at path.
func ReadSegmentFile(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadSegment(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// WriteFileAtomic publishes a file crash-safely: the write callback
// produces the content into a temp file in the target directory, the temp
// file is fsynced and closed, atomically renamed over path, and the
// directory is fsynced so the rename itself is durable. A crash at any
// point leaves either the previous file or the complete new one under
// path — never a torn intermediate. Returns the number of bytes written.
func WriteFileAtomic(path string, write func(io.Writer) (int64, error)) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	n, err := write(tmp)
	if err != nil {
		cleanup()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, fmt.Errorf("checkpoint: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("checkpoint: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("checkpoint: rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return n, err
	}
	return n, nil
}

// syncDir fsyncs a directory so a just-completed rename survives power
// loss. Filesystems that refuse to sync directories (some network mounts)
// degrade to rename-only atomicity, which is still torn-write safe.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("checkpoint: fsync dir %s: %w", dir, err)
	}
	return nil
}
