package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// TestChunkRoundTrip pins the exchange-chunk framing.
func TestChunkRoundTrip(t *testing.T) {
	h := ChunkHeader{Kind: "frontier", Level: 3, From: 1, To: 2, Count: 7}
	body := []byte("opaque frontier entries")
	data, err := EncodeChunk(h, body)
	if err != nil {
		t.Fatal(err)
	}
	gotH, gotBody, err := DecodeChunk(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		t.Fatalf("header %+v, want %+v", gotH, h)
	}
	if !bytes.Equal(gotBody, body) {
		t.Fatalf("body %q, want %q", gotBody, body)
	}
}

// TestChunkBitFlip flips every bit of an encoded chunk and requires every
// flip to fail DecodeChunk with ErrCorrupt — a corrupted exchange chunk
// must never be partially ingested by a shard worker.
func TestChunkBitFlip(t *testing.T) {
	data, err := EncodeChunk(ChunkHeader{Kind: "frontier", Level: 1, From: 0, To: 1, Count: 2}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	for byteIdx := range data {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(data)
			mut[byteIdx] ^= 1 << bit
			if _, _, err := DecodeChunk(mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip byte %d bit %d: err = %v, want ErrCorrupt", byteIdx, bit, err)
			}
		}
	}
}

// TestChunkTornTail truncates the chunk at every length; every prefix must
// fail typed.
func TestChunkTornTail(t *testing.T) {
	data, err := EncodeChunk(ChunkHeader{Kind: "frontier", Level: 2, From: 2, To: 0, Count: 1}, []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := DecodeChunk(data[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}
