package checkpoint

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// fuzz seeds: a real segment and a real snapshot give the mutator
// structure to chew on.
func validSegmentBytes() []byte {
	var buf bytes.Buffer
	sw, _ := NewWriter(&buf)
	for _, rec := range sampleSnapshot(3).encodeRecords() {
		sw.Append(rec)
	}
	return buf.Bytes()
}

// FuzzReadSegment is satellite coverage for the segment decoder: arbitrary
// bytes — truncated, bit-flipped, hostile lengths — must either decode to
// records or fail with ErrCorrupt. No panics, no other error class, no
// giant allocations, and whatever decodes must re-encode to an equivalent
// stream (the decoder accepts nothing the writer couldn't have produced).
func FuzzReadSegment(f *testing.F) {
	valid := validSegmentBytes()
	f.Add([]byte{})
	f.Add([]byte(segmentMagic))
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(segmentMagic)+1])
	hostile := append([]byte(segmentMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := ReadSegment(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		sw, werr := NewWriter(&buf)
		if werr != nil {
			t.Fatal(werr)
		}
		for _, rec := range records {
			if err := sw.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		back, err := ReadSegment(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded accepted stream rejected: %v", err)
		}
		if len(back) != len(records) {
			t.Fatalf("re-encode changed record count: %d vs %d", len(back), len(records))
		}
	})
}

// FuzzDecodeSnapshot attacks the record-level decoder beneath the checksum
// layer: a mutated record must decode cleanly or fail ErrCorrupt — never
// panic, never return a snapshot that does not survive a re-encode
// roundtrip (no silent partial loads).
func FuzzDecodeSnapshot(f *testing.F) {
	for _, rec := range sampleSnapshot(3).encodeRecords() {
		f.Add(rec)
	}
	f.Add([]byte{})
	f.Add([]byte{secMeta})
	f.Add([]byte{secQuery, 0xFF, 0xFF, 0xFF})
	meta := encodeMeta(&Meta{Protocol: "p", N: 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, records := range [][][]byte{
			{data},
			{meta, data},
		} {
			snap, err := DecodeSnapshot(records)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("non-ErrCorrupt failure: %v", err)
				}
				continue
			}
			back, err := DecodeSnapshot(snap.encodeRecords())
			if err != nil {
				t.Fatalf("accepted snapshot does not re-decode: %v", err)
			}
			if !reflect.DeepEqual(back, snap) {
				t.Fatalf("re-encode roundtrip drifted:\n got %+v\nwant %+v", back, snap)
			}
		}
	})
}
