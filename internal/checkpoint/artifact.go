package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteArtifact publishes a witness artifact (rendered chain, DOT graph)
// crash-safely and pairs it with a "<path>.sha256" sidecar in sha256sum(1)
// format, so both VerifyArtifact and a plain `sha256sum -c` can attest the
// bytes. The artifact itself stays byte-for-byte the rendered payload —
// no embedded header — which keeps golden-file comparisons trivial.
func WriteArtifact(path string, payload []byte) error {
	if _, err := WriteFileAtomic(path, func(w io.Writer) (int64, error) {
		n, err := w.Write(payload)
		return int64(n), err
	}); err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	line := fmt.Sprintf("%s  %s\n", hex.EncodeToString(sum[:]), filepath.Base(path))
	_, err := WriteFileAtomic(path+".sha256", func(w io.Writer) (int64, error) {
		n, err := io.WriteString(w, line)
		return int64(n), err
	})
	return err
}

// VerifyArtifact re-hashes the artifact at path against its sidecar and
// returns an ErrCorrupt-wrapping error on any mismatch, malformed sidecar,
// or missing file.
func VerifyArtifact(path string) error {
	payload, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: artifact: %w", err)
	}
	sidecar, err := os.ReadFile(path + ".sha256")
	if err != nil {
		return fmt.Errorf("checkpoint: artifact sidecar: %w", err)
	}
	fields := strings.Fields(string(sidecar))
	if len(fields) < 1 || len(fields[0]) != hex.EncodedLen(sha256.Size) {
		return corruptf("artifact sidecar %s.sha256 malformed", path)
	}
	sum := sha256.Sum256(payload)
	if !strings.EqualFold(fields[0], hex.EncodeToString(sum[:])) {
		return corruptf("artifact %s does not match recorded digest", path)
	}
	return nil
}
