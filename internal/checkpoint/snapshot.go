package checkpoint

// The snapshot schema. Everything is expressed in plain integers and
// strings so this package stays import-free of the engine packages; the
// owners of the real types (internal/valency for memo entries,
// internal/explore for frontiers) convert at their boundary.

// Section tags: the first byte of every record in a snapshot segment.
const (
	secMeta  = 1
	secMemo  = 2
	secQuery = 3
)

// Decoding bounds: a corrupt count decodes to at most these before being
// rejected, so corruption cannot force huge allocations. They sit far above
// anything a real run produces.
const (
	maxStrLen    = 1 << 24
	maxCount     = 1 << 31
	maxPathLen   = 1 << 26
	maxValueList = 1 << 8
)

// Move is one step of an execution path: a process id plus the coin
// outcome observed, empty for deterministic steps (the plain twin of
// model.Move).
type Move struct {
	Pid  int
	Coin string
}

// Meta identifies a snapshot and the run it belongs to. Resume refuses a
// snapshot whose Protocol, N or MaxConfigs disagree with the live run:
// fingerprints only mean the same canonical keys under identical
// exploration options.
type Meta struct {
	// Protocol and N identify the construction.
	Protocol string
	N        int
	// MaxConfigs is the per-query exploration cap of the run (0 = engine
	// default); memo fingerprints are only portable between runs with the
	// same cap.
	MaxConfigs int
	// Stage is the adversary proof stage current at save time (the lemma
	// the resumed run re-enters live once the memo fast-forward runs dry).
	Stage string
	// Seq increases by one per snapshot of a run; resume continues it.
	Seq uint64
	// WrittenUnixNano is the save wall-clock time.
	WrittenUnixNano int64
	// FPVersion is explore.FingerprintVersion at save time. Fingerprints
	// from a different hash function mean nothing to this run, so resume
	// refuses a mismatch. (Snapshots predating this field fail to decode
	// at all — the appended field makes them ErrCorrupt — which is the
	// intended migration: hash v1 files cannot be resumed under v2.)
	FPVersion int
}

// VerdictRec is one memoised valency verdict: the decidable value set of
// one (configuration fingerprint, process set) query, with one witness path
// per decidable value.
type VerdictRec struct {
	FP      [2]uint64
	Pids    uint64
	Values  []string
	Witness [][]Move // aligned with Values
}

// SoloRec is one memoised solo-termination answer: either a deciding path
// and value, or a definite refutation (Err non-empty).
type SoloRec struct {
	FP   [2]uint64
	Pid  int
	Err  string
	Val  string
	Path []Move
}

// MemoData is the exported valency memo.
type MemoData struct {
	Verdicts []VerdictRec
	Solo     []SoloRec
}

// Node is one retained exploration node: parent id, BFS depth and the
// connecting move (the plain twin of explore's node record).
type Node struct {
	Parent int
	Depth  int
	Move   Move
}

// Found is one consensus value discovered by the in-flight search, with
// the node id of its witness configuration.
type Found struct {
	Value string
	ID    int
}

// QueryData freezes one in-flight exhaustive valency query at a BFS level
// boundary: enough to re-enter the search at that level instead of level 0.
type QueryData struct {
	// FP and Pids key the query exactly as the valency memo does;
	// MaxConfigs is the effective cap of this particular search (probe
	// budgets shrink it below Meta.MaxConfigs).
	FP         [2]uint64
	Pids       uint64
	MaxConfigs int
	// Depth is the BFS depth of the frontier below; Count, Steps and
	// PeakFrontier are the search counters at the boundary.
	Depth        int
	Count        int
	Steps        int
	PeakFrontier int
	// Nodes is the full parent/move forest (witness paths replay from it),
	// Frontier the node ids awaiting expansion in deterministic order, and
	// Fingerprints the visited set.
	Nodes        []Node
	Frontier     []int
	Fingerprints [][2]uint64
	// Found records the values the search has already discovered.
	Found []Found
}

// Snapshot is one complete checkpoint: run identity, the valency memo, and
// optionally the in-flight query.
type Snapshot struct {
	Meta  Meta
	Memo  *MemoData
	Query *QueryData
}

// encodeRecords serialises the snapshot into segment records.
func (s *Snapshot) encodeRecords() [][]byte {
	records := [][]byte{encodeMeta(&s.Meta)}
	if s.Memo != nil {
		records = append(records, encodeMemo(s.Memo))
	}
	if s.Query != nil {
		records = append(records, encodeQuery(s.Query))
	}
	return records
}

// DecodeSnapshot rebuilds a snapshot from segment records. It requires
// exactly one meta section and rejects duplicates, unknown sections and
// malformed fields as ErrCorrupt.
func DecodeSnapshot(records [][]byte) (*Snapshot, error) {
	s := &Snapshot{}
	seenMeta := false
	for i, rec := range records {
		if len(rec) == 0 {
			return nil, corruptf("record %d is empty", i)
		}
		tag, body := rec[0], rec[1:]
		switch tag {
		case secMeta:
			if seenMeta {
				return nil, corruptf("duplicate meta section")
			}
			meta, err := decodeMeta(body)
			if err != nil {
				return nil, err
			}
			s.Meta, seenMeta = *meta, true
		case secMemo:
			if s.Memo != nil {
				return nil, corruptf("duplicate memo section")
			}
			memo, err := decodeMemo(body)
			if err != nil {
				return nil, err
			}
			s.Memo = memo
		case secQuery:
			if s.Query != nil {
				return nil, corruptf("duplicate query section")
			}
			q, err := decodeQuery(body)
			if err != nil {
				return nil, err
			}
			s.Query = q
		default:
			return nil, corruptf("record %d has unknown section tag %d", i, tag)
		}
	}
	if !seenMeta {
		return nil, corruptf("snapshot has no meta section")
	}
	return s, nil
}

func encodeMeta(m *Meta) []byte {
	e := &enc{buf: []byte{secMeta}}
	e.str(m.Protocol)
	e.int(m.N)
	e.int(m.MaxConfigs)
	e.str(m.Stage)
	e.uint(m.Seq)
	e.uint(uint64(m.WrittenUnixNano))
	e.int(m.FPVersion)
	return e.buf
}

func decodeMeta(body []byte) (*Meta, error) {
	d := &dec{data: body}
	m := &Meta{
		Protocol:   d.str("meta protocol", maxStrLen),
		N:          d.intn("meta n", maxCount),
		MaxConfigs: d.intn("meta max configs", maxCount),
		Stage:      d.str("meta stage", maxStrLen),
		Seq:        d.uint("meta seq"),
	}
	m.WrittenUnixNano = int64(d.uint("meta written"))
	m.FPVersion = d.intn("meta fp version", maxCount)
	if err := d.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeMove(e *enc, m Move) {
	e.int(m.Pid)
	e.str(m.Coin)
}

func decodeMove(d *dec) Move {
	return Move{Pid: d.intn("move pid", maxCount), Coin: d.str("move coin", maxStrLen)}
}

func encodePath(e *enc, p []Move) {
	e.int(len(p))
	for _, m := range p {
		encodeMove(e, m)
	}
}

func decodePath(d *dec) []Move {
	n := d.intn("path length", maxPathLen)
	if d.err != nil || n == 0 {
		// nil for the empty path, so encode/decode roundtrips preserve
		// deep equality (the encoding cannot tell nil from empty).
		return nil
	}
	p := make([]Move, 0, min(n, 1024))
	for i := 0; i < n && d.err == nil; i++ {
		p = append(p, decodeMove(d))
	}
	return p
}

func encodeMemo(m *MemoData) []byte {
	e := &enc{buf: []byte{secMemo}}
	e.int(len(m.Verdicts))
	for _, v := range m.Verdicts {
		e.uint(v.FP[0])
		e.uint(v.FP[1])
		e.uint(v.Pids)
		e.int(len(v.Values))
		for i, val := range v.Values {
			e.str(val)
			encodePath(e, v.Witness[i])
		}
	}
	e.int(len(m.Solo))
	for _, s := range m.Solo {
		e.uint(s.FP[0])
		e.uint(s.FP[1])
		e.int(s.Pid)
		e.str(s.Err)
		e.str(s.Val)
		encodePath(e, s.Path)
	}
	return e.buf
}

func decodeMemo(body []byte) (*MemoData, error) {
	d := &dec{data: body}
	m := &MemoData{}
	nv := d.intn("memo verdict count", maxCount)
	for i := 0; i < nv && d.err == nil; i++ {
		v := VerdictRec{FP: [2]uint64{d.uint("verdict fp0"), d.uint("verdict fp1")}, Pids: d.uint("verdict pids")}
		nvals := d.intn("verdict value count", maxValueList)
		for j := 0; j < nvals && d.err == nil; j++ {
			v.Values = append(v.Values, d.str("verdict value", maxStrLen))
			v.Witness = append(v.Witness, decodePath(d))
		}
		m.Verdicts = append(m.Verdicts, v)
	}
	ns := d.intn("memo solo count", maxCount)
	for i := 0; i < ns && d.err == nil; i++ {
		m.Solo = append(m.Solo, SoloRec{
			FP:   [2]uint64{d.uint("solo fp0"), d.uint("solo fp1")},
			Pid:  d.intn("solo pid", maxCount),
			Err:  d.str("solo err", maxStrLen),
			Val:  d.str("solo val", maxStrLen),
			Path: decodePath(d),
		})
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeQuery(q *QueryData) []byte {
	e := &enc{buf: []byte{secQuery}}
	e.uint(q.FP[0])
	e.uint(q.FP[1])
	e.uint(q.Pids)
	e.int(q.MaxConfigs)
	e.int(q.Depth)
	e.int(q.Count)
	e.int(q.Steps)
	e.int(q.PeakFrontier)
	e.int(len(q.Nodes))
	for _, n := range q.Nodes {
		e.int(n.Parent)
		e.int(n.Depth)
		encodeMove(e, n.Move)
	}
	e.int(len(q.Frontier))
	for _, id := range q.Frontier {
		e.int(id)
	}
	e.int(len(q.Fingerprints))
	for _, fp := range q.Fingerprints {
		e.uint(fp[0])
		e.uint(fp[1])
	}
	e.int(len(q.Found))
	for _, f := range q.Found {
		e.str(f.Value)
		e.int(f.ID)
	}
	return e.buf
}

func decodeQuery(body []byte) (*QueryData, error) {
	d := &dec{data: body}
	q := &QueryData{
		FP:           [2]uint64{d.uint("query fp0"), d.uint("query fp1")},
		Pids:         d.uint("query pids"),
		MaxConfigs:   d.intn("query max configs", maxCount),
		Depth:        d.intn("query depth", maxCount),
		Count:        d.intn("query count", maxCount),
		Steps:        d.intn("query steps", 1<<62),
		PeakFrontier: d.intn("query peak frontier", maxCount),
	}
	nn := d.intn("query node count", maxCount)
	for i := 0; i < nn && d.err == nil; i++ {
		q.Nodes = append(q.Nodes, Node{
			Parent: d.intn("node parent", maxCount),
			Depth:  d.intn("node depth", maxCount),
			Move:   decodeMove(d),
		})
	}
	nf := d.intn("query frontier count", maxCount)
	for i := 0; i < nf && d.err == nil; i++ {
		q.Frontier = append(q.Frontier, d.intn("frontier id", maxCount))
	}
	nfp := d.intn("query fingerprint count", maxCount)
	for i := 0; i < nfp && d.err == nil; i++ {
		q.Fingerprints = append(q.Fingerprints, [2]uint64{d.uint("fp0"), d.uint("fp1")})
	}
	nfound := d.intn("query found count", maxValueList)
	for i := 0; i < nfound && d.err == nil; i++ {
		q.Found = append(q.Found, Found{Value: d.str("found value", maxStrLen), ID: d.intn("found id", maxCount)})
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	// Internal consistency: frontier ids and found ids must reference
	// nodes, and node parents must precede their children.
	for i, n := range q.Nodes {
		if n.Parent >= len(q.Nodes) || (i > 0 && n.Parent >= i) {
			return nil, corruptf("node %d has out-of-order parent %d", i, n.Parent)
		}
	}
	for _, id := range q.Frontier {
		if id >= len(q.Nodes) {
			return nil, corruptf("frontier id %d beyond %d nodes", id, len(q.Nodes))
		}
	}
	for _, f := range q.Found {
		if f.ID >= len(q.Nodes) {
			return nil, corruptf("found id %d beyond %d nodes", f.ID, len(q.Nodes))
		}
	}
	return q, nil
}
