package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// sampleSnapshot exercises every section and field of the schema.
func sampleSnapshot(seq uint64) *Snapshot {
	return &Snapshot{
		Meta: Meta{
			Protocol: "diskrace", N: 3, MaxConfigs: 1 << 21,
			Stage: "lemma 4: covering round 2", Seq: seq, WrittenUnixNano: 1700000000,
		},
		Memo: &MemoData{
			Verdicts: []VerdictRec{
				{FP: [2]uint64{1, 2}, Pids: 0b011, Values: []string{"0", "1"},
					Witness: [][]Move{{{Pid: 0, Coin: ""}}, {{Pid: 1, Coin: "H"}, {Pid: 0, Coin: ""}}}},
				{FP: [2]uint64{3, 4}, Pids: 0b111, Values: []string{"1"}, Witness: [][]Move{nil}},
			},
			Solo: []SoloRec{
				{FP: [2]uint64{5, 6}, Pid: 2, Val: "1", Path: []Move{{Pid: 2}}},
				{FP: [2]uint64{7, 8}, Pid: 0, Err: "solo run cycles"},
			},
		},
		Query: &QueryData{
			FP: [2]uint64{9, 10}, Pids: 0b101, MaxConfigs: 4096,
			Depth: 3, Count: 4, Steps: 17, PeakFrontier: 3,
			Nodes: []Node{
				{Parent: 0, Depth: 0},
				{Parent: 0, Depth: 1, Move: Move{Pid: 0}},
				{Parent: 0, Depth: 1, Move: Move{Pid: 2, Coin: "T"}},
				{Parent: 1, Depth: 2, Move: Move{Pid: 2}},
			},
			Frontier:     []int{2, 3},
			Fingerprints: [][2]uint64{{11, 12}, {13, 14}},
			Found:        []Found{{Value: "0", ID: 3}},
		},
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	records := [][]byte{[]byte("alpha"), {}, []byte("gamma")}
	for _, rec := range records {
		if err := sw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Bytes() != int64(buf.Len()) {
		t.Fatalf("Bytes() = %d, buffer holds %d", sw.Bytes(), buf.Len())
	}
	got, err := ReadSegment(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("read %d records, wrote %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], records[i])
		}
	}
}

// TestReadSegmentCorruption drives every malformation class through
// ReadSegment: all must surface as ErrCorrupt, never a partial read and
// never a panic. Bit flips are exhaustive over the file because a segment
// has no byte whose silent corruption would be acceptable.
func TestReadSegmentCorruption(t *testing.T) {
	var buf bytes.Buffer
	sw, _ := NewWriter(&buf)
	boundaries := map[int]int{buf.Len(): 0} // byte offset -> records before it
	sw.Append([]byte("hello"))
	boundaries[buf.Len()] = 1
	sw.Append([]byte("world"))
	valid := buf.Bytes()

	expectCorrupt := func(t *testing.T, data []byte, what string) {
		t.Helper()
		recs, err := ReadSegment(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("%s: accepted (%d records)", what, len(recs))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: error %v is not ErrCorrupt", what, err)
		}
	}

	expectCorrupt(t, nil, "zero-length file")
	expectCorrupt(t, []byte("NOTMAGIC"), "wrong magic")
	for cut := 1; cut < len(valid); cut++ {
		if want, ok := boundaries[cut]; ok {
			// A cut at a record boundary is a valid shorter segment —
			// exactly the guarantee: whole records or ErrCorrupt.
			recs, err := ReadSegment(bytes.NewReader(valid[:cut]))
			if err != nil || len(recs) != want {
				t.Fatalf("boundary cut %d: %d records, %v (want %d, nil)", cut, len(recs), err, want)
			}
			continue
		}
		expectCorrupt(t, valid[:cut], "truncation")
	}
	for i := range valid {
		for bit := 0; bit < 8; bit++ {
			flipped := bytes.Clone(valid)
			flipped[i] ^= 1 << bit
			expectCorrupt(t, flipped, "bit flip")
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot(7)
	got, err := DecodeSnapshot(want.encodeRecords())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Memo-only and meta-only snapshots roundtrip too.
	for _, s := range []*Snapshot{
		{Meta: want.Meta, Memo: want.Memo},
		{Meta: want.Meta},
	} {
		got, err := DecodeSnapshot(s.encodeRecords())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", got, s)
		}
	}
}

func TestDecodeSnapshotRejects(t *testing.T) {
	meta := encodeMeta(&Meta{Protocol: "p"})
	cases := map[string][][]byte{
		"no records":          {},
		"empty record":        {meta, {}},
		"unknown tag":         {meta, {99, 1, 2}},
		"duplicate meta":      {meta, meta},
		"no meta":             {{secMemo, 0, 0}},
		"trailing bytes":      {append(bytes.Clone(meta), 0xFF)},
		"frontier id too big": {meta, func() []byte { q := encodeQuery(&QueryData{Frontier: []int{5}}); return q }()},
		// A meta truncated before FPVersion is the pre-hash-v2 format;
		// resuming it under the new fingerprint function must be refused
		// at decode time.
		"meta without fp version": {meta[:len(meta)-1]},
	}
	for name, records := range cases {
		if _, err := DecodeSnapshot(records); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v is not ErrCorrupt", name, err)
		}
	}
}

func TestStoreSaveLatestPrune(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store Latest = %v, want ErrNoCheckpoint", err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if _, err := store.Save(sampleSnapshot(seq)); err != nil {
			t.Fatal(err)
		}
	}
	names := store.files()
	if len(names) != keepSnapshots {
		t.Fatalf("store retains %d files %v, want %d", len(names), names, keepSnapshots)
	}
	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Seq != 4 {
		t.Fatalf("Latest seq = %d, want 4", snap.Meta.Seq)
	}
}

// TestStoreLatestFallsBack corrupts the newest snapshot and checks Latest
// silently falls back to its predecessor — the scenario keepSnapshots=2
// exists for.
func TestStoreLatestFallsBack(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.Save(sampleSnapshot(1))
	store.Save(sampleSnapshot(2))
	newest := filepath.Join(dir, store.files()[0])
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Latest()
	if err != nil {
		t.Fatalf("Latest with corrupt newest: %v", err)
	}
	if snap.Meta.Seq != 1 {
		t.Fatalf("fell back to seq %d, want 1", snap.Meta.Seq)
	}
	// Everything corrupt: ErrNoCheckpoint naming the skipped files.
	if err := os.WriteFile(filepath.Join(dir, store.files()[1]), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = store.Latest()
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt store Latest = %v, want ErrNoCheckpoint", err)
	}
	if !strings.Contains(err.Error(), "skipped corrupt") {
		t.Fatalf("error should name the skipped files: %v", err)
	}
}

// TestWriteFileAtomicCrash kills the write callback mid-stream with a
// faults.CrashWriter and checks the previous file survives untouched and no
// temp debris is left behind.
func TestWriteFileAtomicCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	old := []byte("previous generation")
	if _, err := WriteFileAtomic(path, func(w io.Writer) (int64, error) {
		n, err := w.Write(old)
		return int64(n), err
	}); err != nil {
		t.Fatal(err)
	}
	for limit := int64(0); limit < 40; limit++ {
		_, err := WriteFileAtomic(path, func(w io.Writer) (int64, error) {
			cw := &faults.CrashWriter{W: w, Limit: limit}
			_, err := cw.Write([]byte("the replacement that never lands"))
			return cw.Written(), err
		})
		if limit < 32 {
			if !errors.Is(err, faults.ErrWriteCrashed) {
				t.Fatalf("limit %d: want ErrWriteCrashed, got %v", limit, err)
			}
			got, readErr := os.ReadFile(path)
			if readErr != nil || !bytes.Equal(got, old) {
				t.Fatalf("limit %d: previous file damaged: %q, %v", limit, got, readErr)
			}
		} else if err != nil {
			t.Fatalf("limit %d covers the payload, write failed: %v", limit, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "snap.ckpt" {
		t.Fatalf("temp debris left behind: %v", entries)
	}
}

// TestCoordinatorInterval pins the coordinator clock and checks the save
// cadence: the first opportunity saves, opportunities inside the interval
// are free, the first one past it saves again, Flush always saves.
func TestCoordinatorInterval(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(store, time.Minute, Meta{Protocol: "p", N: 3}, nil)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.Tick()
	if w, _ := c.Stats(); w != 1 {
		t.Fatalf("first tick: %d writes, want 1", w)
	}
	now = now.Add(30 * time.Second)
	c.Tick()
	c.TickQuery(func() *QueryData { t.Fatal("query builder invoked inside the interval"); return nil })
	if w, _ := c.Stats(); w != 1 {
		t.Fatalf("ticks inside interval saved: %d writes", w)
	}
	now = now.Add(31 * time.Second)
	c.SetStage("lemma 2")
	c.TickQuery(func() *QueryData { return &QueryData{Depth: 2} })
	if w, _ := c.Stats(); w != 2 {
		t.Fatalf("tick past interval: %d writes, want 2", w)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if w, _ := c.Stats(); w != 3 {
		t.Fatalf("flush: %d writes, want 3", w)
	}
	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Seq != 3 || snap.Meta.Stage != "lemma 2" {
		t.Fatalf("latest snapshot %+v, want seq 3 stage lemma 2", snap.Meta)
	}
	if snap.Query != nil {
		t.Fatal("Flush snapshot carries a stale in-flight query")
	}
}

// TestCoordinatorSurvivesSaveFailure points the store at a path that cannot
// host files: ticks must not panic or abort, Err must report, and saving
// must recover once the directory is back.
func TestCoordinatorSurvivesSaveFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(store, 0, Meta{Protocol: "p"}, nil)
	// Replace the directory with a plain file: CreateTemp now fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	c.Tick()
	if c.Err() == nil {
		t.Fatal("save into a file-shadowed dir succeeded?")
	}
	if w, _ := c.Stats(); w != 0 {
		t.Fatalf("failed save counted as a write: %d", w)
	}
	// Seq must not burn on failures: the next successful save is seq 1.
	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Seq != 1 {
		t.Fatalf("first successful save has seq %d, want 1", snap.Meta.Seq)
	}
}

// TestScanSegmentTornTail appends a partial record to a valid segment and
// checks ScanSegment keeps the intact prefix and reports exactly where it
// ends — the contract the append-only ledger's reopen path truncates by.
func TestScanSegmentTornTail(t *testing.T) {
	var buf bytes.Buffer
	sw, _ := NewWriter(&buf)
	sw.Append([]byte("first"))
	sw.Append([]byte("second"))
	intact := int64(buf.Len())

	// A clean stream: both records, offset at EOF, no tail error.
	recs, off, err := ScanSegment(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 2 || off != intact {
		t.Fatalf("clean scan: %d records, off %d, %v (want 2, %d, nil)", len(recs), off, err, intact)
	}

	// Every torn tail beyond the intact prefix: prefix records survive,
	// offset still marks the boundary, tail error is typed.
	sw.Append([]byte("torn"))
	full := buf.Bytes()
	for cut := intact + 1; cut < int64(len(full)); cut++ {
		recs, off, err := ScanSegment(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: tail error %v is not ErrCorrupt", cut, err)
		}
		if len(recs) != 2 || off != intact {
			t.Fatalf("cut %d: %d records, off %d (want 2, %d)", cut, len(recs), off, intact)
		}
	}

	// A bad header has no intact prefix.
	recs, off, err = ScanSegment(bytes.NewReader([]byte("NOTMAGIC")))
	if !errors.Is(err, ErrCorrupt) || len(recs) != 0 || off != 0 {
		t.Fatalf("bad header: %d records, off %d, %v", len(recs), off, err)
	}

	// NewAppendWriter continues the intact prefix into a valid stream.
	cont := bytes.NewBuffer(bytes.Clone(full[:intact]))
	aw := NewAppendWriter(cont)
	if err := aw.Append([]byte("third")); err != nil {
		t.Fatal(err)
	}
	recs, err2 := ReadSegment(bytes.NewReader(cont.Bytes()))
	if err2 != nil || len(recs) != 3 || string(recs[2]) != "third" {
		t.Fatalf("appended stream: %d records, %v", len(recs), err2)
	}
}

// TestCoordinatorSaveFailureObservable pins the satellite contract: a
// swallowed save failure must still be visible to operators as the
// checkpoint_errors counter, the checkpoint_consecutive_errors gauge and a
// checkpoint_error JSONL event — and the gauge must drop back to zero when
// persistence recovers.
func TestCoordinatorSaveFailureObservable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	scope := obs.NewScope(obs.NewTracer(&trace))
	c := NewCoordinator(store, 0, Meta{Protocol: "p", Stage: "lemma 1"}, scope)

	// Shadow the store directory with a file so every save fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	c.Tick()
	c.Tick()
	if got := scope.Counter("checkpoint_errors").Value(); got != 2 {
		t.Fatalf("checkpoint_errors = %d, want 2", got)
	}
	if got := scope.Gauge("checkpoint_consecutive_errors").Value(); got != 2 {
		t.Fatalf("checkpoint_consecutive_errors = %d, want 2", got)
	}
	events := 0
	for _, line := range strings.Split(trace.String(), "\n") {
		if strings.Contains(line, `"msg":"checkpoint_error"`) {
			events++
			for _, field := range []string{`"stage":"lemma 1"`, `"consecutive":`, `"err":`} {
				if !strings.Contains(line, field) {
					t.Fatalf("checkpoint_error event lacks %s: %s", field, line)
				}
			}
		}
	}
	if events != 2 {
		t.Fatalf("trace carries %d checkpoint_error events, want 2", events)
	}

	// Recovery: a successful save resets the consecutive gauge, not the
	// monotonic counter.
	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := scope.Gauge("checkpoint_consecutive_errors").Value(); got != 0 {
		t.Fatalf("gauge after recovery = %d, want 0", got)
	}
	if got := scope.Counter("checkpoint_errors").Value(); got != 2 {
		t.Fatalf("counter after recovery = %d, want 2 (monotonic)", got)
	}
}

func TestArtifactWriteVerify(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "witness.txt")
	payload := []byte("flood n=3: 2 distinct registers witnessed\n")
	if err := WriteArtifact(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("artifact is not byte-for-byte the payload: %q, %v", got, err)
	}
	if err := VerifyArtifact(path); err != nil {
		t.Fatalf("fresh artifact rejected: %v", err)
	}
	// Tamper with the payload.
	if err := os.WriteFile(path, append(got, 'X'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyArtifact(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered artifact: %v, want ErrCorrupt", err)
	}
	// Restore payload, tamper with the sidecar.
	os.WriteFile(path, payload, 0o644)
	os.WriteFile(path+".sha256", []byte("feedface  witness.txt\n"), 0o644)
	if err := VerifyArtifact(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered sidecar: %v, want ErrCorrupt", err)
	}
	if err := VerifyArtifact(filepath.Join(dir, "absent.txt")); err == nil {
		t.Fatal("missing artifact verified")
	}
}
