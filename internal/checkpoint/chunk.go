package checkpoint

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Exchange-chunk framing for the distributed engine (internal/dist). A
// chunk is the unit shard workers ship across process boundaries — a run of
// frontier entries addressed from one fingerprint slice to another — and it
// travels inside the same checksummed segment format checkpoints use on
// disk: a magic header, then a JSON chunk header as record 0 and the opaque
// body as record 1, each record carrying its own sha256. A chunk torn by a
// dying connection or corrupted in flight therefore fails DecodeChunk with
// an error wrapping ErrCorrupt, exactly like a torn segment file, and is
// never partially ingested.

// ChunkHeader identifies an exchange chunk: what it carries (Kind), the BFS
// level it belongs to, and the source and destination slices.
type ChunkHeader struct {
	Kind  string `json:"kind"`
	Level int    `json:"level"`
	From  int    `json:"from"`
	To    int    `json:"to"`
	// Count is the number of entries in the body, declared redundantly so a
	// receiver can sanity-check the decode.
	Count int `json:"count"`
}

// EncodeChunk frames header and body as a self-verifying chunk.
func EncodeChunk(h ChunkHeader, body []byte) ([]byte, error) {
	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: chunk header: %w", err)
	}
	var buf bytes.Buffer
	sw, err := NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	if err := sw.Append(hdr); err != nil {
		return nil, err
	}
	if err := sw.Append(body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeChunk verifies and unpacks a chunk produced by EncodeChunk. Any
// malformation — bad magic, torn tail, checksum mismatch, missing records —
// returns an error wrapping ErrCorrupt; the body is returned only when
// every byte verified.
func DecodeChunk(data []byte) (ChunkHeader, []byte, error) {
	recs, err := ReadSegment(bytes.NewReader(data))
	if err != nil {
		return ChunkHeader{}, nil, err
	}
	if len(recs) != 2 {
		return ChunkHeader{}, nil, corruptf("chunk has %d records, want 2", len(recs))
	}
	var h ChunkHeader
	if err := json.Unmarshal(recs[0], &h); err != nil {
		return ChunkHeader{}, nil, corruptf("chunk header (%v)", err)
	}
	return h, recs[1], nil
}
