package checkpoint

import (
	"log/slog"
	"time"

	"repro/internal/obs"
)

// Coordinator decides when to persist and assembles each snapshot from its
// sources: the valency oracle registers a memo exporter, the adversary
// engine tags the current proof stage, and the exploration engine offers
// in-flight query state at BFS level boundaries.
//
// All methods are driven from the single goroutine that runs the
// construction (the oracle and engine are single-threaded between
// exploration fan-outs), so the coordinator takes no locks; saves happen
// synchronously on that goroutine, which is what makes reading the live
// memo maps safe.
//
// A nil *Coordinator is the disabled state: every method is nil-receiver
// safe and does nothing, mirroring the obs.Scope convention.
type Coordinator struct {
	store *Store
	every time.Duration
	scope *obs.Scope
	meta  Meta

	memoSource func() *MemoData
	last       time.Time
	writes     int
	bytes      int64
	fails      int
	lastErr    error

	// AfterSave, when non-nil, observes every successfully persisted
	// snapshot (tests use it to kill a run deterministically after a
	// known save).
	AfterSave func(*Snapshot)

	// saveUs is the save-latency histogram, resolved once at construction
	// (nil and no-op when the scope is).
	saveUs *obs.Histogram

	now func() time.Time
}

// SaveLatencyBoundsMicros are the fixed buckets of the checkpoint_save_us
// histogram: an atomic snapshot write is dominated by fsyncs, so the range
// runs from sub-millisecond page-cache writes to multi-second stalls that
// would drag on the proof.
var SaveLatencyBoundsMicros = []int64{500, 1000, 5000, 10000, 50000, 100000, 500000, 1000000, 5000000}

// NewCoordinator returns a coordinator saving to store at most once per
// `every` (every <= 0 means: on every opportunity, which only tests want).
// meta identifies the run; its Seq field is the sequence to continue from
// (0 for a fresh run, the loaded snapshot's Seq on resume).
func NewCoordinator(store *Store, every time.Duration, meta Meta, scope *obs.Scope) *Coordinator {
	return &Coordinator{
		store:  store,
		every:  every,
		scope:  scope,
		meta:   meta,
		saveUs: scope.Histogram("checkpoint_save_us", SaveLatencyBoundsMicros),
		now:    time.Now,
	}
}

// SetStage records the adversary proof stage stored in subsequent
// snapshots. Safe on nil.
func (c *Coordinator) SetStage(stage string) {
	if c == nil {
		return
	}
	c.meta.Stage = stage
}

// SetMemoSource registers the function that exports the valency memo at
// save time. Safe on nil.
func (c *Coordinator) SetMemoSource(fn func() *MemoData) {
	if c == nil {
		return
	}
	c.memoSource = fn
}

// Tick offers a save opportunity between oracle queries: if the configured
// interval has elapsed since the last save, a snapshot (memo + stage, no
// in-flight query) is persisted. Safe on nil.
func (c *Coordinator) Tick() {
	c.tick(nil)
}

// TickQuery offers a save opportunity at a BFS level boundary inside an
// exhaustive query. The query builder is only invoked if the interval has
// elapsed — materialising in-flight state is expensive, deciding not to is
// one clock read. A nil return from the builder saves memo-only. Safe on
// nil.
func (c *Coordinator) TickQuery(query func() *QueryData) {
	c.tick(query)
}

func (c *Coordinator) tick(query func() *QueryData) {
	if c == nil {
		return
	}
	if !c.last.IsZero() && c.now().Sub(c.last) < c.every {
		return
	}
	c.save(query)
}

// Flush persists a snapshot immediately, regardless of the interval, and
// returns the last save error (nil on success). Safe on nil.
func (c *Coordinator) Flush() error {
	if c == nil {
		return nil
	}
	c.save(nil)
	return c.lastErr
}

// save persists one snapshot. Persistence failures do not stop the proof:
// the error is counted, kept for Err, and the next tick retries — an
// hours-long construction should survive a transiently full disk.
func (c *Coordinator) save(query func() *QueryData) {
	c.last = c.now()
	snap := &Snapshot{Meta: c.meta}
	snap.Meta.Seq++
	snap.Meta.WrittenUnixNano = c.now().UnixNano()
	if c.memoSource != nil {
		snap.Memo = c.memoSource()
	}
	if query != nil {
		snap.Query = query()
	}
	saveStart := time.Now()
	n, err := c.store.Save(snap)
	c.saveUs.Observe(time.Since(saveStart).Microseconds())
	if err != nil {
		// Persistence degradation is silent by design (the proof keeps
		// running), so it must be loud in the obs layer: a monotonic error
		// counter to alert on, a consecutive-failure gauge that a healthy
		// save resets (sustained non-zero = the disk is gone, not a blip),
		// and a JSONL event per failure with the cause.
		c.lastErr = err
		c.fails++
		c.scope.Counter("checkpoint_errors").Add(1)
		c.scope.Gauge("checkpoint_consecutive_errors").Set(int64(c.fails))
		c.scope.Event("checkpoint_error",
			slog.Uint64("seq", snap.Meta.Seq),
			slog.String("stage", snap.Meta.Stage),
			slog.Int("consecutive", c.fails),
			slog.String("err", err.Error()))
		return
	}
	c.lastErr = nil
	c.fails = 0
	c.scope.Gauge("checkpoint_consecutive_errors").Set(0)
	c.meta.Seq = snap.Meta.Seq
	c.writes++
	c.bytes += n
	c.scope.CheckpointSaved(n)
	c.scope.Event("checkpoint_write",
		slog.Uint64("seq", snap.Meta.Seq),
		slog.String("stage", snap.Meta.Stage),
		slog.Int64("bytes", n),
		slog.Bool("in_flight_query", snap.Query != nil),
	)
	if c.AfterSave != nil {
		c.AfterSave(snap)
	}
}

// Stats reports the coordinator's work for end-of-run reporting. Safe on
// nil (zeroes).
func (c *Coordinator) Stats() (writes int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	return c.writes, c.bytes
}

// Err returns the most recent persistence failure, nil if the last save
// succeeded (or none was attempted). Safe on nil.
func (c *Coordinator) Err() error {
	if c == nil {
		return nil
	}
	return c.lastErr
}
