// Package checkpoint makes long-running proofs survive process death: it
// persists the exploration state of the adversary engine — valency memo,
// in-flight BFS frontier and fingerprint set, and the current proof stage —
// to crash-safe snapshot files, and loads the newest intact snapshot back
// on resume.
//
// The durability contract is deliberately simple:
//
//   - A snapshot is one segment file of length-prefixed, SHA-256-checksummed
//     records (see segment.go). Any truncation or bit flip is detected and
//     reported as ErrCorrupt; a corrupt record is never loaded silently.
//   - Snapshot files are written via temp file + fsync + atomic rename
//     (WriteFileAtomic), so a crash at any byte boundary leaves either the
//     previous snapshot or the new one, never a half-written file under the
//     final name.
//   - The Store keeps the newest few snapshots and loads the newest one
//     that decodes cleanly, so even a corrupt latest file (torn disk, bad
//     sector) falls back to the one before it instead of failing the run.
//
// The package is deliberately dependency-light (standard library plus
// internal/obs for counters): internal/explore and internal/valency import
// it, not the other way round, so the snapshot schema speaks in plain
// integers and strings and the owning packages convert to their own types.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is returned (wrapped) whenever a segment file or snapshot
// record fails validation: bad magic, truncated length prefix, truncated
// payload, checksum mismatch, or a malformed field inside a record. Loaders
// treat it as "this file does not exist" and fall back, never as data.
var ErrCorrupt = errors.New("checkpoint: corrupt segment")

// corruptf wraps ErrCorrupt with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// enc is an append-only buffer for the snapshot schema: unsigned varints
// for every integer (all schema integers are non-negative) and
// length-prefixed byte strings.
type enc struct {
	buf []byte
}

func (e *enc) uint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *enc) int(v int) {
	if v < 0 {
		panic(fmt.Sprintf("checkpoint: encoding negative int %d", v))
	}
	e.uint(uint64(v))
}

func (e *enc) str(s string) {
	e.uint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// dec is the bounds-checked mirror of enc. Every read reports ErrCorrupt on
// malformed input instead of panicking; the fuzz tests hold it to that.
type dec struct {
	data []byte
	off  int
	err  error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = corruptf("decoding %s at offset %d", what, d.off)
	}
}

func (d *dec) uint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

// intn decodes a non-negative int with an upper bound; the bound keeps a
// corrupt length field from turning into a giant allocation.
func (d *dec) intn(what string, max uint64) int {
	v := d.uint(what)
	if d.err == nil && v > max {
		d.fail(what + " (out of range)")
		return 0
	}
	return int(v)
}

func (d *dec) str(what string, maxLen uint64) string {
	n := d.intn(what+" length", maxLen)
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.data) {
		d.fail(what)
		return ""
	}
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s
}

// done reports decoding success and requires the payload to be fully
// consumed (trailing garbage is corruption, not padding).
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return corruptf("%d trailing bytes after record", len(d.data)-d.off)
	}
	return nil
}
