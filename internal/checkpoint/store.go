package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNoCheckpoint is returned by Latest when the store holds no loadable
// snapshot (empty directory, or every file corrupt).
var ErrNoCheckpoint = errors.New("checkpoint: no loadable snapshot in store")

// keepSnapshots is how many snapshot files Save retains. Two, so the
// newest can be corrupt (torn disk at rename, bad sector) and the run
// still resumes from the one before it.
const keepSnapshots = 2

// Store manages a directory of snapshot segment files, named
// snap-<seq>.ckpt. Save publishes each snapshot atomically and prunes old
// ones; Latest loads the newest file that decodes cleanly.
type Store struct {
	dir string
}

// Open creates the directory if needed and returns a store on it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: store dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%012d.ckpt", seq))
}

// Save publishes snap atomically under its Meta.Seq and prunes all but the
// newest keepSnapshots files. Returns the bytes written.
func (s *Store) Save(snap *Snapshot) (int64, error) {
	records := snap.encodeRecords()
	n, err := WriteFileAtomic(s.path(snap.Meta.Seq), func(w io.Writer) (int64, error) {
		sw, err := NewWriter(w)
		if err != nil {
			return 0, err
		}
		for _, rec := range records {
			if err := sw.Append(rec); err != nil {
				return sw.Bytes(), err
			}
		}
		return sw.Bytes(), nil
	})
	if err != nil {
		return n, err
	}
	s.prune()
	return n, nil
}

// files returns the snapshot filenames in the store, newest (highest seq)
// first. Temp files and foreign names are ignored.
func (s *Store) files() []string {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".ckpt") {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names
}

func (s *Store) prune() {
	names := s.files()
	if len(names) <= keepSnapshots {
		return
	}
	for _, name := range names[keepSnapshots:] {
		os.Remove(filepath.Join(s.dir, name))
	}
}

// Latest loads the newest snapshot that passes every integrity check,
// skipping (and reporting via the skipped list) corrupt files. It returns
// ErrNoCheckpoint when nothing loads.
func (s *Store) Latest() (*Snapshot, error) {
	snap, skipped, err := s.latest()
	if err != nil && len(skipped) > 0 {
		return nil, fmt.Errorf("%w (skipped corrupt: %s)", err, strings.Join(skipped, ", "))
	}
	return snap, err
}

func (s *Store) latest() (*Snapshot, []string, error) {
	var skipped []string
	for _, name := range s.files() {
		path := filepath.Join(s.dir, name)
		records, err := ReadSegmentFile(path)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				skipped = append(skipped, fmt.Sprintf("%s (%v)", name, err))
				continue
			}
			return nil, skipped, err
		}
		snap, err := DecodeSnapshot(records)
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s (%v)", name, err))
			continue
		}
		return snap, skipped, nil
	}
	return nil, skipped, ErrNoCheckpoint
}
