package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// Handler returns the debug mux for a scope:
//
//	/debug/pprof/*  — the standard Go profiler endpoints
//	/debug/vars     — expvar-compatible JSON: process expvars (cmdline,
//	                  memstats) merged with the scope's metric registry
//	/metrics        — the same registry in Prometheus text format
//	/timeseries     — the flight recorder's ring as JSON (empty series
//	                  when no recorder is attached)
//	/progress       — the live Progress snapshot (phase, frontier depth,
//	                  elapsed, ETA from level growth with level-size
//	                  quantiles and a spread-pessimistic ETA)
//	/healthz        — liveness: 200 "ok" while the process serves at all
//	/readyz         — readiness: 200 "ready", or 503 with the error from
//	                  the scope's SetReadyCheck probe (no probe = ready)
//
// The handler is safe to mount while the engine runs; every read is a
// lock-free or briefly-locked snapshot.
func Handler(s *Scope) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := s.ReadyErr(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeVars(w, s)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Recorder().Snapshot())
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(progressView(s))
	})
	return mux
}

// ProgressView is the /progress document: the Progress snapshot plus the
// level-size quantiles of the run so far and a pessimistic ETA that scales
// the growth-ratio estimate by the observed p95/p50 level-size spread —
// wide-tailed explorations (the frontier distributions of n>=4 machines)
// earn a proportionally more cautious estimate.
type ProgressView struct {
	Snapshot
	// LevelSizeP50/P95/P99 are quantile estimates over every completed BFS
	// level's frontier size (0 before the first level completes).
	LevelSizeP50 int64 `json:"level_size_p50"`
	LevelSizeP95 int64 `json:"level_size_p95"`
	LevelSizeP99 int64 `json:"level_size_p99"`
	// EtaP95Sec is EtaSec scaled by p95/p50; -1 when there is no estimate.
	EtaP95Sec float64 `json:"eta_p95_sec"`
	// Shards is per-slice lease health, present only on distributed
	// coordinators (SetShardHealth).
	Shards []ShardHealth `json:"shards,omitempty"`
}

// progressView assembles the /progress document for a scope.
func progressView(s *Scope) ProgressView {
	v := ProgressView{Snapshot: s.Progress().Snapshot(), EtaP95Sec: -1, Shards: s.ShardHealthView()}
	h := s.Registry().Histogram("explore_level_size", LevelSizeBounds)
	if h.Count() == 0 {
		return v
	}
	p50 := h.Quantile(0.50)
	v.LevelSizeP50 = int64(p50 + 0.5)
	v.LevelSizeP95 = int64(h.Quantile(0.95) + 0.5)
	v.LevelSizeP99 = int64(h.Quantile(0.99) + 0.5)
	if v.EtaSec >= 0 && p50 > 0 {
		v.EtaP95Sec = v.EtaSec * h.Quantile(0.95) / p50
	}
	return v
}

// writeVars renders the expvar-compatible /debug/vars document: every
// process-level expvar (cmdline, memstats) followed by the scope's metrics
// as top-level keys.
func writeVars(w io.Writer, s *Scope) {
	fmt.Fprintf(w, "{")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",")
		}
		first = false
		fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value)
	})
	for k, v := range s.Registry().Snapshot() {
		data, err := json.Marshal(v)
		if err != nil {
			continue
		}
		if !first {
			fmt.Fprintf(w, ",")
		}
		first = false
		fmt.Fprintf(w, "\n%q: %s", k, data)
	}
	fmt.Fprintf(w, "\n}\n")
}

// Server is a running debug HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug endpoint on addr (host:port; :0 picks a free
// port) and serves it in a background goroutine until Close.
func Serve(addr string, s *Scope) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	srv := &http.Server{Handler: Handler(s), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with :0).
func (sv *Server) Addr() string { return sv.ln.Addr().String() }

// Close stops the server. Safe on nil.
func (sv *Server) Close() error {
	if sv == nil {
		return nil
	}
	return sv.srv.Close()
}

// Config is the command-line surface of the observability layer, shared by
// cmd/spacebound, cmd/experiments and cmd/benchreport.
type Config struct {
	// TraceOut, when non-empty, is the JSONL trace destination ("-" for
	// stderr).
	TraceOut string
	// DebugAddr, when non-empty, is the listen address of the debug HTTP
	// endpoint.
	DebugAddr string
	// RecordEvery is the flight-recorder sampling interval: 0 means
	// DefaultRecordEvery, negative disables the recorder. Only consulted
	// when the config enables observability at all.
	RecordEvery time.Duration
	// RecordSize is the recorder ring capacity (0 = DefaultRecordSize).
	RecordSize int
}

// enabled reports whether any backend was requested.
func (c Config) enabled() bool { return c.TraceOut != "" || c.DebugAddr != "" }

// Start builds a scope from the config and returns it with a shutdown
// function. When the config requests nothing, the scope is nil — the
// engine-wide no-op — and shutdown does nothing; commands therefore call
// Start unconditionally. The debug endpoint's bound address is announced on
// stderr so a user who passed :0 can find it.
func Start(cfg Config) (*Scope, func() error, error) {
	if !cfg.enabled() {
		return nil, func() error { return nil }, nil
	}
	var tr *Tracer
	if cfg.TraceOut != "" {
		w := io.Writer(os.Stderr)
		if cfg.TraceOut != "-" {
			f, err := os.Create(cfg.TraceOut)
			if err != nil {
				return nil, nil, fmt.Errorf("obs: trace output: %w", err)
			}
			w = f
		}
		tr = NewTracer(w)
	}
	scope := NewScope(tr)
	var rec *Recorder
	if cfg.RecordEvery >= 0 {
		rec = NewRecorder(scope.Registry(), cfg.RecordEvery, cfg.RecordSize)
		scope.SetRecorder(rec)
		rec.Start()
	}
	var srv *Server
	if cfg.DebugAddr != "" {
		var err error
		srv, err = Serve(cfg.DebugAddr, scope)
		if err != nil {
			rec.Stop()
			_ = tr.Close()
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "obs: debug endpoint on http://%s (/debug/pprof, /debug/vars, /metrics, /timeseries, /progress, /healthz, /readyz)\n", srv.Addr())
	}
	shutdown := func() error {
		rec.Stop()
		err := srv.Close()
		if cerr := tr.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return scope, shutdown, nil
}
