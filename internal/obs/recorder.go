package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is the engine flight recorder: a lock-free bounded ring of
// timestamped scalar snapshots (counters and gauges) taken at a fixed
// minimum interval. Two sources feed it — an optional background goroutine
// (Start) for wall-clock regularity, and level-edge ticks from the
// instrumented engine (Scope.ExploreLevel, Scope.SetPhase) so the
// trajectory lands on the boundaries the engine actually crossed; both
// share one CAS rate limiter, so their combined sample spacing never drops
// below the interval. Readers (/timeseries, benchreport's embedded
// trajectory) walk atomic slot pointers and never block a writer.
//
// A nil *Recorder is the disabled state: every method is nil-receiver
// safe, matching the Scope convention.
type Recorder struct {
	reg      *Registry
	names    []string
	interval time.Duration

	slots  []atomic.Pointer[Sample]
	seq    atomic.Uint64 // total samples ever taken; next slot is seq % len
	lastNs atomic.Int64  // unix nanos of the newest sample (rate limiter)

	now func() time.Time

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// Sample is one ring entry: a wall-clock stamp and the scalar metric
// values at that instant.
type Sample struct {
	UnixMs int64            `json:"unix_ms"`
	Values map[string]int64 `json:"values"`
}

// TimeSeries is the JSON document served at /timeseries and embedded in
// BENCH_explore.json: the ring's samples oldest to newest.
type TimeSeries struct {
	IntervalMs int64    `json:"interval_ms"`
	Samples    []Sample `json:"samples"`
}

// DefaultRecordEvery is the sampling interval used when a command enables
// observability without choosing one.
const DefaultRecordEvery = time.Second

// DefaultRecordSize is the default ring capacity: at the default interval
// it holds the last ~8.5 minutes of engine history in a few hundred KB.
const DefaultRecordSize = 512

// NewRecorder returns a recorder over reg sampling at most every interval
// into a ring of size slots. names selects which counters/gauges each
// sample captures; empty means all scalars in the registry at sample time.
// Zero/negative interval or size fall back to the defaults.
func NewRecorder(reg *Registry, interval time.Duration, size int, names ...string) *Recorder {
	if interval <= 0 {
		interval = DefaultRecordEvery
	}
	if size <= 0 {
		size = DefaultRecordSize
	}
	return &Recorder{
		reg:      reg,
		names:    names,
		interval: interval,
		slots:    make([]atomic.Pointer[Sample], size),
		now:      time.Now,
	}
}

// scalars snapshots the registry's counters and gauges as plain values,
// restricted to names when the recorder was built with a selection.
func (r *Registry) scalars(names []string) map[string]int64 {
	if r == nil {
		return map[string]int64{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	if len(names) > 0 {
		for _, name := range names {
			if c, ok := r.counters[name]; ok {
				out[name] = c.Value()
			} else if g, ok := r.gauges[name]; ok {
				out[name] = g.Value()
			}
		}
		return out
	}
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Sample unconditionally takes one snapshot into the ring. Safe on nil and
// safe for concurrent use (concurrent writers claim distinct slots).
func (rc *Recorder) Sample() {
	if rc == nil {
		return
	}
	s := &Sample{UnixMs: rc.now().UnixMilli(), Values: rc.reg.scalars(rc.names)}
	i := rc.seq.Add(1) - 1
	rc.slots[i%uint64(len(rc.slots))].Store(s)
}

// Tick takes a snapshot if at least one interval has elapsed since the
// newest sample, else does nothing. One atomic load on the quiet path, so
// the engine can call it at every level boundary. Safe on nil.
func (rc *Recorder) Tick() {
	if rc == nil {
		return
	}
	now := rc.now().UnixNano()
	last := rc.lastNs.Load()
	if now-last < int64(rc.interval) {
		return
	}
	if !rc.lastNs.CompareAndSwap(last, now) {
		return // someone else just sampled
	}
	rc.Sample()
}

// Start launches the background sampler: one immediate sample (so a
// freshly started endpoint serves data before the first interval elapses),
// then a rate-limited tick per interval until Stop. Safe on nil; a second
// Start is a no-op until Stop.
func (rc *Recorder) Start() {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.stop != nil {
		return
	}
	rc.stop = make(chan struct{})
	rc.done = make(chan struct{})
	rc.lastNs.Store(rc.now().UnixNano())
	rc.Sample()
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(rc.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				rc.Tick()
			}
		}
	}(rc.stop, rc.done)
}

// Stop halts the background sampler and takes one final sample, so the
// ring's tail reflects the end state. Safe on nil and without Start.
func (rc *Recorder) Stop() {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.stop == nil {
		return
	}
	close(rc.stop)
	<-rc.done
	rc.stop, rc.done = nil, nil
	rc.Sample()
}

// Snapshot returns the ring's contents oldest to newest. Safe on nil
// (empty series). Concurrent writers may overwrite the oldest slot while
// it is read; every sample returned is individually consistent.
func (rc *Recorder) Snapshot() TimeSeries {
	if rc == nil {
		return TimeSeries{Samples: []Sample{}}
	}
	ts := TimeSeries{IntervalMs: rc.interval.Milliseconds(), Samples: []Sample{}}
	total := rc.seq.Load()
	n := uint64(len(rc.slots))
	start := uint64(0)
	if total > n {
		start = total - n
	}
	for i := start; i < total; i++ {
		if s := rc.slots[i%n].Load(); s != nil {
			ts.Samples = append(ts.Samples, *s)
		}
	}
	return ts
}
