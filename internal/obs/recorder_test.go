package obs

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock hands out strictly increasing instants, one per call, so
// recorder tests are fully deterministic.
type fakeClock struct {
	base time.Time
	step time.Duration
	n    int
}

func (f *fakeClock) now() time.Time {
	f.n++
	return f.base.Add(time.Duration(f.n) * f.step)
}

var goldenBase = time.UnixMilli(1_700_000_000_000).UTC()

// TestRecorderRingWraps pins the ring semantics: more samples than slots
// keeps the newest len(slots), oldest to newest.
func TestRecorderRingWraps(t *testing.T) {
	reg := NewRegistry()
	cfgs := reg.Counter("explore_configs")
	rc := NewRecorder(reg, time.Second, 4)
	rc.now = (&fakeClock{base: goldenBase, step: time.Second}).now

	for i := 0; i < 6; i++ {
		cfgs.Add(100)
		rc.Sample()
	}
	ts := rc.Snapshot()
	if len(ts.Samples) != 4 {
		t.Fatalf("ring of 4 holds %d samples after 6 writes", len(ts.Samples))
	}
	// Samples 3..6 survive; the counter was at 300..600 when they were taken.
	for i, s := range ts.Samples {
		if want := int64((i + 3) * 100); s.Values["explore_configs"] != want {
			t.Fatalf("sample %d: explore_configs = %d, want %d", i, s.Values["explore_configs"], want)
		}
		if i > 0 && s.UnixMs <= ts.Samples[i-1].UnixMs {
			t.Fatalf("samples out of order: %d then %d", ts.Samples[i-1].UnixMs, s.UnixMs)
		}
	}
	if ts.IntervalMs != 1000 {
		t.Fatalf("IntervalMs = %d, want 1000", ts.IntervalMs)
	}
}

// TestRecorderTickRateLimited checks the CAS limiter shared by the
// background sampler and the engine's level-edge ticks: ticks closer
// together than the interval collapse into one sample.
func TestRecorderTickRateLimited(t *testing.T) {
	reg := NewRegistry()
	rc := NewRecorder(reg, time.Second, 16)
	clock := &fakeClock{base: goldenBase, step: 100 * time.Millisecond}
	rc.now = clock.now

	// 20 ticks at 100ms apart (every Tick consumes one clock step, a
	// sampling Tick consumes two): far fewer than 20 samples may land.
	for i := 0; i < 20; i++ {
		rc.Tick()
	}
	got := len(rc.Snapshot().Samples)
	if got == 0 || got > 3 {
		t.Fatalf("20 sub-interval ticks produced %d samples, want 1-3", got)
	}
}

// TestRecorderNilSafe pins the disabled state: every method on a nil
// recorder is a no-op and Snapshot returns an empty (not nil) series.
func TestRecorderNilSafe(t *testing.T) {
	var rc *Recorder
	rc.Sample()
	rc.Tick()
	rc.Start()
	rc.Stop()
	ts := rc.Snapshot()
	if ts.Samples == nil || len(ts.Samples) != 0 {
		t.Fatalf("nil recorder snapshot = %+v, want empty non-nil samples", ts)
	}
}

// TestRecorderStartStop exercises the background sampler for real: Start
// takes an immediate sample, Stop takes a final one, and a second
// Start/Stop cycle works.
func TestRecorderStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("explore_depth").Set(7)
	rc := NewRecorder(reg, time.Hour, 8) // interval long enough to never fire
	rc.Start()
	rc.Start() // second Start is a no-op, not a second goroutine
	rc.Stop()
	rc.Stop() // idempotent
	ts := rc.Snapshot()
	if len(ts.Samples) != 2 {
		t.Fatalf("Start+Stop took %d samples, want 2 (immediate + final)", len(ts.Samples))
	}
	if ts.Samples[0].Values["explore_depth"] != 7 {
		t.Fatalf("sample values = %v", ts.Samples[0].Values)
	}
	rc.Start()
	rc.Stop()
	if got := len(rc.Snapshot().Samples); got != 4 {
		t.Fatalf("second Start/Stop cycle: %d samples, want 4", got)
	}
}

// TestTimeseriesEndpointGolden locks the /timeseries JSON wire format
// against testdata/timeseries_golden.json: a deterministic clock and a
// scripted engine make the body byte-for-byte reproducible. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/obs -run TimeseriesEndpointGolden.
func TestTimeseriesEndpointGolden(t *testing.T) {
	scope := NewScope(nil)
	rc := NewRecorder(scope.Registry(), time.Second, 8, "explore_configs", "explore_depth")
	rc.now = (&fakeClock{base: goldenBase, step: time.Second}).now
	scope.SetRecorder(rc)

	cfgs := scope.Counter("explore_configs")
	depth := scope.Gauge("explore_depth")
	for level := 1; level <= 3; level++ {
		cfgs.Add(int64(level * 1000))
		depth.Set(int64(level))
		scope.Recorder().Sample()
	}

	rr := httptest.NewRecorder()
	Handler(scope).ServeHTTP(rr, httptest.NewRequest("GET", "/timeseries", nil))
	if rr.Code != 200 {
		t.Fatalf("/timeseries status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}

	golden := filepath.Join("testdata", "timeseries_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, rr.Body.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got := rr.Body.String(); got != string(want) {
		t.Fatalf("/timeseries drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
