// Package obs is the live observability layer of the proof engine: a
// lock-cheap metrics registry, structured span/event tracing, and an
// optional debug HTTP endpoint (/debug/pprof, /debug/vars, /progress).
//
// The proof engine runs minutes-long adversarial constructions with no
// output between launch and verdict; valency.Stats and explore.Result are
// terminal snapshots. This package makes the run watchable while it is
// happening — frontier growth, memo hit rates, phase progress — and
// profilable when it is stuck, without touching the hot path when disabled.
//
// Everything hangs off a *Scope. A nil *Scope is the universal no-op: every
// method is nil-receiver safe, so instrumented code pays exactly one
// nil-check per instrumentation site when observability is off (guarded by
// the explore allocation-regression tests). The packages it instruments
// stage their work the way Zhu's proof does — Lemmas 1-4 as named phases
// over configurations — so the spans and phase labels mirror the paper's
// structure.
//
// The package depends only on the standard library.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is
// a no-op, so callers may hold unconditional pointers resolved from a
// possibly-absent registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Max raises the gauge to v if v exceeds the current value (a high-water
// mark under concurrent writers).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets: counts[i] holds
// observations v <= bounds[i], the final bucket holds the overflow. Bounds
// are fixed at creation so Observe is bound-scan plus one atomic add — no
// locks, no allocation.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket counts
// by linear interpolation inside the bucket holding the target rank, the
// same estimator Prometheus applies to histogram series. Observations in
// the overflow bucket clamp to the largest finite bound — the histogram
// cannot see past its bounds. Returns 0 for a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if len(h.bounds) == 0 {
		return float64(h.sum.Load()) / float64(n)
	}
	rank := q * float64(n)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			if i >= len(h.bounds) {
				return float64(h.bounds[len(h.bounds)-1])
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(h.bounds[i-1])
			}
			hi := float64(h.bounds[i])
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// snapshot renders the histogram as a JSON-marshallable value: bucket
// upper-bound label -> count, plus count, sum and the p50/p95/p99
// quantile estimates (rounded; the buckets are integers already).
func (h *Histogram) snapshot() map[string]int64 {
	out := make(map[string]int64, len(h.bounds)+6)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		label := "+inf"
		if i < len(h.bounds) {
			label = fmt.Sprintf("le_%d", h.bounds[i])
		}
		out[label] = c
	}
	out["count"] = h.n.Load()
	out["sum"] = h.sum.Load()
	if out["count"] > 0 {
		out["p50"] = int64(h.Quantile(0.50) + 0.5)
		out["p95"] = int64(h.Quantile(0.95) + 0.5)
		out["p99"] = int64(h.Quantile(0.99) + 0.5)
	}
	return out
}

// Registry is a named metric store. Lookups take one mutex acquisition and
// are expected at instrumentation-setup time, not per operation: hot paths
// resolve their Counter/Gauge pointers once and hold them. The registry
// renders as expvar-compatible JSON (a flat {"name": value} object) for
// /debug/vars and for embedding in benchmark reports.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// SetHelp attaches a help string to the named metric, rendered as the
// Prometheus # HELP line by WritePrometheus. Metrics without one fall back
// to the metric name. Safe on nil.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (which is itself a no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a point-in-time JSON-marshallable view of every metric:
// counters and gauges as integers, histograms as bucket maps.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.snapshot()
	}
	return out
}

// WriteJSON writes the snapshot as a deterministic (key-sorted) JSON
// object, the expvar-compatible rendering served under /debug/vars.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, k := range keys {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		v, err := json.Marshal(snap[k])
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "\n%q: %s", k, v); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}
