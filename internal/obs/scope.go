package obs

import (
	"fmt"
	"log/slog"
	"sync/atomic"
)

// Scope bundles the three observability backends — metrics registry,
// tracer, progress — behind one pointer that instrumented packages thread
// through their options. A nil *Scope is the disabled state: every method
// is nil-receiver safe and returns immediately, so the engine's hot paths
// pay one nil-check per instrumentation site (per BFS level, per oracle
// query — never per configuration).
type Scope struct {
	reg  *Registry
	tr   *Tracer
	prog *Progress
	// ready holds the registered /readyz probe (nil until SetReadyCheck).
	ready atomic.Pointer[func() error]
	// rec holds the attached flight recorder (nil until SetRecorder). The
	// engine ticks it at its natural boundaries (BFS levels, phase changes)
	// so the trajectory samples land where the work actually happened.
	rec atomic.Pointer[Recorder]
	// shards holds the registered shard-health probe (nil until
	// SetShardHealth); a distributed coordinator registers it so /progress
	// can show per-slice lease state.
	shards atomic.Pointer[func() []ShardHealth]
}

// NewScope returns an enabled scope with a fresh registry and progress
// tracker. tr may be nil for a metrics-only scope (no trace output).
func NewScope(tr *Tracer) *Scope {
	return &Scope{reg: NewRegistry(), tr: tr, prog: NewProgress()}
}

// Enabled reports whether the scope records anything.
func (s *Scope) Enabled() bool { return s != nil }

// Registry exposes the metrics registry (nil when disabled; the nil
// registry hands out nil, no-op metrics).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Progress exposes the progress tracker (nil when disabled).
func (s *Scope) Progress() *Progress {
	if s == nil {
		return nil
	}
	return s.prog
}

// Tracer exposes the tracer (nil when disabled or metrics-only).
func (s *Scope) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// SetReadyCheck registers fn as the endpoint's /readyz probe: a nil error
// means ready (200), a non-nil one is the 503 body. Long-running services
// use it to flip themselves unready while draining; one-shot commands never
// call it and stay ready for their whole run. Safe on nil.
func (s *Scope) SetReadyCheck(fn func() error) {
	if s == nil {
		return
	}
	s.ready.Store(&fn)
}

// ReadyErr evaluates the registered readiness probe. No probe (or a nil
// scope) is ready: liveness alone is the default health of a process that
// never declared a readiness lifecycle. Safe on nil.
func (s *Scope) ReadyErr() error {
	if s == nil {
		return nil
	}
	fn := s.ready.Load()
	if fn == nil || *fn == nil {
		return nil
	}
	return (*fn)()
}

// SetShardHealth registers fn as the /progress shard-health probe. Only
// distributed coordinators call it; everyone else's /progress omits the
// shards section. Safe on nil.
func (s *Scope) SetShardHealth(fn func() []ShardHealth) {
	if s == nil {
		return
	}
	s.shards.Store(&fn)
}

// ShardHealthView evaluates the registered shard-health probe; nil when no
// coordinator registered one. Safe on nil.
func (s *Scope) ShardHealthView() []ShardHealth {
	if s == nil {
		return nil
	}
	fn := s.shards.Load()
	if fn == nil || *fn == nil {
		return nil
	}
	return (*fn)()
}

// SetRecorder attaches a flight recorder to the scope. Safe on nil.
func (s *Scope) SetRecorder(rc *Recorder) {
	if s == nil {
		return
	}
	s.rec.Store(rc)
}

// Recorder returns the attached flight recorder (nil when disabled or none
// attached; the nil recorder is a no-op). Safe on nil.
func (s *Scope) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec.Load()
}

// Counter resolves a named counter; instrumentation sites resolve once and
// hold the pointer (the nil pointer from a nil scope stays a no-op).
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.reg.Counter(name)
}

// Gauge resolves a named gauge.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(name)
}

// Histogram resolves a named histogram.
func (s *Scope) Histogram(name string, bounds []int64) *Histogram {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(name, bounds)
}

// StartSpan opens a trace span (no-op *Span when disabled) and counts it.
func (s *Scope) StartSpan(name string, attrs ...slog.Attr) *Span {
	if s == nil {
		return nil
	}
	s.prog.spans.Add(1)
	s.reg.Counter("trace_spans").Add(1)
	return s.tr.StartSpan(name, attrs...)
}

// Event emits a trace event (dropped when disabled or metrics-only).
func (s *Scope) Event(name string, attrs ...slog.Attr) {
	if s == nil {
		return
	}
	s.tr.Event(name, attrs...)
}

// SetPhase records the engine's current proof stage for /progress and
// mirrors it as a trace event.
func (s *Scope) SetPhase(format string, args ...any) {
	if s == nil {
		return
	}
	phase := fmt.Sprintf(format, args...)
	s.prog.SetPhase(phase)
	s.tr.Event("phase", slog.String("phase", phase))
	s.rec.Load().Tick()
}

// CheckpointSaved records one successful checkpoint write: bumps the
// checkpoint_writes/checkpoint_bytes counters and refreshes the
// last-checkpoint timestamp behind /progress. Safe on nil.
func (s *Scope) CheckpointSaved(bytes int64) {
	if s == nil {
		return
	}
	s.reg.Counter("checkpoint_writes").Add(1)
	s.reg.Counter("checkpoint_bytes").Add(bytes)
	s.prog.Checkpoint()
}

// Level describes one completed BFS level of an exploration, the unit at
// which the engine reports (internal/explore calls ExploreLevel once per
// level, whatever the level's size).
type Level struct {
	// Depth is the BFS depth just completed; Frontier the number of fresh
	// configurations discovered at that depth (the next level's size).
	Depth    int
	Frontier int
	// Dup counts transitions that landed on already-visited
	// configurations while expanding this level.
	Dup int
	// Configs and Steps are the exploration's cumulative totals.
	Configs int
	Steps   int
}

// ExploreLevel records one completed BFS level: gauges for the live view,
// counters for the cumulative totals, a histogram of level sizes, and a
// trace event. Called once per level; per-configuration work is never
// instrumented.
func (s *Scope) ExploreLevel(l Level) {
	if s == nil {
		return
	}
	s.reg.Gauge("explore_depth").Set(int64(l.Depth))
	s.reg.Gauge("explore_frontier").Set(int64(l.Frontier))
	s.reg.Gauge("explore_peak_frontier").Max(int64(l.Frontier))
	s.reg.Counter("explore_configs").Add(int64(l.Frontier))
	s.reg.Counter("explore_dedup_hits").Add(int64(l.Dup))
	s.reg.Histogram("explore_level_size", LevelSizeBounds).Observe(int64(l.Frontier))
	s.prog.Level(l.Depth, l.Frontier, l.Frontier)
	s.tr.Event("explore_level",
		slog.Int("depth", l.Depth),
		slog.Int("frontier", l.Frontier),
		slog.Int("dedup_hits", l.Dup),
		slog.Int("configs", l.Configs),
	)
	s.rec.Load().Tick()
}

// LevelSizeBounds are the fixed buckets of the explore_level_size
// histogram: powers of four spanning one configuration to the largest
// frontiers the engine has met.
var LevelSizeBounds = []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
