package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestNilScopeIsUniversalNoOp pins the package's core contract: every
// instrument is callable on its nil receiver, so disabled observability
// needs no conditionals beyond the one nil-check inside each method.
func TestNilScopeIsUniversalNoOp(t *testing.T) {
	var s *Scope
	if s.Enabled() {
		t.Fatal("nil scope reports enabled")
	}
	s.Counter("c").Add(1)
	s.Gauge("g").Set(7)
	s.Gauge("g").Max(9)
	s.Histogram("h", LevelSizeBounds).Observe(3)
	sp := s.StartSpan("span", slog.Int("k", 1))
	sp.End(slog.Int("k", 2))
	s.Event("event")
	s.SetPhase("phase %d", 1)
	s.ExploreLevel(Level{Depth: 1, Frontier: 10})
	if s.Registry() != nil || s.Tracer() != nil || s.Progress() != nil {
		t.Fatal("nil scope leaked a non-nil backend")
	}
	if got := s.Progress().Snapshot(); got.EtaSec != -1 {
		t.Fatalf("nil progress snapshot = %+v, want EtaSec -1", got)
	}
	var tr *Tracer
	tr.Event("e")
	tr.StartSpan("s").End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var reg *Registry
	reg.Counter("c").Add(1)
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	var sv *Server
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrySnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries").Add(3)
	r.Counter("queries").Add(2)
	r.Gauge("depth").Set(4)
	r.Gauge("peak").Max(10)
	r.Gauge("peak").Max(7) // must not lower the high-water mark
	h := r.Histogram("sizes", []int64{1, 4, 16})
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}

	snap := r.Snapshot()
	if snap["queries"] != int64(5) || snap["depth"] != int64(4) || snap["peak"] != int64(10) {
		t.Fatalf("snapshot = %v", snap)
	}
	hist, ok := snap["sizes"].(map[string]int64)
	if !ok {
		t.Fatalf("histogram snapshot has type %T", snap["sizes"])
	}
	if hist["le_1"] != 1 || hist["le_4"] != 2 || hist["+inf"] != 1 || hist["count"] != 4 || hist["sum"] != 106 {
		t.Fatalf("histogram buckets = %v", hist)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("WriteJSON output is not JSON: %v\n%s", err, buf.String())
	}
	if parsed["queries"] != float64(5) {
		t.Fatalf("parsed queries = %v", parsed["queries"])
	}
	// Same-name lookups return the same instrument.
	if r.Counter("queries") != r.Counter("queries") {
		t.Fatal("counter lookup is not idempotent")
	}
}

// TestMetricsConcurrent exercises the atomic paths under the race detector
// (CI runs this package with -race).
func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Max(int64(i*1000 + j))
				r.Histogram("h", LevelSizeBounds).Observe(int64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 7999 {
		t.Fatalf("max gauge = %d, want 7999", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// traceRecords parses a JSONL trace buffer into one map per record.
func traceRecords(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%s", err, line)
		}
		out = append(out, rec)
	}
	return out
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := tr.StartSpan("lemma1", slog.Int("procs", 3))
	tr.Event("probe", slog.String("outcome", "exhausted"))
	sp.End(slog.Int("peeled", 1))

	recs := traceRecords(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	if recs[0]["t"] != "span_start" || recs[0]["msg"] != "lemma1" || recs[0]["procs"] != float64(3) {
		t.Fatalf("span_start = %v", recs[0])
	}
	if recs[1]["t"] != "event" || recs[1]["outcome"] != "exhausted" {
		t.Fatalf("event = %v", recs[1])
	}
	if recs[2]["t"] != "span_end" || recs[2]["peeled"] != float64(1) {
		t.Fatalf("span_end = %v", recs[2])
	}
	if recs[0]["span"] != recs[2]["span"] {
		t.Fatalf("span ids do not link: start %v, end %v", recs[0]["span"], recs[2]["span"])
	}
	if _, ok := recs[2]["dur_ms"].(float64); !ok {
		t.Fatalf("span_end missing dur_ms: %v", recs[2])
	}
}

func TestProgressETA(t *testing.T) {
	p := NewProgress()
	if got := p.Snapshot().EtaSec; got != -1 {
		t.Fatalf("fresh progress ETA = %v, want -1 (too early)", got)
	}
	p.Level(1, 100, 100)
	p.Level(2, 400, 400) // growing: refuse to extrapolate
	if got := p.Snapshot().EtaSec; got != -1 {
		t.Fatalf("growing-frontier ETA = %v, want -1", got)
	}
	p.Level(3, 200, 200) // shrinking at r=0.5: finite estimate
	s := p.Snapshot()
	if s.EtaSec <= 0 {
		t.Fatalf("shrinking-frontier ETA = %v, want > 0", s.EtaSec)
	}
	if s.PeakFrontier != 400 || s.FrontierDepth != 3 || s.Configs != 700 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestScopeExploreLevel(t *testing.T) {
	var buf bytes.Buffer
	s := NewScope(NewTracer(&buf))
	s.SetPhase("lemma %d", 4)
	s.ExploreLevel(Level{Depth: 1, Frontier: 10, Dup: 3, Configs: 11, Steps: 20})
	s.ExploreLevel(Level{Depth: 2, Frontier: 4, Dup: 9, Configs: 15, Steps: 40})

	snap := s.Registry().Snapshot()
	if snap["explore_configs"] != int64(14) || snap["explore_dedup_hits"] != int64(12) {
		t.Fatalf("cumulative counters = %v", snap)
	}
	if snap["explore_depth"] != int64(2) || snap["explore_frontier"] != int64(4) || snap["explore_peak_frontier"] != int64(10) {
		t.Fatalf("gauges = %v", snap)
	}
	ps := s.Progress().Snapshot()
	if ps.Phase != "lemma 4" || ps.FrontierDepth != 2 || ps.PeakFrontier != 10 {
		t.Fatalf("progress = %+v", ps)
	}
	recs := traceRecords(t, &buf)
	if len(recs) != 3 || recs[0]["msg"] != "phase" || recs[1]["msg"] != "explore_level" {
		t.Fatalf("trace = %v", recs)
	}
}

func TestHandlerProgressAndVars(t *testing.T) {
	s := NewScope(nil)
	s.SetPhase("testing")
	s.Counter("valency_queries").Add(42)
	s.ExploreLevel(Level{Depth: 3, Frontier: 17, Configs: 20})

	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var prog Snapshot
	if err := json.Unmarshal(get("/progress"), &prog); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	// Progress counts configurations as the sum of fresh-per-level
	// frontiers, so one level of 17 fresh configurations reads 17.
	if prog.Phase != "testing" || prog.FrontierDepth != 3 || prog.Configs != 17 {
		t.Fatalf("/progress = %+v", prog)
	}

	var vars map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars["valency_queries"] != float64(42) {
		t.Fatalf("/debug/vars missing registry metric: %v", vars["valency_queries"])
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing process expvars (memstats)")
	}

	if got := get("/debug/pprof/cmdline"); len(got) == 0 {
		t.Fatal("/debug/pprof/cmdline returned nothing")
	}
}

// TestHandlerHealthReady pins the health surface every -debug-addr command
// now exposes: /healthz is unconditionally alive, /readyz follows the
// scope's registered probe and degrades to 503 with the probe's error.
func TestHandlerHealthReady(t *testing.T) {
	s := NewScope(nil)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	status := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := status("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	// No probe registered: ready by default (one-shot commands).
	if code, body := status("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz without probe = %d %q", code, body)
	}
	// A draining service flips unready; its error is the body.
	s.SetReadyCheck(func() error { return errors.New("draining: not admitting jobs") })
	if code, body := status("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz while draining = %d %q", code, body)
	}
	// And back.
	s.SetReadyCheck(nil)
	if code, _ := status("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d", code)
	}
	// /healthz stays alive throughout — liveness is not readiness.
	if code, _ := status("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while unready = %d", code)
	}

	// The nil scope serves both endpoints too.
	nilSrv := httptest.NewServer(Handler(nil))
	defer nilSrv.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(nilSrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("nil scope %s = %d", path, resp.StatusCode)
		}
	}
}

func TestStartDisabledAndFileTrace(t *testing.T) {
	scope, stop, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if scope != nil {
		t.Fatal("empty config produced a non-nil scope")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/trace.jsonl"
	scope, stop, err = Start(Config{TraceOut: path, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	scope.StartSpan("s").End()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"t":"span_start"`)) {
		t.Fatalf("trace file missing span records:\n%s", data)
	}
}
