package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) of the metrics
// registry, served at /metrics alongside the expvar JSON at /debug/vars.
// The registry's snake_case names map straight onto the Prometheus data
// model; the few names carrying characters outside [a-zA-Z0-9_:] (probe
// outcomes like "solo-certificate") are sanitised on the way out, and
// histograms — stored as per-bucket counts internally — are rendered with
// the cumulative _bucket/_sum/_count series the format requires.

// promName sanitises a registry name into a legal Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_', and a leading digit
// gets a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
			b.WriteByte(c)
			continue
		}
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promHelp escapes a help string for the # HELP line: backslash and
// newline are the two characters the format escapes there.
func promHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// header writes the # HELP and # TYPE preamble of one metric family.
func promHeader(w io.Writer, name, help, typ string) error {
	if help == "" {
		help = name
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, promHelp(help), name, typ)
	return err
}

// WritePrometheus renders every metric in Prometheus text format, families
// sorted by name so the output is deterministic. Counters and gauges are
// single samples; histograms become cumulative <name>_bucket{le="..."}
// series plus <name>_sum and <name>_count. Safe on nil (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(counters)+len(gauges)+len(hists))
	for k := range counters {
		names = append(names, k)
	}
	for k := range gauges {
		names = append(names, k)
	}
	for k := range hists {
		names = append(names, k)
	}
	sort.Strings(names)

	prev := ""
	for _, name := range names {
		if name == prev {
			// A name claimed by two metric kinds renders once, under the
			// precedence of the switch below.
			continue
		}
		prev = name
		pn := promName(name)
		switch {
		case counters[name] != nil:
			if err := promHeader(w, pn, help[name], "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", pn, counters[name].Value()); err != nil {
				return err
			}
		case gauges[name] != nil:
			if err := promHeader(w, pn, help[name], "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", pn, gauges[name].Value()); err != nil {
				return err
			}
		default:
			h := hists[name]
			if err := promHeader(w, pn, help[name], "histogram"); err != nil {
				return err
			}
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum); err != nil {
					return err
				}
			}
			// The +Inf bucket is the total count by definition; read n
			// rather than summing so a racing Observe cannot leave the
			// family internally inconsistent in an obvious way.
			n := h.n.Load()
			if cum > n {
				n = cum
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, n); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n", pn, h.sum.Load()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", pn, n); err != nil {
				return err
			}
		}
	}
	return nil
}
