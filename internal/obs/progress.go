package obs

import (
	"sync/atomic"
	"time"
)

// Progress is the mutable state behind the /progress endpoint: what the
// engine is doing right now. Writers are the instrumented packages (the
// adversary sets the phase, the exploration engine reports levels); the
// reader is whoever polls /progress, from another goroutine, so every field
// is atomic and Snapshot never blocks the engine.
type Progress struct {
	start time.Time
	phase atomic.Value // string

	depth        atomic.Int64 // BFS depth of the exploration in flight
	frontier     atomic.Int64 // its current level size
	prevFrontier atomic.Int64 // the level before, for the growth ratio
	peakFrontier atomic.Int64
	configs      atomic.Int64 // configurations visited, cumulative
	spans        atomic.Int64 // spans opened so far
	lastCkpt     atomic.Int64 // unix nanos of the last checkpoint save, 0 = none
}

// NewProgress returns a progress tracker whose clock starts now.
func NewProgress() *Progress {
	p := &Progress{start: time.Now()}
	p.phase.Store("")
	return p
}

// SetPhase records the phase label shown by /progress. Safe on nil.
func (p *Progress) SetPhase(phase string) {
	if p == nil {
		return
	}
	p.phase.Store(phase)
}

// Level records one completed BFS level of the exploration in flight.
func (p *Progress) Level(depth, frontier, configs int) {
	if p == nil {
		return
	}
	p.depth.Store(int64(depth))
	p.prevFrontier.Store(p.frontier.Swap(int64(frontier)))
	raiseTo(&p.peakFrontier, int64(frontier))
	p.configs.Add(int64(configs))
}

// Checkpoint records that a checkpoint was saved now; /progress reports its
// age so an operator can tell a healthy run from one whose persistence has
// silently stalled. Safe on nil.
func (p *Progress) Checkpoint() {
	if p == nil {
		return
	}
	p.lastCkpt.Store(time.Now().UnixNano())
}

// ShardHealth is one shard slice's liveness row on /progress: who leases
// it, where its owner is in the level protocol, how stale the lease is
// (-1 when unowned), and how many times the slice has been reassigned
// after a crash or stall. Populated only by distributed runs.
type ShardHealth struct {
	Slice       int     `json:"slice"`
	Worker      string  `json:"worker,omitempty"`
	Level       int     `json:"level"`
	Phase       string  `json:"phase"`
	LeaseAgeSec float64 `json:"lease_age_sec"`
	Reassigns   int     `json:"reassigns"`
}

// raiseTo raises the atomic to v if larger (a lock-free high-water mark).
func raiseTo(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot is the JSON document served by /progress.
type Snapshot struct {
	// Phase is the engine's current proof stage ("" before the first).
	Phase string `json:"phase"`
	// ElapsedSec is wall-clock time since the scope was created.
	ElapsedSec float64 `json:"elapsed_sec"`
	// FrontierDepth and FrontierSize describe the BFS level most recently
	// completed by the exploration in flight.
	FrontierDepth int64 `json:"frontier_depth"`
	FrontierSize  int64 `json:"frontier_size"`
	PeakFrontier  int64 `json:"peak_frontier"`
	// Configs is the cumulative number of configurations visited across
	// every exploration of the run.
	Configs       int64   `json:"configs"`
	ConfigsPerSec float64 `json:"configs_per_sec"`
	// Spans counts trace spans opened so far.
	Spans int64 `json:"spans"`
	// EtaSec estimates the time to exhaust the exploration in flight from
	// its level-growth ratio: when levels are shrinking geometrically
	// (ratio r < 1) the remaining work is about frontier*r/(1-r)
	// configurations. -1 means no estimate (growing or too early).
	EtaSec float64 `json:"eta_sec"`
	// CheckpointAgeSec is the time since the last checkpoint save, -1 when
	// the run has never checkpointed (or checkpointing is off).
	CheckpointAgeSec float64 `json:"checkpoint_age_sec"`
}

// Snapshot returns the current progress. Safe on nil (zero snapshot).
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{EtaSec: -1, CheckpointAgeSec: -1}
	}
	elapsed := time.Since(p.start).Seconds()
	s := Snapshot{
		Phase:            p.phase.Load().(string),
		ElapsedSec:       elapsed,
		FrontierDepth:    p.depth.Load(),
		FrontierSize:     p.frontier.Load(),
		PeakFrontier:     p.peakFrontier.Load(),
		Configs:          p.configs.Load(),
		Spans:            p.spans.Load(),
		EtaSec:           -1,
		CheckpointAgeSec: -1,
	}
	if ck := p.lastCkpt.Load(); ck != 0 {
		s.CheckpointAgeSec = time.Since(time.Unix(0, ck)).Seconds()
	}
	if elapsed > 0 {
		s.ConfigsPerSec = float64(s.Configs) / elapsed
	}
	prev := p.prevFrontier.Load()
	if prev > 0 && s.FrontierSize > 0 && s.FrontierSize < prev && s.ConfigsPerSec > 0 {
		r := float64(s.FrontierSize) / float64(prev)
		remaining := float64(s.FrontierSize) * r / (1 - r)
		s.EtaSec = remaining / s.ConfigsPerSec
	}
	return s
}
