package obs

import (
	"bufio"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed metric family from a text-format exposition.
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

type promSample struct {
	name   string // full sample name (family, family_bucket, _sum, _count)
	labels string // raw label block without braces, "" if none
	value  int64
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// parseProm is a strict parser for the Prometheus text format (0.0.4)
// subset this package emits: it fails the test on any malformed line,
// HELP/TYPE ordering violation, illegal metric or label name, duplicate
// family, or sample that does not belong to the preceding family.
func parseProm(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	var cur *promFamily
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: illegal metric name %q", lineNo, name)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("line %d: family %q declared twice", lineNo, name)
			}
			if strings.ContainsAny(strings.ReplaceAll(strings.ReplaceAll(help, `\\`, ""), `\n`, ""), "\n\\") {
				t.Fatalf("line %d: unescaped character in help %q", lineNo, help)
			}
			cur = &promFamily{name: name, help: help}
			fams[name] = cur
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			if cur == nil || cur.name != name {
				t.Fatalf("line %d: TYPE for %q does not follow its HELP", lineNo, name)
			}
			if cur.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unexpected type %q", lineNo, typ)
			}
			cur.typ = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		default:
			nameAndLabels, valStr, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("line %d: malformed sample: %q", lineNo, line)
			}
			val, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				t.Fatalf("line %d: non-integer sample value %q: %v", lineNo, valStr, err)
			}
			name, labels := nameAndLabels, ""
			if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
				if !strings.HasSuffix(nameAndLabels, "}") {
					t.Fatalf("line %d: unterminated label block: %q", lineNo, line)
				}
				name, labels = nameAndLabels[:i], nameAndLabels[i+1:len(nameAndLabels)-1]
				for _, pair := range strings.Split(labels, ",") {
					if !promLabelRe.MatchString(pair) {
						t.Fatalf("line %d: malformed label %q", lineNo, pair)
					}
				}
			}
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: illegal sample name %q", lineNo, name)
			}
			if cur == nil {
				t.Fatalf("line %d: sample %q before any family", lineNo, name)
			}
			base := cur.name
			if name != base && name != base+"_bucket" && name != base+"_sum" && name != base+"_count" {
				t.Fatalf("line %d: sample %q does not belong to family %q", lineNo, name, base)
			}
			if cur.typ != "histogram" && name != base {
				t.Fatalf("line %d: suffixed sample %q on %s family", lineNo, name, cur.typ)
			}
			cur.samples = append(cur.samples, promSample{name: name, labels: labels, value: val})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

// checkHistogramFamily validates the cumulative-bucket contract: bucket
// values non-decreasing in le order, a final le="+Inf" bucket, and
// _count equal to the +Inf bucket.
func checkHistogramFamily(t *testing.T, f *promFamily) {
	t.Helper()
	var buckets []promSample
	var sum, count *promSample
	for i := range f.samples {
		s := &f.samples[i]
		switch s.name {
		case f.name + "_bucket":
			buckets = append(buckets, *s)
		case f.name + "_sum":
			sum = s
		case f.name + "_count":
			count = s
		default:
			t.Fatalf("family %s: stray sample %q", f.name, s.name)
		}
	}
	if len(buckets) == 0 || sum == nil || count == nil {
		t.Fatalf("family %s: incomplete histogram (buckets=%d sum=%v count=%v)", f.name, len(buckets), sum != nil, count != nil)
	}
	last := buckets[len(buckets)-1]
	if last.labels != `le="+Inf"` {
		t.Fatalf("family %s: last bucket is %q, want le=\"+Inf\"", f.name, last.labels)
	}
	prev := int64(-1)
	for _, b := range buckets {
		if b.value < prev {
			t.Fatalf("family %s: bucket %q value %d below previous %d; buckets are not cumulative", f.name, b.labels, b.value, prev)
		}
		prev = b.value
	}
	if count.value != last.value {
		t.Fatalf("family %s: _count = %d but +Inf bucket = %d", f.name, count.value, last.value)
	}
}

// TestWritePrometheusStrict builds a registry shaped like the engine's —
// including a dash-carrying probe name and a help string with characters
// that need escaping — and validates the whole exposition with the strict
// parser.
func TestWritePrometheusStrict(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("explore_configs").Add(41)
	reg.Counter("valency_probe_solo-certificate").Add(7) // dash must sanitise
	reg.Gauge("jobs_running").Set(3)
	reg.SetHelp("explore_configs", "configurations expanded\nwith a newline and a \\ backslash")
	h := reg.Histogram("explore_level_size", []int64{1, 10, 100})
	for _, v := range []int64{0, 5, 50, 500, 5000} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams := parseProm(t, b.String())

	c, ok := fams["explore_configs"]
	if !ok || c.typ != "counter" {
		t.Fatalf("explore_configs family missing or wrong type: %+v", c)
	}
	if len(c.samples) != 1 || c.samples[0].value != 41 {
		t.Fatalf("explore_configs samples = %+v, want single 41", c.samples)
	}
	if !strings.Contains(c.help, `\n`) || !strings.Contains(c.help, `\\`) {
		t.Fatalf("help not escaped: %q", c.help)
	}

	probe, ok := fams["valency_probe_solo_certificate"]
	if !ok {
		t.Fatalf("dash name not sanitised; families: %v", famNames(fams))
	}
	if probe.samples[0].value != 7 {
		t.Fatalf("sanitised counter value = %d, want 7", probe.samples[0].value)
	}

	g, ok := fams["jobs_running"]
	if !ok || g.typ != "gauge" || g.samples[0].value != 3 {
		t.Fatalf("jobs_running family wrong: %+v", g)
	}

	hist, ok := fams["explore_level_size"]
	if !ok || hist.typ != "histogram" {
		t.Fatalf("explore_level_size family missing or wrong type: %+v", hist)
	}
	checkHistogramFamily(t, hist)
	// 5 observations, 2 of them (500, 5000) past the largest bound.
	var inf int64
	for _, s := range hist.samples {
		if s.labels == `le="+Inf"` {
			inf = s.value
		}
	}
	if inf != 5 {
		t.Fatalf("+Inf bucket = %d, want 5", inf)
	}
}

// TestMetricsEndpointServesPrometheus drives the real /metrics route and
// re-validates the body plus the versioned content type.
func TestMetricsEndpointServesPrometheus(t *testing.T) {
	scope := NewScope(nil)
	scope.Counter("explore_configs").Add(9)
	scope.Histogram("checkpoint_save_us", []int64{100, 1000}).Observe(50)

	rr := httptest.NewRecorder()
	Handler(scope).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("/metrics status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks text-format version", ct)
	}
	fams := parseProm(t, rr.Body.String())
	if f := fams["explore_configs"]; f == nil || f.samples[0].value != 9 {
		t.Fatalf("explore_configs not served: %+v", f)
	}
	if f := fams["checkpoint_save_us"]; f == nil || f.typ != "histogram" {
		t.Fatalf("checkpoint_save_us not served as histogram: %+v", f)
	} else {
		checkHistogramFamily(t, f)
	}
}

// TestPromNameSanitiser pins the exact sanitisation rules.
func TestPromNameSanitiser(t *testing.T) {
	cases := map[string]string{
		"explore_configs":                "explore_configs",
		"valency_probe_solo-certificate": "valency_probe_solo_certificate",
		"a.b/c":                          "a_b_c",
		"0abc":                           "_0abc",
		"ns:sub":                         "ns:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func famNames(fams map[string]*promFamily) []string {
	out := make([]string, 0, len(fams))
	for k := range fams {
		out = append(out, k)
	}
	return out
}

// TestHistogramQuantile pins the linear-interpolation estimator the
// /progress ETA and the snapshot p50/p95/p99 keys rely on.
func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q", []int64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got < 5 || got > 15 {
		t.Fatalf("p50 = %v, want within [5,15] for a 10/10 split", got)
	}
	if got := h.Quantile(0.95); got <= 15 || got > 20 {
		t.Fatalf("p95 = %v, want in (15,20]", got)
	}
	// Overflow observations clamp to the largest finite bound rather than
	// inventing values beyond what the buckets can resolve.
	h2 := NewRegistry().Histogram("q2", []int64{10})
	h2.Observe(99)
	if got := h2.Quantile(0.99); got != 10 {
		t.Fatalf("overflow quantile = %v, want clamp to 10", got)
	}

	snapHost := NewRegistry()
	h3 := snapHost.Histogram("lat", []int64{1, 2, 4})
	h3.Observe(1)
	h3.Observe(3)
	snap := snapHost.Snapshot()["lat"].(map[string]int64)
	for _, k := range []string{"p50", "p95", "p99", "count", "sum"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing %q: %v", k, snap)
		}
	}
}
