package obs

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer emits structured spans and events as JSONL: one slog JSON record
// per line, written to the -trace-out destination. Records carry a "t"
// attribute ("span_start", "span_end" or "event"), the span/event name as
// the message, and a process-unique span id linking start to end, so a
// trace is greppable by hand and trivially parseable by tools.
//
// A nil *Tracer is a no-op (as is a nil *Scope above it); an enabled tracer
// costs one slog record per span edge or event, which instrumented code
// only pays at phase granularity (lemma stages, BFS levels, oracle
// searches), never per configuration.
type Tracer struct {
	log  *slog.Logger
	ids  atomic.Uint64
	sink io.Writer

	mu     sync.Mutex
	closer io.Closer
}

// NewTracer returns a tracer writing JSONL to w. If w is also an io.Closer,
// Close closes it.
func NewTracer(w io.Writer) *Tracer {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	t := &Tracer{log: slog.New(h), sink: w}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	return t
}

// NewTracerWithID returns a tracer whose every record carries a
// "trace":traceID attribute, so spans from one job remain filterable after
// interleaving with other jobs' records in a shared sink (the multi-tenant
// server tees each job's tracer into its own trace). An empty traceID is
// the plain NewTracer.
func NewTracerWithID(w io.Writer, traceID string) *Tracer {
	t := NewTracer(w)
	if traceID != "" {
		t.log = t.log.With(slog.String("trace", traceID))
	}
	return t
}

// Sink returns the writer this tracer emits to, letting an owner tee
// another tracer's output into the same stream (slog handlers serialise
// each record into a single Write, so interleaved JSONL lines stay whole).
// Nil for a nil tracer.
func (t *Tracer) Sink() io.Writer {
	if t == nil {
		return nil
	}
	return t.sink
}

// Close releases the underlying writer, if it is closable. Safe on nil.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closer == nil {
		return nil
	}
	err := t.closer.Close()
	t.closer = nil
	return err
}

// Span is one open span. The zero of *Span (nil) is the no-op span handed
// out by disabled scopes; End on it does nothing.
type Span struct {
	tr    *Tracer
	name  string
	id    uint64
	start time.Time
}

// StartSpan opens a span and emits its span_start record. Safe on nil.
func (t *Tracer) StartSpan(name string, attrs ...slog.Attr) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, name: name, id: t.ids.Add(1), start: time.Now()}
	all := append([]slog.Attr{
		slog.String("t", "span_start"),
		slog.Uint64("span", sp.id),
	}, attrs...)
	t.log.LogAttrs(context.Background(), slog.LevelInfo, name, all...)
	return sp
}

// End closes the span, emitting its span_end record with the wall-clock
// duration and any closing attributes. Safe on nil.
func (sp *Span) End(attrs ...slog.Attr) {
	if sp == nil {
		return
	}
	all := append([]slog.Attr{
		slog.String("t", "span_end"),
		slog.Uint64("span", sp.id),
		slog.Float64("dur_ms", float64(time.Since(sp.start).Microseconds())/1000),
	}, attrs...)
	sp.tr.log.LogAttrs(context.Background(), slog.LevelInfo, sp.name, all...)
}

// Event emits a single instantaneous record. Safe on nil.
func (t *Tracer) Event(name string, attrs ...slog.Attr) {
	if t == nil {
		return
	}
	all := append([]slog.Attr{slog.String("t", "event")}, attrs...)
	t.log.LogAttrs(context.Background(), slog.LevelInfo, name, all...)
}
