package model

import "fmt"

// The allocation-lean stepping machinery behind the exploration hot path.
//
// Config.Step allocates a fresh states slice (and, for writes, a regs
// slice) per transition — the right contract for callers that keep the
// result, but the search examines several children per configuration and
// immediately discards the duplicates. StepInto writes the successor into
// caller-owned scratch instead; the few children that survive
// deduplication are detached into a ConfigSlab arena. Together they take
// the engine's per-transition slice allocations to zero.

// OpPeeker is an optional extension of State: PeekOp returns the pending
// operation's kind and register without building the full Op. Pending's
// Arg field is the expensive part for write-poised states (protocols
// encode it into a fresh string), and most inspections — move
// enumeration, decided-checks, cover tests — need only the kind and
// register. The two forms must agree: PeekOp() == (Pending().Kind,
// Pending().Reg) always.
type OpPeeker interface {
	PeekOp() (OpKind, int)
}

// PeekOp returns the kind and register of s's pending operation, through
// OpPeeker when implemented and Pending otherwise.
func PeekOp(s State) (OpKind, int) {
	if p, ok := s.(OpPeeker); ok {
		return p.PeekOp()
	}
	op := s.Pending()
	return op.Kind, op.Reg
}

// StepScratch holds the reusable successor buffers for StepInto. The zero
// value is ready; one scratch serves one goroutine.
type StepScratch struct {
	states []State
	regs   []Value
}

// StepInto is Config.Step with the successor's slices carved from sc
// instead of freshly allocated. The returned Config aliases sc and is
// invalidated by the next StepInto on the same scratch: callers keep a
// survivor with ConfigSlab.Clone (or rebuild it) before stepping again. c
// itself must not alias sc (step from stable storage, not from a previous
// StepInto result on the same scratch).
func (c Config) StepInto(sc *StepScratch, pid int, coin Value) Config {
	st := c.states[pid]
	op := st.Pending()
	if op.Kind == OpDecide {
		return c
	}
	if cap(sc.states) < len(c.states) {
		sc.states = make([]State, len(c.states))
	}
	states := sc.states[:len(c.states)]
	copy(states, c.states)
	regs := c.regs
	switch op.Kind {
	case OpRead:
		states[pid] = st.Next(c.regs[op.Reg])
	case OpCoin:
		states[pid] = st.Next(coin)
	case OpWrite, OpSwap:
		if op.Kind == OpSwap {
			states[pid] = st.Next(c.regs[op.Reg])
		} else {
			states[pid] = st.Next(Bottom)
		}
		if cap(sc.regs) < len(c.regs) {
			sc.regs = make([]Value, len(c.regs))
		}
		scratchRegs := sc.regs[:len(c.regs)]
		copy(scratchRegs, c.regs)
		scratchRegs[op.Reg] = op.Arg
		regs = scratchRegs
	default:
		panic(fmt.Sprintf("model: process %d poised on invalid op %v", pid, op))
	}
	return Config{states: states, regs: regs}
}

// Clone returns a deep copy of c with freshly allocated slices. Exploration
// hands out configurations backed by reused arenas that are only valid
// transiently (explore.Visit); callers that retain one past that window
// clone it first.
func (c Config) Clone() Config {
	states := make([]State, len(c.states))
	copy(states, c.states)
	regs := make([]Value, len(c.regs))
	copy(regs, c.regs)
	return Config{states: states, regs: regs}
}

// ConfigSlab is an append-only arena for detached Config copies: Clone
// copies a (possibly scratch-backed) configuration's slices into the
// slab's backing arrays and returns a Config aliasing them. Clones stay
// valid across slab growth (they keep their windows into the old backing
// array) and die together at Reset. The zero value is ready; one slab
// serves one goroutine.
type ConfigSlab struct {
	states []State
	regs   []Value
}

// Clone detaches c into the slab.
func (a *ConfigSlab) Clone(c Config) Config {
	ns := len(a.states)
	a.states = append(a.states, c.states...)
	nr := len(a.regs)
	a.regs = append(a.regs, c.regs...)
	return Config{
		states: a.states[ns:len(a.states):len(a.states)],
		regs:   a.regs[nr:len(a.regs):len(a.regs)],
	}
}

// Reset retires every clone at once, keeping the backing arrays for
// reuse. References are cleared so retired states can be collected; the
// caller asserts no clone from before the Reset is still live.
func (a *ConfigSlab) Reset() {
	clear(a.states)
	a.states = a.states[:0]
	clear(a.regs)
	a.regs = a.regs[:0]
}
