package model

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements the bit-packed fixed-width configuration encoding
// behind the exploration engine's arena frontiers (DESIGN.md S22).
//
// A PackedCodec interns every distinct process state and register value it
// sees into per-protocol dictionaries and represents a Config as a short
// []uint64 of fixed-width dictionary indices: one state field per process,
// one value field per register. Packing is dictionary-building (the codec
// grows as exploration discovers states); unpacking is two array reads per
// field. Because states are interned by their exact State.Key bytes, the
// round trip Unpack(Pack(c)) yields a configuration whose canonical key is
// byte-identical to c's — TestPackedCodecRoundTripsCanonicalKey holds that
// contract for every protocol in the test zoo.
//
// Dictionary indices are assigned in discovery order, so packed words are
// meaningful only relative to the codec instance that produced them: they
// are an in-memory (and same-process spill-file) representation, never a
// durable one. Durable identities — checkpoint fingerprints, memo keys —
// remain hashes of canonical key bytes.

var (
	// ErrPackedCapacity reports an intern dictionary that outgrew its
	// field width. The default widths fit tens of millions of distinct
	// states — far beyond any in-RAM search — so hitting this means the
	// configuration cap was raised into external-memory territory.
	ErrPackedCapacity = errors.New("model: packed codec dictionary full")
	// ErrPackedRange reports packed words that do not decode under the
	// codec: wrong word count, an index beyond the dictionary, or set
	// padding bits. It is the typed "corrupt input" answer the fuzzers
	// demand in place of a panic.
	ErrPackedRange = errors.New("model: packed words out of range")
)

// Default field widths. A state field must hold an index for every
// distinct process state discovered during one search, a value field one
// for every distinct register value; both are generous overestimates
// (distinct states ≤ processes × configurations) while keeping n ≤ 5
// configurations inside four 64-bit words.
const (
	defaultStateBits = 25
	defaultRegBits   = 22
)

// Intern-table geometry. Values live in fixed-size chunks behind atomic
// pointers so concurrent readers never observe a reallocating slice;
// key→index maps are sharded to keep worker contention off a single lock.
const (
	internShards    = 32
	internChunkBits = 12
	internChunkSize = 1 << internChunkBits
)

// internShard is one stripe of the key→index map.
type internShard struct {
	mu  sync.RWMutex
	idx map[string]uint32
	_   [24]byte // keep neighbouring locks off one cache line
}

// internTable is a concurrent append-only dictionary: distinct keys get
// dense indices in discovery order, and index→value lookups are two array
// reads with no lock. limit is the field-width capacity.
type internTable[T any] struct {
	limit  uint32
	next   atomic.Uint32
	chunks []atomic.Pointer[[internChunkSize]T]
	shards [internShards]internShard
}

func newInternTable[T any](bits int) *internTable[T] {
	limit := uint32(1) << bits
	t := &internTable[T]{
		limit:  limit,
		chunks: make([]atomic.Pointer[[internChunkSize]T], (int(limit)+internChunkSize-1)/internChunkSize),
	}
	for i := range t.shards {
		t.shards[i].idx = make(map[string]uint32)
	}
	return t
}

// shardIndex hashes a key to its map stripe (FNV-1a over the key bytes).
func shardIndex[K ~string | ~[]byte](key K) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h % internShards
}

// store places v at index id. Chunks are published with a CAS so two
// shards allocating the same chunk concurrently agree on one.
func (t *internTable[T]) store(id uint32, v T) {
	ci := int(id >> internChunkBits)
	ch := t.chunks[ci].Load()
	if ch == nil {
		fresh := new([internChunkSize]T)
		if t.chunks[ci].CompareAndSwap(nil, fresh) {
			ch = fresh
		} else {
			ch = t.chunks[ci].Load()
		}
	}
	ch[id&(internChunkSize-1)] = v
}

// at returns the value at index id. ok is false for indices never
// interned — the typed-error path of Unpack.
func (t *internTable[T]) at(id uint32) (T, bool) {
	var zero T
	if id >= t.next.Load() {
		return zero, false
	}
	ch := t.chunks[id>>internChunkBits].Load()
	if ch == nil {
		return zero, false
	}
	return ch[id&(internChunkSize-1)], true
}

// internBytes returns the index of key, interning v under a copy of key
// on first sight. The []byte key form lets callers probe with reused
// scratch; the map lookup compiles without a string allocation.
func (t *internTable[T]) internBytes(key []byte, v T) (uint32, error) {
	sh := &t.shards[shardIndex(key)]
	sh.mu.RLock()
	id, ok := sh.idx[string(key)]
	sh.mu.RUnlock()
	if ok {
		return id, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.idx[string(key)]; ok {
		return id, nil
	}
	id = t.next.Add(1) - 1
	if id >= t.limit {
		return 0, ErrPackedCapacity
	}
	t.store(id, v)
	sh.idx[string(key)] = id
	return id, nil
}

// internString is internBytes for callers that already hold a string key.
func (t *internTable[T]) internString(key string, v T) (uint32, error) {
	sh := &t.shards[shardIndex(key)]
	sh.mu.RLock()
	id, ok := sh.idx[key]
	sh.mu.RUnlock()
	if ok {
		return id, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.idx[key]; ok {
		return id, nil
	}
	id = t.next.Add(1) - 1
	if id >= t.limit {
		return 0, ErrPackedCapacity
	}
	t.store(id, v)
	sh.idx[key] = id
	return id, nil
}

// PackedCodec packs configurations of one protocol instance into
// fixed-width []uint64 records. Safe for concurrent use: the dictionaries
// are sharded and the pack/unpack methods touch only caller-owned words.
type PackedCodec struct {
	procs     int
	regs      int
	stateBits int
	regBits   int
	words     int

	states *internTable[State]
	vals   *internTable[Value]
	kbPool sync.Pool
}

// NewPackedCodec computes the packed layout for configurations shaped like
// template (its process and register counts) with the default field widths.
func NewPackedCodec(template Config) *PackedCodec {
	return NewPackedCodecWidths(template, defaultStateBits, defaultRegBits)
}

// NewPackedCodecWidths is NewPackedCodec with explicit field widths (used
// by tests to exercise capacity overflow with tiny dictionaries).
func NewPackedCodecWidths(template Config, stateBits, regBits int) *PackedCodec {
	if stateBits < 1 || stateBits > 32 || regBits < 1 || regBits > 32 {
		panic(fmt.Sprintf("model: packed field widths %d/%d outside [1,32]", stateBits, regBits))
	}
	pc := &PackedCodec{
		procs:     template.NumProcesses(),
		regs:      template.NumRegisters(),
		stateBits: stateBits,
		regBits:   regBits,
		states:    newInternTable[State](stateBits),
		vals:      newInternTable[Value](regBits),
	}
	pc.words = (pc.totalBits() + 63) / 64
	pc.kbPool.New = func() any { return &KeyBuilder{} }
	return pc
}

func (pc *PackedCodec) totalBits() int { return pc.procs*pc.stateBits + pc.regs*pc.regBits }

// Words returns the number of uint64 words one packed configuration
// occupies — the stride of every arena built over this codec.
func (pc *PackedCodec) Words() int { return pc.words }

// NumProcesses returns the process count of the layout.
func (pc *PackedCodec) NumProcesses() int { return pc.procs }

// NumRegisters returns the register count of the layout.
func (pc *PackedCodec) NumRegisters() int { return pc.regs }

// StateBits returns the width of one per-process state field.
func (pc *PackedCodec) StateBits() int { return pc.stateBits }

// RegBits returns the width of one per-register value field.
func (pc *PackedCodec) RegBits() int { return pc.regBits }

func (pc *PackedCodec) stateOff(pid int) int { return pid * pc.stateBits }
func (pc *PackedCodec) regOff(r int) int     { return pc.procs*pc.stateBits + r*pc.regBits }

// DictStats reports the interned dictionary sizes and the largest key-map
// shard of each table — the numbers behind the codec_* gauges. Totals are
// single atomic loads; the shard maxima take one RLock per shard, so this
// is a sampling call (explore reads it once per BFS level), not a hot-path
// one. Safe for concurrent use with interning.
func (pc *PackedCodec) DictStats() (states, vals, maxStateShard, maxValShard int) {
	states = int(pc.states.next.Load())
	vals = int(pc.vals.next.Load())
	maxStateShard = maxShardLen(pc.states)
	maxValShard = maxShardLen(pc.vals)
	return
}

// maxShardLen returns the key count of the fullest map stripe.
func maxShardLen[T any](t *internTable[T]) int {
	max := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		if n := len(sh.idx); n > max {
			max = n
		}
		sh.mu.RUnlock()
	}
	return max
}

// getField extracts the bits-wide field at bit offset off.
func getField(words []uint64, off, bits int) uint64 {
	w, b := off>>6, uint(off&63)
	v := words[w] >> b
	if b+uint(bits) > 64 {
		v |= words[w+1] << (64 - b)
	}
	return v & (1<<uint(bits) - 1)
}

// setField stores val into the bits-wide field at bit offset off.
func setField(words []uint64, off, bits int, val uint64) {
	mask := uint64(1)<<uint(bits) - 1
	w, b := off>>6, uint(off&63)
	words[w] = words[w]&^(mask<<b) | val<<b
	if b+uint(bits) > 64 {
		rem := uint(bits) - (64 - b)
		hiMask := uint64(1)<<rem - 1
		words[w+1] = words[w+1]&^hiMask | val>>(64-b)
	}
}

// InternState returns the dictionary index of s, interning it by its exact
// key bytes on first sight. kb is reusable scratch for streaming the key
// (nil takes one from an internal pool); the exploration workers pass
// their own to keep the hot path allocation-free.
func (pc *PackedCodec) InternState(kb *KeyBuilder, s State) (uint32, error) {
	if kb == nil {
		kb = pc.kbPool.Get().(*KeyBuilder)
		defer pc.kbPool.Put(kb)
	}
	kb.Reset()
	if sw, ok := s.(StateKeyWriter); ok {
		sw.KeyTo(kb)
	} else {
		_, _ = kb.WriteString(s.Key())
	}
	return pc.states.internBytes(kb.Bytes(), s)
}

// InternValue returns the dictionary index of v.
func (pc *PackedCodec) InternValue(v Value) (uint32, error) {
	return pc.vals.internString(string(v), v)
}

// SetState overwrites the state field of pid in words with index id (from
// InternState). words must be a Words()-long record.
func (pc *PackedCodec) SetState(words []uint64, pid int, id uint32) {
	setField(words, pc.stateOff(pid), pc.stateBits, uint64(id))
}

// SetValue overwrites the value field of register r in words with index id
// (from InternValue).
func (pc *PackedCodec) SetValue(words []uint64, r int, id uint32) {
	setField(words, pc.regOff(r), pc.regBits, uint64(id))
}

// PackTo packs c into dst, which must be a Words()-long record; dst is
// overwritten entirely. Errors only when a dictionary outgrows its field
// width (ErrPackedCapacity) or c's shape disagrees with the layout.
func (pc *PackedCodec) PackTo(dst []uint64, c Config) error {
	if len(c.states) != pc.procs || len(c.regs) != pc.regs {
		return fmt.Errorf("%w: config %d/%d does not fit layout %d/%d",
			ErrPackedRange, len(c.states), len(c.regs), pc.procs, pc.regs)
	}
	if len(dst) != pc.words {
		return fmt.Errorf("%w: destination %d words, layout needs %d", ErrPackedRange, len(dst), pc.words)
	}
	for i := range dst {
		dst[i] = 0
	}
	kb := pc.kbPool.Get().(*KeyBuilder)
	defer pc.kbPool.Put(kb)
	for pid, s := range c.states {
		id, err := pc.InternState(kb, s)
		if err != nil {
			return err
		}
		setField(dst, pc.stateOff(pid), pc.stateBits, uint64(id))
	}
	for r, v := range c.regs {
		id, err := pc.vals.internString(string(v), v)
		if err != nil {
			return err
		}
		setField(dst, pc.regOff(r), pc.regBits, uint64(id))
	}
	return nil
}

// Pack packs c into a fresh record.
func (pc *PackedCodec) Pack(c Config) ([]uint64, error) {
	dst := make([]uint64, pc.words)
	if err := pc.PackTo(dst, c); err != nil {
		return nil, err
	}
	return dst, nil
}

// UnpackInto decodes words into the provided backing slices (each at
// least layout-sized) and returns a Config aliasing them. The typed error
// is ErrPackedRange for any record this codec never produced: wrong word
// count, an index beyond the dictionaries, or set padding bits — never a
// panic, whatever the words (FuzzPackedCodecRoundTrip).
func (pc *PackedCodec) UnpackInto(words []uint64, states []State, regs []Value) (Config, error) {
	if len(words) != pc.words {
		return Config{}, fmt.Errorf("%w: %d words, layout needs %d", ErrPackedRange, len(words), pc.words)
	}
	if pad := uint(pc.totalBits() & 63); pad != 0 && words[pc.words-1]>>pad != 0 {
		return Config{}, fmt.Errorf("%w: padding bits set", ErrPackedRange)
	}
	if len(states) < pc.procs || len(regs) < pc.regs {
		return Config{}, fmt.Errorf("%w: backing %d/%d below layout %d/%d",
			ErrPackedRange, len(states), len(regs), pc.procs, pc.regs)
	}
	states = states[:pc.procs]
	regs = regs[:pc.regs]
	for pid := 0; pid < pc.procs; pid++ {
		id := getField(words, pc.stateOff(pid), pc.stateBits)
		s, ok := pc.states.at(uint32(id))
		if !ok {
			return Config{}, fmt.Errorf("%w: state index %d not interned", ErrPackedRange, id)
		}
		states[pid] = s
	}
	for r := 0; r < pc.regs; r++ {
		id := getField(words, pc.regOff(r), pc.regBits)
		v, ok := pc.vals.at(uint32(id))
		if !ok {
			return Config{}, fmt.Errorf("%w: value index %d not interned", ErrPackedRange, id)
		}
		regs[r] = v
	}
	return Config{states: states, regs: regs}, nil
}

// Unpack decodes words into a freshly allocated Config.
func (pc *PackedCodec) Unpack(words []uint64) (Config, error) {
	return pc.UnpackInto(words, make([]State, pc.procs), make([]Value, pc.regs))
}

// Move packing: the exploration engine retains one move per visited
// configuration forever (the witness forest), so the move is packed into
// 32 bits — bit 0 flags a coin flip, bit 1 its outcome, the rest the pid.
// Only the binary outcomes of the OpCoin contract pack; anything else is a
// typed error so corrupt checkpoints fail loudly.

// PackMove encodes m into 32 bits.
func PackMove(m Move) (uint32, error) {
	if m.Pid < 0 || m.Pid >= 1<<30 {
		return 0, fmt.Errorf("%w: move pid %d", ErrPackedRange, m.Pid)
	}
	u := uint32(m.Pid) << 2
	switch m.Coin {
	case Bottom:
	case "0":
		u |= 1
	case "1":
		u |= 3
	default:
		return 0, fmt.Errorf("%w: move coin %q is not a binary outcome", ErrPackedRange, string(m.Coin))
	}
	return u, nil
}

// UnpackMove decodes a PackMove encoding.
func UnpackMove(u uint32) Move {
	m := Move{Pid: int(u >> 2)}
	if u&1 != 0 {
		if u&2 != 0 {
			m.Coin = "1"
		} else {
			m.Coin = "0"
		}
	}
	return m
}
