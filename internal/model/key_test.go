package model

import (
	"strconv"
	"testing"
)

// keyedState is a plain State whose Key goes through the string path of
// Config.KeyTo.
type keyedState struct {
	pid, left int
}

func (s keyedState) Pending() Op {
	if s.left == 0 {
		return Op{Kind: OpDecide, Arg: "d"}
	}
	return Op{Kind: OpWrite, Reg: s.pid, Arg: Value(strconv.Itoa(s.left))}
}

func (s keyedState) Next(Value) State { return keyedState{pid: s.pid, left: s.left - 1} }

func (s keyedState) Key() string { return "k" + strconv.Itoa(s.pid) + "." + strconv.Itoa(s.left) }

// streamedState additionally implements StateKeyWriter, exercising the
// allocation-free path of Config.KeyTo.
type streamedState struct{ keyedState }

func (s streamedState) Next(v Value) State {
	return streamedState{keyedState{pid: s.pid, left: s.left - 1}}
}

func (s streamedState) KeyTo(w KeyWriter) {
	_ = w.WriteByte('k')
	w.WriteInt(s.pid)
	_ = w.WriteByte('.')
	w.WriteInt(s.left)
}

type keyMachine struct{ streamed bool }

func (keyMachine) Name() string        { return "keytest" }
func (keyMachine) Registers(n int) int { return n }
func (m keyMachine) Init(n, pid int, input Value) State {
	budget, _ := strconv.Atoi(string(input))
	if m.streamed {
		return streamedState{keyedState{pid: pid, left: budget}}
	}
	return keyedState{pid: pid, left: budget}
}

// TestKeyToMatchesKey holds Config.KeyTo to its contract: the streamed
// bytes equal the reference Key() string on every configuration along an
// execution, for states with and without the StateKeyWriter fast path.
func TestKeyToMatchesKey(t *testing.T) {
	for _, streamed := range []bool{false, true} {
		c := NewConfig(keyMachine{streamed: streamed}, []Value{"2", "3"})
		var kb KeyBuilder
		for i := 0; i < 6; i++ {
			kb.Reset()
			c.KeyTo(&kb)
			if got, want := kb.String(), c.Key(); got != want {
				t.Fatalf("streamed=%t step %d: KeyTo wrote %q, Key returns %q", streamed, i, got, want)
			}
			pid := i % 2
			if _, done := c.Decided(pid); !done {
				c = c.StepDet(pid)
			}
		}
	}
}

// TestKeyBuilderWriters covers each KeyWriter method and Reset reuse.
func TestKeyBuilderWriters(t *testing.T) {
	var kb KeyBuilder
	_, _ = kb.Write([]byte("ab"))
	_ = kb.WriteByte('c')
	_, _ = kb.WriteString("de")
	kb.WriteInt(-42)
	if got := kb.String(); got != "abcde-42" {
		t.Fatalf("built %q, want %q", got, "abcde-42")
	}
	if kb.Len() != 8 {
		t.Fatalf("Len = %d, want 8", kb.Len())
	}
	kb.Reset()
	if kb.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", kb.Len())
	}
	kb.WriteInt(7)
	if got := string(kb.Bytes()); got != "7" {
		t.Fatalf("after reset built %q, want %q", got, "7")
	}
}
