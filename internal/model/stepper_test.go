package model

import "testing"

// mixState is a test machine exercising every operation kind the packed
// stepper handles: a coin flip, a swap, a read, then a decision.
type mixState struct {
	n, pid int
	input  Value
	stage  int
	coin   Value
	got    Value
}

type mixMachine struct{}

func (mixMachine) Name() string        { return "mix" }
func (mixMachine) Registers(n int) int { return n }
func (mixMachine) Init(n, pid int, input Value) State {
	return mixState{n: n, pid: pid, input: input}
}

func (s mixState) Pending() Op {
	switch s.stage {
	case 0:
		return Op{Kind: OpCoin}
	case 1:
		return Op{Kind: OpSwap, Reg: s.pid, Arg: s.input + s.coin}
	case 2:
		return Op{Kind: OpRead, Reg: (s.pid + 1) % s.n}
	default:
		out := s.got
		if out == Bottom {
			out = s.coin
		}
		return Op{Kind: OpDecide, Arg: out}
	}
}

func (s mixState) Next(in Value) State {
	next := s
	next.stage++
	switch s.stage {
	case 0:
		next.coin = in
	case 1, 2:
		next.got = in
	}
	return next
}

func (s mixState) Key() string {
	return "m" + string(rune('0'+s.pid)) + string(rune('0'+s.stage)) +
		"|" + string(s.input) + "|" + string(s.coin) + "|" + string(s.got)
}

func mixConfig() Config {
	return NewConfig(mixMachine{}, []Value{"a", "b"})
}

// walkMix enumerates the reachable mix-machine space, branching on both
// coin outcomes, and hands each configuration to check.
func walkMix(t *testing.T, root Config, check func(Config)) {
	t.Helper()
	seen := map[string]bool{root.Key(): true}
	queue := []Config{root}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		check(c)
		for pid := 0; pid < c.NumProcesses(); pid++ {
			kind, _ := PeekOp(c.State(pid))
			if kind == OpDecide {
				continue
			}
			outcomes := []Value{Bottom}
			if kind == OpCoin {
				outcomes = []Value{"0", "1"}
			}
			for _, coin := range outcomes {
				child := c.Step(pid, coin)
				if !seen[child.Key()] {
					seen[child.Key()] = true
					queue = append(queue, child)
				}
			}
		}
	}
	if len(seen) < 20 {
		t.Fatalf("mix walk saw only %d configurations", len(seen))
	}
}

// TestStepPackedMatchesStep is the stepper's soundness property: on every
// reachable configuration, every process and coin outcome, StepPacked's
// record decodes to a configuration whose key is byte-identical to
// Config.Step's — across coins, swaps, reads, and writes (toy machine).
func TestStepPackedMatchesStep(t *testing.T) {
	for _, tc := range []struct {
		name string
		root Config
	}{
		{"mix", mixConfig()},
		{"toy", toyConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pc := NewPackedCodec(tc.root)
			ps := pc.NewStepper()
			src := make([]uint64, pc.Words())
			dst := make([]uint64, pc.Words())
			walkMix(t, tc.root, func(c Config) {
				if err := pc.PackTo(src, c); err != nil {
					t.Fatal(err)
				}
				for pid := 0; pid < c.NumProcesses(); pid++ {
					kind, _ := ps.Op(pc.StateID(src, pid))
					if wantKind, _ := PeekOp(c.State(pid)); kind != wantKind {
						t.Fatalf("p%d: stepper op %v, state op %v", pid, kind, wantKind)
					}
					if kind == OpDecide {
						continue
					}
					outcomes := []Value{Bottom}
					if kind == OpCoin {
						outcomes = []Value{"0", "1"}
					}
					for _, coin := range outcomes {
						if err := ps.StepPacked(dst, src, pid, coin); err != nil {
							t.Fatal(err)
						}
						got, err := pc.Unpack(dst)
						if err != nil {
							t.Fatal(err)
						}
						want := c.Step(pid, coin)
						if got.Key() != want.Key() {
							t.Fatalf("p%d coin=%q: packed step key %q, Step key %q",
								pid, string(coin), got.Key(), want.Key())
						}
					}
				}
			})
		})
	}
}

// TestStepIntoMatchesStep holds the scratch-backed step to the allocating
// reference on the full mix space.
func TestStepIntoMatchesStep(t *testing.T) {
	var sc StepScratch
	walkMix(t, mixConfig(), func(c Config) {
		for pid := 0; pid < c.NumProcesses(); pid++ {
			kind, _ := PeekOp(c.State(pid))
			if kind == OpDecide {
				continue
			}
			outcomes := []Value{Bottom}
			if kind == OpCoin {
				outcomes = []Value{"0", "1"}
			}
			for _, coin := range outcomes {
				got := c.StepInto(&sc, pid, coin)
				if want := c.Step(pid, coin); got.Key() != want.Key() {
					t.Fatalf("p%d coin=%q: StepInto key %q, Step key %q",
						pid, string(coin), got.Key(), want.Key())
				}
			}
		}
	})
}

// TestConfigSlabCloneSurvivesScratchReuse: a slab clone must stay intact
// when the scratch it was cloned from is overwritten by later steps and
// when the slab grows.
func TestConfigSlabCloneSurvivesScratchReuse(t *testing.T) {
	var sc StepScratch
	var slab ConfigSlab
	c := mixConfig()
	first := c.StepInto(&sc, 0, "1")
	kept := slab.Clone(first)
	wantKey := first.Key()
	// Overwrite the scratch and grow the slab past its initial capacity.
	for i := 0; i < 100; i++ {
		next := c.StepInto(&sc, 1, "0")
		slab.Clone(next)
	}
	if kept.Key() != wantKey {
		t.Fatalf("slab clone corrupted: key %q, want %q", kept.Key(), wantKey)
	}
	slab.Reset()
	again := slab.Clone(c.StepInto(&sc, 0, "1"))
	if again.Key() != wantKey {
		t.Fatalf("post-Reset clone key %q, want %q", again.Key(), wantKey)
	}
}
