// Package model defines an executable version of the asynchronous shared
// memory model used by Zhu's "A Tight Space Bound for Consensus" (STOC/PODC
// 2016): n processes that communicate by reading and writing shared
// multi-writer multi-reader registers, scheduled by an adversary.
//
// Protocols are expressed as deterministic (optionally coin-flipping) state
// machines via the Machine and State interfaces. A Config captures a full
// system configuration (the local state of every process plus the contents of
// every register); schedules are sequences of process identifiers, and
// applying a schedule to a configuration yields an execution, exactly as in
// Section 2 of the paper.
//
// Everything in this package is immutable-by-convention: applying a step
// returns a fresh Config, so configurations can be stored, hashed, compared
// and replayed freely. That is the property the covering/valency machinery in
// internal/valency and internal/adversary builds on.
package model

import (
	"fmt"
	"strings"
)

// Value is the contents of a register. The paper's lower bound holds even
// for registers of unbounded size, so values are arbitrary strings; protocols
// encode whatever structure they need. The zero value Bottom represents the
// initial contents of every register.
type Value string

// Bottom is the initial contents of every register (⊥ in the paper).
const Bottom Value = ""

// OpKind enumerates the kinds of operations a process can be poised to
// perform. Following the Uber style guide, the enum starts at one so the
// zero value is detectably invalid.
type OpKind uint8

const (
	// OpRead reads a register; the value read is fed to State.Next.
	OpRead OpKind = iota + 1
	// OpWrite writes Op.Arg to register Op.Reg.
	OpWrite
	// OpDecide indicates the process has irrevocably decided Op.Arg.
	// A decided process takes no further steps.
	OpDecide
	// OpCoin flips a fair coin; the outcome ("0" or "1") is fed to
	// State.Next. Coins make a protocol nondeterministic: the exploration
	// machinery branches on both outcomes, which matches the paper's
	// "nondeterministic solo terminating" hypothesis.
	OpCoin
	// OpSwap atomically stores Op.Arg into register Op.Reg and feeds the
	// register's previous contents to State.Next. Swap is the canonical
	// "historyless" primitive of the paper's Section 4: its write-like
	// half obliterates like a write, but the returned old value lets the
	// swapper detect interference — which is exactly why the paper's
	// covering argument (Lemma 2's hiding step) does not extend to it;
	// see consensus.TestSwapDefeatsHiding.
	OpSwap
)

// String returns a short human-readable name for the kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpDecide:
		return "decide"
	case OpCoin:
		return "coin"
	case OpSwap:
		return "swap"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is the operation a process is poised to perform in its current state.
type Op struct {
	Kind OpKind
	// Reg is the register index for OpRead and OpWrite.
	Reg int
	// Arg is the value written (OpWrite) or decided (OpDecide).
	Arg Value
}

// String renders the op in trace notation, e.g. "write(r2, \"1|3\")".
func (o Op) String() string {
	switch o.Kind {
	case OpRead:
		return fmt.Sprintf("read(r%d)", o.Reg)
	case OpWrite:
		return fmt.Sprintf("write(r%d, %q)", o.Reg, string(o.Arg))
	case OpDecide:
		return fmt.Sprintf("decide(%q)", string(o.Arg))
	case OpCoin:
		return "coin()"
	case OpSwap:
		return fmt.Sprintf("swap(r%d, %q)", o.Reg, string(o.Arg))
	default:
		return o.Kind.String()
	}
}

// State is the immutable local state of a single process. Implementations
// must be pure values: Next must not mutate the receiver, and two states with
// equal Key() must behave identically forever. This is what lets the
// exploration machinery hash, memoise and replay configurations.
type State interface {
	// Pending returns the operation the process is poised to perform.
	// For a decided process this is an OpDecide and never changes.
	Pending() Op

	// Next returns the successor state after the pending operation
	// completes. For OpRead the argument is the value read; for OpCoin it
	// is the outcome ("0" or "1"); for OpWrite it is ignored (writes
	// return only an acknowledgement, as in the paper). Next must not be
	// called on a decided state.
	Next(in Value) State

	// Key returns a canonical encoding of the state. Two states are
	// treated as identical iff their keys are equal; keys feed the
	// configuration hash used for indistinguishability and memoisation.
	Key() string
}

// Machine is a protocol: it tells the framework how many registers it uses
// and what each process's initial state is. Implementations must be
// stateless; all per-run state lives in State values.
type Machine interface {
	// Name identifies the protocol in traces and reports.
	Name() string
	// Registers returns the number of shared registers the protocol uses
	// when run by n processes. Register indices are 0..Registers(n)-1.
	Registers(n int) int
	// Init returns the initial state of process pid (0-based) among n
	// processes with the given input value.
	Init(n, pid int, input Value) State
}

// Config is a configuration of the protocol: the local state of each process
// and the contents of each register. Configs are immutable; Step returns a
// new Config. The zero value is not useful; use NewConfig.
type Config struct {
	states []State
	regs   []Value
}

// NewConfig returns the initial configuration of machine m for n processes
// with the given inputs (inputs[i] is the input of process i).
func NewConfig(m Machine, inputs []Value) Config {
	n := len(inputs)
	states := make([]State, n)
	for i, in := range inputs {
		states[i] = m.Init(n, i, in)
	}
	return Config{
		states: states,
		regs:   make([]Value, m.Registers(n)),
	}
}

// RebuildConfig returns a configuration with the given states and register
// contents. The template supplies only dimension checking. It exists for
// tools that must construct configurations directly, such as the
// bisimulation tests of protocol canonicalisers; protocol executions should
// go through Step.
func RebuildConfig(template Config, states []State, regs []Value) Config {
	if len(states) != len(template.states) || len(regs) != len(template.regs) {
		panic(fmt.Sprintf("model: RebuildConfig dimension mismatch: %d/%d states, %d/%d registers",
			len(states), len(template.states), len(regs), len(template.regs)))
	}
	s := make([]State, len(states))
	copy(s, states)
	r := make([]Value, len(regs))
	copy(r, regs)
	return Config{states: s, regs: r}
}

// NumProcesses returns the number of processes in the configuration.
func (c Config) NumProcesses() int { return len(c.states) }

// NumRegisters returns the number of registers in the configuration.
func (c Config) NumRegisters() int { return len(c.regs) }

// State returns the local state of process pid.
func (c Config) State(pid int) State { return c.states[pid] }

// Register returns the contents of register r.
func (c Config) Register(r int) Value { return c.regs[r] }

// Registers returns a copy of the register contents.
func (c Config) Registers() []Value {
	out := make([]Value, len(c.regs))
	copy(out, c.regs)
	return out
}

// Decided reports whether process pid has decided, and if so which value.
// The kind is peeked first (see OpPeeker) so undecided write-poised states
// never pay Pending's argument encoding — this runs once per process per
// visited configuration in the valency oracle.
func (c Config) Decided(pid int) (Value, bool) {
	if k, _ := PeekOp(c.states[pid]); k != OpDecide {
		return Bottom, false
	}
	return c.states[pid].Pending().Arg, true
}

// DecidedValues returns the set of values decided by any process in c.
func (c Config) DecidedValues() map[Value]bool {
	out := make(map[Value]bool)
	for pid := range c.states {
		if v, ok := c.Decided(pid); ok {
			out[v] = true
		}
	}
	return out
}

// Covers reports whether process pid covers register r in c, i.e. is poised
// to perform a write to r (Definition 2 in the paper).
func (c Config) Covers(pid, r int) bool {
	k, reg := PeekOp(c.states[pid])
	return k == OpWrite && reg == r
}

// CoveredRegister returns the register process pid is poised to write, or
// (-1, false) if pid's pending operation is not a write.
func (c Config) CoveredRegister(pid int) (int, bool) {
	k, reg := PeekOp(c.states[pid])
	if k != OpWrite {
		return -1, false
	}
	return reg, true
}

// CoverSet returns, for the given set of processes, the set of registers
// they cover. The second result is false if some process in R is not poised
// to write (so R is not a set of covering processes in the paper's sense).
func (c Config) CoverSet(r []int) (map[int]bool, bool) {
	covered := make(map[int]bool, len(r))
	for _, pid := range r {
		reg, ok := c.CoveredRegister(pid)
		if !ok {
			return nil, false
		}
		covered[reg] = true
	}
	return covered, true
}

// Key returns a canonical encoding of the configuration: the keys of all
// process states plus all register contents. Two configurations with equal
// keys are identical (indistinguishable to every process). It is the
// reference form of KeyTo, which streams the same bytes without
// materialising the string; TestKeyToMatchesKey holds the two together.
func (c Config) Key() string {
	var b strings.Builder
	for _, s := range c.states {
		b.WriteString(s.Key())
		b.WriteByte(keySepField)
	}
	b.WriteByte(keySepSection)
	for _, v := range c.regs {
		b.WriteString(string(v))
		b.WriteByte(keySepField)
	}
	return b.String()
}

// IndistinguishableTo reports whether configurations c and d are
// indistinguishable to every process in p: each process in p is in the same
// state in both, and every register has the same contents in both (the
// definition in Section 2 of the paper).
func (c Config) IndistinguishableTo(d Config, p []int) bool {
	if len(c.regs) != len(d.regs) || len(c.states) != len(d.states) {
		return false
	}
	for i := range c.regs {
		if c.regs[i] != d.regs[i] {
			return false
		}
	}
	for _, pid := range p {
		if c.states[pid].Key() != d.states[pid].Key() {
			return false
		}
	}
	return true
}

// Step applies one step of process pid and returns the resulting
// configuration. If the pending operation is a coin flip, the provided coin
// value ("0" or "1") is used as the outcome; for other operations coin is
// ignored. Stepping a decided process returns c unchanged: decided processes
// take no further steps (their executions have terminated).
func (c Config) Step(pid int, coin Value) Config {
	st := c.states[pid]
	op := st.Pending()
	switch op.Kind {
	case OpDecide:
		return c
	case OpRead:
		return c.withState(pid, st.Next(c.regs[op.Reg]))
	case OpWrite:
		d := c.withState(pid, st.Next(Bottom))
		regs := make([]Value, len(c.regs))
		copy(regs, c.regs)
		regs[op.Reg] = op.Arg
		d.regs = regs
		return d
	case OpCoin:
		return c.withState(pid, st.Next(coin))
	case OpSwap:
		old := c.regs[op.Reg]
		d := c.withState(pid, st.Next(old))
		regs := make([]Value, len(c.regs))
		copy(regs, c.regs)
		regs[op.Reg] = op.Arg
		d.regs = regs
		return d
	default:
		// A Machine returning an invalid op is a programming error in
		// the protocol under test; fail loudly rather than mask it.
		panic(fmt.Sprintf("model: process %d poised on invalid op %v", pid, op))
	}
}

// StepDet applies one deterministic step of process pid. It must not be used
// when pid is poised on a coin flip; use Step with an explicit outcome there.
func (c Config) StepDet(pid int) Config {
	if c.states[pid].Pending().Kind == OpCoin {
		panic("model: StepDet on a coin-flip step; outcome required")
	}
	return c.Step(pid, Bottom)
}

func (c Config) withState(pid int, s State) Config {
	states := make([]State, len(c.states))
	copy(states, c.states)
	states[pid] = s
	return Config{states: states, regs: c.regs}
}
