package model

import "strconv"

// Key separators: keySepField terminates each state key and each register
// value; keySepSection divides the state section from the register section.
// Both are control bytes no protocol legitimately emits, so the encoding is
// prefix-free per field and two configurations share a key iff they share
// every state key and every register value.
const (
	keySepField   = '\x1f'
	keySepSection = '\x1e'
)

// KeyWriter is the streaming sink for configuration keys. The exploration
// engine feeds canonical keys through a KeyWriter straight into a hash
// state, so no per-configuration key string is ever materialised on the hot
// path; the string-returning forms (Config.Key, State.Key, protocol
// canonicalisers) remain the reference implementations, and the explore
// package cross-checks the two in its tests.
//
// The contract for any key-producing function (a KeyFn, a KeyTo, a state's
// Key): equal byte streams must imply behaviourally equivalent
// configurations, and behaviourally distinct configurations must produce
// distinct streams. Dedup soundness in the exploration engine rests
// entirely on this property.
type KeyWriter interface {
	// Write appends p (io.Writer-compatible; the error is always nil for
	// the sinks this repository ships).
	Write(p []byte) (int, error)
	// WriteByte appends a single byte.
	WriteByte(c byte) error
	// WriteString appends s without converting it to []byte.
	WriteString(s string) (int, error)
	// WriteInt appends the decimal representation of i without allocating
	// (the reason this interface exists instead of bare io.Writer).
	WriteInt(i int)
}

// KeyBuilder is the canonical KeyWriter: an append-only byte buffer that is
// reused across configurations (Reset keeps the backing array). It is not
// safe for concurrent use; the exploration engine keeps one per worker.
type KeyBuilder struct {
	buf []byte
}

// Write implements io.Writer; the error is always nil.
func (b *KeyBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

// WriteByte implements io.ByteWriter; the error is always nil.
func (b *KeyBuilder) WriteByte(c byte) error {
	b.buf = append(b.buf, c)
	return nil
}

// WriteString implements io.StringWriter; the error is always nil.
func (b *KeyBuilder) WriteString(s string) (int, error) {
	b.buf = append(b.buf, s...)
	return len(s), nil
}

// WriteInt appends the decimal representation of i. One- and two-digit
// non-negatives — the overwhelming majority of key fields (pids, rounds,
// ballot counters) — are formatted inline; everything else goes through
// strconv.
func (b *KeyBuilder) WriteInt(i int) {
	if uint(i) < 10 {
		b.buf = append(b.buf, byte('0'+i))
		return
	}
	if uint(i) < 100 {
		b.buf = append(b.buf, byte('0'+i/10), byte('0'+i%10))
		return
	}
	b.buf = strconv.AppendInt(b.buf, int64(i), 10)
}

// Bytes returns the accumulated key. The slice aliases the builder's
// buffer and is invalidated by the next Reset or write.
func (b *KeyBuilder) Bytes() []byte { return b.buf }

// Len returns the number of accumulated bytes.
func (b *KeyBuilder) Len() int { return len(b.buf) }

// String returns the accumulated key as a freshly allocated string.
func (b *KeyBuilder) String() string { return string(b.buf) }

// Reset empties the builder, keeping the backing array for reuse.
func (b *KeyBuilder) Reset() { b.buf = b.buf[:0] }

// StateKeyWriter is an optional extension of State: implementations stream
// exactly the bytes State.Key would return, letting Config.KeyTo avoid the
// per-state string allocation. The two forms must agree byte for byte.
type StateKeyWriter interface {
	KeyTo(w KeyWriter)
}

// KeyTo streams the canonical encoding of the configuration into w,
// byte-for-byte identical to Key. States implementing StateKeyWriter are
// streamed without allocation; others fall back to their Key string.
func (c Config) KeyTo(w KeyWriter) {
	for _, s := range c.states {
		if sw, ok := s.(StateKeyWriter); ok {
			sw.KeyTo(w)
		} else {
			_, _ = w.WriteString(s.Key())
		}
		_ = w.WriteByte(keySepField)
	}
	_ = w.WriteByte(keySepSection)
	for _, v := range c.regs {
		_, _ = w.WriteString(string(v))
		_ = w.WriteByte(keySepField)
	}
}
