package model

// PackedStepper executes protocol transitions directly on packed records,
// memoising each (state, input) pair it resolves so the exploration hot
// path stops paying State.Pending/State.Next — and their per-protocol
// string encoding — more than once per behaviourally distinct transition.
//
// Soundness rests on the State contract: states are pure values and two
// states with equal Key behave identically forever. Dictionary ids are
// assigned per key, so (state id, operation input) determines the
// successor state id and any written value id exactly; the memo is a pure
// cache and can never change results, only skip recomputation.
//
// A stepper is single-goroutine scratch (each exploration worker owns
// one); the codec it wraps is shared, so concurrent steppers fill their
// private memos while agreeing on every dictionary id.

// The memo key is sid<<32 | input. A state id determines its pending kind,
// so the input half is interpreted per kind with no cross-kind collisions:
// the read/swap input is the register's value id, the coin input is the
// outcome bit, and writes take no input (0).

// packedOp is the memoised PeekOp of one interned state.
type packedOp struct {
	kind OpKind
	reg  int32
}

// packedSucc is a memoised transition outcome: the successor state id and,
// for write/swap transitions, the id of the value stored to the register.
type packedSucc struct {
	sid      uint32
	wvid     uint32
	writesTo bool
}

// PackedStepper is the per-worker transition engine over one PackedCodec.
type PackedStepper struct {
	pc   *PackedCodec
	kb   KeyBuilder
	ops  []packedOp
	succ map[uint64]packedSucc
	// hits/misses count memo lookups in StepPacked. Plain ints: a stepper
	// is single-goroutine scratch, and the owner harvests them between
	// chunks (explore folds the deltas into per-level metrics).
	hits   uint64
	misses uint64
}

// NewStepper returns a stepper over the codec's dictionaries with empty
// memos.
func (pc *PackedCodec) NewStepper() *PackedStepper {
	return &PackedStepper{pc: pc, succ: make(map[uint64]packedSucc)}
}

// Op returns the pending operation kind and register of the state with
// dictionary id sid, memoised in a dense array.
func (ps *PackedStepper) Op(sid uint32) (OpKind, int) {
	if int(sid) < len(ps.ops) {
		if op := ps.ops[sid]; op.kind != 0 {
			return op.kind, int(op.reg)
		}
	}
	s, ok := ps.pc.states.at(sid)
	if !ok {
		panic("model: stepper op on uninterned state id")
	}
	k, reg := PeekOp(s)
	for int(sid) >= len(ps.ops) {
		ps.ops = append(ps.ops, make([]packedOp, len(ps.ops)+64)...)
	}
	ps.ops[sid] = packedOp{kind: k, reg: int32(reg)}
	return k, reg
}

// StepPacked writes the packed successor of src under a step of pid (with
// the given coin outcome if pid is coin-poised) into dst. src must be a
// live record of the codec; dst must be Words() long and must not alias
// src. Stepping a decided process
// is a caller bug (the move enumerators never emit one) and panics.
func (ps *PackedStepper) StepPacked(dst, src []uint64, pid int, coin Value) error {
	pc := ps.pc
	sid := uint32(getField(src, pc.stateOff(pid), pc.stateBits))
	kind, reg := ps.Op(sid)

	key := uint64(sid) << 32
	switch kind {
	case OpRead, OpSwap:
		key |= getField(src, pc.regOff(reg), pc.regBits)
	case OpWrite:
	case OpCoin:
		if coin == "1" {
			key |= 1
		}
	default:
		panic("model: packed step on decided or invalid state")
	}
	succ, ok := ps.succ[key]
	if ok {
		ps.hits++
	} else {
		ps.misses++
		var err error
		if succ, err = ps.resolve(sid, kind, reg, key, coin); err != nil {
			return err
		}
	}
	copy(dst, src)
	setField(dst, pc.stateOff(pid), pc.stateBits, uint64(succ.sid))
	if succ.writesTo {
		setField(dst, pc.regOff(reg), pc.regBits, uint64(succ.wvid))
	}
	return nil
}

// resolve computes and memoises one transition the slow way, through the
// State interface.
func (ps *PackedStepper) resolve(sid uint32, kind OpKind, reg int, key uint64, coin Value) (packedSucc, error) {
	pc := ps.pc
	s, ok := pc.states.at(sid)
	if !ok {
		panic("model: stepper resolve on uninterned state id")
	}
	var succ packedSucc
	switch kind {
	case OpRead, OpSwap:
		vid := uint32(key) // low 32 bits of the memo key are the input id
		in, ok := pc.vals.at(vid)
		if !ok {
			panic("model: stepper resolve on uninterned value id")
		}
		next := s.Next(in)
		id, err := pc.InternState(&ps.kb, next)
		if err != nil {
			return packedSucc{}, err
		}
		succ.sid = id
		if kind == OpSwap {
			wvid, err := pc.InternValue(s.Pending().Arg)
			if err != nil {
				return packedSucc{}, err
			}
			succ.wvid, succ.writesTo = wvid, true
		}
	case OpWrite:
		next := s.Next(Bottom)
		id, err := pc.InternState(&ps.kb, next)
		if err != nil {
			return packedSucc{}, err
		}
		wvid, err := pc.InternValue(s.Pending().Arg)
		if err != nil {
			return packedSucc{}, err
		}
		succ = packedSucc{sid: id, wvid: wvid, writesTo: true}
	case OpCoin:
		next := s.Next(coin)
		id, err := pc.InternState(&ps.kb, next)
		if err != nil {
			return packedSucc{}, err
		}
		succ.sid = id
	}
	ps.succ[key] = succ
	return succ, nil
}

// Stats returns the cumulative memo hit/miss counts of StepPacked calls.
// Read from the owning goroutine only (or after it has quiesced).
func (ps *PackedStepper) Stats() (hits, misses uint64) {
	return ps.hits, ps.misses
}

// StateID extracts the dictionary id of pid's state field from a packed
// record.
func (pc *PackedCodec) StateID(words []uint64, pid int) uint32 {
	return uint32(getField(words, pc.stateOff(pid), pc.stateBits))
}

// ValueID extracts the dictionary id of register r's value field from a
// packed record.
func (pc *PackedCodec) ValueID(words []uint64, r int) uint32 {
	return uint32(getField(words, pc.regOff(r), pc.regBits))
}
