package model

import "fmt"

// Move is one step of an execution: a process identifier plus, when the
// process is poised on a coin flip, the outcome the adversary observed. For
// deterministic steps Coin is ignored. A sequence of Moves fully determines
// an execution even for nondeterministic (coin-flipping) protocols, which a
// bare Schedule does not.
type Move struct {
	Pid  int
	Coin Value
}

// String renders the move.
func (m Move) String() string {
	if m.Coin != Bottom {
		return fmt.Sprintf("p%d[coin=%s]", m.Pid, string(m.Coin))
	}
	return fmt.Sprintf("p%d", m.Pid)
}

// Path is a finite execution: a sequence of moves applicable from some
// configuration.
type Path []Move

// Schedule projects the path onto its process identifiers.
func (p Path) Schedule() Schedule {
	s := make(Schedule, len(p))
	for i, m := range p {
		s[i] = m.Pid
	}
	return s
}

// OnlyBy reports whether every move is by a process in set.
func (p Path) OnlyBy(set map[int]bool) bool {
	return p.Schedule().OnlyBy(set)
}

// ConcatPaths concatenates paths left to right.
func ConcatPaths(paths ...Path) Path {
	var n int
	for _, p := range paths {
		n += len(p)
	}
	out := make(Path, 0, n)
	for _, p := range paths {
		out = append(out, p...)
	}
	return out
}

// MovesOf lifts a coin-free schedule to a path.
func MovesOf(s Schedule) Path {
	p := make(Path, len(s))
	for i, pid := range s {
		p[i] = Move{Pid: pid}
	}
	return p
}

// RunPath applies the path to configuration c. Coin outcomes are taken from
// the moves; a coin-flip step whose move carries no outcome defaults to "0".
func RunPath(c Config, p Path) Config {
	for _, m := range p {
		c = applyMove(c, m)
	}
	return c
}

func applyMove(c Config, m Move) Config {
	if c.State(m.Pid).Pending().Kind == OpCoin {
		out := m.Coin
		if out == Bottom {
			out = "0"
		}
		return c.Step(m.Pid, out)
	}
	return c.StepDet(m.Pid)
}
