package model

import (
	"testing"
	"testing/quick"
)

// toyState is a minimal machine for model-level tests: each process writes
// its input to register pid, reads register (pid+1) mod n, then decides what
// it read (or its own input if the read was empty).
type toyState struct {
	n, pid int
	input  Value
	stage  int
	got    Value
}

type toyMachine struct{}

func (toyMachine) Name() string        { return "toy" }
func (toyMachine) Registers(n int) int { return n }
func (toyMachine) Init(n, pid int, input Value) State {
	return toyState{n: n, pid: pid, input: input}
}

func (s toyState) Pending() Op {
	switch s.stage {
	case 0:
		return Op{Kind: OpWrite, Reg: s.pid, Arg: s.input}
	case 1:
		return Op{Kind: OpRead, Reg: (s.pid + 1) % s.n}
	default:
		out := s.got
		if out == Bottom {
			out = s.input
		}
		return Op{Kind: OpDecide, Arg: out}
	}
}

func (s toyState) Next(in Value) State {
	next := s
	next.stage++
	if s.stage == 1 {
		next.got = in
	}
	return next
}

func (s toyState) Key() string {
	return "t" + string(rune('0'+s.pid)) + string(rune('0'+s.stage)) + "|" + string(s.input) + "|" + string(s.got)
}

func toyConfig() Config {
	return NewConfig(toyMachine{}, []Value{"a", "b", "c"})
}

func TestStepWriteAndRead(t *testing.T) {
	c := toyConfig()
	c = c.StepDet(0) // p0 writes "a" to r0
	if got := c.Register(0); got != "a" {
		t.Fatalf("r0 = %q, want \"a\"", string(got))
	}
	c = c.StepDet(2) // p2 writes "c" to r2, so p1's read sees it... p1 reads r2
	c = c.StepDet(1) // p1 writes "b" to r1
	c = c.StepDet(1) // p1 reads r2 = "c" and is now poised on decide
	if v, ok := c.Decided(1); !ok || v != "c" {
		t.Fatalf("p1 decided (%q,%v), want (\"c\",true)", string(v), ok)
	}
	// A decided process takes no further steps.
	if got := c.StepDet(1).Key(); got != c.Key() {
		t.Fatal("stepping decided p1 changed the configuration")
	}
}

func TestDecidedProcessTakesNoSteps(t *testing.T) {
	c := toyConfig()
	for i := 0; i < 5; i++ {
		c = c.StepDet(0)
	}
	key := c.Key()
	if got := c.StepDet(0).Key(); got != key {
		t.Fatal("stepping a decided process changed the configuration")
	}
}

func TestCovering(t *testing.T) {
	c := toyConfig()
	if !c.Covers(0, 0) || c.Covers(0, 1) {
		t.Fatal("initial covering wrong for p0")
	}
	reg, ok := c.CoveredRegister(1)
	if !ok || reg != 1 {
		t.Fatalf("p1 covers (%d,%v), want (1,true)", reg, ok)
	}
	covered, ok := c.CoverSet([]int{0, 1, 2})
	if !ok || len(covered) != 3 {
		t.Fatalf("CoverSet = (%v,%v), want 3 distinct", covered, ok)
	}
	c = c.StepDet(0)
	if _, ok := c.CoveredRegister(0); ok {
		t.Fatal("p0 still covering after its write")
	}
	if _, ok := c.CoverSet([]int{0}); ok {
		t.Fatal("CoverSet should fail for a reading process")
	}
}

func TestIndistinguishable(t *testing.T) {
	c := toyConfig()
	d := c.StepDet(2) // p2 writes r2
	if c.IndistinguishableTo(d, []int{0, 1, 2}) {
		t.Fatal("configs with different registers reported indistinguishable")
	}
	// After p2's write, a config where only p2's local state differs is
	// indistinguishable to {0,1}.
	e := d.StepDet(2) // p2 reads r0 (no register change)
	if !d.IndistinguishableTo(e, []int{0, 1}) {
		t.Fatal("p2-local change visible to {0,1}")
	}
	if d.IndistinguishableTo(e, []int{2}) {
		t.Fatal("p2-local change invisible to p2 itself")
	}
}

func TestScheduleHelpers(t *testing.T) {
	s := Concat(Solo(1, 2), Schedule{0, 2})
	if got := s.String(); got != "p1 p1 p0 p2" {
		t.Fatalf("String = %q", got)
	}
	if !s.OnlyBy(PidSet([]int{0, 1, 2})) || s.OnlyBy(PidSet([]int{1})) {
		t.Fatal("OnlyBy wrong")
	}
	if got := s.Participants(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Participants = %v", got)
	}
	if got := (Schedule{}).String(); got != "ε" {
		t.Fatalf("empty schedule renders %q", got)
	}
	if got := Without([]int{3, 1, 2}, 2); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Without = %v", got)
	}
	if got := BlockWrite([]int{2, 0}); got[0] != 0 || got[1] != 2 {
		t.Fatalf("BlockWrite = %v, want sorted", got)
	}
}

func TestRunTraceRecordsReads(t *testing.T) {
	c := toyConfig()
	_, trace := RunTrace(c, Schedule{0, 1, 1})
	if len(trace) != 3 {
		t.Fatalf("trace length %d", len(trace))
	}
	if trace[0].Op.Kind != OpWrite {
		t.Fatalf("step 0 = %v, want write", trace[0])
	}
	if trace[2].Op.Kind != OpRead || trace[2].In != Bottom {
		t.Fatalf("step 2 = %v, want read of ⊥", trace[2])
	}
}

// TestKeyDeterminism (property): the canonical key is a function of the
// schedule applied — replaying any schedule yields an identical key.
func TestKeyDeterminism(t *testing.T) {
	f := func(raw []uint8) bool {
		run := func() string {
			c := toyConfig()
			for _, b := range raw {
				c = c.StepDet(int(b) % 3)
			}
			return c.Key()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPathSchedule (property): lifting a schedule to moves and projecting
// back is the identity.
func TestPathSchedule(t *testing.T) {
	f := func(raw []uint8) bool {
		s := make(Schedule, len(raw))
		for i, b := range raw {
			s[i] = int(b) % 5
		}
		back := MovesOf(s).Schedule()
		if len(back) != len(s) {
			return false
		}
		for i := range s {
			if s[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunPathMatchesRun (property): on coin-free machines RunPath and Run
// agree.
func TestRunPathMatchesRun(t *testing.T) {
	f := func(raw []uint8) bool {
		s := make(Schedule, len(raw))
		for i, b := range raw {
			s[i] = int(b) % 3
		}
		a := Run(toyConfig(), s)
		b := RunPath(toyConfig(), MovesOf(s))
		return a.Key() == b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildConfigDimensionCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dimension mismatch")
		}
	}()
	c := toyConfig()
	RebuildConfig(c, make([]State, 2), make([]Value, 3))
}
