package model

import (
	"fmt"
	"sort"
	"strings"
)

// A Schedule is a finite sequence of process identifiers: the order in which
// the adversary lets processes take steps (an element of Π* in the paper).
// For protocols with coin flips, coin outcomes are supplied separately; see
// Run.
type Schedule []int

// String renders the schedule as "p1 p4 p1 ...".
func (s Schedule) String() string {
	if len(s) == 0 {
		return "ε"
	}
	parts := make([]string, len(s))
	for i, pid := range s {
		parts[i] = fmt.Sprintf("p%d", pid)
	}
	return strings.Join(parts, " ")
}

// OnlyBy reports whether every step in the schedule is by a process in set.
func (s Schedule) OnlyBy(set map[int]bool) bool {
	for _, pid := range s {
		if !set[pid] {
			return false
		}
	}
	return true
}

// Participants returns the sorted set of processes that take at least one
// step in the schedule.
func (s Schedule) Participants() []int {
	seen := make(map[int]bool, len(s))
	for _, pid := range s {
		seen[pid] = true
	}
	out := make([]int, 0, len(seen))
	for pid := range seen {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// Concat returns the concatenation of schedules, left to right.
func Concat(schedules ...Schedule) Schedule {
	var n int
	for _, s := range schedules {
		n += len(s)
	}
	out := make(Schedule, 0, n)
	for _, s := range schedules {
		out = append(out, s...)
	}
	return out
}

// Solo returns the schedule in which process pid takes k consecutive steps.
func Solo(pid, k int) Schedule {
	out := make(Schedule, k)
	for i := range out {
		out[i] = pid
	}
	return out
}

// BlockWrite returns the block-write schedule for the covering processes r:
// each process in r performs exactly one step (its pending write), in
// ascending pid order. Per Definition 2, when the processes cover distinct
// registers the order is immaterial. The caller is responsible for ensuring
// every process in r actually covers a register; Run will apply whatever
// their pending operations are.
func BlockWrite(r []int) Schedule {
	sorted := append([]int(nil), r...)
	sort.Ints(sorted)
	return Schedule(sorted)
}

// Run applies the schedule to configuration c and returns the resulting
// configuration. It must only be used on coin-free steps; RunCoins handles
// protocols with coin flips. Decided processes scheduled again simply take
// no step, matching the convention in Config.Step.
func Run(c Config, s Schedule) Config {
	for _, pid := range s {
		c = c.StepDet(pid)
	}
	return c
}

// RunCoins applies the schedule to c, consuming one outcome from coins each
// time a scheduled process is poised on a coin flip. It returns the final
// configuration and the number of coin outcomes consumed. If the schedule
// needs more outcomes than provided, remaining flips default to "0".
func RunCoins(c Config, s Schedule, coins []Value) (Config, int) {
	used := 0
	for _, pid := range s {
		if c.State(pid).Pending().Kind == OpCoin {
			out := Value("0")
			if used < len(coins) {
				out = coins[used]
			}
			used++
			c = c.Step(pid, out)
			continue
		}
		c = c.StepDet(pid)
	}
	return c, used
}

// TraceStep records one applied step for reporting: which process moved,
// what operation it performed, and (for reads/coins) the value it observed.
type TraceStep struct {
	Pid int
	Op  Op
	// In is the value read (OpRead) or the coin outcome (OpCoin).
	In Value
}

// String renders the step, e.g. "p3: read(r1) -> \"0\"".
func (t TraceStep) String() string {
	switch t.Op.Kind {
	case OpRead:
		return fmt.Sprintf("p%d: %v -> %q", t.Pid, t.Op, string(t.In))
	case OpCoin:
		return fmt.Sprintf("p%d: coin() -> %q", t.Pid, string(t.In))
	default:
		return fmt.Sprintf("p%d: %v", t.Pid, t.Op)
	}
}

// RunTrace applies the schedule to c recording each step. Coin flips take
// outcome "0"; use this for deterministic protocols or reporting only.
func RunTrace(c Config, s Schedule) (Config, []TraceStep) {
	trace := make([]TraceStep, 0, len(s))
	for _, pid := range s {
		op := c.State(pid).Pending()
		step := TraceStep{Pid: pid, Op: op}
		switch op.Kind {
		case OpRead:
			step.In = c.Register(op.Reg)
		case OpCoin:
			step.In = "0"
		}
		trace = append(trace, step)
		c = c.Step(pid, step.In)
	}
	return c, trace
}

// PidSet converts a process list to a set.
func PidSet(pids []int) map[int]bool {
	set := make(map[int]bool, len(pids))
	for _, pid := range pids {
		set[pid] = true
	}
	return set
}

// PidList converts a process set to a sorted list.
func PidList(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for pid := range set {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// Without returns the sorted list of processes in p that are not in remove.
func Without(p []int, remove ...int) []int {
	rm := PidSet(remove)
	out := make([]int, 0, len(p))
	for _, pid := range p {
		if !rm[pid] {
			out = append(out, pid)
		}
	}
	sort.Ints(out)
	return out
}
