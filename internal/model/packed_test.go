package model

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// walkToy enumerates reachable toy-machine configurations (BFS, exhaustive:
// the toy space is tiny) and hands each to check.
func walkToy(t *testing.T, check func(Config)) {
	t.Helper()
	root := toyConfig()
	seen := map[string]bool{root.Key(): true}
	queue := []Config{root}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		check(c)
		for pid := 0; pid < c.NumProcesses(); pid++ {
			if k, _ := PeekOp(c.State(pid)); k == OpDecide {
				continue
			}
			child := c.StepDet(pid)
			if !seen[child.Key()] {
				seen[child.Key()] = true
				queue = append(queue, child)
			}
		}
	}
	if len(seen) < 10 {
		t.Fatalf("toy walk saw only %d configurations", len(seen))
	}
}

// TestPackedCodecRoundTripsKey is the codec's core contract: for every
// reachable configuration, Unpack(Pack(c)) has a byte-identical key, and
// repacking the unpacked configuration reproduces the exact words.
func TestPackedCodecRoundTripsKey(t *testing.T) {
	pc := NewPackedCodec(toyConfig())
	walkToy(t, func(c Config) {
		words, err := pc.Pack(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(words) != pc.Words() {
			t.Fatalf("Pack returned %d words, Words() = %d", len(words), pc.Words())
		}
		back, err := pc.Unpack(words)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := back.Key(), c.Key(); got != want {
			t.Fatalf("round trip key %q, want %q", got, want)
		}
		again := make([]uint64, pc.Words())
		if err := pc.PackTo(again, back); err != nil {
			t.Fatal(err)
		}
		for i := range words {
			if words[i] != again[i] {
				t.Fatalf("repack differs at word %d: %#x vs %#x", i, words[i], again[i])
			}
		}
	})
}

// TestPackedFieldStraddlesWords exercises fields crossing a word boundary
// directly: every (offset, width) pair near the 64-bit seam must store and
// load exactly, without touching neighbouring bits.
func TestPackedFieldStraddlesWords(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for off := 40; off < 64; off++ {
		for bits := 1; bits <= 32; bits++ {
			words := []uint64{rng.Uint64(), rng.Uint64()}
			before := []uint64{words[0], words[1]}
			val := rng.Uint64() & (1<<uint(bits) - 1)
			setField(words, off, bits, val)
			if got := getField(words, off, bits); got != val {
				t.Fatalf("off=%d bits=%d: stored %#x, loaded %#x", off, bits, val, got)
			}
			// Clearing the field back must restore the untouched bits.
			setField(words, off, bits, 0)
			mask0 := ^uint64(0)
			mask1 := ^uint64(0)
			if off+bits > 64 {
				mask0 = ^(^uint64(0) << uint(off))
				mask1 = ^uint64(0) << uint(off+bits-64)
			} else {
				mask0 = ^(((uint64(1) << uint(bits)) - 1) << uint(off))
			}
			if words[0]&mask0 != before[0]&mask0 || words[1]&mask1 != before[1]&mask1 {
				t.Fatalf("off=%d bits=%d: neighbouring bits disturbed", off, bits)
			}
		}
	}
}

// TestPackedCapacityOverflow: a codec with 1-bit fields holds two dictionary
// entries; the third distinct state must fail with ErrPackedCapacity, not
// corrupt the record.
func TestPackedCapacityOverflow(t *testing.T) {
	pc := NewPackedCodecWidths(toyConfig(), 1, 1)
	root := toyConfig()
	dst := make([]uint64, pc.Words())
	// The three initial toy states are distinct (pid is in the key), so
	// packing the root already needs three state ids.
	err := pc.PackTo(dst, root)
	if !errors.Is(err, ErrPackedCapacity) {
		t.Fatalf("PackTo with 1-bit fields: err = %v, want ErrPackedCapacity", err)
	}
}

// TestUnpackRangeErrors: every malformed record class answers with
// ErrPackedRange — wrong word count, set padding bits, uninterned indices —
// and backing slices that are too small are rejected too.
func TestUnpackRangeErrors(t *testing.T) {
	pc := NewPackedCodec(toyConfig())
	words, err := pc.Pack(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	uninterned := append([]uint64{}, words...)
	setField(uninterned, 0, pc.StateBits(), 1<<uint(pc.StateBits())-1)
	cases := map[string][]uint64{
		"short":      words[:len(words)-1],
		"long":       append(append([]uint64{}, words...), 0),
		"uninterned": uninterned,
	}
	if pad := uint((pc.NumProcesses()*pc.StateBits() + pc.NumRegisters()*pc.RegBits()) & 63); pad != 0 {
		bad := append([]uint64{}, words...)
		bad[len(bad)-1] |= 1 << 63
		cases["padding"] = bad
	}
	for name, bad := range cases {
		if _, err := pc.Unpack(bad); !errors.Is(err, ErrPackedRange) {
			t.Errorf("%s: err = %v, want ErrPackedRange", name, err)
		}
	}
	if _, err := pc.UnpackInto(words, make([]State, 1), make([]Value, 0)); !errors.Is(err, ErrPackedRange) {
		t.Errorf("small backing: err = %v, want ErrPackedRange", err)
	}
	if err := pc.PackTo(make([]uint64, pc.Words()+1), toyConfig()); !errors.Is(err, ErrPackedRange) {
		t.Errorf("PackTo wrong dst: err = %v, want ErrPackedRange", err)
	}
	other := NewConfig(toyMachine{}, []Value{"a", "b"})
	if err := pc.PackTo(make([]uint64, pc.Words()), other); !errors.Is(err, ErrPackedRange) {
		t.Errorf("PackTo wrong shape: err = %v, want ErrPackedRange", err)
	}
}

// TestPackMoveRoundTrip covers the 32-bit move encoding and its typed
// rejections.
func TestPackMoveRoundTrip(t *testing.T) {
	moves := []Move{
		{Pid: 0},
		{Pid: 3},
		{Pid: 0, Coin: "0"},
		{Pid: 7, Coin: "1"},
		{Pid: 1<<30 - 1, Coin: "1"},
	}
	for _, m := range moves {
		u, err := PackMove(m)
		if err != nil {
			t.Fatalf("PackMove(%+v): %v", m, err)
		}
		if got := UnpackMove(u); got != m {
			t.Fatalf("round trip of %+v gave %+v", m, got)
		}
	}
	for _, bad := range []Move{{Pid: -1}, {Pid: 1 << 30}, {Pid: 0, Coin: "x"}} {
		if _, err := PackMove(bad); !errors.Is(err, ErrPackedRange) {
			t.Fatalf("PackMove(%+v): err = %v, want ErrPackedRange", bad, err)
		}
	}
}

// FuzzPackedCodecRoundTrip feeds arbitrary words to Unpack on a codec with
// a populated dictionary. The contract under fuzz: never panic; either
// reject with ErrPackedRange or decode to a configuration that repacks to
// the exact input words.
func FuzzPackedCodecRoundTrip(f *testing.F) {
	pc := NewPackedCodec(toyConfig())
	// Populate the dictionaries with the whole reachable toy space.
	seen := map[string]bool{toyConfig().Key(): true}
	queue := []Config{toyConfig()}
	dst := make([]uint64, pc.Words())
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if err := pc.PackTo(dst, c); err != nil {
			f.Fatal(err)
		}
		seed := make([]byte, 8*len(dst))
		for i, w := range dst {
			binary.LittleEndian.PutUint64(seed[8*i:], w)
		}
		f.Add(seed)
		for pid := 0; pid < c.NumProcesses(); pid++ {
			if k, _ := PeekOp(c.State(pid)); k == OpDecide {
				continue
			}
			child := c.StepDet(pid)
			if !seen[child.Key()] {
				seen[child.Key()] = true
				queue = append(queue, child)
			}
		}
	}
	f.Add([]byte{})
	f.Add(make([]byte, 8*pc.Words()))

	f.Fuzz(func(t *testing.T, raw []byte) {
		words := make([]uint64, len(raw)/8)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(raw[8*i:])
		}
		c, err := pc.Unpack(words)
		if err != nil {
			if !errors.Is(err, ErrPackedRange) {
				t.Fatalf("Unpack error is not ErrPackedRange: %v", err)
			}
			return
		}
		back := make([]uint64, pc.Words())
		if err := pc.PackTo(back, c); err != nil {
			t.Fatalf("repack of decoded config: %v", err)
		}
		for i := range words {
			if words[i] != back[i] {
				t.Fatalf("word %d: %#x repacked to %#x", i, words[i], back[i])
			}
		}
	})
}
