package check

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/model"
)

// VerifyWitness replays a Theorem 1 witness against the raw protocol
// semantics and confirms the claim it embodies. It is an independent
// auditor: no valency oracle, no adversary construction, no memoised state
// — just model.Config stepping, so a bug anywhere in the proof machinery
// (or a corrupted artifact from a resumed run) cannot vouch for itself.
//
// Checks performed:
//
//   - the input vector matches N and the execution replays move by move
//     (no step by a decided process, every coin move carries an outcome);
//   - Agreement holds along every prefix: at no point have two processes
//     decided different values;
//   - in the final configuration every process in Covered is poised to
//     write exactly its claimed register, the claimed registers are
//     distinct, and their number equals Registers >= n-1.
func VerifyWitness(m model.Machine, w *adversary.Theorem1Witness) error {
	if w == nil {
		return fmt.Errorf("verify witness: nil witness")
	}
	if len(w.Inputs) != w.N {
		return fmt.Errorf("verify witness: %d inputs for n=%d", len(w.Inputs), w.N)
	}
	c := model.NewConfig(m, w.Inputs)
	if err := checkAgreement(c, -1); err != nil {
		return err
	}
	for i, mv := range w.Execution {
		if mv.Pid < 0 || mv.Pid >= w.N {
			return fmt.Errorf("verify witness: step %d moves p%d, outside n=%d", i, mv.Pid, w.N)
		}
		op := c.State(mv.Pid).Pending()
		switch op.Kind {
		case model.OpDecide:
			return fmt.Errorf("verify witness: step %d moves p%d after it decided", i, mv.Pid)
		case model.OpCoin:
			if mv.Coin == model.Bottom {
				return fmt.Errorf("verify witness: step %d flips p%d's coin without an outcome", i, mv.Pid)
			}
			c = c.Step(mv.Pid, mv.Coin)
		default:
			c = c.StepDet(mv.Pid)
		}
		if err := checkAgreement(c, i); err != nil {
			return err
		}
	}
	// The covering claim: distinct registers, each really covered.
	seen := make(map[int]int, len(w.Covered))
	for pid, reg := range w.Covered {
		if pid < 0 || pid >= w.N {
			return fmt.Errorf("verify witness: covering process p%d outside n=%d", pid, w.N)
		}
		got, ok := c.CoveredRegister(pid)
		if !ok || got != reg {
			return fmt.Errorf("verify witness: p%d claimed to cover r%d but is poised on %s",
				pid, reg, describePending(c, pid))
		}
		if prev, dup := seen[reg]; dup {
			return fmt.Errorf("verify witness: p%d and p%d both claim register r%d", prev, pid, reg)
		}
		seen[reg] = pid
	}
	if len(w.Covered) != w.Registers {
		return fmt.Errorf("verify witness: %d covering processes but Registers=%d", len(w.Covered), w.Registers)
	}
	if w.Registers < w.N-1 {
		return fmt.Errorf("verify witness: %d registers witnessed, theorem needs >= n-1 = %d", w.Registers, w.N-1)
	}
	return nil
}

// checkAgreement fails if the configuration already violates Agreement.
// step is the 0-based index of the move that produced c, -1 for the
// initial configuration.
func checkAgreement(c model.Config, step int) error {
	decided := c.DecidedValues()
	if len(decided) > 1 {
		vals := make([]string, 0, len(decided))
		for v := range decided {
			vals = append(vals, string(v))
		}
		return fmt.Errorf("verify witness: agreement violated after step %d: decided values %v", step, vals)
	}
	return nil
}

func describePending(c model.Config, pid int) string {
	op := c.State(pid).Pending()
	if op.Kind == model.OpWrite {
		return fmt.Sprintf("a write to r%d", op.Reg)
	}
	return fmt.Sprintf("op kind %d", op.Kind)
}
