// Package check verifies consensus protocols expressed in internal/model by
// bounded-exhaustive state-space exploration: Agreement (no two processes
// decide differently), Validity (decisions are inputs), and the paper's
// nondeterministic-solo-termination hypothesis (from every reachable
// configuration, every process can decide by running alone).
//
// These checks are what entitles the lower-bound experiments to call a
// protocol "a consensus protocol": the adversary in internal/adversary
// assumes the protocol it attacks is correct, exactly as the paper's proof
// assumes Π solves consensus.
package check

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/explore"
	"repro/internal/model"
)

// ViolationKind classifies what went wrong.
type ViolationKind uint8

const (
	// Agreement: two processes decided different values.
	Agreement ViolationKind = iota + 1
	// Validity: a process decided a value nobody proposed.
	Validity
	// SoloTermination: from a reachable configuration some process cannot
	// decide running alone (the protocol is not NST).
	SoloTermination
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case Agreement:
		return "agreement"
	case Validity:
		return "validity"
	case SoloTermination:
		return "solo-termination"
	default:
		return fmt.Sprintf("ViolationKind(%d)", uint8(k))
	}
}

// Violation describes one counterexample.
type Violation struct {
	Kind   ViolationKind
	Inputs []model.Value
	// Path drives the initial configuration to the violating one.
	Path model.Path
	// Detail is a human-readable account (which values clashed, which
	// process is stuck, ...).
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	ins := make([]string, len(v.Inputs))
	for i, in := range v.Inputs {
		ins[i] = string(in)
	}
	return fmt.Sprintf("%v violation with inputs [%s] after %q: %s",
		v.Kind, strings.Join(ins, " "), v.Path.Schedule().String(), v.Detail)
}

// Options configure a verification run.
type Options struct {
	// Explore bounds each per-input-vector exploration.
	Explore explore.Options
	// SoloStepCap bounds the length of solo runs examined for the
	// solo-termination check; zero means DefaultSoloStepCap.
	SoloStepCap int
	// SkipSolo disables the (comparatively expensive) solo-termination
	// check.
	SkipSolo bool
	// MaxViolations stops the check after this many counterexamples;
	// zero means stop at the first.
	MaxViolations int
}

// DefaultSoloStepCap bounds solo runs in the solo-termination check. The
// protocols in internal/consensus decide solo within O(n²) steps; the cap is
// generous so a cap-induced false positive clearly signals a real problem.
const DefaultSoloStepCap = 4096

func (o Options) soloCap() int {
	if o.SoloStepCap <= 0 {
		return DefaultSoloStepCap
	}
	return o.SoloStepCap
}

func (o Options) maxViolations() int {
	if o.MaxViolations <= 0 {
		return 1
	}
	return o.MaxViolations
}

// Report is the outcome of verifying one protocol at one system size.
type Report struct {
	Protocol   string
	N          int
	Configs    int // distinct configurations visited, summed over inputs
	Inputs     int // input vectors checked
	Capped     bool
	Violations []Violation
}

// OK reports whether the protocol passed every check that ran.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// String summarises the report in one line.
func (r *Report) String() string {
	status := "ok"
	if !r.OK() {
		status = fmt.Sprintf("%d violation(s), first: %v", len(r.Violations), r.Violations[0])
	}
	capped := ""
	if r.Capped {
		capped = " [capped]"
	}
	return fmt.Sprintf("%s n=%d: %d inputs, %d configs%s: %s",
		r.Protocol, r.N, r.Inputs, r.Configs, capped, status)
}

// Consensus verifies machine m for n processes over every binary input
// vector. It explores the full reachable configuration space (within
// opts.Explore bounds) and checks Agreement, Validity and solo termination
// at every configuration.
func Consensus(ctx context.Context, m model.Machine, n int, opts Options) (*Report, error) {
	return agreementAtMost(ctx, m, n, 1, opts)
}

// KSet verifies k-set agreement: at most k distinct values decided, plus
// Validity and solo termination — the checker the paper's Section 4 future
// work (Ω(n-k) space for k-set agreement) would certify protocols against.
func KSet(ctx context.Context, m model.Machine, n, k int, opts Options) (*Report, error) {
	return agreementAtMost(ctx, m, n, k, opts)
}

// agreementAtMost is the shared worker: at most maxDistinct decided values.
func agreementAtMost(ctx context.Context, m model.Machine, n, maxDistinct int, opts Options) (*Report, error) {
	report := &Report{Protocol: m.Name(), N: n}
	for _, inputs := range BinaryInputs(n) {
		if err := checkInputs(ctx, m, inputs, maxDistinct, opts, report); err != nil {
			return report, err
		}
		report.Inputs++
		if len(report.Violations) >= opts.maxViolations() {
			break
		}
		if ctx.Err() != nil {
			// Deadline hit mid-sweep: the report carries what was
			// checked so far, marked Capped by the cancelled search.
			break
		}
	}
	return report, nil
}

// BinaryInputs enumerates all 2^n binary input vectors for n processes.
func BinaryInputs(n int) [][]model.Value {
	out := make([][]model.Value, 0, 1<<n)
	for bits := 0; bits < 1<<n; bits++ {
		in := make([]model.Value, n)
		for i := range in {
			if bits&(1<<i) != 0 {
				in[i] = "1"
			} else {
				in[i] = "0"
			}
		}
		out = append(out, in)
	}
	return out
}

func checkInputs(ctx context.Context, m model.Machine, inputs []model.Value, maxDistinct int, opts Options, report *Report) error {
	valid := make(map[model.Value]bool, len(inputs))
	for _, in := range inputs {
		valid[in] = true
	}
	all := make([]int, len(inputs))
	for i := range all {
		all[i] = i
	}
	root := model.NewConfig(m, inputs)

	// flagged records violating configuration IDs with their details; the
	// witness paths are reconstructed after the search completes.
	type flag struct {
		kind   ViolationKind
		id     int
		detail string
	}
	var flagged []flag
	res, err := explore.Reach(ctx, root, all, opts.Explore, func(v explore.Visit) bool {
		decided := v.Config.DecidedValues()
		if len(decided) > maxDistinct {
			flagged = append(flagged, flag{
				kind:   Agreement,
				id:     v.ID,
				detail: fmt.Sprintf("%d decided values %s exceed the bound %d", len(decided), valueSet(decided), maxDistinct),
			})
		}
		for val := range decided {
			if !valid[val] {
				flagged = append(flagged, flag{
					kind:   Validity,
					id:     v.ID,
					detail: fmt.Sprintf("decided %q, proposed only %s", string(val), valueSet(valid)),
				})
			}
		}
		// Solo termination is checked at visit time, while the
		// configuration is transiently available.
		if !opts.SkipSolo && len(flagged) == 0 {
			for pid := 0; pid < len(inputs); pid++ {
				if ok, detail := soloDecides(v.Config, pid, opts.soloCap()); !ok {
					flagged = append(flagged, flag{
						kind:   SoloTermination,
						id:     v.ID,
						detail: detail,
					})
				}
			}
		}
		return len(flagged) < opts.maxViolations()
	})
	if err != nil {
		report.Capped = true
	}
	report.Configs += res.Count

	for _, f := range flagged {
		path, _ := res.PathTo(f.id)
		report.Violations = append(report.Violations, Violation{
			Kind:   f.kind,
			Inputs: inputs,
			Path:   path,
			Detail: f.detail,
		})
		if len(report.Violations) >= opts.maxViolations() {
			return nil
		}
	}
	return nil
}

// soloDecides reports whether process pid decides when run alone from c.
// Deterministic processes trace a single path; coin flips branch (bounded
// DFS over outcomes) — it suffices that *some* outcome sequence decides,
// matching nondeterministic solo termination.
func soloDecides(c model.Config, pid, budget int) (bool, string) {
	if _, ok := c.Decided(pid); ok {
		return true, ""
	}
	if budget == 0 {
		return false, fmt.Sprintf("p%d still undecided at solo step cap", pid)
	}
	op := c.State(pid).Pending()
	if op.Kind == model.OpCoin {
		if ok, _ := soloDecides(c.Step(pid, "0"), pid, budget-1); ok {
			return true, ""
		}
		return soloDecides(c.Step(pid, "1"), pid, budget-1)
	}
	return soloDecides(c.StepDet(pid), pid, budget-1)
}

func valueSet(m map[model.Value]bool) string {
	vals := make([]string, 0, len(m))
	for v := range m {
		vals = append(vals, fmt.Sprintf("%q", string(v)))
	}
	sort.Strings(vals)
	return "{" + strings.Join(vals, ",") + "}"
}
