package check

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// CrashReport summarises a crash-tolerance fuzzing run.
type CrashReport struct {
	Protocol string
	N        int
	Trials   int
	// DecidedBeforeCrash counts trials in which some process had already
	// decided when the crash was injected (the interesting cases).
	DecidedBeforeCrash int
}

// String renders the report.
func (r CrashReport) String() string {
	return fmt.Sprintf("%s n=%d: %d crash trials ok (%d with a pre-crash decision)",
		r.Protocol, r.N, r.Trials, r.DecidedBeforeCrash)
}

// CrashTolerance fuzzes crash-stop failures: run the protocol under a
// random schedule to a random depth, crash a random subset of processes
// (they simply never take another step — in asynchronous shared memory a
// crash is indistinguishable from being very slow), and let one survivor
// run alone. The survivor must decide (obstruction freedom survives any
// number of crashes) and must agree with any decision made before the
// crash. soloCap bounds survivor runs; deterministic protocols only.
func CrashTolerance(m model.Machine, n, trials int, seed int64, soloCap int) (CrashReport, error) {
	if soloCap <= 0 {
		soloCap = DefaultSoloStepCap
	}
	rng := rand.New(rand.NewSource(seed))
	report := CrashReport{Protocol: m.Name(), N: n, Trials: trials}
	vectors := BinaryInputs(n)
	for trial := 0; trial < trials; trial++ {
		inputs := vectors[rng.Intn(len(vectors))]
		c := model.NewConfig(m, inputs)
		for step := 0; step < rng.Intn(12*n*n); step++ {
			c = c.StepDet(rng.Intn(n))
		}
		// Record any decision already made.
		preDecided := model.Bottom
		for pid := 0; pid < n; pid++ {
			if v, ok := c.Decided(pid); ok {
				preDecided = v
			}
		}
		if preDecided != model.Bottom {
			report.DecidedBeforeCrash++
		}
		// Crash everyone except one random survivor.
		survivor := rng.Intn(n)
		decided := model.Bottom
		ok := false
		for step := 0; step < soloCap; step++ {
			if v, done := c.Decided(survivor); done {
				decided, ok = v, true
				break
			}
			c = c.StepDet(survivor)
		}
		if !ok {
			return report, fmt.Errorf(
				"crash trial %d: survivor p%d failed to decide within %d solo steps (inputs %v)",
				trial, survivor, soloCap, inputs)
		}
		if preDecided != model.Bottom && decided != preDecided {
			return report, fmt.Errorf(
				"crash trial %d: survivor p%d decided %q but %q was already decided before the crash",
				trial, survivor, string(decided), string(preDecided))
		}
	}
	return report, nil
}
