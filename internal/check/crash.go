package check

import (
	"fmt"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/model"
)

// CrashOptions configure a crash-tolerance run.
type CrashOptions struct {
	// Trials is the number of random fault plans fuzzed when Plans is
	// empty. Zero means DefaultCrashTrials.
	Trials int
	// Seed drives plan generation, input selection and the injected
	// schedules; the whole run is deterministic in it.
	Seed int64
	// SoloCap bounds each survivor's post-crash solo run (total steps
	// across coin branches). Zero means DefaultSoloStepCap.
	SoloCap int
	// Plans, when non-empty, replaces random generation: each plan is one
	// trial (the covering-targeted and exhaustive-small generators in
	// internal/faults produce suitable scripts).
	Plans []faults.Plan
	// MaxSteps bounds the faulted phase of each trial. Zero means 12n².
	MaxSteps int
	// Burst caps the injected scheduler's burst length. Zero means the
	// faults default (3n+3). Shorter bursts interleave more aggressively,
	// which is what surfaces stale-view violations in broken protocols.
	Burst int
}

// DefaultCrashTrials is the trial count when CrashOptions.Trials is zero.
const DefaultCrashTrials = 200

// CrashReport summarises a crash-tolerance run.
type CrashReport struct {
	Protocol string
	N        int
	Trials   int
	// DecidedBeforeCrash counts trials in which some process had already
	// decided when the faulted phase ended (the interesting cases).
	DecidedBeforeCrash int
	// CoinCrashes counts crashes that landed on a process poised on a
	// coin flip.
	CoinCrashes int
	// HalfWrites counts crashes that landed on a process poised on a write
	// (crash-amid-writes land the write in shared memory first).
	HalfWrites int
}

// String renders the report.
func (r CrashReport) String() string {
	return fmt.Sprintf("%s n=%d: %d crash trials ok (%d with a pre-crash decision, %d coin crashes, %d half-writes)",
		r.Protocol, r.N, r.Trials, r.DecidedBeforeCrash, r.CoinCrashes, r.HalfWrites)
}

// CrashTolerance checks crash-stop tolerance by executing deterministic,
// replayable fault plans (internal/faults) in the abstract model: each trial
// runs the protocol under a plan's seeded schedule — crashing scripted
// processes at exact operation indices, landing half-completed writes,
// stalling and reviving — then lets one survivor run alone from the wreck.
//
// Three properties are enforced, per trial:
//
//   - agreement among ALL processes that decided during the faulted phase
//     (not just the last one observed);
//   - the chosen survivor decides within SoloCap solo steps on some coin
//     outcome sequence (obstruction freedom survives any number of
//     crash-stops), exploring every coin branch for coin-flipping protocols;
//   - every decision any solo branch reaches agrees with every decision made
//     before and during the crashes.
//
// Because each trial is a faults.Plan, a failing trial's plan (and seed) is
// reported and replays the violation exactly.
func CrashTolerance(m model.Machine, n int, opts CrashOptions) (CrashReport, error) {
	report := CrashReport{Protocol: m.Name(), N: n}
	soloCap := opts.SoloCap
	if soloCap <= 0 {
		soloCap = DefaultSoloStepCap
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 12 * n * n
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	vectors := BinaryInputs(n)

	plans := opts.Plans
	if len(plans) == 0 {
		trials := opts.Trials
		if trials <= 0 {
			trials = DefaultCrashTrials
		}
		plans = make([]faults.Plan, trials)
		for i := range plans {
			crashes := 1
			if n > 2 {
				crashes += rng.Intn(n - 1)
			}
			plans[i] = faults.Random(rng.Int63(), n, crashes, 1+rng.Intn(maxSteps))
		}
	}

	for trial, plan := range plans {
		inputs := vectors[rng.Intn(len(vectors))]
		rep, err := faults.RunModel(model.NewConfig(m, inputs), plan, faults.RunOptions{MaxSteps: maxSteps, Burst: opts.Burst})
		if err != nil {
			return report, fmt.Errorf("crash trial %d (%v): %w", trial, plan, err)
		}
		report.Trials++

		// Agreement among every process that decided during the faulted
		// phase — all of them, not just the last observed.
		agreed := model.Bottom
		for pid := 0; pid < n; pid++ {
			v, ok := rep.Decided[pid]
			if !ok {
				continue
			}
			if agreed == model.Bottom {
				agreed = v
			} else if v != agreed {
				return report, fmt.Errorf(
					"crash trial %d (%v): pre-crash deciders disagree: %v (inputs %v)",
					trial, plan, rep.Decided, inputs)
			}
		}
		if agreed != model.Bottom {
			report.DecidedBeforeCrash++
		}
		for _, kind := range rep.Crashed {
			switch kind {
			case model.OpCoin:
				report.CoinCrashes++
			case model.OpWrite:
				report.HalfWrites++
			}
		}

		// A lone survivor must decide from the wreck, and every decision
		// any of its coin branches can reach must agree with the phase's.
		var undecided []int
		for _, pid := range rep.Survivors() {
			if _, ok := rep.Decided[pid]; !ok {
				undecided = append(undecided, pid)
			}
		}
		if len(undecided) == 0 {
			continue
		}
		survivor := undecided[rng.Intn(len(undecided))]
		budget := soloCap
		values, decided := soloDecisions(rep.Final, survivor, &budget)
		if !decided {
			return report, fmt.Errorf(
				"crash trial %d (%v): survivor p%d failed to decide within %d solo steps (inputs %v)",
				trial, plan, survivor, soloCap, inputs)
		}
		for v := range values {
			if agreed != model.Bottom && v != agreed {
				return report, fmt.Errorf(
					"crash trial %d (%v): survivor p%d can decide %q but %q was already decided before the crash (inputs %v)",
					trial, plan, survivor, string(v), string(agreed), inputs)
			}
		}
		if len(values) > 1 {
			return report, fmt.Errorf(
				"crash trial %d (%v): survivor p%d's solo branches disagree among themselves: %d values (inputs %v)",
				trial, plan, survivor, len(values), inputs)
		}
	}
	return report, nil
}

// soloDecisions collects every value process pid can decide running alone
// from c, branching on coin flips (DFS over outcomes, sharing the step
// budget across branches). The boolean reports whether any branch decided.
func soloDecisions(c model.Config, pid int, budget *int) (map[model.Value]bool, bool) {
	values := make(map[model.Value]bool)
	var walk func(c model.Config) bool
	walk = func(c model.Config) bool {
		if v, ok := c.Decided(pid); ok {
			values[v] = true
			return true
		}
		if *budget <= 0 {
			return false
		}
		*budget--
		if c.State(pid).Pending().Kind == model.OpCoin {
			d0 := walk(c.Step(pid, "0"))
			d1 := walk(c.Step(pid, "1"))
			return d0 || d1
		}
		return walk(c.StepDet(pid))
	}
	decided := walk(c)
	return values, decided
}
