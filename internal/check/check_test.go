package check

import (
	"context"
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/explore"
)

func TestConsensusAcceptsFloodN2(t *testing.T) {
	report, err := Consensus(context.Background(), consensus.Flood{}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("flood n=2 rejected: %v", report)
	}
	if report.Inputs != 4 {
		t.Fatalf("checked %d input vectors, want 4", report.Inputs)
	}
}

func TestConsensusFindsAgreementViolation(t *testing.T) {
	report, err := Consensus(context.Background(), consensus.GreedyFlood{}, 2, Options{SkipSolo: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("greedyflood accepted")
	}
	v := report.Violations[0]
	if v.Kind != Agreement {
		t.Fatalf("kind = %v, want agreement", v.Kind)
	}
	if len(v.Path) == 0 {
		t.Fatal("violation has no witness path")
	}
	if !strings.Contains(v.String(), "agreement violation") {
		t.Fatalf("violation string: %q", v.String())
	}
}

func TestConsensusCapsAreReported(t *testing.T) {
	report, err := Consensus(context.Background(), consensus.DiskRace{}, 3, Options{
		Explore:  explore.Options{KeyFn: consensus.DiskRace{}.CanonicalKey, KeyTo: consensus.DiskRace{}.CanonicalKeyTo, MaxConfigs: 500},
		SkipSolo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Capped {
		t.Fatal("bounded run not marked capped")
	}
	if !strings.Contains(report.String(), "[capped]") {
		t.Fatalf("report string hides the cap: %q", report.String())
	}
}

func TestBinaryInputsEnumeration(t *testing.T) {
	got := BinaryInputs(3)
	if len(got) != 8 {
		t.Fatalf("got %d vectors, want 8", len(got))
	}
	seen := map[string]bool{}
	for _, in := range got {
		key := ""
		for _, v := range in {
			key += string(v)
		}
		if seen[key] {
			t.Fatalf("duplicate vector %q", key)
		}
		seen[key] = true
	}
}

func TestMaxViolationsCollectsSeveral(t *testing.T) {
	report, err := Consensus(context.Background(), consensus.GreedyFlood{}, 2, Options{SkipSolo: true, MaxViolations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Violations) < 2 {
		t.Fatalf("collected %d violations, want >= 2", len(report.Violations))
	}
}

func TestViolationKindStrings(t *testing.T) {
	want := map[ViolationKind]string{
		Agreement:       "agreement",
		Validity:        "validity",
		SoloTermination: "solo-termination",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
