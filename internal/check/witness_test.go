package check

import (
	"context"
	"testing"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/valency"
)

func theorem1Witness(t *testing.T, m model.Machine, n int) *adversary.Theorem1Witness {
	t.Helper()
	e := adversary.New(valency.New(explore.Options{Workers: 1}))
	w, err := e.Theorem1(context.Background(), m, n)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestVerifyWitnessAccepts replays real Theorem 1 witnesses through the
// independent verifier.
func TestVerifyWitnessAccepts(t *testing.T) {
	for _, n := range []int{2, 3} {
		w := theorem1Witness(t, consensus.Flood{}, n)
		if err := VerifyWitness(consensus.Flood{}, w); err != nil {
			t.Fatalf("n=%d witness rejected: %v", n, err)
		}
	}
}

// TestVerifyWitnessRejectsTampering mutates a genuine witness in each of
// the ways a bug (or bit rot in a resumed artifact) could and checks every
// mutation is caught.
func TestVerifyWitnessRejectsTampering(t *testing.T) {
	fresh := func() *adversary.Theorem1Witness {
		return theorem1Witness(t, consensus.Flood{}, 3)
	}
	cases := []struct {
		name   string
		mutate func(w *adversary.Theorem1Witness)
	}{
		{"truncated execution", func(w *adversary.Theorem1Witness) {
			w.Execution = w.Execution[:len(w.Execution)/2]
		}},
		{"wrong covered register", func(w *adversary.Theorem1Witness) {
			for pid, reg := range w.Covered {
				w.Covered[pid] = reg + 1
				return
			}
		}},
		{"inflated register count", func(w *adversary.Theorem1Witness) {
			w.Registers++
		}},
		{"input vector mismatch", func(w *adversary.Theorem1Witness) {
			w.Inputs = w.Inputs[:len(w.Inputs)-1]
		}},
		{"out-of-range move", func(w *adversary.Theorem1Witness) {
			w.Execution = append(w.Execution, model.Move{Pid: 99})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := fresh()
			tc.mutate(w)
			if err := VerifyWitness(consensus.Flood{}, w); err == nil {
				t.Fatal("tampered witness accepted")
			}
		})
	}
}
