package check

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/faults"
	"repro/internal/model"
)

// TestCrashToleranceDiskRace injects fault plans into DiskRace runs at
// several sizes: every pre-crash decider must agree, and any lone survivor
// must decide compatibly.
func TestCrashToleranceDiskRace(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		report, err := CrashTolerance(consensus.DiskRace{}, n, CrashOptions{Trials: 400, Seed: int64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if report.DecidedBeforeCrash == 0 {
			t.Fatalf("n=%d: no trial reached a pre-crash decision; fuzz depth too shallow", n)
		}
		t.Logf("%v", report)
	}
}

// TestCrashToleranceFloodN2 does the same for the finite-state protocol at
// its verified size.
func TestCrashToleranceFloodN2(t *testing.T) {
	report, err := CrashTolerance(consensus.Flood{}, 2, CrashOptions{Trials: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", report)
}

// TestCrashToleranceExplicitPlans runs CrashTolerance over scripted plans
// instead of random ones: the exhaustive single-crash sweep plus a
// covering-targeted plan, the two generator modes the CLI exposes.
func TestCrashToleranceExplicitPlans(t *testing.T) {
	plans := faults.ExhaustiveSmall(3, 12)
	if plan, err := faults.CoveringTargeted(consensus.Flood{}, []model.Value{"0", "1", "1"}, 3, 2, 0); err == nil {
		plans = append(plans, plan)
	} else {
		t.Fatalf("covering-targeted generation failed: %v", err)
	}
	report, err := CrashTolerance(consensus.Flood{}, 3, CrashOptions{Plans: plans, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if report.Trials != len(plans) {
		t.Fatalf("ran %d of %d plans", report.Trials, len(plans))
	}
	t.Logf("%v", report)
}

// TestCrashToleranceCatchesEagerFlood: the broken protocol must fail the
// crash fuzz at n=3 (a survivor can contradict a pre-crash decision). Burst
// length 3 interleaves aggressively enough to set up the stale view; long
// solo bursts let every run finish cleanly and miss it.
func TestCrashToleranceCatchesEagerFlood(t *testing.T) {
	var failed bool
	for seed := int64(0); seed < 40 && !failed; seed++ {
		if _, err := CrashTolerance(consensus.EagerFlood{}, 3, CrashOptions{Trials: 500, Seed: seed, Burst: 3}); err != nil {
			failed = true
			t.Logf("caught: %v", err)
		}
	}
	if !failed {
		t.Skip("fuzzing did not reach the known violation; exhaustive checker covers it")
	}
}

// TestCrashToleranceCoinFloodCoverage exercises crash-during-coin schedules:
// across a sweep of seeds, some trial must crash a process poised on a coin
// flip. CoinFlood is deliberately broken under adversarial coins, so a
// caught agreement violation is an acceptable outcome too — what the test
// rejects is the fuzzer never reaching a coin crash at all.
func TestCrashToleranceCoinFloodCoverage(t *testing.T) {
	coinCrashes := 0
	for seed := int64(0); seed < 30; seed++ {
		report, err := CrashTolerance(consensus.CoinFlood{}, 2, CrashOptions{Trials: 200, Seed: seed})
		coinCrashes += report.CoinCrashes
		if err != nil {
			t.Logf("seed %d caught the broken protocol (as it may): %v", seed, err)
		}
		if coinCrashes > 0 {
			return
		}
	}
	t.Fatalf("no trial across the sweep crashed a process poised on a coin flip")
}
