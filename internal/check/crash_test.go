package check

import (
	"testing"

	"repro/internal/consensus"
)

// TestCrashToleranceDiskRace injects crash-stop failures into DiskRace runs
// at several sizes: any lone survivor must decide, and must agree with any
// decision that happened before the crash.
func TestCrashToleranceDiskRace(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		report, err := CrashTolerance(consensus.DiskRace{}, n, 400, int64(n), 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if report.DecidedBeforeCrash == 0 {
			t.Fatalf("n=%d: no trial reached a pre-crash decision; fuzz depth too shallow", n)
		}
		t.Logf("%v", report)
	}
}

// TestCrashToleranceFloodN2 does the same for the finite-state protocol at
// its verified size.
func TestCrashToleranceFloodN2(t *testing.T) {
	report, err := CrashTolerance(consensus.Flood{}, 2, 400, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", report)
}

// TestCrashToleranceCatchesEagerFlood: the broken protocol must fail the
// crash fuzz at n=3 (a survivor can contradict a pre-crash decision).
func TestCrashToleranceCatchesEagerFlood(t *testing.T) {
	var failed bool
	for seed := int64(0); seed < 40 && !failed; seed++ {
		if _, err := CrashTolerance(consensus.EagerFlood{}, 3, 500, seed, 0); err != nil {
			failed = true
			t.Logf("caught: %v", err)
		}
	}
	if !failed {
		t.Skip("fuzzing did not reach the known violation; exhaustive checker covers it")
	}
}
