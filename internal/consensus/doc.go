// Package consensus provides binary consensus protocols expressed in the
// internal/model framework, so that they can be exhaustively verified
// (internal/check) and attacked by the covering/valency adversary
// (internal/adversary).
//
// The paper's upper-bound landscape (Section 1) is: all existing randomized
// wait-free and obstruction-free consensus protocols from registers use at
// least n registers [AH90, AW96, BRS15, Zhu15], and the lower bound proved is
// n-1. This package supplies:
//
//   - Flood: an n-register obstruction-free protocol in the style of the
//     anonymous protocols of [BRS15, Zhu15] — processes flood their
//     preference through an array of n registers, adopt the majority value
//     they observe, and decide a value only after observing it in all n
//     registers in a single scan. Its reachable state space is finite
//     (register alphabet {⊥,0,1}), which is what makes exact valency
//     computation and therefore the executable lower-bound proof possible.
//
//   - RoundRace: a round-based protocol in the style of [BRS15] with
//     lexicographically ordered (round, value) pairs. Rounds grow without
//     bound under contention, so the model version takes a round cap; it
//     exists to exercise the checkers on an unbounded-space protocol and as
//     the model twin of the native implementation in internal/native.
//
//   - EagerFlood and GreedyFlood: deliberately broken variants (decide on a
//     near-complete scan; never adopt while your own value survives). The
//     checker must catch their agreement violations; they guard against the
//     verification machinery silently passing anything.
//
// All protocols here are deterministic, hence trivially "nondeterministic
// solo terminating" in the paper's sense provided every solo run decides,
// which internal/check verifies from every reachable configuration.
package consensus
