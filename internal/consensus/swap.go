package consensus

import (
	"fmt"

	"repro/internal/model"
)

// SwapPair is deterministic wait-free 2-process consensus from a single
// swap register — the historyless object of the paper's Section 4. Each
// process atomically swaps its input into the register: the one that gets
// back ⊥ arrived first and decides its own input; the other gets back the
// winner's input and decides that.
//
// With read/write registers this is impossible deterministically [LAA87],
// and the paper's Section 4 explains why its covering technique cannot even
// prove space bounds against swap: "when a process performs swap, it sees
// the value it overwrote", so a block write by swappers cannot silently
// obliterate — TestSwapDefeatsHiding demonstrates that failure of Lemma 2's
// hiding step concretely.
type SwapPair struct{}

var _ model.Machine = SwapPair{}

// Name implements model.Machine.
func (SwapPair) Name() string { return "swappair" }

// Registers implements model.Machine: one swap register.
func (SwapPair) Registers(n int) int { return 1 }

// Init implements model.Machine.
func (SwapPair) Init(n, pid int, input model.Value) model.State {
	if n != 2 {
		panic(fmt.Sprintf("swappair: built for exactly 2 processes, got %d", n))
	}
	if input != "0" && input != "1" {
		panic(fmt.Sprintf("swappair: input must be binary, got %q", string(input)))
	}
	return swapState{input: input}
}

type swapState struct {
	input   model.Value
	swapped bool
	decided model.Value
}

var _ model.State = swapState{}

// Pending implements model.State.
func (s swapState) Pending() model.Op {
	if !s.swapped {
		return model.Op{Kind: model.OpSwap, Reg: 0, Arg: s.input}
	}
	return model.Op{Kind: model.OpDecide, Arg: s.decided}
}

// Next implements model.State.
func (s swapState) Next(old model.Value) model.State {
	if s.swapped {
		panic("swappair: Next on terminated state")
	}
	decided := s.input
	if old != model.Bottom {
		// Someone swapped before us; their value wins.
		decided = old
	}
	return swapState{input: s.input, swapped: true, decided: decided}
}

// Key implements model.State.
func (s swapState) Key() string {
	return fmt.Sprintf("S|%s|%t|%s", string(s.input), s.swapped, string(s.decided))
}
