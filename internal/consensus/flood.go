package consensus

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Flood is an n-register obstruction-free binary consensus protocol with a
// finite reachable state space (register alphabet {⊥, 0, 1}), in the spirit
// of the anonymous n-register protocols [BRS15, Zhu15] cited in Section 1 of
// the paper.
//
// Each process keeps a preference, initially its input, and repeats:
//
//  1. Scan: read registers R[0..n-1] one at a time.
//  2. If every register held the same value v ≠ ⊥:
//     a. adopt v, and
//     b. if the previous scan was also unanimously v (a "double collect"),
//     decide v; otherwise rescan to confirm.
//  3. Otherwise, clear any pending confirmation; adopt the opposite value if
//     it appears in the scan with at least equal count ("submissive ties");
//     then write the preference to the lowest-indexed register whose scanned
//     value differed from it, and go to 1.
//
// Two ingredients are load-bearing, and both were found by exhaustive model
// checking rather than taken on faith:
//
//   - Submissive ties (step 3). With strict-majority adoption, a laggard
//     holding a stale covering write can obliterate a freshly decided value,
//     observe a tie, push its own value through, and decide it — an
//     agreement violation at n=2. GreedyFlood preserves the broken rule and
//     TestGreedyFloodIsBroken shows the checker catching it.
//
//   - Double collect (step 2b). Scans are not atomic: a scan can return a
//     unanimous picture assembled from different epochs while the opposite
//     value is being flooded concurrently. With single-scan deciding there
//     is an agreement violation at n=3 (EagerFlood preserves it, see
//     TestEagerFloodIsBroken).
//
// With both ingredients, Flood is exhaustively verified for n=2 — and still
// has an agreement violation at n=3 (TestFloodN3CoveringAttack exhibits it):
// laggards whose scans straddle a decision can erase every trace of the
// decided value and then assemble two clean unanimous scans of the other
// value, because values from different epochs are indistinguishable in a
// finite register alphabet. This repository treats that counterexample as
// the empirical companion of the paper's remark that the lower bound holds
// "even if the registers are of unbounded size": unboundedness is not a
// luxury the bound graciously tolerates — every known correct protocol needs
// unbounded timestamps, as DiskRace (this package) illustrates. Flood is
// therefore the didactic member of the family (a correct, finite-state,
// 2-register protocol for n=2) while DiskRace is the general upper bound.
//
// Validity: registers only ever hold proposed values and deciding requires
// observing a full array of them. Solo termination: running alone, after the
// first scan the preference never flips again, so at most n writes plus one
// confirmation scan later the process decides — O(n²) solo steps.
type Flood struct{}

var _ model.Machine = Flood{}

// Name implements model.Machine.
func (Flood) Name() string { return "flood" }

// Registers implements model.Machine: one register per process.
func (Flood) Registers(n int) int { return n }

// Init implements model.Machine.
func (Flood) Init(n, pid int, input model.Value) model.State {
	if input != "0" && input != "1" {
		panic(fmt.Sprintf("flood: input must be binary, got %q", string(input)))
	}
	return floodState{rules: defaultFloodRules, n: n, pref: input, phase: floodScan}
}

// floodRules parameterises the protocol family so the deliberately broken
// variants (GreedyFlood, EagerFlood) share one implementation with Flood.
type floodRules struct {
	// name tags state keys so variants never alias each other.
	name string
	// submissiveTies adopts the opposite value on count ties.
	submissiveTies bool
	// doubleCollect requires two consecutive unanimous scans to decide.
	doubleCollect bool
}

var defaultFloodRules = floodRules{name: "F", submissiveTies: true, doubleCollect: true}

type floodPhase uint8

const (
	floodScan floodPhase = iota + 1
	floodWrite
	floodDone
)

// floodState is the immutable local state of one Flood process. It carries
// no process identifier: the protocol is anonymous.
type floodState struct {
	rules floodRules
	n     int
	pref  model.Value
	phase floodPhase
	// idx is the next register to read (floodScan) or the register about
	// to be written (floodWrite).
	idx int
	// seen holds the values read so far in the current scan, one byte per
	// register: '_' for ⊥, otherwise the value itself.
	seen string
	// confirming is true when the previous scan was unanimously pref and
	// the current scan decides on a repeat.
	confirming bool
}

var _ model.State = floodState{}

// Pending implements model.State.
func (s floodState) Pending() model.Op {
	switch s.phase {
	case floodScan:
		return model.Op{Kind: model.OpRead, Reg: s.idx}
	case floodWrite:
		return model.Op{Kind: model.OpWrite, Reg: s.idx, Arg: s.pref}
	case floodDone:
		return model.Op{Kind: model.OpDecide, Arg: s.pref}
	default:
		panic(fmt.Sprintf("flood: invalid phase %d", s.phase))
	}
}

var _ model.OpPeeker = floodState{}

// PeekOp implements model.OpPeeker.
func (s floodState) PeekOp() (model.OpKind, int) {
	switch s.phase {
	case floodScan:
		return model.OpRead, s.idx
	case floodWrite:
		return model.OpWrite, s.idx
	case floodDone:
		return model.OpDecide, 0
	default:
		panic(fmt.Sprintf("flood: invalid phase %d", s.phase))
	}
}

// Next implements model.State.
func (s floodState) Next(in model.Value) model.State {
	switch s.phase {
	case floodScan:
		seen := s.seen + string(runeOf(in))
		if s.idx+1 < s.n {
			next := s
			next.idx++
			next.seen = seen
			return next
		}
		return s.evaluate(seen)
	case floodWrite:
		// Write acknowledged; rescan from the start.
		return floodState{rules: s.rules, n: s.n, pref: s.pref, phase: floodScan}
	default:
		panic("flood: Next on terminated state")
	}
}

// evaluate applies steps 2-3 of the protocol to a completed scan.
func (s floodState) evaluate(seen string) model.State {
	zeros := strings.Count(seen, "0")
	ones := strings.Count(seen, "1")
	// Step 2: unanimous non-⊥ scan adopts, then decides on a repeat.
	if zeros == s.n || ones == s.n {
		v := model.Value("0")
		if ones == s.n {
			v = "1"
		}
		if !s.rules.doubleCollect || (s.confirming && s.pref == v) {
			return floodState{rules: s.rules, n: s.n, pref: v, phase: floodDone}
		}
		return floodState{rules: s.rules, n: s.n, pref: v, phase: floodScan, confirming: true}
	}
	// Step 3: adoption. Submissive ties adopt the opposite value whenever
	// it is present with at least equal count; the greedy variant demands
	// a strict majority.
	pref := s.pref
	if s.rules.submissiveTies {
		if pref == "0" && ones > 0 && ones >= zeros {
			pref = "1"
		} else if pref == "1" && zeros > 0 && zeros >= ones {
			pref = "0"
		}
	} else {
		if pref == "0" && ones > zeros {
			pref = "1"
		} else if pref == "1" && zeros > ones {
			pref = "0"
		}
	}
	// Repair the lowest register that disagreed with pref.
	target := strings.IndexFunc(seen, func(r rune) bool { return r != runeOf(pref) })
	if target < 0 {
		// Unreachable: a scan in which every register equals pref is
		// unanimous and was handled above. Kept as a safe fallback.
		return floodState{rules: s.rules, n: s.n, pref: pref, phase: floodScan}
	}
	return floodState{rules: s.rules, n: s.n, pref: pref, phase: floodWrite, idx: target}
}

// Key implements model.State.
func (s floodState) Key() string {
	confirm := byte('n')
	if s.confirming {
		confirm = 'y'
	}
	return fmt.Sprintf("%s%d|%s|%d|%d|%c|%s",
		s.rules.name, s.n, string(s.pref), s.phase, s.idx, confirm, s.seen)
}

var _ model.StateKeyWriter = floodState{}

// KeyTo streams exactly the bytes Key returns (model.StateKeyWriter), so
// fingerprinting a flood configuration never materialises key strings.
// TestFloodKeyToMatchesKey holds the two together.
func (s floodState) KeyTo(w model.KeyWriter) {
	_, _ = w.WriteString(s.rules.name)
	w.WriteInt(s.n)
	_ = w.WriteByte('|')
	_, _ = w.WriteString(string(s.pref))
	_ = w.WriteByte('|')
	w.WriteInt(int(s.phase))
	_ = w.WriteByte('|')
	w.WriteInt(s.idx)
	_ = w.WriteByte('|')
	confirm := byte('n')
	if s.confirming {
		confirm = 'y'
	}
	_ = w.WriteByte(confirm)
	_ = w.WriteByte('|')
	_, _ = w.WriteString(s.seen)
}

// runeOf maps a register value to its scan encoding.
func runeOf(v model.Value) rune {
	if v == model.Bottom {
		return '_'
	}
	return rune(v[0])
}
