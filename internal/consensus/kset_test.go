package consensus

import (
	"context"
	"testing"

	"repro/internal/check"
	"repro/internal/explore"
	"repro/internal/model"
)

func ksetOpts() explore.Options {
	// Lane-local DiskRace instances still have unbounded ballots and the
	// ballot canonicaliser does not see through the lane wrapper, so these
	// are bounded checks: exhaustive up to the configuration budget.
	return explore.Options{MaxConfigs: 100_000}
}

// TestKSetAtMostKValues model-checks 2-set agreement among 3 processes
// exhaustively-within-bounds: never more than 2 distinct decisions.
func TestKSetAtMostKValues(t *testing.T) {
	report, err := check.KSet(context.Background(), KSet{K: 2}, 3, 2, check.Options{
		Explore:  ksetOpts(),
		SkipSolo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("kset(2) n=3: %v", report)
	}
	t.Logf("%v", report)
}

// TestKSetConsensusDegenerate: K=1 is plain consensus and must pass the
// (bounded) consensus checker at n=2 — it is DiskRace in one lane, behind
// the wrapper that hides it from the ballot canonicaliser.
func TestKSetConsensusDegenerate(t *testing.T) {
	report, err := check.Consensus(context.Background(), KSet{K: 1}, 2, check.Options{
		Explore:  ksetOpts(),
		SkipSolo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("kset(1) n=2: %v", report)
	}
}

// TestKSetCanExceedConsensus demonstrates that 2-set agreement genuinely
// allows two decisions: there is a reachable configuration of kset(2) with
// two distinct decided values (so the consensus checker must reject it).
func TestKSetCanExceedConsensus(t *testing.T) {
	report, err := check.Consensus(context.Background(), KSet{K: 2}, 3, check.Options{
		Explore:  ksetOpts(),
		SkipSolo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("kset(2) unexpectedly satisfies 1-agreement")
	}
	if report.Violations[0].Kind != check.Agreement {
		t.Fatalf("violation: %v", report.Violations[0])
	}
}

// TestKSetSoloTermination: each process decides alone from sampled
// reachable configurations (obstruction freedom lane-wise).
func TestKSetSoloTermination(t *testing.T) {
	inputs := []model.Value{"0", "1", "1", "0", "1"}
	c := model.NewConfig(KSet{K: 2}, inputs)
	// Interleave a bit, then run each solo.
	for i := 0; i < 40; i++ {
		c = c.StepDet(i % 5)
	}
	for pid := 0; pid < 5; pid++ {
		d := c
		decided := false
		for step := 0; step < 400; step++ {
			if _, ok := d.Decided(pid); ok {
				decided = true
				break
			}
			d = d.StepDet(pid)
		}
		if !decided {
			t.Fatalf("p%d does not decide solo", pid)
		}
	}
}

// TestKSetRegisterLayout checks the lane register blocks tile [0,n).
func TestKSetRegisterLayout(t *testing.T) {
	n, k := 7, 3
	seen := map[int]int{}
	for pid := 0; pid < n; pid++ {
		size, idx, off := lanePlacement(n, k, pid)
		if idx < 0 || idx >= size {
			t.Fatalf("pid %d: index %d outside lane of size %d", pid, idx, size)
		}
		reg := off + idx
		if prev, dup := seen[reg]; dup {
			t.Fatalf("pid %d and pid %d share own-register %d", prev, pid, reg)
		}
		seen[reg] = pid
	}
	if len(seen) != n {
		t.Fatalf("%d own-registers for %d processes", len(seen), n)
	}
	for reg := range seen {
		if reg < 0 || reg >= n {
			t.Fatalf("register %d outside [0,%d)", reg, n)
		}
	}
}
