package consensus

import (
	"context"
	"testing"

	"repro/internal/check"
	"repro/internal/model"
)

// TestReplayViolation prints the first checker counterexample step by step.
// It is a debugging aid kept under -run ReplayViolation -v; it never fails.
func TestReplayViolation(t *testing.T) {
	report, err := check.Consensus(context.Background(), Flood{}, 3, check.Options{SkipSolo: true})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if report.OK() {
		t.Skip("no violation to replay")
	}
	v := report.Violations[0]
	c := model.NewConfig(Flood{}, v.Inputs)
	t.Logf("inputs: %v", v.Inputs)
	for i, mv := range v.Path {
		op := c.State(mv.Pid).Pending()
		var in model.Value
		if op.Kind == model.OpRead {
			in = c.Register(op.Reg)
		}
		c = c.Step(mv.Pid, mv.Coin)
		t.Logf("%3d %v regs=%v", i, model.TraceStep{Pid: mv.Pid, Op: op, In: in}, c.Registers())
	}
	for pid := 0; pid < 3; pid++ {
		if val, ok := c.Decided(pid); ok {
			t.Logf("p%d decided %q", pid, string(val))
		} else {
			t.Logf("p%d state: %s", pid, c.State(pid).Key())
		}
	}
}
