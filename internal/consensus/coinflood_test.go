package consensus

import (
	"context"
	"testing"

	"repro/internal/check"
	"repro/internal/model"
)

// TestCoinFloodAdversarialCoins exhaustively model-checks the naive
// randomized protocol at n=2 over every interleaving AND every coin outcome
// (the exploration branches on model.OpCoin). The checker must find the
// agreement violation — adversarially resolved coins let a laggard push its
// value over a decision — and the witness must actually contain an
// adversary-chosen coin flip.
func TestCoinFloodAdversarialCoins(t *testing.T) {
	report, err := check.Consensus(context.Background(), CoinFlood{}, 2, check.Options{SkipSolo: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("coinflood unexpectedly safe: the submissive-tie rule was load-bearing, a coin should not replace it")
	}
	v := report.Violations[0]
	if v.Kind != check.Agreement {
		t.Fatalf("violation kind %v, want agreement", v.Kind)
	}
	sawCoin := false
	c := model.NewConfig(CoinFlood{}, v.Inputs)
	for _, mv := range v.Path {
		if c.State(mv.Pid).Pending().Kind == model.OpCoin {
			sawCoin = true
		}
		c = model.RunPath(c, model.Path{mv})
	}
	if !sawCoin {
		t.Fatal("violating execution contains no coin flip; the break is not coin-related")
	}
	t.Logf("caught (with adversarial coin): %v", v)
}

// TestCoinFloodCoinBranches pins that a mixed scan really is poised on a
// coin and that both outcomes are legal continuations.
func TestCoinFloodCoinBranches(t *testing.T) {
	c := model.NewConfig(CoinFlood{}, []model.Value{"0", "1"})
	// Engineer the mixed memory (0,1): p0's stale scan lets it write 0
	// over p1's 1 in r0 while p1 is poised to stamp r1 with 1; p0's next
	// scan then sees both values and must flip a coin.
	c = model.Run(c, model.Schedule{0, 1, 1, 1, 1, 1, 0, 0, 1, 0, 0})
	op := c.State(0).Pending()
	if op.Kind != model.OpCoin {
		t.Fatalf("p0 poised on %v, want coin()", op)
	}
	for _, outcome := range []model.Value{"0", "1"} {
		d := c.Step(0, outcome)
		next := d.State(0).Pending()
		if next.Kind != model.OpWrite || next.Arg != outcome {
			t.Fatalf("outcome %s: poised on %v, want write of the outcome", string(outcome), next)
		}
	}
}
