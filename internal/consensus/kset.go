package consensus

import (
	"fmt"

	"repro/internal/model"
)

// KSet is obstruction-free k-set agreement — the generalisation of
// consensus the paper's Section 4 proposes as future work ("an Ω(n-k) space
// lower bound for k-set agreement"; the best protocols [BRS15] use n-k+1
// registers). This implementation takes the standard partitioning route:
// processes are split into k lanes and each lane runs its own DiskRace
// consensus on a private block of registers, so at most k distinct values
// are decided overall while Validity and obstruction freedom are inherited
// lane-wise.
//
// Space: n registers total (the k lane instances use one register per lane
// member). The specialised protocols of [BRS15] reach n-k+1; the gap
// between n and the conjectured Ω(n-k) is exactly the open problem the
// paper states, and internal/check.KSetReport is the machinery a future
// lower-bound construction would be verified with.
type KSet struct {
	// K is the number of lanes (maximum number of distinct decisions).
	K int
}

var _ model.Machine = KSet{}

// Name implements model.Machine.
func (m KSet) Name() string { return fmt.Sprintf("kset(%d)", m.K) }

// Registers implements model.Machine.
func (m KSet) Registers(n int) int { return n }

// Init implements model.Machine: process pid joins lane pid mod K and runs
// DiskRace among its lane-mates on the lane's register block.
func (m KSet) Init(n, pid int, input model.Value) model.State {
	if m.K < 1 {
		panic("kset: K must be at least 1")
	}
	lane := pid % m.K
	laneSize, laneIndex, offset := lanePlacement(n, m.K, pid)
	inner := DiskRace{}.Init(laneSize, laneIndex, input)
	_ = lane
	return offsetState{inner: inner, offset: offset}
}

// lanePlacement computes, for process pid among n processes in k lanes, the
// size of its lane, its index within the lane, and the first register of
// the lane's block (lanes own contiguous register blocks, in lane order).
func lanePlacement(n, k, pid int) (laneSize, laneIndex, offset int) {
	lane := pid % k
	laneSize = n / k
	if lane < n%k {
		laneSize++
	}
	laneIndex = pid / k
	// Registers of lanes 0..lane-1 precede ours.
	for l := 0; l < lane; l++ {
		s := n / k
		if l < n%k {
			s++
		}
		offset += s
	}
	return laneSize, laneIndex, offset
}

// offsetState adapts an inner protocol state to a register block at a fixed
// offset: every register index in the inner protocol's operations is
// shifted. It is how sub-protocols compose into one shared register file.
type offsetState struct {
	inner  model.State
	offset int
}

var _ model.State = offsetState{}

// Pending implements model.State.
func (s offsetState) Pending() model.Op {
	op := s.inner.Pending()
	switch op.Kind {
	case model.OpRead, model.OpWrite:
		op.Reg += s.offset
	}
	return op
}

// Next implements model.State.
func (s offsetState) Next(in model.Value) model.State {
	return offsetState{inner: s.inner.Next(in), offset: s.offset}
}

// Key implements model.State.
func (s offsetState) Key() string {
	return fmt.Sprintf("O%d[%s]", s.offset, s.inner.Key())
}
