package consensus

import (
	"context"
	"testing"

	"repro/internal/check"
	"repro/internal/model"
)

// TestSwapPairConsensus exhaustively checks the one-swap-register
// two-process consensus: a historyless object achieving with one register
// what the paper proves needs n-1=1 read/write registers — and achieving it
// wait-free, which registers cannot do at all [LAA87].
func TestSwapPairConsensus(t *testing.T) {
	report, err := check.Consensus(context.Background(), SwapPair{}, 2, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("swappair: %v", report)
	}
	t.Logf("%v", report)
}

// TestSwapPairWaitFree: every process decides in exactly two of its own
// steps regardless of interleaving (wait-freedom, not mere obstruction
// freedom).
func TestSwapPairWaitFree(t *testing.T) {
	for _, schedule := range []model.Schedule{
		{0, 0, 1, 1},
		{0, 1, 0, 1},
		{1, 0, 0, 1},
		{1, 1, 0, 0},
	} {
		c := model.NewConfig(SwapPair{}, []model.Value{"0", "1"})
		c = model.Run(c, schedule)
		for pid := 0; pid < 2; pid++ {
			if _, ok := c.Decided(pid); !ok {
				t.Fatalf("schedule %v: p%d undecided after 2 steps each", schedule, pid)
			}
		}
		v0, _ := c.Decided(0)
		v1, _ := c.Decided(1)
		if v0 != v1 {
			t.Fatalf("schedule %v: decided %s vs %s", schedule, string(v0), string(v1))
		}
	}
}

// TestSwapDefeatsHiding is the paper's Section 4 point made executable: the
// covering argument's hiding step (Lemma 2 / the splice of Lemma 4) relies
// on a block WRITE obliterating earlier writes undetectably. With swap, the
// "covering" process sees the value it overwrites: the two runs that a
// write-based block would make indistinguishable differ in the swapper's
// resulting state.
func TestSwapDefeatsHiding(t *testing.T) {
	inputs := []model.Value{"0", "1"}

	// Run A: p1 "block-swaps" over the initial register directly.
	a := model.NewConfig(SwapPair{}, inputs)
	a = a.StepDet(1)

	// Run B: p0 sneaks its swap in first (the step a write-block would
	// hide), then p1 performs the same block-swap.
	b := model.NewConfig(SwapPair{}, inputs)
	b = b.StepDet(0)
	b = b.StepDet(1)

	// The register contents agree (obliteration worked)...
	if a.Register(0) != b.Register(0) {
		t.Fatalf("register contents differ: %q vs %q",
			string(a.Register(0)), string(b.Register(0)))
	}
	// ...but p1 can tell the runs apart, so the hiding step fails.
	if a.IndistinguishableTo(b, []int{1}) {
		t.Fatal("swap runs indistinguishable to the swapper: Section 4's obstacle vanished?")
	}
}

// TestSwapOpSemantics pins the model-level swap primitive itself.
func TestSwapOpSemantics(t *testing.T) {
	c := model.NewConfig(SwapPair{}, []model.Value{"1", "0"})
	c = c.StepDet(0) // p0 swaps "1" in, sees ⊥
	if got := c.Register(0); got != "1" {
		t.Fatalf("register = %q, want \"1\"", string(got))
	}
	if v, ok := c.Decided(0); !ok || v != "1" {
		t.Fatalf("p0 decided (%q,%v), want own input", string(v), ok)
	}
	c = c.StepDet(1) // p1 swaps "0" in, sees "1"
	if got := c.Register(0); got != "0" {
		t.Fatalf("register = %q, want \"0\" after p1's swap", string(got))
	}
	if v, ok := c.Decided(1); !ok || v != "1" {
		t.Fatalf("p1 decided (%q,%v), want the winner's input", string(v), ok)
	}
}
