package consensus

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/model"
)

// CanonicalKey returns a state identity for DiskRace configurations that
// quotients away the absolute magnitude of ballot rounds, shrinking the
// protocol's unbounded reachable space to a finite (though still large)
// quotient for exhaustive search.
//
// The abstraction: collect every round number occurring anywhere in the
// configuration (register blocks and local states) and renumber them
// order-preservingly, anchoring the smallest positive round at 1 and capping
// gaps at 2. Two configurations with the same canonical key are bisimilar
// because every rule of DiskRace uses rounds only through
//
//   - the test "is this the null ballot" (round 0, preserved exactly),
//   - lexicographic comparison of (round, pid) pairs (order is preserved,
//     and pids are untouched), and
//   - the successor round max+1 taken of a round present in the
//     configuration (a gap of 1 — "r+1 collides with an existing round" —
//     is preserved exactly, and any gap ≥ 2 — "r+1 falls strictly below the
//     next round" — maps to a gap of exactly 2, which behaves identically
//     under a single successor).
//
// No rule mentions an absolute round constant other than 0 (initial ballots
// are minted once, before any steps), so anchoring at 1 is sound.
// TestDiskRaceCanonicalBisimulation property-checks this argument by
// shifting rounds of reachable configurations and running the shifted and
// unshifted copies in lockstep.
func (DiskRace) CanonicalKey(c model.Config) string {
	// Collect the rounds present. A configuration of n processes holds at
	// most 4n state rounds and 2n register rounds.
	n := c.NumProcesses()
	rounds := make([]int, 0, 6*n)
	states := make([]diskState, n)
	blocks := make([]diskBlock, c.NumRegisters())
	for pid := 0; pid < n; pid++ {
		s, ok := c.State(pid).(diskState)
		if !ok {
			// Not a DiskRace configuration; fall back to exact keys.
			return c.Key()
		}
		states[pid] = s
		rounds = append(rounds, s.ballot.K, s.ownBal.K, s.maxK, s.maxBal.K)
	}
	for r := 0; r < c.NumRegisters(); r++ {
		blocks[r] = decodeBlock(c.Register(r))
		rounds = append(rounds, blocks[r].Mbal.K, blocks[r].Bal.K)
	}
	remap := buildRoundRemap(rounds)

	var b strings.Builder
	b.Grow(32 * n)
	for pid := range states {
		states[pid].writeCanonicalKey(&b, remap)
		b.WriteByte('\x1f')
	}
	b.WriteByte('\x1e')
	for r := range blocks {
		block := blocks[r]
		block.Mbal.K = remap.apply(block.Mbal.K)
		block.Bal.K = remap.apply(block.Bal.K)
		b.WriteString(string(block.encode()))
		b.WriteByte('\x1f')
	}
	return b.String()
}

// roundRemap is an order-preserving, gap-capped renumbering of rounds,
// represented as two parallel sorted slices (binary-search application).
type roundRemap struct {
	from []int
	to   []int
}

func (m roundRemap) apply(k int) int {
	if k == 0 {
		return 0
	}
	i := sort.SearchInts(m.from, k)
	return m.to[i]
}

// buildRoundRemap computes the renumbering for the given (unsorted,
// duplicate-bearing) list of rounds.
func buildRoundRemap(rounds []int) roundRemap {
	sort.Ints(rounds)
	from := rounds[:0]
	prev := -1
	for _, k := range rounds {
		if k != prev {
			from = append(from, k)
			prev = k
		}
	}
	if len(from) > 0 && from[0] == 0 {
		from = from[1:]
	}
	to := make([]int, len(from))
	prevK, mapped := 0, 0
	for i, k := range from {
		gap := k - prevK
		switch {
		case prevK == 0:
			// Anchor: the smallest positive round maps to 1 (no
			// rule takes the successor of round 0, so its distance
			// from 0 is unobservable).
			gap = 1
		case gap > 2:
			// A single successor cannot cross a gap of 2, so
			// larger gaps are indistinguishable from 2.
			gap = 2
		}
		mapped += gap
		to[i] = mapped
		prevK = k
	}
	return roundRemap{from: from, to: to}
}

// writeCanonicalKey is diskState.Key with rounds renumbered, written without
// fmt for speed (canonicalisation dominates exhaustive-search CPU time).
func (s diskState) writeCanonicalKey(b *strings.Builder, remap roundRemap) {
	writeBallot := func(bal Ballot) {
		b.WriteString(strconv.Itoa(remap.apply(bal.K)))
		b.WriteByte('.')
		b.WriteString(strconv.Itoa(bal.Pid))
	}
	b.WriteByte('D')
	b.WriteString(strconv.Itoa(s.pid))
	b.WriteByte('|')
	b.WriteString(string(s.input))
	b.WriteByte('|')
	writeBallot(s.ballot)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(s.phase)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.idx))
	b.WriteByte('|')
	writeBallot(s.ownBal)
	b.WriteByte('|')
	b.WriteString(string(s.ownInp))
	b.WriteByte('|')
	b.WriteString(string(s.proposal))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(remap.apply(s.maxK)))
	if s.aborting {
		b.WriteByte('!')
	}
	b.WriteByte('|')
	writeBallot(s.maxBal)
	b.WriteByte('|')
	b.WriteString(string(s.balInp))
}
