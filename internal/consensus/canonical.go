package consensus

import (
	"strconv"
	"strings"
	"sync"

	"repro/internal/model"
)

// CanonicalKey returns a state identity for DiskRace configurations that
// quotients away the absolute magnitude of ballot rounds, shrinking the
// protocol's unbounded reachable space to a finite (though still large)
// quotient for exhaustive search.
//
// The abstraction: collect every round number occurring anywhere in the
// configuration (register blocks and local states) and renumber them
// order-preservingly, anchoring the smallest positive round at 1 and capping
// gaps at 2. Two configurations with the same canonical key are bisimilar
// because every rule of DiskRace uses rounds only through
//
//   - the test "is this the null ballot" (round 0, preserved exactly),
//   - lexicographic comparison of (round, pid) pairs (order is preserved,
//     and pids are untouched), and
//   - the successor round max+1 taken of a round present in the
//     configuration (a gap of 1 — "r+1 collides with an existing round" —
//     is preserved exactly, and any gap ≥ 2 — "r+1 falls strictly below the
//     next round" — maps to a gap of exactly 2, which behaves identically
//     under a single successor).
//
// No rule mentions an absolute round constant other than 0 (initial ballots
// are minted once, before any steps), so anchoring at 1 is sound.
// TestDiskRaceCanonicalBisimulation property-checks this argument by
// shifting rounds of reachable configurations and running the shifted and
// unshifted copies in lockstep.
func (DiskRace) CanonicalKey(c model.Config) string {
	// Collect the rounds present. A configuration of n processes holds at
	// most 4n state rounds and 2n register rounds.
	n := c.NumProcesses()
	rounds := make([]int, 0, 6*n)
	states := make([]diskState, n)
	blocks := make([]diskBlock, c.NumRegisters())
	for pid := 0; pid < n; pid++ {
		s, ok := c.State(pid).(diskState)
		if !ok {
			// Not a DiskRace configuration; fall back to exact keys.
			return c.Key()
		}
		states[pid] = s
		rounds = append(rounds, s.ballot.K, s.ownBal.K, s.maxK, s.maxBal.K)
	}
	for r := 0; r < c.NumRegisters(); r++ {
		blocks[r] = decodeBlock(c.Register(r))
		rounds = append(rounds, blocks[r].Mbal.K, blocks[r].Bal.K)
	}
	remap := buildRoundRemap(rounds)

	var b strings.Builder
	b.Grow(32 * n)
	for pid := range states {
		states[pid].writeCanonicalKey(&b, remap)
		b.WriteByte('\x1f')
	}
	b.WriteByte('\x1e')
	for r := range blocks {
		block := blocks[r]
		block.Mbal.K = remap.apply(block.Mbal.K)
		block.Bal.K = remap.apply(block.Bal.K)
		b.WriteString(string(block.encode()))
		b.WriteByte('\x1f')
	}
	return b.String()
}

// canonScratch is the reusable working set of one CanonicalKeyTo call. The
// remap's from/to slices alias rounds/to, so everything is reclaimed
// together when the scratch returns to the pool.
type canonScratch struct {
	rounds []int
	to     []int
	states []diskState
	blocks []diskBlock
	// decoded memoises decodeBlock by register content. Register values are
	// drawn from a small vocabulary that recurs across millions of
	// canonicalisations, so a pool-local cache turns the hot-path parse
	// into a map hit; clearing on overflow bounds a pathological run.
	decoded map[model.Value]diskBlock
}

func (sc *canonScratch) decode(v model.Value) diskBlock {
	block, ok := sc.decoded[v]
	if !ok {
		block = decodeBlock(v)
		if sc.decoded == nil {
			sc.decoded = make(map[model.Value]diskBlock, 256)
		} else if len(sc.decoded) >= 1<<16 {
			clear(sc.decoded)
		}
		sc.decoded[v] = block
	}
	return block
}

var canonPool = sync.Pool{New: func() any { return new(canonScratch) }}

// CanonicalKeyTo streams exactly the bytes CanonicalKey returns into w
// without materialising the string: scratch comes from a pool, rounds are
// renumbered into a reused buffer, and register blocks are re-encoded
// field-by-field. CanonicalKey stays the reference implementation;
// TestCanonicalKeyToMatchesCanonicalKey holds the two together. Safe for
// concurrent use (each call takes its own pooled scratch), as
// explore.Options.KeyTo requires.
func (DiskRace) CanonicalKeyTo(w model.KeyWriter, c model.Config) {
	n := c.NumProcesses()
	sc := canonPool.Get().(*canonScratch)
	defer canonPool.Put(sc)
	sc.rounds = sc.rounds[:0]
	sc.states = sc.states[:0]
	sc.blocks = sc.blocks[:0]
	for pid := 0; pid < n; pid++ {
		s, ok := c.State(pid).(diskState)
		if !ok {
			// Not a DiskRace configuration; fall back to exact keys,
			// mirroring CanonicalKey's c.Key() fallback.
			c.KeyTo(w)
			return
		}
		sc.states = append(sc.states, s)
		sc.rounds = append(sc.rounds, s.ballot.K, s.ownBal.K, s.maxK, s.maxBal.K)
	}
	for r := 0; r < c.NumRegisters(); r++ {
		block := sc.decode(c.Register(r))
		sc.blocks = append(sc.blocks, block)
		sc.rounds = append(sc.rounds, block.Mbal.K, block.Bal.K)
	}
	remap := buildRoundRemapInto(sc.rounds, sc.to)
	sc.to = remap.to

	for i := range sc.states {
		sc.states[i].writeCanonicalKeyTo(w, remap)
		_ = w.WriteByte('\x1f')
	}
	_ = w.WriteByte('\x1e')
	for i := range sc.blocks {
		block := sc.blocks[i]
		block.Mbal.K = remap.apply(block.Mbal.K)
		block.Bal.K = remap.apply(block.Bal.K)
		writeBlockTo(w, block)
		_ = w.WriteByte('\x1f')
	}
}

// writeBlockTo streams diskBlock.encode without building the string.
func writeBlockTo(w model.KeyWriter, b diskBlock) {
	w.WriteInt(b.Mbal.K)
	_ = w.WriteByte('.')
	w.WriteInt(b.Mbal.Pid)
	_ = w.WriteByte(';')
	w.WriteInt(b.Bal.K)
	_ = w.WriteByte('.')
	w.WriteInt(b.Bal.Pid)
	_ = w.WriteByte(';')
	_, _ = w.WriteString(string(b.Inp))
}

// roundRemap is an order-preserving, gap-capped renumbering of rounds,
// represented as two parallel sorted slices (binary-search application).
type roundRemap struct {
	from []int
	to   []int
}

func (m roundRemap) apply(k int) int {
	if k == 0 {
		return 0
	}
	// from holds at most a handful of distinct rounds per configuration, so
	// a linear scan beats binary search (and keeps the out-of-range panic
	// for a round that was never collected).
	i := 0
	for m.from[i] < k {
		i++
	}
	return m.to[i]
}

// buildRoundRemap computes the renumbering for the given (unsorted,
// duplicate-bearing) list of rounds.
func buildRoundRemap(rounds []int) roundRemap {
	return buildRoundRemapInto(rounds, nil)
}

// buildRoundRemapInto is buildRoundRemap appending the renumbered rounds
// into to's backing array (the hot path reuses it across calls). rounds is
// sorted and deduplicated in place.
func buildRoundRemapInto(rounds, to []int) roundRemap {
	// rounds is 6n small ints; insertion sort in place skips the generic
	// sort's dispatch overhead on the canonicalisation hot path.
	for i := 1; i < len(rounds); i++ {
		for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
			rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
		}
	}
	from := rounds[:0]
	prev := -1
	for _, k := range rounds {
		if k != prev {
			from = append(from, k)
			prev = k
		}
	}
	if len(from) > 0 && from[0] == 0 {
		from = from[1:]
	}
	to = to[:0]
	prevK, mapped := 0, 0
	for _, k := range from {
		gap := k - prevK
		switch {
		case prevK == 0:
			// Anchor: the smallest positive round maps to 1 (no
			// rule takes the successor of round 0, so its distance
			// from 0 is unobservable).
			gap = 1
		case gap > 2:
			// A single successor cannot cross a gap of 2, so
			// larger gaps are indistinguishable from 2.
			gap = 2
		}
		mapped += gap
		to = append(to, mapped)
		prevK = k
	}
	return roundRemap{from: from, to: to}
}

// writeCanonicalKey is diskState.Key with rounds renumbered, written without
// fmt for speed (canonicalisation dominates exhaustive-search CPU time).
func (s diskState) writeCanonicalKey(b *strings.Builder, remap roundRemap) {
	writeBallot := func(bal Ballot) {
		b.WriteString(strconv.Itoa(remap.apply(bal.K)))
		b.WriteByte('.')
		b.WriteString(strconv.Itoa(bal.Pid))
	}
	b.WriteByte('D')
	b.WriteString(strconv.Itoa(s.pid))
	b.WriteByte('|')
	b.WriteString(string(s.input))
	b.WriteByte('|')
	writeBallot(s.ballot)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(s.phase)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.idx))
	b.WriteByte('|')
	writeBallot(s.ownBal)
	b.WriteByte('|')
	b.WriteString(string(s.ownInp))
	b.WriteByte('|')
	b.WriteString(string(s.proposal))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(remap.apply(s.maxK)))
	if s.aborting {
		b.WriteByte('!')
	}
	b.WriteByte('|')
	writeBallot(s.maxBal)
	b.WriteByte('|')
	b.WriteString(string(s.balInp))
}

// writeCanonBallot streams one remapped ballot (a top-level function, not
// a closure, so the per-state hot loop stays closure-free).
func writeCanonBallot(w model.KeyWriter, remap roundRemap, bal Ballot) {
	w.WriteInt(remap.apply(bal.K))
	_ = w.WriteByte('.')
	w.WriteInt(bal.Pid)
}

// writeCanonicalKeyTo streams exactly the bytes writeCanonicalKey builds.
func (s *diskState) writeCanonicalKeyTo(w model.KeyWriter, remap roundRemap) {
	_ = w.WriteByte('D')
	w.WriteInt(s.pid)
	_ = w.WriteByte('|')
	_, _ = w.WriteString(string(s.input))
	_ = w.WriteByte('|')
	writeCanonBallot(w, remap, s.ballot)
	_ = w.WriteByte('|')
	w.WriteInt(int(s.phase))
	_ = w.WriteByte('|')
	w.WriteInt(s.idx)
	_ = w.WriteByte('|')
	writeCanonBallot(w, remap, s.ownBal)
	_ = w.WriteByte('|')
	_, _ = w.WriteString(string(s.ownInp))
	_ = w.WriteByte('|')
	_, _ = w.WriteString(string(s.proposal))
	_ = w.WriteByte('|')
	w.WriteInt(remap.apply(s.maxK))
	if s.aborting {
		_ = w.WriteByte('!')
	}
	_ = w.WriteByte('|')
	writeCanonBallot(w, remap, s.maxBal)
	_ = w.WriteByte('|')
	_, _ = w.WriteString(string(s.balInp))
}
