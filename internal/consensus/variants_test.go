package consensus

import (
	"context"
	"testing"

	"repro/internal/check"
)

// TestGreedyFloodIsBroken verifies the checker catches the strict-majority
// adoption bug at n=2: a stale covering write obliterates the decided value
// and the tie-breaking laggard pushes its own value through.
func TestGreedyFloodIsBroken(t *testing.T) {
	report, err := check.Consensus(context.Background(), GreedyFlood{}, 2, check.Options{SkipSolo: true})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if report.OK() {
		t.Fatal("expected greedyflood to violate agreement at n=2")
	}
	if got := report.Violations[0].Kind; got != check.Agreement {
		t.Fatalf("violation kind = %v, want agreement", got)
	}
	t.Logf("caught: %v", report.Violations[0])
}

// TestEagerFloodIsBroken verifies the checker catches single-scan deciding
// at n=3 (unanimous scans assembled across epochs), while n=2 is clean.
func TestEagerFloodIsBroken(t *testing.T) {
	clean, err := check.Consensus(context.Background(), EagerFlood{}, 2, check.Options{})
	if err != nil {
		t.Fatalf("n=2 check: %v", err)
	}
	if !clean.OK() {
		t.Fatalf("eagerflood unexpectedly broken at n=2: %v", clean)
	}
	report, err := check.Consensus(context.Background(), EagerFlood{}, 3, check.Options{SkipSolo: true})
	if err != nil {
		t.Fatalf("n=3 check: %v", err)
	}
	if report.OK() {
		t.Fatal("expected eagerflood to violate agreement at n=3")
	}
	if got := report.Violations[0].Kind; got != check.Agreement {
		t.Fatalf("violation kind = %v, want agreement", got)
	}
	t.Logf("caught: %v", report.Violations[0])
}
