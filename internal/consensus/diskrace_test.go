package consensus

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/explore"
	"repro/internal/model"
)

// diskOpts is the exploration configuration for DiskRace: the ballot
// canonicalisation is what makes its unbounded state space exhaustible.
func diskOpts() explore.Options {
	return explore.Options{KeyFn: DiskRace{}.CanonicalKey, KeyTo: DiskRace{}.CanonicalKeyTo}
}

// TestDiskRaceAgreement model-checks DiskRace over the canonical
// (ballot-renumbered) quotient of its configuration space: exhaustively for
// n=2, bounded (the quotient is finite but very large) for n=3. Safety at
// all n rests on the Disk Paxos proof; these checks guard the
// implementation, and TestDiskRaceSoloTermination covers obstruction
// freedom.
func TestDiskRaceAgreement(t *testing.T) {
	report, err := check.Consensus(context.Background(), DiskRace{}, 2, check.Options{Explore: diskOpts()})
	if err != nil {
		t.Fatalf("n=2: %v", err)
	}
	if !report.OK() {
		t.Fatalf("n=2: %v", report)
	}
	t.Logf("%v", report)

	if testing.Short() {
		t.Skip("n=3 bounded check skipped in -short mode")
	}
	opts := diskOpts()
	opts.MaxConfigs = 150_000 // per input vector; bounded, not exhaustive
	report, err = check.Consensus(context.Background(), DiskRace{}, 3, check.Options{
		Explore:  opts,
		SkipSolo: true, // covered by TestDiskRaceSoloTermination
	})
	if err != nil {
		t.Fatalf("n=3: %v", err)
	}
	if !report.OK() {
		t.Fatalf("n=3: %v", report)
	}
	t.Logf("%v (bounded)", report)
}

// TestDiskRaceSoloTermination samples reachable configurations at n=3 and
// verifies every process decides when run alone (obstruction freedom).
func TestDiskRaceSoloTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inputs := []model.Value{"0", "1", "1"}
	for trial := 0; trial < 300; trial++ {
		c := model.NewConfig(DiskRace{}, inputs)
		for step := 0; step < rng.Intn(60); step++ {
			c = c.StepDet(rng.Intn(3))
		}
		for pid := 0; pid < 3; pid++ {
			d := c
			decided := false
			for step := 0; step < 200; step++ {
				if _, ok := d.Decided(pid); ok {
					decided = true
					break
				}
				d = d.StepDet(pid)
			}
			if !decided {
				t.Fatalf("trial %d: p%d does not decide solo", trial, pid)
			}
		}
	}
}

// TestDiskRaceSoloFast verifies the obstruction-freedom bound claimed in the
// docs: a solo run from the initial configuration decides with at most one
// abort.
func TestDiskRaceSoloFast(t *testing.T) {
	for n := 2; n <= 16; n++ {
		inputs := make([]model.Value, n)
		for i := range inputs {
			inputs[i] = "0"
		}
		c := model.NewConfig(DiskRace{}, inputs)
		steps := 0
		for {
			if v, ok := c.Decided(n - 1); ok {
				if v != "0" {
					t.Fatalf("n=%d: decided %q, want 0 (validity)", n, string(v))
				}
				break
			}
			if steps > 6*n+10 {
				t.Fatalf("n=%d: no solo decision within %d steps", n, steps)
			}
			c = c.StepDet(n - 1)
			steps++
		}
		t.Logf("n=%d: solo decision in %d steps", n, steps)
	}
}

// TestDiskRaceCanonicalBisimulation property-checks the soundness argument
// of CanonicalKey: shifting every ballot round of a reachable configuration
// by a constant yields the same canonical key, and running the shifted and
// unshifted configurations in lockstep under random schedules preserves
// canonical keys and decided values step by step.
func TestDiskRaceCanonicalBisimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inputs := []model.Value{"1", "0", "1"}
	for trial := 0; trial < 200; trial++ {
		c := model.NewConfig(DiskRace{}, inputs)
		for step := 0; step < rng.Intn(80); step++ {
			c = c.StepDet(rng.Intn(3))
		}
		shift := 1 + rng.Intn(5)
		d := shiftRounds(c, shift)
		if got, want := (DiskRace{}).CanonicalKey(d), (DiskRace{}).CanonicalKey(c); got != want {
			t.Fatalf("trial %d: canonical keys diverge after shift %d:\n got %q\nwant %q",
				trial, shift, got, want)
		}
		// Lockstep: same schedule from both, canonical keys must track.
		for step := 0; step < 30; step++ {
			pid := rng.Intn(3)
			c = c.StepDet(pid)
			d = d.StepDet(pid)
			if (DiskRace{}).CanonicalKey(d) != (DiskRace{}).CanonicalKey(c) {
				t.Fatalf("trial %d: lockstep divergence at step %d", trial, step)
			}
			for q := 0; q < 3; q++ {
				vc, okc := c.Decided(q)
				vd, okd := d.Decided(q)
				if okc != okd || vc != vd {
					t.Fatalf("trial %d: decision divergence for p%d", trial, q)
				}
			}
		}
	}
}

// shiftRounds adds delta to every positive ballot round in a DiskRace
// configuration, registers and local states alike. It is a test-only tool
// for producing distinct-but-bisimilar configurations.
func shiftRounds(c model.Config, delta int) model.Config {
	bump := func(b Ballot) Ballot {
		if b.IsZero() {
			return b
		}
		return Ballot{K: b.K + delta, Pid: b.Pid}
	}
	// Rebuild via a fresh config of the same machine, then overwrite all
	// states and registers through the public Step API is impossible;
	// instead reconstruct states directly (same package).
	n := c.NumProcesses()
	inputs := make([]model.Value, n)
	for i := range inputs {
		inputs[i] = c.State(i).(diskState).input
	}
	out := model.NewConfig(DiskRace{}, inputs)
	states := make([]model.State, n)
	for i := 0; i < n; i++ {
		s := c.State(i).(diskState)
		s.ballot = bump(s.ballot)
		s.ownBal = bump(s.ownBal)
		if s.maxK > 0 {
			s.maxK += delta
		}
		s.maxBal = bump(s.maxBal)
		states[i] = s
	}
	regs := make([]model.Value, c.NumRegisters())
	for r := range regs {
		if c.Register(r) == model.Bottom {
			regs[r] = model.Bottom
			continue
		}
		block := decodeBlock(c.Register(r))
		block.Mbal = bump(block.Mbal)
		block.Bal = bump(block.Bal)
		regs[r] = block.encode()
	}
	return model.RebuildConfig(out, states, regs)
}
