package consensus

import (
	"fmt"

	"repro/internal/model"
)

// AdoptCommit is the model twin of internal/native's adopt-commit object:
// the two-stage conflict detector from four multi-writer bits (A0, A1, B0,
// B1) that glues the rounds of randomized consensus together. Expressing it
// in the model makes its three defining properties *exhaustively
// machine-checked* rather than hand-proved (TestAdoptCommitModelProperties
// verifies them over every interleaving for n up to 4):
//
//	(a) if every proposal is v, every process commits v;
//	(b) if any process commits v, every process commits or adopts v;
//	(c) returned values were proposed.
//
// Each process performs: write A[v]; read A[v̄]; if set, read B[v̄] and
// adopt (deferring to a possibly committing v̄ if B[v̄] was set); otherwise
// write B[v] and read A[v̄] again, committing v only if it is still clear.
// A process "decides" the string "C:v" or "A:v" so the checker can inspect
// outcomes through the standard machinery.
type AdoptCommit struct{}

var _ model.Machine = AdoptCommit{}

// Register layout.
const (
	acRegA0 = iota
	acRegA1
	acRegB0
	acRegB1
	acRegCount
)

// Name implements model.Machine.
func (AdoptCommit) Name() string { return "adoptcommit" }

// Registers implements model.Machine.
func (AdoptCommit) Registers(n int) int { return acRegCount }

// Init implements model.Machine.
func (AdoptCommit) Init(n, pid int, input model.Value) model.State {
	if input != "0" && input != "1" {
		panic(fmt.Sprintf("adoptcommit: input must be binary, got %q", string(input)))
	}
	return acState{v: input, phase: acWriteA}
}

type acPhase uint8

const (
	acWriteA acPhase = iota + 1
	acReadOppA
	acReadOppB
	acWriteB
	acRecheckA
	acDone
)

// acState is the immutable local state of one AdoptCommit process.
type acState struct {
	v model.Value
	// outcome is "C:<v>" or "A:<v>" once phase == acDone.
	outcome model.Value
	phase   acPhase
}

var _ model.State = acState{}

func regA(v model.Value) int {
	if v == "0" {
		return acRegA0
	}
	return acRegA1
}

func regB(v model.Value) int {
	if v == "0" {
		return acRegB0
	}
	return acRegB1
}

func opposite(v model.Value) model.Value {
	if v == "0" {
		return "1"
	}
	return "0"
}

// Pending implements model.State.
func (s acState) Pending() model.Op {
	switch s.phase {
	case acWriteA:
		return model.Op{Kind: model.OpWrite, Reg: regA(s.v), Arg: "1"}
	case acReadOppA, acRecheckA:
		return model.Op{Kind: model.OpRead, Reg: regA(opposite(s.v))}
	case acReadOppB:
		return model.Op{Kind: model.OpRead, Reg: regB(opposite(s.v))}
	case acWriteB:
		return model.Op{Kind: model.OpWrite, Reg: regB(s.v), Arg: "1"}
	case acDone:
		return model.Op{Kind: model.OpDecide, Arg: s.outcome}
	default:
		panic(fmt.Sprintf("adoptcommit: invalid phase %d", s.phase))
	}
}

// Next implements model.State.
func (s acState) Next(in model.Value) model.State {
	set := in == "1"
	switch s.phase {
	case acWriteA:
		return acState{v: s.v, phase: acReadOppA}
	case acReadOppA:
		if set {
			// Conflict: check whether the opposite value reached
			// its second stage.
			return acState{v: s.v, phase: acReadOppB}
		}
		return acState{v: s.v, phase: acWriteB}
	case acReadOppB:
		out := s.v
		if set {
			out = opposite(s.v)
		}
		return acState{v: s.v, outcome: "A:" + out, phase: acDone}
	case acWriteB:
		return acState{v: s.v, phase: acRecheckA}
	case acRecheckA:
		if set {
			return acState{v: s.v, outcome: "A:" + s.v, phase: acDone}
		}
		return acState{v: s.v, outcome: "C:" + s.v, phase: acDone}
	default:
		panic("adoptcommit: Next on terminated state")
	}
}

// Key implements model.State.
func (s acState) Key() string {
	return fmt.Sprintf("AC|%s|%d|%s", string(s.v), s.phase, string(s.outcome))
}
