package consensus

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Ballot is a totally ordered proposal identifier (round, owner), compared
// lexicographically. Distinct processes never share a ballot because the
// owner field breaks ties. The zero Ballot is smaller than every real one.
type Ballot struct {
	K   int // round number, ≥ 1 for real ballots
	Pid int // owning process
}

// Less reports strict lexicographic order.
func (b Ballot) Less(o Ballot) bool {
	if b.K != o.K {
		return b.K < o.K
	}
	return b.Pid < o.Pid
}

// IsZero reports whether b is the null ballot.
func (b Ballot) IsZero() bool { return b.K == 0 }

// String implements fmt.Stringer ("k.pid").
func (b Ballot) String() string {
	return strconv.Itoa(b.K) + "." + strconv.Itoa(b.Pid)
}

func parseBallot(s string) Ballot {
	dot := strings.IndexByte(s, '.')
	k, _ := strconv.Atoi(s[:dot])
	pid, _ := strconv.Atoi(s[dot+1:])
	return Ballot{K: k, Pid: pid}
}

// DiskRace is obstruction-free binary consensus from n single-writer
// registers: Gafni and Lamport's Disk Paxos specialised to a single "disk"
// with one block per process. It is the repository's general upper-bound
// protocol — n registers for n processes, matching the n-1 lower bound of
// the paper to within one register (the gap the paper's Section 4 conjectures
// should close at n).
//
// Register R[p], written only by process p, holds a triple
// (mbal, bal, inp): the largest ballot p has started, the largest ballot at
// which p completed phase 1, and the value p proposed at bal. A process at
// ballot b = (k, p) runs:
//
//	phase 1: write (mbal=b) to R[p]; read all registers. If any register
//	         shows mbal' > b, abort to phase 1 with round max(k')+1.
//	         Otherwise proposal := inp of the largest bal seen, or the
//	         process's own input if every bal is null.
//	phase 2: write (mbal=b, bal=b, inp=proposal) to R[p]; read all
//	         registers. If any register shows mbal' > b, abort as above.
//	         Otherwise decide proposal.
//
// Safety is Disk Paxos safety (Gafni & Lamport 2002, Lemmas 1-3; the single
// disk is trivially a majority of one), and is additionally model-checked
// here for small n — exactly, despite the unbounded ballot space, via the
// gap-capped ballot canonicalisation in CanonicalKey. Obstruction freedom:
// a process running alone aborts at most once, adopts a round above
// everything it saw, and then completes both phases unopposed.
//
// Ballots grow without bound under contention, which after Flood's finite-
// alphabet counterexamples is not an accident of the construction but the
// price of correctness.
type DiskRace struct{}

var _ model.Machine = DiskRace{}

// Name implements model.Machine.
func (DiskRace) Name() string { return "diskrace" }

// Registers implements model.Machine: one single-writer register per process.
func (DiskRace) Registers(n int) int { return n }

// Init implements model.Machine.
func (DiskRace) Init(n, pid int, input model.Value) model.State {
	if input != "0" && input != "1" {
		panic(fmt.Sprintf("diskrace: input must be binary, got %q", string(input)))
	}
	return diskState{
		n: n, pid: pid, input: input,
		ballot: Ballot{K: 1, Pid: pid},
		phase:  diskP1Write,
	}
}

// diskBlock is the decoded contents of one register.
type diskBlock struct {
	Mbal Ballot
	Bal  Ballot
	Inp  model.Value
}

func (b diskBlock) encode() model.Value {
	// Built through a stack array so the only allocation is the final
	// string copy: encode runs on every write step of every explored
	// execution, where the three-way concat's intermediate ballot strings
	// were measurable.
	var arr [40]byte
	buf := strconv.AppendInt(arr[:0], int64(b.Mbal.K), 10)
	buf = append(buf, '.')
	buf = strconv.AppendInt(buf, int64(b.Mbal.Pid), 10)
	buf = append(buf, ';')
	buf = strconv.AppendInt(buf, int64(b.Bal.K), 10)
	buf = append(buf, '.')
	buf = strconv.AppendInt(buf, int64(b.Bal.Pid), 10)
	buf = append(buf, ';')
	buf = append(buf, b.Inp...)
	return model.Value(buf)
}

func decodeBlock(v model.Value) diskBlock {
	if v == model.Bottom {
		return diskBlock{}
	}
	// Split by hand instead of strings.SplitN: decoding runs once per
	// register per canonicalised configuration, and the slice header
	// allocation was measurable in exhaustive-search profiles.
	s := string(v)
	i := strings.IndexByte(s, ';')
	j := i + 1 + strings.IndexByte(s[i+1:], ';')
	return diskBlock{
		Mbal: parseBallot(s[:i]),
		Bal:  parseBallot(s[i+1 : j]),
		Inp:  model.Value(s[j+1:]),
	}
}

type diskPhase uint8

const (
	diskP1Write diskPhase = iota + 1
	diskP1Scan
	diskP2Write
	diskP2Scan
	diskDone
)

// diskState is the immutable local state of one DiskRace process.
type diskState struct {
	n     int
	pid   int
	input model.Value

	ballot Ballot
	phase  diskPhase

	// own mirrors the process's register so phase-1 writes can preserve
	// the previously accepted (bal, inp).
	ownBal Ballot
	ownInp model.Value

	// proposal is the value chosen at the end of phase 1.
	proposal model.Value

	// Scan bookkeeping. Only two facts about the mbal fields seen so far
	// matter: the largest round (for the retry ballot) and whether any of
	// them exceeded our ballot (abort). Tracking a full (round, pid) pair
	// here would multiply the reachable state space by ~n for no
	// behavioural difference, which exhaustive search cannot afford.
	idx      int
	maxK     int
	aborting bool
	maxBal   Ballot
	balInp   model.Value
}

var _ model.State = diskState{}

// Pending implements model.State.
func (s diskState) Pending() model.Op {
	switch s.phase {
	case diskP1Write:
		block := diskBlock{Mbal: s.ballot, Bal: s.ownBal, Inp: s.ownInp}
		return model.Op{Kind: model.OpWrite, Reg: s.pid, Arg: block.encode()}
	case diskP2Write:
		block := diskBlock{Mbal: s.ballot, Bal: s.ballot, Inp: s.proposal}
		return model.Op{Kind: model.OpWrite, Reg: s.pid, Arg: block.encode()}
	case diskP1Scan, diskP2Scan:
		return model.Op{Kind: model.OpRead, Reg: s.idx}
	case diskDone:
		return model.Op{Kind: model.OpDecide, Arg: s.proposal}
	default:
		panic(fmt.Sprintf("diskrace: invalid phase %d", s.phase))
	}
}

var _ model.OpPeeker = diskState{}

// PeekOp implements model.OpPeeker: the pending kind and register without
// Pending's block encoding, which move enumeration and cover checks would
// otherwise pay on every write-poised inspection.
func (s diskState) PeekOp() (model.OpKind, int) {
	switch s.phase {
	case diskP1Write, diskP2Write:
		return model.OpWrite, s.pid
	case diskP1Scan, diskP2Scan:
		return model.OpRead, s.idx
	case diskDone:
		return model.OpDecide, 0
	default:
		panic(fmt.Sprintf("diskrace: invalid phase %d", s.phase))
	}
}

// Next implements model.State.
func (s diskState) Next(in model.Value) model.State {
	switch s.phase {
	case diskP1Write:
		next := s
		next.phase = diskP1Scan
		next.idx = 0
		next.maxK, next.aborting = 0, false
		next.maxBal, next.balInp = Ballot{}, model.Bottom
		return next
	case diskP2Write:
		next := s
		next.ownBal, next.ownInp = s.ballot, s.proposal
		next.phase = diskP2Scan
		next.idx = 0
		next.maxK, next.aborting = 0, false
		return next
	case diskP1Scan:
		block := decodeBlock(in)
		next := s
		next.observeMbal(block.Mbal)
		if next.maxBal.Less(block.Bal) {
			next.maxBal = block.Bal
			next.balInp = block.Inp
		}
		if next.idx+1 < next.n {
			next.idx++
			return next
		}
		if next.aborting {
			return next.abort()
		}
		// Phase 1 complete: choose the proposal.
		next.proposal = next.balInp
		if next.maxBal.IsZero() {
			next.proposal = next.input
		}
		next.phase = diskP2Write
		return next
	case diskP2Scan:
		block := decodeBlock(in)
		next := s
		next.observeMbal(block.Mbal)
		if next.idx+1 < next.n {
			next.idx++
			return next
		}
		if next.aborting {
			return next.abort()
		}
		next.phase = diskDone
		return next
	default:
		panic("diskrace: Next on terminated state")
	}
}

// observeMbal folds one register's mbal field into the scan trackers.
// The receiver is a copy being built by Next, hence the pointer.
func (s *diskState) observeMbal(mbal Ballot) {
	if mbal.K > s.maxK {
		s.maxK = mbal.K
	}
	if s.ballot.Less(mbal) {
		s.aborting = true
	}
}

// abort restarts phase 1 with a round strictly above everything observed
// (aborting implies some mbal above our ballot was seen, so maxK is at
// least our own round).
func (s diskState) abort() diskState {
	next := s
	next.ballot = Ballot{K: s.maxK + 1, Pid: s.pid}
	next.phase = diskP1Write
	next.idx = 0
	next.maxK, next.aborting = 0, false
	next.maxBal, next.balInp = Ballot{}, model.Bottom
	next.proposal = model.Bottom
	return next
}

// Key implements model.State. It is the reference form of KeyTo.
func (s diskState) Key() string {
	return fmt.Sprintf("D%d|%d|%s|%v|%d|%d|%v|%s|%s|%d.%t|%v|%s",
		s.n, s.pid, string(s.input), s.ballot, s.phase, s.idx,
		s.ownBal, string(s.ownInp), string(s.proposal),
		s.maxK, s.aborting, s.maxBal, string(s.balInp))
}

var _ model.StateKeyWriter = diskState{}

// KeyTo implements model.StateKeyWriter, streaming exactly the bytes Key
// returns without fmt.
func (s diskState) KeyTo(w model.KeyWriter) {
	writeBallot := func(b Ballot) {
		w.WriteInt(b.K)
		_ = w.WriteByte('.')
		w.WriteInt(b.Pid)
	}
	_ = w.WriteByte('D')
	w.WriteInt(s.n)
	_ = w.WriteByte('|')
	w.WriteInt(s.pid)
	_ = w.WriteByte('|')
	_, _ = w.WriteString(string(s.input))
	_ = w.WriteByte('|')
	writeBallot(s.ballot)
	_ = w.WriteByte('|')
	w.WriteInt(int(s.phase))
	_ = w.WriteByte('|')
	w.WriteInt(s.idx)
	_ = w.WriteByte('|')
	writeBallot(s.ownBal)
	_ = w.WriteByte('|')
	_, _ = w.WriteString(string(s.ownInp))
	_ = w.WriteByte('|')
	_, _ = w.WriteString(string(s.proposal))
	_ = w.WriteByte('|')
	w.WriteInt(s.maxK)
	_ = w.WriteByte('.')
	if s.aborting {
		_, _ = w.WriteString("true")
	} else {
		_, _ = w.WriteString("false")
	}
	_ = w.WriteByte('|')
	writeBallot(s.maxBal)
	_ = w.WriteByte('|')
	_, _ = w.WriteString(string(s.balInp))
}
