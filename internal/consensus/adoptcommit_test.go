package consensus

import (
	"context"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/explore"
	"repro/internal/model"
)

// acOutcome decodes a decided adopt-commit outcome string.
func acOutcome(v model.Value) (commit bool, val string) {
	s := string(v)
	return strings.HasPrefix(s, "C:"), strings.TrimPrefix(strings.TrimPrefix(s, "C:"), "A:")
}

// TestAdoptCommitModelProperties exhaustively verifies the adopt-commit
// object's three properties over every interleaving for n = 2, 3, 4 and
// every binary input vector:
//
//	(a) unanimous proposals commit the proposal,
//	(b) a commit of v forces every outcome's value to v,
//	(c) outcome values were proposed.
//
// This machine-checks the hand-proof in internal/native's AdoptCommit
// (including the at-most-one-B invariant implicitly: both-B would yield
// contradictory commits, which (b) forbids).
func TestAdoptCommitModelProperties(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		for _, inputs := range check.BinaryInputs(n) {
			proposed := map[string]bool{}
			unanimous := true
			for _, in := range inputs {
				proposed[string(in)] = true
				if in != inputs[0] {
					unanimous = false
				}
			}
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			root := model.NewConfig(AdoptCommit{}, inputs)
			_, err := explore.Reach(context.Background(), root, all, explore.Options{}, func(v explore.Visit) bool {
				committed := map[string]bool{}
				outcomes := map[string]bool{}
				done := 0
				for pid := 0; pid < n; pid++ {
					out, ok := v.Config.Decided(pid)
					if !ok {
						continue
					}
					done++
					c, val := acOutcome(out)
					outcomes[val] = true
					if c {
						committed[val] = true
					}
					// (c) validity.
					if !proposed[val] {
						t.Fatalf("n=%d inputs=%v: outcome value %q never proposed", n, inputs, val)
					}
				}
				// (b) coherence.
				if len(committed) > 1 {
					t.Fatalf("n=%d inputs=%v: contradictory commits %v", n, inputs, committed)
				}
				for val := range committed {
					if len(outcomes) != 1 || !outcomes[val] {
						t.Fatalf("n=%d inputs=%v: commit of %q alongside outcomes %v", n, inputs, val, outcomes)
					}
				}
				// (a) unanimity: when everyone is done with equal
				// inputs, everyone committed the input.
				if unanimous && done == n {
					if len(committed) != 1 || !committed[string(inputs[0])] {
						t.Fatalf("n=%d inputs=%v: unanimous run ended without commit (outcomes %v)",
							n, inputs, outcomes)
					}
				}
				return true
			})
			if err != nil {
				t.Fatalf("n=%d inputs=%v: %v", n, inputs, err)
			}
		}
	}
}

// TestAdoptCommitWaitFree: every process finishes in exactly its own 3-5
// steps regardless of interleaving.
func TestAdoptCommitWaitFree(t *testing.T) {
	c := model.NewConfig(AdoptCommit{}, []model.Value{"0", "1", "1"})
	// Fully interleave one step at a time; after 5 rounds everyone is done.
	for round := 0; round < 5; round++ {
		for pid := 0; pid < 3; pid++ {
			c = c.StepDet(pid)
		}
	}
	for pid := 0; pid < 3; pid++ {
		if _, ok := c.Decided(pid); !ok {
			t.Fatalf("p%d not finished after 5 own steps", pid)
		}
	}
}

// TestAdoptCommitSoloCommits: a solo run always commits its own proposal.
func TestAdoptCommitSoloCommits(t *testing.T) {
	for _, v := range []model.Value{"0", "1"} {
		c := model.NewConfig(AdoptCommit{}, []model.Value{v, opposite(v)})
		for i := 0; i < 6; i++ {
			c = c.StepDet(0)
		}
		out, ok := c.Decided(0)
		if !ok {
			t.Fatal("solo run did not finish")
		}
		commit, val := acOutcome(out)
		if !commit || val != string(v) {
			t.Fatalf("solo outcome %q, want commit of %s", string(out), string(v))
		}
	}
}
