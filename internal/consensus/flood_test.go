package consensus

import (
	"context"
	"testing"

	"repro/internal/check"
	"repro/internal/explore"
	"repro/internal/model"
)

// TestFloodAgreementN2 exhaustively model-checks Flood at n=2: every binary
// input vector, every interleaving, checking Agreement, Validity and solo
// termination from every reachable configuration.
func TestFloodAgreementN2(t *testing.T) {
	report, err := check.Consensus(context.Background(), Flood{}, 2, check.Options{})
	if err != nil {
		t.Fatalf("n=2: %v", err)
	}
	if !report.OK() {
		t.Fatalf("n=2: %v", report)
	}
	t.Logf("%v", report)
}

// TestFloodN3CoveringAttack documents that Flood — like every finite-
// register-alphabet protocol we tried — loses Agreement at n=3: laggards
// whose scans straddle a decision can erase all evidence of the decided
// value and assemble clean unanimous scans of the other one. The checker
// must find the counterexample; if this test ever fails, a finite-state
// obstruction-free consensus protocol has been discovered and a paper should
// be written instead.
func TestFloodN3CoveringAttack(t *testing.T) {
	report, err := check.Consensus(context.Background(), Flood{}, 3, check.Options{SkipSolo: true})
	if err != nil {
		t.Fatalf("n=3: %v", err)
	}
	if report.OK() {
		t.Fatalf("expected an agreement violation at n=3, found none over %d configs", report.Configs)
	}
	v := report.Violations[0]
	if v.Kind != check.Agreement {
		t.Fatalf("expected an agreement violation, got %v", v)
	}
	t.Logf("counterexample (length %d): %v", len(v.Path), v)
}

// TestFloodSoloRun verifies the O(n²) solo decision bound claimed in the
// Flood documentation.
func TestFloodSoloRun(t *testing.T) {
	for n := 2; n <= 8; n++ {
		inputs := make([]model.Value, n)
		for i := range inputs {
			inputs[i] = "1"
		}
		c := model.NewConfig(Flood{}, inputs)
		steps := 0
		for {
			if _, ok := c.Decided(0); ok {
				break
			}
			if steps > 2*n*n+4*n+4 {
				t.Fatalf("n=%d: no solo decision within %d steps", n, steps)
			}
			c = c.StepDet(0)
			steps++
		}
		t.Logf("n=%d: solo decision in %d steps", n, steps)
	}
}

// TestFloodRegisterAudit confirms Flood declares and touches exactly n
// registers (the paper's upper bound).
func TestFloodRegisterAudit(t *testing.T) {
	n := 4
	if got := (Flood{}).Registers(n); got != n {
		t.Fatalf("Registers(%d) = %d, want %d", n, got, n)
	}
	inputs := []model.Value{"0", "1", "0", "1"}
	c := model.NewConfig(Flood{}, inputs)
	touched := map[int]bool{}
	// A solo run by p0 then p3 touches every register via scans.
	for _, pid := range []int{0, 3} {
		for i := 0; i < 100; i++ {
			op := c.State(pid).Pending()
			if op.Kind == model.OpRead || op.Kind == model.OpWrite {
				touched[op.Reg] = true
			}
			if op.Kind == model.OpDecide {
				break
			}
			c = c.StepDet(pid)
		}
	}
	if len(touched) != n {
		t.Fatalf("touched %d registers, want %d", len(touched), n)
	}
}

// TestFloodBivalentInitial reproduces Proposition 2 concretely for Flood:
// from the mixed-input initial configuration, the full process set can still
// decide either value.
func TestFloodBivalentInitial(t *testing.T) {
	c := model.NewConfig(Flood{}, []model.Value{"0", "1", "1"})
	all := []int{0, 1, 2}
	seen := map[model.Value]bool{}
	res, err := explore.Reach(context.Background(), c, all, explore.Options{}, func(v explore.Visit) bool {
		for val := range v.Config.DecidedValues() {
			seen[val] = true
		}
		return !(seen["0"] && seen["1"])
	})
	if err != nil && !(seen["0"] && seen["1"]) {
		t.Fatalf("explore: %v", err)
	}
	if !seen["0"] || !seen["1"] {
		t.Fatalf("initial configuration not bivalent: decided %v (configs=%d)", seen, res.Count)
	}
}
