package consensus

import (
	"fmt"

	"repro/internal/model"
)

// GreedyFlood is Flood with strict-majority adoption instead of submissive
// ties. It violates Agreement already at n=2: a laggard holding a stale
// covering write obliterates a decided value, observes a tie, and pushes its
// own value through. It exists so the checker has a known-broken protocol to
// catch (TestGreedyFloodIsBroken).
type GreedyFlood struct{}

var _ model.Machine = GreedyFlood{}

// Name implements model.Machine.
func (GreedyFlood) Name() string { return "greedyflood" }

// Registers implements model.Machine.
func (GreedyFlood) Registers(n int) int { return n }

// Init implements model.Machine.
func (GreedyFlood) Init(n, pid int, input model.Value) model.State {
	if input != "0" && input != "1" {
		panic(fmt.Sprintf("greedyflood: input must be binary, got %q", string(input)))
	}
	rules := floodRules{name: "G", submissiveTies: false, doubleCollect: true}
	return floodState{rules: rules, n: n, pref: input, phase: floodScan}
}

// EagerFlood is Flood without the double collect: it decides on the first
// unanimous scan. It violates Agreement at n=3 (a unanimous scan can be
// assembled from different epochs while the opposite value is flooded
// concurrently); n=2 is exhaustively clean. It exists as a second
// known-broken protocol for the checker (TestEagerFloodIsBroken).
type EagerFlood struct{}

var _ model.Machine = EagerFlood{}

// Name implements model.Machine.
func (EagerFlood) Name() string { return "eagerflood" }

// Registers implements model.Machine.
func (EagerFlood) Registers(n int) int { return n }

// Init implements model.Machine.
func (EagerFlood) Init(n, pid int, input model.Value) model.State {
	if input != "0" && input != "1" {
		panic(fmt.Sprintf("eagerflood: input must be binary, got %q", string(input)))
	}
	rules := floodRules{name: "E", submissiveTies: true, doubleCollect: false}
	return floodState{rules: rules, n: n, pref: input, phase: floodScan}
}
