package consensus

import (
	"context"
	"testing"

	"repro/internal/explore"
	"repro/internal/model"
)

// walkDiskRace enumerates reachable DiskRace configurations (bounded) and
// hands each to check.
func walkDiskRace(t *testing.T, n int, limit int, check func(model.Config)) {
	t.Helper()
	inputs := make([]model.Value, n)
	for i := range inputs {
		inputs[i] = "1"
	}
	inputs[0] = "0"
	c := model.NewConfig(DiskRace{}, inputs)
	pids := make([]int, n)
	for i := range pids {
		pids[i] = i
	}
	opts := explore.Options{KeyFn: DiskRace{}.CanonicalKey, MaxConfigs: limit}
	seen := 0
	_, err := explore.Reach(context.Background(), c, pids, opts, func(v explore.Visit) bool {
		check(v.Config)
		seen++
		return true
	})
	if err != nil && seen < limit-1 {
		t.Fatal(err)
	}
}

// TestCanonicalKeyToMatchesCanonicalKey holds the streaming canonicaliser
// to its reference implementation byte for byte across reachable
// configurations: this equality is what makes the exploration engine's
// fingerprint dedup sound when it hashes via CanonicalKeyTo.
func TestCanonicalKeyToMatchesCanonicalKey(t *testing.T) {
	for _, n := range []int{2, 3} {
		var kb model.KeyBuilder
		walkDiskRace(t, n, 20000, func(c model.Config) {
			kb.Reset()
			DiskRace{}.CanonicalKeyTo(&kb, c)
			if got, want := kb.String(), (DiskRace{}).CanonicalKey(c); got != want {
				t.Fatalf("n=%d: CanonicalKeyTo wrote %q, CanonicalKey returns %q", n, got, want)
			}
		})
	}
}

// TestDiskStateKeyToMatchesKey does the same for the per-state exact key.
func TestDiskStateKeyToMatchesKey(t *testing.T) {
	var kb model.KeyBuilder
	walkDiskRace(t, 3, 20000, func(c model.Config) {
		for pid := 0; pid < c.NumProcesses(); pid++ {
			s := c.State(pid).(diskState)
			kb.Reset()
			s.KeyTo(&kb)
			if got, want := kb.String(), s.Key(); got != want {
				t.Fatalf("p%d: KeyTo wrote %q, Key returns %q", pid, got, want)
			}
		}
	})
}

// TestFloodKeyToMatchesKey holds floodState's streaming key to its Sprintf
// reference byte for byte across reachable flood configurations.
func TestFloodKeyToMatchesKey(t *testing.T) {
	c := model.NewConfig(Flood{}, []model.Value{"0", "1", "1"})
	opts := explore.Options{MaxConfigs: 20000}
	var kb model.KeyBuilder
	seen := 0
	_, err := explore.Reach(context.Background(), c, []int{0, 1, 2}, opts, func(v explore.Visit) bool {
		for pid := 0; pid < v.Config.NumProcesses(); pid++ {
			s := v.Config.State(pid).(floodState)
			kb.Reset()
			s.KeyTo(&kb)
			if got, want := kb.String(), s.Key(); got != want {
				t.Fatalf("p%d: KeyTo wrote %q, Key returns %q", pid, got, want)
			}
		}
		seen++
		return true
	})
	if err != nil && seen < opts.MaxConfigs-1 {
		t.Fatal(err)
	}
}

// TestCanonicalKeyToFallback pins the non-DiskRace fallback: on a foreign
// configuration the streaming canonicaliser must emit Config.Key, exactly
// as CanonicalKey falls back to it.
func TestCanonicalKeyToFallback(t *testing.T) {
	c := model.NewConfig(Flood{}, []model.Value{"0", "1"})
	var kb model.KeyBuilder
	DiskRace{}.CanonicalKeyTo(&kb, c)
	if got, want := kb.String(), (DiskRace{}).CanonicalKey(c); got != want {
		t.Fatalf("fallback mismatch: KeyTo %q, CanonicalKey %q", got, want)
	}
	if kb.String() != c.Key() {
		t.Fatalf("fallback should be Config.Key, got %q", kb.String())
	}
}

// TestDecodeBlockRoundTrip covers the hand-rolled split against encode.
func TestDecodeBlockRoundTrip(t *testing.T) {
	blocks := []diskBlock{
		{},
		{Mbal: Ballot{K: 3, Pid: 1}},
		{Mbal: Ballot{K: 12, Pid: 0}, Bal: Ballot{K: 12, Pid: 0}, Inp: "1"},
		{Mbal: Ballot{K: 5, Pid: 2}, Bal: Ballot{K: 4, Pid: 1}, Inp: "0"},
	}
	for _, b := range blocks {
		if got := decodeBlock(b.encode()); got != b {
			t.Fatalf("round trip of %+v gave %+v (encoded %q)", b, got, string(b.encode()))
		}
	}
	if got := decodeBlock(model.Bottom); got != (diskBlock{}) {
		t.Fatalf("decodeBlock(Bottom) = %+v, want zero block", got)
	}
}
