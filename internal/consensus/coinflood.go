package consensus

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// CoinFlood is a deliberately naive randomized two-process protocol:
// Flood's scan structure with the submissive-tie rule replaced by a fair
// coin. On a non-unanimous scan that shows both values, the process flips a
// coin to pick which observed value to adopt; a scan showing only the
// opposite value adopts it outright, and deciding still requires two
// consecutive unanimous scans.
//
// It is BROKEN, and the way it is broken is the protocol's reason to exist.
// In the paper's model (and in this framework), coin outcomes are resolved
// by the adversary: "nondeterministic solo terminating" protocols must be
// safe for EVERY outcome sequence, because the scheduler can condition on
// flips. Flood's submissive-tie rule was load-bearing — a laggard observing
// a tie might be staring at the ruins of a decided value, so it must defer.
// Giving the choice to a coin lets the adversary steer the laggard into
// pushing its own value over a decision: the checker, which branches on
// every model.OpCoin, finds the violation in a few hundred configurations
// (TestCoinFloodAdversarialCoins), while naive random testing would need a
// specific flip sequence AND a specific interleaving to stumble on it.
// Correct randomized protocols (internal/native's conciliator + adopt-
// commit) are structured so that coins only ever choose between outcomes
// that are all safe — the executable moral of this counterexample.
type CoinFlood struct{}

var _ model.Machine = CoinFlood{}

// Name implements model.Machine.
func (CoinFlood) Name() string { return "coinflood" }

// Registers implements model.Machine.
func (CoinFlood) Registers(n int) int { return n }

// Init implements model.Machine.
func (CoinFlood) Init(n, pid int, input model.Value) model.State {
	if n != 2 {
		panic(fmt.Sprintf("coinflood: built for exactly 2 processes, got %d", n))
	}
	if input != "0" && input != "1" {
		panic(fmt.Sprintf("coinflood: input must be binary, got %q", string(input)))
	}
	return coinFloodState{n: n, pref: input, phase: floodScan}
}

// coinFloodState mirrors floodState with an extra coin phase.
type coinFloodState struct {
	n          int
	pref       model.Value
	phase      floodPhase
	idx        int
	seen       string
	confirming bool
	// flipping is set when the state is poised on a coin whose outcome
	// picks the preference for the scan recorded in seen.
	flipping bool
}

var _ model.State = coinFloodState{}

// Pending implements model.State.
func (s coinFloodState) Pending() model.Op {
	if s.flipping {
		return model.Op{Kind: model.OpCoin}
	}
	switch s.phase {
	case floodScan:
		return model.Op{Kind: model.OpRead, Reg: s.idx}
	case floodWrite:
		return model.Op{Kind: model.OpWrite, Reg: s.idx, Arg: s.pref}
	case floodDone:
		return model.Op{Kind: model.OpDecide, Arg: s.pref}
	default:
		panic(fmt.Sprintf("coinflood: invalid phase %d", s.phase))
	}
}

var _ model.OpPeeker = coinFloodState{}

// PeekOp implements model.OpPeeker.
func (s coinFloodState) PeekOp() (model.OpKind, int) {
	if s.flipping {
		return model.OpCoin, 0
	}
	switch s.phase {
	case floodScan:
		return model.OpRead, s.idx
	case floodWrite:
		return model.OpWrite, s.idx
	case floodDone:
		return model.OpDecide, 0
	default:
		panic(fmt.Sprintf("coinflood: invalid phase %d", s.phase))
	}
}

// Next implements model.State.
func (s coinFloodState) Next(in model.Value) model.State {
	if s.flipping {
		// The coin outcome ("0" or "1") is adopted directly: both
		// values were observed in the scan, so validity is safe.
		next := s
		next.flipping = false
		next.pref = in
		return next.target()
	}
	switch s.phase {
	case floodScan:
		seen := s.seen + string(runeOf(in))
		if s.idx+1 < s.n {
			next := s
			next.idx++
			next.seen = seen
			return next
		}
		return s.evaluate(seen)
	case floodWrite:
		return coinFloodState{n: s.n, pref: s.pref, phase: floodScan}
	default:
		panic("coinflood: Next on terminated state")
	}
}

// evaluate applies the decision/adoption rules to a completed scan.
func (s coinFloodState) evaluate(seen string) model.State {
	zeros := strings.Count(seen, "0")
	ones := strings.Count(seen, "1")
	if zeros == s.n || ones == s.n {
		v := model.Value("0")
		if ones == s.n {
			v = "1"
		}
		if s.confirming && s.pref == v {
			return coinFloodState{n: s.n, pref: v, phase: floodDone}
		}
		return coinFloodState{n: s.n, pref: v, phase: floodScan, confirming: true}
	}
	next := coinFloodState{n: s.n, pref: s.pref, phase: floodScan, seen: seen}
	switch {
	case zeros > 0 && ones > 0:
		// Both values observed: the coin picks.
		next.flipping = true
		return next
	case zeros > 0 && s.pref == "1":
		next.pref = "0"
	case ones > 0 && s.pref == "0":
		next.pref = "1"
	}
	return next.target()
}

// target selects the register to repair for the current preference, based
// on the scan stored in seen.
func (s coinFloodState) target() model.State {
	idx := strings.IndexFunc(s.seen, func(r rune) bool { return r != runeOf(s.pref) })
	if idx < 0 {
		// The scan already agrees with the (possibly coin-chosen)
		// preference everywhere; rescan.
		return coinFloodState{n: s.n, pref: s.pref, phase: floodScan}
	}
	return coinFloodState{n: s.n, pref: s.pref, phase: floodWrite, idx: idx}
}

// Key implements model.State.
func (s coinFloodState) Key() string {
	flags := make([]byte, 0, 2)
	if s.confirming {
		flags = append(flags, 'y')
	}
	if s.flipping {
		flags = append(flags, 'f')
	}
	return fmt.Sprintf("CF%d|%s|%d|%d|%s|%s",
		s.n, string(s.pref), s.phase, s.idx, string(flags), s.seen)
}
