package perturb

import (
	"testing"

	"repro/internal/model"
)

// TestCounterSequential sanity-checks the SWCounter semantics: three
// processes performing their budgets sequentially produce the expected
// final responses.
func TestCounterSequential(t *testing.T) {
	c := model.NewConfig(SWCounter{}, []model.Value{"2", "1", "1"})
	// p0 twice, then p1, then p2, each to completion.
	for _, pid := range []int{0, 1, 2} {
		for i := 0; i < 100; i++ {
			if _, ok := c.Decided(pid); ok {
				break
			}
			c = c.StepDet(pid)
		}
	}
	want := map[int]model.Value{0: "2", 1: "3", 2: "4"}
	for pid, exp := range want {
		got, ok := c.Decided(pid)
		if !ok || got != exp {
			t.Fatalf("p%d: decided (%q,%v), want %q", pid, string(got), ok, string(exp))
		}
	}
}

// TestPerturbationWitness is experiment E5: the JTT adversary forces n-1
// distinct covered registers on the single-writer counter and the reader's
// solo operation costs at least n-1 steps, for a range of n.
func TestPerturbationWitness(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8, 12} {
		w, err := NewAdversary(SWCounter{}).Run(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if w.Registers < n-1 {
			t.Fatalf("n=%d: covered %d registers, want >= n-1", n, w.Registers)
		}
		if w.ReaderSoloSteps < n-1 {
			t.Fatalf("n=%d: reader solo steps %d below the JTT time bound n-1", n, w.ReaderSoloSteps)
		}
		// Distinctness of the cover.
		seen := map[int]bool{}
		for _, reg := range w.Cover {
			if seen[reg] {
				t.Fatalf("n=%d: register %d covered twice", n, reg)
			}
			seen[reg] = true
		}
		// Every stage's perturbation evidence must be real.
		for _, st := range w.Stages {
			if st.Unperturbed == st.Perturbed {
				t.Fatalf("n=%d stage %d: no perturbation recorded", n, st.K)
			}
		}
		t.Logf("%v", w)
	}
}

// TestPerturbationRejectsUnperturbable feeds the adversary a machine whose
// reader ignores shared memory; the perturbation evidence must fail loudly.
func TestPerturbationRejectsUnperturbable(t *testing.T) {
	if _, err := NewAdversary(constCounter{}).Run(3); err == nil {
		t.Fatal("expected failure for an unperturbable object")
	}
}

// constCounter always answers 0 without reading anything useful: a
// deliberately non-linearizable "counter" used to test the adversary's
// evidence checking.
type constCounter struct{}

func (constCounter) Name() string        { return "constcounter" }
func (constCounter) Registers(n int) int { return n }
func (constCounter) Init(n, pid int, input model.Value) model.State {
	return constState{pid: pid}
}

type constState struct {
	pid   int
	wrote bool
}

func (s constState) Pending() model.Op {
	if !s.wrote {
		return model.Op{Kind: model.OpWrite, Reg: s.pid, Arg: "1"}
	}
	return model.Op{Kind: model.OpDecide, Arg: "0"}
}

func (s constState) Next(model.Value) model.State {
	return constState{pid: s.pid, wrote: true}
}

func (s constState) Key() string {
	return "K" + string(rune('0'+s.pid)) + map[bool]string{true: "w", false: "-"}[s.wrote]
}

// TestPerturbationSWCollect runs the same adversary against the second
// perturbable object (single-writer collect): the construction is
// implementation-agnostic, covering n-1 registers here too.
func TestPerturbationSWCollect(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9} {
		w, err := NewAdversary(SWCollect{}).Run(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if w.Registers < n-1 {
			t.Fatalf("n=%d: covered %d registers, want >= n-1", n, w.Registers)
		}
		if w.ReaderSoloSteps < n-1 {
			t.Fatalf("n=%d: reader solo steps %d below n-1", n, w.ReaderSoloSteps)
		}
		t.Logf("%v", w)
	}
}

// TestSWCollectSequential pins the collect semantics.
func TestSWCollectSequential(t *testing.T) {
	c := model.NewConfig(SWCollect{}, []model.Value{"1", "2"})
	for _, pid := range []int{0, 1} {
		for i := 0; i < 50; i++ {
			if _, ok := c.Decided(pid); ok {
				break
			}
			c = c.StepDet(pid)
		}
	}
	v0, _ := c.Decided(0)
	v1, _ := c.Decided(1)
	if string(v0) != "1,0" {
		t.Fatalf("p0 response %q, want \"1,0\"", string(v0))
	}
	if string(v1) != "1,2" {
		t.Fatalf("p1 response %q, want \"1,2\"", string(v1))
	}
}
