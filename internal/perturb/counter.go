// Package perturb reproduces the perturbation argument of Jayanti, Tan and
// Toueg (deck part I.1 of the provided text): obstruction-free counters —
// like every perturbable object — need at least n-1 registers and n-1 solo
// steps. The package supplies a model-level counter implementation and an
// executable adversary that builds the covering schedules α_k, β_k, γ_k of
// the induction, verifying at every stage that a schedule λ by a fresh
// process perturbs the reader's response (which is exactly what forces the
// reader to visit a register outside the current cover).
package perturb

import (
	"fmt"
	"strconv"

	"repro/internal/model"
)

// SWCounter is an n-process counter from n single-writer registers: R[i]
// holds process i's increment count (as a decimal string). A fetch&inc
// reads all registers and then writes own+1 to the process's register,
// returning the observed sum plus one. Each process performs the number of
// fetch&inc operations given by its (decimal) input and then halts,
// decreeing the response of its final operation — which lets the
// perturbation adversary observe responses through the standard model
// machinery.
//
// The object is perturbable in the JTT sense: inserting increments by a
// process whose register the reader has not yet covered changes the
// reader's response. The implementation uses n registers, one above the
// n-1 lower bound the adversary witnesses.
type SWCounter struct{}

var _ model.Machine = SWCounter{}

// Name implements model.Machine.
func (SWCounter) Name() string { return "swcounter" }

// Registers implements model.Machine.
func (SWCounter) Registers(n int) int { return n }

// Init implements model.Machine. The input is the process's operation
// budget in decimal.
func (SWCounter) Init(n, pid int, input model.Value) model.State {
	budget, err := strconv.Atoi(string(input))
	if err != nil || budget < 0 {
		panic(fmt.Sprintf("swcounter: input must be a non-negative op budget, got %q", string(input)))
	}
	if budget == 0 {
		return counterState{n: n, pid: pid, phase: counterDone}
	}
	return counterState{n: n, pid: pid, remaining: budget, phase: counterScan}
}

type counterPhase uint8

const (
	counterScan counterPhase = iota + 1
	counterWrite
	counterDone
)

// counterState is the immutable local state of one SWCounter process.
type counterState struct {
	n, pid    int
	remaining int
	phase     counterPhase
	idx       int
	sum       int64 // running sum of the current scan
	own       int64 // own count observed during the current scan
	last      int64 // response of the most recent fetch&inc
}

var _ model.State = counterState{}

// Pending implements model.State.
func (s counterState) Pending() model.Op {
	switch s.phase {
	case counterScan:
		return model.Op{Kind: model.OpRead, Reg: s.idx}
	case counterWrite:
		return model.Op{
			Kind: model.OpWrite,
			Reg:  s.pid,
			Arg:  model.Value(strconv.FormatInt(s.own+1, 10)),
		}
	case counterDone:
		return model.Op{Kind: model.OpDecide, Arg: model.Value(strconv.FormatInt(s.last, 10))}
	default:
		panic(fmt.Sprintf("swcounter: invalid phase %d", s.phase))
	}
}

// Next implements model.State.
func (s counterState) Next(in model.Value) model.State {
	switch s.phase {
	case counterScan:
		v := int64(0)
		if in != model.Bottom {
			parsed, err := strconv.ParseInt(string(in), 10, 64)
			if err != nil {
				panic(fmt.Sprintf("swcounter: corrupt register contents %q", string(in)))
			}
			v = parsed
		}
		next := s
		next.sum += v
		if s.idx == s.pid {
			next.own = v
		}
		if s.idx+1 < s.n {
			next.idx++
			return next
		}
		next.phase = counterWrite
		return next
	case counterWrite:
		next := s
		next.last = s.sum + 1
		next.remaining--
		next.idx, next.sum, next.own = 0, 0, 0
		if next.remaining == 0 {
			next.phase = counterDone
		} else {
			next.phase = counterScan
		}
		return next
	default:
		panic("swcounter: Next on terminated state")
	}
}

// Key implements model.State.
func (s counterState) Key() string {
	return fmt.Sprintf("C%d|%d|%d|%d|%d|%d|%d|%d",
		s.n, s.pid, s.remaining, s.phase, s.idx, s.sum, s.own, s.last)
}
