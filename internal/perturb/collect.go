package perturb

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// SWCollect is a single-writer snapshot-style object: process i's register
// holds its latest published value, an update operation publishes the next
// value in the process's sequence, and the operation's response is the
// collected vector of all registers (a regular collect). Single-writer
// snapshot is in set A of the Jayanti-Tan-Toueg theorem, so the
// perturbation adversary must force n-1 covered registers on it too —
// running the same adversary against a second, structurally different
// object (vector responses instead of sums) is the implementation-
// agnosticism check for internal/perturb.
type SWCollect struct{}

var _ model.Machine = SWCollect{}

// Name implements model.Machine.
func (SWCollect) Name() string { return "swcollect" }

// Registers implements model.Machine.
func (SWCollect) Registers(n int) int { return n }

// Init implements model.Machine. The input is the process's operation
// budget in decimal, matching the SWCounter convention the adversary
// expects.
func (SWCollect) Init(n, pid int, input model.Value) model.State {
	budget, err := strconv.Atoi(string(input))
	if err != nil || budget < 0 {
		panic(fmt.Sprintf("swcollect: input must be a non-negative op budget, got %q", string(input)))
	}
	if budget == 0 {
		return collectState{n: n, pid: pid, phase: counterDone}
	}
	return collectState{n: n, pid: pid, remaining: budget, phase: counterWrite}
}

// collectState is the immutable local state of one SWCollect process. An
// operation is write-own-then-collect: publish the next sequence value,
// then read all registers; the response is the joined vector.
type collectState struct {
	n, pid    int
	remaining int
	phase     counterPhase
	seq       int
	idx       int
	got       string
	last      string
}

var _ model.State = collectState{}

// Pending implements model.State.
func (s collectState) Pending() model.Op {
	switch s.phase {
	case counterWrite:
		return model.Op{
			Kind: model.OpWrite,
			Reg:  s.pid,
			Arg:  model.Value(strconv.Itoa(s.seq + 1)),
		}
	case counterScan:
		return model.Op{Kind: model.OpRead, Reg: s.idx}
	case counterDone:
		return model.Op{Kind: model.OpDecide, Arg: model.Value(s.last)}
	default:
		panic(fmt.Sprintf("swcollect: invalid phase %d", s.phase))
	}
}

// Next implements model.State.
func (s collectState) Next(in model.Value) model.State {
	switch s.phase {
	case counterWrite:
		next := s
		next.seq++
		next.phase = counterScan
		next.idx = 0
		next.got = ""
		return next
	case counterScan:
		next := s
		cell := string(in)
		if cell == "" {
			cell = "0"
		}
		if next.got != "" {
			next.got += ","
		}
		next.got += cell
		if s.idx+1 < s.n {
			next.idx++
			return next
		}
		next.last = next.got
		next.remaining--
		if next.remaining == 0 {
			next.phase = counterDone
		} else {
			next.phase = counterWrite
		}
		return next
	default:
		panic("swcollect: Next on terminated state")
	}
}

// Key implements model.State.
func (s collectState) Key() string {
	return strings.Join([]string{
		"V", strconv.Itoa(s.pid), strconv.Itoa(s.remaining),
		strconv.Itoa(int(s.phase)), strconv.Itoa(s.seq),
		strconv.Itoa(s.idx), s.got, s.last,
	}, "|")
}
