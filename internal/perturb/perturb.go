package perturb

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Witness is the outcome of the perturbation adversary: a schedule after
// which n-1 distinct registers are covered by poised writes, together with
// the per-stage evidence that perturbation forced each extension.
type Witness struct {
	Protocol string
	N        int
	// Cover maps the covering processes p_1..p_{n-1} to their distinct
	// registers B_1..B_{n-1}.
	Cover map[int]int
	// Registers is len(Cover), ≥ n-1.
	Registers int
	// Stages records the per-k evidence.
	Stages []Stage
	// ReaderSoloSteps is the length of the reader's solo operation after
	// the final block write — the JTT time-complexity side (≥ n-1).
	ReaderSoloSteps int
}

// Stage is the evidence for one induction step k -> k+1: with the first k
// registers covered, a schedule λ by the fresh process changed the reader's
// response, so the reader must access a register outside the cover — and
// the fresh process is left poised on exactly such a register.
type Stage struct {
	K int
	// Unperturbed and Perturbed are the reader's responses without and
	// with λ inserted before the block write.
	Unperturbed, Perturbed model.Value
	// NewRegister is B_{k+1}, the register added to the cover.
	NewRegister int
}

// String summarises the witness (one row of experiment E5).
func (w *Witness) String() string {
	regs := make([]int, 0, len(w.Cover))
	for _, r := range w.Cover {
		regs = append(regs, r)
	}
	sort.Ints(regs)
	return fmt.Sprintf("%s n=%d: %d distinct registers covered %v (bound n-1=%d), reader solo steps=%d",
		w.Protocol, w.N, w.Registers, regs, w.N-1, w.ReaderSoloSteps)
}

// Adversary runs the JTT induction against the SWCounter (or any machine
// with the same interface conventions: decimal op budgets as inputs, the
// last response decided). Process n-1 is the reader with a single
// operation; processes 0..n-2 are the perturbing/covering processes.
type Adversary struct {
	machine model.Machine
	// opBudget is the per-process operation budget; it only needs to
	// exceed the number of ops the construction squeezes in (≤ n).
	opBudget int
	// soloCap bounds solo runs, catching non-obstruction-free machines.
	soloCap int
}

// NewAdversary returns an adversary for the given counter-like machine.
func NewAdversary(m model.Machine) *Adversary {
	return &Adversary{machine: m, opBudget: 4, soloCap: 4096}
}

// Run builds the covering witness for n processes.
func (a *Adversary) Run(n int) (*Witness, error) {
	if n < 2 {
		return nil, fmt.Errorf("perturb: need n >= 2, got %d", n)
	}
	reader := n - 1
	inputs := make([]model.Value, n)
	for i := range inputs {
		inputs[i] = model.Value(fmt.Sprintf("%d", a.opBudget))
	}
	inputs[reader] = "1" // the reader performs a single operation
	c := model.NewConfig(a.machine, inputs)

	w := &Witness{Protocol: a.machine.Name(), N: n, Cover: make(map[int]int, n-1)}
	covered := make(map[int]bool, n-1)
	cur := c // configuration after α_k (covering processes poised)

	for k := 0; k < n-1; k++ {
		fresh := k // p_{k+1} in the paper's 1-based numbering
		// Evidence first: with cover {B_1..B_k}, a λ by the fresh
		// process perturbs the reader through the block write.
		unperturbed, err := a.readerResponse(cur, covered, reader)
		if err != nil {
			return nil, fmt.Errorf("perturb stage %d: %w", k, err)
		}
		lambda, err := a.oneOp(cur, fresh)
		if err != nil {
			return nil, fmt.Errorf("perturb stage %d: %w", k, err)
		}
		perturbed, err := a.readerResponse(model.RunPath(cur, lambda), covered, reader)
		if err != nil {
			return nil, fmt.Errorf("perturb stage %d (perturbed): %w", k, err)
		}
		if unperturbed == perturbed {
			return nil, fmt.Errorf(
				"perturb stage %d: object not perturbable: response %q unchanged by λ of p%d",
				k, string(unperturbed), fresh)
		}

		// Extension: run the fresh process until it is poised to write
		// a register outside the cover; that register joins the cover.
		ext, reg, err := a.poiseOutside(cur, fresh, covered)
		if err != nil {
			return nil, fmt.Errorf("perturb stage %d: %w", k, err)
		}
		cur = model.RunPath(cur, ext)
		covered[reg] = true
		w.Cover[fresh] = reg
		w.Stages = append(w.Stages, Stage{
			K:           k,
			Unperturbed: unperturbed,
			Perturbed:   perturbed,
			NewRegister: reg,
		})
	}

	// Final accounting: distinct covers and the reader's solo cost after
	// the full block write.
	if len(w.Cover) != n-1 {
		return nil, fmt.Errorf("perturb: covered %d registers, want %d", len(w.Cover), n-1)
	}
	w.Registers = len(w.Cover)
	steps, err := a.soloSteps(blockWritten(cur, covered, reader), reader)
	if err != nil {
		return nil, err
	}
	w.ReaderSoloSteps = steps
	return w, nil
}

// readerResponse applies the block write by the covering processes and then
// runs the reader solo to completion, returning its decided response.
func (a *Adversary) readerResponse(c model.Config, covered map[int]bool, reader int) (model.Value, error) {
	d := blockWritten(c, covered, reader)
	for step := 0; step < a.soloCap; step++ {
		if v, ok := d.Decided(reader); ok {
			return v, nil
		}
		d = d.StepDet(reader)
	}
	return model.Bottom, fmt.Errorf("reader p%d did not finish within %d solo steps", reader, a.soloCap)
}

// blockWritten fires the pending write of every covering process (one step
// each). Processes that are not yet covering (early stages) take no step.
func blockWritten(c model.Config, covered map[int]bool, reader int) model.Config {
	for pid := 0; pid < c.NumProcesses(); pid++ {
		if pid == reader {
			continue
		}
		if _, ok := c.CoveredRegister(pid); ok {
			c = c.StepDet(pid)
		}
	}
	return c
}

// oneOp returns a schedule in which process pid completes at least one full
// operation: it runs pid solo until its first write has been performed and
// pid is poised on its next write (or has halted). Stopping at a write
// boundary keeps the schedule operation-aligned for machines whose
// operations end with a write (SWCounter) as well as those whose operations
// begin with one (SWCollect); the trailing reads a machine performs between
// the two writes cannot affect any other process.
func (a *Adversary) oneOp(c model.Config, pid int) (model.Path, error) {
	var path model.Path
	wrote := false
	for step := 0; step < a.soloCap; step++ {
		op := c.State(pid).Pending()
		switch op.Kind {
		case model.OpDecide:
			if wrote {
				return path, nil
			}
			return nil, fmt.Errorf("p%d halted without writing (op budget exhausted?)", pid)
		case model.OpWrite:
			if wrote {
				// Poised on the next operation's write: the first
				// operation is complete.
				return path, nil
			}
			wrote = true
		}
		path = append(path, model.Move{Pid: pid})
		c = c.StepDet(pid)
	}
	return nil, fmt.Errorf("p%d did not complete an op within %d steps", pid, a.soloCap)
}

// poiseOutside runs pid solo until it is poised to write a register outside
// the cover, returning the schedule and that register.
func (a *Adversary) poiseOutside(c model.Config, pid int, covered map[int]bool) (model.Path, int, error) {
	var path model.Path
	for step := 0; step < a.soloCap; step++ {
		if reg, ok := c.CoveredRegister(pid); ok && !covered[reg] {
			return path, reg, nil
		}
		if _, done := c.Decided(pid); done {
			return nil, 0, fmt.Errorf("p%d halted before covering a fresh register", pid)
		}
		path = append(path, model.Move{Pid: pid})
		c = c.StepDet(pid)
	}
	return nil, 0, fmt.Errorf("p%d never poised outside the cover within %d steps", pid, a.soloCap)
}

// soloSteps counts the reader's solo steps to completion.
func (a *Adversary) soloSteps(c model.Config, reader int) (int, error) {
	for step := 0; step < a.soloCap; step++ {
		if _, ok := c.Decided(reader); ok {
			return step, nil
		}
		c = c.StepDet(reader)
	}
	return 0, fmt.Errorf("reader did not finish within %d steps", a.soloCap)
}
