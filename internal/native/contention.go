package native

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"
)

// BackoffPolicy selects the contention manager used by obstruction-free
// protocols. Obstruction freedom only guarantees progress in solo runs, so
// under the Go scheduler a contention manager is what turns "terminates if
// left alone" into "terminates": after an abort, the policy decides how
// long to stand back, creating the solo window the protocol needs.
// Experiment-wise this is the liveness knob the paper's model abstracts
// away (the adversary there simply chooses schedules); the policies here
// let the benchmarks show how much it matters in a real runtime.
type BackoffPolicy uint8

const (
	// BackoffNone retries immediately (only yields the processor).
	BackoffNone BackoffPolicy = iota + 1
	// BackoffLinear sleeps attempt × base.
	BackoffLinear
	// BackoffExponential doubles the sleep each abort.
	BackoffExponential
	// BackoffExponentialJitter doubles a cap and sleeps a uniformly
	// random duration below it — the default, and the classic choice:
	// randomisation breaks the symmetry that lock-step contenders
	// otherwise maintain forever.
	BackoffExponentialJitter
)

// String implements fmt.Stringer.
func (p BackoffPolicy) String() string {
	switch p {
	case BackoffNone:
		return "none"
	case BackoffLinear:
		return "linear"
	case BackoffExponential:
		return "exponential"
	case BackoffExponentialJitter:
		return "exponential-jitter"
	default:
		return fmt.Sprintf("BackoffPolicy(%d)", uint8(p))
	}
}

// backoff is the per-process contention-manager state.
type backoff struct {
	policy  BackoffPolicy
	base    time.Duration
	cap     time.Duration
	attempt int
	cur     time.Duration
	rng     *rand.Rand
}

func newBackoff(policy BackoffPolicy, seed int64) *backoff {
	return &backoff{
		policy: policy,
		base:   2 * time.Microsecond,
		cap:    time.Millisecond,
		cur:    2 * time.Microsecond,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// wait stands back after an abort according to the policy.
func (b *backoff) wait() {
	b.attempt++
	runtime.Gosched()
	switch b.policy {
	case BackoffNone:
		return
	case BackoffLinear:
		d := time.Duration(b.attempt) * b.base
		if d > b.cap {
			d = b.cap
		}
		time.Sleep(d)
	case BackoffExponential:
		time.Sleep(b.cur)
		if b.cur < b.cap {
			b.cur *= 2
		}
	case BackoffExponentialJitter:
		time.Sleep(time.Duration(b.rng.Int63n(int64(b.cur) + 1)))
		if b.cur < b.cap {
			b.cur *= 2
		}
	default:
		panic(fmt.Sprintf("native: invalid backoff policy %d", b.policy))
	}
}

// ContentionStats aggregates liveness metrics across one object's lifetime.
type ContentionStats struct {
	// Aborts counts ballot aborts (phase restarts) across all processes.
	Aborts int64
	// Decisions counts completed Propose calls.
	Decisions int64
}

// AbortsPerDecision is the headline contention metric.
func (s ContentionStats) AbortsPerDecision() float64 {
	if s.Decisions == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Decisions)
}

// abortCounter is embedded by protocols that track contention.
type abortCounter struct {
	aborts    atomic.Int64
	decisions atomic.Int64
}

func (c *abortCounter) contentionStats() ContentionStats {
	return ContentionStats{Aborts: c.aborts.Load(), Decisions: c.decisions.Load()}
}
