package native

import (
	"fmt"

	"repro/internal/register"
)

// Multivalued is multivalued consensus from binary consensus instances via
// the classic announce-and-agree-bitwise reduction: participants announce
// their proposals in a single-writer array, then agree on the winner one
// bit at a time, each process always proposing the corresponding bit of
// some announced value that matches the already-decided prefix. The
// invariant that every decided prefix extends to an announced value makes
// the outcome a real proposal (Validity), and agreement is inherited from
// the binary instances (DiskRace here, so the whole object is
// obstruction-free from registers only).
type Multivalued struct {
	n, width int
	announce *register.Array[int64]
	bits     []*DiskRace
}

// NewMultivalued returns an instance for n processes and proposals in
// [0, limit).
func NewMultivalued(n, limit int) *Multivalued {
	if limit < 1 {
		panic(fmt.Sprintf("native: limit must be >= 1, got %d", limit))
	}
	width := 1
	for 1<<width < limit {
		width++
	}
	m := &Multivalued{
		n:        n,
		width:    width,
		announce: register.NewArray[int64](n),
		bits:     make([]*DiskRace, width),
	}
	for i := range m.bits {
		m.bits[i] = NewDiskRace(n)
	}
	return m
}

// Propose runs consensus as process pid with the given proposal and returns
// the agreed value, which is always some participant's proposal.
func (m *Multivalued) Propose(pid, value int) (int, error) {
	if pid < 0 || pid >= m.n {
		return 0, fmt.Errorf("native: pid %d out of range [0,%d)", pid, m.n)
	}
	if value < 0 || value >= 1<<m.width {
		return 0, fmt.Errorf("native: proposal %d out of range [0,%d)", value, 1<<m.width)
	}
	// Announce: stored as value+1 so the zero value means "absent".
	m.announce.Write(pid, int64(value)+1)

	prefix, mask := 0, 0
	for i := m.width - 1; i >= 0; i-- {
		cand, ok := m.findAnnounced(prefix, mask)
		if !ok {
			return 0, fmt.Errorf("native: decided prefix %b/%b matches no announced value", prefix, mask)
		}
		decided, err := m.bits[i].Propose(pid, (cand>>i)&1)
		if err != nil {
			return 0, fmt.Errorf("native: bit %d: %w", i, err)
		}
		prefix |= decided << i
		mask |= 1 << i
	}
	return prefix, nil
}

// Registers reports the registers written so far across the announce array
// and the binary instances.
func (m *Multivalued) Registers() int {
	total := m.announce.Stats().Touched
	for _, b := range m.bits {
		total += b.Stats().Touched
	}
	return total
}

// findAnnounced scans for an announced value matching the decided prefix.
func (m *Multivalued) findAnnounced(prefix, mask int) (int, bool) {
	for i := 0; i < m.n; i++ {
		v := m.announce.Read(i)
		if v == 0 {
			continue
		}
		val := int(v - 1)
		if val&mask == prefix {
			return val, true
		}
	}
	return 0, false
}
