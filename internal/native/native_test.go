package native

import (
	"math/rand"
	"sync"
	"testing"
)

// TestDiskRaceNativeAgreement runs n goroutines through native DiskRace
// under the Go scheduler and checks Agreement and Validity across many
// trials and sizes.
func TestDiskRaceNativeAgreement(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for trial := 0; trial < 30; trial++ {
			d := NewDiskRace(n)
			decided := make([]int, n)
			var wg sync.WaitGroup
			ones := 0
			for pid := 0; pid < n; pid++ {
				input := (pid + trial) % 2
				ones += input
				wg.Add(1)
				go func(pid, input int) {
					defer wg.Done()
					v, err := d.Propose(pid, input)
					if err != nil {
						t.Errorf("n=%d trial=%d p%d: %v", n, trial, pid, err)
						return
					}
					decided[pid] = v
				}(pid, input)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			for pid := 1; pid < n; pid++ {
				if decided[pid] != decided[0] {
					t.Fatalf("n=%d trial=%d: agreement violated: %v", n, trial, decided)
				}
			}
			if ones == 0 && decided[0] != 0 || ones == n && decided[0] != 1 {
				t.Fatalf("n=%d trial=%d: validity violated: inputs unanimous, decided %d", n, trial, decided[0])
			}
		}
	}
}

// TestDiskRaceNativeRegisterAudit is experiment E2's native side: the
// protocol writes exactly n registers no matter how hard it races.
func TestDiskRaceNativeRegisterAudit(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64} {
		d := NewDiskRace(n)
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				if _, err := d.Propose(pid, pid%2); err != nil {
					t.Errorf("p%d: %v", pid, err)
				}
			}(pid)
		}
		wg.Wait()
		stats := d.Stats()
		if stats.Touched != n {
			t.Fatalf("n=%d: %d registers written, want exactly n=%d", n, stats.Touched, n)
		}
		t.Logf("n=%d: %v", n, stats)
	}
}

// TestAdoptCommitUnanimous checks property (a): unanimous proposals commit.
func TestAdoptCommitUnanimous(t *testing.T) {
	for _, v := range []int{0, 1} {
		ac := NewAdoptCommit()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				outcome, got := ac.Propose(v)
				if outcome != Commit || got != v {
					t.Errorf("unanimous %d: got (%v, %d)", v, outcome, got)
				}
			}()
		}
		wg.Wait()
	}
}

// TestAdoptCommitCoherence checks property (b) under contention: whenever
// some process commits v, every other process leaves with v.
func TestAdoptCommitCoherence(t *testing.T) {
	for trial := 0; trial < 2000; trial++ {
		ac := NewAdoptCommit()
		const procs = 4
		outcomes := make([]Outcome, procs)
		values := make([]int, procs)
		var wg sync.WaitGroup
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outcomes[i], values[i] = ac.Propose(i % 2)
			}(i)
		}
		wg.Wait()
		committed := -1
		for i := 0; i < procs; i++ {
			if outcomes[i] == Commit {
				committed = values[i]
			}
		}
		if committed < 0 {
			continue
		}
		for i := 0; i < procs; i++ {
			if values[i] != committed {
				t.Fatalf("trial %d: p%d left with %d after commit of %d (outcomes=%v values=%v)",
					trial, i, values[i], committed, outcomes, values)
			}
		}
	}
}

// TestRandomizedAgreement is experiment E9: randomized consensus decides,
// agrees and respects validity across sizes, and its flip counts stay sane.
func TestRandomizedAgreement(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		for trial := 0; trial < 20; trial++ {
			r := NewRandomized(n)
			results := make([]Result, n)
			var wg sync.WaitGroup
			ones := 0
			for pid := 0; pid < n; pid++ {
				input := (pid ^ trial) % 2
				ones += input
				wg.Add(1)
				go func(pid, input int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(trial*100 + pid)))
					res, err := r.Propose(pid, input, rng)
					if err != nil {
						t.Errorf("p%d: %v", pid, err)
						return
					}
					results[pid] = res
				}(pid, input)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			for pid := 1; pid < n; pid++ {
				if results[pid].Value != results[0].Value {
					t.Fatalf("n=%d trial=%d: agreement violated: %+v", n, trial, results)
				}
			}
			if ones == 0 && results[0].Value != 0 || ones == n && results[0].Value != 1 {
				t.Fatalf("n=%d trial=%d: validity violated", n, trial)
			}
		}
	}
}

// TestSharedCoinSolo checks the coin terminates for a lone flipper and
// produces both signs across seeds.
func TestSharedCoinSolo(t *testing.T) {
	saw := map[int]bool{}
	for seed := int64(0); seed < 20; seed++ {
		sc := NewSharedCoin(3, 2)
		v, flips := sc.Flip(0, rand.New(rand.NewSource(seed)))
		if flips < 2*3 {
			t.Fatalf("seed %d: crossed threshold in %d flips (< threshold)", seed, flips)
		}
		saw[v] = true
	}
	if !saw[0] || !saw[1] {
		t.Fatalf("coin is constant across 20 seeds: %v", saw)
	}
}

// TestAdoptCommitBothB machine-checks the key invariant of the adopt-commit
// implementation: at most one of the second-stage bits B0, B1 is ever set,
// because two "clean" first stages of opposite values cannot interleave
// (each writes its own A bit before reading the other's).
func TestAdoptCommitBothB(t *testing.T) {
	for trial := 0; trial < 3000; trial++ {
		ac := NewAdoptCommit()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ac.Propose(i % 2)
			}(i)
		}
		wg.Wait()
		if ac.bits.Read(acB0) && ac.bits.Read(acB1) {
			t.Fatalf("trial %d: both B bits set", trial)
		}
	}
}
