package native

import (
	"fmt"
	"math/rand"

	"repro/internal/register"
)

// SharedCoin is a weak shared coin from single-writer registers in the style
// of Aspnes and Herlihy: each process repeatedly flips a local fair coin and
// publishes its running ±1 sum in its own register; once the global sum
// crosses ±threshold·n the process outputs the sign. With threshold c large
// enough, with constant probability every process observes the same sign —
// which is all randomized consensus needs (the paper's Section 1 cites this
// line [AH90, AC08] as the way randomization circumvents FLP).
type SharedCoin struct {
	n         int
	threshold int
	sums      *register.Array[int64]
}

// NewSharedCoin returns a coin for n processes with drift threshold c·n
// (c = 8 keeps single-sign probability comfortably constant).
func NewSharedCoin(n, c int) *SharedCoin {
	if c <= 0 {
		c = 8
	}
	return &SharedCoin{n: n, threshold: c * n, sums: register.NewArray[int64](n)}
}

// Flip runs the coin for process pid using the provided local randomness
// and returns 0 or 1. Flips counts this process's local coin flips.
func (sc *SharedCoin) Flip(pid int, rng *rand.Rand) (value, flips int) {
	var local int64
	for {
		flips++
		if rng.Intn(2) == 0 {
			local++
		} else {
			local--
		}
		sc.sums.Write(pid, local)
		var total int64
		for i := 0; i < sc.n; i++ {
			total += sc.sums.Read(i)
		}
		switch {
		case total >= int64(sc.threshold):
			return 1, flips
		case total <= -int64(sc.threshold):
			return 0, flips
		}
	}
}

// Randomized is wait-free randomized binary consensus from registers, in
// the Aspnes-Herlihy line cited by the paper's Section 1: each round runs a
// coin-based conciliator followed by an adopt-commit object.
//
//	v := conciliate(r, v)      // unanimous with constant probability
//	(d, w) := AC[r].Propose(v) // commit decides, adopt carries w forward
//
// Safety never depends on randomness: if any process commits w at round r,
// adopt-commit coherence hands every process w at round r, the conciliator
// of round r+1 preserves unanimity (its validity), and AC[r+1] commits w
// everywhere. The conciliator is the two-bit first-mover race: publish your
// value, keep it if the opposite bit is still clear, otherwise take the
// round's weak shared coin. At most one value can have "keepers" in a round
// (two clean reads of each other's unwritten bits cannot interleave), so
// with the coin's single-sign probability the round ends unanimous —
// constant expected rounds.
//
// Space: 6 bits of adopt-commit, 2 conciliator bits and n coin registers
// per round, rounds preallocated — this is the "existing protocols use at
// least n registers" side of the paper's Section 1, with register count
// linear in n per round rather than the optimal total.
type Randomized struct {
	n      int
	rounds []randround
}

type randround struct {
	ac      *AdoptCommit
	conBits *register.Array[bool]
	coin    *SharedCoin
}

// MaxRounds bounds the preallocated round structure. The probability of
// exhausting it is below 2^-MaxRounds for any adversary, since every round
// ends unanimously with probability > 1/2 at threshold 8n.
const MaxRounds = 64

// NewRandomized returns an instance for n processes.
func NewRandomized(n int) *Randomized {
	r := &Randomized{n: n, rounds: make([]randround, MaxRounds)}
	for i := range r.rounds {
		r.rounds[i] = randround{
			ac:      NewAdoptCommit(),
			conBits: register.NewArray[bool](2),
			coin:    NewSharedCoin(n, 8),
		}
	}
	return r
}

// Result reports one process's outcome: the decided value, the round at
// which it decided, and its total local coin flips (the work measure of
// [AC08]'s total-step bounds).
type Result struct {
	Value int
	Round int
	Flips int
}

// Propose runs consensus for process pid with the given binary input and
// source of local randomness.
func (r *Randomized) Propose(pid, input int, rng *rand.Rand) (Result, error) {
	if input != 0 && input != 1 {
		return Result{}, fmt.Errorf("native: input must be binary, got %d", input)
	}
	v := input
	flips := 0
	for round := 0; round < len(r.rounds); round++ {
		rr := r.rounds[round]
		// Conciliator: publish v; keep it only if the opposite bit is
		// still clear, otherwise defer to the round's shared coin.
		rr.conBits.Write(v, true)
		if rr.conBits.Read(1 - v) {
			coinVal, n := rr.coin.Flip(pid, rng)
			flips += n
			v = coinVal
		}
		outcome, got := rr.ac.Propose(v)
		if outcome == Commit {
			return Result{Value: got, Round: round, Flips: flips}, nil
		}
		v = got
	}
	return Result{}, fmt.Errorf("native: no decision within %d rounds (probability < 2^-%d)",
		len(r.rounds), len(r.rounds))
}
