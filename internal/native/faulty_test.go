package native

import (
	"testing"
	"time"

	"repro/internal/faults"
)

// TestFaultyReplayDeterministic is the harness's headline property: the same
// plan (same seed) replayed against live goroutines produces identical
// decisions AND identical register statistics, even under -race. The
// controller serialises every register operation into the plan's seeded
// schedule, so goroutine timing cannot leak into the outcome.
func TestFaultyReplayDeterministic(t *testing.T) {
	inputs := []int{0, 1, 1, 0}
	plan := faults.Plan{
		Name: "replay",
		Seed: 99,
		Events: []faults.Event{
			{Kind: faults.CrashStop, Pid: 2, Step: 5},
			{Kind: faults.Stall, Pid: 1, Step: 3, Duration: 20},
			{Kind: faults.CrashAmidWrite, Pid: 3, Step: 9},
		},
	}
	run := func() *FaultReport {
		rep, err := RunDiskRaceFaulty(inputs, plan, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Watchdog {
			t.Fatalf("watchdog fired on a plan that should complete: %v", rep)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Decided) == 0 {
		t.Fatalf("nobody decided: %v", a)
	}
	if !a.Agreement() {
		t.Fatalf("agreement violated: %v", a.Decided)
	}
	for pid, v := range a.Decided {
		if bv, ok := b.Decided[pid]; !ok || bv != v {
			t.Fatalf("replay diverged on decisions: %v vs %v", a.Decided, b.Decided)
		}
	}
	if len(a.Decided) != len(b.Decided) || len(a.Crashed) != len(b.Crashed) {
		t.Fatalf("replay diverged on outcomes: %v vs %v", a, b)
	}
	if a.Stats != b.Stats {
		t.Fatalf("replay diverged on register stats: %+v vs %+v", a.Stats, b.Stats)
	}
	t.Logf("replayed identically: %v (stats %+v)", a, a.Stats)
}

// TestFaultySweepAgreement fuzzes random plans over live goroutines: in
// every run, all surviving deciders must agree.
func TestFaultySweepAgreement(t *testing.T) {
	inputs := []int{1, 0, 1}
	for seed := int64(0); seed < 25; seed++ {
		plan := faults.Random(seed, 3, 1+int(seed)%2, 12)
		rep, err := RunDiskRaceFaulty(inputs, plan, 30*time.Second)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Watchdog {
			t.Fatalf("seed %d: watchdog fired: %v", seed, rep)
		}
		if !rep.Agreement() {
			t.Fatalf("seed %d: agreement violated: %v", seed, rep)
		}
		if len(rep.Decided)+len(rep.Crashed) != 3 {
			t.Fatalf("seed %d: %d decided + %d crashed != 3 (%v, errors %v)",
				seed, len(rep.Decided), len(rep.Crashed), rep, rep.Errors)
		}
	}
}

// TestFaultyCrashAllButOne crashes every process but the last at their first
// operation: the lone survivor must still decide its own input (validity).
func TestFaultyCrashAllButOne(t *testing.T) {
	inputs := []int{1, 1, 0}
	plan := faults.Plan{Name: "all-but-one", Seed: 4, Events: []faults.Event{
		{Kind: faults.CrashStop, Pid: 0, Step: 0},
		{Kind: faults.CrashStop, Pid: 1, Step: 0},
	}}
	rep, err := RunDiskRaceFaulty(inputs, plan, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Crashed[0] || !rep.Crashed[1] {
		t.Fatalf("crashes did not land: %v", rep)
	}
	if v, ok := rep.Decided[2]; !ok || v != 0 {
		t.Fatalf("survivor p2 should decide its own input 0, got %v (decided=%v)", v, rep.Decided)
	}
}

// TestFaultyRevive crashes p0 and revives it later: p0 freezes in place,
// resumes, and every process decides the same value.
func TestFaultyRevive(t *testing.T) {
	inputs := []int{0, 1}
	plan := faults.Plan{Name: "revive", Seed: 11, Events: []faults.Event{
		{Kind: faults.CrashStop, Pid: 0, Step: 2},
		{Kind: faults.Revive, Pid: 0, Step: 30},
	}}
	rep, err := RunDiskRaceFaulty(inputs, plan, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Crashed) != 0 {
		t.Fatalf("revived process still recorded as crashed: %v", rep)
	}
	if len(rep.Decided) != 2 || !rep.Agreement() {
		t.Fatalf("both processes should decide and agree after the revive: %v (errors %v)", rep, rep.Errors)
	}
}

// TestFaultyWatchdog forces the abort path with an immediate timeout: the
// run must come back (no hang) with the watchdog flagged rather than decide.
func TestFaultyWatchdog(t *testing.T) {
	inputs := []int{0, 1, 1}
	rep, err := RunDiskRaceFaulty(inputs, faults.Plan{Name: "watchdog", Seed: 1}, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Watchdog && len(rep.Decided) != len(inputs) {
		// The race between the 1ns timer and the run is legitimate in
		// either direction, but an aborted run must say so.
		t.Fatalf("aborted run not flagged: %v (errors %v)", rep, rep.Errors)
	}
}
