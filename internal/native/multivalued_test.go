package native

import (
	"sync"
	"testing"
)

// TestMultivaluedAgreementAndValidity races n goroutines with distinct
// proposals: everyone agrees, and the outcome is someone's proposal.
func TestMultivaluedAgreementAndValidity(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for trial := 0; trial < 15; trial++ {
			m := NewMultivalued(n, 3*n)
			proposals := make([]int, n)
			decided := make([]int, n)
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				proposals[pid] = (pid*7 + trial) % (3 * n)
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					v, err := m.Propose(pid, proposals[pid])
					if err != nil {
						t.Errorf("p%d: %v", pid, err)
						return
					}
					decided[pid] = v
				}(pid)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			proposed := map[int]bool{}
			for _, p := range proposals {
				proposed[p] = true
			}
			for pid := 0; pid < n; pid++ {
				if decided[pid] != decided[0] {
					t.Fatalf("n=%d: agreement violated: %v", n, decided)
				}
			}
			if !proposed[decided[0]] {
				t.Fatalf("n=%d: decided %d was never proposed (%v)", n, decided[0], proposals)
			}
		}
	}
}

// TestMultivaluedRejectsBadArgs covers the guard rails.
func TestMultivaluedRejectsBadArgs(t *testing.T) {
	m := NewMultivalued(2, 4)
	if _, err := m.Propose(2, 0); err == nil {
		t.Fatal("expected pid range error")
	}
	if _, err := m.Propose(0, 99); err == nil {
		t.Fatal("expected proposal range error")
	}
}

// TestMultivaluedUnanimous: unanimous proposals always win.
func TestMultivaluedUnanimous(t *testing.T) {
	m := NewMultivalued(3, 8)
	var wg sync.WaitGroup
	out := make([]int, 3)
	for pid := 0; pid < 3; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			v, err := m.Propose(pid, 5)
			if err != nil {
				t.Errorf("p%d: %v", pid, err)
			}
			out[pid] = v
		}(pid)
	}
	wg.Wait()
	for pid, v := range out {
		if v != 5 {
			t.Fatalf("p%d decided %d, want 5", pid, v)
		}
	}
}
