package native

import (
	"sync"
	"testing"
)

// raceOnce runs one full n-process race under the given policy and returns
// the contention stats.
func raceOnce(t testing.TB, n int, policy BackoffPolicy) ContentionStats {
	t.Helper()
	d := NewDiskRaceWithBackoff(n, policy)
	decided := make([]int, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			v, err := d.Propose(pid, pid%2)
			if err != nil {
				t.Errorf("p%d: %v", pid, err)
				return
			}
			decided[pid] = v
		}(pid)
	}
	wg.Wait()
	for pid := 1; pid < n; pid++ {
		if decided[pid] != decided[0] {
			t.Fatalf("policy %v: agreement violated: %v", policy, decided)
		}
	}
	return d.Contention()
}

// TestBackoffPoliciesAllSafe: the contention manager is a liveness knob
// only — safety (and the register audit) must hold under every policy,
// including no backoff at all.
func TestBackoffPoliciesAllSafe(t *testing.T) {
	policies := []BackoffPolicy{BackoffNone, BackoffLinear, BackoffExponential, BackoffExponentialJitter}
	for _, policy := range policies {
		for trial := 0; trial < 10; trial++ {
			stats := raceOnce(t, 6, policy)
			if stats.Decisions != 6 {
				t.Fatalf("policy %v: %d decisions, want 6", policy, stats.Decisions)
			}
		}
	}
}

// TestBackoffPolicyStrings pins the labels used in benchmark names.
func TestBackoffPolicyStrings(t *testing.T) {
	want := map[BackoffPolicy]string{
		BackoffNone:              "none",
		BackoffLinear:            "linear",
		BackoffExponential:       "exponential",
		BackoffExponentialJitter: "exponential-jitter",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}

// BenchmarkContention compares abort rates across contention managers: the
// liveness study behind the protocol's default policy choice.
func BenchmarkContention(b *testing.B) {
	for _, policy := range []BackoffPolicy{BackoffNone, BackoffLinear, BackoffExponential, BackoffExponentialJitter} {
		b.Run(policy.String(), func(b *testing.B) {
			var last ContentionStats
			for i := 0; i < b.N; i++ {
				last = raceOnce(b, 8, policy)
			}
			b.ReportMetric(last.AbortsPerDecision(), "aborts-per-decision")
		})
	}
}
