package native

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/register"
)

// DefaultFaultAttempts bounds ballot retries per process in gated fault
// runs. Under the controller's bursty schedule a solo window occurs with
// constant probability per burst, so a correct run decides long before this;
// hitting the bound means the plan starved the process.
const DefaultFaultAttempts = 10_000

// NewDiskRaceFaulty returns a DiskRace whose every register operation passes
// through a faults.Controller enforcing plan: crashes land at exact
// per-process operation indices, and the whole run is serialised into the
// plan's seeded schedule, making it deterministically replayable. The
// contention manager is BackoffNone (under turn gating, sleeping cannot
// create solo windows — the controller's bursts do) and the retry loop is
// bounded (bounded backoff in the contention path, so a starvation plan
// fails loudly instead of hanging).
func NewDiskRaceFaulty(n int, plan faults.Plan) (*DiskRace, *faults.Controller, error) {
	ctrl, err := faults.NewController(n, plan)
	if err != nil {
		return nil, nil, fmt.Errorf("native: %w", err)
	}
	d := NewDiskRaceWithBackoff(n, BackoffNone)
	d.maxAttempts = DefaultFaultAttempts
	gated := faults.NewArray(d.regs, ctrl)
	d.file = func(pid int) blockFile { return gated.Handle(pid) }
	return d, ctrl, nil
}

// FaultReport is the outcome of one native fault-injected run.
type FaultReport struct {
	N    int
	Plan faults.Plan
	// Decided maps each process that completed Propose to its value.
	Decided map[int]int
	// Crashed is the set of processes the plan crashed (their goroutines
	// unwound mid-protocol).
	Crashed map[int]bool
	// Errors maps processes whose Propose failed for a non-crash reason
	// (e.g. the bounded retry loop starved out).
	Errors map[int]error
	// Watchdog reports whether the timeout fired and aborted the run.
	Watchdog bool
	// Stats is the shared array's instrumentation after the run; under
	// the deterministic schedule it is identical across replays.
	Stats register.Stats
	// Contention carries the abort/decision counters.
	Contention ContentionStats
}

// String renders the report in one line.
func (r *FaultReport) String() string {
	pids := make([]int, 0, len(r.Decided))
	for pid := range r.Decided {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	parts := make([]string, len(pids))
	for i, pid := range pids {
		parts[i] = fmt.Sprintf("p%d=%d", pid, r.Decided[pid])
	}
	status := ""
	if r.Watchdog {
		status = " [watchdog]"
	}
	return fmt.Sprintf("diskrace n=%d plan=%v: decided {%s}, %d crashed%s",
		r.N, r.Plan, strings.Join(parts, " "), len(r.Crashed), status)
}

// Agreement reports whether all decided values are equal.
func (r *FaultReport) Agreement() bool {
	first, seen := 0, false
	for _, v := range r.Decided {
		if !seen {
			first, seen = v, true
		} else if v != first {
			return false
		}
	}
	return true
}

// RunDiskRaceFaulty runs native DiskRace on n goroutines under the fault
// plan, with a watchdog: if the run does not complete within timeout, the
// controller aborts every gate and the report says so — graceful degradation
// instead of a hung test. Replaying the same plan yields an identical report
// (decisions and register statistics included), which is what makes native
// fault runs regression-testable.
func RunDiskRaceFaulty(inputs []int, plan faults.Plan, timeout time.Duration) (*FaultReport, error) {
	n := len(inputs)
	if n == 0 {
		return nil, fmt.Errorf("native: no participants")
	}
	d, ctrl, err := NewDiskRaceFaulty(n, plan)
	if err != nil {
		return nil, err
	}
	report := &FaultReport{
		N:       n,
		Plan:    plan,
		Decided: make(map[int]int, n),
		Crashed: make(map[int]bool),
		Errors:  make(map[int]error),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for pid := range inputs {
		wg.Add(1)
		go func(pid, input int) {
			defer wg.Done()
			defer ctrl.Exit(pid)
			defer func() {
				if r := recover(); r != nil {
					sig, ok := faults.AsCrash(r)
					if !ok {
						panic(r) // not ours: propagate
					}
					mu.Lock()
					if sig.Err == faults.ErrAborted {
						report.Watchdog = true
					} else {
						report.Crashed[pid] = true
					}
					mu.Unlock()
				}
			}()
			v, err := d.Propose(pid, input)
			mu.Lock()
			if err != nil {
				report.Errors[pid] = err
			} else {
				report.Decided[pid] = v
			}
			mu.Unlock()
		}(pid, inputs[pid])
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	watchdog := time.AfterFunc(timeout, ctrl.Abort)
	<-done
	watchdog.Stop()

	report.Stats = d.Stats()
	report.Contention = d.Contention()
	return report, nil
}
