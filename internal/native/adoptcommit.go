package native

import "repro/internal/register"

// Outcome is the result kind of an adopt-commit proposal.
type Outcome uint8

const (
	// Adopt: carry the returned value to the next round, but do not
	// decide.
	Adopt Outcome = iota + 1
	// Commit: the returned value is decided; every other process is
	// guaranteed to leave this object with the same value (committed or
	// adopted).
	Commit
)

// AdoptCommit is a wait-free adopt-commit (commit-adopt) object for binary
// values, built from six multi-writer bits (two proposal bits A, two
// second-stage bits B, and two padding slots keeping the register audit
// simple). It provides the round structure of randomized consensus:
//
//	(a) if every proposal is v, every process commits v;
//	(b) if any process commits v, every process commits or adopts v;
//	(c) returned values were proposed.
//
// The implementation is the two-stage conflict detector: set A[v]; if the
// opposite A bit is still clear, set B[v] and commit if the opposite A bit
// is clear on a second look; otherwise defer to an opposite B bit if one is
// set. The key invariant — at most one of B[0], B[1] is ever set — holds
// because two "clean" first stages of opposite values would each have to
// read the other's A bit before it was written, and each writes its own A
// bit before reading (see TestAdoptCommitBothB for the stress test). The
// model twin (consensus.AdoptCommit) carries the stronger guarantee: all
// three properties are verified exhaustively over every interleaving for
// n ≤ 4 by consensus.TestAdoptCommitModelProperties.
type AdoptCommit struct {
	bits *register.Array[bool]
}

// Register layout within the bit array.
const (
	acA0 = iota
	acA1
	acB0
	acB1
	acBits
)

// NewAdoptCommit returns a fresh object.
func NewAdoptCommit() *AdoptCommit {
	return &AdoptCommit{bits: register.NewArray[bool](acBits)}
}

// newAdoptCommitOn uses a caller-provided bit array (offset o), so a
// consensus protocol can present one contiguous, auditable register file.
func newAdoptCommitOn(bits *register.Array[bool]) *AdoptCommit {
	return &AdoptCommit{bits: bits}
}

// Propose runs the object for one process with binary input v.
func (ac *AdoptCommit) Propose(v int) (Outcome, int) {
	a := [2]int{acA0, acA1}
	b := [2]int{acB0, acB1}
	ac.bits.Write(a[v], true)
	if ac.bits.Read(a[1-v]) {
		// Conflict: the opposite value is being proposed. If it
		// reached its second stage it may commit; defer to it.
		if ac.bits.Read(b[1-v]) {
			return Adopt, 1 - v
		}
		return Adopt, v
	}
	ac.bits.Write(b[v], true)
	if ac.bits.Read(a[1-v]) {
		return Adopt, v
	}
	return Commit, v
}
