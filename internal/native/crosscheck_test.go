package native

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
)

// TestNativeMatchesModelSequential cross-validates the native DiskRace
// against its model twin: under contention-free sequential execution both
// are deterministic runs of the same algorithm, so for every input vector
// and every arrival order they must decide identically.
func TestNativeMatchesModelSequential(t *testing.T) {
	n := 3
	orders := [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}}
	for bits := 0; bits < 1<<n; bits++ {
		inputs := make([]int, n)
		modelInputs := make([]model.Value, n)
		for i := range inputs {
			inputs[i] = (bits >> i) & 1
			modelInputs[i] = model.Value([]string{"0", "1"}[inputs[i]])
		}
		for _, order := range orders {
			// Model: run each process to its decision, in order.
			c := model.NewConfig(consensus.DiskRace{}, modelInputs)
			modelDecided := make([]model.Value, n)
			for _, pid := range order {
				for step := 0; step < 200; step++ {
					if v, ok := c.Decided(pid); ok {
						modelDecided[pid] = v
						break
					}
					c = c.StepDet(pid)
				}
				if modelDecided[pid] == model.Bottom {
					t.Fatalf("model p%d undecided", pid)
				}
			}
			// Native: sequential Propose calls in the same order.
			d := NewDiskRace(n)
			nativeDecided := make([]int, n)
			for _, pid := range order {
				v, err := d.Propose(pid, inputs[pid])
				if err != nil {
					t.Fatalf("native p%d: %v", pid, err)
				}
				nativeDecided[pid] = v
			}
			for pid := 0; pid < n; pid++ {
				want := []string{"0", "1"}[nativeDecided[pid]]
				if string(modelDecided[pid]) != want {
					t.Fatalf("inputs %v order %v: model p%d decided %s, native %d",
						inputs, order, pid, string(modelDecided[pid]), nativeDecided[pid])
				}
			}
		}
	}
}
