// Package native provides goroutine-based implementations of the consensus
// protocols studied in the abstract model, built only on the atomic
// registers of internal/register. The model twin of each protocol is what
// the lower-bound adversary attacks; the native twin is what the benchmarks
// run, and agreement between the two is itself checked by tests that replay
// native histories against the model rules.
package native

import (
	"fmt"

	"repro/internal/register"
)

// Block mirrors the register contents of the model DiskRace protocol: the
// largest ballot the owner started (Mbal), the largest ballot at which it
// completed phase 1 (Bal), and the value it proposed there.
type Block struct {
	MbalK, MbalP int
	BalK, BalP   int
	Inp          int
}

func ballotLess(k1, p1, k2, p2 int) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return p1 < p2
}

// blockFile is the register surface DiskRace runs against: the raw
// register.Array in fault-free runs, or a per-process gated view
// (faults.Handle) when a fault plan is being enforced.
type blockFile interface {
	Len() int
	Read(i int) Block
	Write(i int, v Block)
}

// DiskRace is the native twin of consensus.DiskRace: one-disk Disk Paxos on
// n single-writer atomic registers. The zero value is not usable; call
// NewDiskRace.
type DiskRace struct {
	n      int
	regs   *register.Array[Block]
	policy BackoffPolicy
	// file returns the register view process pid performs its operations
	// through; the default is the shared array itself.
	file func(pid int) blockFile
	// maxAttempts bounds ballot retries per Propose; zero means unbounded
	// (obstruction freedom plus the contention manager ensure termination
	// in free-running mode, but gated fault runs bound the loop so a
	// starvation plan surfaces as an error instead of a hang).
	maxAttempts int
	abortCounter
}

// NewDiskRace returns an instance for n processes with the default
// contention manager (randomised exponential backoff: obstruction freedom
// alone does not guarantee termination under the Go scheduler, so aborts
// stand back until a solo window occurs with probability 1).
func NewDiskRace(n int) *DiskRace {
	return NewDiskRaceWithBackoff(n, BackoffExponentialJitter)
}

// NewDiskRaceWithBackoff selects the contention manager explicitly (the
// liveness study of BenchmarkContention).
func NewDiskRaceWithBackoff(n int, policy BackoffPolicy) *DiskRace {
	d := &DiskRace{
		n:      n,
		regs:   register.NewArray[Block](n),
		policy: policy,
	}
	d.file = func(int) blockFile { return d.regs }
	return d
}

// Stats exposes the register instrumentation (experiment E2 audits that
// exactly n registers are written).
func (d *DiskRace) Stats() register.Stats { return d.regs.Stats() }

// Contention exposes abort/decision counters.
func (d *DiskRace) Contention() ContentionStats { return d.contentionStats() }

// Propose runs consensus as process pid (0-based) with the given binary
// input and returns the decided value. It is safe to call concurrently from
// n goroutines with distinct pids; calling twice with the same pid is a
// protocol violation.
func (d *DiskRace) Propose(pid, input int) (int, error) {
	if pid < 0 || pid >= d.n {
		return 0, fmt.Errorf("native: pid %d out of range [0,%d)", pid, d.n)
	}
	if input != 0 && input != 1 {
		return 0, fmt.Errorf("native: input must be binary, got %d", input)
	}
	file := d.file(pid)
	bo := newBackoff(d.policy, int64(pid)*7919+1)
	k := 1
	var ownBal Block // mirrors our register's (Bal, Inp)
	for attempt := 0; ; attempt++ {
		if d.maxAttempts > 0 && attempt >= d.maxAttempts {
			return 0, fmt.Errorf("native: p%d starved out after %d ballot attempts", pid, attempt)
		}
		// Phase 1: announce the ballot, then read everything.
		file.Write(pid, Block{
			MbalK: k, MbalP: pid,
			BalK: ownBal.BalK, BalP: ownBal.BalP,
			Inp: ownBal.Inp,
		})
		maxK, proposal, ok := d.collect(file, pid, k, input)
		if !ok {
			k = maxK + 1
			d.aborts.Add(1)
			bo.wait()
			continue
		}
		// Phase 2: accept the proposal, then read everything again.
		ownBal = Block{MbalK: k, MbalP: pid, BalK: k, BalP: pid, Inp: proposal}
		file.Write(pid, ownBal)
		if maxK, _, ok := d.collect(file, pid, k, proposal); !ok {
			k = maxK + 1
			d.aborts.Add(1)
			bo.wait()
			continue
		}
		d.decisions.Add(1)
		return proposal, nil
	}
}

// collect reads all registers. It returns (maxRound, chosenProposal, ok):
// ok is false if some register advertises a ballot above (k, pid), in which
// case maxRound is the highest round seen; otherwise chosenProposal is the
// value of the largest accepted ballot, or fallback if none.
func (d *DiskRace) collect(file blockFile, pid, k, fallback int) (int, int, bool) {
	maxK := k
	balK, balP, proposal := 0, -1, fallback
	abort := false
	for i := 0; i < d.n; i++ {
		b := file.Read(i)
		if b.MbalK > maxK {
			maxK = b.MbalK
		}
		if ballotLess(k, pid, b.MbalK, b.MbalP) {
			abort = true
		}
		if b.BalK > 0 && ballotLess(balK, balP, b.BalK, b.BalP) {
			balK, balP, proposal = b.BalK, b.BalP, b.Inp
		}
	}
	if abort {
		return maxK, 0, false
	}
	return maxK, proposal, true
}
