package faults

import (
	"errors"
	"io"
)

// Typed errors a FaultyFile injects. They model the disk-pressure failures
// a long-running proof must surface loudly instead of absorbing silently:
// a full volume, a filesystem that acknowledges fewer bytes than asked, and
// an fsync the kernel refuses.
var (
	// ErrDiskFull is returned once a FaultyFile's byte budget is spent —
	// the moment the simulated volume runs out of space (ENOSPC).
	ErrDiskFull = errors.New("faults: injected disk full")
	// ErrShortWrite is returned by a write the FaultyFile truncated: the
	// reported count is less than len(p) and no error from the underlying
	// file explains it.
	ErrShortWrite = errors.New("faults: injected short write")
	// ErrSyncFailed is returned by Sync when the FaultyFile is scripted to
	// refuse durability.
	ErrSyncFailed = errors.New("faults: injected fsync failure")
)

// File is the slice of *os.File the fault-injected write paths consume:
// enough to write, flush and identify a file. Both *os.File and *FaultyFile
// satisfy it, so a test swaps one for the other at the file-creation hook.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FaultyFile wraps a File and injects deterministic filesystem faults: an
// ENOSPC after Budget bytes, a short write on the ShortWriteAt-th Write
// call, and an fsync failure. It is the filesystem-side sibling of
// CrashWriter: where a CrashWriter kills the process mid-write, a
// FaultyFile keeps the process alive on a disk that has started lying,
// which is exactly the condition under which spill chunks and checkpoint
// segments must fail typed instead of truncating silently.
//
// Faults mimic the kernel's behaviour: a budget that falls inside a Write
// forwards the surviving prefix and reports the count it wrote, so a
// caller that ignores the error has durably written garbage — and the
// checksummed read path must still catch it.
type FaultyFile struct {
	F File
	// Budget is the number of bytes accepted before ErrDiskFull; <= 0
	// means unlimited.
	Budget int64
	// ShortWriteAt, when > 0, truncates the ShortWriteAt-th Write call
	// (1-based) to half its length and reports ErrShortWrite.
	ShortWriteAt int
	// FailSync makes every Sync return ErrSyncFailed (after forwarding to
	// the underlying file, so the bytes may well be durable — the caller
	// just cannot know).
	FailSync bool

	written int64
	writes  int
}

// Write forwards p, or the prefix the scripted faults allow.
func (f *FaultyFile) Write(p []byte) (int, error) {
	f.writes++
	if f.ShortWriteAt > 0 && f.writes == f.ShortWriteAt && len(p) > 1 {
		n, err := f.F.Write(p[:len(p)/2])
		f.written += int64(n)
		if err != nil {
			return n, err
		}
		return n, ErrShortWrite
	}
	if f.Budget > 0 {
		remaining := f.Budget - f.written
		if remaining <= 0 {
			return 0, ErrDiskFull
		}
		if int64(len(p)) > remaining {
			n, err := f.F.Write(p[:remaining])
			f.written += int64(n)
			if err != nil {
				return n, err
			}
			return n, ErrDiskFull
		}
	}
	n, err := f.F.Write(p)
	f.written += int64(n)
	return n, err
}

// Sync forwards to the underlying file and then fails if scripted to.
func (f *FaultyFile) Sync() error {
	err := f.F.Sync()
	if f.FailSync {
		return ErrSyncFailed
	}
	return err
}

// Close forwards to the underlying file.
func (f *FaultyFile) Close() error { return f.F.Close() }

// Name reports the underlying file's name.
func (f *FaultyFile) Name() string { return f.F.Name() }

// Written reports how many bytes reached the underlying file.
func (f *FaultyFile) Written() int64 { return f.written }
