package faults

import (
	"os"
	"strings"
	"testing"
	"time"
)

// TestParseChaosScheduleRoundTrip: a full schedule parses, renders back in
// the flag syntax, and re-parses to the same value — the replayability
// contract the chaos harness logs rely on.
func TestParseChaosScheduleRoundTrip(t *testing.T) {
	in := "coord:kill@level=4:restart=1s; worker:victim:kill@level=3; worker:sleepy:stall@level=2:dur=800ms; worker:steady; corrupt-gets=2; fs:enospc@bytes=4096; seed=7"
	s, err := ParseChaosSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Coord == nil || s.Coord.Level != 4 || s.Coord.Restart != time.Second {
		t.Fatalf("coord fault: %+v", s.Coord)
	}
	if len(s.Workers) != 3 {
		t.Fatalf("%d workers", len(s.Workers))
	}
	if s.Workers[0].Fault == nil || s.Workers[0].Fault.Kind != "kill" || s.Workers[0].Fault.Level != 3 {
		t.Fatalf("victim fault: %+v", s.Workers[0].Fault)
	}
	if s.Workers[1].Fault == nil || s.Workers[1].Fault.Kind != "stall" || s.Workers[1].Fault.Stall != 800*time.Millisecond {
		t.Fatalf("sleepy fault: %+v", s.Workers[1].Fault)
	}
	if s.Workers[2].Fault != nil {
		t.Fatalf("steady should be healthy: %+v", s.Workers[2].Fault)
	}
	if s.CorruptGets != 2 || s.Seed != 7 {
		t.Fatalf("corrupt-gets=%d seed=%d", s.CorruptGets, s.Seed)
	}
	if s.FS == nil || s.FS.Budget != 4096 {
		t.Fatalf("fs fault: %+v", s.FS)
	}
	rendered := s.String()
	s2, err := ParseChaosSchedule(rendered)
	if err != nil {
		t.Fatalf("rendered schedule %q does not re-parse: %v", rendered, err)
	}
	if s2.String() != rendered {
		t.Fatalf("round trip changed the schedule:\n%s\n%s", rendered, s2.String())
	}
}

// TestParseChaosScheduleRejects: malformed schedules fail typed with a
// message naming the bad directive.
func TestParseChaosScheduleRejects(t *testing.T) {
	for _, bad := range []string{
		"",                                     // no workers
		"coord:kill@level=4",                   // no workers either
		"worker:w; coord:stall@level=1",        // coordinator can only be killed
		"worker:w; coord:kill@level=-1",        // negative level
		"worker:w; worker:w",                   // duplicate id
		"worker:",                              // empty id
		"worker:w; nonsense",                   // unknown directive
		"worker:w; fs:enospc@bytes=0",          // empty budget
		"worker:w; fs:melt@temp=9000",          // unknown fs fault
		"worker:w; corrupt-gets=-1",            // negative count
		"worker:w; worker:x:explode@level=1",   // unknown worker fault kind
		"worker:w; coord:kill@level=1; coord:kill@level=2", // two coord faults
	} {
		if _, err := ParseChaosSchedule(bad); err == nil {
			t.Errorf("schedule %q parsed without error", bad)
		}
	}
}

// TestParseFSFault covers the three fault kinds and their rendering.
func TestParseFSFault(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FSFault
	}{
		{"enospc@bytes=100", FSFault{Budget: 100}},
		{"shortwrite@write=3", FSFault{ShortWriteAt: 3}},
		{"syncfail", FSFault{FailSync: true}},
	} {
		f, err := ParseFSFault(tc.in)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if *f != tc.want {
			t.Fatalf("%q parsed to %+v", tc.in, f)
		}
		if f.String() != tc.in {
			t.Fatalf("%q renders as %q", tc.in, f.String())
		}
	}
	if f, err := ParseFSFault(""); err != nil || f != nil {
		t.Fatalf("empty fs fault: %v, %+v", err, f)
	}
}

// TestFSFaultOpener: the opener wraps files so the scripted fault fires,
// and a nil fault's opener passes writes through untouched.
func TestFSFaultOpener(t *testing.T) {
	dir := t.TempDir()
	fault := &FSFault{Budget: 4}
	f, err := fault.Opener()(dir+"/victim", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("12345678")); err == nil {
		t.Fatal("write past the byte budget did not fail")
	} else if !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("want injected disk full, got %v", err)
	}
	var nilFault *FSFault
	g, err := nilFault.Opener()(dir+"/healthy", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Write([]byte("12345678")); err != nil {
		t.Fatalf("nil fault injected a failure: %v", err)
	}
}
