package faults

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sort"

	"repro/internal/model"
	"repro/internal/obs"
)

// RunOptions bound one model-runtime plan execution.
type RunOptions struct {
	// MaxSteps caps the number of global operations. Zero means
	// DefaultMaxSteps.
	MaxSteps int
	// Rand, when non-nil, replaces the seeded source derived from
	// Plan.Seed. Supplying it lets a caller fold many plan executions
	// into one deterministic stream.
	Rand *rand.Rand
	// Burst caps the scheduler's burst length (consecutive operations
	// granted to one process). Zero means 3n+3 — long enough that solo
	// completion windows occur with constant probability per burst, which
	// is what makes obstruction-free protocols terminate under the
	// injected schedules.
	Burst int
	// Obs, when non-nil, records every fault injection as a trace event
	// and counter bump (nil = no-op, the default).
	Obs *obs.Scope
}

// DefaultMaxSteps bounds a model-runtime plan execution when
// RunOptions.MaxSteps is zero.
const DefaultMaxSteps = 1 << 16

// Report is the outcome of one model-runtime plan execution.
type Report struct {
	// Final is the configuration the run stopped in.
	Final model.Config
	// Path is the sequence of full moves applied (coin outcomes
	// included), so the fault-free portion of the run can be replayed
	// with model.RunPath. Half-completed writes from CrashAmidWrite are
	// not representable as moves and appear only in Crashed.
	Path model.Path
	// Steps is the number of global operations performed (half-writes
	// included).
	Steps int
	// Crashed maps each process crashed at the end of the run to the
	// operation it was poised on when it halted (the write itself for
	// CrashAmidWrite). A crash landing on a model.OpCoin is a
	// crash-during-coin schedule.
	Crashed map[int]model.OpKind
	// Stalls counts stall events that fired.
	Stalls int
	// Decided maps each decided process to its value.
	Decided map[int]model.Value
}

// Survivors returns the sorted processes that are neither crashed nor
// decided — the candidates for post-crash solo runs.
func (r *Report) Survivors() []int {
	var out []int
	for pid := 0; pid < r.Final.NumProcesses(); pid++ {
		if _, crashed := r.Crashed[pid]; crashed {
			continue
		}
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// procState is the runner's per-process fault bookkeeping.
type procState struct {
	ops          int // operations performed
	crashed      bool
	halfWrite    bool // crashed via CrashAmidWrite
	stalledUntil int  // global step before which the process is ineligible
	cursor       int  // next per-process event index
}

// RunModel executes plan against configuration c in the abstract model: a
// seeded scheduler drives eligible processes in bursts, firing the plan's
// fault events at their scripted operation indices. The run stops when every
// process has decided or crashed, or when the step budget is exhausted —
// whichever comes first — and always returns the configuration it reached
// (graceful degradation, never a partial-truth panic).
//
// Replaying the same plan (same seed) from the same configuration produces
// the identical Report.
func RunModel(c model.Config, plan Plan, opts RunOptions) (*Report, error) {
	n := c.NumProcesses()
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(plan.Seed))
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	burstMax := opts.Burst
	if burstMax <= 0 {
		burstMax = 3*n + 3
	}

	// Split the script: per-process events keyed by the process's own
	// operation index, revives keyed by the global index.
	perPid := make([][]Event, n)
	var revives []Event
	for _, e := range plan.Events {
		if e.Kind == Revive {
			revives = append(revives, e)
			continue
		}
		perPid[e.Pid] = append(perPid[e.Pid], e)
	}
	sort.SliceStable(revives, func(i, j int) bool { return revives[i].Step < revives[j].Step })

	procs := make([]procState, n)
	rep := &Report{
		Crashed: make(map[int]model.OpKind),
		Decided: make(map[int]model.Value),
	}
	step := 0
	reviveCursor := 0
	processRevives := func() {
		for reviveCursor < len(revives) && revives[reviveCursor].Step <= step {
			ev := revives[reviveCursor]
			if procs[ev.Pid].crashed {
				// Revival after a half-completed write is safe: the
				// local state is still poised on the write, so the
				// process simply re-issues it.
				procs[ev.Pid].crashed = false
				procs[ev.Pid].halfWrite = false
				delete(rep.Crashed, ev.Pid)
				injectEvent(opts.Obs, ev, step)
			}
			reviveCursor++
		}
	}
	eligible := func(pid int) bool {
		if procs[pid].crashed || procs[pid].stalledUntil > step {
			return false
		}
		_, decided := c.Decided(pid)
		return !decided
	}

	turn, burst := -1, 0
	for step < maxSteps {
		processRevives()

		// Keep the current burst while its process stays eligible;
		// otherwise pick a fresh process uniformly among the eligible.
		if burst <= 0 || turn < 0 || !eligible(turn) {
			var cands []int
			for pid := 0; pid < n; pid++ {
				if eligible(pid) {
					cands = append(cands, pid)
				}
			}
			if len(cands) == 0 {
				// No one can move now. Fast-forward to the
				// nearest stall expiry or revive point; if none
				// exists the run is over (all decided or
				// crashed for good).
				next := -1
				for pid := 0; pid < n; pid++ {
					if _, decided := c.Decided(pid); decided {
						continue
					}
					if !procs[pid].crashed && procs[pid].stalledUntil > step {
						if next < 0 || procs[pid].stalledUntil < next {
							next = procs[pid].stalledUntil
						}
					}
				}
				if reviveCursor < len(revives) {
					if r := revives[reviveCursor].Step; next < 0 || r < next {
						next = r
					}
				}
				if next < 0 || next > maxSteps {
					break
				}
				step = next
				turn, burst = -1, 0
				continue
			}
			turn = cands[rng.Intn(len(cands))]
			burst = 1 + rng.Intn(burstMax)
		}

		pid := turn
		ps := &procs[pid]

		// Fire the process's scripted events due at its current
		// operation index, before the operation runs.
		fired := false
		for ps.cursor < len(perPid[pid]) && perPid[pid][ps.cursor].Step <= ps.ops {
			ev := perPid[pid][ps.cursor]
			ps.cursor++
			injectEvent(opts.Obs, ev, step)
			switch ev.Kind {
			case CrashStop:
				ps.crashed = true
				rep.Crashed[pid] = c.State(pid).Pending().Kind
				fired = true
			case Stall:
				ps.stalledUntil = step + ev.Duration
				rep.Stalls++
				fired = true
			case CrashAmidWrite:
				op := c.State(pid).Pending()
				if op.Kind == model.OpWrite {
					// The write lands; the local state does not
					// advance: the process died mid-operation.
					states := make([]model.State, n)
					for i := range states {
						states[i] = c.State(i)
					}
					regs := c.Registers()
					regs[op.Reg] = op.Arg
					c = model.RebuildConfig(c, states, regs)
					ps.ops++
					step++
					rep.Steps++
					ps.halfWrite = true
				}
				ps.crashed = true
				rep.Crashed[pid] = op.Kind
				fired = true
			}
			if ps.crashed {
				break
			}
		}
		if fired {
			turn, burst = -1, 0
			continue
		}

		// One ordinary operation of pid.
		mv := model.Move{Pid: pid}
		if c.State(pid).Pending().Kind == model.OpCoin {
			mv.Coin = model.Value(fmt.Sprintf("%d", rng.Intn(2)))
			c = c.Step(pid, mv.Coin)
		} else {
			c = c.StepDet(pid)
		}
		rep.Path = append(rep.Path, mv)
		ps.ops++
		step++
		rep.Steps++
		burst--
	}

	rep.Final = c
	for pid := 0; pid < n; pid++ {
		if v, ok := c.Decided(pid); ok {
			rep.Decided[pid] = v
		}
	}
	return rep, nil
}

// injectEvent records one fired fault event on the observability scope: a
// per-kind counter bump and a trace event carrying the injection point.
func injectEvent(s *obs.Scope, ev Event, step int) {
	if !s.Enabled() {
		return
	}
	s.Counter("faults_injected_" + ev.Kind.String()).Add(1)
	s.Event("fault_inject",
		slog.String("kind", ev.Kind.String()),
		slog.Int("pid", ev.Pid),
		slog.Int("step", step),
	)
}
