package faults

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the default error an OpInjector returns from a scripted
// operation failure. Supervisors classify it as retryable: it models the
// transient faults (flaky disk, brief unavailability) that a service must
// absorb with retry + backoff rather than report as terminal.
var ErrInjected = errors.New("faults: injected operation failure")

// OpInjector injects deterministic failures into named operations of a
// long-running service — job attempts, ledger flushes, checkpoint saves,
// recovery sweeps. Where a Plan scripts faults against the processes of a
// consensus protocol and a CrashWriter kills a file mid-write, an
// OpInjector scripts faults against the service's own control paths: the
// test says "the first two attempts of job j fail" and the supervisor
// under test must retry past them.
//
// A nil *OpInjector is the disabled state (the production configuration):
// Hit is nil-receiver safe and never fails, mirroring the obs.Scope
// convention, so service code calls it unconditionally.
type OpInjector struct {
	mu        sync.Mutex
	remaining map[string]int
	errs      map[string]error
	hits      map[string]int
}

// NewOpInjector returns an injector with no scripted failures.
func NewOpInjector() *OpInjector {
	return &OpInjector{
		remaining: make(map[string]int),
		errs:      make(map[string]error),
		hits:      make(map[string]int),
	}
}

// Fail scripts the next times invocations of op to fail with err (nil err
// means ErrInjected). Scripting op again replaces its previous script.
func (i *OpInjector) Fail(op string, times int, err error) {
	if err == nil {
		err = ErrInjected
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.remaining[op] = times
	i.errs[op] = err
}

// Hit reports one invocation of op: the scripted error while the op's
// failure budget lasts, nil after (and always nil on a nil injector).
func (i *OpInjector) Hit(op string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.hits[op]++
	if i.remaining[op] > 0 {
		i.remaining[op]--
		return fmt.Errorf("%s: %w", op, i.errs[op])
	}
	return nil
}

// Hits returns how many times op has been invoked (0 on nil).
func (i *OpInjector) Hits(op string) int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits[op]
}
