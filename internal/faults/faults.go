// Package faults provides deterministic, replayable fault injection for both
// runtimes of this repository: the abstract shared-memory model
// (internal/model) and the native goroutine runtime (internal/register,
// internal/native).
//
// The paper's lower bound covers exactly the protocols that survive any
// number of crash-stop failures (obstruction freedom), and the adversaries of
// Revisionist Simulations crash and revive processes at precise covering
// points. A Plan is an executable script of such faults: crash-stop at a
// process's k-th operation, stall for a window, revive at a global point,
// crash in the middle of a write. Plans are plain values — replaying the same
// plan with the same seed reproduces the same execution in both runtimes,
// which is what turns a fuzzing anecdote into a regression test.
//
// Three layers build on Plan:
//
//   - RunModel executes a plan against a model.Config step loop (the
//     injecting scheduler used by internal/check's crash-tolerance checker);
//   - Controller + Array enforce a plan on live goroutines via per-process
//     gates around every register operation (used by internal/native);
//   - the generators (Random, CoveringTargeted, ExhaustiveSmall) produce
//     plan families for fuzzing, targeted attacks and small exhaustive
//     sweeps.
package faults

import (
	"errors"
	"fmt"
	"strings"
)

// Kind enumerates fault event kinds. The enum starts at one so the zero
// value is detectably invalid.
type Kind uint8

const (
	// CrashStop halts the process immediately before it performs its
	// Step-th shared-memory operation. Without a later Revive the process
	// never takes another step (crash-stop); with one it resumes in place
	// at the revive point (crash-recovery: nothing local is lost, which
	// matches disk-backed protocols such as DiskRace, where all protocol
	// state of record lives in shared registers).
	CrashStop Kind = iota + 1
	// Stall makes the process stand aside, starting immediately before
	// its Step-th operation, until Duration further global operations
	// have completed. In asynchronous shared memory a stall is
	// indistinguishable from slowness; plans use it to open solo windows
	// and to line processes up on covering points.
	Stall
	// Revive resumes a crashed process. Step is a global operation index
	// (the run's total operation count), not a per-process one: revival
	// is an adversary decision about the whole execution.
	Revive
	// CrashAmidWrite crashes the process in the middle of its Step-th
	// operation, which must be a write: the write takes effect in shared
	// memory, but the process halts without observing completion (its
	// local state does not advance). If the operation turns out not to be
	// a write, the event degrades to a CrashStop.
	CrashAmidWrite
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CrashStop:
		return "crash-stop"
	case Stall:
		return "stall"
	case Revive:
		return "revive"
	case CrashAmidWrite:
		return "crash-amid-write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one scripted fault.
type Event struct {
	Kind Kind
	// Pid is the process the event applies to.
	Pid int
	// Step is the 0-based per-process operation index at which the event
	// fires (CrashStop, Stall, CrashAmidWrite), or the global operation
	// index for Revive.
	Step int
	// Duration is the number of global operations a Stall lasts; unused
	// by the other kinds.
	Duration int
}

// String renders the event, e.g. "crash-stop(p2@op4)".
func (e Event) String() string {
	switch e.Kind {
	case Stall:
		return fmt.Sprintf("stall(p%d@op%d, %d ops)", e.Pid, e.Step, e.Duration)
	case Revive:
		return fmt.Sprintf("revive(p%d@global%d)", e.Pid, e.Step)
	default:
		return fmt.Sprintf("%v(p%d@op%d)", e.Kind, e.Pid, e.Step)
	}
}

// Plan is a deterministic, replayable fault script. The zero value is the
// fault-free plan. Plans are plain values: copy, compare and serialise them
// freely.
type Plan struct {
	// Name identifies the plan in reports.
	Name string
	// Seed drives every scheduling decision a runner makes while
	// executing the plan (which process moves next, burst lengths, coin
	// outcomes in the model runtime). Same plan + same seed = same
	// execution.
	Seed int64
	// Events is the fault script. Events for one process must be listed
	// in non-decreasing Step order.
	Events []Event
}

// Validate checks the plan against a system of n processes: pids in range,
// kinds valid, per-process steps non-decreasing, revives only for processes
// that crash, stalls with positive duration.
func (p Plan) Validate(n int) error {
	lastStep := make(map[int]int, n)
	crashes := make(map[int]bool, n)
	for i, e := range p.Events {
		if e.Pid < 0 || e.Pid >= n {
			return fmt.Errorf("faults: event %d: pid %d out of range [0,%d)", i, e.Pid, n)
		}
		if e.Step < 0 {
			return fmt.Errorf("faults: event %d: negative step %d", i, e.Step)
		}
		switch e.Kind {
		case CrashStop, CrashAmidWrite:
			if crashes[e.Pid] {
				return fmt.Errorf("faults: event %d: p%d crashes twice without a revive", i, e.Pid)
			}
			crashes[e.Pid] = true
		case Stall:
			if e.Duration <= 0 {
				return fmt.Errorf("faults: event %d: stall needs positive duration, got %d", i, e.Duration)
			}
		case Revive:
			if !crashes[e.Pid] {
				return fmt.Errorf("faults: event %d: revive of p%d, which has no prior crash", i, e.Pid)
			}
			crashes[e.Pid] = false
			continue // revive steps are global, not per-process
		default:
			return fmt.Errorf("faults: event %d: invalid kind %v", i, e.Kind)
		}
		if last, ok := lastStep[e.Pid]; ok && e.Step < last {
			return fmt.Errorf("faults: event %d: p%d steps out of order (%d after %d)", i, e.Pid, e.Step, last)
		}
		lastStep[e.Pid] = e.Step
	}
	return nil
}

// Crashes returns the set of processes the plan crash-stops without a
// subsequent revive — the processes a runner will report as failed.
func (p Plan) Crashes() map[int]bool {
	out := make(map[int]bool)
	for _, e := range p.Events {
		switch e.Kind {
		case CrashStop, CrashAmidWrite:
			out[e.Pid] = true
		case Revive:
			delete(out, e.Pid)
		}
	}
	return out
}

// String renders the plan in one line.
func (p Plan) String() string {
	name := p.Name
	if name == "" {
		name = "plan"
	}
	if len(p.Events) == 0 {
		return fmt.Sprintf("%s(seed=%d, fault-free)", name, p.Seed)
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s(seed=%d): %s", name, p.Seed, strings.Join(parts, " "))
}

// ErrCrashed is the error a gate reports to a process halted by a crash
// event. Native protocol code does not thread errors through register
// operations, so the Array handles convert it into a CrashSignal panic that
// the harness recovers.
var ErrCrashed = errors.New("faults: process crash-stopped by plan")

// ErrAborted is reported by gates after Controller.Abort — the watchdog path
// for runs that stop making progress.
var ErrAborted = errors.New("faults: run aborted by watchdog")

// CrashSignal is the panic payload a faulty register handle throws when its
// process hits a crash event (or an abort): it unwinds straight-line
// protocol code the way a real crash would, and the harness recovers it at
// the goroutine boundary.
type CrashSignal struct {
	Pid int
	Err error
}

// String implements fmt.Stringer.
func (c CrashSignal) String() string {
	return fmt.Sprintf("p%d: %v", c.Pid, c.Err)
}

// AsCrash reports whether a recovered panic value is a CrashSignal.
func AsCrash(r any) (CrashSignal, bool) {
	c, ok := r.(CrashSignal)
	return c, ok
}
