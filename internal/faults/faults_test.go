package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/obs"
)

func TestPlanValidate(t *testing.T) {
	tests := []struct {
		name    string
		plan    Plan
		n       int
		wantErr bool
	}{
		{name: "fault-free", plan: Plan{}, n: 2},
		{name: "crash", plan: Plan{Events: []Event{{Kind: CrashStop, Pid: 1, Step: 3}}}, n: 2},
		{
			name: "crash-revive-crash",
			plan: Plan{Events: []Event{
				{Kind: CrashStop, Pid: 0, Step: 1},
				{Kind: Revive, Pid: 0, Step: 10},
				{Kind: CrashAmidWrite, Pid: 0, Step: 4},
			}},
			n: 2,
		},
		{name: "pid out of range", plan: Plan{Events: []Event{{Kind: CrashStop, Pid: 2, Step: 0}}}, n: 2, wantErr: true},
		{name: "negative step", plan: Plan{Events: []Event{{Kind: CrashStop, Pid: 0, Step: -1}}}, n: 2, wantErr: true},
		{name: "double crash", plan: Plan{Events: []Event{
			{Kind: CrashStop, Pid: 0, Step: 1},
			{Kind: CrashStop, Pid: 0, Step: 2},
		}}, n: 2, wantErr: true},
		{name: "revive without crash", plan: Plan{Events: []Event{{Kind: Revive, Pid: 0, Step: 5}}}, n: 2, wantErr: true},
		{name: "zero-length stall", plan: Plan{Events: []Event{{Kind: Stall, Pid: 0, Step: 0}}}, n: 2, wantErr: true},
		{name: "invalid kind", plan: Plan{Events: []Event{{Pid: 0}}}, n: 2, wantErr: true},
		{name: "steps out of order", plan: Plan{Events: []Event{
			{Kind: Stall, Pid: 0, Step: 5, Duration: 1},
			{Kind: CrashStop, Pid: 0, Step: 2},
		}}, n: 2, wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(tc.n)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %t", err, tc.wantErr)
			}
		})
	}
}

func TestRandomGeneratorDeterministic(t *testing.T) {
	a := Random(42, 5, 3, 20)
	b := Random(42, 5, 3, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	if err := a.Validate(5); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	if got := len(a.Crashes()); got != 3 {
		t.Fatalf("expected 3 crashes, got %d (%v)", got, a)
	}
}

func TestExhaustiveSmall(t *testing.T) {
	plans := ExhaustiveSmall(3, 4)
	if len(plans) != 3*4+1 {
		t.Fatalf("expected %d plans, got %d", 3*4+1, len(plans))
	}
	for _, p := range plans {
		if err := p.Validate(3); err != nil {
			t.Fatalf("plan %v invalid: %v", p, err)
		}
	}
}

func TestCoveringTargeted(t *testing.T) {
	plan, err := CoveringTargeted(consensus.Flood{}, []model.Value{"0", "1"}, 7, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events) != 1 || plan.Events[0].Kind != CrashStop {
		t.Fatalf("expected one crash-stop at a covering point, got %v", plan)
	}
	if err := plan.Validate(2); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
}

// TestRunModelReplayDeterministic: the same plan from the same configuration
// must produce the identical execution — the property that turns fuzzing
// runs into regression tests.
func TestRunModelReplayDeterministic(t *testing.T) {
	inputs := []model.Value{"0", "1", "1"}
	plan := Random(11, 3, 2, 15)
	run := func() *Report {
		rep, err := RunModel(model.NewConfig(consensus.Flood{}, inputs), plan, RunOptions{MaxSteps: 500})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Path, b.Path) {
		t.Fatalf("replay diverged:\n%v\n%v", a.Path, b.Path)
	}
	if a.Final.Key() != b.Final.Key() {
		t.Fatalf("replay reached different configurations")
	}
	if !reflect.DeepEqual(a.Crashed, b.Crashed) || !reflect.DeepEqual(a.Decided, b.Decided) {
		t.Fatalf("replay crash/decision sets differ: %v/%v vs %v/%v", a.Crashed, a.Decided, b.Crashed, b.Decided)
	}
}

// TestRunModelCrashAmidWrite stalls p1 so that p0 runs solo to its first
// write (Flood: two reads, then a write), crashes p0 in the middle of that
// write, and checks the fault's defining property: the value landed in the
// register, but p0's local state never advanced past the write.
func TestRunModelCrashAmidWrite(t *testing.T) {
	inputs := []model.Value{"0", "1"}
	plan := Plan{
		Name: "half-write",
		Seed: 1,
		Events: []Event{
			{Kind: Stall, Pid: 1, Step: 0, Duration: 50},
			{Kind: CrashAmidWrite, Pid: 0, Step: 2},
		},
	}
	rep, err := RunModel(model.NewConfig(consensus.Flood{}, inputs), plan, RunOptions{MaxSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if kind, ok := rep.Crashed[0]; !ok || kind != model.OpWrite {
		t.Fatalf("p0 should have crashed amid a write, crashed=%v", rep.Crashed)
	}
	if got := rep.Final.Register(0); got != "0" {
		t.Fatalf("half-completed write should have landed %q in r0, got %q", "0", string(got))
	}
	if !rep.Final.Covers(0, 0) {
		t.Fatalf("p0's local state should still be poised on the write to r0")
	}
	// p1, running after its stall over the debris of the half-write, must
	// still decide — and, having seen p0's landed value first, adopts it.
	if v, ok := rep.Decided[1]; !ok || v != "0" {
		t.Fatalf("survivor p1 should decide %q over the half-write, got %v (decided=%v)", "0", v, rep.Decided)
	}
	if len(rep.Survivors()) != 1 || rep.Survivors()[0] != 1 {
		t.Fatalf("survivors = %v, want [1]", rep.Survivors())
	}
}

// TestRunModelRevive crashes p0 early and revives it: the run must end with
// p0 alive, both processes decided, and agreement intact.
func TestRunModelRevive(t *testing.T) {
	inputs := []model.Value{"1", "1"}
	plan := Plan{
		Name: "crash-revive",
		Seed: 3,
		Events: []Event{
			{Kind: CrashStop, Pid: 0, Step: 1},
			{Kind: Revive, Pid: 0, Step: 8},
		},
	}
	rep, err := RunModel(model.NewConfig(consensus.Flood{}, inputs), plan, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Crashed) != 0 {
		t.Fatalf("revived process still reported crashed: %v", rep.Crashed)
	}
	if len(rep.Decided) != 2 {
		t.Fatalf("both processes should decide after the revive, decided=%v (steps=%d)", rep.Decided, rep.Steps)
	}
	if rep.Decided[0] != rep.Decided[1] {
		t.Fatalf("agreement violated across a crash-revive: %v", rep.Decided)
	}
}

// TestRunModelCrashDuringCoin drives the coin-flipping protocol into a crash
// landing exactly on a coin flip, exercising the crash-during-coin schedules
// the deterministic-only fuzzer could never produce. A coin is only pending
// after a full scan observing both values, which takes a specific
// interleaving — so the test sweeps schedules (seeds) as well as crash points.
func TestRunModelCrashDuringCoin(t *testing.T) {
	inputs := []model.Value{"0", "1"}
	for seed := int64(0); seed < 60; seed++ {
		for pid := 0; pid < 2; pid++ {
			for step := 0; step < 10; step++ {
				plan := Plan{
					Name:   fmt.Sprintf("coin-crash-p%d@%d", pid, step),
					Seed:   seed,
					Events: []Event{{Kind: CrashStop, Pid: pid, Step: step}},
				}
				rep, err := RunModel(model.NewConfig(consensus.CoinFlood{}, inputs), plan, RunOptions{MaxSteps: 300})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Crashed[pid] == model.OpCoin {
					return // found a crash landing on a pending coin flip
				}
			}
		}
	}
	t.Fatalf("no swept plan crashed a process poised on a coin flip")
}

// TestRunModelObsEvents: with an observability scope attached, every fired
// fault becomes a trace event and a per-kind counter bump, revives included
// (only actual revivals are recorded, never consumed no-ops).
func TestRunModelObsEvents(t *testing.T) {
	var buf bytes.Buffer
	scope := obs.NewScope(obs.NewTracer(&buf))
	plan := Plan{
		Name: "observed",
		Seed: 7,
		Events: []Event{
			{Kind: Stall, Pid: 1, Step: 0, Duration: 10},
			{Kind: CrashStop, Pid: 0, Step: 2},
			{Kind: Revive, Pid: 0, Step: 40},
		},
	}
	rep, err := RunModel(model.NewConfig(consensus.Flood{}, []model.Value{"0", "1"}), plan, RunOptions{
		MaxSteps: 200,
		Obs:      scope,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", rep.Stalls)
	}
	snap := scope.Registry().Snapshot()
	if snap["faults_injected_stall"] != int64(1) || snap["faults_injected_crash-stop"] != int64(1) {
		t.Fatalf("fault counters = %v", snap)
	}
	if got, want := snap["faults_injected_revive"], int64(1); got != want {
		t.Fatalf("revive counter = %v, want %v", got, want)
	}
	events := 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%s", err, line)
		}
		if rec["msg"] == "fault_inject" {
			events++
			if rec["kind"] == nil || rec["pid"] == nil || rec["step"] == nil {
				t.Fatalf("fault_inject event missing attributes: %v", rec)
			}
		}
	}
	if events != 3 {
		t.Fatalf("%d fault_inject events, want 3 (stall + crash + revive)", events)
	}
}
