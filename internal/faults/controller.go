package faults

import (
	"math/rand"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Controller enforces a Plan on live goroutines via per-process gates. Every
// shared-register operation of every process passes through Acquire/Release,
// and the controller serialises them into a single seeded, bursty schedule:
// at any moment exactly one process holds the turn, turns are granted in
// bursts (so obstruction-free protocols get the solo windows they need to
// terminate), and the plan's fault events fire at exact per-process
// operation indices. Because every scheduling decision is drawn from the
// plan's seed at points totally ordered by the turn itself, replaying the
// same plan yields the identical operation order, identical decisions and
// identical register statistics — real goroutines, model-grade determinism.
//
// Semantics on live goroutines:
//
//   - CrashStop without a revive: the gate reports ErrCrashed and the
//     process's goroutine unwinds (via the Array handle's CrashSignal).
//   - CrashStop with a pending Revive: the gate blocks — the process
//     freezes mid-protocol and resumes in place at the revive point
//     (crash-recovery; nothing local is lost).
//   - Stall: the process is ineligible for the turn until the stall's
//     global-operation window passes.
//   - CrashAmidWrite: the write lands in shared memory first; the crash is
//     reported (or the freeze happens) immediately after.
//
// A Revive whose global step passes before its process crashes is consumed
// as a no-op; plans are expected to order revives after the crash point.
type Controller struct {
	mu   sync.Mutex
	cond *sync.Cond
	rng  *rand.Rand
	obs  *obs.Scope

	n        int
	burstMax int
	procs    []gateState
	revives  []Event
	revCur   int

	turn      int
	burst     int
	globalOps int
	aborted   bool
}

// gateState is the controller's per-process bookkeeping.
type gateState struct {
	events       []Event // per-process-indexed events, sorted by Step
	cursor       int
	ops          int
	crashed      bool
	crashNext    bool // CrashAmidWrite fired; crash after the granted op
	stalledUntil int  // global op count before which the process stands aside
	exited       bool
}

// NewController returns a controller for n processes executing the plan.
// All n processes are registered up front (registration order must not
// depend on goroutine scheduling, or determinism would be lost).
func NewController(n int, plan Plan) (*Controller, error) {
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	c := &Controller{
		rng:      rand.New(rand.NewSource(plan.Seed)),
		n:        n,
		burstMax: 3*n + 3,
		procs:    make([]gateState, n),
		turn:     -1,
	}
	c.cond = sync.NewCond(&c.mu)
	for _, e := range plan.Events {
		if e.Kind == Revive {
			c.revives = append(c.revives, e)
			continue
		}
		c.procs[e.Pid].events = append(c.procs[e.Pid].events, e)
	}
	sort.SliceStable(c.revives, func(i, j int) bool { return c.revives[i].Step < c.revives[j].Step })
	c.mu.Lock()
	c.advance()
	c.mu.Unlock()
	return c, nil
}

// SetObs attaches an observability scope: every fault the controller fires
// on a live goroutine becomes a trace event, timestamped with the global
// operation count. Call before the run starts; nil stays the no-op default.
func (c *Controller) SetObs(s *obs.Scope) {
	c.mu.Lock()
	c.obs = s
	c.mu.Unlock()
}

// GlobalOps returns the number of gated operations completed so far.
func (c *Controller) GlobalOps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.globalOps
}

// Abort releases every gate with ErrAborted — the watchdog path for runs
// that stop making progress (e.g. a plan that crashes every process).
func (c *Controller) Abort() {
	c.mu.Lock()
	c.aborted = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Acquire blocks until process pid may perform its next register operation.
// isWrite tells the controller whether the upcoming operation is a write
// (CrashAmidWrite events degrade to CrashStop on non-writes). It returns
// ErrCrashed if the plan halts the process here, ErrAborted after Abort.
func (c *Controller) Acquire(pid int, isWrite bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.aborted {
			return ErrAborted
		}
		ps := &c.procs[pid]
		if ps.crashed {
			if c.hasPendingRevive(pid) {
				c.cond.Wait()
				continue
			}
			return ErrCrashed
		}
		if ps.stalledUntil > c.globalOps {
			if c.turn == pid {
				c.advance()
				c.cond.Broadcast()
			}
			c.cond.Wait()
			continue
		}
		if c.turn != pid {
			c.cond.Wait()
			continue
		}
		// pid holds the turn: fire its events due at this operation.
		fired := false
		for ps.cursor < len(ps.events) && ps.events[ps.cursor].Step <= ps.ops {
			ev := ps.events[ps.cursor]
			ps.cursor++
			injectEvent(c.obs, ev, c.globalOps)
			switch ev.Kind {
			case CrashStop:
				ps.crashed = true
			case Stall:
				ps.stalledUntil = c.globalOps + ev.Duration
			case CrashAmidWrite:
				if isWrite {
					ps.crashNext = true
				} else {
					ps.crashed = true
				}
			}
			fired = true
			if ps.crashed {
				break
			}
		}
		if fired && (ps.crashed || ps.stalledUntil > c.globalOps) {
			c.advance()
			c.cond.Broadcast()
			continue // the loop turns the new state into wait/ErrCrashed
		}
		return nil
	}
}

// Release completes the operation Acquire granted. It returns ErrCrashed
// when a CrashAmidWrite event halts the process now that its write has
// landed (or nil after an in-place revive of such a crash).
func (c *Controller) Release(pid int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ps := &c.procs[pid]
	ps.ops++
	c.globalOps++
	c.processRevives()
	c.burst--
	if ps.crashNext {
		ps.crashNext = false
		ps.crashed = true
		// Record the revive prospect before advance(): its fast-forward
		// may consume the revive (and clear the crash) immediately.
		hadRevive := c.hasPendingRevive(pid)
		c.advance()
		c.cond.Broadcast()
		if !hadRevive {
			return ErrCrashed
		}
		for ps.crashed && !c.aborted {
			c.cond.Wait()
		}
		if c.aborted {
			return ErrAborted
		}
		return nil
	}
	if c.burst <= 0 || !c.eligible(pid) {
		c.advance()
	}
	c.cond.Broadcast()
	return nil
}

// Exit removes a finished process (decided, crashed or aborted) from the
// schedule. For a live process the exit itself is turn-synchronised, so the
// seeded schedule stays deterministic.
func (c *Controller) Exit(pid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ps := &c.procs[pid]
	if ps.exited {
		return
	}
	if !ps.crashed && !c.aborted {
		for c.turn != pid && !c.aborted {
			c.cond.Wait()
		}
	}
	ps.exited = true
	if c.turn == pid {
		c.advance()
	}
	c.cond.Broadcast()
}

// eligible reports whether pid can be granted the turn. Callers hold mu.
func (c *Controller) eligible(pid int) bool {
	ps := &c.procs[pid]
	return !ps.exited && !ps.crashed && ps.stalledUntil <= c.globalOps
}

// hasPendingRevive reports whether an unfired revive targets pid. Callers
// hold mu.
func (c *Controller) hasPendingRevive(pid int) bool {
	for i := c.revCur; i < len(c.revives); i++ {
		if c.revives[i].Pid == pid {
			return true
		}
	}
	return false
}

// processRevives fires revives due at the current global op count. Callers
// hold mu.
func (c *Controller) processRevives() {
	for c.revCur < len(c.revives) && c.revives[c.revCur].Step <= c.globalOps {
		ev := c.revives[c.revCur]
		c.revCur++
		ps := &c.procs[ev.Pid]
		if ps.crashed && !ps.exited {
			ps.crashed = false
			ps.crashNext = false
			injectEvent(c.obs, ev, c.globalOps)
		}
	}
}

// advance grants the turn to a seeded-random eligible process with a fresh
// burst, fast-forwarding the global clock past stalls and revive points when
// no process can move right now. Callers hold mu; every call site is totally
// ordered by the turn discipline, which is what keeps the rng stream — and
// therefore the whole schedule — reproducible.
func (c *Controller) advance() {
	for {
		c.processRevives()
		var cands []int
		for pid := 0; pid < c.n; pid++ {
			if c.eligible(pid) {
				cands = append(cands, pid)
			}
		}
		if len(cands) > 0 {
			c.turn = cands[c.rng.Intn(len(cands))]
			c.burst = 1 + c.rng.Intn(c.burstMax)
			return
		}
		// Nobody can move now: jump to the nearest stall expiry or
		// revive point, if any.
		next := -1
		for pid := 0; pid < c.n; pid++ {
			ps := &c.procs[pid]
			if ps.exited || ps.crashed {
				continue
			}
			if ps.stalledUntil > c.globalOps && (next < 0 || ps.stalledUntil < next) {
				next = ps.stalledUntil
			}
		}
		if c.revCur < len(c.revives) {
			if r := c.revives[c.revCur].Step; next < 0 || r < next {
				next = r
			}
		}
		if next < 0 || next <= c.globalOps {
			c.turn, c.burst = -1, 0
			return
		}
		c.globalOps = next
		c.processRevives()
	}
}
