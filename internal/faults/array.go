package faults

import (
	"repro/internal/register"
)

// Array wraps an instrumented register.Array with a Controller: every
// operation on a per-process Handle passes through the controller's gates,
// so the plan's faults land at exact operation indices and the whole run is
// serialised into one replayable schedule. The underlying array keeps its
// own Stats instrumentation, which — because the schedule is deterministic —
// is itself reproducible across replays.
type Array[T any] struct {
	inner *register.Array[T]
	ctrl  *Controller
}

// NewArray wraps inner with the controller's gates.
func NewArray[T any](inner *register.Array[T], ctrl *Controller) *Array[T] {
	return &Array[T]{inner: inner, ctrl: ctrl}
}

// Inner returns the wrapped array (for Stats audits).
func (a *Array[T]) Inner() *register.Array[T] { return a.inner }

// Controller returns the gate controller (for harness Exit/Abort calls).
func (a *Array[T]) Controller() *Controller { return a.ctrl }

// Handle returns process pid's gated view of the array. Protocol code uses
// a Handle exactly like a register.Array; a crash event unwinds the calling
// goroutine with a CrashSignal panic, which the harness recovers.
func (a *Array[T]) Handle(pid int) *Handle[T] {
	return &Handle[T]{a: a, pid: pid}
}

// Handle is one process's gated view of a faulty Array.
type Handle[T any] struct {
	a   *Array[T]
	pid int
}

// Len returns the number of registers.
func (h *Handle[T]) Len() int { return h.a.inner.Len() }

// Read returns the contents of register i, once the controller grants the
// process its next operation.
func (h *Handle[T]) Read(i int) T {
	if err := h.a.ctrl.Acquire(h.pid, false); err != nil {
		panic(CrashSignal{Pid: h.pid, Err: err})
	}
	v := h.a.inner.Read(i)
	if err := h.a.ctrl.Release(h.pid); err != nil {
		panic(CrashSignal{Pid: h.pid, Err: err})
	}
	return v
}

// Write stores v in register i under the gate. On a CrashAmidWrite event
// the store lands before the goroutine unwinds — exactly the half-completed
// write the fault models.
func (h *Handle[T]) Write(i int, v T) {
	if err := h.a.ctrl.Acquire(h.pid, true); err != nil {
		panic(CrashSignal{Pid: h.pid, Err: err})
	}
	h.a.inner.Write(i, v)
	if err := h.a.ctrl.Release(h.pid); err != nil {
		panic(CrashSignal{Pid: h.pid, Err: err})
	}
}
