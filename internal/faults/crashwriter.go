package faults

import (
	"errors"
	"io"
)

// ErrWriteCrashed is the error a CrashWriter returns once its byte budget
// is exhausted: the moment the simulated process dies mid-write.
var ErrWriteCrashed = errors.New("faults: simulated crash during write")

// CrashWriter wraps an io.Writer and fails deterministically after Limit
// bytes, simulating a process killed partway through writing a file. The
// first Limit bytes reach the underlying writer — like a real crash, the
// prefix is durable and the tail is gone — and every write after the budget
// is exhausted returns ErrWriteCrashed. A Limit that falls inside a Write call
// forwards the surviving prefix and reports a short write.
//
// It is the storage-side sibling of CrashStop: where a Plan kills a process
// between shared-memory operations, a CrashWriter kills it between (or
// inside) file writes, which is exactly the failure a crash-safe
// checkpoint format must shrug off.
type CrashWriter struct {
	W io.Writer
	// Limit is the number of bytes written successfully before the crash.
	Limit int64

	written int64
}

// Write forwards p (or its surviving prefix) and fails once Limit bytes
// have been written.
func (c *CrashWriter) Write(p []byte) (int, error) {
	remaining := c.Limit - c.written
	if remaining <= 0 {
		return 0, ErrWriteCrashed
	}
	if int64(len(p)) <= remaining {
		n, err := c.W.Write(p)
		c.written += int64(n)
		return n, err
	}
	n, err := c.W.Write(p[:remaining])
	c.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, ErrWriteCrashed
}

// Written reports how many bytes survived the crash.
func (c *CrashWriter) Written() int64 { return c.written }
