package faults

import (
	"errors"
	"sync"
	"testing"
)

func TestOpInjectorScriptedFailures(t *testing.T) {
	inj := NewOpInjector()
	inj.Fail("ledger.flush", 2, nil)
	custom := errors.New("disk full")
	inj.Fail("job:j-1", 1, custom)

	for k := 0; k < 2; k++ {
		if err := inj.Hit("ledger.flush"); !errors.Is(err, ErrInjected) {
			t.Fatalf("flush hit %d: %v, want ErrInjected", k, err)
		}
	}
	if err := inj.Hit("ledger.flush"); err != nil {
		t.Fatalf("flush after budget: %v, want nil", err)
	}
	if err := inj.Hit("job:j-1"); !errors.Is(err, custom) {
		t.Fatalf("job hit: %v, want the scripted error", err)
	}
	if err := inj.Hit("job:j-1"); err != nil {
		t.Fatalf("job after budget: %v", err)
	}
	if err := inj.Hit("never-scripted"); err != nil {
		t.Fatalf("unscripted op failed: %v", err)
	}
	if got := inj.Hits("ledger.flush"); got != 3 {
		t.Fatalf("flush hits = %d, want 3", got)
	}
}

func TestOpInjectorNilIsNoOp(t *testing.T) {
	var inj *OpInjector
	if err := inj.Hit("anything"); err != nil {
		t.Fatalf("nil injector failed: %v", err)
	}
	if got := inj.Hits("anything"); got != 0 {
		t.Fatalf("nil injector hits = %d", got)
	}
}

func TestOpInjectorConcurrent(t *testing.T) {
	inj := NewOpInjector()
	inj.Fail("op", 50, nil)
	var wg sync.WaitGroup
	fails := make(chan error, 200)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				fails <- inj.Hit("op")
			}
		}()
	}
	wg.Wait()
	close(fails)
	failed := 0
	for err := range fails {
		if err != nil {
			failed++
		}
	}
	if failed != 50 {
		t.Fatalf("%d injected failures, want exactly 50", failed)
	}
	if got := inj.Hits("op"); got != 200 {
		t.Fatalf("hits = %d, want 200", got)
	}
}
