package faults

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// memFile is an in-memory File for exercising FaultyFile.
type memFile struct{ buf bytes.Buffer }

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { return nil }
func (m *memFile) Close() error                { return nil }
func (m *memFile) Name() string                { return "mem" }

func TestFaultyFileDiskFull(t *testing.T) {
	m := &memFile{}
	f := &FaultyFile{F: m, Budget: 10}
	if n, err := f.Write(make([]byte, 8)); n != 8 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	// This write straddles the budget: the surviving prefix lands, the
	// error is typed.
	n, err := f.Write(make([]byte, 8))
	if n != 2 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("straddling write: n=%d err=%v, want 2, ErrDiskFull", n, err)
	}
	if n, err := f.Write([]byte{1}); n != 0 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("post-budget write: n=%d err=%v", n, err)
	}
	if m.buf.Len() != 10 {
		t.Fatalf("underlying file holds %d bytes, want 10", m.buf.Len())
	}
	if f.Written() != 10 {
		t.Fatalf("Written() = %d, want 10", f.Written())
	}
}

func TestFaultyFileShortWrite(t *testing.T) {
	m := &memFile{}
	f := &FaultyFile{F: m, ShortWriteAt: 2}
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("second"))
	if n != 3 || !errors.Is(err, ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v, want 3, ErrShortWrite", n, err)
	}
	if _, err := f.Write([]byte("third")); err != nil {
		t.Fatalf("write after the scripted short one failed: %v", err)
	}
}

func TestFaultyFileFailSync(t *testing.T) {
	f := &FaultyFile{F: &memFile{}, FailSync: true}
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("Sync err = %v, want ErrSyncFailed", err)
	}
}

func TestParseShardFault(t *testing.T) {
	cases := []struct {
		in   string
		want *ShardFault
		ok   bool
	}{
		{"", nil, true},
		{"kill@level=3", &ShardFault{Kind: "kill", Level: 3}, true},
		{"stall@level=2:dur=500ms", &ShardFault{Kind: "stall", Level: 2, Stall: 500 * time.Millisecond}, true},
		{"kill", nil, false},
		{"explode@level=1", nil, false},
		{"stall@level=1", nil, false}, // stall without duration
		{"kill@level=-1", nil, false},
		{"kill@level=x", nil, false},
	}
	for _, tc := range cases {
		got, err := ParseShardFault(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseShardFault(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.want == nil != (got == nil) {
			t.Errorf("ParseShardFault(%q) = %+v, want %+v", tc.in, got, tc.want)
			continue
		}
		if got != nil && *got != *tc.want {
			t.Errorf("ParseShardFault(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestShardFaultAt(t *testing.T) {
	var nilFault *ShardFault
	if nilFault.At(0) {
		t.Fatal("nil fault fired")
	}
	f := &ShardFault{Kind: "stall", Level: 2, Stall: time.Millisecond}
	if f.At(1) || !f.At(2) {
		t.Fatal("At() fired at the wrong level")
	}
	start := time.Now()
	f.Trigger()
	if time.Since(start) < time.Millisecond {
		t.Fatal("stall returned early")
	}
	nilFault.Trigger() // must be a no-op, not a crash
}
