package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Composable chaos schedules. A ChaosSchedule scripts one full distributed
// run's worth of failures — a coordinator SIGKILL at a BFS level, worker
// kills and stalls, corrupt chunk serves, and filesystem faults against the
// coordinator's journal — in a single parseable, replayable value. The
// `spacebound -chaos` driver executes it; because every fault is keyed to a
// deterministic trigger (a level, an operation count, a byte budget) rather
// than wall-clock time, re-running the same schedule reproduces the same
// failure sequence.

// CoordFault scripts the coordinator's own crash: SIGKILL once the run
// reaches Level, then restart after Restart (from the same journal).
type CoordFault struct {
	Level   int
	Restart time.Duration
}

// ChaosWorker is one scripted worker of the run: an id plus an optional
// process fault. A nil Fault is a healthy worker — the kind whose exit code
// the harness asserts stays zero through everyone else's failures.
type ChaosWorker struct {
	ID    string
	Fault *ShardFault
}

// ChaosSchedule is a whole run's failure script.
type ChaosSchedule struct {
	// Seed feeds every seeded component (client backoff jitter) so a replay
	// of the schedule retries at the same moments.
	Seed int64
	// Coord, when non-nil, SIGKILLs the coordinator at its level.
	Coord *CoordFault
	// Workers lists the run's workers in start order. The first worker is
	// started alone (a grace before the rest join) so it leases every slice
	// and its scripted death forces full reassignment.
	Workers []ChaosWorker
	// CorruptGets scripts the coordinator to serve the first N chunk GETs
	// corrupted (the "dist.chunk.get" op fault).
	CorruptGets int
	// FS, when non-nil, injects filesystem faults into the coordinator's
	// journal writes.
	FS *FSFault
}

// ParseChaosSchedule parses the -chaos flag syntax: semicolon-separated
// directives, each one fault or worker.
//
//	coord:kill@level=4              SIGKILL the coordinator at level 4
//	coord:kill@level=4:restart=1s   ... and wait 1s before restarting it
//	worker:w1:kill@level=3          worker w1 runs with -shard-fault kill@level=3
//	worker:w2:stall@level=2:dur=800ms
//	worker:w3                       healthy worker
//	corrupt-gets=2                  serve the first 2 chunk GETs corrupted
//	fs:enospc@bytes=4096            journal files hit ENOSPC after 4KiB each
//	fs:shortwrite@write=3           journal files short-write their 3rd write
//	fs:syncfail                     journal fsyncs fail
//	seed=7                          jitter seed
func ParseChaosSchedule(s string) (*ChaosSchedule, error) {
	sched := &ChaosSchedule{Seed: 1}
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		switch {
		case strings.HasPrefix(part, "coord:"):
			if sched.Coord != nil {
				return nil, fmt.Errorf("faults: chaos schedule has two coord faults")
			}
			cf, err := parseCoordFault(strings.TrimPrefix(part, "coord:"))
			if err != nil {
				return nil, err
			}
			sched.Coord = cf
		case strings.HasPrefix(part, "worker:"):
			w, err := parseChaosWorker(strings.TrimPrefix(part, "worker:"))
			if err != nil {
				return nil, err
			}
			if seen[w.ID] {
				return nil, fmt.Errorf("faults: chaos schedule repeats worker %q", w.ID)
			}
			seen[w.ID] = true
			sched.Workers = append(sched.Workers, w)
		case strings.HasPrefix(part, "fs:"):
			if sched.FS != nil {
				return nil, fmt.Errorf("faults: chaos schedule has two fs faults")
			}
			fs, err := ParseFSFault(strings.TrimPrefix(part, "fs:"))
			if err != nil {
				return nil, err
			}
			sched.FS = fs
		case strings.HasPrefix(part, "corrupt-gets="):
			n, err := strconv.Atoi(strings.TrimPrefix(part, "corrupt-gets="))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: chaos schedule: bad corrupt-gets %q", part)
			}
			sched.CorruptGets = n
		case strings.HasPrefix(part, "seed="):
			v, err := strconv.ParseInt(strings.TrimPrefix(part, "seed="), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: chaos schedule: bad seed %q", part)
			}
			sched.Seed = v
		default:
			return nil, fmt.Errorf("faults: chaos schedule: unknown directive %q", part)
		}
	}
	if len(sched.Workers) == 0 {
		return nil, fmt.Errorf("faults: chaos schedule has no workers")
	}
	return sched, nil
}

// parseCoordFault parses "kill@level=N[:restart=D]".
func parseCoordFault(s string) (*CoordFault, error) {
	kind, rest, ok := strings.Cut(s, "@")
	if !ok || kind != "kill" {
		return nil, fmt.Errorf("faults: coord fault %q: want kill@level=N[:restart=D]", s)
	}
	cf := &CoordFault{Restart: 500 * time.Millisecond}
	for _, part := range strings.Split(rest, ":") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faults: coord fault %q: bad field %q", s, part)
		}
		switch key {
		case "level":
			lv, err := strconv.Atoi(val)
			if err != nil || lv < 0 {
				return nil, fmt.Errorf("faults: coord fault %q: bad level %q", s, val)
			}
			cf.Level = lv
		case "restart":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: coord fault %q: bad restart %q", s, val)
			}
			cf.Restart = d
		default:
			return nil, fmt.Errorf("faults: coord fault %q: unknown field %q", s, key)
		}
	}
	return cf, nil
}

// parseChaosWorker parses "id" or "id:<shard-fault>".
func parseChaosWorker(s string) (ChaosWorker, error) {
	id, faultSpec, hasFault := strings.Cut(s, ":")
	if id == "" {
		return ChaosWorker{}, fmt.Errorf("faults: chaos worker %q: empty id", s)
	}
	w := ChaosWorker{ID: id}
	if hasFault {
		f, err := ParseShardFault(faultSpec)
		if err != nil {
			return ChaosWorker{}, err
		}
		w.Fault = f
	}
	return w, nil
}

// String renders the schedule back in the flag syntax — the replayable
// form the harness logs so a failing run can be re-run verbatim.
func (s *ChaosSchedule) String() string {
	var parts []string
	if s.Coord != nil {
		parts = append(parts, fmt.Sprintf("coord:kill@level=%d:restart=%s", s.Coord.Level, s.Coord.Restart))
	}
	for _, w := range s.Workers {
		p := "worker:" + w.ID
		if w.Fault != nil {
			switch w.Fault.Kind {
			case "kill":
				p += fmt.Sprintf(":kill@level=%d", w.Fault.Level)
			case "stall":
				p += fmt.Sprintf(":stall@level=%d:dur=%s", w.Fault.Level, w.Fault.Stall)
			}
		}
		parts = append(parts, p)
	}
	if s.CorruptGets > 0 {
		parts = append(parts, fmt.Sprintf("corrupt-gets=%d", s.CorruptGets))
	}
	if s.FS != nil {
		parts = append(parts, "fs:"+s.FS.String())
	}
	parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	return strings.Join(parts, "; ")
}

// FSFault scripts filesystem faults against one component's file writes:
// every file opened through Opener gets a fresh FaultyFile with this
// script, so "enospc@bytes=N" means each file accepts N bytes before the
// simulated volume fills under it.
type FSFault struct {
	// Budget is the per-file byte budget before ErrDiskFull (0 = none).
	Budget int64
	// ShortWriteAt truncates the Nth write of each file (0 = never).
	ShortWriteAt int
	// FailSync makes every Sync fail.
	FailSync bool
}

// ParseFSFault parses "enospc@bytes=N", "shortwrite@write=K" or "syncfail".
func ParseFSFault(s string) (*FSFault, error) {
	if s == "" {
		return nil, nil
	}
	if s == "syncfail" {
		return &FSFault{FailSync: true}, nil
	}
	kind, rest, ok := strings.Cut(s, "@")
	if !ok {
		return nil, fmt.Errorf("faults: fs fault %q: want enospc@bytes=N, shortwrite@write=K or syncfail", s)
	}
	key, val, ok := strings.Cut(rest, "=")
	if !ok {
		return nil, fmt.Errorf("faults: fs fault %q: bad field %q", s, rest)
	}
	switch {
	case kind == "enospc" && key == "bytes":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("faults: fs fault %q: bad byte budget %q", s, val)
		}
		return &FSFault{Budget: n}, nil
	case kind == "shortwrite" && key == "write":
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("faults: fs fault %q: bad write index %q", s, val)
		}
		return &FSFault{ShortWriteAt: n}, nil
	}
	return nil, fmt.Errorf("faults: fs fault %q: unknown kind %q", s, kind)
}

// String renders the fault in the flag syntax.
func (f *FSFault) String() string {
	switch {
	case f == nil:
		return ""
	case f.Budget > 0:
		return fmt.Sprintf("enospc@bytes=%d", f.Budget)
	case f.ShortWriteAt > 0:
		return fmt.Sprintf("shortwrite@write=%d", f.ShortWriteAt)
	case f.FailSync:
		return "syncfail"
	}
	return ""
}

// OpenOS opens path like os.OpenFile with 0o644 permissions, typed as the
// File interface the fault-injected write paths consume — the default
// opener a FileOpener hook falls back to.
func OpenOS(path string, flag int) (File, error) {
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Opener returns a file-opening hook that wraps every opened file in a
// FaultyFile carrying this fault script. Safe on nil: a nil fault's opener
// is plain OpenOS.
func (f *FSFault) Opener() func(path string, flag int) (File, error) {
	if f == nil {
		return OpenOS
	}
	return func(path string, flag int) (File, error) {
		file, err := OpenOS(path, flag)
		if err != nil {
			return nil, err
		}
		return &FaultyFile{F: file, Budget: f.Budget, ShortWriteAt: f.ShortWriteAt, FailSync: f.FailSync}, nil
	}
}
