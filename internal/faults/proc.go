package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Process-level fault plans for distributed shard workers. Where a Plan
// scripts faults against the processes of a consensus protocol, a
// ShardFault scripts a fault against the shard worker process itself: die
// by SIGKILL, or go silent for a while, at a named BFS level. The
// distributed engine's lease protocol must absorb both — a killed worker's
// slices are reassigned, a stalled worker stops heartbeating and loses its
// lease the same way.

// ShardFault is one scripted worker-process fault.
type ShardFault struct {
	// Kind is "kill" (SIGKILL self) or "stall" (block silently for Stall).
	Kind string
	// Level is the BFS level at which the fault fires.
	Level int
	// Stall is how long a "stall" fault blocks.
	Stall time.Duration
}

// ParseShardFault parses the -shard-fault flag syntax:
//
//	""                          no fault
//	"kill@level=3"              SIGKILL self when expanding level 3
//	"stall@level=3:dur=500ms"   go silent for 500ms at level 3
func ParseShardFault(s string) (*ShardFault, error) {
	if s == "" {
		return nil, nil
	}
	kind, rest, ok := strings.Cut(s, "@")
	if !ok {
		return nil, fmt.Errorf("faults: shard fault %q: want kind@level=N", s)
	}
	f := &ShardFault{Kind: kind}
	for _, part := range strings.Split(rest, ":") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faults: shard fault %q: bad field %q", s, part)
		}
		switch key {
		case "level":
			lv, err := strconv.Atoi(val)
			if err != nil || lv < 0 {
				return nil, fmt.Errorf("faults: shard fault %q: bad level %q", s, val)
			}
			f.Level = lv
		case "dur":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: shard fault %q: bad duration %q", s, val)
			}
			f.Stall = d
		default:
			return nil, fmt.Errorf("faults: shard fault %q: unknown field %q", s, key)
		}
	}
	switch f.Kind {
	case "kill":
	case "stall":
		if f.Stall <= 0 {
			return nil, fmt.Errorf("faults: shard fault %q: stall needs dur=", s)
		}
	default:
		return nil, fmt.Errorf("faults: shard fault %q: unknown kind %q", s, f.Kind)
	}
	return f, nil
}

// At reports whether the fault fires at this level. Safe on nil.
func (f *ShardFault) At(level int) bool {
	return f != nil && f.Level == level
}

// Trigger fires the fault: "kill" SIGKILLs the current process and never
// returns; "stall" blocks for Stall, heartbeating nothing. Safe on nil.
func (f *ShardFault) Trigger() {
	if f == nil {
		return
	}
	switch f.Kind {
	case "kill":
		p, err := os.FindProcess(os.Getpid())
		if err == nil {
			_ = p.Kill()
		}
		// SIGKILL is asynchronous; never proceed past it.
		select {}
	case "stall":
		time.Sleep(f.Stall)
	}
}
