package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Random returns a seeded random plan that crash-stops `crashes` distinct
// processes, each at a uniformly random operation index below maxStep. One
// in four crashes is a CrashAmidWrite (degrading to CrashStop when the
// operation is not a write), so half-completed writes are part of the fuzzed
// space. The plan is deterministic in (seed, n, crashes, maxStep).
func Random(seed int64, n, crashes, maxStep int) Plan {
	if crashes > n {
		crashes = n
	}
	if maxStep < 1 {
		maxStep = 1
	}
	rng := rand.New(rand.NewSource(seed))
	pids := rng.Perm(n)[:crashes]
	plan := Plan{
		Name: fmt.Sprintf("random-%d", seed),
		Seed: rng.Int63(),
	}
	for _, pid := range pids {
		kind := CrashStop
		if rng.Intn(4) == 0 {
			kind = CrashAmidWrite
		}
		plan.Events = append(plan.Events, Event{
			Kind: kind,
			Pid:  pid,
			Step: rng.Intn(maxStep),
		})
	}
	return plan
}

// CoveringTargeted builds a plan that crash-stops up to `crashes` processes
// exactly when they first become poised to write a register — the covering
// points at which the paper's adversary (and the Revisionist Simulations
// one) strikes. It simulates the protocol under a seeded schedule, watching
// for covering states, and records each victim's per-process operation index
// so the crash replays deterministically. The returned plan is a targeted
// heuristic: per-process indices are exact for the generating schedule and
// remain legal (if approximate) under any other.
func CoveringTargeted(m model.Machine, inputs []model.Value, seed int64, crashes, maxSteps int) (Plan, error) {
	n := len(inputs)
	if n == 0 {
		return Plan{}, fmt.Errorf("faults: covering-targeted plan needs inputs")
	}
	if crashes >= n {
		crashes = n - 1 // leave at least one survivor
	}
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	rng := rand.New(rand.NewSource(seed))
	plan := Plan{
		Name: fmt.Sprintf("covering-%d", seed),
		Seed: rng.Int63(),
	}
	c := model.NewConfig(m, inputs)
	ops := make([]int, n)
	victim := make(map[int]bool, crashes)
	for step := 0; step < maxSteps && len(victim) < crashes; step++ {
		// Strike any process newly poised on a write.
		for pid := 0; pid < n && len(victim) < crashes; pid++ {
			if victim[pid] {
				continue
			}
			if _, covers := c.CoveredRegister(pid); covers {
				victim[pid] = true
				plan.Events = append(plan.Events, Event{
					Kind: CrashStop,
					Pid:  pid,
					Step: ops[pid],
				})
			}
		}
		// Advance one non-victim process.
		var cands []int
		for pid := 0; pid < n; pid++ {
			if _, decided := c.Decided(pid); decided || victim[pid] {
				continue
			}
			cands = append(cands, pid)
		}
		if len(cands) == 0 {
			break
		}
		pid := cands[rng.Intn(len(cands))]
		if c.State(pid).Pending().Kind == model.OpCoin {
			c = c.Step(pid, model.Value(fmt.Sprintf("%d", rng.Intn(2))))
		} else {
			c = c.StepDet(pid)
		}
		ops[pid]++
	}
	if len(plan.Events) == 0 {
		return plan, fmt.Errorf("faults: no covering point found within %d steps of %s", maxSteps, m.Name())
	}
	return plan, nil
}

// ExhaustiveSmall enumerates every single-crash plan over n processes and
// operation indices below maxStep: n·maxStep plans, plus the fault-free
// plan. For small protocols this sweeps the complete single-fault space —
// the exhaustive counterpart of Random.
func ExhaustiveSmall(n, maxStep int) []Plan {
	plans := make([]Plan, 0, n*maxStep+1)
	plans = append(plans, Plan{Name: "fault-free"})
	for pid := 0; pid < n; pid++ {
		for step := 0; step < maxStep; step++ {
			plans = append(plans, Plan{
				Name:   fmt.Sprintf("crash-p%d@op%d", pid, step),
				Seed:   int64(pid)*1_000_003 + int64(step),
				Events: []Event{{Kind: CrashStop, Pid: pid, Step: step}},
			})
		}
	}
	return plans
}
