package trace

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/valency"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// goldenWitness constructs the reference n=3 DiskRace witness with a
// single-threaded oracle. Workers must be 1: the parallel engine may elect
// a different same-level representative path on different runs, and the
// golden files pin one exact rendering.
func goldenWitness(t *testing.T) *adversary.Theorem1Witness {
	t.Helper()
	engine := adversary.New(valency.New(explore.Options{
		KeyFn:   consensus.DiskRace{}.CanonicalKey,
		KeyTo:   consensus.DiskRace{}.CanonicalKeyTo,
		Workers: 1,
	}))
	w, err := engine.Theorem1(context.Background(), consensus.DiskRace{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to create the golden files)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(if the change is intentional, regenerate with `go test ./internal/trace -update`)",
			name, got, want)
	}
}

// TestGoldenTheorem1DOT pins the exact Figure-4-style DOT rendering of the
// reference witness, byte for byte.
func TestGoldenTheorem1DOT(t *testing.T) {
	checkGolden(t, "theorem1_diskrace_n3.dot.golden", Theorem1DOT(goldenWitness(t)))
}

// TestGoldenCoverTable pins the exact covering-assignment table of the
// reference witness.
func TestGoldenCoverTable(t *testing.T) {
	checkGolden(t, "cover_table_diskrace_n3.golden", CoverTable(goldenWitness(t)))
}

// TestGoldenChain pins the configuration-chain rendering of the reference
// witness's phase decomposition (α, φ, ζ as labelled arcs).
func TestGoldenChain(t *testing.T) {
	w := goldenWitness(t)
	segments := make([]Segment, 0, len(w.Phases))
	rest := w.Execution
	for _, ph := range w.Phases {
		segments = append(segments, Segment{Label: ph.Label, Path: rest[:ph.Steps]})
		rest = rest[ph.Steps:]
	}
	checkGolden(t, "chain_diskrace_n3.dot.golden", Chain("Theorem 1 construction (diskrace, n=3)", segments))
}
