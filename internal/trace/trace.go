// Package trace renders executions and lower-bound constructions for
// humans: step-by-step text transcripts and Graphviz DOT diagrams in the
// style of the paper's Figures 2-4 (configuration chains annotated with the
// process sets taking steps). The diagrams are generated from real runs of
// the adversary, not drawn by hand — regenerating the paper's figures from
// live constructions is experiment E4.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adversary"
	"repro/internal/model"
)

// Transcript renders an execution from c as numbered steps with register
// snapshots, like the replay listings in the tests.
func Transcript(c model.Config, path model.Path) string {
	var b strings.Builder
	for i, mv := range path {
		op := c.State(mv.Pid).Pending()
		var in model.Value
		switch op.Kind {
		case model.OpRead:
			in = c.Register(op.Reg)
		case model.OpCoin:
			in = mv.Coin
		}
		c = model.RunPath(c, model.Path{mv})
		fmt.Fprintf(&b, "%4d  %-34s regs=%s\n", i,
			model.TraceStep{Pid: mv.Pid, Op: op, In: in}.String(), regsString(c))
	}
	return b.String()
}

func regsString(c model.Config) string {
	parts := make([]string, c.NumRegisters())
	for i := range parts {
		v := string(c.Register(i))
		if v == "" {
			v = "⊥"
		}
		parts[i] = v
	}
	return "[" + strings.Join(parts, " | ") + "]"
}

// Segment is one labelled arc of a configuration-chain diagram.
type Segment struct {
	// Label annotates the arc (e.g. "φ by Q", "β: block write by R").
	Label string
	// Path is the sub-execution the arc stands for.
	Path model.Path
}

// Chain renders a configuration chain C --α₀--> C₁ --α₁--> ... as DOT,
// mirroring the layout of the paper's figures.
func Chain(title string, segments []Segment) string {
	var b strings.Builder
	b.WriteString("digraph construction {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, fontsize=11];\n")
	fmt.Fprintf(&b, "  label=%q; labelloc=t;\n", title)
	fmt.Fprintf(&b, "  c0 [label=\"C\"];\n")
	for i, seg := range segments {
		fmt.Fprintf(&b, "  c%d [label=\"C%d\"];\n", i+1, i+1)
		fmt.Fprintf(&b, "  c%d -> c%d [label=%q];\n", i, i+1, segLabel(seg))
	}
	b.WriteString("}\n")
	return b.String()
}

func segLabel(seg Segment) string {
	if len(seg.Path) == 0 {
		return seg.Label + " (ε)"
	}
	return fmt.Sprintf("%s (%d steps)", seg.Label, len(seg.Path))
}

// Theorem1DOT renders a Theorem 1 witness as a figure in the style of the
// paper's Figure 4: the constructed execution decomposed into the proof's
// named phases, ending at the configuration with n-1 distinct covered
// registers.
func Theorem1DOT(w *adversary.Theorem1Witness) string {
	var b strings.Builder
	b.WriteString("digraph theorem1 {\n  rankdir=LR;\n")
	fmt.Fprintf(&b, "  label=\"Theorem 1 witness: %s, n=%d: %d registers (%d covering rounds)\"; labelloc=t;\n",
		w.Protocol, w.N, w.Registers, w.Rounds)
	b.WriteString("  node [shape=circle, fontsize=11];\n")
	b.WriteString("  I [label=\"I\"];\n")
	prev := "I"
	for i, ph := range w.Phases {
		node := fmt.Sprintf("c%d", i+1)
		if i == len(w.Phases)-1 {
			node = "W"
			fmt.Fprintf(&b, "  W [label=\"Cα\", peripheries=2];\n")
		} else {
			fmt.Fprintf(&b, "  %s [label=\"C%d\"];\n", node, i+1)
		}
		fmt.Fprintf(&b, "  %s -> %s [label=\"%s: %d steps\"];\n", prev, node, ph.Label, ph.Steps)
		prev = node
	}
	if len(w.Phases) == 0 {
		b.WriteString("  W [label=\"Cα\", peripheries=2];\n")
		fmt.Fprintf(&b, "  I -> W [label=\"α (%d steps)\"];\n", len(w.Execution))
	}
	pids := make([]int, 0, len(w.Covered))
	for pid := range w.Covered {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		fmt.Fprintf(&b, "  r%d [shape=box, label=\"reg %d\"];\n", w.Covered[pid], w.Covered[pid])
		fmt.Fprintf(&b, "  W -> r%d [style=dashed, label=\"p%d covers\"];\n", w.Covered[pid], pid)
	}
	b.WriteString("}\n")
	return b.String()
}

// CoverTable formats the witness's covering assignment as an aligned text
// table (one row per covering process).
func CoverTable(w *adversary.Theorem1Witness) string {
	pids := make([]int, 0, len(w.Covered))
	for pid := range w.Covered {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var b strings.Builder
	b.WriteString("process  covers register\n")
	for _, pid := range pids {
		fmt.Fprintf(&b, "p%-7d r%d\n", pid, w.Covered[pid])
	}
	fmt.Fprintf(&b, "distinct registers: %d (lower bound n-1 = %d)\n", w.Registers, w.N-1)
	return b.String()
}
