package trace

import (
	"strings"

	"repro/internal/adversary"
)

// RenderWitness is the canonical witness artifact body: everything the
// proof claims, nothing the run's performance influenced. A resumed run
// must reproduce this byte for byte — the kill/restart tests and the
// witness ledger both hash it — so oracle statistics and timings are
// deliberately excluded. cmd/spacebound and the job server share this one
// renderer; a drift between them would make their artifacts incomparable.
func RenderWitness(w *adversary.Theorem1Witness) string {
	var b strings.Builder
	b.WriteString(w.String())
	b.WriteString("\n\n")
	b.WriteString(CoverTable(w))
	b.WriteString("\n")
	b.WriteString(Theorem1DOT(w))
	return b.String()
}
