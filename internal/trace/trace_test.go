package trace

import (
	"context"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/valency"
)

func witness(t *testing.T) (*adversary.Theorem1Witness, model.Config) {
	t.Helper()
	engine := adversary.New(valency.New(explore.Options{
		KeyFn: consensus.DiskRace{}.CanonicalKey,
		KeyTo: consensus.DiskRace{}.CanonicalKeyTo,
	}))
	w, err := engine.Theorem1(context.Background(), consensus.DiskRace{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return w, model.NewConfig(consensus.DiskRace{}, w.Inputs)
}

func TestTranscriptShape(t *testing.T) {
	w, initial := witness(t)
	out := Transcript(initial, w.Execution)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(w.Execution) {
		t.Fatalf("%d transcript lines for %d steps", len(lines), len(w.Execution))
	}
	for _, line := range lines {
		if !strings.Contains(line, "regs=") {
			t.Fatalf("line missing register snapshot: %q", line)
		}
	}
}

func TestTheorem1DOTWellFormed(t *testing.T) {
	w, _ := witness(t)
	dot := Theorem1DOT(w)
	for _, want := range []string{"digraph theorem1", "-> W", "Lemma 4", "Lemma 3", "Lemma 2", "covers", "}"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if got := strings.Count(dot, "style=dashed"); got != w.Registers {
		t.Fatalf("%d cover edges for %d registers", got, w.Registers)
	}
}

func TestCoverTable(t *testing.T) {
	w, _ := witness(t)
	table := CoverTable(w)
	if !strings.Contains(table, "distinct registers: 2 (lower bound n-1 = 2)") {
		t.Fatalf("table missing summary:\n%s", table)
	}
}

func TestChainRendersSegments(t *testing.T) {
	dot := Chain("Lemma 4", []Segment{
		{Label: "γ by P"},
		{Label: "η by P-{z}", Path: model.Path{{Pid: 0}, {Pid: 1}}},
	})
	for _, want := range []string{"digraph construction", "γ by P (ε)", "η by P-{z} (2 steps)"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("Chain output missing %q:\n%s", want, dot)
		}
	}
}
