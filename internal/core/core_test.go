package core

import (
	"context"
	"testing"
)

func TestMachineResolution(t *testing.T) {
	for _, name := range []string{ProtocolDiskRace, ProtocolFlood, ProtocolEagerFlood, ProtocolGreedyFlood, ProtocolCoinFlood} {
		m, _, err := Machine(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("Machine(%q).Name() = %q", name, m.Name())
		}
	}
	if _, _, err := Machine("nope"); err == nil {
		t.Fatal("expected error for unknown protocol")
	}
}

func TestAttackFacade(t *testing.T) {
	w, err := Attack(context.Background(), ProtocolDiskRace, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Registers < 2 {
		t.Fatalf("witnessed %d registers, want >= 2", w.Registers)
	}
}

func TestVerifyFacade(t *testing.T) {
	report, err := Verify(context.Background(), ProtocolFlood, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("flood n=2 should verify: %v", report)
	}
	broken, err := Verify(context.Background(), ProtocolGreedyFlood, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if broken.OK() {
		t.Fatal("greedyflood n=2 should fail verification")
	}
}

func TestProposeFacade(t *testing.T) {
	v, err := Propose([]int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("unanimous 1 decided %d", v)
	}
	if _, err := Propose(nil); err == nil {
		t.Fatal("expected error for empty inputs")
	}
}

func TestPerturbFacade(t *testing.T) {
	w, err := Perturb(5)
	if err != nil {
		t.Fatal(err)
	}
	if w.Registers != 4 {
		t.Fatalf("covered %d registers, want 4", w.Registers)
	}
}

func TestVerifyKSetFacade(t *testing.T) {
	report, err := VerifyKSet(context.Background(), 3, 2, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("kset(2) n=3: %v", report)
	}
}
