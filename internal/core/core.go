// Package core is the front door of the repository: one import that exposes
// the headline operations of the reproduction of Zhu's "A Tight Space Bound
// for Consensus" —
//
//	Attack   — run the paper's covering/valency adversary (Theorem 1)
//	           against a protocol, producing a witness that it uses at
//	           least n-1 registers;
//	Verify   — model-check a protocol's Agreement, Validity and solo
//	           termination by bounded-exhaustive search;
//	Propose  — run the native obstruction-free consensus (DiskRace) on
//	           goroutines;
//	Perturb  — run the Jayanti-Tan-Toueg perturbation adversary against
//	           the single-writer counter (deck part I.1).
//
// Everything here delegates to the specialised packages (internal/adversary,
// internal/check, internal/native, internal/perturb); use those directly
// for the full APIs.
package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/native"
	"repro/internal/perturb"
	"repro/internal/valency"
)

// Protocol names accepted by Attack and Verify.
const (
	ProtocolDiskRace    = "diskrace"
	ProtocolFlood       = "flood"
	ProtocolEagerFlood  = "eagerflood"
	ProtocolGreedyFlood = "greedyflood"
	ProtocolCoinFlood   = "coinflood"
)

// Machine resolves a protocol name to its model implementation and the
// exploration options (canonicalisation included) appropriate for it.
func Machine(name string) (model.Machine, explore.Options, error) {
	switch name {
	case ProtocolDiskRace:
		return consensus.DiskRace{}, explore.Options{
			KeyFn: consensus.DiskRace{}.CanonicalKey,
			KeyTo: consensus.DiskRace{}.CanonicalKeyTo,
		}, nil
	case ProtocolFlood:
		return consensus.Flood{}, explore.Options{}, nil
	case ProtocolEagerFlood:
		return consensus.EagerFlood{}, explore.Options{}, nil
	case ProtocolGreedyFlood:
		return consensus.GreedyFlood{}, explore.Options{}, nil
	case ProtocolCoinFlood:
		return consensus.CoinFlood{}, explore.Options{}, nil
	default:
		return nil, explore.Options{}, fmt.Errorf("core: unknown protocol %q", name)
	}
}

// Attack runs the Theorem 1 adversary against the named protocol with n
// processes. maxConfigs bounds each exhaustive valency query (0 = default);
// ctx bounds the whole construction in wall-clock time, and a cancelled run
// returns an *adversary.Partial error reporting its progress.
func Attack(ctx context.Context, protocol string, n, maxConfigs int) (*adversary.Theorem1Witness, error) {
	m, opts, err := Machine(protocol)
	if err != nil {
		return nil, err
	}
	if maxConfigs > 0 {
		opts.MaxConfigs = maxConfigs
	}
	engine := adversary.New(valency.New(opts))
	return engine.Theorem1(ctx, m, n)
}

// Verify model-checks the named protocol with n processes over all binary
// input vectors. maxConfigs bounds each exploration (0 = default); when the
// bound binds the report says so rather than over-claiming.
func Verify(ctx context.Context, protocol string, n, maxConfigs int) (*check.Report, error) {
	m, opts, err := Machine(protocol)
	if err != nil {
		return nil, err
	}
	if maxConfigs > 0 {
		opts.MaxConfigs = maxConfigs
	}
	return check.Consensus(ctx, m, n, check.Options{Explore: opts, MaxViolations: 1})
}

// VerifyKSet model-checks the lane-partitioned k-set agreement protocol for
// n processes: at most k distinct decisions (bounded exploration; the lane
// wrapper hides ballots from the canonicaliser).
func VerifyKSet(ctx context.Context, n, k, maxConfigs int) (*check.Report, error) {
	if maxConfigs <= 0 {
		maxConfigs = 100_000
	}
	return check.KSet(ctx, consensus.KSet{K: k}, n, k, check.Options{
		Explore:  explore.Options{MaxConfigs: maxConfigs},
		SkipSolo: true,
	})
}

// Propose runs native obstruction-free consensus among n goroutines with
// the given binary inputs and returns the agreed value.
func Propose(inputs []int) (int, error) {
	n := len(inputs)
	if n == 0 {
		return 0, fmt.Errorf("core: no participants")
	}
	d := native.NewDiskRace(n)
	decided := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for pid := range inputs {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			decided[pid], errs[pid] = d.Propose(pid, inputs[pid])
		}(pid)
	}
	wg.Wait()
	for pid, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("core: p%d: %w", pid, err)
		}
	}
	for pid := 1; pid < n; pid++ {
		if decided[pid] != decided[0] {
			return 0, fmt.Errorf("core: agreement violated: %v", decided)
		}
	}
	return decided[0], nil
}

// Perturb runs the JTT perturbation adversary against the single-writer
// counter with n processes.
func Perturb(n int) (*perturb.Witness, error) {
	return perturb.NewAdversary(perturb.SWCounter{}).Run(n)
}
