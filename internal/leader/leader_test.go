package leader

import (
	"sync"
	"testing"
)

// TestSplitterSolo: a process running alone stops.
func TestSplitterSolo(t *testing.T) {
	s := NewSplitter()
	if got := s.Visit(3); got != Stop {
		t.Fatalf("solo visit = %v, want stop", got)
	}
	// A later visitor cannot stop too.
	if got := s.Visit(4); got == Stop {
		t.Fatal("second visitor also stopped")
	}
}

// TestSplitterAtMostOneStop hammers a splitter with concurrent visitors
// across many trials: at most one may stop, and deflections must include
// both directions only when contention actually splits.
func TestSplitterAtMostOneStop(t *testing.T) {
	for trial := 0; trial < 500; trial++ {
		s := NewSplitter()
		const procs = 6
		outcomes := make([]Outcome, procs)
		var wg sync.WaitGroup
		for pid := 0; pid < procs; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				outcomes[pid] = s.Visit(pid)
			}(pid)
		}
		wg.Wait()
		stops, rights, downs := 0, 0, 0
		for _, o := range outcomes {
			switch o {
			case Stop:
				stops++
			case Right:
				rights++
			case Down:
				downs++
			}
		}
		if stops > 1 {
			t.Fatalf("trial %d: %d processes stopped: %v", trial, stops, outcomes)
		}
		if rights == procs {
			t.Fatalf("trial %d: all processes went right", trial)
		}
		if downs == procs {
			t.Fatalf("trial %d: all processes went down", trial)
		}
	}
}

// TestElectionExactlyOneLeader is experiment E8's core property across
// sizes and repeated trials.
func TestElectionExactlyOneLeader(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9, 16} {
		for trial := 0; trial < 15; trial++ {
			e := NewElection(n)
			leaders := make([]bool, n)
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					won, err := e.Run(pid)
					if err != nil {
						t.Errorf("n=%d p%d: %v", n, pid, err)
						return
					}
					leaders[pid] = won
				}(pid)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			count := 0
			for _, won := range leaders {
				if won {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("n=%d trial=%d: %d leaders: %v", n, trial, count, leaders)
			}
		}
	}
}

// TestElectionRegisterCount records the space used (the E8 contrast: linear
// in n times log n here, versus O(log n) for the specialised constructions
// and n-1 minimum for full consensus).
func TestElectionRegisterCount(t *testing.T) {
	n := 8
	e := NewElection(n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			if _, err := e.Run(pid); err != nil {
				t.Errorf("p%d: %v", pid, err)
			}
		}(pid)
	}
	wg.Wait()
	got := e.Registers()
	if got < n {
		t.Fatalf("registers = %d, want at least n=%d", got, n)
	}
	t.Logf("election registers used: %d (n=%d)", got, n)
}

// TestElectionRejectsBadPid covers the error path.
func TestElectionRejectsBadPid(t *testing.T) {
	e := NewElection(3)
	if _, err := e.Run(3); err == nil {
		t.Fatal("expected error for out-of-range pid")
	}
}
