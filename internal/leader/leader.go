// Package leader implements weak leader election, the contrast point of the
// paper's Section 1: electing a leader — where each process only needs to
// know whether it won — is provably cheaper in space than consensus
// (Giakkoupis, Helmi, Higham, Woelfel: O(√n), later O(log n) registers),
// while consensus needs n-1. This package provides
//
//   - Splitter: the Moir-Anderson splitter, the 2-register contention
//     filter underlying the sub-linear constructions (at most one process
//     stops; a process running alone stops), and
//
//   - Election: obstruction-free leader election by consensus on process
//     ids over internal/native's DiskRace — n registers, the baseline whose
//     space the sub-linear constructions beat and which experiment E8
//     tabulates against the consensus lower bound.
//
// Deterministic wait-free leader election from registers is impossible
// (test-and-set has consensus number 2), so obstruction freedom with
// randomized backoff is the strongest liveness on offer here, exactly as
// for consensus itself.
package leader

import (
	"fmt"
	"sync/atomic"

	"repro/internal/native"
)

// Outcome is the result of visiting a splitter.
type Outcome uint8

const (
	// Stop: the process captured the splitter (at most one per splitter).
	Stop Outcome = iota + 1
	// Right and Down: deflected; in grid/chain constructions these pick
	// the next splitter to visit.
	Right
	Down
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Stop:
		return "stop"
	case Right:
		return "right"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Splitter is the Moir-Anderson splitter from one pid register and one
// boolean register: of the processes that enter, at most one stops, not all
// go right, and not all go down; a process running alone stops.
type Splitter struct {
	x atomic.Int64
	y atomic.Bool
}

// NewSplitter returns an open splitter.
func NewSplitter() *Splitter {
	s := &Splitter{}
	s.x.Store(-1)
	return s
}

// Visit runs the splitter for the given process id (ids must be ≥ 0).
func (s *Splitter) Visit(pid int) Outcome {
	s.x.Store(int64(pid))
	if s.y.Load() {
		return Right
	}
	s.y.Store(true)
	if s.x.Load() == int64(pid) {
		return Stop
	}
	return Down
}

// Election is weak leader election over consensus on process identifiers:
// a native.Multivalued instance agrees on a participant's id (the
// announce-and-agree-bitwise reduction guarantees the winner actually
// participated), and each process compares the outcome with its own id.
type Election struct {
	n     int
	inner *native.Multivalued
}

// NewElection returns an election object for n processes.
func NewElection(n int) *Election {
	return &Election{n: n, inner: native.NewMultivalued(n, n)}
}

// Run participates as process pid and reports whether pid is the leader.
// Exactly one participant observes true once all participants return.
func (e *Election) Run(pid int) (bool, error) {
	if pid < 0 || pid >= e.n {
		return false, fmt.Errorf("leader: pid %d out of range [0,%d)", pid, e.n)
	}
	winner, err := e.inner.Propose(pid, pid)
	if err != nil {
		return false, fmt.Errorf("leader: %w", err)
	}
	return winner == pid, nil
}

// Registers reports the total number of registers the election writes —
// the quantity experiment E8 compares against consensus (n + n·⌈log₂ n⌉
// here versus the O(log n) of GHHW's specialised construction).
func (e *Election) Registers() int {
	return e.inner.Registers()
}
