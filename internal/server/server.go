package server

import (
	"context"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/valency"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrSaturated: the queue is full; the client should retry after a
	// moment (HTTP 429 + Retry-After).
	ErrSaturated = errors.New("server: queue saturated")
	// ErrDraining: the server is shutting down and admits nothing (503).
	ErrDraining = errors.New("server: draining")
	// ErrUnknownJob: no job with that ID (404).
	ErrUnknownJob = errors.New("server: unknown job")
)

// Options configures a Server. The zero value of every field selects a
// sensible default.
type Options struct {
	// DataDir is the root of all persistent state: jobs/<id>/ per job and
	// ledger/ledger.seg for the witness ledger. Required.
	DataDir string
	// Workers is the number of jobs run concurrently (default 2).
	Workers int
	// QueueDepth bounds the admission queue; a submit beyond it gets
	// ErrSaturated (default 8). Retries bypass admission — they were
	// already admitted once.
	QueueDepth int
	// MaxAttempts bounds retries per job (default 5).
	MaxAttempts int
	// RetryBase and RetryMax shape the backoff: base<<(attempt-1) capped at
	// max, plus up to 25% seeded jitter (defaults 500ms / 30s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// JitterSeed seeds the backoff jitter (default 1; fixed so test runs
	// are reproducible).
	JitterSeed int64
	// DefaultTimeout is the per-attempt budget for specs that set none
	// (default 0 = unbounded).
	DefaultTimeout time.Duration
	// CheckpointEvery is the minimum interval between job snapshots
	// (default 2s).
	CheckpointEvery time.Duration
	// BatchSize / BatchWait configure the ledger batcher (defaults 16 /
	// 500ms).
	BatchSize int
	BatchWait time.Duration
	// Scope receives the server's metrics, events and readiness probe.
	Scope *obs.Scope
	// Faults, when non-nil, injects failures at named operations
	// ("job.run" before each attempt, "ledger.flush" before each ledger
	// commit) — the test surface for the retry and recovery machinery.
	Faults *faults.OpInjector
}

func (o *Options) fill() error {
	if o.DataDir == "" {
		return fmt.Errorf("server: DataDir required")
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 500 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 30 * time.Second
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 2 * time.Second
	}
	return nil
}

// job is the in-memory record behind one Status.
type job struct {
	id     string
	dir    string
	status Status
}

// Server is the proof job service: admission, scheduling, supervision,
// persistence, ledger.
type Server struct {
	opts    Options
	scope   *obs.Scope
	faults  *faults.OpInjector
	ledger  *ledger.Ledger
	batcher *ledger.Batcher

	// baseCtx cancels every running attempt (and wakes idle workers) on
	// drain.
	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	queue    []*job
	nextID   int
	running  int
	draining bool
	rng      *rand.Rand
	timers   map[string]*time.Timer
}

// New opens (or reopens) the data directory, replays the recovery sweep,
// and starts the worker pool. Interrupted jobs found on disk are already
// queued when New returns.
func New(opts Options) (*Server, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(opts.DataDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(opts.DataDir, "ledger"), 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	led, err := ledger.Open(filepath.Join(opts.DataDir, "ledger", "ledger.seg"), opts.Scope)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		scope:     opts.Scope,
		faults:    opts.Faults,
		ledger:    led,
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*job),
		rng:       rand.New(rand.NewSource(opts.JitterSeed)),
		timers:    make(map[string]*time.Timer),
	}
	s.batcher = ledger.NewBatcher(led, ledger.BatcherOptions{
		BatchSize: opts.BatchSize,
		MaxWait:   opts.BatchWait,
		Scope:     opts.Scope,
		Faults:    opts.Faults,
		OnCommit:  s.onLedgerCommit,
	})
	s.scope.SetReadyCheck(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.draining {
			return ErrDraining
		}
		return nil
	})
	if err := s.recover(); err != nil {
		cancel()
		led.Close()
		return nil, err
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover is the startup sweep over jobs/: rebuild the job table from
// status.json files, re-enqueue anything that was queued or running when
// the last process died, and re-ledger finished witnesses the ledger never
// committed (the crash-between-done-and-flush window).
func (s *Server) recover() error {
	jobsDir := filepath.Join(s.opts.DataDir, "jobs")
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return fmt.Errorf("server: recovery sweep: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic re-enqueue order
	for _, name := range names {
		j := &job{id: name, dir: filepath.Join(jobsDir, name)}
		raw, err := os.ReadFile(filepath.Join(j.dir, "status.json"))
		if err != nil || json.Unmarshal(raw, &j.status) != nil || j.status.ID != name {
			// A torn status write. The spec is written first and
			// atomically; rebuild from it and start the job over.
			var spec JobSpec
			specRaw, specErr := os.ReadFile(filepath.Join(j.dir, "spec.json"))
			if specErr != nil || json.Unmarshal(specRaw, &spec) != nil {
				s.scope.Event("job_unrecoverable", slog.String("job", name))
				continue
			}
			j.status = Status{ID: name, Spec: spec, State: StateQueued}
		}
		if n := idNum(name); n >= s.nextID {
			s.nextID = n + 1
		}
		if j.status.TraceID == "" {
			// Jobs persisted before trace correlation existed (or with a
			// torn status rebuilt from spec) get an ID now, so their future
			// spans are filterable like everyone else's.
			j.status.TraceID = newTraceID()
		}
		s.jobs[name] = j
		switch j.status.State {
		case StateFailed:
			// Terminal stays terminal across restarts.
		case StateDone:
			if s.ledger.Contains(j.id) {
				continue
			}
			// Finished but unledgered: hash the persisted artifact and
			// hand it back to the batcher. If the artifact is damaged,
			// fall through to a full re-run — the checkpointed memo makes
			// that cheap.
			body, err := s.verifiedWitnessBody(j)
			if err != nil {
				s.requeueRecovered(j, fmt.Sprintf("witness artifact lost (%v), re-running", err))
				continue
			}
			s.scope.Counter("jobs_releadgered").Add(1)
			s.scope.Event("job_reledgered", slog.String("job", j.id))
			if err := s.batcher.Add(ledger.Item{JobID: j.id, Witness: sha256.Sum256(body)}); err != nil {
				return err
			}
		case StateRunning, StateQueued:
			s.requeueRecovered(j, "")
		default:
			s.requeueRecovered(j, "")
		}
	}
	return nil
}

// verifiedWitnessBody loads a done job's artifact, checking the sha256
// sidecar on the way.
func (s *Server) verifiedWitnessBody(j *job) ([]byte, error) {
	path := filepath.Join(j.dir, "witness.txt")
	if err := checkpoint.VerifyArtifact(path); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// requeueRecovered puts a swept job back on the queue (called from recover,
// before any worker starts — no locking needed yet, but take the mutex for
// uniformity with later requeues).
func (s *Server) requeueRecovered(j *job, note string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.status.State = StateQueued
	j.status.NextRetryUnixNano = 0
	if note != "" {
		j.status.LastError = note
	}
	s.persistLocked(j)
	s.queue = append(s.queue, j)
	s.scope.Counter("jobs_recovered").Add(1)
	s.scope.Event("job_recovered",
		slog.String("job", j.id),
		slog.Int("attempts", j.status.Attempts))
}

// newTraceID returns a fresh 64-bit random hex trace identifier. Job IDs
// are sequential and restart from the data directory's maximum, so they
// cannot correlate records across unrelated server incarnations; a random
// trace ID can.
func newTraceID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fall back to the clock; uniqueness within one trace file is all
		// the correlation needs.
		return fmt.Sprintf("t%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// idNum parses the numeric tail of a job ID ("j000042" -> 42), -1 if the
// name is foreign.
func idNum(name string) int {
	if len(name) < 2 || name[0] != 'j' {
		return -1
	}
	n := 0
	for _, c := range name[1:] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Submit admits a new job: validate, persist spec and initial status, put
// it on the queue. Returns ErrSaturated at the admission bound and
// ErrDraining during shutdown.
func (s *Server) Submit(spec JobSpec) (Status, error) {
	if err := spec.validate(); err != nil {
		return Status{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Status{}, ErrDraining
	}
	if len(s.queue) >= s.opts.QueueDepth {
		s.scope.Counter("jobs_rejected").Add(1)
		return Status{}, ErrSaturated
	}
	id := fmt.Sprintf("j%06d", s.nextID)
	s.nextID++
	j := &job{
		id:  id,
		dir: filepath.Join(s.opts.DataDir, "jobs", id),
	}
	now := time.Now().UnixNano()
	j.status = Status{ID: id, Spec: spec, TraceID: newTraceID(), State: StateQueued, CreatedUnixNano: now, UpdatedUnixNano: now}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return Status{}, fmt.Errorf("server: job dir: %w", err)
	}
	specJSON, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return Status{}, err
	}
	if _, err := checkpoint.WriteFileAtomic(filepath.Join(j.dir, "spec.json"), writeAll(specJSON)); err != nil {
		return Status{}, fmt.Errorf("server: persist spec: %w", err)
	}
	s.persistLocked(j)
	s.jobs[id] = j
	s.queue = append(s.queue, j)
	s.scope.Counter("jobs_submitted").Add(1)
	s.scope.Gauge("jobs_queued").Set(int64(len(s.queue)))
	s.scope.Event("job_submitted",
		slog.String("job", id),
		slog.String("trace", j.status.TraceID),
		slog.String("protocol", spec.Protocol),
		slog.Int("n", spec.N))
	return j.status, nil
}

// Job returns a copy of one job's status.
func (s *Server) Job(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, ErrUnknownJob
	}
	return j.status, nil
}

// Jobs returns every job's status, ordered by ID.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// WitnessPath returns the artifact path for a done job.
func (s *Server) WitnessPath(id string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", ErrUnknownJob
	}
	if j.status.State != StateDone {
		return "", fmt.Errorf("server: job %s is %s, no witness yet", id, j.status.State)
	}
	return filepath.Join(j.dir, "witness.txt"), nil
}

// TracePath returns a job's JSONL trace file path.
func (s *Server) TracePath(id string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", ErrUnknownJob
	}
	return filepath.Join(j.dir, "trace.jsonl"), nil
}

// Proof returns the ledger inclusion proof for a done job's witness.
func (s *Server) Proof(id string) (*ledger.Proof, error) {
	s.mu.Lock()
	if _, ok := s.jobs[id]; !ok {
		s.mu.Unlock()
		return nil, ErrUnknownJob
	}
	s.mu.Unlock()
	return s.ledger.Proof(id)
}

// LedgerHead returns the chain head (seq 0 = empty ledger).
func (s *Server) LedgerHead() (uint64, ledger.Hash) { return s.ledger.Head() }

// FlushLedger forces the batcher out of its wait window (tests and drains).
func (s *Server) FlushLedger() error { return s.batcher.Flush() }

// Drain stops admission, cancels running attempts (their engines persist a
// final checkpoint on the way out and the jobs return to queued on disk),
// flushes the ledger, and waits for the workers — bounded by ctx.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for id, t := range s.timers {
		t.Stop()
		delete(s.timers, id)
	}
	s.scope.Gauge("jobs_retrying").Set(0)
	s.mu.Unlock()
	s.scope.Event("server_draining")
	s.cancelAll()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain: %w", ctx.Err())
	}
	if cerr := s.batcher.Close(); err == nil {
		err = cerr
	}
	if cerr := s.ledger.Close(); err == nil {
		err = cerr
	}
	s.scope.Event("server_drained")
	return err
}

// worker runs queued attempts until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.pop()
		if j == nil {
			return
		}
		s.attempt(j)
	}
}

// pop takes the next queued job, polling until one appears or the server
// drains.
func (s *Server) pop() *job {
	for {
		s.mu.Lock()
		if len(s.queue) > 0 && !s.draining {
			j := s.queue[0]
			s.queue = s.queue[1:]
			s.running++
			s.scope.Gauge("jobs_queued").Set(int64(len(s.queue)))
			s.scope.Gauge("jobs_running").Set(int64(s.running))
			s.mu.Unlock()
			return j
		}
		s.mu.Unlock()
		select {
		case <-s.baseCtx.Done():
			return nil
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// AttemptLatencyBoundsMicros are the fixed buckets of the job_attempt_us
// histogram: attempts range from fast-forwarded resumes of milliseconds to
// cold n=5 constructions of minutes.
var AttemptLatencyBoundsMicros = []int64{10000, 50000, 100000, 500000, 1000000, 5000000, 10000000, 60000000, 300000000, 1800000000}

// attempt runs one supervised attempt of j and decides its fate: done,
// retry after backoff, terminal failure, or (during drain) persisted back
// to queued for the next process.
func (s *Server) attempt(j *job) {
	s.mu.Lock()
	j.status.State = StateRunning
	j.status.Attempts++
	j.status.NextRetryUnixNano = 0
	attempts := j.status.Attempts
	s.persistLocked(j)
	s.mu.Unlock()

	ctx := s.baseCtx
	if d := j.status.Spec.timeout(s.opts.DefaultTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	attemptStart := time.Now()
	err := s.runJob(ctx, j)
	s.scope.Histogram("job_attempt_us", AttemptLatencyBoundsMicros).Observe(time.Since(attemptStart).Microseconds())

	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		s.running--
		s.scope.Gauge("jobs_running").Set(int64(s.running))
	}()
	j.status.UpdatedUnixNano = time.Now().UnixNano()
	if err == nil {
		j.status.State = StateDone
		j.status.LastError, j.status.Progress, j.status.Reason = "", "", ""
		s.persistLocked(j)
		s.scope.Counter("jobs_done").Add(1)
		s.scope.Event("job_done",
			slog.String("job", j.id),
			slog.Int("attempts", attempts),
			slog.String("witness_sha256", j.status.WitnessSHA256))
		return
	}

	j.status.LastError = err.Error()
	var p *adversary.Partial
	if errors.As(err, &p) {
		j.status.Progress = p.String()
	}
	retryable, reason := classify(err)

	if s.draining && retryable {
		// Interrupted by shutdown, not by its own failure: persist as
		// queued so the next process's recovery sweep picks it up.
		j.status.State = StateQueued
		s.persistLocked(j)
		s.scope.Event("job_parked", slog.String("job", j.id))
		return
	}
	if !retryable || attempts >= s.opts.MaxAttempts {
		if retryable {
			reason = ReasonRetriesExhausted
		}
		j.status.State = StateFailed
		j.status.Reason = reason
		s.persistLocked(j)
		s.scope.Counter("jobs_failed").Add(1)
		s.scope.Event("job_failed",
			slog.String("job", j.id),
			slog.String("reason", reason),
			slog.Int("attempts", attempts),
			slog.String("err", err.Error()))
		return
	}

	delay := s.backoffLocked(attempts)
	j.status.State = StateQueued
	j.status.NextRetryUnixNano = time.Now().Add(delay).UnixNano()
	s.persistLocked(j)
	s.scope.Counter("jobs_retried").Add(1)
	s.scope.Event("job_retry",
		slog.String("job", j.id),
		slog.Int("attempt", attempts),
		slog.Duration("backoff", delay),
		slog.String("err", err.Error()))
	s.timers[j.id] = time.AfterFunc(delay, func() { s.requeueRetry(j) })
	s.scope.Gauge("jobs_retrying").Set(int64(len(s.timers)))
}

// requeueRetry moves a backed-off job onto the queue (timer callback).
// Retries bypass the admission bound: the job was admitted when submitted.
func (s *Server) requeueRetry(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.timers, j.id)
	s.scope.Gauge("jobs_retrying").Set(int64(len(s.timers)))
	if s.draining {
		return // already persisted as queued; next process resumes it
	}
	j.status.NextRetryUnixNano = 0
	s.queue = append(s.queue, j)
	s.scope.Gauge("jobs_queued").Set(int64(len(s.queue)))
}

// backoffLocked computes the delay before retry number attempt+1:
// base<<(attempt-1) capped at max, plus up to 25% seeded jitter so a
// restarted fleet doesn't thunder back in lockstep. Caller holds s.mu (the
// rng is not concurrency-safe).
func (s *Server) backoffLocked(attempt int) time.Duration {
	d := s.opts.RetryBase
	for i := 1; i < attempt && d < s.opts.RetryMax; i++ {
		d *= 2
	}
	if d > s.opts.RetryMax {
		d = s.opts.RetryMax
	}
	return d + time.Duration(s.rng.Int63n(int64(d/4)+1))
}

// runJob executes one attempt: resolve the machine, resume from the job's
// newest snapshot if one exists, run Theorem 1 under the attempt context,
// verify the witness by independent replay, persist the artifact, and hand
// its hash to the ledger batcher.
func (s *Server) runJob(ctx context.Context, j *job) error {
	if err := s.faults.Hit("job.run"); err != nil {
		return err
	}
	spec := j.status.Spec
	m, opts, err := core.Machine(spec.Protocol)
	if err != nil {
		return terminalf(ReasonConstruction, err)
	}
	if spec.MaxConfigs > 0 {
		opts.MaxConfigs = spec.MaxConfigs
	}
	opts.Workers = spec.Workers

	// Per-job trace, appended across attempts so the retry history reads as
	// one stream. When the server itself traces, the job's records are teed
	// into the shared trace too — tagged with the job's trace ID, so one
	// job's spans filter cleanly out of the multi-tenant stream.
	tf, err := os.OpenFile(filepath.Join(j.dir, "trace.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer tf.Close()
	tw := io.Writer(tf)
	if sink := s.scope.Tracer().Sink(); sink != nil {
		// A tee loses tf's Closer identity, hence the explicit Close above
		// (harmlessly redundant when the tracer owns it). slog serialises
		// each record into one Write, so interleaved lines stay whole.
		tw = io.MultiWriter(tf, sink)
	}
	tr := obs.NewTracerWithID(tw, j.status.TraceID)
	defer tr.Close()
	scope := obs.NewScope(tr)
	if rec := s.scope.Recorder(); rec != nil {
		// The job engine's level boundaries tick the server's shared flight
		// recorder, but the samples read the server scope's registry — the
		// job's private registry stays its own.
		scope.SetRecorder(rec)
	}
	opts.Obs = scope

	store, err := checkpoint.Open(filepath.Join(j.dir, "ckpt"))
	if err != nil {
		return err
	}
	meta := checkpoint.Meta{Protocol: spec.Protocol, N: spec.N, MaxConfigs: opts.MaxConfigs, FPVersion: explore.FingerprintVersion}
	var engine *adversary.Engine
	snap, err := store.Latest()
	switch {
	case err == nil && snap.Meta.Protocol == spec.Protocol && snap.Meta.N == spec.N &&
		snap.Meta.MaxConfigs == opts.MaxConfigs && snap.Meta.FPVersion == explore.FingerprintVersion:
		engine, err = adversary.ResumeEngine(opts, snap)
		if err != nil {
			return err
		}
		meta = snap.Meta
		s.scope.Event("job_resumed",
			slog.String("job", j.id),
			slog.Uint64("snapshot_seq", snap.Meta.Seq),
			slog.String("stage", snap.Meta.Stage))
	case err == nil || errors.Is(err, checkpoint.ErrNoCheckpoint):
		// No snapshot (or one from a stale spec): fresh construction.
		engine = adversary.New(valency.New(opts))
	default:
		return err
	}
	coord := checkpoint.NewCoordinator(store, s.opts.CheckpointEvery, meta, scope)
	engine.SetCheckpointer(coord)

	w, err := engine.Theorem1(ctx, m, spec.N)
	if err != nil {
		// Persist the progress the attempt made; the retry resumes from it.
		if ferr := coord.Flush(); ferr != nil {
			s.scope.Event("job_checkpoint_error", slog.String("job", j.id), slog.String("err", ferr.Error()))
		}
		var p *adversary.Partial
		if errors.As(err, &p) {
			return err // budget interruption: retryable with progress intact
		}
		return terminalf(ReasonConstruction, err)
	}
	if err := coord.Flush(); err != nil {
		s.scope.Event("job_checkpoint_error", slog.String("job", j.id), slog.String("err", ferrString(err)))
	}

	// Verify before anything becomes visible: an unverified witness must
	// never reach the artifact directory or the ledger.
	if err := check.VerifyWitness(m, w); err != nil {
		return terminalf(ReasonVerifyFailed, err)
	}
	body := []byte(trace.RenderWitness(w))
	if err := checkpoint.WriteArtifact(filepath.Join(j.dir, "witness.txt"), body); err != nil {
		return err
	}
	sum := sha256.Sum256(body)

	s.mu.Lock()
	j.status.WitnessSHA256 = hex.EncodeToString(sum[:])
	j.status.Registers = w.Registers
	s.mu.Unlock()
	return s.batcher.Add(ledger.Item{JobID: j.id, Witness: sum})
}

// ferrString guards the event attr against a nil error (Flush succeeded).
func ferrString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// onLedgerCommit stamps each job in a freshly committed batch with its
// ledger position (batcher callback, runs off the batcher lock).
func (s *Server) onLedgerCommit(b *ledger.Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, item := range b.Items {
		j, ok := s.jobs[item.JobID]
		if !ok {
			continue
		}
		j.status.State = StateDone
		j.status.Ledger = &LedgerRef{BatchSeq: b.Seq, Root: b.Root}
		j.status.UpdatedUnixNano = time.Now().UnixNano()
		s.persistLocked(j)
	}
}

// persistLocked writes j's status.json atomically. Caller holds s.mu (or
// is in single-threaded startup). Persistence failures are observable but
// never fatal: the in-memory state keeps serving.
func (s *Server) persistLocked(j *job) {
	j.status.UpdatedUnixNano = time.Now().UnixNano()
	raw, err := json.MarshalIndent(&j.status, "", "  ")
	if err == nil {
		_, err = checkpoint.WriteFileAtomic(filepath.Join(j.dir, "status.json"), writeAll(raw))
	}
	if err != nil {
		s.scope.Counter("status_persist_errors").Add(1)
		s.scope.Event("status_persist_error", slog.String("job", j.id), slog.String("err", err.Error()))
	}
}

// writeAll adapts a byte slice to WriteFileAtomic's writer callback.
func writeAll(b []byte) func(io.Writer) (int64, error) {
	return func(w io.Writer) (int64, error) {
		n, err := w.Write(b)
		return int64(n), err
	}
}
