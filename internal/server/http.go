package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
)

// Handler is the job API:
//
//	POST /jobs              submit a JobSpec            202, 400, 429, 503
//	GET  /jobs              list all jobs               200
//	GET  /jobs/{id}         one job's status            200, 404
//	GET  /jobs/{id}/witness the witness artifact        200, 404, 409
//	GET  /jobs/{id}/trace   the job's JSONL trace       200, 404
//	GET  /jobs/{id}/proof   ledger inclusion proof      200, 404
//	GET  /ledger/head       chain head {seq, root}      200
//	GET  /healthz           process liveness            200
//	GET  /readyz            admission readiness         200, 503
//
// A 429 carries Retry-After; 503 on submit means the server is draining.
// The same /healthz and /readyz contract is also served on the obs debug
// endpoint when one is configured.
//
// Extra subsystems mount their own handlers alongside the job API: each
// Mount's handler is registered at its pattern on the same mux (provesrv
// -coordinator mounts the distributed-exploration coordinator under
// /dist/ this way).
func (s *Server) Handler(extra ...Mount) http.Handler {
	mux := http.NewServeMux()
	for _, m := range extra {
		mux.Handle(m.Pattern, m.Handler)
	}
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/witness", s.handleWitness)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/proof", s.handleProof)
	mux.HandleFunc("GET /ledger/head", s.handleLedgerHead)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// Mount attaches an extra subsystem's handler to the server's mux at a
// pattern (e.g. "/dist/" for the shard coordinator).
type Mount struct {
	Pattern string
	Handler http.Handler
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad spec: %v", err)})
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleWitness(w http.ResponseWriter, r *http.Request) {
	path, err := s.WitnessPath(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	case err != nil:
		// Known job, no witness yet: conflict with the current state.
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	body, err := os.ReadFile(path)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(body)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	path, err := s.TracePath(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	f, err := os.Open(path)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no trace recorded yet"})
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/jsonl")
	buf := make([]byte, 32*1024)
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	p, err := s.Proof(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleLedgerHead(w http.ResponseWriter, r *http.Request) {
	seq, root := s.LedgerHead()
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq, "root": root.String()})
}
