package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ledger"
	"repro/internal/obs"
)

// waitFor polls cond until it holds or the deadline kills the test.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fastOptions is a baseline for quick tests: tight batching, tight retry.
func fastOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		DataDir:         t.TempDir(),
		Workers:         1,
		RetryBase:       5 * time.Millisecond,
		RetryMax:        50 * time.Millisecond,
		BatchSize:       1,
		BatchWait:       10 * time.Millisecond,
		CheckpointEvery: 50 * time.Millisecond,
		Scope:           obs.NewScope(nil),
	}
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestSubmitToDoneWithProof drives one n=3 job end to end: done state,
// verified artifact on disk, a ledger position, and an inclusion proof
// that verifies against the served witness bytes.
func TestSubmitToDoneWithProof(t *testing.T) {
	opts := fastOptions(t)
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(JobSpec{Protocol: core.ProtocolDiskRace, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 60*time.Second, "job done+ledgered", func() bool {
		got, err := s.Job(st.ID)
		return err == nil && got.State == StateDone && got.Ledger != nil
	})
	got, err := s.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Registers != 2 {
		t.Fatalf("n=3 witnessed %d registers, want 2", got.Registers)
	}
	path, err := s.WitnessPath(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.VerifyArtifact(path); err != nil {
		t.Fatalf("artifact: %v", err)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.WitnessSHA256 != hex.EncodeToString(func() []byte { h := sha256.Sum256(body); return h[:] }()) {
		t.Fatal("status hash does not match the artifact")
	}
	p, err := s.Proof(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("inclusion proof: %v", err)
	}
	if p.Witness != sha256.Sum256(body) {
		t.Fatal("proof commits to different witness bytes")
	}
	if seq, _ := s.LedgerHead(); seq < 1 {
		t.Fatalf("ledger head seq %d", seq)
	}
	drain(t, s)
	if _, _, err := ledger.VerifyLedger(filepath.Join(opts.DataDir, "ledger", "ledger.seg")); err != nil {
		t.Fatalf("VerifyLedger: %v", err)
	}
}

// TestRetryableFailuresBackOffAndSucceed scripts two injected attempt
// failures: the supervisor must retry with backoff and land the job on the
// third attempt.
func TestRetryableFailuresBackOffAndSucceed(t *testing.T) {
	opts := fastOptions(t)
	inj := faults.NewOpInjector()
	inj.Fail("job.run", 2, nil)
	opts.Faults = inj
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	st, err := s.Submit(JobSpec{Protocol: core.ProtocolDiskRace, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "job done after retries", func() bool {
		got, _ := s.Job(st.ID)
		return got.State == StateDone
	})
	got, _ := s.Job(st.ID)
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", got.Attempts)
	}
	if v := opts.Scope.Counter("jobs_retried").Value(); v != 2 {
		t.Fatalf("jobs_retried = %d, want 2", v)
	}
	if hits := inj.Hits("job.run"); hits != 3 {
		t.Fatalf("attempt count = %d, want 3", hits)
	}
}

// TestTerminalFailureReportedOnceNeverRetried: a terminal classification
// must fail the job on its first attempt with the typed reason and never
// run again.
func TestTerminalFailureReportedOnceNeverRetried(t *testing.T) {
	opts := fastOptions(t)
	inj := faults.NewOpInjector()
	inj.Fail("job.run", 99, terminalf(ReasonVerifyFailed, errors.New("forced verification failure")))
	opts.Faults = inj
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	st, err := s.Submit(JobSpec{Protocol: core.ProtocolDiskRace, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "terminal failure", func() bool {
		got, _ := s.Job(st.ID)
		return got.State == StateFailed
	})
	got, _ := s.Job(st.ID)
	if got.Reason != ReasonVerifyFailed || got.Attempts != 1 {
		t.Fatalf("reason=%q attempts=%d, want %q/1", got.Reason, got.Attempts, ReasonVerifyFailed)
	}
	// Hot-retry check: nothing may touch the job again.
	time.Sleep(100 * time.Millisecond)
	if hits := inj.Hits("job.run"); hits != 1 {
		t.Fatalf("terminal job ran %d times", hits)
	}
	if v := opts.Scope.Counter("jobs_failed").Value(); v != 1 {
		t.Fatalf("jobs_failed = %d, want exactly 1", v)
	}
}

// TestRetriesExhaustedIsTerminal: a permanently retryable failure hits the
// attempt budget and fails with the retries-exhausted reason.
func TestRetriesExhaustedIsTerminal(t *testing.T) {
	opts := fastOptions(t)
	opts.MaxAttempts = 2
	inj := faults.NewOpInjector()
	inj.Fail("job.run", 99, nil)
	opts.Faults = inj
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	st, err := s.Submit(JobSpec{Protocol: core.ProtocolDiskRace, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "retries exhausted", func() bool {
		got, _ := s.Job(st.ID)
		return got.State == StateFailed
	})
	got, _ := s.Job(st.ID)
	if got.Reason != ReasonRetriesExhausted || got.Attempts != 2 {
		t.Fatalf("reason=%q attempts=%d", got.Reason, got.Attempts)
	}
}

// TestAdmissionControlAndDrain saturates a 1-worker/depth-1 server with a
// long n=4 job, checks the 429 + Retry-After backpressure and the draining
// 503, then drains and confirms the interrupted job is parked on disk as
// queued with its progress report.
func TestAdmissionControlAndDrain(t *testing.T) {
	opts := fastOptions(t)
	opts.QueueDepth = 1
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Long job: n=4 runs for many seconds, far longer than this test.
	respA := submit(`{"protocol":"diskrace","n":4}`)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A: %d", respA.StatusCode)
	}
	var stA Status
	if err := json.NewDecoder(respA.Body).Decode(&stA); err != nil {
		t.Fatal(err)
	}
	respA.Body.Close()
	waitFor(t, 10*time.Second, "A running", func() bool {
		got, _ := s.Job(stA.ID)
		return got.State == StateRunning
	})
	// Worker busy: B fills the queue, C bounces with Retry-After.
	respB := submit(`{"protocol":"diskrace","n":2}`)
	respB.Body.Close()
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B: %d", respB.StatusCode)
	}
	respC := submit(`{"protocol":"diskrace","n":2}`)
	respC.Body.Close()
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit C: %d, want 429", respC.StatusCode)
	}
	if respC.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Malformed and invalid specs are 400s, not queue slots.
	if resp := submit(`{"protocol":"nosuch","n":3}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad protocol: %d", resp.StatusCode)
	}
	// Witness of a running job is a 409; unknown job a 404.
	if resp, _ := http.Get(ts.URL + "/jobs/" + stA.ID + "/witness"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("witness of running job: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}
	if err := opts.Scope.ReadyErr(); err != nil {
		t.Fatalf("scope readiness before drain: %v", err)
	}

	drain(t, s)
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d", resp.StatusCode)
	}
	if !errors.Is(opts.Scope.ReadyErr(), ErrDraining) {
		t.Fatal("obs readiness probe not wired to draining state")
	}
	if resp := submit(`{"protocol":"diskrace","n":2}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	// The interrupted n=4 job must be parked on disk as queued, with the
	// partial-progress report captured.
	raw, err := os.ReadFile(filepath.Join(opts.DataDir, "jobs", stA.ID, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	var parked Status
	if err := json.Unmarshal(raw, &parked); err != nil {
		t.Fatal(err)
	}
	if parked.State != StateQueued {
		t.Fatalf("interrupted job persisted as %q, want queued", parked.State)
	}
	if parked.Progress == "" {
		t.Fatal("no partial-progress report persisted for the interrupted job")
	}
}

// TestRecoverySweep rebuilds a server over a data directory holding (a) a
// finished job the ledger never saw and (b) an interrupted queued job: the
// sweep must re-ledger the first and run the second to completion, and new
// IDs must not collide with the recovered ones.
func TestRecoverySweep(t *testing.T) {
	dataDir := t.TempDir()
	// (a) done-but-unledgered: artifact on disk, status done, empty ledger.
	doneDir := filepath.Join(dataDir, "jobs", "j000000")
	if err := os.MkdirAll(doneDir, 0o755); err != nil {
		t.Fatal(err)
	}
	witness := []byte("pretend witness body\n")
	if err := checkpoint.WriteArtifact(filepath.Join(doneDir, "witness.txt"), witness); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(witness)
	writeStatus := func(dir string, st Status) {
		t.Helper()
		raw, err := json.MarshalIndent(&st, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "status.json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		spec, _ := json.Marshal(st.Spec)
		if err := os.WriteFile(filepath.Join(dir, "spec.json"), spec, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeStatus(doneDir, Status{
		ID:            "j000000",
		Spec:          JobSpec{Protocol: core.ProtocolDiskRace, N: 2, Workers: 1},
		State:         StateDone,
		Attempts:      1,
		WitnessSHA256: hex.EncodeToString(sum[:]),
	})
	// (b) interrupted mid-run: persisted as queued.
	qDir := filepath.Join(dataDir, "jobs", "j000001")
	if err := os.MkdirAll(qDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeStatus(qDir, Status{
		ID:       "j000001",
		Spec:     JobSpec{Protocol: core.ProtocolDiskRace, N: 2, Workers: 1},
		State:    StateQueued,
		Attempts: 1,
	})

	opts := fastOptions(t)
	opts.DataDir = dataDir
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	waitFor(t, 30*time.Second, "recovered jobs settled", func() bool {
		a, _ := s.Job("j000000")
		b, _ := s.Job("j000001")
		return a.Ledger != nil && b.State == StateDone && b.Ledger != nil
	})
	p, err := s.Proof("j000000")
	if err != nil {
		t.Fatal(err)
	}
	if p.Witness != sum {
		t.Fatal("re-ledgered witness hash drifted from the artifact")
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("re-ledgered proof: %v", err)
	}
	if v := opts.Scope.Counter("jobs_recovered").Value(); v != 1 {
		t.Fatalf("jobs_recovered = %d, want 1", v)
	}
	// Fresh IDs continue past the recovered ones.
	st, err := s.Submit(JobSpec{Protocol: core.ProtocolDiskRace, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000002" {
		t.Fatalf("next ID = %s, want j000002", st.ID)
	}
	waitFor(t, 30*time.Second, "new job done", func() bool {
		got, _ := s.Job(st.ID)
		return got.State == StateDone
	})
}

// TestTraceEndpointStreams: the per-job trace is valid JSONL with the
// engine's span records in it.
func TestTraceEndpointStreams(t *testing.T) {
	opts := fastOptions(t)
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st, err := s.Submit(JobSpec{Protocol: core.ProtocolDiskRace, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "job done", func() bool {
		got, _ := s.Job(st.ID)
		return got.State == StateDone
	})
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 0 {
		t.Fatal("empty trace")
	}
	sawTheorem := false
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line is not JSON: %q", line)
		}
		if rec["msg"] == "theorem1" {
			sawTheorem = true
		}
	}
	if !sawTheorem {
		t.Fatal("trace has no theorem1 span")
	}
}

// lockedBuffer is a concurrency-safe io.Writer standing in for the
// server's shared trace sink; slog serialises each record into a single
// Write, so whole JSONL lines interleave without tearing.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestTwoJobTraceCorrelation runs two jobs concurrently against a server
// whose scope carries a tracer, so every job span is teed into one
// multi-tenant trace stream. Each job's spans must be recoverable from
// that stream by its trace ID alone, and each job's private trace.jsonl
// must carry only its own ID.
func TestTwoJobTraceCorrelation(t *testing.T) {
	var shared lockedBuffer
	tr := obs.NewTracer(&shared)
	opts := fastOptions(t)
	opts.Workers = 2
	opts.Scope = obs.NewScope(tr)
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	st1, err := s.Submit(JobSpec{Protocol: core.ProtocolDiskRace, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Submit(JobSpec{Protocol: core.ProtocolFlood, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st1.TraceID == "" || st2.TraceID == "" {
		t.Fatalf("jobs submitted without trace IDs: %q, %q", st1.TraceID, st2.TraceID)
	}
	if st1.TraceID == st2.TraceID {
		t.Fatalf("both jobs share trace ID %q", st1.TraceID)
	}
	for _, id := range []string{st1.ID, st2.ID} {
		waitFor(t, 60*time.Second, "job "+id+" done", func() bool {
			got, err := s.Job(id)
			return err == nil && got.State == StateDone
		})
	}
	drain(t, s)

	// The multi-tenant stream: filtering on one trace ID must recover that
	// job's spans, and the two span sets must be non-empty and disjoint.
	perTrace := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(shared.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("malformed JSONL line in shared trace: %q: %v", line, err)
		}
		if id, ok := rec["trace"].(string); ok {
			perTrace[id]++
		}
	}
	for _, st := range []Status{st1, st2} {
		if perTrace[st.TraceID] == 0 {
			t.Errorf("no spans for trace %s (job %s) in the shared stream; got %v", st.TraceID, st.ID, perTrace)
		}
	}

	// Each job's private trace carries its own ID on every record and
	// never the other job's.
	others := map[string]string{st1.ID: st2.TraceID, st2.ID: st1.TraceID}
	own := map[string]string{st1.ID: st1.TraceID, st2.ID: st2.TraceID}
	for _, jobID := range []string{st1.ID, st2.ID} {
		path, err := s.TracePath(jobID)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) == 0 || lines[0] == "" {
			t.Fatalf("job %s produced an empty trace", jobID)
		}
		for _, line := range lines {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("job %s: malformed trace line %q: %v", jobID, line, err)
			}
			if got, _ := rec["trace"].(string); got != own[jobID] {
				t.Fatalf("job %s: trace line tagged %q, want %q: %s", jobID, got, own[jobID], line)
			}
			if strings.Contains(line, others[jobID]) {
				t.Fatalf("job %s: foreign trace ID leaked into private trace: %s", jobID, line)
			}
		}
	}
}
