// Package server turns the Theorem 1 construction into a supervised
// service: jobs submitted over HTTP run under a bounded worker pool with
// admission control, retry with capped exponential backoff, per-job
// crash-safe checkpoints, and a tamper-evident Merkle ledger of every
// witness produced. A SIGKILLed server restarted over the same data
// directory resumes its interrupted jobs from their snapshots and finishes
// them with byte-identical witnesses.
package server

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
)

// JobSpec is the submitted description of one proof job: which protocol to
// attack, at what n, and under what per-attempt budgets.
type JobSpec struct {
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	// MaxConfigs caps each valency query (0 = the protocol's default).
	MaxConfigs int `json:"max_configs,omitempty"`
	// Workers is the exploration parallelism per valency query. It defaults
	// to 1: sequential exploration is what makes a resumed run's witness
	// byte-identical to an uninterrupted one.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds each attempt's wall clock (0 = the server default).
	// An attempt stopped by this budget checkpoints its progress and is
	// retried; with checkpoints each retry starts where the last stopped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// timeout resolves the per-attempt budget against the server default.
func (sp JobSpec) timeout(def time.Duration) time.Duration {
	if sp.TimeoutMS > 0 {
		return time.Duration(sp.TimeoutMS) * time.Millisecond
	}
	return def
}

// validate rejects specs the scheduler would only fail on later.
func (sp *JobSpec) validate() error {
	if _, _, err := core.Machine(sp.Protocol); err != nil {
		return err
	}
	if sp.N < 2 {
		return fmt.Errorf("server: n must be >= 2, got %d", sp.N)
	}
	if sp.MaxConfigs < 0 || sp.TimeoutMS < 0 || sp.Workers < 0 {
		return fmt.Errorf("server: negative budget in spec")
	}
	if sp.Workers == 0 {
		sp.Workers = 1
	}
	return nil
}

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: admitted, waiting for a worker (first run or retry).
	StateQueued State = "queued"
	// StateRunning: a worker is executing an attempt right now.
	StateRunning State = "running"
	// StateDone: witness produced, verified by independent replay, and
	// handed to the ledger.
	StateDone State = "done"
	// StateFailed: terminal — the failure class is in Status.Reason and the
	// job will never be retried.
	StateFailed State = "failed"
)

// Terminal failure reasons (Status.Reason).
const (
	// ReasonVerifyFailed: the construction finished but the witness failed
	// the independent replay audit — never retried, the same deterministic
	// construction would fail the same way.
	ReasonVerifyFailed = "verify-failed"
	// ReasonConstruction: the engine reported a property violation or other
	// non-budget failure (e.g. the protocol is not a consensus protocol).
	ReasonConstruction = "construction-failed"
	// ReasonRetriesExhausted: every attempt failed retryably and the
	// attempt budget ran out.
	ReasonRetriesExhausted = "retries-exhausted"
)

// LedgerRef is a job's position in the witness ledger.
type LedgerRef struct {
	BatchSeq uint64      `json:"batch_seq"`
	Root     ledger.Hash `json:"root"`
}

// Status is a job's full public record; it is also what status.json holds
// on disk, so a restarted server reconstructs the job table from it.
type Status struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
	// TraceID correlates this job's spans across the shared server trace:
	// every record the job's engine emits (explore levels, valency queries,
	// adversary lemma spans) carries "trace":TraceID, so one job's history
	// is recoverable from a multi-tenant trace.jsonl by filtering on it.
	// Assigned at submission and persisted, so it survives restarts.
	TraceID string `json:"trace_id,omitempty"`

	State    State `json:"state"`
	Attempts int   `json:"attempts"`

	// Reason is the terminal failure class when State is failed.
	Reason string `json:"reason,omitempty"`
	// LastError is the most recent attempt's failure, terminal or not.
	LastError string `json:"last_error,omitempty"`
	// Progress summarises the interrupted construction (from
	// adversary.Partial) while a retry is pending.
	Progress string `json:"progress,omitempty"`

	// WitnessSHA256 is the hex hash of the witness artifact once done —
	// the exact value the ledger commits to.
	WitnessSHA256 string `json:"witness_sha256,omitempty"`
	// Registers is the witnessed register count once done.
	Registers int `json:"registers,omitempty"`
	// Ledger records the Merkle batch that includes this witness (set
	// asynchronously after the batch flushes).
	Ledger *LedgerRef `json:"ledger,omitempty"`

	CreatedUnixNano   int64 `json:"created_unix_nano"`
	UpdatedUnixNano   int64 `json:"updated_unix_nano"`
	NextRetryUnixNano int64 `json:"next_retry_unix_nano,omitempty"`
}

// terminalError marks a failure that must never be retried: re-running a
// deterministic construction cannot change a property violation or a
// failed verification.
type terminalError struct {
	reason string
	err    error
}

func (e *terminalError) Error() string { return fmt.Sprintf("%s: %v", e.reason, e.err) }
func (e *terminalError) Unwrap() error { return e.err }

// terminalf wraps err as a terminal failure with the given reason class.
func terminalf(reason string, err error) error {
	return &terminalError{reason: reason, err: err}
}

// classify splits a failed attempt into retryable (budget interruptions,
// injected faults, IO hiccups — anything a fresh attempt over the
// checkpoint may get past) versus terminal (explicitly marked). The default
// is retryable: the checkpoint layer makes retries cheap, and a terminal
// misclassification silently buries a provable theorem.
func classify(err error) (retryable bool, reason string) {
	var term *terminalError
	if errors.As(err, &term) {
		return false, term.reason
	}
	return true, ""
}
