package encdec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mutex"
)

// TestLehmerRoundTrip (property): decode∘encode is the identity on random
// permutations across sizes.
func TestLehmerRoundTrip(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%24 + 2
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		bits, _, err := EncodePermutation(perm)
		if err != nil {
			return false
		}
		back, err := DecodePermutation(bits, n)
		if err != nil {
			return false
		}
		for i := range perm {
			if perm[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeRejectsNonPermutation covers the validation path.
func TestEncodeRejectsNonPermutation(t *testing.T) {
	for _, bad := range [][]int{{0, 0}, {1, 2}, {0, -1}} {
		if _, _, err := EncodePermutation(bad); err == nil {
			t.Fatalf("accepted non-permutation %v", bad)
		}
	}
}

// TestFactorialBits pins known values of ⌈log₂ n!⌉.
func TestFactorialBits(t *testing.T) {
	want := map[int]int{2: 1, 3: 3, 4: 5, 5: 7, 8: 16}
	for n, exp := range want {
		if got := FactorialBits(n); got != exp {
			t.Fatalf("FactorialBits(%d) = %d, want %d", n, got, exp)
		}
	}
}

// TestExecutionRoundTrip is experiment E7: for random permutations, the
// canonical execution is constructed, encoded in ⌈log₂ n!⌉ bits, decoded,
// and re-simulated to an identical execution.
func TestExecutionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, alg := range []mutex.Algorithm{mutex.Peterson{}, mutex.Tournament{}} {
		for _, n := range []int{2, 4, 8} {
			for trial := 0; trial < 5; trial++ {
				perm := rng.Perm(n)
				enc, err := EncodeExecution(alg, perm)
				if err != nil {
					t.Fatalf("%s n=%d: %v", alg.Name(), n, err)
				}
				back, res, err := DecodeExecution(alg, enc)
				if err != nil {
					t.Fatalf("%s n=%d: %v", alg.Name(), n, err)
				}
				for i := range perm {
					if back[i] != perm[i] {
						t.Fatalf("%s n=%d: decoded %v, want %v", alg.Name(), n, back, perm)
					}
				}
				if res.Cost != enc.Cost {
					t.Fatalf("%s n=%d: re-simulated cost %d, encoded cost %d",
						alg.Name(), n, res.Cost, enc.Cost)
				}
			}
		}
	}
}

// TestInformationFloor: every canonical execution's state-change cost must
// dominate the information content of the order it realises; empirically
// cost beats the raw floor ⌈log₂ n!⌉ for both algorithms at these sizes.
func TestInformationFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, alg := range []mutex.Algorithm{mutex.Peterson{}, mutex.Tournament{}} {
		for _, n := range []int{4, 8, 16} {
			perm := rng.Perm(n)
			enc, err := EncodeExecution(alg, perm)
			if err != nil {
				t.Fatal(err)
			}
			if enc.Cost < int64(enc.BitLen) {
				t.Fatalf("%s n=%d: cost %d below information floor %d bits",
					alg.Name(), n, enc.Cost, enc.BitLen)
			}
		}
	}
}
