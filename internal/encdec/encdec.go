// Package encdec reproduces the encoder/decoder argument of Fan and Lynch
// (deck part II): the order in which n processes enter the critical section
// of a canonical mutual exclusion execution is a permutation π ∈ S_n, it
// can be encoded in ⌈log₂ n!⌉ bits, and it can be decoded by deterministic
// re-simulation of the algorithm — so the processes must collectively
// acquire Ω(n log n) bits of information, and in the state-change cost
// model information is what accesses are charged for.
//
// This package implements the three steps of the argument executably:
//
//	Construction: build, for any permutation π, a canonical execution of a
//	real mutex algorithm whose CS order is π (mutex.InOrder schedules).
//	Encoding: the Lehmer code of π in the factorial number system —
//	bit-optimal, ⌈log₂ n!⌉ bits.
//	Decoding: recover π from the bits and re-simulate the algorithm to
//	reproduce the entire execution, cost accounting included.
//
// Fan and Lynch's full proof encodes adversarial canonical executions via
// "metasteps" with O(cost) bits; the sequential canonical executions built
// here are the special case where the permutation already determines the
// whole schedule, which suffices to exhibit the information floor that
// every algorithm's measured cost must respect (see BenchmarkEncoder and
// TestInformationFloor).
package encdec

import (
	"fmt"
	"math/big"

	"repro/internal/mutex"
)

// EncodePermutation returns the Lehmer code of perm packed into a minimal
// big-endian bit string, along with the exact bit length used.
func EncodePermutation(perm []int) ([]byte, int, error) {
	n := len(perm)
	if err := validatePerm(perm); err != nil {
		return nil, 0, err
	}
	// Lehmer digits: for each position, the rank of perm[i] among the
	// values not yet used.
	code := big.NewInt(0)
	used := make([]bool, n)
	for i, v := range perm {
		rank := 0
		for w := 0; w < v; w++ {
			if !used[w] {
				rank++
			}
		}
		used[v] = true
		base := big.NewInt(int64(n - i))
		code.Mul(code, base)
		code.Add(code, big.NewInt(int64(rank)))
	}
	bits := factorialBits(n)
	buf := code.Bytes()
	out := make([]byte, (bits+7)/8)
	if len(out) < len(buf) {
		out = buf // n ≤ 1 edge: zero bits but non-empty representation
	} else {
		copy(out[len(out)-len(buf):], buf)
	}
	return out, bits, nil
}

// DecodePermutation inverts EncodePermutation for a permutation of size n.
func DecodePermutation(data []byte, n int) ([]int, error) {
	code := new(big.Int).SetBytes(data)
	digits := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		base := big.NewInt(int64(n - i))
		mod := new(big.Int)
		code.DivMod(code, base, mod)
		digits[i] = int(mod.Int64())
	}
	if code.Sign() != 0 {
		return nil, fmt.Errorf("encdec: trailing value %v beyond n!=%d digits", code, n)
	}
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	perm := make([]int, n)
	for i, rank := range digits {
		if rank < 0 || rank >= len(avail) {
			return nil, fmt.Errorf("encdec: corrupt Lehmer digit %d at position %d", rank, i)
		}
		perm[i] = avail[rank]
		avail = append(avail[:rank], avail[rank+1:]...)
	}
	return perm, nil
}

// FactorialBits returns ⌈log₂ n!⌉, the information content of a CS order.
func FactorialBits(n int) int { return factorialBits(n) }

func factorialBits(n int) int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	// BitLen of n!-1 is the ceiling of log2 of the code range [0, n!).
	f.Sub(f, big.NewInt(1))
	return f.BitLen()
}

// Encoded is a canonical execution reduced to its information content.
type Encoded struct {
	N    int
	Bits []byte
	// BitLen is the exact number of meaningful bits.
	BitLen int
	// Cost is the state-change cost of the encoded execution, for
	// comparison against BitLen (the Fan-Lynch floor).
	Cost int64
}

// EncodeExecution constructs the canonical execution of alg with CS order
// perm, verifies the order, and encodes it.
func EncodeExecution(alg mutex.Algorithm, perm []int) (Encoded, error) {
	res, err := mutex.Run(alg, len(perm), mutex.InOrder(perm))
	if err != nil {
		return Encoded{}, fmt.Errorf("encdec: construction: %w", err)
	}
	for i := range perm {
		if res.Order[i] != perm[i] {
			return Encoded{}, fmt.Errorf(
				"encdec: canonical execution order %v does not realise π=%v", res.Order, perm)
		}
	}
	bits, bitLen, err := EncodePermutation(perm)
	if err != nil {
		return Encoded{}, err
	}
	return Encoded{N: len(perm), Bits: bits, BitLen: bitLen, Cost: res.Cost}, nil
}

// DecodeExecution recovers the permutation and re-simulates the algorithm,
// reproducing the full execution (the decoder of the Fan-Lynch argument:
// the algorithm itself is the decompressor).
func DecodeExecution(alg mutex.Algorithm, enc Encoded) ([]int, mutex.Result, error) {
	perm, err := DecodePermutation(enc.Bits, enc.N)
	if err != nil {
		return nil, mutex.Result{}, err
	}
	res, err := mutex.Run(alg, enc.N, mutex.InOrder(perm))
	if err != nil {
		return nil, mutex.Result{}, fmt.Errorf("encdec: re-simulation: %w", err)
	}
	for i := range perm {
		if res.Order[i] != perm[i] {
			return nil, mutex.Result{}, fmt.Errorf("encdec: re-simulated order diverged")
		}
	}
	return perm, res, nil
}

func validatePerm(perm []int) error {
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			return fmt.Errorf("encdec: not a permutation of 0..%d: %v", len(perm)-1, perm)
		}
		seen[v] = true
	}
	return nil
}
