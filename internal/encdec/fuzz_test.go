package encdec

import (
	"testing"
)

// FuzzLehmerRoundTrip exercises the permutation codec with fuzzed inputs:
// any permutation must round-trip bit-exactly, and corrupt bit strings must
// be rejected or decode to a valid permutation (never panic).
func FuzzLehmerRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{3, 1, 0, 2, 4})
	f.Add([]byte{1, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 20 {
			t.Skip()
		}
		// Interpret the bytes as a candidate permutation.
		perm := make([]int, len(raw))
		for i, b := range raw {
			perm[i] = int(b)
		}
		bits, _, err := EncodePermutation(perm)
		if err != nil {
			return // not a permutation; rejection is correct
		}
		back, err := DecodePermutation(bits, len(perm))
		if err != nil {
			t.Fatalf("decode of freshly encoded permutation failed: %v", err)
		}
		for i := range perm {
			if back[i] != perm[i] {
				t.Fatalf("round trip %v -> %v", perm, back)
			}
		}
	})
}

// FuzzDecodeRobustness feeds arbitrary bytes to the decoder: it must never
// panic, and anything it accepts must re-encode to an equivalent prefix.
func FuzzDecodeRobustness(f *testing.F) {
	f.Add([]byte{0x00}, 3)
	f.Add([]byte{0xff, 0x13}, 5)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 1 || n > 16 || len(data) > 8 {
			t.Skip()
		}
		perm, err := DecodePermutation(data, n)
		if err != nil {
			return
		}
		bits, _, err := EncodePermutation(perm)
		if err != nil {
			t.Fatalf("decoder produced a non-permutation %v: %v", perm, err)
		}
		back, err := DecodePermutation(bits, n)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(perm, back) {
			t.Fatalf("re-encode mismatch: %v vs %v", perm, back)
		}
	})
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
