package register

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/linearize"
)

func TestAtomicZeroValue(t *testing.T) {
	var r Atomic[int]
	if got := r.Read(); got != 0 {
		t.Fatalf("zero-value read = %d", got)
	}
	r.Write(42)
	if got := r.Read(); got != 42 {
		t.Fatalf("read = %d, want 42", got)
	}
}

func TestArrayStats(t *testing.T) {
	a := NewArray[int64](4)
	a.Write(1, 10)
	a.Write(1, 11)
	a.Write(3, 12)
	_ = a.Read(0)
	_ = a.Read(1)
	s := a.Stats()
	if s.Writes != 3 || s.Reads != 2 || s.Touched != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	if !strings.Contains(s.String(), "registers-written=2") {
		t.Fatalf("stats string: %q", s.String())
	}
}

// TestRegisterLinearizable hammers one register from several goroutines and
// checks the recorded history against the sequential register spec.
func TestRegisterLinearizable(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		a := NewArray[int64](1)
		var rec linearize.Recorder
		var wg sync.WaitGroup
		for pid := 0; pid < 3; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					if (pid+i)%2 == 0 {
						v := int64(pid*10 + i + 1)
						p := rec.Invoke(pid, "write", strconv.FormatInt(v, 10))
						a.Write(0, v)
						p.Done("")
					} else {
						p := rec.Invoke(pid, "read", "")
						v := a.Read(0)
						p.Done(strconv.FormatInt(v, 10))
					}
				}
			}(pid)
		}
		wg.Wait()
		ok, err := linearize.Check(linearize.RegisterSpec(), rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: register history not linearizable:\n%v", trial, rec.History())
		}
	}
}
