package register

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestArrayConcurrentStats hammers one array with concurrent readers,
// writers AND Stats callers — the checker-observes-while-protocol-runs
// pattern the fault harness relies on. Run under -race this proves the
// instrumentation path itself is data-race-free, and the final counters
// must be exact.
func TestArrayConcurrentStats(t *testing.T) {
	const (
		regs      = 8
		writers   = 4
		readers   = 4
		pollers   = 2
		opsPerGor = 500
	)
	a := NewArray[int64](regs)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerGor; i++ {
				a.Write((w+i)%regs, int64(w*opsPerGor+i))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < opsPerGor; i++ {
				_ = a.Read((r + i) % regs)
			}
		}(r)
	}
	for p := 0; p < pollers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerGor; i++ {
				s := a.Stats()
				if s.Touched > regs {
					t.Errorf("Touched %d exceeds array size %d", s.Touched, regs)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := a.Stats()
	if s.Writes != writers*opsPerGor {
		t.Fatalf("writes = %d, want %d", s.Writes, writers*opsPerGor)
	}
	if s.Reads != readers*opsPerGor {
		t.Fatalf("reads = %d, want %d", s.Reads, readers*opsPerGor)
	}
	if s.Touched != regs {
		t.Fatalf("touched = %d, want %d (every register is written)", s.Touched, regs)
	}
}

// TestArrayTouchedMonotoneExact checks Stats.Touched under contention: it
// never decreases across snapshots taken while writers are landing, and once
// a register is known written it stays counted. The writers release registers
// one at a time through an atomic frontier so the test can assert an exact
// lower bound at each snapshot, not just monotonicity.
func TestArrayTouchedMonotoneExact(t *testing.T) {
	const regs = 16
	a := NewArray[int64](regs)
	var frontier atomic.Int64 // registers guaranteed written so far
	done := make(chan struct{})

	go func() {
		defer close(done)
		for i := 0; i < regs; i++ {
			a.Write(i, int64(i))
			frontier.Store(int64(i + 1))
		}
	}()

	prev := 0
	for {
		min := int(frontier.Load()) // read BEFORE Stats: writes up to min have completed
		s := a.Stats()
		if s.Touched < prev {
			t.Fatalf("Touched went backwards: %d after %d", s.Touched, prev)
		}
		if s.Touched < min {
			t.Fatalf("Touched = %d below the %d registers already written", s.Touched, min)
		}
		if s.Touched > regs {
			t.Fatalf("Touched = %d exceeds array size %d", s.Touched, regs)
		}
		prev = s.Touched
		select {
		case <-done:
			if got := a.Stats().Touched; got != regs {
				t.Fatalf("final Touched = %d, want %d", got, regs)
			}
			return
		default:
		}
	}
}

// TestArrayRepeatWritesExactTouched checks exactness in the other direction:
// many concurrent writers hitting the SAME registers must not over-count
// Touched.
func TestArrayRepeatWritesExactTouched(t *testing.T) {
	const regs = 8
	a := NewArray[int64](regs)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a.Write(0, int64(i)) // everyone hammers register 0
				a.Write(1, int64(w)) // and register 1
			}
		}(w)
	}
	wg.Wait()
	s := a.Stats()
	if s.Touched != 2 {
		t.Fatalf("touched = %d, want exactly 2", s.Touched)
	}
	if s.Writes != 8*200*2 {
		t.Fatalf("writes = %d, want %d", s.Writes, 8*200*2)
	}
}
