// Package register provides the native (goroutine) counterpart of the
// abstract model: atomic multi-writer multi-reader registers with
// instrumentation. The lower-bound experiments run in the abstract model
// where every interleaving is adversary-controlled; this package is the
// substrate for the native protocol implementations (internal/native,
// internal/snapshot, internal/mutex) whose benchmarks measure real
// concurrent behaviour.
//
// Everything here is linearizable by construction: registers delegate to
// sync/atomic, and the instrumentation counters are updated with atomic
// adds, so they never perturb protocol semantics.
package register

import (
	"fmt"
	"sync/atomic"
)

// Atomic is an atomic register holding values of type T. Values stored must
// be treated as immutable by callers (store-then-mutate is a race). The zero
// value is a register holding the zero value of T.
type Atomic[T any] struct {
	p atomic.Pointer[T]
}

// Read returns the current contents.
func (r *Atomic[T]) Read() T {
	if p := r.p.Load(); p != nil {
		return *p
	}
	var zero T
	return zero
}

// Write replaces the contents.
func (r *Atomic[T]) Write(v T) {
	r.p.Store(&v)
}

// Stats aggregates the activity observed by an instrumented Array.
type Stats struct {
	// Reads and Writes count operations.
	Reads, Writes int64
	// Touched is the number of distinct registers written at least once —
	// the quantity the paper's space bound is about.
	Touched int
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d registers-written=%d", s.Reads, s.Writes, s.Touched)
}

// Array is an instrumented array of atomic registers. It counts reads,
// writes, and distinct registers written, so protocol implementations can be
// audited against their declared space usage.
type Array[T any] struct {
	regs   []Atomic[T]
	reads  atomic.Int64
	writes atomic.Int64
	dirty  []atomic.Bool
}

// NewArray returns an array of n zero-valued registers.
func NewArray[T any](n int) *Array[T] {
	return &Array[T]{
		regs:  make([]Atomic[T], n),
		dirty: make([]atomic.Bool, n),
	}
}

// Len returns the number of registers.
func (a *Array[T]) Len() int { return len(a.regs) }

// Read returns the contents of register i.
func (a *Array[T]) Read(i int) T {
	a.reads.Add(1)
	return a.regs[i].Read()
}

// Write stores v in register i.
func (a *Array[T]) Write(i int, v T) {
	a.writes.Add(1)
	a.dirty[i].Store(true)
	a.regs[i].Write(v)
}

// Stats returns a snapshot of the instrumentation counters.
func (a *Array[T]) Stats() Stats {
	s := Stats{
		Reads:  a.reads.Load(),
		Writes: a.writes.Load(),
	}
	for i := range a.dirty {
		if a.dirty[i].Load() {
			s.Touched++
		}
	}
	return s
}
