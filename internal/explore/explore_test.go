package explore

import (
	"context"
	"errors"
	"strconv"
	"testing"

	"repro/internal/model"
)

// chain is a machine where each process counts down from its input by
// writing successive values to its own register: a line graph per process,
// giving predictable reachable-space sizes (product of budgets+1, roughly).
type chainMachine struct{}

func (chainMachine) Name() string        { return "chain" }
func (chainMachine) Registers(n int) int { return n }
func (chainMachine) Init(n, pid int, input model.Value) model.State {
	budget, _ := strconv.Atoi(string(input))
	return chainState{pid: pid, left: budget}
}

type chainState struct {
	pid, left int
}

func (s chainState) Pending() model.Op {
	if s.left == 0 {
		return model.Op{Kind: model.OpDecide, Arg: "done"}
	}
	return model.Op{Kind: model.OpWrite, Reg: s.pid, Arg: model.Value(strconv.Itoa(s.left))}
}

func (s chainState) Next(model.Value) model.State {
	return chainState{pid: s.pid, left: s.left - 1}
}

func (s chainState) Key() string {
	return "c" + strconv.Itoa(s.pid) + "." + strconv.Itoa(s.left)
}

// coinMachine flips one coin then decides the outcome.
type coinMachine struct{}

func (coinMachine) Name() string        { return "coin" }
func (coinMachine) Registers(n int) int { return 1 }
func (coinMachine) Init(n, pid int, input model.Value) model.State {
	return coinState{}
}

type coinState struct {
	flipped bool
	out     model.Value
}

func (s coinState) Pending() model.Op {
	if !s.flipped {
		return model.Op{Kind: model.OpCoin}
	}
	return model.Op{Kind: model.OpDecide, Arg: s.out}
}

func (s coinState) Next(in model.Value) model.State {
	return coinState{flipped: true, out: in}
}

func (s coinState) Key() string {
	return "f" + string(s.out) + strconv.FormatBool(s.flipped)
}

func TestReachCountsLineGraph(t *testing.T) {
	// Two processes with budgets 2 and 3: states (3 options) x (4 options)
	// = 12 configurations.
	c := model.NewConfig(chainMachine{}, []model.Value{"2", "3"})
	res, err := Reach(context.Background(), c, []int{0, 1}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 12 {
		t.Fatalf("Count = %d, want 12", res.Count)
	}
	if res.Capped {
		t.Fatal("unexpected cap")
	}
}

func TestReachRestrictedProcessSet(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"2", "3"})
	res, err := Reach(context.Background(), c, []int{1}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 4 {
		t.Fatalf("p1-only Count = %d, want 4", res.Count)
	}
}

func TestReachCapErrors(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"9", "9"})
	_, err := Reach(context.Background(), c, []int{0, 1}, Options{MaxConfigs: 10}, nil)
	if !errors.Is(err, ErrCapped) {
		t.Fatalf("err = %v, want ErrCapped", err)
	}
}

func TestReachDepthCap(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"9", "9"})
	res, err := Reach(context.Background(), c, []int{0, 1}, Options{MaxDepth: 2}, nil)
	if !errors.Is(err, ErrCapped) {
		t.Fatalf("err = %v, want ErrCapped", err)
	}
	// Depth ≤ 2 over two line graphs: 1 + 2 + 3 = 6 configurations.
	if res.Count != 6 {
		t.Fatalf("Count = %d, want 6", res.Count)
	}
}

func TestReachVisitStop(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"5", "5"})
	calls := 0
	_, err := Reach(context.Background(), c, []int{0, 1}, Options{}, func(Visit) bool {
		calls++
		return calls < 3
	})
	if !errors.Is(err, ErrCapped) {
		t.Fatalf("err = %v, want ErrCapped", err)
	}
	if calls != 3 {
		t.Fatalf("visit called %d times, want 3", calls)
	}
}

func TestPathToReplays(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"2", "2"})
	target := -1
	res, err := Reach(context.Background(), c, []int{0, 1}, Options{}, func(v Visit) bool {
		if len(v.Config.DecidedValues()) > 0 && v.Config.Register(0) == "1" {
			if _, ok := v.Config.Decided(1); ok {
				target = v.ID
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if target < 0 {
		t.Fatal("target configuration not found")
	}
	path, ok := res.PathTo(target)
	if !ok {
		t.Fatal("PathTo failed")
	}
	replayed := model.RunPath(c, path)
	if _, ok := replayed.Decided(1); !ok || replayed.Register(0) != "1" {
		t.Fatalf("replayed path does not reproduce the target: %v", replayed.Registers())
	}
	if _, ok := res.PathTo(1 << 30); ok {
		t.Fatal("PathTo out of range should fail")
	}
}

func TestMovesBranchesOnCoins(t *testing.T) {
	c := model.NewConfig(coinMachine{}, []model.Value{"", ""})
	moves := Moves(c, []int{0, 1})
	if len(moves) != 4 {
		t.Fatalf("got %d moves, want 4 (two per coin flipper)", len(moves))
	}
	res, err := Reach(context.Background(), c, []int{0, 1}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Each process independently lands on "0" or "1": 3 states per
	// process (unflipped, 0, 1) = 9 configurations.
	if res.Count != 9 {
		t.Fatalf("Count = %d, want 9", res.Count)
	}
}

func TestFingerprintDistinctness(t *testing.T) {
	seen := make(map[Fingerprint]string)
	for i := 0; i < 100000; i++ {
		key := strconv.Itoa(i)
		fp := fingerprintOf(key)
		if prev, ok := seen[fp]; ok {
			t.Fatalf("fingerprint collision between %q and %q", prev, key)
		}
		seen[fp] = key
	}
}
