package explore

import (
	"fmt"

	"repro/internal/model"
)

// Checkpoint/resume for an in-flight search. A search is frozen only at a
// BFS level boundary — the one point where the whole state is three plain
// structures (node forest, visited fingerprints, frontier ids) and no
// worker holds anything in flight. Configurations are never serialised:
// the frontier is stored as node ids and rebuilt on resume by replaying
// each node's witness path from the root, which keeps the format
// protocol-independent.

// CheckpointNode is the exported twin of the retained node record: parent
// id, BFS depth and the connecting move.
type CheckpointNode struct {
	Parent int32
	Depth  int32
	Via    model.Move
}

// LevelCheckpoint freezes a Reach search at a BFS level boundary: the
// frontier at Depth is about to be expanded, everything shallower has been
// visited. Produced by Snapshotter.Data, consumed by Options.ResumeFrom.
type LevelCheckpoint struct {
	// Depth is the BFS depth of the frontier below.
	Depth int
	// Count, Steps and PeakFrontier restore the Result counters.
	Count        int
	Steps        int
	PeakFrontier int
	// Nodes is the full parent/move forest of every visited configuration;
	// witness paths replay from it.
	Nodes []CheckpointNode
	// Frontier lists the node ids awaiting expansion, in visit order.
	Frontier []int32
	// Fingerprints is the visited set.
	Fingerprints []Fingerprint
}

// Snapshotter hands the Options.Snapshot hook access to the frozen search.
// Materialising the state costs a full copy of the node forest and visited
// set, so Data is a method, not a field: hooks that persist on a wall-clock
// interval check the clock first and call Data only when a save is due.
type Snapshotter struct {
	s     *search
	res   *Result
	level *frontier
	depth int
}

// Depth reports the BFS depth of the frontier about to be expanded.
func (sn *Snapshotter) Depth() int { return sn.depth }

// Count reports the configurations visited so far.
func (sn *Snapshotter) Count() int { return sn.res.Count }

// Data materialises the frozen search state. The error is non-nil only
// when a spilled frontier chunk cannot be read back.
func (sn *Snapshotter) Data() (*LevelCheckpoint, error) {
	frontierIDs, err := sn.level.allIDs()
	if err != nil {
		return nil, err
	}
	cp := &LevelCheckpoint{
		Depth:        sn.depth,
		Count:        sn.res.Count,
		Steps:        sn.res.Steps,
		PeakFrontier: sn.res.PeakFrontier,
		Frontier:     frontierIDs,
		Fingerprints: sn.s.visited.dump(),
		Nodes:        make([]CheckpointNode, len(sn.res.nodes)),
	}
	for i, n := range sn.res.nodes {
		cp.Nodes[i] = CheckpointNode{Parent: n.parent, Depth: n.depth, Via: model.UnpackMove(n.via)}
	}
	return cp, nil
}

// restore rebuilds the search state from a checkpoint: counters and node
// forest verbatim, the visited set from the fingerprint dump, and the
// frontier by replaying each stored id's path from the root configuration.
// Already-visited configurations are not re-visited — the caller restored
// whatever it learned from them alongside the checkpoint.
func (s *search) restore(cp *LevelCheckpoint, res *Result, level *frontier, root model.Config) error {
	if cp.Count != len(cp.Nodes) {
		return fmt.Errorf("explore: resume count %d != %d nodes", cp.Count, len(cp.Nodes))
	}
	if len(cp.Nodes) == 0 {
		return fmt.Errorf("explore: resume checkpoint has no nodes")
	}
	res.nodes = make([]node, len(cp.Nodes))
	for i, n := range cp.Nodes {
		via, err := model.PackMove(n.Via)
		if err != nil {
			return fmt.Errorf("explore: resume node %d: %w", i, err)
		}
		res.nodes[i] = node{parent: n.Parent, depth: n.Depth, via: via}
	}
	res.Count = cp.Count
	res.Steps = cp.Steps
	res.PeakFrontier = cp.PeakFrontier
	res.Depth = cp.Depth
	for _, fp := range cp.Fingerprints {
		s.visited.Add(fp)
	}
	if s.codec != nil {
		level.ids = make([]int32, 0, len(cp.Frontier))
		level.words = make([]uint64, len(cp.Frontier)*s.stride)
		for i, id := range cp.Frontier {
			cfg, err := replayTo(res, root, int(id))
			if err != nil {
				return fmt.Errorf("explore: resume frontier: %w", err)
			}
			if err := s.codec.PackTo(level.words[i*s.stride:(i+1)*s.stride], cfg); err != nil {
				return fmt.Errorf("explore: resume frontier: %w", err)
			}
			level.ids = append(level.ids, id)
		}
		return nil
	}
	level.mem = make([]levelEntry, 0, len(cp.Frontier))
	for _, id := range cp.Frontier {
		cfg, err := replayTo(res, root, int(id))
		if err != nil {
			return fmt.Errorf("explore: resume frontier: %w", err)
		}
		level.mem = append(level.mem, levelEntry{cfg: cfg, id: id})
	}
	return nil
}

// replayTo rebuilds the configuration at node id by replaying its witness
// path from the root.
func replayTo(res *Result, root model.Config, id int) (model.Config, error) {
	path, ok := res.PathTo(id)
	if !ok {
		return model.Config{}, fmt.Errorf("node id %d out of range", id)
	}
	cfg := root
	for _, m := range path {
		cfg = Apply(cfg, m)
	}
	return cfg, nil
}
