package explore

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/faults"
)

// writeTestChunk writes a representative packed spill chunk (ids plus
// stride-wide words) and returns its path.
func writeTestChunk(t *testing.T, stride int) (string, []int32, []uint64) {
	t.Helper()
	dir := t.TempDir()
	ids := []int32{0, 3, 7, 150, 4095, 1 << 20}
	words := make([]uint64, len(ids)*stride)
	for i := range words {
		words[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	path, _, err := writeSpillChunk(dir, ids, words)
	if err != nil {
		t.Fatalf("writeSpillChunk: %v", err)
	}
	return path, ids, words
}

// TestSpillChunkRoundTrip pins the happy path of the checksummed format.
func TestSpillChunkRoundTrip(t *testing.T) {
	const stride = 3
	path, ids, words := writeTestChunk(t, stride)
	gotIDs, gotWords, err := readSpillChunk(path, stride, nil, nil)
	if err != nil {
		t.Fatalf("readSpillChunk: %v", err)
	}
	if !slices.Equal(gotIDs, ids) || !slices.Equal(gotWords, words) {
		t.Fatalf("round trip mismatch: ids %v want %v", gotIDs, ids)
	}
	onlyIDs, err := readSpillChunkIDs(path)
	if err != nil {
		t.Fatalf("readSpillChunkIDs: %v", err)
	}
	if !slices.Equal(onlyIDs, ids) {
		t.Fatalf("id-only read mismatch: %v want %v", onlyIDs, ids)
	}
}

// TestSpillChunkBitFlipExhaustive flips every bit of a real spill chunk
// file, one at a time, and requires every flip to surface as a typed
// ErrSpillCorrupt from both read paths — never a panic, never silently
// different ids. It mirrors the segment bit-flip test in
// internal/checkpoint: the id list steers witness replay, so a silently
// wrong id is a corrupted proof.
func TestSpillChunkBitFlipExhaustive(t *testing.T) {
	const stride = 2
	path, _, _ := writeTestChunk(t, stride)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(t.TempDir(), "mutated.spill")
	for byteIdx := range orig {
		for bit := 0; bit < 8; bit++ {
			data := slices.Clone(orig)
			data[byteIdx] ^= 1 << bit
			if err := os.WriteFile(mut, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := readSpillChunk(mut, stride, nil, nil); !errors.Is(err, ErrSpillCorrupt) {
				t.Fatalf("flip byte %d bit %d: readSpillChunk err = %v, want ErrSpillCorrupt", byteIdx, bit, err)
			}
			if _, err := readSpillChunkIDs(mut); !errors.Is(err, ErrSpillCorrupt) {
				t.Fatalf("flip byte %d bit %d: readSpillChunkIDs err = %v, want ErrSpillCorrupt", byteIdx, bit, err)
			}
		}
	}
}

// TestSpillChunkTruncation cuts the file at every length and requires a
// typed error for each prefix.
func TestSpillChunkTruncation(t *testing.T) {
	const stride = 2
	path, _, _ := writeTestChunk(t, stride)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(t.TempDir(), "torn.spill")
	for cut := 0; cut < len(orig); cut++ {
		if err := os.WriteFile(mut, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := readSpillChunk(mut, stride, nil, nil); !errors.Is(err, ErrSpillCorrupt) {
			t.Fatalf("truncate at %d: err = %v, want ErrSpillCorrupt", cut, err)
		}
	}
}

// swapSpillFile installs a fault-injecting spill file factory for the test.
func swapSpillFile(t *testing.T, wrap func(f spillFile) spillFile) {
	t.Helper()
	prev := newSpillFile
	newSpillFile = func(dir string) (spillFile, error) {
		f, err := prev(dir)
		if err != nil {
			return nil, err
		}
		return wrap(f), nil
	}
	t.Cleanup(func() { newSpillFile = prev })
}

// TestWriteSpillChunkFaultyFS drives writeSpillChunk over a faulty
// filesystem and requires the injected conditions to surface as typed
// errors with the partial file removed — a spill under disk pressure must
// fail loudly, not truncate silently.
func TestWriteSpillChunkFaultyFS(t *testing.T) {
	ids := make([]int32, 4096)
	for i := range ids {
		ids[i] = int32(i)
	}
	words := make([]uint64, len(ids)*2)

	t.Run("disk full", func(t *testing.T) {
		swapSpillFile(t, func(f spillFile) spillFile {
			return &faults.FaultyFile{F: f.(faults.File), Budget: 100}
		})
		dir := t.TempDir()
		_, _, err := writeSpillChunk(dir, ids, words)
		if !errors.Is(err, faults.ErrDiskFull) {
			t.Fatalf("err = %v, want ErrDiskFull", err)
		}
		assertNoSpillFiles(t, dir)
	})

	t.Run("short write", func(t *testing.T) {
		swapSpillFile(t, func(f spillFile) spillFile {
			return &faults.FaultyFile{F: f.(faults.File), ShortWriteAt: 1}
		})
		dir := t.TempDir()
		_, _, err := writeSpillChunk(dir, ids, words)
		if !errors.Is(err, faults.ErrShortWrite) {
			t.Fatalf("err = %v, want ErrShortWrite", err)
		}
		assertNoSpillFiles(t, dir)
	})
}

func assertNoSpillFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("partial spill file left behind: %v", entries)
	}
}

// TestSpillGovernorDisablesOnFaultyDisk proves the governor's contract end
// to end: a spill write that fails under disk pressure disables spilling
// for the rest of the search instead of failing the proof, and the failure
// is typed all the way up.
func TestSpillGovernorDisablesOnFaultyDisk(t *testing.T) {
	swapSpillFile(t, func(f spillFile) spillFile {
		return &faults.FaultyFile{F: f.(faults.File), Budget: 10}
	})
	g := &spillGovernor{dir: t.TempDir(), budget: 1}
	f := &frontier{stride: 1}
	f.addPacked(1, []uint64{42}, nil)
	f.memBytes = 100 // force over budget
	g.maybeSpill(f)
	if !g.disabled {
		t.Fatal("governor still enabled after a failed spill write")
	}
	if len(f.spilled) != 0 {
		t.Fatal("failed spill chunk was recorded")
	}
	if len(f.ids) != 1 {
		t.Fatal("in-memory frontier was dropped despite the failed spill")
	}
}
