// Package explore provides bounded-exhaustive exploration of the
// configuration space of a protocol expressed in the internal/model
// framework. It is the computational engine behind the valency oracle
// (internal/valency) and the protocol checkers (internal/check).
//
// The paper's arguments quantify over "P-only executions from C". For the
// protocols this repository attacks, the set of configurations reachable by
// P-only executions is finite modulo the protocol's canonicalisation (see
// Options.KeyFn), so breadth-first search decides those quantifiers
// exactly. Caps guard against unbounded spaces: when a cap binds, the
// search reports it explicitly instead of silently returning partial truth.
//
// The search is built for tens of millions of configurations on a single
// machine: the visited set holds only 128-bit FNV fingerprints of canonical
// keys (a false merge needs a fingerprint collision; for 10^8 states the
// probability is below 10^-21), nodes retain only a parent index and the
// connecting move for witness-path reconstruction, and full configurations
// live only on the BFS frontier. Callers inspect configurations in the
// visit callback, while they are transiently available.
package explore

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/model"
)

// ErrCapped is returned (wrapped) when exploration hits a configured cap
// before exhausting the reachable space. Results derived from a capped
// exploration are not sound for "for all executions" claims.
var ErrCapped = errors.New("exploration capped before exhausting state space")

// cancelCheckInterval is how many expanded transitions pass between
// context-cancellation polls: frequent enough that a deadline lands within
// microseconds of real work, rare enough to stay off the hot path.
const cancelCheckInterval = 1 << 10

// Options bound an exploration. The zero value means "use defaults".
type Options struct {
	// MaxConfigs caps the number of distinct configurations visited.
	// Zero means DefaultMaxConfigs.
	MaxConfigs int
	// MaxDepth caps the BFS depth (schedule length). Zero means no cap.
	MaxDepth int
	// KeyFn, when non-nil, replaces Config.Key as the state identity used
	// for deduplication. Protocols with unbounded-but-symmetric state
	// (e.g. DiskRace's ballots) supply a canonicalising key that quotients
	// the space by a bisimulation, making exhaustive search terminate.
	// The function must identify only behaviourally equivalent
	// configurations; consensus.TestDiskRaceCanonicalBisimulation is the
	// guard for the one canonicaliser this repository ships.
	KeyFn func(model.Config) string
}

// ConfigKey returns the state identity of c under these options.
func (o Options) ConfigKey(c model.Config) string {
	if o.KeyFn != nil {
		return o.KeyFn(c)
	}
	return c.Key()
}

// DefaultMaxConfigs is the visited-configuration cap used when
// Options.MaxConfigs is zero. It is sized so that a runaway exploration
// fails in minutes, not hours; experiments that need more raise it
// explicitly.
const DefaultMaxConfigs = 1 << 21

func (o Options) maxConfigs() int {
	if o.MaxConfigs <= 0 {
		return DefaultMaxConfigs
	}
	return o.MaxConfigs
}

// fingerprint is a 128-bit FNV-1a digest of a canonical configuration key.
type fingerprint [2]uint64

func fingerprintOf(key string) fingerprint {
	h := fnv.New128a()
	_, _ = h.Write([]byte(key))
	var sum [16]byte
	h.Sum(sum[:0])
	var fp fingerprint
	for i := 0; i < 8; i++ {
		fp[0] = fp[0]<<8 | uint64(sum[i])
		fp[1] = fp[1]<<8 | uint64(sum[8+i])
	}
	return fp
}

// node is the retained per-state record: enough to reconstruct the witness
// path, nothing more.
type node struct {
	parent int32
	depth  int32
	via    model.Move
}

// Visit is the information handed to the visit callback for each distinct
// configuration, in BFS order. Config is only guaranteed valid during the
// callback (the frontier is released as the search advances); ID is stable
// and can be passed to Result.PathTo afterwards.
type Visit struct {
	Config model.Config
	ID     int
	Depth  int
}

// Result is the outcome of an exploration.
type Result struct {
	// Count is the number of distinct configurations visited.
	Count int
	// Capped reports whether a cap stopped the search early.
	Capped bool
	// Steps counts state transitions examined (for reporting).
	Steps int

	nodes []node
}

// PathTo reconstructs the move sequence from the root to the visited
// configuration with the given ID. The boolean is false for out-of-range
// IDs.
func (r *Result) PathTo(id int) (model.Path, bool) {
	if id < 0 || id >= len(r.nodes) {
		return nil, false
	}
	var rev model.Path
	for id != 0 {
		n := r.nodes[id]
		rev = append(rev, n.via)
		id = int(n.parent)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// Moves enumerates the moves available to the processes in p at
// configuration c: one move per non-decided process, except that a process
// poised on a coin flip contributes one move per outcome. Decided processes
// take no steps (their next "step" would be a no-op self-loop).
func Moves(c model.Config, p []int) []model.Move {
	moves := make([]model.Move, 0, len(p)+2)
	for _, pid := range p {
		switch c.State(pid).Pending().Kind {
		case model.OpDecide:
			// Terminated; contributes no transitions.
		case model.OpCoin:
			moves = append(moves,
				model.Move{Pid: pid, Coin: "0"},
				model.Move{Pid: pid, Coin: "1"},
			)
		default:
			moves = append(moves, model.Move{Pid: pid})
		}
	}
	return moves
}

// Apply performs the move on c.
func Apply(c model.Config, m model.Move) model.Config {
	if c.State(m.Pid).Pending().Kind == model.OpCoin {
		return c.Step(m.Pid, m.Coin)
	}
	return c.StepDet(m.Pid)
}

// Reach explores every configuration reachable from c by executions
// containing only steps of processes in p (a "P-only" exploration). The
// visit callback, if non-nil, is invoked once per distinct configuration in
// BFS order and may return false to stop the search early (the result is
// then marked Capped, since the space was not exhausted).
//
// ctx bounds the search in wall-clock time: when it is cancelled or its
// deadline passes, the search stops, marks the result Capped, and returns it
// together with an error wrapping ctx.Err() — everything visited so far is
// still valid, the space just was not exhausted. The states-visited budget
// is Options.MaxConfigs.
func Reach(ctx context.Context, c model.Config, p []int, opts Options, visit func(Visit) bool) (*Result, error) {
	res := &Result{}
	maxConfigs := opts.maxConfigs()
	if err := ctx.Err(); err != nil {
		res.Capped = true
		return res, fmt.Errorf("reach cancelled before start: %w (and %w)", err, ErrCapped)
	}

	visited := make(map[fingerprint]struct{}, 1024)
	visited[fingerprintOf(opts.ConfigKey(c))] = struct{}{}
	res.nodes = append(res.nodes, node{parent: 0})
	res.Count = 1
	if visit != nil && !visit(Visit{Config: c, ID: 0, Depth: 0}) {
		res.Capped = true
		return res, fmt.Errorf("reach from %d procs: %w", len(p), ErrCapped)
	}

	type frontierEntry struct {
		cfg model.Config
		id  int32
	}
	queue := []frontierEntry{{cfg: c, id: 0}}
	head := 0
	for head < len(queue) {
		cur := queue[head]
		// Release the consumed entry so its configuration can be
		// collected, and compact the backing array periodically.
		queue[head] = frontierEntry{}
		head++
		if head > 65536 && head*2 > len(queue) {
			queue = append([]frontierEntry(nil), queue[head:]...)
			head = 0
		}
		depth := res.nodes[cur.id].depth
		if opts.MaxDepth > 0 && int(depth) >= opts.MaxDepth {
			// Children beyond the depth cap are not expanded; the
			// space was not exhausted.
			res.Capped = true
			continue
		}
		for _, m := range Moves(cur.cfg, p) {
			res.Steps++
			if res.Steps%cancelCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					res.Capped = true
					return res, fmt.Errorf("reach cancelled after %d configs: %w (and %w)", res.Count, err, ErrCapped)
				}
			}
			next := Apply(cur.cfg, m)
			fp := fingerprintOf(opts.ConfigKey(next))
			if _, seen := visited[fp]; seen {
				continue
			}
			visited[fp] = struct{}{}
			id := int32(len(res.nodes))
			res.nodes = append(res.nodes, node{parent: cur.id, depth: depth + 1, via: m})
			res.Count++
			if visit != nil && !visit(Visit{Config: next, ID: int(id), Depth: int(depth + 1)}) {
				res.Capped = true
				return res, fmt.Errorf("reach visit stop: %w", ErrCapped)
			}
			if res.Count >= maxConfigs {
				res.Capped = true
				return res, fmt.Errorf("reach hit %d configs: %w", maxConfigs, ErrCapped)
			}
			queue = append(queue, frontierEntry{cfg: next, id: id})
		}
	}
	if res.Capped {
		return res, fmt.Errorf("reach depth-capped at %d: %w", opts.MaxDepth, ErrCapped)
	}
	return res, nil
}
