// Package explore provides bounded-exhaustive exploration of the
// configuration space of a protocol expressed in the internal/model
// framework. It is the computational engine behind the valency oracle
// (internal/valency) and the protocol checkers (internal/check).
//
// The paper's arguments quantify over "P-only executions from C". For the
// protocols this repository attacks, the set of configurations reachable by
// P-only executions is finite modulo the protocol's canonicalisation (see
// Options.KeyFn), so breadth-first search decides those quantifiers
// exactly. Caps guard against unbounded spaces: when a cap binds, the
// search reports it explicitly instead of silently returning partial truth.
//
// The search is built for tens of millions of configurations on a single
// machine: the visited set holds only 128-bit fingerprints of canonical
// keys (a false merge needs a fingerprint collision; for 10^8 states the
// probability is below 10^-21), nodes retain only a parent index and the
// packed connecting move for witness-path reconstruction, and the BFS
// frontier itself is a flat arena of bit-packed dictionary-index records
// (model.PackedCodec) materialised into configurations only in the batch
// being expanded. Callers inspect configurations in the visit callback,
// while they are transiently available — Visit.Config must not be retained
// past the callback's return (clone it if needed).
//
// The frontier is expanded level-synchronously by a pool of workers
// (Options.Workers) that deduplicate through a sharded lock-striped
// fingerprint set and hash canonical keys streamingly (model.KeyWriter), so
// no per-configuration key string is materialised on the hot path. The
// visit callback is always invoked from the calling goroutine, in
// deterministic order: one worker and N workers visit the same
// configuration count at every level, and every witness path remains
// replayable (parallel runs may pick a different — behaviourally
// equivalent — representative when two same-level configurations share a
// canonical key).
package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// ErrCapped is returned (wrapped) when exploration hits a configured cap
// before exhausting the reachable space. Results derived from a capped
// exploration are not sound for "for all executions" claims.
var ErrCapped = errors.New("exploration capped before exhausting state space")

// cancelCheckInterval is how many expanded transitions pass between
// context-cancellation polls: frequent enough that a deadline lands within
// microseconds of real work, rare enough to stay off the hot path.
const cancelCheckInterval = 1 << 10

// Options bound an exploration. The zero value means "use defaults".
type Options struct {
	// MaxConfigs caps the number of distinct configurations visited.
	// Zero means DefaultMaxConfigs.
	MaxConfigs int
	// MaxDepth caps the BFS depth (schedule length). Zero means no cap.
	MaxDepth int
	// KeyFn, when non-nil, replaces Config.Key as the state identity used
	// for deduplication. Protocols with unbounded-but-symmetric state
	// (e.g. DiskRace's ballots) supply a canonicalising key that quotients
	// the space by a bisimulation, making exhaustive search terminate.
	// The function must identify only behaviourally equivalent
	// configurations; consensus.TestDiskRaceCanonicalBisimulation is the
	// guard for the one canonicaliser this repository ships.
	KeyFn func(model.Config) string
	// KeyTo, when non-nil, streams the same identity as KeyFn (or
	// Config.Key when KeyFn is nil) into w without materialising a
	// string; the hot path prefers it. The two forms must agree byte for
	// byte — the string form stays the reference implementation, and
	// TestStreamingKeysMatchStringKeys cross-checks them. A KeyTo must be
	// safe for concurrent use from multiple workers (stream into w only;
	// any internal scratch must be pooled, as consensus.CanonicalKeyTo
	// does).
	KeyTo func(w model.KeyWriter, c model.Config)
	// Workers is the number of frontier-expansion workers. Zero means
	// GOMAXPROCS; 1 forces single-threaded expansion. Worker count never
	// changes the number of configurations visited per level.
	Workers int
	// Obs, when non-nil, receives per-level progress (frontier size,
	// dedup hits, cumulative configurations) for the live observability
	// layer. nil is the no-op default: the search pays one nil-check per
	// BFS level, never per configuration (the allocation-regression tests
	// guard this).
	Obs *obs.Scope
	// Snapshot, when non-nil, is invoked from the calling goroutine at
	// every BFS level boundary, before the frontier at Snapshotter.Depth is
	// expanded. Hooks that persist checkpoints decide cheaply (one clock
	// read) whether a save is due and call Snapshotter.Data only then.
	Snapshot func(*Snapshotter)
	// ResumeFrom, when non-nil, restores a search frozen by
	// Snapshotter.Data instead of starting at the root: counters, node
	// forest and visited set are restored verbatim, the frontier is rebuilt
	// by path replay, and no previously visited configuration is re-visited.
	// The options must otherwise match the checkpointed run's — resuming
	// under a different key function or cap is unsound, and the caller
	// (internal/valency) enforces that match.
	ResumeFrom *LevelCheckpoint
	// SpillDir, with a positive SpillBudget, enables the frontier spill
	// governor: when the accumulating next level exceeds SpillBudget bytes
	// of retained configurations, cold chunks are flushed to id-list files
	// under SpillDir and rebuilt by path replay when their turn comes.
	// Spilling never changes visit order, ids or witness paths.
	SpillDir string
	// SpillBudget is the approximate in-memory frontier byte budget; <= 0
	// disables spilling.
	SpillBudget int64
	// legacyFrontier selects the original retained-Config frontier and
	// Apply-per-transition expansion instead of the packed arena engine.
	// Unexported: it exists so the equivalence tests can hold the two
	// engines to identical results, not as a user-facing knob.
	legacyFrontier bool
}

// ConfigKey returns the state identity of c under these options, in its
// string reference form.
func (o Options) ConfigKey(c model.Config) string {
	if o.KeyFn != nil {
		return o.KeyFn(c)
	}
	return c.Key()
}

// DefaultMaxConfigs is the visited-configuration cap used when
// Options.MaxConfigs is zero. It is sized so that a runaway exploration
// fails in minutes, not hours; experiments that need more raise it
// explicitly.
const DefaultMaxConfigs = 1 << 21

func (o Options) maxConfigs() int {
	if o.MaxConfigs <= 0 {
		return DefaultMaxConfigs
	}
	return o.MaxConfigs
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// node is the retained per-state record: enough to reconstruct the witness
// path, nothing more. via holds the connecting move in its 32-bit
// model.PackMove encoding — the forest is retained for every visited
// configuration, so a Move's string header here would dominate the
// search's permanent footprint.
type node struct {
	parent int32
	depth  int32
	via    uint32
}

// Visit is the information handed to the visit callback for each distinct
// configuration, in BFS order. Config is only guaranteed valid during the
// callback (the frontier is released as the search advances); ID is stable
// and can be passed to Result.PathTo afterwards.
type Visit struct {
	Config model.Config
	ID     int
	Depth  int
}

// Result is the outcome of an exploration.
type Result struct {
	// Count is the number of distinct configurations visited.
	Count int
	// Capped reports whether a cap stopped the search early.
	Capped bool
	// Steps counts state transitions examined (for reporting).
	Steps int
	// PeakFrontier is the largest BFS level encountered: the high-water
	// mark of configurations simultaneously retained by the search.
	PeakFrontier int
	// Depth is the deepest BFS level at which a configuration was visited
	// (the schedule length of the longest witness path).
	Depth int

	nodes []node
}

// PathTo reconstructs the move sequence from the root to the visited
// configuration with the given ID. The boolean is false for out-of-range
// IDs.
func (r *Result) PathTo(id int) (model.Path, bool) {
	if id < 0 || id >= len(r.nodes) {
		return nil, false
	}
	var rev model.Path
	for id != 0 {
		n := r.nodes[id]
		rev = append(rev, model.UnpackMove(n.via))
		id = int(n.parent)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// AppendMoves appends the moves available to the processes in p at
// configuration c to dst and returns the extended slice: one move per
// non-decided process, except that a process poised on a coin flip
// contributes one move per outcome. Decided processes take no steps (their
// next "step" would be a no-op self-loop). The append form keeps the
// exploration inner loop allocation-free: workers pass a reused buffer.
func AppendMoves(dst []model.Move, c model.Config, p []int) []model.Move {
	for _, pid := range p {
		k, _ := model.PeekOp(c.State(pid))
		switch k {
		case model.OpDecide:
			// Terminated; contributes no transitions.
		case model.OpCoin:
			dst = append(dst,
				model.Move{Pid: pid, Coin: "0"},
				model.Move{Pid: pid, Coin: "1"},
			)
		default:
			dst = append(dst, model.Move{Pid: pid})
		}
	}
	return dst
}

// Moves enumerates the moves available to the processes in p at
// configuration c in a fresh slice; hot loops use AppendMoves.
func Moves(c model.Config, p []int) []model.Move {
	return AppendMoves(make([]model.Move, 0, len(p)+2), c, p)
}

// Apply performs the move on c.
func Apply(c model.Config, m model.Move) model.Config {
	if k, _ := model.PeekOp(c.State(m.Pid)); k == model.OpCoin {
		return c.Step(m.Pid, m.Coin)
	}
	return c.StepDet(m.Pid)
}

// levelEntry is one frontier configuration awaiting expansion. In packed
// mode words is the entry's record in the frontier arena (the parent
// template child packing patches); legacy mode leaves it nil.
type levelEntry struct {
	cfg   model.Config
	id    int32
	words []uint64
}

// parallelThreshold is the smallest level size worth fanning out to the
// worker pool; below it the coordinator expands inline (a variable so the
// equivalence tests can force the pool onto tiny spaces).
var parallelThreshold = 256

// Reach explores every configuration reachable from c by executions
// containing only steps of processes in p (a "P-only" exploration). The
// visit callback, if non-nil, is invoked once per distinct configuration in
// BFS order — always from the calling goroutine, whatever Options.Workers
// says — and may return false to stop the search early (the result is then
// marked Capped, since the space was not exhausted).
//
// ctx bounds the search in wall-clock time: when it is cancelled or its
// deadline passes, the search stops, marks the result Capped, and returns it
// together with an error wrapping ctx.Err() — everything visited so far is
// still valid, the space just was not exhausted. The states-visited budget
// is Options.MaxConfigs.
func Reach(ctx context.Context, c model.Config, p []int, opts Options, visit func(Visit) bool) (*Result, error) {
	res := &Result{}
	maxConfigs := opts.maxConfigs()
	if err := ctx.Err(); err != nil {
		res.Capped = true
		return res, fmt.Errorf("reach cancelled before start: %w (and %w)", err, ErrCapped)
	}

	// A single-worker search never starts the pool, so its sets are only
	// ever touched by this goroutine and can skip their stripe mutexes.
	mkSet := newFPSet
	if opts.workers() <= 1 {
		mkSet = newFPSetLocal
	}
	s := &search{
		ctx:        ctx,
		opts:       opts,
		p:          p,
		maxConfigs: maxConfigs,
		visited:    mkSet(),
		scratch:    newWorkerScratch(),
		metrics:    newSearchMetrics(opts.Obs),
	}
	if !opts.legacyFrontier {
		s.codec = model.NewPackedCodec(c)
		s.stride = s.codec.Words()
		s.rawSeen = mkSet()
	}
	defer s.stopWorkers()
	gov := newSpillGovernor(&opts, c, s.stride)

	var level, next frontier
	level.stride, next.stride = s.stride, s.stride
	defer func() { level.discard(); next.discard() }()
	depth := int32(0)
	if opts.ResumeFrom != nil {
		if err := s.restore(opts.ResumeFrom, res, &level, c); err != nil {
			return res, err
		}
		depth = int32(opts.ResumeFrom.Depth)
	} else {
		s.visited.Add(s.scratch.fingerprint(&opts, c))
		res.nodes = append(res.nodes, node{parent: 0})
		res.Count = 1
		res.PeakFrontier = 1
		if visit != nil && !visit(Visit{Config: c, ID: 0, Depth: 0}) {
			res.Capped = true
			return res, fmt.Errorf("reach from %d procs: %w", len(p), ErrCapped)
		}
		if s.codec != nil {
			rec := make([]uint64, s.stride)
			if err := s.codec.PackTo(rec, c); err != nil {
				return res, fmt.Errorf("reach root: %w", err)
			}
			level.addPacked(0, rec, nil)
		} else {
			level.mem = append(level.mem, levelEntry{cfg: c, id: 0})
		}
	}

	var buf batchBuf
	for level.size() > 0 {
		if opts.Snapshot != nil {
			opts.Snapshot(&Snapshotter{s: s, res: res, level: &level, depth: int(depth)})
		}
		if opts.MaxDepth > 0 && int(depth) >= opts.MaxDepth {
			// The frontier beyond the depth cap is not expanded; the
			// space was not exhausted.
			res.Capped = true
			break
		}
		if n := level.size(); n > res.PeakFrontier {
			res.PeakFrontier = n
		}
		// The consumed frontier two levels back becomes the next
		// accumulator; clearing it drops its configuration references, so
		// the frontier's live heap stays bounded by two adjacent levels
		// (see TestReachFrontierBoundedLiveHeap).
		next.clear()
		levelDups := 0
		// Drain the level batch by batch — each spilled chunk, then the
		// in-memory tail — merging every batch's chunks in their
		// deterministic order: IDs, visit order and caps depend on neither
		// the worker count nor the spill layout.
		err := func() error {
			for bi := 0; bi < level.numBatches(); bi++ {
				var reloadStart time.Time
				isSpill := bi < len(level.spilled) && s.metrics.enabled()
				if isSpill {
					reloadStart = time.Now()
				}
				batch, err := level.batch(bi, res, c, &buf)
				if err != nil {
					res.Capped = true
					return fmt.Errorf("reach frontier: %w (and %w)", err, ErrCapped)
				}
				if isSpill {
					s.metrics.spillReloaded(time.Since(reloadStart))
				}
				chunks := s.expandLevel(batch)
				if err := ctx.Err(); err != nil {
					res.Capped = true
					return fmt.Errorf("reach cancelled after %d configs: %w (and %w)", res.Count, err, ErrCapped)
				}
				for ci := range chunks {
					ch := &chunks[ci]
					if ch.err != nil {
						res.Capped = true
						return fmt.Errorf("reach pack after %d configs: %w (and %w)", res.Count, ch.err, ErrCapped)
					}
					res.Steps += ch.dupSteps
					levelDups += ch.dupSteps
					s.metrics.chunkDeltas(ch)
					for i := range ch.slots {
						sl := &ch.slots[i]
						res.Steps++
						if res.Steps%cancelCheckInterval == 0 {
							if err := ctx.Err(); err != nil {
								res.Capped = true
								return fmt.Errorf("reach cancelled after %d configs: %w (and %w)", res.Count, err, ErrCapped)
							}
						}
						id := int32(len(res.nodes))
						res.nodes = append(res.nodes, node{parent: sl.parent, depth: depth + 1, via: sl.via})
						res.Count++
						if visit != nil && !visit(Visit{Config: sl.cfg, ID: int(id), Depth: int(depth + 1)}) {
							res.Capped = true
							return fmt.Errorf("reach visit stop: %w", ErrCapped)
						}
						if res.Count >= maxConfigs {
							res.Capped = true
							return fmt.Errorf("reach hit %d configs: %w", maxConfigs, ErrCapped)
						}
						if s.codec != nil {
							next.addPacked(id, ch.words[i*s.stride:(i+1)*s.stride], gov)
						} else {
							next.add(levelEntry{cfg: sl.cfg, id: id}, gov)
						}
					}
				}
			}
			return nil
		}()
		if err != nil {
			return res, err
		}
		if next.size() > 0 {
			res.Depth = int(depth) + 1
		}
		if opts.Obs != nil {
			s.metrics.level(s, &next)
			opts.Obs.ExploreLevel(obs.Level{
				Depth:    int(depth) + 1,
				Frontier: next.size(),
				Dup:      levelDups,
				Configs:  res.Count,
				Steps:    res.Steps,
			})
		}
		level, next = next, level
		depth++
	}
	if res.Capped {
		return res, fmt.Errorf("reach depth-capped at %d: %w", opts.MaxDepth, ErrCapped)
	}
	return res, nil
}
