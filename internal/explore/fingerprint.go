package explore

import (
	"hash"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// Fingerprint is a 128-bit FNV-1a digest of a configuration's canonical
// key. The visited set and the valency oracle's memo tables store
// fingerprints instead of key strings: equality of fingerprints is treated
// as equality of canonical keys. A false merge therefore needs a 128-bit
// collision — for 10^8 distinct states the probability is below 10^-21,
// far below the chance of a memory error on commodity hardware, which is
// the standard this repository accepts for "exhaustive".
type Fingerprint [2]uint64

// fingerprintOf digests an already-materialised key string. It is the
// reference form of hasher.fingerprint; the streaming path must produce
// identical fingerprints (TestStreamingKeysMatchStringKeys).
func fingerprintOf(key string) Fingerprint {
	h := fnv.New128a()
	_, _ = h.Write([]byte(key))
	var sum [16]byte
	h.Sum(sum[:0])
	var fp Fingerprint
	for i := 0; i < 8; i++ {
		fp[0] = fp[0]<<8 | uint64(sum[i])
		fp[1] = fp[1]<<8 | uint64(sum[8+i])
	}
	return fp
}

// hasher is per-worker scratch for streaming a configuration's canonical
// key into an FNV-128a state without materialising it. Not safe for
// concurrent use.
type hasher struct {
	kb  model.KeyBuilder
	h   hash.Hash
	sum [16]byte
}

func newHasher() *hasher {
	return &hasher{h: fnv.New128a()}
}

// fingerprint digests c's canonical key under opts. Preference order:
// KeyTo (pure streaming), then KeyFn (string materialised, then hashed —
// still correct, just slower), then Config.KeyTo.
func (hs *hasher) fingerprint(opts *Options, c model.Config) Fingerprint {
	hs.kb.Reset()
	switch {
	case opts.KeyTo != nil:
		opts.KeyTo(&hs.kb, c)
	case opts.KeyFn != nil:
		_, _ = hs.kb.WriteString(opts.KeyFn(c))
	default:
		c.KeyTo(&hs.kb)
	}
	hs.h.Reset()
	_, _ = hs.h.Write(hs.kb.Bytes())
	sum := hs.h.Sum(hs.sum[:0])
	var fp Fingerprint
	for i := 0; i < 8; i++ {
		fp[0] = fp[0]<<8 | uint64(sum[i])
		fp[1] = fp[1]<<8 | uint64(sum[8+i])
	}
	return fp
}

var hasherPool = sync.Pool{New: func() any { return newHasher() }}

// Fingerprint digests c's canonical key under o, using pooled scratch. It
// is the key the valency oracle memoises on; it matches what the engine's
// visited set stores for the same options.
func (o Options) Fingerprint(c model.Config) Fingerprint {
	hs := hasherPool.Get().(*hasher)
	fp := hs.fingerprint(&o, c)
	hasherPool.Put(hs)
	return fp
}

// fpShards is the stripe count of the visited set. 64 stripes keep
// contention negligible for any plausible worker count while the
// per-stripe padding stays cheap.
const fpShards = 64

type fpShard struct {
	mu sync.Mutex
	m  map[Fingerprint]struct{}
	// Pad each shard past a cache line so neighbouring mutexes do not
	// false-share under contention.
	_ [40]byte
}

// fpSet is the sharded lock-striped visited set raced by the expansion
// workers. Add is linearisable per fingerprint: exactly one caller wins a
// given fingerprint, however many workers race it.
type fpSet struct {
	count  atomic.Int64
	shards [fpShards]fpShard
}

func newFPSet() *fpSet {
	s := &fpSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[Fingerprint]struct{}, 64)
	}
	return s
}

// Add inserts fp and reports whether it was absent (i.e. the caller is the
// unique winner for this fingerprint).
func (s *fpSet) Add(fp Fingerprint) bool {
	sh := &s.shards[fp[0]&(fpShards-1)]
	sh.mu.Lock()
	if _, ok := sh.m[fp]; ok {
		sh.mu.Unlock()
		return false
	}
	sh.m[fp] = struct{}{}
	sh.mu.Unlock()
	s.count.Add(1)
	return true
}

// Len returns the number of distinct fingerprints inserted so far. It may
// be momentarily stale while workers race Adds; the engine only uses it as
// a soft overflow brake, never for exact accounting.
func (s *fpSet) Len() int { return int(s.count.Load()) }

// dump returns every fingerprint in the set, in unspecified order (the set
// is unordered, so checkpoint files may differ between runs even when the
// resumed results do not). Called at level boundaries, when no worker holds
// a shard.
func (s *fpSet) dump() []Fingerprint {
	out := make([]Fingerprint, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for fp := range sh.m {
			out = append(out, fp)
		}
		sh.mu.Unlock()
	}
	return out
}
