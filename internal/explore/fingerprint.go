package explore

import (
	"encoding/binary"
	"hash/fnv"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/obs"
)

// Fingerprint is a 128-bit digest of a configuration's canonical key. The
// visited set and the valency oracle's memo tables store fingerprints
// instead of key strings: equality of fingerprints is treated as equality
// of canonical keys. A false merge therefore needs a 128-bit collision —
// for 10^8 distinct states the probability is below 10^-21, far below the
// chance of a memory error on commodity hardware, which is the standard
// this repository accepts for "exhaustive".
//
// The digest is mix128, a wyhash-style multiply-fold mix that consumes the
// key eight bytes per load instead of FNV-128a's one multiply per byte;
// the old FNV digest is retained as fingerprintFNV128, the cross-checked
// reference the migration tests hold the new hash against (DESIGN.md S22).
// Fingerprints are durable (checkpoint snapshots persist them), so
// FingerprintVersion names the active function and changes whenever it
// does.
type Fingerprint [2]uint64

// FingerprintVersion identifies the fingerprint function. Version 1 was
// FNV-128a; version 2 is mix128. Snapshots record the version of the
// fingerprints they carry, and resume refuses a mismatch: stale-hash
// fingerprints would never match live ones, silently degrading a resumed
// run to a cold start.
const FingerprintVersion = 2

// mix128 constants: the first four secrets of wyhash v4.
const (
	mixK0 = 0xa0761d6478bd642f
	mixK1 = 0xe7037ed1a0b428db
	mixK2 = 0x8ebc6af09c88c6e3
	mixK3 = 0x589965cc75374cc3
)

// mum is the multiply-fold primitive: the 128-bit product of a and b,
// folded to 64 bits by xor of its halves.
func mum(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// mix128 digests p into a 128-bit fingerprint. Two 64-bit mum-chains with
// distinct secrets each consume the full input stream sixteen bytes per
// round (word-at-a-time loads), then two cross-feeding finalisation rounds
// couple the lanes. Short and ragged tails are read as overlapping or
// byte-accumulated words. Input here is canonical protocol keys — not
// adversarial — and the collision standard is the 128-bit one documented
// on Fingerprint; TestMix128Distinctness and the zoo differential tests
// hold it against the FNV reference on real key populations.
func mix128(p []byte) Fingerprint {
	n := uint64(len(p))
	h1 := mixK0 ^ n*mixK2
	h2 := mixK1 ^ n*mixK3
	var a, b uint64
	switch {
	case len(p) > 16:
		q := p
		for len(q) > 16 {
			a = binary.LittleEndian.Uint64(q)
			b = binary.LittleEndian.Uint64(q[8:])
			h1 = mum(a^mixK2, b^h1)
			h2 = mum(a^h2, b^mixK3)
			q = q[16:]
		}
		// Final block: the last sixteen bytes, overlapping the loop's
		// tail so every byte is covered without a branchy remainder.
		t := p[len(p)-16:]
		a = binary.LittleEndian.Uint64(t)
		b = binary.LittleEndian.Uint64(t[8:])
	case len(p) >= 8:
		a = binary.LittleEndian.Uint64(p)
		b = binary.LittleEndian.Uint64(p[len(p)-8:])
	case len(p) > 0:
		for i := len(p) - 1; i >= 0; i-- {
			a = a<<8 | uint64(p[i])
		}
	}
	h1 = mum(a^mixK2, b^h1)
	h2 = mum(a^h2, b^mixK3)
	h1 = mum(h1^mixK3, h2^mixK1)
	h2 = mum(h2^mixK0, h1^mixK2)
	return Fingerprint{h1, h2}
}

// fingerprintOf digests an already-materialised key string. It is the
// reference form of hasher.fingerprint; the streaming path must produce
// identical fingerprints (TestStreamingKeysMatchStringKeys).
func fingerprintOf(key string) Fingerprint {
	return mix128([]byte(key))
}

// mixWords digests a packed record (a []uint64 instance-local encoding)
// with the same mixing rounds as mix128. It keys the raw-identity
// / pre-filter in the explorer: packed records are exact encodings, so equal
// words mean equal configurations, and a second, cheaper hash over the
// words lets the hot path skip the canonical key stream for the (majority
// of) transitions that recreate an already-seen record verbatim. The
// resulting fingerprints live in their own set — they use dictionary ids,
// which are instance-scoped, so they are never persisted or compared with
// canonical fingerprints.
func mixWords(ws []uint64) Fingerprint {
	n := uint64(len(ws))
	h1 := mixK0 ^ n*mixK2
	h2 := mixK1 ^ n*mixK3
	i := 0
	for ; i+1 < len(ws); i += 2 {
		h1 = mum(ws[i]^mixK2, ws[i+1]^h1)
		h2 = mum(ws[i]^h2, ws[i+1]^mixK3)
	}
	if i < len(ws) {
		a := ws[i]
		h1 = mum(a^mixK2, h1)
		h2 = mum(a^h2, mixK3)
	}
	h1 = mum(h1^mixK3, h2^mixK1)
	h2 = mum(h2^mixK0, h1^mixK2)
	return Fingerprint{h1, h2}
}

// fingerprintFNV128 is the retired FNV-1a digest, kept as an independent
// reference implementation: the migration tests run it alongside mix128
// over the same key populations and require both to be injective, so a
// defect in the new mix cannot hide behind its own output.
func fingerprintFNV128(key string) Fingerprint {
	h := fnv.New128a()
	_, _ = h.Write([]byte(key))
	var sum [16]byte
	h.Sum(sum[:0])
	var fp Fingerprint
	for i := 0; i < 8; i++ {
		fp[0] = fp[0]<<8 | uint64(sum[i])
		fp[1] = fp[1]<<8 | uint64(sum[8+i])
	}
	return fp
}

// hasher is per-worker scratch for streaming a configuration's canonical
// key into a fingerprint without materialising it. Not safe for
// concurrent use.
type hasher struct {
	kb model.KeyBuilder
}

func newHasher() *hasher {
	return &hasher{}
}

// / fingerprint digests c's canonical key under opts. Preference order:
// KeyTo (pure streaming), then KeyFn (string materialised, then hashed —
// still correct, just slower), then Config.KeyTo.
func (hs *hasher) fingerprint(opts *Options, c model.Config) Fingerprint {
	hs.kb.Reset()
	switch {
	case opts.KeyTo != nil:
		opts.KeyTo(&hs.kb, c)
	case opts.KeyFn != nil:
		_, _ = hs.kb.WriteString(opts.KeyFn(c))
	default:
		c.KeyTo(&hs.kb)
	}
	return mix128(hs.kb.Bytes())
}

var hasherPool = sync.Pool{New: func() any { return newHasher() }}

// Fingerprint digests c's canonical key under o, using pooled scratch. It
// is the key the valency oracle memoises on; it matches what the engine's
// visited set stores for the same options.
func (o Options) Fingerprint(c model.Config) Fingerprint {
	hs := hasherPool.Get().(*hasher)
	fp := hs.fingerprint(&o, c)
	hasherPool.Put(hs)
	return fp
}

// Fingerprinter is reusable fingerprinting scratch bound to one option
// set: Options.Fingerprint's pool round-trip and options copy were
// measurable at one call per memoised query, so single-goroutine callers
// (the valency oracle) hold one of these instead. Not safe for concurrent
// use.
type Fingerprinter struct {
	opts Options
	hs   hasher
}

// NewFingerprinter returns a Fingerprinter computing exactly the
// fingerprints o.Fingerprint would.
func (o Options) NewFingerprinter() *Fingerprinter {
	return &Fingerprinter{opts: o}
}

// Fingerprint digests c's canonical key.
func (f *Fingerprinter) Fingerprint(c model.Config) Fingerprint {
	return f.hs.fingerprint(&f.opts, c)
}

// fpShards is the stripe count of the visited set. 64 stripes keep
// contention negligible for any plausible worker count while the
// per-stripe padding stays cheap.
const fpShards = 64

// fpShard is one stripe: an open-addressed, linearly probed table of
// fingerprints. Fingerprints are already uniform 128-bit hashes, so slots
// are probed straight from the fingerprint bits — no secondary hashing —
// and membership is a lock, one or two cache lines, an unlock. The
// all-zero fingerprint (probability 2^-128, but cheap to be exact about)
// is tracked out of band so the zero slot can mean "empty".
type fpShard struct {
	mu   sync.Mutex
	tbl  []Fingerprint
	n    int
	zero bool
	// Pad each shard past a cache line so neighbouring mutexes do not
	// false-share under contention.
	_ [16]byte
}

// add inserts fp into the shard, reporting whether it was absent. The
// caller holds sh.mu.
func (sh *fpShard) add(fp Fingerprint) bool {
	if fp == (Fingerprint{}) {
		if sh.zero {
			return false
		}
		sh.zero = true
		sh.n++
		return true
	}
	if 4*(sh.n+1) > 3*len(sh.tbl) {
		sh.grow()
	}
	mask := uint64(len(sh.tbl) - 1)
	// fp[0]'s low bits picked the shard; probe from fp[1] so the slot is
	// independent of the stripe.
	for i := fp[1] & mask; ; i = (i + 1) & mask {
		switch sh.tbl[i] {
		case fp:
			return false
		case Fingerprint{}:
			sh.tbl[i] = fp
			sh.n++
			return true
		}
	}
}

// grow quadruples the shard table (from a 128-slot floor) and reinserts.
// The aggressive factor keeps total rehash work near n/3 inserts — visited
// sets only ever grow, so oversizing one step is cheaper than re-moving
// the same fingerprints an extra time.
func (sh *fpShard) grow() {
	old := sh.tbl
	size := 4 * len(old)
	if size < 128 {
		size = 128
	}
	sh.tbl = make([]Fingerprint, size)
	mask := uint64(size - 1)
	for _, fp := range old {
		if fp == (Fingerprint{}) {
			continue
		}
		i := fp[1] & mask
		for sh.tbl[i] != (Fingerprint{}) {
			i = (i + 1) & mask
		}
		sh.tbl[i] = fp
	}
}

// fpSet is the sharded lock-striped visited set raced by the expansion
// workers. Add is linearisable per fingerprint: exactly one caller wins a
// given fingerprint, however many workers race it. A set built with
// newFPSetLocal skips the stripe mutexes — sound only while a single
// goroutine owns every Add, which Reach guarantees when Options.Workers
// resolves to 1 (the pool is never started, so the coordinator is the only
// caller).
type fpSet struct {
	count  atomic.Int64
	locked bool
	shards [fpShards]fpShard
}

func newFPSet() *fpSet {
	return &fpSet{locked: true}
}

func newFPSetLocal() *fpSet {
	return &fpSet{}
}

// Add inserts fp and reports whether it was absent (i.e. the caller is the
// unique winner for this fingerprint).
func (s *fpSet) Add(fp Fingerprint) bool {
	sh := &s.shards[fp[0]&(fpShards-1)]
	if !s.locked {
		if sh.add(fp) {
			s.count.Add(1)
			return true
		}
		return false
	}
	sh.mu.Lock()
	fresh := sh.add(fp)
	sh.mu.Unlock()
	if fresh {
		s.count.Add(1)
	}
	return fresh
}

// Len returns the number of distinct fingerprints inserted so far. It may
// be momentarily stale while workers race Adds; the engine only uses it as
// a soft overflow brake, never for exact accounting.
func (s *fpSet) Len() int { return int(s.count.Load()) }

// stats samples the set for the flight recorder: total fingerprints and
// table slots (the load factor is their ratio), and — when h is non-nil —
// up to maxPerShard occupied slots per shard observed into h as probe
// displacements ((slot - home) & mask, the linear-probe walk length a
// lookup for that fingerprint pays). Sampling is bounded so a level-edge
// call costs O(shards × maxPerShard) whatever the set's size. Called at
// level boundaries, when no worker holds a shard; the stripe locks are
// still taken (when the set is a locking one) for exactness.
func (s *fpSet) stats(maxPerShard int, h *obs.Histogram) (n, slots int) {
	for i := range s.shards {
		sh := &s.shards[i]
		if s.locked {
			sh.mu.Lock()
		}
		n += sh.n
		slots += len(sh.tbl)
		if h != nil && len(sh.tbl) > 0 {
			mask := uint64(len(sh.tbl) - 1)
			sampled := 0
			for j := uint64(0); j <= mask && sampled < maxPerShard; j++ {
				fp := sh.tbl[j]
				if fp == (Fingerprint{}) {
					continue
				}
				h.Observe(int64((j - fp[1]&mask) & mask))
				sampled++
			}
		}
		if s.locked {
			sh.mu.Unlock()
		}
	}
	return n, slots
}

// dump returns every fingerprint in the set, in unspecified order (the set
// is unordered, so checkpoint files may differ between runs even when the
// resumed results do not). Called at level boundaries, when no worker holds
// a shard.
func (s *fpSet) dump() []Fingerprint {
	out := make([]Fingerprint, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.zero {
			out = append(out, Fingerprint{})
		}
		for _, fp := range sh.tbl {
			if fp != (Fingerprint{}) {
				out = append(out, fp)
			}
		}
		sh.mu.Unlock()
	}
	return out
}
