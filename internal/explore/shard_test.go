package explore

import (
	"math/rand"
	"testing"
)

// TestShardOfPartition pins the partition's contract: total (every
// fingerprint owned), stable (same slice every time), in range, and
// roughly balanced over uniform fingerprints.
func TestShardOfPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, slices := range []int{1, 2, 3, 5, 8} {
		counts := make([]int, slices)
		for i := 0; i < 10000; i++ {
			fp := Fingerprint{rng.Uint64(), rng.Uint64()}
			s := ShardOf(fp, slices)
			if s < 0 || s >= slices {
				t.Fatalf("ShardOf(%v, %d) = %d out of range", fp, slices, s)
			}
			if again := ShardOf(fp, slices); again != s {
				t.Fatalf("ShardOf not stable: %d then %d", s, again)
			}
			counts[s]++
		}
		for s, c := range counts {
			if want := 10000 / slices; c < want/2 || c > want*2 {
				t.Errorf("slices=%d: slice %d got %d of 10000 fingerprints", slices, s, c)
			}
		}
	}
	if got := ShardOf(Fingerprint{1, 2}, 0); got != 0 {
		t.Fatalf("ShardOf with 0 slices = %d, want 0", got)
	}
}

// TestFingerprintBinaryRoundTrip pins the 16-byte wire encoding.
func TestFingerprintBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		fp := Fingerprint{rng.Uint64(), rng.Uint64()}
		b := fp.AppendBinary(nil)
		if len(b) != FingerprintBytes {
			t.Fatalf("encoded to %d bytes, want %d", len(b), FingerprintBytes)
		}
		got, err := FingerprintFromBytes(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != fp {
			t.Fatalf("round trip %v -> %v", fp, got)
		}
	}
	if _, err := FingerprintFromBytes(make([]byte, 15)); err == nil {
		t.Fatal("15-byte decode succeeded")
	}
}
