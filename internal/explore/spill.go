package explore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/model"
	"repro/internal/obs"
)

// The frontier spill governor. Full configurations live only on the BFS
// frontier, so the frontier IS the search's memory footprint; on spaces
// whose widest level outgrows RAM, the governor flushes cold chunks of the
// accumulating next level to disk as id-lists and drops their
// configurations. A spilled chunk costs a few bytes per entry on disk and
// nothing in RAM; when its turn comes it is rebuilt by replaying each id's
// witness path from the root. Chunks are flushed from the front of the
// level and consumed before the in-memory remainder, so the visit order —
// and therefore every id and witness path — is identical to an unspilled
// run.

// frontier holds one BFS level as spilled chunks (cold, on disk) followed
// by in-memory entries (hot), in visit order.
type frontier struct {
	spilled  []spillChunk
	mem      []levelEntry
	memBytes int64
}

// size returns the number of entries across disk and memory.
func (f *frontier) size() int {
	n := len(f.mem)
	for _, ch := range f.spilled {
		n += ch.count
	}
	return n
}

// add appends a freshly discovered entry, charging it to the governor's
// budget and spilling the accumulated tail when over.
func (f *frontier) add(e levelEntry, g *spillGovernor) {
	f.mem = append(f.mem, e)
	if g != nil {
		f.memBytes += g.entrySize
		g.maybeSpill(f)
	}
}

// numBatches returns how many expansion batches the level drains in: one
// per spilled chunk plus one for the in-memory tail.
func (f *frontier) numBatches() int {
	n := len(f.spilled)
	if len(f.mem) > 0 {
		n++
	}
	return n
}

// batch returns the bi-th batch in frontier order, consuming (reading and
// deleting) spill files as their turn comes.
func (f *frontier) batch(bi int, res *Result, root model.Config, buf *[]levelEntry) ([]levelEntry, error) {
	if bi < len(f.spilled) {
		return f.spilled[bi].load(res, root, buf)
	}
	return f.mem, nil
}

// ids returns the node ids of every entry in order, reading (but not
// consuming) spilled chunks. Snapshots use it.
func (f *frontier) ids() ([]int32, error) {
	out := make([]int32, 0, f.size())
	for i := range f.spilled {
		ids, err := readSpillChunk(f.spilled[i].path)
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	for _, e := range f.mem {
		out = append(out, e.id)
	}
	return out, nil
}

// clear retires a consumed frontier for reuse as the next accumulator:
// configuration references are dropped so the previous level's heap can be
// collected, and stray spill files are deleted.
func (f *frontier) clear() {
	f.discard()
	clear(f.mem)
	f.mem = f.mem[:0]
	f.memBytes = 0
	f.spilled = f.spilled[:0]
}

// discard deletes any spill files still on disk (normal drains consume
// them all; early exits leave the tail for this to sweep).
func (f *frontier) discard() {
	for i := range f.spilled {
		if p := f.spilled[i].path; p != "" {
			os.Remove(p)
		}
	}
}

// spillChunk is one flushed run of frontier entries: an id-list file plus
// its entry count.
type spillChunk struct {
	path  string
	count int
}

// load reads the chunk back, deletes its file, and rebuilds each entry's
// configuration by path replay into buf.
func (ch *spillChunk) load(res *Result, root model.Config, buf *[]levelEntry) ([]levelEntry, error) {
	ids, err := readSpillChunk(ch.path)
	if err != nil {
		return nil, err
	}
	os.Remove(ch.path)
	ch.path = ""
	entries := (*buf)[:0]
	for _, id := range ids {
		cfg, err := replayTo(res, root, int(id))
		if err != nil {
			return nil, fmt.Errorf("explore: spilled frontier: %w", err)
		}
		entries = append(entries, levelEntry{cfg: cfg, id: id})
	}
	*buf = entries
	return entries, nil
}

// spillGovernor owns the budget policy. nil disables spilling entirely.
type spillGovernor struct {
	dir       string
	budget    int64
	entrySize int64
	scope     *obs.Scope
	disabled  bool
}

func newSpillGovernor(opts *Options, root model.Config) *spillGovernor {
	if opts.SpillDir == "" || opts.SpillBudget <= 0 {
		return nil
	}
	return &spillGovernor{
		dir:    opts.SpillDir,
		budget: opts.SpillBudget,
		// A frontier entry retains one immutable Config: two slice headers
		// plus per-process state and per-register values. The constants are
		// a deliberate overestimate — the budget is a brake, not an
		// accounting system.
		entrySize: 96 + 48*int64(root.NumProcesses()+root.NumRegisters()),
		scope:     opts.Obs,
	}
}

// maybeSpill flushes the accumulated in-memory tail once it exceeds the
// budget. A write failure disables the governor for the rest of the search
// — spilling is a memory optimisation, never worth failing a proof over —
// and is reported as a trace event.
func (g *spillGovernor) maybeSpill(f *frontier) {
	if g.disabled || f.memBytes <= g.budget || len(f.mem) == 0 {
		return
	}
	path, bytes, err := writeSpillChunk(g.dir, f.mem)
	if err != nil {
		g.disabled = true
		g.scope.Event("spill_error", slog.String("err", err.Error()))
		return
	}
	g.scope.Counter("spill_chunks").Add(1)
	g.scope.Counter("spill_bytes").Add(bytes)
	g.scope.Event("spill_chunk",
		slog.Int("entries", len(f.mem)),
		slog.Int64("bytes", bytes),
	)
	f.spilled = append(f.spilled, spillChunk{path: path, count: len(f.mem)})
	clear(f.mem)
	f.mem = f.mem[:0]
	f.memBytes = 0
}

// writeSpillChunk writes the entries' ids as a count-prefixed uvarint list
// to a fresh file in dir. Spill files are transient scratch consumed by the
// same process — they never survive a crash, so unlike checkpoint segments
// they carry no checksums or fsync.
func writeSpillChunk(dir string, entries []levelEntry) (string, int64, error) {
	f, err := os.CreateTemp(dir, "frontier-*.spill")
	if err != nil {
		return "", 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var buf [binary.MaxVarintLen64]byte
	written := int64(0)
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		written += int64(n)
		_, err := bw.Write(buf[:n])
		return err
	}
	werr := put(uint64(len(entries)))
	for i := 0; werr == nil && i < len(entries); i++ {
		werr = put(uint64(entries[i].id))
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(f.Name())
		return "", 0, werr
	}
	return f.Name(), written, nil
}

// readSpillChunk reads an id-list file back.
func readSpillChunk(path string) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("explore: spill chunk %s: %w", path, err)
	}
	ids := make([]int32, 0, count)
	for i := uint64(0); i < count; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("explore: spill chunk %s entry %d: %w", path, i, err)
		}
		ids = append(ids, int32(v))
	}
	return ids, nil
}
